module mio

go 1.22
