package mio

import "mio/internal/data"

// Generator configurations for the synthetic stand-in datasets
// (DESIGN.md §5). Each mirrors the shape of one dataset from the
// paper's Table I.
type (
	// NeuronConfig parameterises neuron-like objects: clustered somata
	// emitting branching 3-D arbors.
	NeuronConfig = data.NeuronConfig
	// TrajectoryConfig parameterises bird-like planar sub-trajectories
	// with leader-follower flocks.
	TrajectoryConfig = data.TrajectoryConfig
	// PowerLawConfig parameterises the Syn stand-in whose score
	// distribution follows a power law.
	PowerLawConfig = data.PowerLawConfig
	// UniformConfig parameterises a skew-free control dataset.
	UniformConfig = data.UniformConfig
)

// Default generator configurations matching the paper's dataset shapes
// at laptop scale.
func DefaultNeuronConfig() NeuronConfig    { return data.DefaultNeuron() }
func DefaultNeuron2Config() NeuronConfig   { return data.DefaultNeuron2() }
func DefaultBirdConfig() TrajectoryConfig  { return data.DefaultBird() }
func DefaultBird2Config() TrajectoryConfig { return data.DefaultBird2() }
func DefaultSynConfig() PowerLawConfig     { return data.DefaultSyn() }

// GenerateNeuron generates neuron-like objects.
func GenerateNeuron(cfg NeuronConfig) *Dataset { return data.GenNeuron(cfg) }

// GenerateTrajectory generates trajectory-like objects.
func GenerateTrajectory(cfg TrajectoryConfig) *Dataset { return data.GenTrajectory(cfg) }

// GeneratePowerLaw generates power-law-score objects.
func GeneratePowerLaw(cfg PowerLawConfig) *Dataset { return data.GenPowerLaw(cfg) }

// GenerateUniform generates uniformly spread objects.
func GenerateUniform(cfg UniformConfig) *Dataset { return data.GenUniform(cfg) }

// StandardDatasets returns the five stand-in datasets of the paper's
// Table I (Neuron, Neuron-2, Bird, Bird-2, Syn) scaled by the given
// factor (1.0 = the laptop-scale defaults).
func StandardDatasets(scale float64) map[string]*Dataset { return data.Standard(scale) }

// Adversarial generator configurations (DESIGN.md §16): datasets shaped
// against the engine's hand-set defaults, used to stress the
// auto-tuner's heuristic table.
type (
	// OneCellConfig parameterises the all-in-one-cell stress.
	OneCellConfig = data.OneCellConfig
	// UniformSparseConfig parameterises the planar uniform-sparse stress.
	UniformSparseConfig = data.UniformSparseConfig
	// PowerLawSizesConfig parameterises the power-law object-size stress.
	PowerLawSizesConfig = data.PowerLawSizesConfig
	// HotspotCommuteConfig parameterises the hotspot-commute mobility mix.
	HotspotCommuteConfig = data.HotspotCommuteConfig
)

// GenerateOneCell generates the all-in-one-cell dataset.
func GenerateOneCell(cfg OneCellConfig) *Dataset { return data.GenOneCell(cfg) }

// GenerateUniformSparse generates the planar uniform-sparse dataset.
func GenerateUniformSparse(cfg UniformSparseConfig) *Dataset { return data.GenUniformSparse(cfg) }

// GeneratePowerLawSizes generates the power-law object-size dataset.
func GeneratePowerLawSizes(cfg PowerLawSizesConfig) *Dataset { return data.GenPowerLawSizes(cfg) }

// GenerateHotspotCommute generates the hotspot-commute dataset.
func GenerateHotspotCommute(cfg HotspotCommuteConfig) *Dataset { return data.GenHotspotCommute(cfg) }

// AdversarialDatasets returns the four adversarial datasets of
// DESIGN.md §16 (OneCell, Sparse, PowerSize, Commute) scaled by the
// given factor.
func AdversarialDatasets(scale float64) map[string]*Dataset { return data.Adversarial(scale) }

// WithTimestamps stamps every point of ds with synthetic generation
// times for use with TemporalEngine: each object's points are stamped
// sequentially with the given tick from a random offset in [0, horizon).
func WithTimestamps(ds *Dataset, tick, horizon float64, seed int64) *Dataset {
	return data.WithTimestamps(ds, tick, horizon, seed)
}
