package mio_test

import (
	"fmt"

	"mio"
)

// ExampleEngine_Query runs one MIO query over a hand-made dataset.
func ExampleEngine_Query() {
	ds, _ := mio.NewDataset("demo", [][]mio.Point{
		{mio.Pt(0, 0, 0), mio.Pt(1, 0, 0)}, // object 0
		{mio.Pt(1.5, 0, 0)},                // object 1: within 1 of object 0
		{mio.Pt(2.4, 0, 0)},                // object 2: within 1 of object 1
		{mio.Pt(50, 50, 0)},                // object 3: isolated
	})
	eng, _ := mio.NewEngine(ds)
	res, _ := eng.Query(1.0)
	fmt.Printf("object %d, score %d\n", res.Best.Obj, res.Best.Score)
	// Output: object 1, score 2
}

// ExampleEngine_QueryTopK returns the k best objects.
func ExampleEngine_QueryTopK() {
	ds, _ := mio.NewDataset("demo", [][]mio.Point{
		{mio.Pt(0, 0, 0)},
		{mio.Pt(0.5, 0, 0)},
		{mio.Pt(1.0, 0, 0)},
		{mio.Pt(9, 9, 9)},
	})
	eng, _ := mio.NewEngine(ds)
	res, _ := eng.QueryTopK(0.6, 2)
	for _, s := range res.TopK {
		fmt.Printf("object %d: %d\n", s.Obj, s.Score)
	}
	// Output:
	// object 1: 2
	// object 0: 1
}

// ExampleEngine_InteractingSet extracts the objects interacting with a
// given object — the follower set of a trajectory leader, the synaptic
// partners of a neuron.
func ExampleEngine_InteractingSet() {
	ds, _ := mio.NewDataset("demo", [][]mio.Point{
		{mio.Pt(0, 0, 0)},
		{mio.Pt(1, 0, 0)},
		{mio.Pt(0, 1, 0)},
		{mio.Pt(10, 10, 10)},
	})
	eng, _ := mio.NewEngine(ds)
	set, _ := eng.InteractingSet(1.0, 0)
	fmt.Println(set)
	// Output: [1 2]
}

// ExampleEngine_Sweep shows the threshold-sweep workload the labeling
// scheme accelerates: queries sharing ⌈r⌉ reuse labels automatically.
func ExampleEngine_Sweep() {
	ds, _ := mio.NewDataset("demo", [][]mio.Point{
		{mio.Pt(0, 0, 0)},
		{mio.Pt(2, 0, 0)},
		{mio.Pt(4.5, 0, 0)},
	})
	eng, _ := mio.NewEngine(ds, mio.WithLabels())
	sweep, _ := eng.Sweep([]float64{1.5, 2.0, 2.5}, 1)
	for _, sr := range sweep {
		fmt.Printf("r=%.1f best=%d score=%d labels=%v\n",
			sr.R, sr.Result.Best.Obj, sr.Result.Best.Score, sr.Result.Stats.UsedLabels)
	}
	// Ties (several objects share the top score) are broken arbitrarily,
	// as Definition 1 allows.
	// Output:
	// r=1.5 best=1 score=0 labels=false
	// r=2.0 best=1 score=1 labels=true
	// r=2.5 best=1 score=2 labels=false
}

// ExampleNewTemporalEngine answers the spatio-temporal variant: points
// must be close in space and generated within δ of each other.
func ExampleNewTemporalEngine() {
	ds := &mio.Dataset{Objects: []mio.Object{
		{ID: 0, Pts: []mio.Point{mio.Pt(0, 0, 0)}, Times: []float64{0}},
		{ID: 1, Pts: []mio.Point{mio.Pt(1, 0, 0)}, Times: []float64{3}},
		{ID: 2, Pts: []mio.Point{mio.Pt(0.5, 0, 0)}, Times: []float64{100}},
	}}
	eng, _ := mio.NewTemporalEngine(ds)
	res, _ := eng.Query(2.0, 5.0) // r=2, δ=5
	fmt.Printf("object %d, score %d\n", res.Best.Obj, res.Best.Score)
	// Output: object 0, score 1
}
