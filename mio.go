package mio

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"

	"mio/internal/core"
	"mio/internal/core/labelstore"
	"mio/internal/data"
	"mio/internal/geom"
	"mio/internal/tune"
)

// Point is a point in 3-D space; planar data uses Z = 0.
type Point = geom.Point

// Pt constructs a Point.
func Pt(x, y, z float64) Point { return geom.Pt(x, y, z) }

// Object is a spatial object: a set of points, optionally timestamped
// (timestamps are used only by TemporalEngine).
type Object = data.Object

// Dataset is a static, memory-resident collection of objects.
type Dataset = data.Dataset

// Scored pairs an object id with its interaction score.
type Scored = core.Scored

// Result is the answer to a query: the best object, the top-k list and
// the per-phase statistics of the run.
type Result = core.Result

// PhaseStats is the per-phase wall-clock and work breakdown of a query
// (the shape of the paper's Table II).
type PhaseStats = core.PhaseStats

// LBStrategy selects the parallel lower-bounding partitioning (§IV of
// the paper).
type LBStrategy = core.LBStrategy

// UBStrategy selects the parallel upper-bounding partitioning.
type UBStrategy = core.UBStrategy

// Parallel partitioning strategies. The greedy-d/greedy-p defaults are
// the paper's recommended choices; the alternatives exist for the
// Fig. 8 comparison and for workloads that happen to favour them.
const (
	LBGreedyD = core.LBGreedyD // divide objects greedily by key-list size (default)
	LBHashP   = core.LBHashP   // divide each object's key list across cores
	UBGreedyP = core.UBGreedyP // cost-based point-group partition (default)
	UBGreedyD = core.UBGreedyD // divide objects greedily by point count
)

// NewDataset builds a dataset from point sets. Objects are numbered in
// input order.
func NewDataset(name string, objects [][]Point) (*Dataset, error) {
	ds := &Dataset{Name: name}
	for i, pts := range objects {
		ds.Objects = append(ds.Objects, Object{ID: i, Pts: pts})
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// LoadDataset reads a dataset from a file: ".txt" selects the text
// format ("objID x y z [t]" per line), anything else the binary format.
func LoadDataset(path string) (*Dataset, error) { return data.LoadFile(path) }

// SaveDataset writes a dataset to a file, picking the format by
// extension as LoadDataset does.
func SaveDataset(path string, ds *Dataset) error { return data.SaveFile(path, ds) }

// Option configures an Engine or TemporalEngine.
type Option func(*config) error

type config struct {
	opts core.Options
	// autoTune enables profile-driven knob selection at engine build
	// time; the set* flags record explicitly chosen knobs, which the
	// tuner never overrides.
	autoTune   bool
	setWorkers bool
	setDims    bool
	setLB      bool
	setUB      bool
}

// WithAutoTune profiles the dataset when the engine is built and picks
// the engine knobs (worker count, 2-D vs 3-D grid, parallel
// partitioning strategies, freeze threshold) from its measured shape —
// skew, density, extent, object sizes (DESIGN.md §16). Knobs fixed
// explicitly by other options are respected. Tuning is
// answer-invariant: whatever it picks, queries return the identical
// top-k, and no knob ever increases the distance-computation count.
func WithAutoTune() Option {
	return func(c *config) error {
		c.autoTune = true
		return nil
	}
}

// WithWorkers enables the parallel algorithms of §IV on t cores
// (t < 2 selects the single-core pipeline).
func WithWorkers(t int) Option {
	return func(c *config) error {
		if t < 0 {
			return fmt.Errorf("mio: negative worker count %d", t)
		}
		c.opts.Workers = t
		c.setWorkers = true
		return nil
	}
}

// With2D declares the dataset planar, widening the small-grid cells
// from r/√3 to r/√2 for tighter lower bounds.
func With2D() Option {
	return func(c *config) error {
		c.opts.Dims = 2
		c.setDims = true
		return nil
	}
}

// WithLabels enables the §III-D labeling scheme with an in-memory
// store: the first query for each ⌈r⌉ records per-point labels, and
// every later query sharing that ceiling skips the labelled points.
func WithLabels() Option {
	return func(c *config) error {
		c.opts.Labels = labelstore.NewStore()
		return nil
	}
}

// WithDiskLabels enables labeling with a store persisted under dir, so
// labels survive the process — the external-memory deployment the paper
// analyses (O(nm/B) label I/O per query).
func WithDiskLabels(dir string) Option {
	return func(c *config) error {
		s, err := labelstore.NewDiskStore(dir)
		if err != nil {
			return err
		}
		c.opts.Labels = s
		return nil
	}
}

// WithLBStrategy selects the parallel lower-bounding partition.
func WithLBStrategy(s LBStrategy) Option {
	return func(c *config) error {
		c.opts.LB = s
		c.setLB = true
		return nil
	}
}

// WithUBStrategy selects the parallel upper-bounding partition.
func WithUBStrategy(s UBStrategy) Option {
	return func(c *config) error {
		c.opts.UB = s
		c.setUB = true
		return nil
	}
}

func buildConfig(opts []Option) (config, error) {
	var c config
	for _, o := range opts {
		if err := o(&c); err != nil {
			return config{}, err
		}
	}
	return c, nil
}

// resolve finalises the engine options for ds: under WithAutoTune it
// profiles the dataset and fills every knob the caller did not fix.
func (c *config) resolve(ds *Dataset) core.Options {
	if !c.autoTune {
		return c.opts
	}
	tn := tune.Select(tune.Profiler(ds), tune.Env{MaxProcs: runtime.GOMAXPROCS(0)})
	out := c.opts
	if !c.setWorkers {
		out.Workers = tn.Opts.Workers
	}
	if !c.setDims {
		out.Dims = tn.Opts.Dims
	}
	if !c.setLB {
		out.LB = tn.Opts.LB
	}
	if !c.setUB {
		out.UB = tn.Opts.UB
	}
	if out.FreezeMinPoints == 0 && !out.DisableFreeze {
		out.FreezeMinPoints = tn.Opts.FreezeMinPoints
	}
	return out
}

// Engine processes MIO queries over one dataset. It is safe to issue
// queries sequentially; a single Engine must not run queries
// concurrently with itself.
type Engine struct {
	inner *core.Engine
}

// NewEngine returns an engine over ds. The dataset must not be mutated
// afterwards.
func NewEngine(ds *Dataset, opts ...Option) (*Engine, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	inner, err := core.NewEngine(ds, c.resolve(ds))
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner}, nil
}

// Query returns the most interactive object for distance threshold r.
func (e *Engine) Query(r float64) (*Result, error) { return e.inner.Run(r) }

// QueryTopK returns the k most interactive objects for threshold r.
func (e *Engine) QueryTopK(r float64, k int) (*Result, error) { return e.inner.RunTopK(r, k) }

// Dataset returns the engine's dataset.
func (e *Engine) Dataset() *Dataset { return e.inner.Dataset() }

// TemporalEngine processes spatio-temporal MIO queries (Appendix B of
// the paper): objects interact when a point pair is within distance r
// and within δ in generation time. Every object must carry timestamps.
type TemporalEngine struct {
	inner *core.TemporalEngine
}

// NewTemporalEngine returns a temporal engine over ds.
func NewTemporalEngine(ds *Dataset, opts ...Option) (*TemporalEngine, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	inner, err := core.NewTemporalEngine(ds, c.resolve(ds))
	if err != nil {
		return nil, err
	}
	return &TemporalEngine{inner: inner}, nil
}

// Query returns the most interactive object under thresholds (r, δ).
func (e *TemporalEngine) Query(r, delta float64) (*Result, error) { return e.inner.Run(r, delta) }

// QueryTopK returns the k most interactive objects under (r, δ).
func (e *TemporalEngine) QueryTopK(r, delta float64, k int) (*Result, error) {
	return e.inner.RunTopK(r, delta, k)
}

// CSVColumns maps dataset fields to CSV column names for LoadCSV.
type CSVColumns = data.CSVColumns

// LoadCSV parses a headered CSV stream (e.g. a movebank.org tracking
// export) into a dataset: rows are grouped into objects by the Obj
// column, preserving row order within each object.
func LoadCSV(r io.Reader, cols CSVColumns) (*Dataset, error) {
	return data.ReadCSV(r, cols)
}

// LoadCSVFile is LoadCSV over a file path.
func LoadCSVFile(path string, cols CSVColumns) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return data.ReadCSV(f, cols)
}

// QueryContext is Query with cancellation: the engine checks ctx
// between pipeline phases and periodically inside them.
func (e *Engine) QueryContext(ctx context.Context, r float64) (*Result, error) {
	return e.inner.RunContext(ctx, r)
}

// QueryTopKContext is QueryTopK with cancellation.
func (e *Engine) QueryTopKContext(ctx context.Context, r float64, k int) (*Result, error) {
	return e.inner.RunTopKContext(ctx, r, k)
}
