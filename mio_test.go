package mio

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func testDataset(tb testing.TB) *Dataset {
	tb.Helper()
	cfg := TrajectoryConfig{N: 150, M: 25, Groups: 6, FieldSize: 4000, Speed: 25, FollowStd: 10, Solo: 0.4, Seed: 31}
	ds := GenerateTrajectory(cfg)
	if err := ds.Validate(); err != nil {
		tb.Fatal(err)
	}
	return ds
}

func scores(s []Scored) []int {
	out := make([]int, len(s))
	for i, e := range s {
		out[i] = e.Score
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

func TestPublicAPIEndToEnd(t *testing.T) {
	ds := testDataset(t)
	eng, err := NewEngine(ds)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Score <= 0 {
		t.Fatalf("best = %+v; flock data should interact", res.Best)
	}
	topk, err := eng.QueryTopK(40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(topk.TopK) != 5 || topk.TopK[0].Score != res.Best.Score {
		t.Fatalf("topk = %v", topk.TopK)
	}
	for i := 1; i < len(topk.TopK); i++ {
		if topk.TopK[i].Score > topk.TopK[i-1].Score {
			t.Fatal("topk not sorted")
		}
	}
	if eng.Dataset() != ds {
		t.Fatal("Dataset accessor")
	}
}

func TestPublicAPIOptionsCombine(t *testing.T) {
	ds := testDataset(t)
	serial, _ := NewEngine(ds)
	want, _ := serial.QueryTopK(40, 3)

	eng, err := NewEngine(ds,
		WithWorkers(4),
		With2D(),
		WithLabels(),
		WithLBStrategy(LBHashP),
		WithUBStrategy(UBGreedyD),
	)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		got, err := eng.QueryTopK(40, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(scores(got.TopK), scores(want.TopK)) {
			t.Fatalf("pass %d: %v != %v", pass, scores(got.TopK), scores(want.TopK))
		}
	}
}

func TestPublicAPIBadOptions(t *testing.T) {
	ds := testDataset(t)
	if _, err := NewEngine(ds, WithWorkers(-1)); err == nil {
		t.Error("negative workers accepted")
	}
	if _, err := NewEngine(ds, WithDiskLabels(string([]byte{0}))); err == nil {
		t.Error("invalid label dir accepted")
	}
}

func TestPublicAPIDiskLabels(t *testing.T) {
	ds := testDataset(t)
	dir := filepath.Join(t.TempDir(), "labels")
	eng, err := NewEngine(ds, WithDiskLabels(dir))
	if err != nil {
		t.Fatal(err)
	}
	first, err := eng.Query(40)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.UsedLabels {
		t.Fatal("first query claims label reuse")
	}
	second, err := eng.Query(40)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Stats.UsedLabels {
		t.Fatal("second query did not reuse labels")
	}
	if second.Best.Score != first.Best.Score {
		t.Fatalf("label run changed the answer: %d vs %d", second.Best.Score, first.Best.Score)
	}
	// A fresh engine over the same directory picks the labels up from
	// disk.
	eng2, _ := NewEngine(ds, WithDiskLabels(dir))
	third, err := eng2.Query(40)
	if err != nil {
		t.Fatal(err)
	}
	if !third.Stats.UsedLabels {
		t.Fatal("fresh engine ignored persisted labels")
	}
}

func TestPublicAPIDatasetRoundTrip(t *testing.T) {
	ds, err := NewDataset("api", [][]Point{
		{Pt(0, 0, 0), Pt(1, 0, 0)},
		{Pt(0.5, 0.5, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "api.bin")
	if err := SaveDataset(path, ds); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 2 || back.Name != "api" {
		t.Fatalf("round trip: %+v", back.Summary())
	}
	if _, err := NewDataset("bad", [][]Point{{}}); err == nil {
		t.Error("empty object accepted")
	}
}

func TestPublicAPITemporal(t *testing.T) {
	ds := WithTimestamps(testDataset(t), 1.0, 30, 41)
	eng, err := NewTemporalEngine(ds)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := eng.Query(40, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := eng.QueryTopK(40, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.TopK[0].Score > wide.Best.Score {
		t.Fatalf("narrow δ beat vacuous δ: %d > %d", narrow.TopK[0].Score, wide.Best.Score)
	}
	// Spatial-only data is rejected.
	if _, err := NewTemporalEngine(testDataset(t)); err == nil {
		t.Error("untimestamped dataset accepted")
	}
}

func TestStandardDatasetsPublic(t *testing.T) {
	sets := StandardDatasets(0.05)
	if len(sets) != 5 {
		t.Fatalf("datasets = %d", len(sets))
	}
	for name, ds := range sets {
		eng, err := NewEngine(ds)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := eng.Query(5); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestPublicAnalysisAPI(t *testing.T) {
	ds := testDataset(t)
	eng, _ := NewEngine(ds, WithWorkers(2))
	scores, err := eng.AllScores(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != ds.N() {
		t.Fatalf("scores len = %d", len(scores))
	}
	sweep, err := eng.Sweep([]float64{20, 40}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 2 || sweep[1].Result.Best.Score < sweep[0].Result.Best.Score {
		t.Fatalf("sweep = %+v", sweep)
	}
	set, err := eng.InteractingSet(40, sweep[1].Result.Best.Obj)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != sweep[1].Result.Best.Score {
		t.Fatalf("interacting set %d vs score %d", len(set), sweep[1].Result.Best.Score)
	}
	counts, width := ScoreHistogram(scores, 10)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(scores) || width < 1 {
		t.Fatalf("histogram total %d width %d", total, width)
	}
	if p := TopPercentile(scores, 1.0); p != sweep[1].Result.Best.Score {
		t.Fatalf("p100 %d vs best %d", p, sweep[1].Result.Best.Score)
	}
}

func TestGeneratorWrappers(t *testing.T) {
	if ds := GenerateNeuron(DefaultNeuronConfig()); ds.N() == 0 {
		t.Fatal("neuron")
	}
	cfg2 := DefaultNeuron2Config()
	cfg2.N = 20
	if ds := GenerateNeuron(cfg2); ds.N() != 20 {
		t.Fatal("neuron2")
	}
	bc := DefaultBirdConfig()
	bc.N = 30
	if ds := GenerateTrajectory(bc); ds.N() != 30 {
		t.Fatal("bird")
	}
	b2 := DefaultBird2Config()
	b2.N = 25
	if ds := GenerateTrajectory(b2); ds.N() != 25 {
		t.Fatal("bird2")
	}
	sc := DefaultSynConfig()
	sc.N = 40
	if ds := GeneratePowerLaw(sc); ds.N() != 40 {
		t.Fatal("syn")
	}
	if ds := GenerateUniform(UniformConfig{N: 10, M: 3, FieldSize: 10, Spread: 2, Seed: 1}); ds.N() != 10 {
		t.Fatal("uniform")
	}
}

func TestLoadCSVPublic(t *testing.T) {
	csvData := "tag,x,y\nA,0,0\nB,0.5,0\nC,99,99\n"
	ds, err := LoadCSV(strings.NewReader(csvData), CSVColumns{Obj: "tag", X: "x", Y: "y"})
	if err != nil {
		t.Fatal(err)
	}
	eng, _ := NewEngine(ds, With2D())
	res, err := eng.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Score != 1 {
		t.Fatalf("best = %+v", res.Best)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "d.csv")
	if err := os.WriteFile(path, []byte(csvData), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSVFile(path, CSVColumns{Obj: "tag", X: "x", Y: "y"})
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 3 {
		t.Fatalf("n = %d", back.N())
	}
	if _, err := LoadCSVFile(filepath.Join(dir, "missing.csv"), CSVColumns{Obj: "a", X: "b", Y: "c"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestQueryContextPublic(t *testing.T) {
	ds := testDataset(t)
	eng, _ := NewEngine(ds)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.QueryContext(ctx, 40); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	res, err := eng.QueryTopKContext(context.Background(), 40, 2)
	if err != nil || len(res.TopK) != 2 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}
