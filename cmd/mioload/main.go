// Command mioload drives an MIO query server (cmd/miosrv) with a
// Zipf-skewed repeated-r workload and reports client-side throughput
// and latency percentiles next to the server-side serving metrics
// (engine runs, coalesced requests, cache hits) observed over the run.
//
// Usage:
//
//	mioload -url http://localhost:8080 -n 2000 -c 16 -rs 4,5,6 -skew 1.3
//	mioload -compare -scale 0.25       # self-contained A/B benchmark
//	mioload -compare -shards 4         # sharded: healthy vs fault-injected
//	mioload -compare -dataset commute  # A/B over an adversarial dataset
//
// -compare needs no running server: it generates a Syn-style dataset,
// starts two in-process servers — one with the full serving stack,
// one with caching and coalescing disabled — and runs the identical
// workload against both, demonstrating what the serving layer buys on
// a repeated-threshold workload. With -shards it instead compares a
// healthy sharded cluster against the same cluster under injected
// shard faults, surfacing the degraded-answer rate and the
// retry/hedge work the coordinator spent staying available.
//
// Against a sharded server the per-run report always includes the
// degraded-answer rate and retry/hedge/down counts observed over the
// run (the shards section of /metrics).
package main

import (
	"flag"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"time"

	"mio/internal/core"
	"mio/internal/core/labelstore"
	"mio/internal/data"
	"mio/internal/fault"
	"mio/internal/server"
	"mio/internal/server/loadgen"
)

func main() {
	var (
		url     = flag.String("url", "http://localhost:8080", "target server root")
		n       = flag.Int("n", 1000, "total requests")
		c       = flag.Int("c", 8, "concurrent client workers")
		rsList  = flag.String("rs", "4,5,6", "comma-separated threshold set")
		skew    = flag.Float64("skew", 1.3, "Zipf skew over the threshold set (≤1 = uniform)")
		k       = flag.Int("k", 1, "top-k per query")
		seed    = flag.Int64("seed", 1, "workload RNG seed")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
		retries = flag.Int("retries", 3, "max attempts per request; 429/503 responses are retried with backoff (1 disables)")
		compare = flag.Bool("compare", false, "run the self-contained A/B benchmark instead")
		scale   = flag.Float64("scale", 0.25, "dataset size multiplier for -compare")
		workers = flag.Int("workers", 1, "engine workers per query for -compare")
		pool    = flag.Int("inflight", 2, "engine pool size for -compare")
		burst   = flag.Bool("burst", false, "closed-loop waves: all -c workers fire simultaneously and wait for the slowest (with -compare: batch execution vs query-major)")
		kspread = flag.Int("kspread", 0, "cycle each worker's k over 1..kspread instead of fixed -k (>1 enables)")
		shards  = flag.Int("shards", 0, "with -compare: A/B a healthy sharded cluster vs the same cluster under injected shard faults (>0 enables)")
		dataset = flag.String("dataset", "syn", "dataset generated for -compare: syn, or adversarial onecell, sparse, powersize, commute")
	)
	flag.Parse()

	rs, err := parseRS(*rsList)
	if err != nil {
		fatal(err)
	}
	cfg := loadgen.Config{
		BaseURL:     *url,
		Concurrency: *c,
		Requests:    *n,
		RValues:     rs,
		Skew:        *skew,
		K:           *k,
		Seed:        *seed,
		Timeout:     *timeout,
		MaxAttempts: *retries,
		Burst:       *burst,
		KSpread:     *kspread,
	}

	if *shards > 0 && !*compare {
		fatal("-shards requires -compare (point -url at a sharded miosrv for live runs)")
	}
	if *compare {
		switch {
		case *shards > 0:
			runCompareShards(cfg, *dataset, *scale, *workers, *pool, *shards)
		case *burst:
			runCompareBatch(cfg, *dataset, *scale, *workers, *pool)
		default:
			runCompare(cfg, *dataset, *scale, *workers, *pool)
		}
		return
	}
	fmt.Printf("mioload: %d requests, %d workers, rs=%v skew=%g → %s\n\n",
		cfg.Requests, cfg.Concurrency, rs, *skew, cfg.BaseURL)
	rep, err := loadgen.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep)
}

// runCompare benchmarks the full serving stack against a stripped one
// (no cache, no coalescing) on the same generated dataset and
// workload. Both keep the label store, so the delta isolates what the
// serving layer itself contributes.
func runCompare(cfg loadgen.Config, dataset string, scale float64, workers, pool int) {
	ds := genDataset(dataset, scale)
	fmt.Printf("mioload -compare: %q dataset, %d objects, %d points; %d requests, %d workers, rs=%v skew=%g\n",
		ds.Name, ds.N(), ds.TotalPoints(), cfg.Requests, cfg.Concurrency, cfg.RValues, cfg.Skew)

	run := func(label string, srvCfg server.Config) *loadgen.Report {
		s, err := server.New(ds, core.Options{Workers: workers, Labels: labelstore.NewStore()}, srvCfg)
		if err != nil {
			fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		runCfg := cfg
		runCfg.BaseURL = ts.URL
		rep, err := loadgen.Run(runCfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%s\n%s", label, rep)
		return rep
	}

	base := server.Config{MaxInFlight: pool, AdmissionWait: cfg.Timeout}
	full := run("with cache + coalescing:", base)
	stripped := base
	stripped.DisableCache = true
	stripped.DisableCoalesce = true
	plain := run("without (every request runs the engine):", stripped)

	fmt.Printf("\nsummary:\n")
	fmt.Printf("  engine runs   %d vs %d\n", full.EngineRuns, plain.EngineRuns)
	fmt.Printf("  coalesced     %d, cache hits %d (full stack)\n", full.Coalesced, full.CacheHits)
	if plain.QPS > 0 {
		fmt.Printf("  throughput    %.0f vs %.0f q/s (%.1fx)\n", full.QPS, plain.QPS, full.QPS/plain.QPS)
	}
	if full.Coalesced == 0 || full.CacheHits == 0 || full.QPS <= plain.QPS {
		fmt.Println("  NOTE: expected coalesced > 0, cache hits > 0 and a throughput win; " +
			"try more requests (-n) or a smaller dataset (-scale)")
		os.Exit(1)
	}
}

// runCompareBatch benchmarks epoch-driven batch execution against the
// query-major path on the same closed-loop burst workload. Both sides
// run with the result cache off — the workload keeps a standing set of
// concurrent queries in flight, and the question is how they execute,
// not whether their answers were memoised. The query-major side keeps
// request coalescing: it is the strongest non-batch configuration
// (identical (r, k) requests still collapse), so the delta isolates
// what cross-query cell sharing itself buys.
func runCompareBatch(cfg loadgen.Config, dataset string, scale float64, workers, pool int) {
	if !cfg.Burst {
		fatal("batch compare requires -burst")
	}
	// Shape the workload for the monitoring scenario the paper motivates:
	// many clients, few radii, varying k. Each base threshold is split
	// into a handful of nearby variants that keep its ⌈r⌉, and each
	// worker cycles k, so a wave mixes every tier of the grouping
	// algebra: identical ⌈r⌉ shares the large grid, upper-bounding and
	// cell walk; identical r shares the small grid and lower bounds;
	// identical (r, k) shares one result — which the query-major side
	// matches through request coalescing, keeping the comparison about
	// execution strategy rather than result reuse.
	if cfg.KSpread < 2 {
		cfg.KSpread = 4
	}
	const variantsPerR = 4
	expanded := make([]float64, 0, variantsPerR*len(cfg.RValues))
	for _, r := range cfg.RValues {
		// Spread downward within (⌈r⌉−1, r]: every variant keeps ⌈r⌉.
		step := (r - (math.Ceil(r) - 1)) * 0.5 / variantsPerR
		for j := 0; j < variantsPerR; j++ {
			expanded = append(expanded, r-float64(j)*step)
		}
	}
	cfg.RValues = expanded
	ds := genDataset(dataset, scale)
	fmt.Printf("mioload -compare -burst: %q dataset, %d objects, %d points; %d requests in waves of %d, %d distinct thresholds, kspread=%d\n",
		ds.Name, ds.N(), ds.TotalPoints(), cfg.Requests, cfg.Concurrency, len(cfg.RValues), cfg.KSpread)

	run := func(label string, srvCfg server.Config) *loadgen.Report {
		s, err := server.New(ds, core.Options{Workers: workers, Labels: labelstore.NewStore()}, srvCfg)
		if err != nil {
			fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		runCfg := cfg
		runCfg.BaseURL = ts.URL
		rep, err := loadgen.Run(runCfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%s\n%s", label, rep)
		return rep
	}

	base := server.Config{MaxInFlight: pool, AdmissionWait: cfg.Timeout, DisableCache: true}
	batchCfg := base
	batchCfg.BatchExecution = true
	// In a closed-loop wave the size trigger seals each epoch the moment
	// the whole wave has arrived; the window only bounds a partial
	// trailing wave, so it can be generous without adding gather latency.
	batchCfg.BatchMaxSize = cfg.Concurrency
	batchCfg.BatchWindow = 250 * time.Millisecond
	batched := run("batch execution (epochs share builds and cell walks):", batchCfg)
	plain := run("query-major (each query builds and walks alone):", base)

	fmt.Printf("\nsummary:\n")
	if batched.BatchEpochs > 0 {
		fmt.Printf("  epochs        %d (avg %.1f queries/epoch), %d plans for %d queries (%d shared)\n",
			batched.BatchEpochs, float64(batched.BatchQueries)/float64(batched.BatchEpochs),
			batched.BatchPlans, batched.BatchQueries, batched.BatchShared)
		fmt.Printf("  cell visits   %d deduped by shared walks\n", batched.BatchCellsDeduped)
	}
	fmt.Printf("  engine runs   %d vs %d\n", batched.EngineRuns, plain.EngineRuns)
	if plain.QPS > 0 {
		fmt.Printf("  throughput    %.0f vs %.0f q/s (%.1fx)\n", batched.QPS, plain.QPS, batched.QPS/plain.QPS)
	}
	if batched.BatchQueries == 0 || plain.QPS <= 0 || batched.QPS < 2*plain.QPS {
		fmt.Println("  NOTE: expected batched queries > 0 and ≥2x batch throughput; " +
			"try more concurrency (-c), thresholds sharing ⌈r⌉ (-rs), or a larger dataset (-scale)")
		os.Exit(1)
	}
}

// runCompareShards benchmarks a healthy sharded cluster against the
// identical cluster with faults injected into the per-shard bound
// attempts (errors force retries and shard-down degradation, latency
// triggers the hedged scatter). Cache and coalescing are off on both
// sides so every request exercises the scatter path; the delta
// surfaces what fault tolerance costs (retries, hedges) and what it
// preserves (200s with certified intervals instead of 5xx).
func runCompareShards(cfg loadgen.Config, dataset string, scale float64, workers, pool, shards int) {
	ds := genDataset(dataset, scale)
	fmt.Printf("mioload -compare -shards: %q dataset, %d objects, %d points; %d requests, %d workers, rs=%v skew=%g, %d shards\n",
		ds.Name, ds.N(), ds.TotalPoints(), cfg.Requests, cfg.Concurrency, cfg.RValues, cfg.Skew, shards)

	run := func(label string, srvCfg server.Config) *loadgen.Report {
		s, err := server.New(ds, core.Options{Workers: workers, Labels: labelstore.NewStore()}, srvCfg)
		if err != nil {
			fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		runCfg := cfg
		runCfg.BaseURL = ts.URL
		rep, err := loadgen.Run(runCfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%s\n%s", label, rep)
		return rep
	}

	base := server.Config{
		MaxInFlight:     pool,
		AdmissionWait:   cfg.Timeout,
		DisableCache:    true,
		DisableCoalesce: true,
		Shards:          shards,
		ShardRetries:    2,
		// A short breaker cooldown keeps the run moving: tripped shards
		// (expected under 20% attempt errors) re-probe quickly instead
		// of sitting open for the 5s production default.
		ShardBreakCooldown: time.Second,
	}
	healthy := run("healthy cluster:", base)

	// Errors make individual bound attempts fail: most are absorbed by
	// retries, a run of bad luck exhausts a shard's budget (down shard
	// → degraded answer), and consecutive failures trip its breaker —
	// exercising every rung of the degradation ladder. Latency makes
	// attempts straggle past the default hedge trigger (timeout/4 =
	// 500ms) without reaching the attempt deadline, so the hedged
	// second attempt is what keeps those queries fast.
	reg, err := fault.Parse(fmt.Sprintf(
		"seed=%d;shard.run=error:0.2;shard.run=latency:0.2:600ms", cfg.Seed))
	if err != nil {
		fatal(err)
	}
	faulted := base
	faulted.Faults = reg
	chaos := run("same cluster, faults injected into shard attempts:", faulted)

	fmt.Printf("\nsummary:\n")
	okHealthy, okChaos := healthy.Status[http.StatusOK], chaos.Status[http.StatusOK]
	rate := 0.0
	if okChaos > 0 {
		rate = 100 * float64(chaos.ShardDegraded) / float64(okChaos)
	}
	fmt.Printf("  degraded      %d vs %d of %d 200s (%.1f%%) — certified intervals, not 5xx\n",
		healthy.ShardDegraded, chaos.ShardDegraded, okChaos, rate)
	fmt.Printf("  shard faults  %d vs %d retries, %d vs %d hedges, %d vs %d down/late outcomes\n",
		healthy.ShardRetries, chaos.ShardRetries,
		healthy.ShardHedges, chaos.ShardHedges,
		healthy.ShardDowns, chaos.ShardDowns)
	if healthy.ShardStale+chaos.ShardStale+healthy.ShardBad+chaos.ShardBad > 0 {
		fmt.Printf("  shard reject  %d vs %d stale-generation, %d vs %d invalid responses\n",
			healthy.ShardStale, chaos.ShardStale, healthy.ShardBad, chaos.ShardBad)
	}
	if !healthy.Sharded || !chaos.Sharded {
		fmt.Println("  NOTE: server did not report a shards metrics section; is Config.Shards wired?")
		os.Exit(1)
	}
	if healthy.ShardDegraded > 0 || okHealthy == 0 {
		fmt.Println("  NOTE: expected zero degraded answers on the healthy cluster")
		os.Exit(1)
	}
	if chaos.ShardRetries+chaos.ShardHedges == 0 || okChaos == 0 {
		fmt.Println("  NOTE: expected injected faults to cost retries or hedges and still serve 200s; " +
			"try more requests (-n) or a different -seed")
		os.Exit(1)
	}
}

func parseRS(list string) ([]float64, error) {
	parts := strings.Split(list, ",")
	rs := make([]float64, 0, len(parts))
	for _, p := range parts {
		r, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("-rs entry %q is not a positive number", p)
		}
		rs = append(rs, r)
	}
	return rs, nil
}

// genDataset resolves the -dataset flag for the -compare modes: the
// Syn stand-in by default, or one of the adversarial tuning stresses.
func genDataset(name string, scale float64) *data.Dataset {
	clamp := func(n int) int {
		if n < 1 {
			return 1
		}
		return n
	}
	switch name {
	case "syn":
		cfg := data.DefaultSyn()
		cfg.N = clamp(int(float64(cfg.N) * scale))
		return data.GenPowerLaw(cfg)
	case "onecell":
		cfg := data.DefaultOneCell()
		cfg.N = clamp(int(float64(cfg.N) * scale))
		return data.GenOneCell(cfg)
	case "sparse":
		cfg := data.DefaultUniformSparse()
		cfg.N = clamp(int(float64(cfg.N) * scale))
		return data.GenUniformSparse(cfg)
	case "powersize":
		cfg := data.DefaultPowerLawSizes()
		cfg.N = clamp(int(float64(cfg.N) * scale))
		return data.GenPowerLawSizes(cfg)
	case "commute":
		cfg := data.DefaultHotspotCommute()
		cfg.N = clamp(int(float64(cfg.N) * scale))
		return data.GenHotspotCommute(cfg)
	}
	fatal(fmt.Sprintf("unknown -dataset %q (syn, onecell, sparse, powersize, commute)", name))
	panic("unreachable")
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "mioload:", v)
	os.Exit(1)
}
