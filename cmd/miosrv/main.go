// Command miosrv serves MIO queries over HTTP: it loads (or
// generates) a dataset once, keeps a pool of engines sharing one
// label store so queries with the same ⌈r⌉ recycle label work
// (§III-D), and wraps them in request coalescing, a bounded result
// cache and admission control (DESIGN.md §9).
//
// Usage:
//
//	miosrv -data birds.bin -addr :8080 -inflight 4
//	miosrv -gen syn -scale 0.5            # serve a generated dataset
//	miosrv -data d.bin -no-cache -no-coalesce  # measure the raw engine
//	miosrv -gen syn -faults 'seed=42;engine.verification=panic:0.01'  # chaos mode
//	miosrv -gen syn -state-dir ./state    # durable: restarts recover dataset + labels
//	miosrv -gen syn -shards 4             # fault-tolerant sharded scatter–gather
//	miosrv -gen commute -autotune         # profile the dataset, let it pick the knobs
//
// Multi-process sharded serving splits the same scatter–gather across
// real processes (DESIGN.md §17). Every process loads the identical
// dataset (same -data file, or same -gen/-seed/-scale):
//
//	miosrv -gen syn -shards 3 -shard-serve -shard-index 0 -addr :7001   # worker 0
//	miosrv -gen syn -shards 3 -shard-serve -shard-index 1 -addr :7002   # worker 1
//	miosrv -gen syn -shards 3 -shard-serve -shard-index 2 -addr :7003   # worker 2
//	miosrv -gen syn -shards-at http://localhost:7001,http://localhost:7002,http://localhost:7003
//
// A worker serves one shard's bound/verify phases plus a /shardz
// health endpoint; the coordinator validates every worker response
// (checksummed envelope, dataset-generation stamp, range and order
// checks) and degrades to certified [LB, UB] intervals when workers
// die, flap, or answer from the wrong dataset generation.
//
// -shards and -batch are mutually exclusive: both want to own
// /v1/query routing (scatter–gather vs epoch batching), and the server
// refuses the combination. All flag combinations are validated before
// the dataset is loaded, so a bad invocation fails in milliseconds.
//
// With -autotune the engine knobs (-workers, -dims, the partitioning
// strategies and the freeze threshold) are selected from a profile of
// the served dataset (DESIGN.md §16); passing -workers or -dims
// alongside -autotune is an error. -inflight, -batch-window and
// -batch-max are tuned only when not set explicitly. Every dataset
// swap re-profiles and re-tunes; /metrics reports the active profile
// and knob assignment under "tuning".
//
// With -state-dir the server keeps its state in a crash-safe snapshot
// directory: the dataset (and every label set queries compute) is
// committed as a checksummed generation, dataset swaps commit a new
// generation before serving it, and a restart recovers the last good
// generation — warm labels included — quarantining anything corrupt.
// On a warm restart -data/-gen are ignored in favour of the recovered
// generation; use POST /v1/dataset to replace it.
//
// Endpoints: GET /v1/query?r=&k=, /v1/interacting?r=&obj=,
// /v1/scores?r=, /v1/sweep?rs=&k=, /healthz, /metrics; POST
// /v1/dataset (only with -allow-swap). SIGINT/SIGTERM drain in-flight
// requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mio/internal/core"
	"mio/internal/core/labelstore"
	"mio/internal/data"
	"mio/internal/durable"
	"mio/internal/fault"
	"mio/internal/server"
	"mio/internal/shard/remote"
)

func main() {
	var (
		dataPath = flag.String("data", "", "dataset file to serve")
		gen      = flag.String("gen", "", "serve a generated dataset instead: neuron, bird, syn, uniform, or adversarial onecell, sparse, powersize, commute")
		scale    = flag.Float64("scale", 1, "size multiplier for -gen")
		seed     = flag.Int64("seed", 1, "RNG seed for -gen")
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 1, "CPU cores per engine (≥2 enables parallel processing)")
		dims     = flag.Int("dims", 3, "data dimensionality (2 or 3)")
		inflight = flag.Int("inflight", 1, "max concurrent engine runs (sizes the engine pool)")
		labelDir = flag.String("labels", "", "directory for a persistent label store (default in-memory)")
		stateDir = flag.String("state-dir", "", "durable state directory: crash-safe dataset generations + per-generation labels")
		noLabels = flag.Bool("no-labels", false, "disable the §III-D label store")
		cacheSz  = flag.Int("cache", 256, "result cache capacity in entries")
		noCache  = flag.Bool("no-cache", false, "disable the result cache")
		noCoal   = flag.Bool("no-coalesce", false, "disable request coalescing")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request engine deadline (0 disables)")
		admWait  = flag.Duration("admission-wait", 100*time.Millisecond, "max time a request queues for an engine slot")
		swap     = flag.Bool("allow-swap", false, "enable POST /v1/dataset (reads server-local paths)")
		faults   = flag.String("faults", "", "arm fault injection for chaos testing, e.g. 'seed=42;engine.verification=panic:0.01;server.run=latency:0.1:5ms'")
		batchOn  = flag.Bool("batch", false, "route /v1/query through epoch-driven batch execution (queries sharing ⌈r⌉ share one index build and cell walk)")
		batchWin = flag.Duration("batch-window", 0, "batch epoch gather window (0 selects the default 2ms; needs -batch)")
		batchMax = flag.Int("batch-max", 0, "seal a batch epoch early at this many queries (0 selects the default 128; needs -batch)")
		shards   = flag.Int("shards", 0, "partition the dataset across this many shard engines behind a fault-tolerant scatter–gather coordinator (0 disables; incompatible with -batch)")
		shardR   = flag.Float64("shard-max-r", 0, "replica horizon: largest r the shards answer exactly, larger radii fall back to the solo pool (0 selects 10; needs -shards)")
		shardTO  = flag.Duration("shard-timeout", 0, "per-shard attempt deadline (0 selects 2s; needs -shards)")
		shardTry = flag.Int("shard-retries", 0, "per-shard retry budget after a failed attempt (0 selects 1, negative disables; needs -shards)")
		shardHdg = flag.Duration("shard-hedge", 0, "launch a speculative extra attempt against a straggling shard after this long (0 selects timeout/4, negative disables; needs -shards)")
		shardSrv = flag.Bool("shard-serve", false, "run as one shard WORKER of a multi-process cluster: serve this shard's bound/verify phases plus /shardz (needs -shards for the partition count and -shard-index)")
		shardIdx = flag.Int("shard-index", 0, "this worker's shard id in [0, shards) (needs -shard-serve)")
		shardsAt = flag.String("shards-at", "", "run as the COORDINATOR of a multi-process cluster: comma-separated worker base URLs in shard-id order, e.g. http://h1:7001,http://h2:7001 (incompatible with -shards/-batch)")
		shardPrb = flag.Duration("shard-probe", 0, "remote worker health-probe interval (0 selects 1s; needs -shards-at)")
		autotune = flag.Bool("autotune", false, "profile the dataset and auto-select the engine knobs (conflicts with explicit -workers/-dims; -inflight/-batch-window/-batch-max are tuned only when unset)")
	)
	flag.Parse()

	// Validate every flag combination up front, before any dataset is
	// loaded or generated: a bad invocation must fail in milliseconds
	// with one clear line, not after minutes of generation.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	switch {
	case *shards > 0 && *batchOn:
		fatal("-shards and -batch are mutually exclusive (both own /v1/query routing)")
	case (*batchWin != 0 || *batchMax != 0) && !*batchOn:
		fatal("-batch-window/-batch-max require -batch")
	case (*shardR != 0 || *shardTO != 0 || *shardTry != 0 || *shardHdg != 0) && *shards == 0 && *shardsAt == "":
		fatal("-shard-max-r/-shard-timeout/-shard-retries/-shard-hedge require -shards or -shards-at")
	case *shardSrv && *shardsAt != "":
		fatal("-shard-serve and -shards-at are mutually exclusive (one process is a worker or a coordinator, not both)")
	case *shardSrv && *shards < 2:
		fatal("-shard-serve requires -shards ≥ 2 (the cluster's total partition count)")
	case *shardSrv && (*shardIdx < 0 || *shardIdx >= *shards):
		fatal(fmt.Sprintf("-shard-index %d outside [0, %d)", *shardIdx, *shards))
	case explicit["shard-index"] && !*shardSrv:
		fatal("-shard-index requires -shard-serve")
	case *shardSrv && (*batchOn || *swap || *stateDir != "" || *autotune):
		fatal("-shard-serve is a bare shard worker: incompatible with -batch, -allow-swap, -state-dir, -autotune")
	case *shardsAt != "" && *shards > 0:
		fatal("-shards-at and -shards are mutually exclusive (remote vs in-process shards)")
	case *shardsAt != "" && *batchOn:
		fatal("-shards-at and -batch are mutually exclusive (both own /v1/query routing)")
	case *shardPrb != 0 && *shardsAt == "":
		fatal("-shard-probe requires -shards-at")
	case *labelDir != "" && *stateDir != "":
		fatal("-labels and -state-dir are mutually exclusive (labels live inside the state directory)")
	case *dataPath != "" && *gen != "":
		fatal("-data and -gen are mutually exclusive")
	case *autotune && (explicit["workers"] || explicit["dims"]):
		fatal("-autotune conflicts with explicit -workers/-dims (the tuner owns those knobs; drop the explicit flag)")
	}

	var reg *fault.Registry
	if *faults != "" {
		var err error
		reg, err = fault.Parse(*faults)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "miosrv: FAULT INJECTION ARMED: %s\n", reg)
	}

	// Resolve the served dataset. With -state-dir a committed generation
	// wins over -data/-gen (warm restart); an empty state directory gets
	// its first generation from them.
	var (
		ds         *data.Dataset
		st         *server.DurableState
		stateStore *labelstore.Store
	)
	if *stateDir != "" {
		var err error
		st, err = server.OpenState(*stateDir, durable.IO{Faults: reg})
		if err != nil {
			fatal(err)
		}
		rec, err := st.Recover()
		if err != nil {
			fatal(err)
		}
		if rec != nil {
			if *dataPath != "" || *gen != "" {
				fmt.Fprintln(os.Stderr, "miosrv: state dir holds a committed generation; ignoring -data/-gen (POST /v1/dataset to replace)")
			}
			ds, stateStore = rec.Dataset, rec.Labels
			fmt.Fprintf(os.Stderr, "miosrv: recovered generation %d from %s\n", rec.Generation, *stateDir)
		} else {
			if ds, err = loadOrGen(*dataPath, *gen, *scale, *seed); err != nil {
				fatal(err)
			}
			var genNum uint64
			if stateStore, genNum, err = st.CommitDataset(ds); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "miosrv: committed generation %d to %s\n", genNum, *stateDir)
		}
	} else {
		var err error
		if ds, err = loadOrGen(*dataPath, *gen, *scale, *seed); err != nil {
			fatal(err)
		}
	}

	opts := core.Options{Dims: *dims, Workers: *workers}
	if !*noLabels {
		switch {
		case stateStore != nil:
			opts.Labels = stateStore
		case *labelDir != "":
			store, err := labelstore.NewDiskStore(*labelDir)
			if err != nil {
				fatal(err)
			}
			opts.Labels = store
		default:
			opts.Labels = labelstore.NewStore()
		}
	}
	if *shardSrv {
		serveWorker(ds, opts, reg, *addr, *shardIdx, *shards, *shardR, *inflight)
		return
	}

	cfg := server.Config{
		MaxInFlight:        *inflight,
		AdmissionWait:      *admWait,
		QueryTimeout:       queryTimeout(*timeout),
		CacheSize:          *cacheSz,
		DisableCache:       *noCache,
		DisableCoalesce:    *noCoal,
		AllowSwap:          *swap,
		State:              st,
		Faults:             reg,
		BatchExecution:     *batchOn,
		BatchWindow:        *batchWin,
		BatchMaxSize:       *batchMax,
		Shards:             *shards,
		ShardMaxR:          *shardR,
		ShardTimeout:       *shardTO,
		ShardRetries:       *shardTry,
		ShardHedgeAfter:    *shardHdg,
		ShardAddrs:         splitAddrs(*shardsAt),
		ShardProbeInterval: *shardPrb,
		AutoTune:           *autotune,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "miosrv: "+format+"\n", args...)
		},
	}
	if *autotune && !explicit["inflight"] {
		// Unset pool size: let the tuner pick it (pool-fill-cores).
		cfg.MaxInFlight = 0
	}
	srv, err := server.New(ds, opts, cfg)
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("miosrv: serving %q (%d objects, %d points) on %s  "+
		"(pool %d, cache %v, coalesce %v, batch %v, shards %d, autotune %v)\n",
		ds.Name, ds.N(), ds.TotalPoints(), *addr, srv.MaxInFlight(), !*noCache, !*noCoal, *batchOn, *shards, *autotune)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()

	select {
	case err := <-done:
		// ListenAndServe only returns on failure here (Shutdown is the
		// other path, taken below).
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "miosrv: draining")
	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "miosrv: shutdown:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "miosrv: bye")
}

// serveWorker runs the process as one shard worker: a Worker handler
// on addr with graceful SIGINT/SIGTERM shutdown. The engine pool gets
// two slots per coordinator-side in-flight query (original + hedge),
// mirroring the in-process provisioning rule.
func serveWorker(ds *data.Dataset, opts core.Options, reg *fault.Registry, addr string, index, shards int, maxR float64, inflight int) {
	w, err := remote.NewWorker(ds, opts, remote.WorkerConfig{
		Index:  index,
		Shards: shards,
		MaxR:   maxR,
		Pool:   2 * inflight,
		Faults: reg,
	})
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           w.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	st := w.Stamp()
	fmt.Printf("miosrv: shard worker %d/%d serving %q on %s (generation %d)\n",
		index, shards, ds.Name, addr, st.Generation)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	select {
	case err := <-done:
		fatal(err)
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "miosrv: shutdown:", err)
		os.Exit(1)
	}
	w.Close()
	fmt.Fprintln(os.Stderr, "miosrv: worker bye")
}

// splitAddrs parses the -shards-at list, trimming whitespace and
// dropping empty entries.
func splitAddrs(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// queryTimeout maps the flag convention (0 disables) onto the server
// convention (0 means default, negative disables).
func queryTimeout(d time.Duration) time.Duration {
	if d == 0 {
		return -1
	}
	return d
}

func loadOrGen(path, gen string, scale float64, seed int64) (*data.Dataset, error) {
	switch {
	case path != "" && gen != "":
		return nil, errors.New("-data and -gen are mutually exclusive")
	case path != "":
		return data.LoadFile(path)
	case gen == "":
		return nil, errors.New("one of -data or -gen is required")
	}
	clamp := func(v float64) int {
		if v < 1 {
			return 1
		}
		return int(v)
	}
	switch gen {
	case "neuron":
		cfg := data.DefaultNeuron()
		cfg.N = clamp(float64(cfg.N) * scale)
		cfg.Seed = seed
		return data.GenNeuron(cfg), nil
	case "bird":
		cfg := data.DefaultBird()
		cfg.N = clamp(float64(cfg.N) * scale)
		cfg.Seed = seed
		return data.GenTrajectory(cfg), nil
	case "syn":
		cfg := data.DefaultSyn()
		cfg.N = clamp(float64(cfg.N) * scale)
		cfg.Seed = seed
		return data.GenPowerLaw(cfg), nil
	case "uniform":
		cfg := data.UniformConfig{N: clamp(2000 * scale), M: 16, FieldSize: 1000, Spread: 8, Seed: seed}
		return data.GenUniform(cfg), nil
	case "onecell":
		cfg := data.DefaultOneCell()
		cfg.N = clamp(float64(cfg.N) * scale)
		cfg.Seed = seed
		return data.GenOneCell(cfg), nil
	case "sparse":
		cfg := data.DefaultUniformSparse()
		cfg.N = clamp(float64(cfg.N) * scale)
		cfg.Seed = seed
		return data.GenUniformSparse(cfg), nil
	case "powersize":
		cfg := data.DefaultPowerLawSizes()
		cfg.N = clamp(float64(cfg.N) * scale)
		cfg.Seed = seed
		return data.GenPowerLawSizes(cfg), nil
	case "commute":
		cfg := data.DefaultHotspotCommute()
		cfg.N = clamp(float64(cfg.N) * scale)
		cfg.Seed = seed
		return data.GenHotspotCommute(cfg), nil
	}
	return nil, fmt.Errorf("unknown -gen dataset %q", gen)
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "miosrv:", v)
	os.Exit(1)
}
