// Command miocheck cross-validates every algorithm in the repository
// on a dataset: it computes exact scores with the nested-loop oracle
// and verifies that SG, NL-kd, the R-tree baselines, BIGrid (serial,
// parallel, labeled) and the theoretical index all agree. Use it to
// sanity-check a dataset file before trusting benchmark numbers, or as
// a release smoke test.
//
// Usage:
//
//	miocheck -data birds.bin -r 4
//	miocheck -gen syn -scale 0.05 -r 4,8       # on a generated stand-in
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"strings"

	"mio"
	"mio/internal/baseline"
	"mio/internal/core"
	"mio/internal/core/labelstore"
	"mio/internal/data"
)

func main() {
	var (
		dataPath = flag.String("data", "", "dataset file to check")
		gen      = flag.String("gen", "", "generate a stand-in instead: neuron, neuron2, bird, bird2, syn")
		scale    = flag.Float64("scale", 0.05, "scale for -gen")
		rs       = flag.String("r", "4", "comma-separated thresholds")
		k        = flag.Int("k", 5, "top-k depth to compare")
		theo     = flag.Bool("theoretical", false, "also check the O(n²)-space theoretical index (slow)")
	)
	flag.Parse()

	ds, err := loadOrGen(*dataPath, *gen, *scale)
	if err != nil {
		fatal(err)
	}
	fmt.Println(ds.Summary())
	if ds.TotalPoints() > 500_000 {
		fatal("dataset too large for the quadratic oracle; sample it first")
	}

	failures := 0
	for _, f := range strings.Split(*rs, ",") {
		var r float64
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%g", &r); err != nil || r <= 0 {
			fatal(fmt.Sprintf("bad -r entry %q", f))
		}
		failures += checkOne(ds, r, *k, *theo)
	}
	if failures > 0 {
		fatal(fmt.Sprintf("%d check(s) FAILED", failures))
	}
	fmt.Println("all algorithms agree")
}

func loadOrGen(path, gen string, scale float64) (*mio.Dataset, error) {
	if path != "" {
		return mio.LoadDataset(path)
	}
	sets := data.Standard(scale)
	name := map[string]string{
		"neuron": "Neuron", "neuron2": "Neuron-2",
		"bird": "Bird", "bird2": "Bird-2", "syn": "Syn",
	}[gen]
	if name == "" {
		return nil, fmt.Errorf("need -data or a valid -gen (got %q)", gen)
	}
	return sets[name], nil
}

// checkOne validates one threshold and returns the number of failed
// comparisons.
func checkOne(ds *mio.Dataset, r float64, k int, theo bool) int {
	fmt.Printf("r=%g:\n", r)
	oracle := baseline.NLScores(ds, r)
	want := topScores(oracle, k)

	failures := 0
	report := func(name string, got []int) {
		if reflect.DeepEqual(got, want) {
			fmt.Printf("  %-28s ok\n", name)
			return
		}
		fmt.Printf("  %-28s MISMATCH: %v want %v\n", name, got, want)
		failures++
	}

	report("SG", baselineTop(baseline.SG(ds, r, k)))
	report("NL-kd", baselineTop(baseline.NLKD(ds, r, k)))
	report("RT-object", baselineTop(baseline.RTObject(ds, r, k)))
	report("RT-point", baselineTop(baseline.RTPoint(ds, r, k)))

	engines := []struct {
		name string
		opts core.Options
	}{
		{"BIGrid", core.Options{}},
		{"BIGrid parallel", core.Options{Workers: 4}},
		{"BIGrid parallel hash-p/greedy-d", core.Options{Workers: 4, LB: core.LBHashP, UB: core.UBGreedyD}},
	}
	for _, e := range engines {
		eng, err := core.NewEngine(ds, e.opts)
		if err != nil {
			fatal(err)
		}
		res, err := eng.RunTopK(r, k)
		if err != nil {
			fatal(err)
		}
		report(e.name, engineTop(res))
	}

	// Labeled: collect then replay.
	store := labelstore.NewStore()
	leng, err := core.NewEngine(ds, core.Options{Labels: store})
	if err != nil {
		fatal(err)
	}
	if _, err := leng.RunTopK(r, k); err != nil {
		fatal(err)
	}
	res, err := leng.RunTopK(r, k)
	if err != nil {
		fatal(err)
	}
	if !res.Stats.UsedLabels {
		fmt.Printf("  %-28s MISMATCH: labels not reused\n", "BIGrid-label")
		failures++
	} else {
		report("BIGrid-label", engineTop(res))
	}

	if theo {
		th := baseline.BuildTheoretical(ds, 2)
		report("Theoretical", baselineTop(th.Query(r, k)))
	}
	return failures
}

func topScores(scores []int, k int) []int {
	return baselineTop(baseline.TopKFromScores(scores, k))
}

func baselineTop(s []baseline.Scored) []int {
	out := make([]int, len(s))
	for i, e := range s {
		out[i] = e.Score
	}
	return out
}

func engineTop(res *core.Result) []int {
	out := make([]int, len(res.TopK))
	for i, e := range res.TopK {
		out[i] = e.Score
	}
	return out
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "miocheck:", v)
	os.Exit(1)
}
