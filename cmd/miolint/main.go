// Command miolint runs the repository's static-analysis suite
// (internal/lint): from-scratch analyzers, built only on the standard
// library's go/parser and go/types, that enforce the conventions the
// MIO pipeline's correctness depends on — squared-distance
// comparisons, bitmap.Scratch epoch discipline, goroutine hygiene in
// the §IV parallel phases, error handling in the I/O layers,
// exhaustive config literals in tests, and (via the CFG + dataflow
// engine) path-sensitive lock discipline, context threading, the
// durable commit protocol, and fault-point spelling.
//
// Usage:
//
//	miolint ./...          # analyze the whole module
//	miolint -list          # show the analyzers
//	miolint -fixtures      # self-test: run every analyzer on its golden fixture
//	miolint -format=json ./...
//	miolint -format=github ./...   # ::error annotations for CI
//	miolint -disable=options,errcheck ./...
//
// Suppress a single finding with a trailing or preceding comment:
//
//	//lint:ignore <analyzer> <reason>
//
// Suppressions that stop matching any diagnostic are reported as
// stale (disable with -disable, which turns the audit off).
//
// Exit status: 0 clean, 1 findings (or fixture failures) reported,
// 2 load/type errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mio/internal/lint"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list analyzers and exit")
		disable  = flag.String("disable", "", "comma-separated analyzers to skip (also disables the stale-suppression audit)")
		noTests  = flag.Bool("notests", false, "skip _test.go files")
		format   = flag.String("format", "text", "diagnostic output: text, json, or github (::error annotations)")
		jsonFlag = flag.Bool("json", false, "shorthand for -format=json")
		fixtures = flag.Bool("fixtures", false, "self-test: run every analyzer against its golden fixture and exit")
	)
	flag.Parse()
	if *jsonFlag {
		*format = "json"
	}
	switch *format {
	case "text", "json", "github":
	default:
		fatal(fmt.Sprintf("unknown -format %q (want text, json or github)", *format))
	}

	runner := lint.NewRunner()
	if *list {
		for _, a := range runner.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *disable != "" {
		runner.Disable(*disable)
	}

	// Any package pattern argument ("./...", a directory) anchors the
	// load at that directory's module; the whole module is analyzed.
	dir := "."
	if args := flag.Args(); len(args) > 0 && args[0] != "./..." {
		dir = args[0]
	}

	loader, err := lint.NewLoader(dir)
	if err != nil {
		fatal(err)
	}

	if *fixtures {
		selfTest(loader.ModuleDir())
		return
	}

	loader.IncludeTests = !*noTests
	pkgs, err := loader.LoadModule()
	if err != nil {
		fatal(err)
	}

	loadErrs := 0
	for _, pkg := range pkgs {
		for _, e := range pkg.Errors {
			fmt.Fprintf(os.Stderr, "miolint: %s: %v\n", pkg.Path, e)
			loadErrs++
		}
	}
	if loadErrs > 0 {
		fatal(fmt.Sprintf("%d type-check error(s); diagnostics would be unreliable", loadErrs))
	}

	diags := runner.Run(pkgs)
	emit(*format, diags)
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "miolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// selfTest runs every analyzer against its golden fixture — the same
// suite as `go test ./internal/lint -run TestAnalyzersGolden` — so CI
// proves the analyzers find what they claim before trusting a clean
// module run.
func selfTest(moduleDir string) {
	dir := filepath.Join(moduleDir, "internal", "lint", "testdata")
	failed := 0
	for _, fx := range lint.FixtureSuite() {
		fails, err := lint.RunFixture(dir, fx)
		if err != nil {
			fatal(fmt.Sprintf("fixture %s: %v", fx.Name, err))
		}
		if len(fails) == 0 {
			fmt.Printf("ok   %s\n", fx.Name)
			continue
		}
		failed++
		fmt.Printf("FAIL %s\n", fx.Name)
		for _, f := range fails {
			fmt.Printf("     %s\n", f)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "miolint: %d fixture(s) failed\n", failed)
		os.Exit(1)
	}
}

// jsonDiag is the machine-readable diagnostic shape.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func emit(format string, diags []lint.Diagnostic) {
	switch format {
	case "json":
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	case "github":
		for _, d := range diags {
			fmt.Printf("::error file=%s,line=%d,col=%d,title=miolint %s::%s\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, ghEscape(d.Message))
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
}

// ghEscape encodes the characters GitHub workflow commands treat as
// structure, per the annotations syntax.
func ghEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "miolint:", v)
	os.Exit(2)
}
