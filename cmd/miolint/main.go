// Command miolint runs the repository's static-analysis suite
// (internal/lint): from-scratch analyzers, built only on the standard
// library's go/parser and go/types, that enforce the conventions the
// MIO pipeline's correctness depends on — squared-distance
// comparisons, bitmap.Scratch epoch discipline, goroutine hygiene in
// the §IV parallel phases, error handling in the I/O layers, and
// exhaustive config literals in tests.
//
// Usage:
//
//	miolint ./...          # analyze the whole module
//	miolint -list          # show the analyzers
//	miolint -disable=options,errcheck ./...
//
// Suppress a single finding with a trailing or preceding comment:
//
//	//lint:ignore <analyzer> <reason>
//
// Exit status: 0 clean, 1 findings reported, 2 load/type errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"mio/internal/lint"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list analyzers and exit")
		disable = flag.String("disable", "", "comma-separated analyzers to skip")
		noTests = flag.Bool("notests", false, "skip _test.go files")
	)
	flag.Parse()

	runner := lint.NewRunner()
	if *list {
		for _, a := range runner.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *disable != "" {
		runner.Disable(*disable)
	}

	// Any package pattern argument ("./...", a directory) anchors the
	// load at that directory's module; the whole module is analyzed.
	dir := "."
	if args := flag.Args(); len(args) > 0 && args[0] != "./..." {
		dir = args[0]
	}

	loader, err := lint.NewLoader(dir)
	if err != nil {
		fatal(err)
	}
	loader.IncludeTests = !*noTests
	pkgs, err := loader.LoadModule()
	if err != nil {
		fatal(err)
	}

	loadErrs := 0
	for _, pkg := range pkgs {
		for _, e := range pkg.Errors {
			fmt.Fprintf(os.Stderr, "miolint: %s: %v\n", pkg.Path, e)
			loadErrs++
		}
	}
	if loadErrs > 0 {
		fatal(fmt.Sprintf("%d type-check error(s); diagnostics would be unreliable", loadErrs))
	}

	diags := runner.Run(pkgs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "miolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "miolint:", v)
	os.Exit(2)
}
