// Command benchdiff compares two benchmark result files and reports
// per-benchmark deltas — a stdlib-only benchstat-lite for this repo's
// two formats:
//
//   - `go test -bench` output (the Benchmark... result lines; repeated
//     runs via -count become samples of the same benchmark), and
//   - BENCH_*.json snapshots written by `miobench -json`.
//
// The two input files may use different formats. Usage:
//
//	benchdiff old.txt new.txt
//	benchdiff -metric dist_comps BENCH_old.json BENCH_new.json
//	benchdiff -threshold 2.0 baseline.json current.json   # gate: exit 1 past 2x
//	benchdiff -history benchmarks/history.json BENCH_new.json   # append, don't compare
//
// With -history the single snapshot argument is appended as one run to
// the named history file (BENCHMARK_DATA shape: {lastUpdate, repoUrl,
// entries}) — created on first use, written atomically, earlier runs
// never modified. -commit attaches a commit id to the run. History
// mode never gates; it records.
//
// A delta is "significant" when the sample min/max ranges of old and
// new do not overlap; with a single sample per side, when it exceeds
// a 5% noise floor. With -threshold T > 0, benchdiff exits 1 if any
// significant regression has new/old > T (use -report-only to always
// exit 0). Exit 2 means the inputs could not be parsed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"mio/internal/bench"
)

// noiseFloor is the relative delta below which a single-sample
// comparison is never significant.
const noiseFloor = 0.05

// samples collects one benchmark's measurements of one metric.
type samples []float64

func (s samples) median() float64 {
	c := append(samples(nil), s...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

func (s samples) min() float64 {
	m := s[0]
	for _, v := range s[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func (s samples) max() float64 {
	m := s[0]
	for _, v := range s[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// benchFile maps benchmark name → metric name → samples.
type benchFile map[string]map[string]samples

func (f benchFile) add(name, metric string, v float64) {
	m, ok := f[name]
	if !ok {
		m = map[string]samples{}
		f[name] = m
	}
	m[metric] = append(m[metric], v)
}

// parseFile sniffs the format (JSON snapshot vs go-test output) and
// parses accordingly.
func parseFile(path string) (benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		return parseSnapshot(path, data)
	}
	return parseGoBench(path, strings.NewReader(trimmed))
}

func parseSnapshot(path string, data []byte) (benchFile, error) {
	var snap bench.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if snap.SchemaVersion != bench.SnapshotSchemaVersion {
		return nil, fmt.Errorf("%s: snapshot schema %d, this benchdiff understands %d",
			path, snap.SchemaVersion, bench.SnapshotSchemaVersion)
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: snapshot holds no benchmarks", path)
	}
	f := benchFile{}
	for _, b := range snap.Benchmarks {
		f.add(b.Name, "ns/op", b.NsPerOp)
		for k, v := range b.Metrics {
			f.add(b.Name, k, v)
		}
	}
	return f, nil
}

// parseGoBench extracts Benchmark result lines:
//
//	BenchmarkName/sub-8   1000   123.4 ns/op   5.00 distComps/op   0 B/op
//
// The name is normalised by dropping the "Benchmark" prefix and the
// trailing -GOMAXPROCS suffix, so outputs from machines with different
// core counts still line up.
func parseGoBench(path string, r io.Reader) (benchFile, error) {
	f := benchFile{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := normalizeBenchName(fields[0])
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not a result line (e.g. "BenchmarkFoo 	 some log")
		}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			f.add(name, fields[i+1], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines found", path)
	}
	return f, nil
}

func normalizeBenchName(s string) string {
	s = strings.TrimPrefix(s, "Benchmark")
	if i := strings.LastIndex(s, "-"); i > 0 {
		if _, err := strconv.Atoi(s[i+1:]); err == nil {
			s = s[:i]
		}
	}
	return s
}

// appendHistory loads one snapshot and appends it as a run to the
// history file (bench.AppendHistory owns the format and atomicity).
func appendHistory(historyPath, snapPath, commit string) error {
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		return err
	}
	var snap bench.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("%s: %w", snapPath, err)
	}
	if snap.SchemaVersion != bench.SnapshotSchemaVersion {
		return fmt.Errorf("%s: snapshot schema %d, this benchdiff understands %d",
			snapPath, snap.SchemaVersion, bench.SnapshotSchemaVersion)
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("%s: snapshot holds no benchmarks", snapPath)
	}
	if err := bench.AppendHistory(historyPath, &snap, commit); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchdiff: appended %d benchmarks to %s\n", len(snap.Benchmarks), historyPath)
	return nil
}

// row is one compared benchmark.
type row struct {
	name        string
	old, new    float64 // medians
	delta       float64 // (new-old)/old
	significant bool
}

// compare pairs up the chosen metric across the two files. Names
// present on only one side are returned separately so the caller can
// surface them (a silently vanished benchmark is itself a regression).
func compare(oldF, newF benchFile, metric string) (rows []row, onlyOld, onlyNew []string) {
	for name := range oldF {
		if _, ok := newF[name]; !ok {
			onlyOld = append(onlyOld, name)
		}
	}
	for name := range newF {
		o, ok := oldF[name]
		if !ok {
			onlyNew = append(onlyNew, name)
			continue
		}
		olds, ook := o[metric]
		news, nok := newF[name][metric]
		if !ook || !nok {
			continue
		}
		r := row{name: name, old: olds.median(), new: news.median()}
		if r.old != 0 {
			r.delta = (r.new - r.old) / r.old
		} else if r.new != 0 {
			r.delta = math.Inf(1)
		}
		if len(olds) > 1 && len(news) > 1 {
			// Sample ranges that do not overlap: a real shift.
			r.significant = olds.max() < news.min() || news.max() < olds.min()
		} else {
			r.significant = math.Abs(r.delta) > noiseFloor
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].name < rows[b].name })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return rows, onlyOld, onlyNew
}

// report renders the comparison and returns the names of significant
// regressions exceeding threshold (new/old > threshold). threshold 0
// disables gating.
func report(w io.Writer, rows []row, onlyOld, onlyNew []string, metric string, threshold float64) []string {
	nameW := len("benchmark")
	for _, r := range rows {
		if len(r.name) > nameW {
			nameW = len(r.name)
		}
	}
	_, _ = fmt.Fprintf(w, "%-*s  %14s  %14s  %8s\n", nameW, "benchmark", "old "+metric, "new "+metric, "delta")
	var gated []string
	for _, r := range rows {
		note := ""
		switch {
		case !r.significant:
			note = "  (~)"
		case threshold > 0 && r.old > 0 && r.new/r.old > threshold:
			note = "  REGRESSION"
			gated = append(gated, r.name)
		}
		_, _ = fmt.Fprintf(w, "%-*s  %14.4g  %14.4g  %+7.1f%%%s\n", nameW, r.name, r.old, r.new, 100*r.delta, note)
	}
	for _, n := range onlyOld {
		_, _ = fmt.Fprintf(w, "%-*s  only in old file\n", nameW, n)
	}
	for _, n := range onlyNew {
		_, _ = fmt.Fprintf(w, "%-*s  only in new file\n", nameW, n)
	}
	return gated
}

func main() {
	var (
		metric     = flag.String("metric", "ns/op", "metric to compare (ns/op, or a snapshot metric like dist_comps)")
		threshold  = flag.Float64("threshold", 0, "fail (exit 1) when a significant regression exceeds this new/old ratio; 0 disables")
		reportOnly = flag.Bool("report-only", false, "always exit 0, even past -threshold")
		history    = flag.String("history", "", "append the single snapshot argument to this history file instead of comparing")
		commit     = flag.String("commit", "", "commit id to record with -history")
	)
	flag.Usage = func() {
		_, _ = fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchdiff [flags] old-file new-file\n       benchdiff -history <file> snapshot.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *history != "" {
		if flag.NArg() != 1 {
			flag.Usage()
			os.Exit(2)
		}
		if err := appendHistory(*history, flag.Arg(0), *commit); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		return
	}
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldF, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newF, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	rows, onlyOld, onlyNew := compare(oldF, newF, *metric)
	if len(rows) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no common benchmarks with metric %q\n", *metric)
		os.Exit(2)
	}
	gated := report(os.Stdout, rows, onlyOld, onlyNew, *metric, *threshold)
	if len(gated) > 0 && !*reportOnly {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed past %.2fx: %s\n",
			len(gated), *threshold, strings.Join(gated, ", "))
		os.Exit(1)
	}
}
