package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goBenchOld = `
goos: linux
BenchmarkProbeCellDenseMask 	    3000	       148.0 ns/op	        80.00 distComps/op	       0 B/op	       0 allocs/op
BenchmarkProbeCellDenseMask 	    3000	       150.0 ns/op	        80.00 distComps/op	       0 B/op	       0 allocs/op
BenchmarkEngineQueryBird/r=15-8       	       5	 164431477 ns/op
PASS
`

const goBenchNew = `
BenchmarkProbeCellDenseMask 	    3000	        83.62 ns/op	        80.00 distComps/op	       0 B/op	       0 allocs/op
BenchmarkProbeCellDenseMask 	    3000	        85.00 ns/op	        80.00 distComps/op	       0 B/op	       0 allocs/op
BenchmarkEngineQueryBird/r=15-4       	       5	 155161406 ns/op
BenchmarkOnlyInNew 	    10	 1000 ns/op
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseGoBench(t *testing.T) {
	f, err := parseFile(writeTemp(t, "old.txt", goBenchOld))
	if err != nil {
		t.Fatal(err)
	}
	s := f["ProbeCellDenseMask"]["ns/op"]
	if len(s) != 2 || s.median() != 149 {
		t.Fatalf("ProbeCellDenseMask samples %v", s)
	}
	if got := f["ProbeCellDenseMask"]["distComps/op"]; len(got) != 2 || got[0] != 80 {
		t.Fatalf("distComps samples %v", got)
	}
	// The -8 GOMAXPROCS suffix must be stripped, sub-benchmark kept.
	if _, ok := f["EngineQueryBird/r=15"]; !ok {
		t.Fatalf("names: %v", keys(f))
	}
}

func TestParseGoBenchRejectsEmpty(t *testing.T) {
	if _, err := parseFile(writeTemp(t, "empty.txt", "no benchmarks here\n")); err == nil {
		t.Fatal("want error for benchmark-free input")
	}
}

const snapOld = `{
  "schema_version": 1, "date": "2026-08-01", "go_version": "go1.24.0",
  "gomaxprocs": 1, "scale": 0.25,
  "benchmarks": [
    {"name": "EngineQuery/Bird/r=4", "ns_per_op": 100000, "iters": 3,
     "metrics": {"dist_comps": 500, "candidates": 10}},
    {"name": "Verification/Bird/r=4", "ns_per_op": 5000, "iters": 3,
     "metrics": {"dist_comps": 500}}
  ]
}`

const snapNew = `{
  "schema_version": 1, "date": "2026-08-06", "go_version": "go1.24.0",
  "gomaxprocs": 1, "scale": 0.25,
  "benchmarks": [
    {"name": "EngineQuery/Bird/r=4", "ns_per_op": 300000, "iters": 3,
     "metrics": {"dist_comps": 500, "candidates": 10}},
    {"name": "Verification/Bird/r=4", "ns_per_op": 5100, "iters": 3,
     "metrics": {"dist_comps": 500}}
  ]
}`

func TestSnapshotCompareAndGate(t *testing.T) {
	oldF, err := parseFile(writeTemp(t, "old.json", snapOld))
	if err != nil {
		t.Fatal(err)
	}
	newF, err := parseFile(writeTemp(t, "new.json", snapNew))
	if err != nil {
		t.Fatal(err)
	}
	rows, onlyOld, onlyNew := compare(oldF, newF, "ns/op")
	if len(rows) != 2 || len(onlyOld) != 0 || len(onlyNew) != 0 {
		t.Fatalf("rows=%d onlyOld=%v onlyNew=%v", len(rows), onlyOld, onlyNew)
	}
	var sb strings.Builder
	gated := report(&sb, rows, onlyOld, onlyNew, "ns/op", 2.0)
	if len(gated) != 1 || gated[0] != "EngineQuery/Bird/r=4" {
		t.Fatalf("gated = %v\n%s", gated, sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Fatalf("report missing REGRESSION marker:\n%s", sb.String())
	}
	// The 2% verification drift is under the 5% noise floor for
	// single-sample medians: insignificant, never gated.
	for _, r := range rows {
		if r.name == "Verification/Bird/r=4" && r.significant {
			t.Fatalf("2%% drift marked significant: %+v", r)
		}
	}
	// dist_comps is byte-identical: gate on it with any threshold.
	rows, _, _ = compare(oldF, newF, "dist_comps")
	for _, r := range rows {
		if r.delta != 0 || r.significant {
			t.Fatalf("dist_comps drifted: %+v", r)
		}
	}
}

func TestSnapshotSchemaMismatch(t *testing.T) {
	bad := strings.Replace(snapOld, `"schema_version": 1`, `"schema_version": 99`, 1)
	if _, err := parseFile(writeTemp(t, "bad.json", bad)); err == nil {
		t.Fatal("want error for schema mismatch")
	}
}

func TestMixedFormats(t *testing.T) {
	oldF, err := parseFile(writeTemp(t, "old.txt", goBenchOld))
	if err != nil {
		t.Fatal(err)
	}
	newF, err := parseFile(writeTemp(t, "new.txt", goBenchNew))
	if err != nil {
		t.Fatal(err)
	}
	rows, onlyOld, onlyNew := compare(oldF, newF, "ns/op")
	if len(onlyOld) != 0 || len(onlyNew) != 1 || onlyNew[0] != "OnlyInNew" {
		t.Fatalf("onlyOld=%v onlyNew=%v", onlyOld, onlyNew)
	}
	for _, r := range rows {
		switch r.name {
		case "ProbeCellDenseMask":
			// Two samples each side, ranges [148,150] vs [83.6,85]:
			// disjoint, hence significant; and an improvement, not gated.
			if !r.significant || r.delta > 0 {
				t.Fatalf("kernel speedup misjudged: %+v", r)
			}
		case "EngineQueryBird/r=15":
			if r.delta > 0 {
				t.Fatalf("improvement read as regression: %+v", r)
			}
		}
	}
	var sb strings.Builder
	if gated := report(&sb, rows, onlyOld, onlyNew, "ns/op", 1.5); len(gated) != 0 {
		t.Fatalf("improvements gated: %v", gated)
	}
	if !strings.Contains(sb.String(), "only in new file") {
		t.Fatalf("missing only-in-new note:\n%s", sb.String())
	}
}

func TestMedianEvenOdd(t *testing.T) {
	if m := (samples{3, 1, 2}).median(); m != 2 {
		t.Fatalf("odd median = %g", m)
	}
	if m := (samples{4, 1, 2, 3}).median(); m != 2.5 {
		t.Fatalf("even median = %g", m)
	}
}

func keys(f benchFile) []string {
	var out []string
	for k := range f {
		out = append(out, k)
	}
	return out
}
