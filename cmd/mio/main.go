// Command mio runs MIO queries against a dataset file.
//
// Usage:
//
//	mio -data birds.bin -r 4
//	mio -data birds.bin -r 4 -k 10 -workers 8 -algo bigrid
//	mio -data birds.bin -r 4 -algo sg            # simple-grid baseline
//	mio -data birds.bin -r 4 -delta 2            # temporal variant
//	mio -data birds.bin -r 4 -labels ./labelcache -repeat 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mio"
	"mio/internal/baseline"
)

func main() {
	var (
		dataPath = flag.String("data", "", "dataset file (.txt or binary)")
		r        = flag.Float64("r", 4, "distance threshold")
		k        = flag.Int("k", 1, "top-k")
		workers  = flag.Int("workers", 1, "CPU cores (≥2 enables parallel processing)")
		algo     = flag.String("algo", "bigrid", "algorithm: bigrid, nl, nlkd, sg")
		labels   = flag.String("labels", "", "directory for the persistent label store (enables BIGrid-label)")
		delta    = flag.Float64("delta", -1, "temporal threshold δ (≥0 selects the spatio-temporal variant)")
		dims     = flag.Int("dims", 3, "data dimensionality (2 or 3)")
		repeat   = flag.Int("repeat", 1, "repeat the query (labels pay off from the 2nd run)")
		verbose  = flag.Bool("v", false, "print per-phase statistics")
		interact = flag.Int("interacting", -1, "print the interacting set of this object and exit")
		hist     = flag.Bool("hist", false, "print the score distribution histogram and exit")
		csvCols  = flag.String("csv", "", `column mapping "obj,x,y[,z[,t]]" for .csv inputs`)
	)
	flag.Parse()
	if *dataPath == "" {
		fatal("missing -data")
	}
	var ds *mio.Dataset
	var err error
	if *csvCols != "" {
		parts := strings.Split(*csvCols, ",")
		if len(parts) < 3 || len(parts) > 5 {
			fatal(`-csv wants "obj,x,y[,z[,t]]"`)
		}
		cols := mio.CSVColumns{Obj: parts[0], X: parts[1], Y: parts[2]}
		if len(parts) >= 4 {
			cols.Z = parts[3]
		}
		if len(parts) == 5 {
			cols.T = parts[4]
		}
		ds, err = mio.LoadCSVFile(*dataPath, cols)
	} else {
		ds, err = mio.LoadDataset(*dataPath)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println(ds.Summary())

	if *delta >= 0 {
		runTemporal(ds, *r, *delta, *k, *workers)
		return
	}

	if *interact >= 0 || *hist {
		eng, err := mio.NewEngine(ds)
		if err != nil {
			fatal(err)
		}
		if *interact >= 0 {
			set, err := eng.InteractingSet(*r, *interact)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("object %d interacts with %d objects: %v\n", *interact, len(set), set)
			return
		}
		scores, err := eng.AllScores(*r)
		if err != nil {
			fatal(err)
		}
		counts, width := mio.ScoreHistogram(scores, 12)
		for i, c := range counts {
			fmt.Printf("score %4d-%-4d : %d\n", i*width, (i+1)*width-1, c)
		}
		fmt.Printf("p50=%d p90=%d p99=%d max=%d\n",
			mio.TopPercentile(scores, 0.5), mio.TopPercentile(scores, 0.9),
			mio.TopPercentile(scores, 0.99), mio.TopPercentile(scores, 1.0))
		return
	}

	switch *algo {
	case "bigrid":
		var opts []mio.Option
		if *workers > 1 {
			opts = append(opts, mio.WithWorkers(*workers))
		}
		if *dims == 2 {
			opts = append(opts, mio.With2D())
		}
		if *labels != "" {
			opts = append(opts, mio.WithDiskLabels(*labels))
		}
		eng, err := mio.NewEngine(ds, opts...)
		if err != nil {
			fatal(err)
		}
		for run := 0; run < *repeat; run++ {
			res, err := eng.QueryTopK(*r, *k)
			if err != nil {
				fatal(err)
			}
			printTopK(res.TopK)
			fmt.Printf("run %d: total %v (labels: %v)\n", run+1, res.Stats.Total(), res.Stats.UsedLabels)
			if *verbose {
				st := res.Stats
				fmt.Printf("  label-input    %v\n  grid-mapping   %v\n  lower-bounding %v\n  upper-bounding %v\n  verification   %v\n",
					st.LabelInput, st.GridMapping, st.LowerBounding, st.UpperBounding, st.Verification)
				fmt.Printf("  candidates %d, verified %d, dist-comps %d, index %.2f MiB\n",
					st.Candidates, st.Verified, st.DistanceComps, float64(st.IndexBytes)/(1<<20))
			}
		}
	case "nl":
		printBaseline(baseline.NL(ds, *r, *k))
	case "nlkd":
		printBaseline(baseline.NLKD(ds, *r, *k))
	case "sg":
		printBaseline(baseline.SG(ds, *r, *k))
	default:
		fatal(fmt.Sprintf("unknown algorithm %q", *algo))
	}
}

func runTemporal(ds *mio.Dataset, r, delta float64, k, workers int) {
	var opts []mio.Option
	if workers > 1 {
		opts = append(opts, mio.WithWorkers(workers))
	}
	eng, err := mio.NewTemporalEngine(ds, opts...)
	if err != nil {
		fatal(err)
	}
	res, err := eng.QueryTopK(r, delta, k)
	if err != nil {
		fatal(err)
	}
	printTopK(res.TopK)
}

func printTopK(top []mio.Scored) {
	for i, s := range top {
		fmt.Printf("#%d object %d  score %d\n", i+1, s.Obj, s.Score)
	}
}

func printBaseline(top []baseline.Scored) {
	for i, s := range top {
		fmt.Printf("#%d object %d  score %d\n", i+1, s.Obj, s.Score)
	}
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "mio:", v)
	os.Exit(1)
}
