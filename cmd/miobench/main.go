// Command miobench regenerates the paper's tables and figures on the
// stand-in datasets (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results).
//
// Usage:
//
//	miobench                       # everything, default scale
//	miobench -experiment fig5,fig9 -scale 0.5
//	miobench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mio/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "comma-separated experiment ids, or 'all'")
		scale      = flag.Float64("scale", 1.0, "dataset scale factor")
		rs         = flag.String("r", "4,6,8,10", "comma-separated distance thresholds")
		workers    = flag.String("workers", "", "comma-separated core counts for the parallel experiments (default: 1,2,4,... up to GOMAXPROCS)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		csvOut     = flag.Bool("csv", false, "emit CSV blocks instead of aligned tables")
	)
	flag.Parse()

	s := bench.NewSuite(os.Stdout)
	s.Scale = *scale
	s.CSV = *csvOut
	if *workers != "" {
		s.Workers = s.Workers[:0]
		for _, f := range strings.Split(*workers, ",") {
			var v int
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &v); err != nil || v < 1 {
				fatal(fmt.Sprintf("bad -workers entry %q", f))
			}
			s.Workers = append(s.Workers, v)
		}
	}
	if *rs != "" {
		s.Rs = s.Rs[:0]
		for _, f := range strings.Split(*rs, ",") {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%g", &v); err != nil || v <= 0 {
				fatal(fmt.Sprintf("bad -r entry %q", f))
			}
			s.Rs = append(s.Rs, v)
		}
	}

	if *list {
		for _, e := range s.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Desc)
		}
		return
	}

	ids := strings.Split(*experiment, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	if err := s.Run(ids...); err != nil {
		fatal(err)
	}
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "miobench:", v)
	os.Exit(1)
}
