// Command miobench regenerates the paper's tables and figures on the
// stand-in datasets (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results).
//
// Usage:
//
//	miobench                       # everything, default scale
//	miobench -experiment fig5,fig9 -scale 0.5
//	miobench -json auto            # write BENCH_<date>.json for benchdiff
//	miobench -json auto -autotune  # snapshot with auto-tuned engine knobs
//	miobench -json - -datasets Sparse,Commute   # snapshot adversarial sets
//	miobench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mio/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "comma-separated experiment ids, or 'all'")
		scale      = flag.Float64("scale", 1.0, "dataset scale factor")
		rs         = flag.String("r", "4,6,8,10", "comma-separated distance thresholds")
		workers    = flag.String("workers", "", "comma-separated core counts for the parallel experiments (default: 1,2,4,... up to GOMAXPROCS)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		csvOut     = flag.Bool("csv", false, "emit CSV blocks instead of aligned tables")
		jsonOut    = flag.String("json", "", "write a benchmark snapshot to this file instead of running experiments ('auto' = BENCH_<date>.json, '-' = stdout)")
		reps       = flag.Int("reps", 3, "repetitions per snapshot measurement (median is recorded)")
		autotune   = flag.Bool("autotune", false, "snapshot with profile-driven knob selection instead of the hand defaults (needs -json)")
		datasets   = flag.String("datasets", "", "comma-separated snapshot datasets: standard (Bird, Neuron, ...) or adversarial (OneCell, Sparse, PowerSize, Commute); default Bird,Neuron (needs -json)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // up-to-date allocation data
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fatal(err)
			}
		}()
	}

	s := bench.NewSuite(os.Stdout)
	s.Scale = *scale
	s.CSV = *csvOut
	if *workers != "" {
		s.Workers = s.Workers[:0]
		for _, f := range strings.Split(*workers, ",") {
			var v int
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &v); err != nil || v < 1 {
				fatal(fmt.Sprintf("bad -workers entry %q", f))
			}
			s.Workers = append(s.Workers, v)
		}
	}
	if *rs != "" {
		s.Rs = s.Rs[:0]
		for _, f := range strings.Split(*rs, ",") {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%g", &v); err != nil || v <= 0 {
				fatal(fmt.Sprintf("bad -r entry %q", f))
			}
			s.Rs = append(s.Rs, v)
		}
	}

	if *list {
		for _, e := range s.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Desc)
		}
		return
	}

	if (*autotune || *datasets != "") && *jsonOut == "" {
		fatal("-autotune/-datasets only apply to snapshots; pass -json")
	}
	s.AutoTune = *autotune
	if *datasets != "" {
		for _, f := range strings.Split(*datasets, ",") {
			if f = strings.TrimSpace(f); f != "" {
				s.SnapshotSets = append(s.SnapshotSets, f)
			}
		}
	}

	if *jsonOut != "" {
		now := time.Now()
		snap, err := s.Snapshot(now.Format("2006-01-02"), *reps)
		if err != nil {
			fatal(err)
		}
		path := *jsonOut
		switch path {
		case "-":
			if err := snap.WriteJSON(os.Stdout); err != nil {
				fatal(err)
			}
			return
		case "auto":
			path = bench.SnapshotFileName(now)
		}
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := snap.WriteJSON(f); err != nil {
			_ = f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "miobench: wrote", path)
		return
	}

	ids := strings.Split(*experiment, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	if err := s.Run(ids...); err != nil {
		fatal(err)
	}
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "miobench:", v)
	os.Exit(1)
}
