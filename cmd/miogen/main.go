// Command miogen generates the stand-in datasets used throughout the
// repository and writes them to disk in the text or binary format.
//
// Usage:
//
//	miogen -dataset neuron -n 500 -m 800 -out neuron.bin
//	miogen -dataset all -scale 0.5 -dir ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mio/internal/data"
)

func main() {
	var (
		dataset = flag.String("dataset", "all", "dataset to generate: neuron, neuron2, bird, bird2, syn, uniform, the adversarial onecell, sparse, powersize, commute, or all (adversarial sets need an explicit -dataset)")
		n       = flag.Int("n", 0, "override object count (0 = dataset default)")
		m       = flag.Int("m", 0, "override points per object (0 = dataset default)")
		seed    = flag.Int64("seed", 0, "override RNG seed (0 = dataset default)")
		scale   = flag.Float64("scale", 1.0, "scale factor applied to default object counts")
		out     = flag.String("out", "", "output file (single dataset; .txt = text, else binary)")
		dir     = flag.String("dir", ".", "output directory (-dataset all)")
		times   = flag.Bool("timestamps", false, "attach synthetic generation times for the temporal variant")
	)
	flag.Parse()

	if *dataset == "all" {
		if *out != "" {
			fatal("use -dir, not -out, with -dataset all")
		}
		for name, ds := range data.Standard(*scale) {
			if *times {
				ds = data.WithTimestamps(ds, 1.0, 100, 99)
			}
			path := filepath.Join(*dir, strings.ToLower(name)+".bin")
			if err := data.SaveFile(path, ds); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %-24s %s\n", path, ds.Summary())
		}
		return
	}

	ds, err := generate(*dataset, *n, *m, *seed, *scale)
	if err != nil {
		fatal(err)
	}
	if *times {
		ds = data.WithTimestamps(ds, 1.0, 100, 99)
	}
	path := *out
	if path == "" {
		path = *dataset + ".bin"
	}
	if err := data.SaveFile(path, ds); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s  %s\n", path, ds.Summary())
}

func generate(name string, n, m int, seed int64, scale float64) (*data.Dataset, error) {
	applyN := func(def int) int {
		if n > 0 {
			return n
		}
		v := int(float64(def) * scale)
		if v < 8 {
			v = 8
		}
		return v
	}
	switch name {
	case "neuron":
		cfg := data.DefaultNeuron()
		cfg.N = applyN(cfg.N)
		if m > 0 {
			cfg.M = m
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		return data.GenNeuron(cfg), nil
	case "neuron2":
		cfg := data.DefaultNeuron2()
		cfg.N = applyN(cfg.N)
		if m > 0 {
			cfg.M = m
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		return data.GenNeuron(cfg), nil
	case "bird":
		cfg := data.DefaultBird()
		cfg.N = applyN(cfg.N)
		if m > 0 {
			cfg.M = m
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		return data.GenTrajectory(cfg), nil
	case "bird2":
		cfg := data.DefaultBird2()
		cfg.N = applyN(cfg.N)
		if m > 0 {
			cfg.M = m
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		return data.GenTrajectory(cfg), nil
	case "syn":
		cfg := data.DefaultSyn()
		cfg.N = applyN(cfg.N)
		if m > 0 {
			cfg.M = m
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		return data.GenPowerLaw(cfg), nil
	case "uniform":
		cfg := data.UniformConfig{N: applyN(1000), M: 10, FieldSize: 1000, Spread: 10, Seed: 1}
		if m > 0 {
			cfg.M = m
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		return data.GenUniform(cfg), nil
	case "onecell":
		cfg := data.DefaultOneCell()
		cfg.N = applyN(cfg.N)
		if m > 0 {
			cfg.M = m
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		return data.GenOneCell(cfg), nil
	case "sparse":
		cfg := data.DefaultUniformSparse()
		cfg.N = applyN(cfg.N)
		if m > 0 {
			cfg.M = m
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		return data.GenUniformSparse(cfg), nil
	case "powersize":
		cfg := data.DefaultPowerLawSizes()
		cfg.N = applyN(cfg.N)
		if seed != 0 {
			cfg.Seed = seed
		}
		return data.GenPowerLawSizes(cfg), nil
	case "commute":
		cfg := data.DefaultHotspotCommute()
		cfg.N = applyN(cfg.N)
		if m > 0 {
			cfg.M = m
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		return data.GenHotspotCommute(cfg), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "miogen:", v)
	os.Exit(1)
}
