package mio

import (
	"reflect"
	"testing"
)

// TestWithAutoTuneAnswerInvariance: an auto-tuned engine must return
// the identical answer as a default engine, and never more distance
// computations.
func TestWithAutoTuneAnswerInvariance(t *testing.T) {
	for name, ds := range AdversarialDatasets(0.1) {
		hand, err := NewEngine(ds)
		if err != nil {
			t.Fatal(err)
		}
		auto, err := NewEngine(ds, WithAutoTune())
		if err != nil {
			t.Fatal(err)
		}
		want, err := hand.QueryTopK(8, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := auto.QueryTopK(8, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.TopK, want.TopK) {
			t.Errorf("%s: auto-tuned topk %v, want %v", name, got.TopK, want.TopK)
		}
		if got.Stats.DistanceComps > want.Stats.DistanceComps {
			t.Errorf("%s: auto-tuned dist_comps %d > hand %d", name, got.Stats.DistanceComps, want.Stats.DistanceComps)
		}
	}
}

// TestWithAutoTuneRespectsExplicitOptions: knobs fixed by the caller
// must survive tuning.
func TestWithAutoTuneRespectsExplicitOptions(t *testing.T) {
	c, err := buildConfig([]Option{WithAutoTune(), WithWorkers(3), WithUBStrategy(UBGreedyD)})
	if err != nil {
		t.Fatal(err)
	}
	ds := GenerateUniformSparse(UniformSparseConfig{N: 100, M: 10, FieldSize: 10000, Spread: 15, Seed: 7})
	opts := c.resolve(ds)
	if opts.Workers != 3 {
		t.Fatalf("explicit workers overridden: %d", opts.Workers)
	}
	if opts.UB != UBGreedyD {
		t.Fatalf("explicit UB strategy overridden: %v", opts.UB)
	}
	// Unset knobs are filled by the tuner: sparse planar data tunes to
	// 2-D with a raised freeze threshold.
	if opts.Dims != 2 {
		t.Fatalf("planar dataset not tuned to 2-D: dims=%d", opts.Dims)
	}
	if opts.FreezeMinPoints != 128 {
		t.Fatalf("sparse dataset freeze threshold = %d, want 128", opts.FreezeMinPoints)
	}
	// Without WithAutoTune, resolve is the identity.
	plain, err := buildConfig([]Option{WithWorkers(2)})
	if err != nil {
		t.Fatal(err)
	}
	if got := plain.resolve(ds); !reflect.DeepEqual(got, plain.opts) {
		t.Fatalf("resolve mutated options without autotune: %+v", got)
	}
}
