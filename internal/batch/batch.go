// Package batch is the cell-major cross-query execution layer between
// the HTTP handlers and the engine pool: an epoch-driven executor that
// gathers the in-flight query set, groups it by ⌈r⌉, and runs each
// group through core.RunGroup so one shared pass over the BIGrid cells
// feeds every interested query.
//
// It generalises request coalescing (internal/server/flight): flight
// collapses *identical* requests into one engine run; an epoch
// collapses *similar* requests — same ⌈r⌉, any (r, k) — into one
// shared build, one upper-bounding pass, and one walk over the union
// of touched cells, while still returning per-query results bitwise
// identical to the query-major path.
//
// Epoch lifecycle: the first Submit after a dispatch opens a fresh
// epoch and arms its gather window; the epoch seals when the window
// elapses or the size trigger (MaxBatch) fires, whichever is first.
// Sealed epochs dispatch on their own goroutine: members are grouped
// by ⌈r⌉ and each group runs through the configured RunFunc. A member
// whose context expires detaches immediately — Submit returns its
// context error without waiting for the epoch, and the group run skips
// what only that member needed. Degrade members instead wait for the
// epoch to finish so they can carry home a certified degraded answer.
package batch

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"mio/internal/core"
	"mio/internal/fault"
	"mio/internal/server/metrics"
)

// RunFunc executes one shared-⌈r⌉ group. The server wires this to an
// engine-pool acquisition around core.RunGroup; tests substitute their
// own. A non-nil error fails every member of the group.
type RunFunc func(specs []core.GroupSpec) ([]core.GroupOutcome, core.GroupReport, error)

// Config configures an Engine.
type Config struct {
	// Window is the gather window: how long an epoch stays open after
	// its first query before sealing. 0 selects DefaultWindow.
	Window time.Duration
	// MaxBatch seals an epoch early once it holds this many queries.
	// 0 selects DefaultMaxBatch.
	MaxBatch int
	// Faults, when non-nil, is consulted at PointEpochClose when an
	// epoch seals.
	Faults *fault.Registry
	// Run executes one group; required.
	Run RunFunc
}

// DefaultWindow is the default gather window. Two milliseconds is
// long enough to catch a concurrent burst and an order of magnitude
// below the cold-query latency it amortises.
const DefaultWindow = 2 * time.Millisecond

// DefaultMaxBatch bounds the queries per epoch.
const DefaultMaxBatch = 128

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("batch: engine closed")

// request is one submitted query waiting for its epoch.
type request struct {
	spec core.GroupSpec
	out  chan core.GroupOutcome // buffered; exactly one send
}

// epoch is one gather generation.
type epoch struct {
	opened time.Time
	reqs   []*request
	timer  *time.Timer
	sealed bool
}

// Engine gathers concurrent queries into epochs and dispatches them
// as shared-⌈r⌉ groups.
type Engine struct {
	cfg Config

	mu     sync.Mutex
	cur    *epoch
	closed bool

	wg sync.WaitGroup // in-flight dispatches

	epochs     metrics.Counter
	queries    metrics.Counter
	groups     metrics.Counter
	plans      metrics.Counter
	sharedWork metrics.Counter // queries served by a plan another member owned
	failures   metrics.Counter // group runs that returned an error
	panics     metrics.Counter // group runs that panicked (recovered)

	batchSize    *metrics.IntHistogram
	cellsDeduped *metrics.IntHistogram
	gatherWait   *metrics.Histogram
}

// New returns an Engine; Config.Run is required.
func New(cfg Config) (*Engine, error) {
	if cfg.Run == nil {
		return nil, errors.New("batch: Config.Run is required")
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	return &Engine{
		cfg:          cfg,
		batchSize:    metrics.NewIntHistogram(metrics.PowerOfTwoBounds(int64(cfg.MaxBatch))),
		cellsDeduped: metrics.NewIntHistogram(nil),
		gatherWait:   metrics.NewHistogram(nil),
	}, nil
}

// Submit enqueues one query into the current epoch and waits for its
// outcome. ctx detaches the caller: without degrade, Submit returns
// ctx.Err() as soon as the context expires; with degrade it waits for
// the epoch anyway, because only the finished group can certify the
// degraded answer the caller asked for.
func (b *Engine) Submit(ctx context.Context, r float64, k int, degrade bool) (*core.Result, error) {
	req := &request{
		spec: core.GroupSpec{R: r, K: k, Degrade: degrade, Ctx: ctx},
		out:  make(chan core.GroupOutcome, 1),
	}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	ep := b.cur
	if ep == nil {
		ep = &epoch{opened: time.Now()}
		b.cur = ep
		// The timer fires on its own goroutine; seal() re-checks state
		// under the lock, so a racing size trigger wins harmlessly.
		ep.timer = time.AfterFunc(b.cfg.Window, func() { b.seal(ep) })
	}
	ep.reqs = append(ep.reqs, req)
	full := len(ep.reqs) >= b.cfg.MaxBatch
	b.mu.Unlock()

	if full {
		b.seal(ep)
	}

	select {
	case o := <-req.out:
		return o.Result, o.Err
	case <-ctx.Done():
		if degrade {
			o := <-req.out
			return o.Result, o.Err
		}
		// Detach: the epoch delivers into the buffered channel and
		// moves on; the group run notices the dead member and skips
		// work only it needed.
		return nil, ctx.Err()
	}
}

// seal closes ep (idempotently) and dispatches it in the background.
func (b *Engine) seal(ep *epoch) {
	b.mu.Lock()
	if ep.sealed {
		b.mu.Unlock()
		return
	}
	ep.sealed = true
	if b.cur == ep {
		b.cur = nil
	}
	ep.timer.Stop()
	b.wg.Add(1)
	b.mu.Unlock()
	go b.dispatch(ep)
}

// Close seals any open epoch, waits for in-flight dispatches, and
// rejects future Submits. Already-gathered queries are answered.
func (b *Engine) Close() {
	b.mu.Lock()
	b.closed = true
	ep := b.cur
	b.mu.Unlock()
	if ep != nil {
		b.seal(ep)
	}
	b.wg.Wait()
}

// dispatch runs one sealed epoch: observe the gather, fire the
// epoch-close fault point, group members by ⌈r⌉, and run the groups
// concurrently. Delivery to every member is guaranteed: each request's
// buffered channel receives exactly one outcome even when a group run
// fails or panics.
func (b *Engine) dispatch(ep *epoch) {
	defer b.wg.Done()
	b.epochs.Inc()
	b.queries.Add(uint64(len(ep.reqs)))
	b.batchSize.Observe(int64(len(ep.reqs)))
	b.gatherWait.Observe(time.Since(ep.opened))

	if err := b.cfg.Faults.Fire(fault.PointEpochClose); err != nil {
		for _, req := range ep.reqs {
			req.out <- core.GroupOutcome{Err: err}
		}
		return
	}

	// Group member indices by ⌈r⌉; invalid thresholds keep their own
	// singleton groups so RunGroup reports the precise error.
	byCeil := make(map[int][]int)
	var ceils []int
	for i, req := range ep.reqs {
		ceil := -1 - i // unique bucket for specs RunGroup will reject
		if req.spec.R > 0 {
			ceil = int(math.Ceil(req.spec.R))
		}
		if _, ok := byCeil[ceil]; !ok {
			ceils = append(ceils, ceil)
		}
		byCeil[ceil] = append(byCeil[ceil], i)
	}
	sort.Ints(ceils)

	var wg sync.WaitGroup
	for _, ceil := range ceils {
		members := byCeil[ceil]
		wg.Add(1)
		go func(members []int) {
			defer wg.Done()
			b.runGroup(ep, members)
		}(members)
	}
	wg.Wait()
}

// runGroup executes one group and delivers each member's outcome.
func (b *Engine) runGroup(ep *epoch, members []int) {
	delivered := false
	defer func() {
		if rec := recover(); rec != nil {
			b.panics.Inc()
			if !delivered {
				err := fmt.Errorf("batch: group run panicked: %v", rec)
				for _, i := range members {
					ep.reqs[i].out <- core.GroupOutcome{Err: err}
				}
			}
		}
	}()

	specs := make([]core.GroupSpec, len(members))
	for j, i := range members {
		specs[j] = ep.reqs[i].spec
	}
	outs, rep, err := b.cfg.Run(specs)
	if err != nil || len(outs) != len(members) {
		if err == nil {
			err = fmt.Errorf("batch: group runner returned %d outcomes for %d members", len(outs), len(members))
		}
		b.failures.Inc()
		delivered = true
		for _, i := range members {
			ep.reqs[i].out <- core.GroupOutcome{Err: err}
		}
		return
	}

	b.groups.Inc()
	b.plans.Add(uint64(rep.Plans))
	if extra := len(members) - rep.Plans; extra > 0 {
		b.sharedWork.Add(uint64(extra))
	}
	b.cellsDeduped.Observe(int64(rep.CellsDeduped))

	delivered = true
	for j, i := range members {
		ep.reqs[i].out <- outs[j]
	}
}

// Stats is a point-in-time view of the engine's counters and epoch
// histograms, serialised into the server's /metrics payload.
type Stats struct {
	// Epochs counts sealed epochs; Queries the members they gathered;
	// Groups the shared-⌈r⌉ group runs that completed; Plans the
	// distinct (r, k) pipelines those groups executed. SharedWork is
	// Queries minus Plans summed per group: answers obtained without a
	// pipeline of their own.
	Epochs     uint64 `json:"epochs"`
	Queries    uint64 `json:"queries"`
	Groups     uint64 `json:"groups"`
	Plans      uint64 `json:"plans"`
	SharedWork uint64 `json:"shared_work"`
	Failures   uint64 `json:"failures"`
	Panics     uint64 `json:"panics"`

	BatchSize    metrics.IntSnapshot `json:"batch_size"`
	CellsDeduped metrics.IntSnapshot `json:"cells_deduped"`
	GatherWait   metrics.Snapshot    `json:"gather_wait"`
}

// Stats snapshots the engine; withBuckets includes raw histogram
// buckets.
func (b *Engine) Stats(withBuckets bool) Stats {
	return Stats{
		Epochs:     b.epochs.Value(),
		Queries:    b.queries.Value(),
		Groups:     b.groups.Value(),
		Plans:      b.plans.Value(),
		SharedWork: b.sharedWork.Value(),
		Failures:   b.failures.Value(),
		Panics:     b.panics.Value(),

		BatchSize:    b.batchSize.Snapshot(withBuckets),
		CellsDeduped: b.cellsDeduped.Snapshot(withBuckets),
		GatherWait:   b.gatherWait.Snapshot(withBuckets),
	}
}
