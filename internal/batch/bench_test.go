package batch

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mio/internal/core"
	"mio/internal/data"
)

// BenchmarkBatchEpoch measures one full epoch under the workload the
// paper motivates: 256 concurrent monitoring clients whose thresholds
// are Zipf-skewed over a few radii (every variant of a base threshold
// keeps its ⌈r⌉) and whose k cycles. Each iteration submits the whole
// wave and waits for the slowest answer, so ns/op is the closed-loop
// epoch latency including gather, grouping, the shared group runs and
// outcome fan-out.
func BenchmarkBatchEpoch(b *testing.B) {
	ds := data.GenUniform(data.UniformConfig{N: 240, M: 8, FieldSize: 40, Spread: 3, Seed: 11})
	eng, err := core.NewEngine(ds, core.Options{})
	if err != nil {
		b.Fatalf("NewEngine: %v", err)
	}

	const members = 256
	type rk struct {
		r float64
		k int
	}
	// Zipf over base radii (few popular, long tail), each split into a
	// handful of variants within (⌈r⌉−1, r]: exact thresholds repeat and
	// ceilings collide, so a wave exercises every sharing tier — shared
	// builds per ⌈r⌉, shared lower bounds per r, shared results per
	// (r, k).
	base := []float64{3, 4, 5, 6}
	const variants = 4
	rng := rand.New(rand.NewSource(99))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(base)-1))
	specs := make([]rk, members)
	for i := range specs {
		r := base[zipf.Uint64()]
		step := (r - (math.Ceil(r) - 1)) * 0.5 / variants
		r -= float64(rng.Intn(variants)) * step
		specs[i] = rk{r: r, k: 1 + i%4}
	}

	be, err := New(Config{
		Window:   time.Millisecond,
		MaxBatch: members,
		Run: func(gs []core.GroupSpec) ([]core.GroupOutcome, core.GroupReport, error) {
			outs, rep := eng.RunGroup(context.Background(), gs)
			return outs, rep, nil
		},
	})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer be.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, sp := range specs {
			wg.Add(1)
			go func(sp rk) {
				defer wg.Done()
				if _, err := be.Submit(context.Background(), sp.r, sp.k, false); err != nil {
					b.Error(err)
				}
			}(sp)
		}
		wg.Wait()
	}
	b.StopTimer()

	st := be.Stats(false)
	b.ReportMetric(float64(st.Plans)/float64(st.Epochs), "plans/epoch")
	b.ReportMetric(float64(st.SharedWork)/float64(st.Epochs), "shared/epoch")
	b.ReportMetric(float64(st.CellsDeduped.Sum)/float64(st.Epochs), "cellsDeduped/epoch")
}
