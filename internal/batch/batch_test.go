package batch

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"mio/internal/core"
	"mio/internal/data"
	"mio/internal/fault"
)

// recordingRun is a RunFunc double that records every group it is
// handed and answers each member with a synthetic result tagged by the
// member's (r, k), so tests can check outcome routing without a real
// engine.
type recordingRun struct {
	mu     sync.Mutex
	groups [][]core.GroupSpec
}

func (rr *recordingRun) run(specs []core.GroupSpec) ([]core.GroupOutcome, core.GroupReport, error) {
	rr.mu.Lock()
	cp := make([]core.GroupSpec, len(specs))
	copy(cp, specs)
	rr.groups = append(rr.groups, cp)
	rr.mu.Unlock()

	outs := make([]core.GroupOutcome, len(specs))
	for i, s := range specs {
		outs[i] = core.GroupOutcome{Result: tagResult(s)}
	}
	return outs, core.GroupReport{Members: len(specs), Plans: distinctPlans(specs)}, nil
}

// tagResult encodes the spec into the result so the submitter can
// verify it got its own answer back, not a groupmate's.
func tagResult(s core.GroupSpec) *core.Result {
	return &core.Result{Best: core.Scored{Obj: int(s.R * 1000), Score: s.K}}
}

func distinctPlans(specs []core.GroupSpec) int {
	type rk struct {
		r float64
		k int
	}
	seen := map[rk]struct{}{}
	for _, s := range specs {
		seen[rk{s.R, s.K}] = struct{}{}
	}
	return len(seen)
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	b, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(b.Close)
	return b
}

func TestNewRequiresRun(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a nil RunFunc")
	}
}

// TestSizeTriggerGathersOneEpoch submits exactly MaxBatch queries
// concurrently: the size trigger seals the epoch deterministically, so
// every member must land in the same epoch and be grouped by ⌈r⌉.
func TestSizeTriggerGathersOneEpoch(t *testing.T) {
	rr := &recordingRun{}
	rs := []float64{1.5, 2.0, 2.5, 2.5, 0.7, 3.0}
	// Window far beyond the test's lifetime: only the size trigger can
	// seal, so the epoch membership is deterministic.
	b := newTestEngine(t, Config{Window: time.Minute, MaxBatch: len(rs), Run: rr.run})

	var wg sync.WaitGroup
	errs := make([]error, len(rs))
	results := make([]*core.Result, len(rs))
	for i, r := range rs {
		wg.Add(1)
		go func(i int, r float64) {
			defer wg.Done()
			results[i], errs[i] = b.Submit(context.Background(), r, i+1, false)
		}(i, r)
	}
	wg.Wait()

	for i := range rs {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		want := tagResult(core.GroupSpec{R: rs[i], K: i + 1})
		if !reflect.DeepEqual(results[i], want) {
			t.Fatalf("submit %d: got %+v, want %+v (outcome routed to wrong member?)", i, results[i], want)
		}
	}

	rr.mu.Lock()
	defer rr.mu.Unlock()
	// ⌈r⌉ groups: {0.7}, {1.5, 2.0}, {2.5, 2.5, 3.0}.
	if len(rr.groups) != 3 {
		t.Fatalf("got %d groups, want 3: %+v", len(rr.groups), rr.groups)
	}
	sizes := map[int]int{}
	for _, g := range rr.groups {
		ceil := int(math.Ceil(g[0].R))
		sizes[ceil] = len(g)
		for _, s := range g {
			if int(math.Ceil(s.R)) != ceil {
				t.Fatalf("group mixes ceilings: %+v", g)
			}
		}
	}
	if sizes[1] != 1 || sizes[2] != 2 || sizes[3] != 3 {
		t.Fatalf("group sizes by ceil = %v, want map[1:1 2:2 3:3]", sizes)
	}

	st := b.Stats(true)
	if st.Epochs != 1 || st.Queries != 6 || st.Groups != 3 {
		t.Fatalf("stats = %+v, want 1 epoch / 6 queries / 3 groups", st)
	}
	// Plans: ceil1 has 1, ceil2 has 2 distinct (r,k), ceil3 has 3
	// distinct (r,k) (same r, different k) → 6 plans, no shared work.
	if st.Plans != 6 || st.SharedWork != 0 {
		t.Fatalf("plans=%d shared=%d, want 6/0", st.Plans, st.SharedWork)
	}
	if st.BatchSize.Count != 1 || st.BatchSize.Sum != 6 {
		t.Fatalf("batch size histogram = %+v, want one observation of 6", st.BatchSize)
	}
}

// TestWindowSeals checks the timer path: a single query must not wait
// for MaxBatch companions that never come.
func TestWindowSeals(t *testing.T) {
	rr := &recordingRun{}
	b := newTestEngine(t, Config{Window: time.Millisecond, MaxBatch: 1 << 20, Run: rr.run})
	res, err := b.Submit(context.Background(), 2.0, 1, false)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if want := tagResult(core.GroupSpec{R: 2.0, K: 1}); !reflect.DeepEqual(res, want) {
		t.Fatalf("got %+v, want %+v", res, want)
	}
}

// TestSharedWorkCounter: identical (r, k) members collapse onto one
// plan; the surplus shows up as SharedWork.
func TestSharedWorkCounter(t *testing.T) {
	rr := &recordingRun{}
	b := newTestEngine(t, Config{Window: time.Minute, MaxBatch: 4, Run: rr.run})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Submit(context.Background(), 2.0, 3, false); err != nil {
				t.Errorf("Submit: %v", err)
			}
		}()
	}
	wg.Wait()
	st := b.Stats(false)
	if st.Plans != 1 || st.SharedWork != 3 {
		t.Fatalf("plans=%d shared=%d, want 1/3", st.Plans, st.SharedWork)
	}
}

// blockingRun blocks every group run until release is closed.
type blockingRun struct {
	started chan struct{} // one tick per group run entering
	release chan struct{}
	inner   RunFunc
}

func (br *blockingRun) run(specs []core.GroupSpec) ([]core.GroupOutcome, core.GroupReport, error) {
	br.started <- struct{}{}
	<-br.release
	return br.inner(specs)
}

// TestDetachOnCancel: a non-degrade member whose context dies while the
// group is still running gets its context error immediately — it does
// not wait out the epoch.
func TestDetachOnCancel(t *testing.T) {
	rr := &recordingRun{}
	br := &blockingRun{started: make(chan struct{}, 8), release: make(chan struct{}), inner: rr.run}
	b := newTestEngine(t, Config{Window: time.Minute, MaxBatch: 2, Run: br.run})

	ctx, cancel := context.WithCancel(context.Background())
	type ret struct {
		res *core.Result
		err error
	}
	cancelled := make(chan ret, 1)
	healthy := make(chan ret, 1)
	go func() {
		res, err := b.Submit(ctx, 2.0, 1, false)
		cancelled <- ret{res, err}
	}()
	go func() {
		res, err := b.Submit(context.Background(), 2.2, 1, false)
		healthy <- ret{res, err}
	}()

	<-br.started // group is running and will stay blocked
	cancel()
	select {
	case got := <-cancelled:
		if !errors.Is(got.err, context.Canceled) {
			t.Fatalf("cancelled member: got (%v, %v), want context.Canceled", got.res, got.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled member did not detach while the group was blocked")
	}
	select {
	case got := <-healthy:
		t.Fatalf("healthy member returned (%v, %v) before the group finished", got.res, got.err)
	default:
	}
	close(br.release)
	if got := <-healthy; got.err != nil {
		t.Fatalf("healthy member: %v", got.err)
	}
}

// TestDegradeWaitsPastCancel: a Degrade member sticks around after its
// context dies — only the finished group can certify its degraded
// answer (or report the context error if nothing is certifiable).
func TestDegradeWaitsPastCancel(t *testing.T) {
	degradedRun := func(specs []core.GroupSpec) ([]core.GroupOutcome, core.GroupReport, error) {
		outs := make([]core.GroupOutcome, len(specs))
		for i := range specs {
			outs[i] = core.GroupOutcome{Result: &core.Result{
				Best:     core.Scored{Obj: 7, Score: 3},
				Degraded: true,
				Interval: &core.Interval{LB: 3, UB: 9},
			}}
		}
		return outs, core.GroupReport{Members: len(specs), Plans: 1}, nil
	}
	br := &blockingRun{started: make(chan struct{}, 1), release: make(chan struct{}), inner: degradedRun}
	b := newTestEngine(t, Config{Window: time.Millisecond, MaxBatch: 1 << 20, Run: br.run})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var res *core.Result
	var err error
	go func() {
		defer close(done)
		res, err = b.Submit(ctx, 2.0, 1, true)
	}()
	<-br.started
	cancel()
	select {
	case <-done:
		t.Fatal("degrade member detached instead of waiting for the epoch")
	case <-time.After(50 * time.Millisecond):
	}
	close(br.release)
	<-done
	if err != nil || res == nil || !res.Degraded {
		t.Fatalf("degrade member: got (%+v, %v), want degraded result", res, err)
	}
}

// TestPanicQuarantine: a panicking group run fails only its own
// members; sibling groups in the same epoch and later epochs are
// untouched.
func TestPanicQuarantine(t *testing.T) {
	rr := &recordingRun{}
	poisoned := func(specs []core.GroupSpec) ([]core.GroupOutcome, core.GroupReport, error) {
		if math.Ceil(specs[0].R) == 1 {
			panic("poisoned cell")
		}
		return rr.run(specs)
	}
	b := newTestEngine(t, Config{Window: time.Minute, MaxBatch: 2, Run: poisoned})

	var wg sync.WaitGroup
	var poisonedErr, healthyErr error
	wg.Add(2)
	go func() { defer wg.Done(); _, poisonedErr = b.Submit(context.Background(), 0.5, 1, false) }()
	go func() { defer wg.Done(); _, healthyErr = b.Submit(context.Background(), 2.0, 1, false) }()
	wg.Wait()

	if poisonedErr == nil {
		t.Fatal("poisoned group member got no error")
	}
	if healthyErr != nil {
		t.Fatalf("sibling group poisoned too: %v", healthyErr)
	}
	if st := b.Stats(false); st.Panics != 1 {
		t.Fatalf("panics counter = %d, want 1", st.Panics)
	}

	// The engine must still serve the next epoch.
	var a, c error
	wg.Add(2)
	go func() { defer wg.Done(); _, a = b.Submit(context.Background(), 2.0, 1, false) }()
	go func() { defer wg.Done(); _, c = b.Submit(context.Background(), 2.5, 2, false) }()
	wg.Wait()
	if a != nil || c != nil {
		t.Fatalf("epoch after panic failed: %v, %v", a, c)
	}
}

// TestRunErrorFailsGroup covers the error path and the
// outcome-count-mismatch guard.
func TestRunErrorFailsGroup(t *testing.T) {
	boom := errors.New("boom")
	b := newTestEngine(t, Config{
		Window: time.Millisecond, MaxBatch: 1 << 20,
		Run: func(specs []core.GroupSpec) ([]core.GroupOutcome, core.GroupReport, error) {
			return nil, core.GroupReport{}, boom
		},
	})
	if _, err := b.Submit(context.Background(), 2.0, 1, false); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}

	short := newTestEngine(t, Config{
		Window: time.Millisecond, MaxBatch: 1 << 20,
		Run: func(specs []core.GroupSpec) ([]core.GroupOutcome, core.GroupReport, error) {
			return nil, core.GroupReport{}, nil // wrong length, no error
		},
	})
	if _, err := short.Submit(context.Background(), 2.0, 1, false); err == nil {
		t.Fatal("short outcome slice was not turned into an error")
	}
	if st := short.Stats(false); st.Failures != 1 {
		t.Fatalf("failures counter = %d, want 1", st.Failures)
	}
}

// TestEpochCloseFault: an armed batch.epoch_close rule fails every
// query gathered into the epoch.
func TestEpochCloseFault(t *testing.T) {
	reg := fault.New(1)
	reg.Arm(fault.Rule{Point: fault.PointEpochClose, Kind: fault.KindError, P: 1})
	rr := &recordingRun{}
	b := newTestEngine(t, Config{Window: time.Minute, MaxBatch: 2, Faults: reg, Run: rr.run})

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.Submit(context.Background(), 2.0, 1, false)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("member %d: got %v, want ErrInjected", i, err)
		}
	}
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if len(rr.groups) != 0 {
		t.Fatalf("groups ran despite epoch-close fault: %+v", rr.groups)
	}
}

// TestClose: Close answers the pending epoch and rejects later
// submits.
func TestClose(t *testing.T) {
	rr := &recordingRun{}
	b, err := New(Config{Window: time.Hour, MaxBatch: 1 << 20, Run: rr.run})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := b.Submit(context.Background(), 2.0, 1, false)
		done <- err
	}()
	// Wait for the submit to be gathered, then close: the hour-long
	// window means only Close can seal it.
	for {
		b.mu.Lock()
		gathered := b.cur != nil && len(b.cur.reqs) == 1
		b.mu.Unlock()
		if gathered {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.Close()
	if err := <-done; err != nil {
		t.Fatalf("pending submit after Close: %v", err)
	}
	if _, err := b.Submit(context.Background(), 2.0, 1, false); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close: got %v, want ErrClosed", err)
	}
}

// --- interleaving property test against the sequential oracle ---

// stableResult is the batched-vs-solo parity surface: everything in a
// Result except wall-clock durations and byte sizes (shared structures
// amortise those differently; see core's parity suite for the same
// surface).
type stableResult struct {
	Best       core.Scored
	TopK       []core.Scored
	Degraded   bool
	Interval   *core.Interval
	UsedLabels bool
	Candidates int
	Verified   int
	DistComps  int
	AdjComp    int
	SmallCells int
	LargeCells int
}

func stable(res *core.Result) stableResult {
	return stableResult{
		Best:       res.Best,
		TopK:       append([]core.Scored(nil), res.TopK...),
		Degraded:   res.Degraded,
		Interval:   res.Interval,
		UsedLabels: res.Stats.UsedLabels,
		Candidates: res.Stats.Candidates,
		Verified:   res.Stats.Verified,
		DistComps:  res.Stats.DistanceComps,
		AdjComp:    res.Stats.AdjComputed,
		SmallCells: res.Stats.SmallCells,
		LargeCells: res.Stats.LargeCells,
	}
}

// TestInterleavingMatchesSequentialOracle is the batch-layer property
// test: any interleaving of {batched, solo, cancelled, degraded}
// queries yields, for every query that completes, a result identical
// to running that query alone on a fresh engine. Runs under -race in
// CI (chaos suite includes this package).
func TestInterleavingMatchesSequentialOracle(t *testing.T) {
	ds := data.GenUniform(data.UniformConfig{N: 160, M: 8, FieldSize: 40, Spread: 3, Seed: 11})
	eng, err := core.NewEngine(ds, core.Options{Workers: 2})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}

	// The oracle: each distinct (r, k), solo, on its own engine run.
	type rk struct {
		r float64
		k int
	}
	rs := []float64{1.2, 1.9, 2.0, 2.4, 3.0, 3.7}
	oracle := map[rk]stableResult{}
	for _, r := range rs {
		for k := 1; k <= 3; k++ {
			res, err := eng.RunTopK(r, k)
			if err != nil {
				t.Fatalf("oracle (%g, %d): %v", r, k, err)
			}
			oracle[rk{r, k}] = stable(res)
		}
	}

	b := newTestEngine(t, Config{
		Window:   500 * time.Microsecond,
		MaxBatch: 16,
		Run: func(specs []core.GroupSpec) ([]core.GroupOutcome, core.GroupReport, error) {
			outs, rep := eng.RunGroup(context.Background(), specs)
			return outs, rep, nil
		},
	})

	rng := rand.New(rand.NewSource(29))
	type job struct {
		spec      rk
		cancelled bool
		degraded  bool
	}
	var jobs []job
	for i := 0; i < 96; i++ {
		j := job{spec: rk{rs[rng.Intn(len(rs))], 1 + rng.Intn(3)}}
		switch rng.Intn(6) {
		case 0:
			j.cancelled = true
		case 1:
			j.degraded = true
		}
		jobs = append(jobs, j)
	}

	var wg sync.WaitGroup
	failures := make(chan string, len(jobs))
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			ctx := context.Background()
			if j.cancelled {
				var cancel context.CancelFunc
				ctx, cancel = context.WithCancel(ctx)
				cancel() // dead before gathering: must come back as ctx.Err()
			}
			res, err := b.Submit(ctx, j.spec.r, j.spec.k, j.degraded)
			switch {
			case j.cancelled:
				if !errors.Is(err, context.Canceled) {
					failures <- fmt.Sprintf("cancelled (%g,%d): got (%v, %v)", j.spec.r, j.spec.k, res, err)
				}
			case err != nil:
				failures <- fmt.Sprintf("(%g,%d): %v", j.spec.r, j.spec.k, err)
			case res.Degraded:
				// A degraded answer is only legal for degrade-mode jobs
				// and must bracket the oracle's exact best score.
				want := oracle[j.spec]
				if !j.degraded {
					failures <- fmt.Sprintf("(%g,%d): degraded answer for non-degrade job", j.spec.r, j.spec.k)
				} else if res.Interval == nil || res.Interval.LB > want.Best.Score || res.Interval.UB < want.Best.Score {
					failures <- fmt.Sprintf("degraded (%g,%d): interval %+v does not bracket %d", j.spec.r, j.spec.k, res.Interval, want.Best.Score)
				}
			default:
				if got, want := stable(res), oracle[j.spec]; !reflect.DeepEqual(got, want) {
					failures <- fmt.Sprintf("(%g,%d): batched %+v != solo %+v", j.spec.r, j.spec.k, got, want)
				}
			}
		}(j)
	}
	wg.Wait()
	close(failures)
	for f := range failures {
		t.Error(f)
	}

	st := b.Stats(false)
	if st.Queries == 0 || st.Groups == 0 {
		t.Fatalf("nothing batched: %+v", st)
	}
	t.Logf("epochs=%d queries=%d groups=%d plans=%d shared=%d mean_batch=%.1f",
		st.Epochs, st.Queries, st.Groups, st.Plans, st.SharedWork, st.BatchSize.Mean)
}
