// Package bench regenerates every table and figure of the paper's
// evaluation (§V) on the stand-in datasets: Fig. 5 (runtime and memory
// vs r), Table II (per-phase breakdown), Fig. 6 (scalability), Fig. 7
// (top-k), Fig. 8 (parallel partitioning strategies), Fig. 9 (parallel
// algorithms), Table III (speedup ratios) and the Appendix-A ablation.
// Absolute numbers differ from the paper's C++/Xeon testbed; the shapes
// — who wins, by roughly what factor, where crossovers fall — are the
// reproduction target (see EXPERIMENTS.md).
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"mio/internal/data"
)

// Suite configures one harness run.
type Suite struct {
	// CSV switches the output from aligned text tables to CSV blocks
	// (one per table, preceded by a "# title" comment line), for
	// plotting.
	CSV bool

	// Scale multiplies the default dataset sizes (1.0 ≈ tens of
	// seconds for the full suite; the paper-shaped behaviours are
	// visible from ~0.3 up).
	Scale float64
	// Rs is the distance-threshold sweep (default 4, 6, 8, 10, as §V-B).
	Rs []float64
	// Workers is the core-count sweep for the parallel experiments
	// (default 1, 2, 4, ... up to GOMAXPROCS).
	Workers []int
	// NLPointLimit skips the nested-loop baseline on datasets with more
	// total points (NL is quadratic; the paper curbs it with an 8-hour
	// timeout, we curb it by size).
	NLPointLimit int
	// Out receives the rendered tables.
	Out io.Writer

	// AutoTune makes Snapshot build its engines from internal/tune's
	// profile-driven knob selection instead of the hand defaults.
	// Record names are unchanged, so a hand and an auto snapshot over
	// the same datasets diff cleanly with cmd/benchdiff (the tune-gate).
	AutoTune bool
	// SnapshotSets overrides the datasets Snapshot measures. Names
	// resolve against the standard stand-ins first, then the
	// adversarial sets (OneCell, Sparse, PowerSize, Commute). Empty
	// selects the default pair (Bird, Neuron).
	SnapshotSets []string

	datasets map[string]*data.Dataset
	advSets  map[string]*data.Dataset
}

// NewSuite returns a Suite with the defaults described above.
func NewSuite(out io.Writer) *Suite {
	return &Suite{
		Scale:        1.0,
		Rs:           []float64{4, 6, 8, 10},
		Workers:      defaultWorkers(),
		NLPointLimit: 200_000,
		Out:          out,
	}
}

func defaultWorkers() []int {
	maxW := runtime.GOMAXPROCS(0)
	ws := []int{1}
	for w := 2; w <= maxW && w <= 12; w *= 2 {
		ws = append(ws, w)
	}
	if last := ws[len(ws)-1]; last < maxW && maxW <= 12 {
		ws = append(ws, maxW)
	}
	return ws
}

// DatasetNames is the fixed presentation order of the stand-ins,
// following Table I.
var DatasetNames = []string{"Neuron", "Neuron-2", "Bird", "Bird-2", "Syn"}

// Datasets generates (once) and returns the stand-in datasets at the
// suite's scale.
func (s *Suite) Datasets() map[string]*data.Dataset {
	if s.datasets == nil {
		s.datasets = data.Standard(s.Scale)
	}
	return s.datasets
}

// snapshotDataset resolves a snapshot dataset name: the standard
// stand-ins first, then (generated lazily — most runs never need them)
// the adversarial sets.
func (s *Suite) snapshotDataset(name string) (*data.Dataset, error) {
	if ds, ok := s.Datasets()[name]; ok {
		return ds, nil
	}
	if s.advSets == nil {
		s.advSets = data.Adversarial(s.Scale)
	}
	if ds, ok := s.advSets[name]; ok {
		return ds, nil
	}
	return nil, fmt.Errorf("snapshot: unknown dataset %q", name)
}

// Experiments maps experiment ids (as accepted by cmd/miobench) to
// their runners, in presentation order.
func (s *Suite) Experiments() []Experiment {
	return []Experiment{
		{"table1", "Dataset statistics (Table I)", s.Table1},
		{"fig5", "Runtime vs r, all algorithms (Fig. 5a-e)", s.Fig5Time},
		{"fig5mem", "Index memory vs r (Fig. 5f-j)", s.Fig5Mem},
		{"table2", "Per-phase breakdown, BIGrid vs BIGrid-label (Table II)", s.Table2},
		{"fig6", "Scalability vs sampling rate (Fig. 6)", s.Fig6},
		{"fig7", "Top-k runtime vs k (Fig. 7)", s.Fig7},
		{"fig8", "Parallel partitioning strategies (Fig. 8)", s.Fig8},
		{"fig9", "Parallel algorithms vs cores (Fig. 9)", s.Fig9},
		{"table3", "Speedup ratios vs cores (Table III)", s.Table3},
		{"appa", "Online-vs-offline grid & bitset ablations (Appendix A)", s.AppendixA},
	}
}

// Experiment is one runnable table/figure reproduction.
type Experiment struct {
	ID   string
	Desc string
	Run  func() error
}

// RunAll executes every experiment in order.
func (s *Suite) RunAll() error {
	for _, e := range s.Experiments() {
		if err := e.Run(); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// Run executes the experiments with the given ids ("all" runs
// everything).
func (s *Suite) Run(ids ...string) error {
	if len(ids) == 1 && ids[0] == "all" {
		return s.RunAll()
	}
	byID := map[string]Experiment{}
	for _, e := range s.Experiments() {
		byID[e.ID] = e
	}
	for _, id := range ids {
		e, ok := byID[id]
		if !ok {
			known := make([]string, 0, len(byID))
			for k := range byID {
				known = append(known, k)
			}
			sort.Strings(known)
			return fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(known, ", "))
		}
		if err := e.Run(); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}

// timeIt runs fn once and returns the wall-clock duration.
func timeIt(fn func()) time.Duration {
	t0 := time.Now()
	fn()
	return time.Since(t0)
}

// table renders an aligned text table.
type table struct {
	title  string
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

// fprintCSV renders the table as a CSV block with a title comment.
func (t *table) fprintCSV(w io.Writer) {
	fmt.Fprintf(w, "\n# %s\n", t.title)
	cw := csv.NewWriter(w)
	cw.Write(t.header)
	for _, r := range t.rows {
		cw.Write(r)
	}
	cw.Flush()
}

func (t *table) fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.title)
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, r := range t.rows {
		printRow(r)
	}
}

// ms formats a duration as milliseconds with 3 significant decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
}

// mb formats a byte count as mebibytes.
func mb(b int) string {
	return fmt.Sprintf("%.3f", float64(b)/(1<<20))
}

// emit renders one table in the suite's configured format.
func (s *Suite) emit(t *table) {
	if s.CSV {
		t.fprintCSV(s.Out)
		return
	}
	t.fprint(s.Out)
}
