package bench

import (
	"fmt"
	"math"
	"time"

	"mio/internal/baseline"
	"mio/internal/core"
	"mio/internal/core/labelstore"
	"mio/internal/data"
	"mio/internal/grid"
)

// engine builds a core engine, failing loudly — the harness runs over
// generated data, so construction errors are programming bugs.
func engine(ds *data.Dataset, opts core.Options) *core.Engine {
	e, err := core.NewEngine(ds, opts)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return e
}

// runBIGrid runs one plain BIGrid query.
func runBIGrid(ds *data.Dataset, r float64, k, workers int) *core.Result {
	e := engine(ds, core.Options{Workers: workers})
	res, err := e.RunTopK(r, k)
	if err != nil {
		panic(err)
	}
	return res
}

// primeLabeled collects labels for (ds, r) with one untimed query and
// returns the engine ready for labeled runs plus the store for
// label-size accounting. The paper's BIGrid-label rows measure the
// labeled re-query only; callers time e.RunTopK themselves.
func primeLabeled(ds *data.Dataset, r float64, k, workers int) (*core.Engine, *labelstore.Store) {
	store := labelstore.NewStore()
	e := engine(ds, core.Options{Workers: workers, Labels: store})
	if _, err := e.RunTopK(r, k); err != nil {
		panic(err)
	}
	return e, store
}

// runBIGridLabeled primes labels and returns the labeled re-query's
// result (untimed convenience wrapper).
func runBIGridLabeled(ds *data.Dataset, r float64, k, workers int) (*core.Result, *labelstore.Store) {
	e, store := primeLabeled(ds, r, k, workers)
	res, err := e.RunTopK(r, k)
	if err != nil {
		panic(err)
	}
	return res, store
}

// Table1 prints the dataset statistics in the shape of Table I.
func (s *Suite) Table1() error {
	t := &table{
		title:  "Table I: dataset statistics (stand-ins, scale " + fmt.Sprintf("%.2f", s.Scale) + ")",
		header: []string{"Dataset", "n", "m", "nm"},
	}
	sets := s.Datasets()
	for _, name := range DatasetNames {
		ds := sets[name]
		t.add(name,
			fmt.Sprintf("%d", ds.N()),
			fmt.Sprintf("%.0f", ds.AvgPoints()),
			fmt.Sprintf("%d", ds.TotalPoints()))
	}
	s.emit(t)
	return nil
}

// Fig5Time reproduces Fig. 5(a)-(e): single-core runtime vs r for NL,
// SG, BIGrid and BIGrid-label on each dataset.
func (s *Suite) Fig5Time() error {
	sets := s.Datasets()
	for _, name := range DatasetNames {
		ds := sets[name]
		t := &table{
			title:  fmt.Sprintf("Fig. 5 (time) %s: runtime [ms] vs r", name),
			header: []string{"r", "NL", "SG", "BIGrid", "BIGrid-label"},
		}
		for _, r := range s.Rs {
			nlCell := "-"
			if ds.TotalPoints() <= s.NLPointLimit {
				d := timeIt(func() { baseline.NL(ds, r, 1) })
				nlCell = ms(d)
			}
			sgD := timeIt(func() { baseline.SG(ds, r, 1) })
			var bg *core.Result
			bgD := timeIt(func() { bg = runBIGrid(ds, r, 1, 1) })
			le, _ := primeLabeled(ds, r, 1, 1)
			lblD := timeIt(func() {
				if _, err := le.RunTopK(r, 1); err != nil {
					panic(err)
				}
			})
			_ = bg
			t.add(fmt.Sprintf("%g", r), nlCell, ms(sgD), ms(bgD), ms(lblD))
		}
		s.emit(t)
	}
	return nil
}

// Fig5Mem reproduces Fig. 5(f)-(j): index memory vs r for SG, BIGrid
// and BIGrid-label (whose grid shrinks because 0**-labelled points are
// never mapped; label bytes are reported separately).
func (s *Suite) Fig5Mem() error {
	sets := s.Datasets()
	for _, name := range DatasetNames {
		ds := sets[name]
		t := &table{
			title:  fmt.Sprintf("Fig. 5 (memory) %s: index size [MiB] vs r", name),
			header: []string{"r", "SG", "BIGrid", "BIGrid-label", "labels"},
		}
		for _, r := range s.Rs {
			sg := baseline.BuildSG(ds, r)
			bg := runBIGrid(ds, r, 1, 1)
			lbl, store := runBIGridLabeled(ds, r, 1, 1)
			labelBytes := 0
			if l, ok := store.Get(int(math.Ceil(r))); ok {
				labelBytes = l.SizeBytes()
			}
			t.add(fmt.Sprintf("%g", r),
				mb(sg.SizeBytes()),
				mb(bg.Stats.IndexBytes),
				mb(lbl.Stats.IndexBytes),
				mb(labelBytes))
		}
		s.emit(t)
	}
	return nil
}

// Table2 reproduces Table II: the per-phase breakdown of BIGrid vs
// BIGrid-label at the default threshold (the first entry of Rs).
func (s *Suite) Table2() error {
	r := s.Rs[0]
	sets := s.Datasets()
	t := &table{
		title:  fmt.Sprintf("Table II: phase breakdown [ms] at r=%g", r),
		header: []string{"Dataset", "Algorithm", "Label-Input", "Grid-Mapping", "Lower-bounding", "Upper-bounding", "Verification"},
	}
	for _, name := range DatasetNames {
		ds := sets[name]
		bg := runBIGrid(ds, r, 1, 1)
		lbl, _ := runBIGridLabeled(ds, r, 1, 1)
		addRow := func(alg string, st core.PhaseStats) {
			t.add(name, alg, ms(st.LabelInput), ms(st.GridMapping),
				ms(st.LowerBounding), ms(st.UpperBounding), ms(st.Verification))
		}
		addRow("BIGrid", bg.Stats)
		addRow("BIGrid-label", lbl.Stats)
	}
	s.emit(t)
	return nil
}

// Fig6 reproduces Fig. 6: runtime and index memory vs the sampling rate
// s at the default threshold.
func (s *Suite) Fig6() error {
	r := s.Rs[0]
	rates := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	sets := s.Datasets()
	for _, name := range DatasetNames {
		full := sets[name]
		tTime := &table{
			title:  fmt.Sprintf("Fig. 6 (time) %s: runtime [ms] vs sampling rate, r=%g", name, r),
			header: []string{"s", "NL", "SG", "BIGrid", "BIGrid-label"},
		}
		tMem := &table{
			title:  fmt.Sprintf("Fig. 6 (memory) %s: index size [MiB] vs sampling rate, r=%g", name, r),
			header: []string{"s", "SG", "BIGrid", "BIGrid-label"},
		}
		for _, rate := range rates {
			ds := full.Sample(rate, 97)
			nlCell := "-"
			if ds.TotalPoints() <= s.NLPointLimit {
				nlCell = ms(timeIt(func() { baseline.NL(ds, r, 1) }))
			}
			sgD := timeIt(func() { baseline.SG(ds, r, 1) })
			var bg *core.Result
			bgD := timeIt(func() { bg = runBIGrid(ds, r, 1, 1) })
			le, _ := primeLabeled(ds, r, 1, 1)
			var lbl *core.Result
			lblD := timeIt(func() {
				var err error
				if lbl, err = le.RunTopK(r, 1); err != nil {
					panic(err)
				}
			})
			tTime.add(fmt.Sprintf("%.1f", rate), nlCell, ms(sgD), ms(bgD), ms(lblD))
			tMem.add(fmt.Sprintf("%.1f", rate),
				mb(baseline.BuildSG(ds, r).SizeBytes()),
				mb(bg.Stats.IndexBytes),
				mb(lbl.Stats.IndexBytes))
		}
		s.emit(tTime)
		s.emit(tMem)
	}
	return nil
}

// Fig7 reproduces Fig. 7: BIGrid runtime vs k for the top-k variant.
func (s *Suite) Fig7() error {
	r := s.Rs[0]
	ks := []int{1, 5, 10, 25, 50}
	sets := s.Datasets()
	t := &table{
		title: fmt.Sprintf("Fig. 7: BIGrid top-k runtime [ms] vs k, r=%g", r),
		header: append([]string{"Dataset"}, func() []string {
			h := make([]string, len(ks))
			for i, k := range ks {
				h[i] = fmt.Sprintf("k=%d", k)
			}
			return h
		}()...),
	}
	for _, name := range DatasetNames {
		ds := sets[name]
		row := []string{name}
		for _, k := range ks {
			kk := k
			if kk > ds.N() {
				kk = ds.N()
			}
			d := timeIt(func() { runBIGrid(ds, r, kk, 1) })
			row = append(row, ms(d))
		}
		t.add(row...)
	}
	s.emit(t)
	return nil
}

// Fig8 reproduces Fig. 8: the lower- and upper-bounding phase times of
// the competing parallel partitioning strategies, on the real-data
// stand-ins (the paper uses the four real datasets here).
func (s *Suite) Fig8() error {
	r := s.Rs[0]
	sets := s.Datasets()
	for _, name := range []string{"Neuron", "Neuron-2", "Bird", "Bird-2"} {
		ds := sets[name]
		t := &table{
			title:  fmt.Sprintf("Fig. 8 %s: bounding phase time [ms] vs cores, r=%g", name, r),
			header: []string{"t", "LB-greedy-d", "LB-hash-p", "UB-greedy-p", "UB-greedy-d"},
		}
		for _, w := range s.Workers {
			row := []string{fmt.Sprintf("%d", w)}
			for _, lb := range []core.LBStrategy{core.LBGreedyD, core.LBHashP} {
				e := engine(ds, core.Options{Workers: w, LB: lb})
				res, err := e.Run(r)
				if err != nil {
					return err
				}
				row = append(row, ms(res.Stats.LowerBounding))
			}
			for _, ub := range []core.UBStrategy{core.UBGreedyP, core.UBGreedyD} {
				e := engine(ds, core.Options{Workers: w, UB: ub})
				res, err := e.Run(r)
				if err != nil {
					return err
				}
				row = append(row, ms(res.Stats.UpperBounding))
			}
			t.add(row...)
		}
		s.emit(t)
	}
	return nil
}

// Fig9 reproduces Fig. 9: end-to-end runtime of the parallelised
// algorithms vs core count.
func (s *Suite) Fig9() error {
	r := s.Rs[0]
	sets := s.Datasets()
	for _, name := range DatasetNames {
		ds := sets[name]
		t := &table{
			title:  fmt.Sprintf("Fig. 9 %s: parallel runtime [ms] vs cores, r=%g", name, r),
			header: []string{"t", "NL", "SG", "BIGrid", "BIGrid-label"},
		}
		for _, w := range s.Workers {
			nlCell := "-"
			if ds.TotalPoints() <= s.NLPointLimit {
				nlCell = ms(timeIt(func() { baseline.NLParallel(ds, r, 1, w) }))
			}
			sgD := timeIt(func() { baseline.SGParallel(ds, r, 1, w) })
			bgD := timeIt(func() { runBIGrid(ds, r, 1, w) })
			le, _ := primeLabeled(ds, r, 1, w)
			lblD := timeIt(func() {
				if _, err := le.RunTopK(r, 1); err != nil {
					panic(err)
				}
			})
			t.add(fmt.Sprintf("%d", w), nlCell, ms(sgD), ms(bgD), ms(lblD))
		}
		s.emit(t)
	}
	return nil
}

// Table3 reproduces Table III: BIGrid and BIGrid-label speedup ratios
// against their single-core runs, on Neuron and Bird.
func (s *Suite) Table3() error {
	r := s.Rs[0]
	sets := s.Datasets()
	t := &table{
		title:  fmt.Sprintf("Table III: speedup vs single core, r=%g", r),
		header: []string{"t", "Neuron BIGrid", "Neuron BIGrid-label", "Bird BIGrid", "Bird BIGrid-label"},
	}
	type pair struct{ plain, labeled time.Duration }
	base := map[string]pair{}
	for _, name := range []string{"Neuron", "Bird"} {
		ds := sets[name]
		le, _ := primeLabeled(ds, r, 1, 1)
		base[name] = pair{
			plain: timeIt(func() { runBIGrid(ds, r, 1, 1) }),
			labeled: timeIt(func() {
				if _, err := le.RunTopK(r, 1); err != nil {
					panic(err)
				}
			}),
		}
	}
	for _, w := range s.Workers {
		if w == 1 {
			continue
		}
		row := []string{fmt.Sprintf("%d", w)}
		for _, name := range []string{"Neuron", "Bird"} {
			ds := sets[name]
			p := timeIt(func() { runBIGrid(ds, r, 1, w) })
			le, _ := primeLabeled(ds, r, 1, w)
			l := timeIt(func() {
				if _, err := le.RunTopK(r, 1); err != nil {
					panic(err)
				}
			})
			row = append(row,
				fmt.Sprintf("%.3f", float64(base[name].plain)/float64(p)),
				fmt.Sprintf("%.3f", float64(base[name].labeled)/float64(l)))
		}
		t.add(row...)
	}
	s.emit(t)
	return nil
}

// AppendixA quantifies the two design rationales of Appendix A and
// footnote 4: (a) the compressed bitsets' memory advantage over dense
// ones, and (b) the cell-access blow-up an offline grid built for r'
// would suffer when queried with r > r' (the 27-cell neighbourhood
// grows as (2⌈r/r'⌉+1)³).
func (s *Suite) AppendixA() error {
	r := s.Rs[0]
	sets := s.Datasets()
	t := &table{
		title:  fmt.Sprintf("Appendix A (a): compressed vs dense small-grid bitsets, r=%g", r),
		header: []string{"Dataset", "compressed [MiB]", "dense [MiB]", "saved"},
	}
	for _, name := range DatasetNames {
		ds := sets[name]
		res := runBIGrid(ds, r, 1, 1)
		comp := res.Stats.SmallGridBytes
		dense := res.Stats.SmallGridUncompressedBytes
		t.add(name, mb(comp), mb(dense), fmt.Sprintf("%.1f%%", 100*(1-float64(comp)/float64(dense))))
	}
	s.emit(t)

	// (b) Offline grids: a grid built for r' < r must widen each
	// adjacency union to radius ⌈r/r'⌉, and the per-cell cost is
	// measured, not just counted, on the real Neuron grid.
	t2 := &table{
		title:  "Appendix A (b): offline grid built for r'=r/ratio — measured adjacency-union cost (Neuron)",
		header: []string{"r/r'", "cells per union", "union time [ms, 200 cells]", "vs online"},
	}
	neuron := s.Datasets()["Neuron"]
	baseTime := time.Duration(0)
	for _, ratio := range []int32{1, 2, 4} {
		rq := s.Rs[0]
		// Offline grid width r' = r/ratio.
		g := buildLargeGrid(neuron, rq/float64(ratio))
		keys := sampleCellKeys(g, 200)
		d := timeIt(func() {
			for _, k := range keys {
				g.ComputeAdjRadius(k, ratio)
			}
		})
		if ratio == 1 {
			baseTime = d
		}
		side := int(2*ratio + 1)
		t2.add(fmt.Sprintf("%d", ratio),
			fmt.Sprintf("%d", side*side*side),
			ms(d),
			fmt.Sprintf("%.1fx", float64(d)/float64(baseTime)))
	}
	s.emit(t2)

	// (c) §II-B empirically: the object-MBR R-tree filter degenerates
	// on elongated objects, and even the point-level R-tree loses to
	// the grids.
	t3 := &table{
		title:  fmt.Sprintf("Appendix A (c): MBR/R-tree baselines vs grids, r=%g (§II-B)", s.Rs[0]),
		header: []string{"Dataset", "RT-object [ms]", "RT-point [ms]", "SG [ms]", "BIGrid [ms]", "MBR filter overshoot"},
	}
	for _, name := range []string{"Neuron", "Bird-2"} {
		ds := s.Datasets()[name]
		r := s.Rs[0]
		var st baseline.RTObjectStats
		var scores []int
		rtObjD := timeIt(func() { scores, st = baseline.RTObjectScores(ds, r) })
		interacting := 0
		for _, sc := range scores {
			interacting += sc
		}
		interacting /= 2
		rtPtD := timeIt(func() { baseline.RTPointScores(ds, r) })
		sgD := timeIt(func() { baseline.SG(ds, r, 1) })
		bgD := timeIt(func() { runBIGrid(ds, r, 1, 1) })
		overshoot := "-"
		if interacting > 0 {
			overshoot = fmt.Sprintf("%.1fx", float64(st.CandidatePairs)/float64(interacting))
		}
		t3.add(name, ms(rtObjD), ms(rtPtD), ms(sgD), ms(bgD), overshoot)
	}
	s.emit(t3)
	return nil
}

// buildLargeGrid builds a standalone large-grid with the given cell
// width (the Appendix-A offline-grid stand-in).
func buildLargeGrid(ds *data.Dataset, width float64) *grid.LargeGrid {
	g := grid.NewLargeGrid(width, ds.N())
	for i := range ds.Objects {
		for j, p := range ds.Objects[i].Pts {
			g.Add(i, j, p)
		}
	}
	return g
}

// sampleCellKeys returns up to limit cell keys of the grid.
func sampleCellKeys(g *grid.LargeGrid, limit int) []grid.Key {
	keys := make([]grid.Key, 0, limit)
	g.ForEach(func(k grid.Key, _ *grid.LargeCell) {
		if len(keys) < limit {
			keys = append(keys, k)
		}
	})
	return keys
}
