package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"mio/internal/core"
	"mio/internal/data"
	"mio/internal/shard"
	"mio/internal/tune"
)

// SnapshotSchemaVersion identifies the BENCH_*.json layout. Bump it on
// incompatible changes; cmd/benchdiff refuses to compare snapshots
// with mismatched versions.
const SnapshotSchemaVersion = 1

// BenchRecord is one benchmark result inside a snapshot. Metrics holds
// the per-op work counters (dist_comps, candidates, verified,
// index_bytes) that make regressions diagnosable: a time regression
// with unchanged counters is a code-speed problem, one with grown
// counters is an algorithmic problem.
type BenchRecord struct {
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op"`
	Iters   int                `json:"iters"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the machine-readable benchmark record written by
// `miobench -json` and consumed by cmd/benchdiff.
type Snapshot struct {
	SchemaVersion int     `json:"schema_version"`
	Date          string  `json:"date"`
	GoVersion     string  `json:"go_version"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Scale         float64 `json:"scale"`
	// AutoTuned records that the engines were configured by
	// internal/tune rather than the hand defaults.
	AutoTuned bool `json:"auto_tuned,omitempty"`
	// Profiles holds the measured tune.Profile of every snapshot
	// dataset, keyed by name — the workload context a reader needs to
	// interpret the numbers (and to re-derive the tuner's choices).
	Profiles   map[string]*tune.Profile `json:"profiles,omitempty"`
	Benchmarks []BenchRecord            `json:"benchmarks"`
}

// snapshotDatasets is the subset of stand-ins the snapshot measures by
// default: the two the paper leans on hardest, one sparse/many-objects
// (Bird) and one dense/many-points (Neuron). Suite.SnapshotSets
// overrides it (the tune-gate adds adversarial sets).
var snapshotDatasets = []string{"Bird", "Neuron"}

// snapshotSets resolves the dataset list one Snapshot call measures.
func (s *Suite) snapshotSets() []string {
	if len(s.SnapshotSets) > 0 {
		return s.SnapshotSets
	}
	return snapshotDatasets
}

// Snapshot measures "EngineQuery/<ds>/r=<r>" (one full single-core
// top-1 query) and "Verification/<ds>/r=<r>" (that query's
// verification phase) on the snapshot datasets across the suite's r
// sweep, plus "BatchEpoch/<ds>/q=256" (one shared-⌈r⌉ batch group over
// a 256-query epoch workload, see batchEpochSpecs), repeating each
// measurement reps times and recording the median. date is stamped
// verbatim (the caller owns the clock).
func (s *Suite) Snapshot(date string, reps int) (*Snapshot, error) {
	if reps < 1 {
		reps = 1
	}
	snap := &Snapshot{
		SchemaVersion: SnapshotSchemaVersion,
		Date:          date,
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Scale:         s.Scale,
		AutoTuned:     s.AutoTune,
		Profiles:      map[string]*tune.Profile{},
	}
	for _, name := range s.snapshotSets() {
		ds, err := s.snapshotDataset(name)
		if err != nil {
			return nil, err
		}
		prof := tune.Profiler(ds)
		snap.Profiles[name] = prof
		opts := core.Options{Workers: 1}
		if s.AutoTune {
			opts = tune.Select(prof, tune.Env{
				MaxProcs:   runtime.GOMAXPROCS(0),
				ExpectedRs: s.Rs,
			}).Opts
		}
		eng, err := core.NewEngine(ds, opts)
		if err != nil {
			return nil, fmt.Errorf("snapshot: %s: %w", name, err)
		}
		for _, r := range s.Rs {
			totals := make([]float64, 0, reps)
			verifs := make([]float64, 0, reps)
			var last *core.Result
			for i := 0; i < reps; i++ {
				res, err := eng.RunTopK(r, 1)
				if err != nil {
					return nil, fmt.Errorf("snapshot: %s r=%g: %w", name, r, err)
				}
				totals = append(totals, float64(res.Stats.Total()))
				verifs = append(verifs, float64(res.Stats.Verification))
				last = res
			}
			metrics := map[string]float64{
				"dist_comps":  float64(last.Stats.DistanceComps),
				"candidates":  float64(last.Stats.Candidates),
				"verified":    float64(last.Stats.Verified),
				"index_bytes": float64(last.Stats.IndexBytes),
			}
			snap.Benchmarks = append(snap.Benchmarks,
				BenchRecord{
					Name:    fmt.Sprintf("EngineQuery/%s/r=%g", name, r),
					NsPerOp: median(totals),
					Iters:   reps,
					Metrics: metrics,
				},
				BenchRecord{
					Name:    fmt.Sprintf("Verification/%s/r=%g", name, r),
					NsPerOp: median(verifs),
					Iters:   reps,
					Metrics: map[string]float64{"dist_comps": metrics["dist_comps"]},
				})
		}
		rec, err := batchEpochRecord(name, eng, s.Rs[0], reps)
		if err != nil {
			return nil, err
		}
		snap.Benchmarks = append(snap.Benchmarks, rec)
		srec, err := scatterRecord(name, ds, s.Rs[0], reps)
		if err != nil {
			return nil, err
		}
		snap.Benchmarks = append(snap.Benchmarks, srec)
	}
	return snap, nil
}

// scatterShards is the cluster size the snapshot measures: the same
// 4-shard layout the CI chaos suite and the README quickstart use.
const scatterShards = 4

// scatterRecord measures "Scatter/<ds>/shards=4": one fault-tolerant
// scatter–gather top-1 query over a healthy 4-shard cluster.
// ns_per_op is the median query wall time; dist_comps sums the
// per-shard counters (border objects are re-bounded by every shard
// holding a replica, so the sum is deterministic but intentionally
// larger than the solo-engine count — see DESIGN.md §15), which lets
// the benchdiff gate pin sharded-path work exactly.
func scatterRecord(name string, ds *data.Dataset, r float64, reps int) (BenchRecord, error) {
	maxR := math.Ceil(r) + 1 // replica horizon comfortably past the measured radius
	// Hedging is disabled for the measurement: on a healthy in-process
	// cluster a speculative attempt only fires when a shard strays past
	// timeout/4, which on a slow or loaded host turns the record
	// bimodal (the hedge doubles the work right at the cliff). The
	// serving default keeps hedges; the benchmark wants determinism.
	coord, err := shard.New(ds, core.Options{Workers: 1},
		shard.Config{Shards: scatterShards, MaxR: maxR, HedgeAfter: -1})
	if err != nil {
		return BenchRecord{}, fmt.Errorf("snapshot: %s scatter: %w", name, err)
	}
	times := make([]float64, 0, reps)
	var (
		res *core.Result
		rep *shard.Report
	)
	for i := 0; i < reps; i++ {
		start := time.Now()
		res, rep, err = coord.Query(context.Background(), r, 1)
		times = append(times, float64(time.Since(start)))
		if err != nil {
			return BenchRecord{}, fmt.Errorf("snapshot: %s scatter r=%g: %w", name, r, err)
		}
		if res.Degraded {
			return BenchRecord{}, fmt.Errorf("snapshot: %s scatter r=%g: degraded answer on a healthy cluster", name, r)
		}
	}
	return BenchRecord{
		Name:    fmt.Sprintf("Scatter/%s/shards=%d", name, scatterShards),
		NsPerOp: median(times),
		Iters:   reps,
		Metrics: map[string]float64{
			"dist_comps":    float64(res.Stats.DistanceComps),
			"candidates":    float64(res.Stats.Candidates),
			"verified":      float64(res.Stats.Verified),
			"pruned_shards": float64(rep.Pruned),
		},
	}, nil
}

// batchEpochMembers is the epoch size the snapshot measures: one full
// closed-loop wave of monitoring clients (cf. mioload -compare -burst).
const batchEpochMembers = 256

// batchEpochSpecs builds the deterministic epoch the snapshot
// measures: 256 members drawing Zipf-skewed thresholds from a few
// variants of r (all keeping ⌈r⌉, so they form one batch group) with a
// cycling k — many clients, few radii, varying k.
func batchEpochSpecs(r float64) []core.GroupSpec {
	const variants, kSpread = 8, 4
	zipf := rand.NewZipf(rand.New(rand.NewSource(42)), 1.3, 1, variants-1)
	rs := make([]float64, variants)
	step := (r - (math.Ceil(r) - 1)) * 0.5 / variants
	for i := range rs {
		rs[i] = r - float64(i)*step
	}
	specs := make([]core.GroupSpec, batchEpochMembers)
	for i := range specs {
		specs[i] = core.GroupSpec{R: rs[zipf.Uint64()], K: 1 + i%kSpread}
	}
	return specs
}

// batchEpochRecord measures "BatchEpoch/<ds>/q=256": one shared-⌈r⌉
// group run over the epoch workload. ns_per_op is the median epoch
// wall time; dist_comps sums the distinct plans' counters, so the
// deterministic benchdiff gate pins batch-path work exactly the way it
// pins the query-major records.
func batchEpochRecord(name string, eng *core.Engine, r float64, reps int) (BenchRecord, error) {
	specs := batchEpochSpecs(r)
	times := make([]float64, 0, reps)
	var (
		outs []core.GroupOutcome
		grp  core.GroupReport
	)
	for i := 0; i < reps; i++ {
		start := time.Now()
		outs, grp = eng.RunGroup(context.Background(), specs)
		times = append(times, float64(time.Since(start)))
	}
	var dist float64
	seen := make(map[*core.Result]struct{}, grp.Plans)
	for i, o := range outs {
		if o.Err != nil {
			return BenchRecord{}, fmt.Errorf("snapshot: %s batch epoch member %d (r=%g k=%d): %w",
				name, i, specs[i].R, specs[i].K, o.Err)
		}
		if _, dup := seen[o.Result]; dup {
			continue
		}
		seen[o.Result] = struct{}{}
		dist += float64(o.Result.Stats.DistanceComps)
	}
	return BenchRecord{
		Name:    fmt.Sprintf("BatchEpoch/%s/q=%d", name, batchEpochMembers),
		NsPerOp: median(times),
		Iters:   reps,
		Metrics: map[string]float64{
			"dist_comps":     dist,
			"plans":          float64(grp.Plans),
			"r_variants":     float64(grp.RVariants),
			"queries_shared": float64(grp.Members - grp.Plans),
			"cells_deduped":  float64(grp.CellsDeduped),
		},
	}, nil
}

// WriteJSON renders the snapshot as indented JSON.
func (sn *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sn)
}

// median returns the median of xs (mean of the middle pair for even
// lengths). xs is sorted in place.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// SnapshotFileName returns the conventional snapshot file name for a
// date: BENCH_<YYYY-MM-DD>.json.
func SnapshotFileName(t time.Time) string {
	return "BENCH_" + t.Format("2006-01-02") + ".json"
}
