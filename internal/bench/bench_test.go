package bench

import (
	"bytes"
	"strings"
	"testing"
)

func quickSuite(buf *bytes.Buffer) *Suite {
	s := NewSuite(buf)
	s.Scale = 0.05
	s.Rs = []float64{4, 8}
	s.Workers = []int{1, 2}
	return s
}

func TestSuiteRunsEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	s := quickSuite(&buf)
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table I", "Fig. 5 (time)", "Fig. 5 (memory)", "Table II",
		"Fig. 6 (time)", "Fig. 7", "Fig. 8", "Fig. 9", "Table III", "Appendix A",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestSuiteRunByID(t *testing.T) {
	var buf bytes.Buffer
	s := quickSuite(&buf)
	if err := s.Run("table1"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table I") {
		t.Error("table1 produced no output")
	}
	if err := s.Run("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTableRendering(t *testing.T) {
	var buf bytes.Buffer
	tb := &table{title: "T", header: []string{"a", "bb"}}
	tb.add("xxx", "y")
	tb.fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "xxx  y") {
		t.Fatalf("rendered:\n%s", out)
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := mb(1 << 20); got != "1.000" {
		t.Errorf("mb = %s", got)
	}
	if got := ms(1500000); got != "1.500" { // 1.5ms in ns
		t.Errorf("ms = %s", got)
	}
}

func TestDefaultWorkersShape(t *testing.T) {
	ws := defaultWorkers()
	if len(ws) == 0 || ws[0] != 1 {
		t.Fatalf("workers = %v", ws)
	}
	for i := 1; i < len(ws); i++ {
		if ws[i] <= ws[i-1] {
			t.Fatalf("not increasing: %v", ws)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	var buf bytes.Buffer
	s := quickSuite(&buf)
	s.CSV = true
	if err := s.Run("table1"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# Table I") {
		t.Fatalf("missing CSV title comment:\n%s", out)
	}
	if !strings.Contains(out, "Dataset,n,m,nm") {
		t.Fatalf("missing CSV header:\n%s", out)
	}
}
