package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// The history file accumulates snapshot results across commits in the
// BENCHMARK_DATA shape used by the common benchmark-tracking GitHub
// actions: a top-level {lastUpdate, repoUrl, entries} document whose
// entries map tool names to append-only runs, each run a {commit?,
// date, tool, benches} record with flat {name, value, unit, extra}
// measurements. cmd/benchdiff -history appends one run per snapshot;
// nothing in this repo gates on the file — it exists for plotting and
// for archaeology.

// HistoryBench is one flat measurement inside a history run.
type HistoryBench struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	Extra string  `json:"extra,omitempty"`
}

// HistoryCommit identifies the commit a run measured, when known.
type HistoryCommit struct {
	ID string `json:"id"`
}

// HistoryEntry is one appended run: the snapshot's benchmarks
// flattened to (name, value, unit) triples.
type HistoryEntry struct {
	Commit *HistoryCommit `json:"commit,omitempty"`
	// Date is the run timestamp in Unix milliseconds (the snapshot's
	// date at midnight UTC).
	Date    int64          `json:"date"`
	Tool    string         `json:"tool"`
	Benches []HistoryBench `json:"benches"`
}

// History is the whole benchmarks/history.json document.
type History struct {
	LastUpdate int64                     `json:"lastUpdate"`
	RepoURL    string                    `json:"repoUrl"`
	Entries    map[string][]HistoryEntry `json:"entries"`
}

// historyTool is the entries key every snapshot run appends under.
const historyTool = "miobench"

// historyEntry flattens a snapshot into one appendable run. Benches
// are ordered: per record, ns/op first, then its metrics sorted by
// name — so appends are deterministic and diffs of the file are
// readable.
func historyEntry(snap *Snapshot, commit string) HistoryEntry {
	e := HistoryEntry{Tool: historyTool}
	if commit != "" {
		e.Commit = &HistoryCommit{ID: commit}
	}
	if t, err := time.Parse("2006-01-02", snap.Date); err == nil {
		e.Date = t.UnixMilli()
	}
	for _, b := range snap.Benchmarks {
		extra := fmt.Sprintf("iters=%d", b.Iters)
		if snap.AutoTuned {
			extra += " autotuned"
		}
		e.Benches = append(e.Benches, HistoryBench{
			Name: b.Name, Value: b.NsPerOp, Unit: "ns/op", Extra: extra,
		})
		metrics := make([]string, 0, len(b.Metrics))
		for k := range b.Metrics {
			metrics = append(metrics, k)
		}
		sort.Strings(metrics)
		for _, k := range metrics {
			e.Benches = append(e.Benches, HistoryBench{
				Name: b.Name + "/" + k, Value: b.Metrics[k], Unit: k,
			})
		}
	}
	return e
}

// AppendHistory appends snap as one run to the history file at path,
// creating it (and its directory) on first use. The write is atomic —
// temp file in the same directory, fsync, rename — so a crash never
// truncates accumulated history. Existing entries are never modified;
// lastUpdate moves to the new run's date.
func AppendHistory(path string, snap *Snapshot, commit string) error {
	h := &History{Entries: map[string][]HistoryEntry{}}
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, h); err != nil {
			return fmt.Errorf("history: %s exists but is not a history file: %w", path, err)
		}
		if h.Entries == nil {
			h.Entries = map[string][]HistoryEntry{}
		}
	case os.IsNotExist(err):
	default:
		return fmt.Errorf("history: %w", err)
	}

	entry := historyEntry(snap, commit)
	h.Entries[historyTool] = append(h.Entries[historyTool], entry)
	if entry.Date > h.LastUpdate {
		h.LastUpdate = entry.Date
	}

	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("history: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".history-*.json")
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", "  ")
	if err := enc.Encode(h); err != nil {
		tmp.Close()
		return fmt.Errorf("history: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("history: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("history: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("history: %w", err)
	}
	return nil
}
