package bench

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := NewSuite(io.Discard)
	s.Scale = 0.02
	s.Rs = []float64{6}
	snap, err := s.Snapshot("2026-08-06", 2)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SchemaVersion != SnapshotSchemaVersion || snap.Date != "2026-08-06" {
		t.Fatalf("header: %+v", snap)
	}
	// 2 datasets × (1 r × 2 records (EngineQuery + Verification) + 1
	// BatchEpoch record + 1 Scatter record).
	if len(snap.Benchmarks) != 8 {
		t.Fatalf("got %d benchmarks", len(snap.Benchmarks))
	}
	names := map[string]bool{}
	for _, b := range snap.Benchmarks {
		names[b.Name] = true
		if b.NsPerOp <= 0 || b.Iters != 2 {
			t.Fatalf("record %+v", b)
		}
	}
	for _, want := range []string{
		"EngineQuery/Bird/r=6", "Verification/Bird/r=6",
		"EngineQuery/Neuron/r=6", "Verification/Neuron/r=6",
		"BatchEpoch/Bird/q=256", "BatchEpoch/Neuron/q=256",
		"Scatter/Bird/shards=4", "Scatter/Neuron/shards=4",
	} {
		if !names[want] {
			t.Fatalf("missing %q in %v", want, names)
		}
	}
	for _, b := range snap.Benchmarks {
		if !strings.HasPrefix(b.Name, "BatchEpoch/") {
			continue
		}
		if b.Metrics["plans"] <= 0 || b.Metrics["queries_shared"] <= 0 || b.Metrics["dist_comps"] <= 0 {
			t.Fatalf("batch epoch record lacks sharing metrics: %+v", b)
		}
	}
	for _, b := range snap.Benchmarks {
		if !strings.HasPrefix(b.Name, "Scatter/") {
			continue
		}
		if b.Metrics["dist_comps"] <= 0 {
			t.Fatalf("scatter record lacks work metrics: %+v", b)
		}
	}

	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Benchmarks[0].Metrics["dist_comps"] != snap.Benchmarks[0].Metrics["dist_comps"] {
		t.Fatal("metrics lost in round trip")
	}
	if !strings.Contains(buf.String(), `"schema_version": 1`) {
		t.Fatalf("unexpected serialisation:\n%s", buf.String())
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{5}); m != 5 {
		t.Fatalf("median single = %g", m)
	}
	if m := median([]float64{4, 2, 8, 6}); m != 5 {
		t.Fatalf("median even = %g", m)
	}
	if m := median(nil); m != 0 {
		t.Fatalf("median nil = %g", m)
	}
}
