package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func historySnap(date string, auto bool) *Snapshot {
	return &Snapshot{
		SchemaVersion: SnapshotSchemaVersion,
		Date:          date,
		AutoTuned:     auto,
		Benchmarks: []BenchRecord{
			{Name: "EngineQuery/Bird/r=4", NsPerOp: 1000, Iters: 3,
				Metrics: map[string]float64{"dist_comps": 42, "candidates": 7}},
			{Name: "Verification/Bird/r=4", NsPerOp: 500, Iters: 3,
				Metrics: map[string]float64{"dist_comps": 42}},
		},
	}
}

func TestAppendHistoryCreatesAndAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "benchmarks", "history.json")

	if err := AppendHistory(path, historySnap("2026-08-01", false), "abc123"); err != nil {
		t.Fatal(err)
	}
	if err := AppendHistory(path, historySnap("2026-08-08", true), ""); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var h History
	if err := json.Unmarshal(raw, &h); err != nil {
		t.Fatal(err)
	}
	runs := h.Entries["miobench"]
	if len(runs) != 2 {
		t.Fatalf("entries[miobench] holds %d runs, want 2", len(runs))
	}
	// Appends never rewrite earlier runs.
	if runs[0].Commit == nil || runs[0].Commit.ID != "abc123" {
		t.Fatalf("first run lost its commit: %+v", runs[0].Commit)
	}
	if runs[1].Commit != nil {
		t.Fatalf("second run invented a commit: %+v", runs[1].Commit)
	}
	if runs[0].Date >= runs[1].Date || h.LastUpdate != runs[1].Date {
		t.Fatalf("dates not monotone: %d, %d, lastUpdate %d", runs[0].Date, runs[1].Date, h.LastUpdate)
	}
	// Flattening: ns/op first, then metrics sorted by name.
	b := runs[0].Benches
	wantNames := []string{
		"EngineQuery/Bird/r=4", "EngineQuery/Bird/r=4/candidates", "EngineQuery/Bird/r=4/dist_comps",
		"Verification/Bird/r=4", "Verification/Bird/r=4/dist_comps",
	}
	if len(b) != len(wantNames) {
		t.Fatalf("run holds %d benches, want %d", len(b), len(wantNames))
	}
	for i, name := range wantNames {
		if b[i].Name != name {
			t.Fatalf("bench[%d] = %q, want %q", i, b[i].Name, name)
		}
	}
	if b[0].Unit != "ns/op" || b[0].Value != 1000 || b[0].Extra != "iters=3" {
		t.Fatalf("ns/op bench malformed: %+v", b[0])
	}
	if b[2].Unit != "dist_comps" || b[2].Value != 42 {
		t.Fatalf("metric bench malformed: %+v", b[2])
	}
	// The autotuned run is marked.
	if runs[1].Benches[0].Extra != "iters=3 autotuned" {
		t.Fatalf("autotuned run not marked: %q", runs[1].Benches[0].Extra)
	}
	// No stray temp files survive.
	files, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("history dir holds %d files, want just history.json", len(files))
	}
}

func TestAppendHistoryRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendHistory(path, historySnap("2026-08-01", false), ""); err == nil {
		t.Fatal("appending over a non-history file must fail, not clobber it")
	}
	raw, _ := os.ReadFile(path)
	if string(raw) != "not json" {
		t.Fatal("failed append clobbered the existing file")
	}
}
