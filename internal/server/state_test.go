package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mio/internal/core"
	"mio/internal/data"
	"mio/internal/durable"
	"mio/internal/fault"
)

// openTestState opens a DurableState over dir and commits ds as its
// first generation, returning the state and the generation's store.
func openTestState(t *testing.T, dir string, ds *data.Dataset, dio durable.IO) (*DurableState, *core.Options) {
	t.Helper()
	st, err := OpenState(dir, dio)
	if err != nil {
		t.Fatal(err)
	}
	store, gen, err := st.CommitDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("first commit produced generation %d", gen)
	}
	return st, &core.Options{Labels: store}
}

// TestStateWarmRestart is the headline acceptance test: a server that
// computed labels, "crashed" and restarted from its state directory
// serves the same exact answers with UsedLabels=true on the very
// first query.
func TestStateWarmRestart(t *testing.T) {
	root := t.TempDir()
	ds := testDataset(60, 3)
	st, opts := openTestState(t, root, ds, durable.IO{})

	s, err := New(ds, *opts, Config{State: st})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	// r=4.5 and r=5 share ⌈r⌉=5: the first computes and persists the
	// label set, the second is the oracle the restarted server must
	// reproduce.
	var warmup, oracle queryResponse
	if rec := get(t, h, "/v1/query?r=4.5&k=3", &warmup); rec.Code != http.StatusOK {
		t.Fatalf("warmup: status %d: %s", rec.Code, rec.Body.String())
	}
	if warmup.Result.Stats.UsedLabels {
		t.Fatal("first query of a fresh generation reused labels")
	}
	if rec := get(t, h, "/v1/query?r=5&k=3", &oracle); rec.Code != http.StatusOK {
		t.Fatalf("oracle: status %d: %s", rec.Code, rec.Body.String())
	}
	if !oracle.Result.Stats.UsedLabels {
		t.Fatal("second query with the same ⌈r⌉ did not reuse labels")
	}

	// "Crash": drop every in-process handle and recover from disk.
	st2, err := OpenState(root, durable.IO{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.Generation != 1 {
		t.Fatalf("recovered %+v, want generation 1", rec)
	}
	if rec.Dataset.N() != ds.N() || rec.Dataset.TotalPoints() != ds.TotalPoints() {
		t.Fatalf("recovered dataset has %d objects / %d points, want %d / %d",
			rec.Dataset.N(), rec.Dataset.TotalPoints(), ds.N(), ds.TotalPoints())
	}
	s2, err := New(rec.Dataset, core.Options{Labels: rec.Labels}, Config{State: st2})
	if err != nil {
		t.Fatal(err)
	}
	var after queryResponse
	if r := get(t, s2.Handler(), "/v1/query?r=5&k=3", &after); r.Code != http.StatusOK {
		t.Fatalf("post-restart query: status %d: %s", r.Code, r.Body.String())
	}
	if !after.Result.Stats.UsedLabels {
		t.Fatal("warm restart did not restore the label set (UsedLabels=false)")
	}
	if len(after.Result.TopK) != len(oracle.Result.TopK) {
		t.Fatalf("post-restart top-k size %d, want %d", len(after.Result.TopK), len(oracle.Result.TopK))
	}
	for i := range oracle.Result.TopK {
		if after.Result.TopK[i] != oracle.Result.TopK[i] {
			t.Fatalf("post-restart top-k[%d] = %+v, want %+v", i, after.Result.TopK[i], oracle.Result.TopK[i])
		}
	}
}

// TestStateCrashMatrix drives one injected crash through every IO step
// of a dataset commit and verifies the recovery invariant end to end:
// the reopened state always yields a complete, verified generation —
// the old one if the crash hit before the publish point, the new one
// after — and never a torn mix.
func TestStateCrashMatrix(t *testing.T) {
	old := testDataset(40, 1)
	repl := testDataset(70, 2)
	steps := []struct {
		name    string
		rule    fault.Rule
		wantNew bool
	}{
		{"shortwrite-dataset", fault.Rule{Point: fault.PointIOWrite, Kind: fault.KindShortWrite, P: 1}, false},
		{"error-dataset-write", fault.Rule{Point: fault.PointIOWrite, Kind: fault.KindError, P: 1}, false},
		{"crash-dataset-sync", fault.Rule{Point: fault.PointIOSync, Kind: fault.KindCrash, P: 1}, false},
		{"crash-dataset-rename", fault.Rule{Point: fault.PointIORename, Kind: fault.KindCrash, P: 1}, false},
		// After=1 skips the dataset file's rename: the crash hits the
		// staging-directory rename, after which nothing was published.
		{"crash-stage-rename", fault.Rule{Point: fault.PointIORename, Kind: fault.KindCrash, P: 1, After: 1}, false},
		// After=2 lands on the MANIFEST rename: the generation directory
		// itself is already published, so recovery prefers it even though
		// the manifest still names the old one.
		{"crash-manifest-rename", fault.Rule{Point: fault.PointIORename, Kind: fault.KindCrash, P: 1, After: 2}, false},
		// The final dirsync after the manifest: fully committed.
		{"crash-after-manifest", fault.Rule{Point: fault.PointIODirSync, Kind: fault.KindCrash, P: 1, After: 2}, true},
	}
	for _, tc := range steps {
		t.Run(tc.name, func(t *testing.T) {
			root := t.TempDir()
			openTestState(t, root, old, durable.IO{})
			// Attempt the second commit with the fault armed.
			reg := fault.New(1)
			reg.Arm(tc.rule)
			faulty, err := OpenState(root, durable.IO{Faults: reg})
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := faulty.CommitDataset(repl); err == nil {
				t.Fatal("injected commit reported success")
			}

			// "Restart" fault-free.
			re, err := OpenState(root, durable.IO{})
			if err != nil {
				t.Fatal(err)
			}
			rec, err := re.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if rec == nil {
				t.Fatal("no generation survived the crash")
			}
			want, wantN := uint64(1), old.N()
			if tc.wantNew {
				want, wantN = 2, repl.N()
			}
			if rec.Generation != want || rec.Dataset.N() != wantN {
				t.Fatalf("recovered generation %d with %d objects, want %d with %d",
					rec.Generation, rec.Dataset.N(), want, wantN)
			}
			// Recover repairs the manifest to name what it serves, so a
			// second restart takes the fast path to the same generation.
			if mGen, ok, _ := re.LastGood(); !ok || mGen != rec.Generation {
				t.Errorf("manifest names %d (ok=%v) after recovery of %d", mGen, ok, rec.Generation)
			}
			// The recovered generation must be servable.
			if _, err := New(rec.Dataset, core.Options{Labels: rec.Labels}, Config{State: re}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStateRecoverSkipsCorruptGeneration: a generation whose dataset
// was damaged at rest is quarantined and recovery falls back to an
// older good one.
func TestStateRecoverSkipsCorruptGeneration(t *testing.T) {
	root := t.TempDir()
	st, _ := openTestState(t, root, testDataset(40, 1), durable.IO{})
	if _, gen, err := st.CommitDataset(testDataset(70, 2)); err != nil || gen != 2 {
		t.Fatalf("second commit: gen %d, %v", gen, err)
	}
	// Flip one payload byte of generation 2's dataset.
	path := filepath.Join(root, "gen-000002", "dataset.bin")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenState(root, durable.IO{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := re.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.Generation != 1 || rec.Dataset.N() != 40 {
		t.Fatalf("recovered %+v, want generation 1 with 40 objects", rec)
	}
	if _, err := os.Stat(filepath.Join(root, "gen-000002"+durable.CorruptSuffix)); err != nil {
		t.Errorf("corrupt generation not quarantined: %v", err)
	}
	// A pre-envelope (unverified) dataset smuggled into a generation is
	// equally rejected: generations claim durability, so an unprotected
	// file there means damage.
	if rec2, _ := re.Recover(); rec2 == nil || rec2.Generation != 1 {
		t.Fatalf("second recovery = %+v", rec2)
	}
}

// TestSwapDurableCommitBreaker is the chaos-suite extension: IO faults
// during a swap's durable commit fail the swap, trip the swap circuit
// breaker, and never leave a half-committed generation; once the
// faults clear, a probe swap commits generation 2 and a restart
// recovers it.
func TestSwapDurableCommitBreaker(t *testing.T) {
	root := t.TempDir()
	ds := testDataset(40, 1)
	reg := fault.New(11)
	st, opts := openTestState(t, root, ds, durable.IO{Faults: reg})

	cooldown := 150 * time.Millisecond
	s, err := New(ds, *opts, Config{
		State: st, AllowSwap: true,
		SwapBreakThreshold: 2, SwapBreakCooldown: cooldown,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	replPath := filepath.Join(t.TempDir(), "repl.bin")
	if err := data.SaveFile(replPath, testDataset(70, 2)); err != nil {
		t.Fatal(err)
	}
	post := func() *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		body := strings.NewReader(fmt.Sprintf(`{"path": %q}`, replPath))
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/dataset", body))
		return rec
	}

	// Every durable commit fails at the first rename until cleared.
	reg.Arm(fault.Rule{Point: fault.PointIORename, Kind: fault.KindError, P: 1})
	for i := 0; i < 2; i++ {
		if rec := post(); rec.Code != http.StatusBadRequest {
			t.Fatalf("faulted swap %d: status %d, want 400", i, rec.Code)
		}
	}
	if rec := post(); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("swap on open breaker: status %d, want 503", rec.Code)
	}
	if s.Epoch() != 0 || s.Dataset().N() != ds.N() {
		t.Fatalf("failed swaps changed the served dataset (epoch %d)", s.Epoch())
	}
	// No half-committed generation: the only committed generation is 1
	// and the manifest still names it.
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() == "gen-000001" || e.Name() == "MANIFEST" {
			continue
		}
		if !strings.Contains(e.Name(), ".stage") && !strings.Contains(e.Name(), durable.CorruptSuffix) {
			t.Errorf("unexpected state entry %q after failed swaps", e.Name())
		}
	}
	if gen, ok, _ := st.LastGood(); !ok || gen != 1 {
		t.Fatalf("manifest = %d (ok=%v), want 1", gen, ok)
	}

	// Faults clear; after the cooldown the half-open probe commits.
	reg.Clear(fault.PointIORename)
	time.Sleep(cooldown + 20*time.Millisecond)
	if rec := post(); rec.Code != http.StatusOK {
		t.Fatalf("probe swap: status %d: %s", rec.Code, rec.Body.String())
	}
	if s.Epoch() != 1 || s.Dataset().N() != 70 {
		t.Fatalf("probe swap served epoch %d, %d objects", s.Epoch(), s.Dataset().N())
	}
	re, err := OpenState(root, durable.IO{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := re.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.Dataset.N() != 70 {
		t.Fatalf("restart after successful swap recovered %+v, want the 70-object dataset", rec)
	}
}

// TestSwapCommitsLabelsPerGeneration: after a durable swap, label work
// flows into the new generation's directory, so a restart recovers the
// swapped dataset with its own labels warm.
func TestSwapCommitsLabelsPerGeneration(t *testing.T) {
	root := t.TempDir()
	ds := testDataset(40, 1)
	st, opts := openTestState(t, root, ds, durable.IO{})
	s, err := New(ds, *opts, Config{State: st, AllowSwap: true})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	replPath := filepath.Join(t.TempDir(), "repl.bin")
	repl := testDataset(70, 2)
	if err := data.SaveFile(replPath, repl); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/dataset",
		strings.NewReader(fmt.Sprintf(`{"path": %q}`, replPath))))
	if rec.Code != http.StatusOK {
		t.Fatalf("swap: status %d: %s", rec.Code, rec.Body.String())
	}
	// Label the swapped dataset.
	var qr queryResponse
	if r := get(t, h, "/v1/query?r=5&k=2", &qr); r.Code != http.StatusOK {
		t.Fatalf("query: status %d", r.Code)
	}
	if _, err := os.Stat(filepath.Join(root, "gen-000002", "labels", "labels-5.bin")); err != nil {
		t.Fatalf("label set not persisted into generation 2: %v", err)
	}

	// Restart: generation 2 comes back with its labels warm.
	re, err := OpenState(root, durable.IO{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Generation != 2 || got.Dataset.N() != repl.N() {
		t.Fatalf("recovered %+v, want generation 2", got)
	}
	s2, err := New(got.Dataset, core.Options{Labels: got.Labels}, Config{State: re})
	if err != nil {
		t.Fatal(err)
	}
	var after queryResponse
	if r := get(t, s2.Handler(), "/v1/query?r=5&k=2", &after); r.Code != http.StatusOK {
		t.Fatalf("post-restart query: status %d", r.Code)
	}
	if !after.Result.Stats.UsedLabels {
		t.Fatal("restart did not warm the swapped generation's labels")
	}
	if after.Result.Best != qr.Result.Best {
		t.Fatalf("post-restart best %+v, want %+v", after.Result.Best, qr.Result.Best)
	}
}
