package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mio/internal/batch"
	"mio/internal/core"
	"mio/internal/data"
	"mio/internal/fault"
	"mio/internal/server/metrics"
	"mio/internal/shard"
	"mio/internal/tune"
)

// Wire DTOs. Query results reuse the json-tagged core types; the
// envelopes below add the request echo and serving metadata.

type errorResponse struct {
	Error string `json:"error"`
}

type queryResponse struct {
	R         float64 `json:"r"`
	K         int     `json:"k"`
	Epoch     uint64  `json:"dataset_epoch"`
	Cached    bool    `json:"cached"`
	Coalesced bool    `json:"coalesced"`
	Batched   bool    `json:"batched,omitempty"`
	Sharded   bool    `json:"sharded,omitempty"`
	// Scatter reports the per-shard outcome of a sharded query:
	// states, attempts, hedges, the merged floor, pruning.
	Scatter *shard.Report `json:"scatter,omitempty"`
	Result  *core.Result  `json:"result"`
}

// shardQueryValue is the cached/coalesced value of a sharded query:
// the merged result plus its scatter report.
type shardQueryValue struct {
	res *core.Result
	rep *shard.Report
}

type interactingResponse struct {
	R         float64 `json:"r"`
	Obj       int     `json:"obj"`
	Epoch     uint64  `json:"dataset_epoch"`
	Cached    bool    `json:"cached"`
	Coalesced bool    `json:"coalesced"`
	Count     int     `json:"count"`
	IDs       []int   `json:"ids"`
}

// scoresPayload is the cached value for /v1/scores: the histogram and
// percentiles always, the raw score vector only when full=1.
type scoresPayload struct {
	N               int   `json:"n"`
	HistogramCounts []int `json:"histogram_counts"`
	HistogramWidth  int   `json:"histogram_width"`
	P50             int   `json:"p50"`
	P90             int   `json:"p90"`
	P99             int   `json:"p99"`
	Max             int   `json:"max"`
	Scores          []int `json:"scores,omitempty"`
}

type scoresResponse struct {
	R         float64        `json:"r"`
	Epoch     uint64         `json:"dataset_epoch"`
	Cached    bool           `json:"cached"`
	Coalesced bool           `json:"coalesced"`
	Result    *scoresPayload `json:"result"`
}

type sweepResponse struct {
	RS        []float64          `json:"rs"`
	K         int                `json:"k"`
	Epoch     uint64             `json:"dataset_epoch"`
	Cached    bool               `json:"cached"`
	Coalesced bool               `json:"coalesced"`
	Results   []core.SweepResult `json:"results"`
}

type healthResponse struct {
	Status   string  `json:"status"`
	Dataset  string  `json:"dataset"`
	Objects  int     `json:"objects"`
	Points   int     `json:"points"`
	Epoch    uint64  `json:"dataset_epoch"`
	Draining bool    `json:"draining"`
	UptimeS  float64 `json:"uptime_s"`
	// Shards reports per-shard serving status (object counts, breaker
	// state, last error, envelope depth) when sharded serving is on.
	Shards []shard.Health `json:"shards,omitempty"`
}

type swapRequest struct {
	Path string `json:"path"`
}

type swapResponse struct {
	Dataset string `json:"dataset"`
	Objects int    `json:"objects"`
	Epoch   uint64 `json:"dataset_epoch"`
}

// CacheStats is the cache section of MetricsSnapshot.
type CacheStats struct {
	Enabled   bool   `json:"enabled"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
}

// BreakerStats is the swap-breaker section of MetricsSnapshot.
type BreakerStats struct {
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Refused             uint64 `json:"refused_total"`
}

// ShardStats is the sharded-serving section of MetricsSnapshot:
// scatter/merge/hedge latency histograms, the fault-tolerance counters
// (cmd/mioload reads the deltas of these to report degraded-answer and
// retry/hedge rates per run), per-query pruning, and per-shard health.
type ShardStats struct {
	Shards        int     `json:"shards"`
	MaxR          float64 `json:"max_r"`
	DegradedTotal uint64  `json:"degraded_total"`
	HedgesTotal   uint64  `json:"hedges_total"`
	RetriesTotal  uint64  `json:"retries_total"`
	DownsTotal    uint64  `json:"downs_total"`
	// StaleTotal counts remote responses rejected by the dataset
	// generation guard; BadResponsesTotal counts responses rejected by
	// strict validation (corrupt envelope, malformed or out-of-range
	// payload). Always 0 for in-process shards.
	StaleTotal        uint64              `json:"stale_total"`
	BadResponsesTotal uint64              `json:"bad_responses_total"`
	ScatterLatency    metrics.Snapshot    `json:"scatter_latency"`
	MergeLatency      metrics.Snapshot    `json:"merge_latency"`
	HedgeLatency      metrics.Snapshot    `json:"hedge_latency"`
	PrunedPerQuery    metrics.IntSnapshot `json:"pruned_per_query"`
	PerShard          []shard.Health      `json:"per_shard"`
}

// TuningStats is the auto-tuning section of MetricsSnapshot: the
// measured profile of the dataset currently served and the knob
// assignment selected from it (with the rule trail that produced it).
type TuningStats struct {
	Profile *tune.Profile `json:"profile"`
	Tuning  tune.Tuning   `json:"tuning"`
}

// MetricsSnapshot is the /metrics document. cmd/mioload decodes it to
// report server-side coalescing and cache effectiveness.
type MetricsSnapshot struct {
	UptimeS           float64                     `json:"uptime_s"`
	Dataset           string                      `json:"dataset"`
	Objects           int                         `json:"objects"`
	DatasetEpoch      uint64                      `json:"dataset_epoch"`
	InFlight          int64                       `json:"in_flight"`
	MaxInFlight       int                         `json:"max_in_flight"`
	CoalesceEnabled   bool                        `json:"coalesce_enabled"`
	Requests          map[string]uint64           `json:"requests_total"`
	EngineRuns        uint64                      `json:"engine_runs_total"`
	Coalesced         uint64                      `json:"coalesced_total"`
	AdmissionRejected uint64                      `json:"admission_rejected_total"`
	BadRequests       uint64                      `json:"bad_request_total"`
	Timeouts          uint64                      `json:"timeout_total"`
	DrainRejected     uint64                      `json:"drain_rejected_total"`
	Panics            uint64                      `json:"panic_total"`
	Quarantined       uint64                      `json:"quarantined_total"`
	Degraded          uint64                      `json:"degraded_total"`
	SwapBreaker       BreakerStats                `json:"swap_breaker"`
	FaultsFired       map[string]uint64           `json:"faults_fired,omitempty"`
	Batch             *batch.Stats                `json:"batch,omitempty"`
	Shards            *ShardStats                 `json:"shards,omitempty"`
	Tuning            *TuningStats                `json:"tuning,omitempty"`
	Cache             CacheStats                  `json:"cache"`
	HTTPLatency       map[string]metrics.Snapshot `json:"http_latency"`
	PhaseLatency      map[string]metrics.Snapshot `json:"phase_latency"`
}

// Handler returns the server's HTTP API. Every route runs inside the
// panic-recovery middleware: a panicking handler yields a 500 and a
// panic_total tick instead of a killed connection.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/query", s.v1("query", s.handleQuery))
	mux.HandleFunc("GET /v1/interacting", s.v1("interacting", s.handleInteracting))
	mux.HandleFunc("GET /v1/scores", s.v1("scores", s.handleScores))
	mux.HandleFunc("GET /v1/sweep", s.v1("sweep", s.handleSweep))
	mux.HandleFunc("POST /v1/dataset", s.v1("swap", s.handleSwap))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.recoverPanics(mux)
}

// recoverPanics is the outermost middleware: it converts handler
// panics into 500 responses and counts them. By the time a panic
// reaches here the inner layers have already cleaned up — withEngine
// refilled the pool slot (quarantining the engine) and flight.Do
// released coalesced waiters with ErrLeaderPanicked — so recovery is
// safe: no lock is held and no slot is lost.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				// net/http's own sentinel for deliberately dropping the
				// connection; honour it.
				panic(rec)
			}
			s.m.panics.Inc()
			// If the handler already wrote a response this write is a
			// no-op on the status line; the counter is the reliable
			// signal either way.
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal panic: %v", rec))
		}()
		next.ServeHTTP(w, req)
	})
}

// v1 wraps a query endpoint with drain gating, per-endpoint counters
// and HTTP latency observation. Requests hold the drain read lock for
// their duration, so Drain's write lock doubles as the in-flight
// barrier.
func (s *Server) v1(kind string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		s.drainMu.RLock()
		defer s.drainMu.RUnlock()
		if s.draining {
			s.m.drainRejected.Inc()
			writeError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		s.m.requests[kind].Inc()
		if err := s.cfg.Faults.Fire(fault.PointRequest); err != nil {
			s.writeExecError(w, err)
			return
		}
		t0 := time.Now()
		h(w, req)
		s.m.httpLat[kind].Observe(time.Since(t0))
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, req *http.Request) {
	r, ok := s.parseR(w, req)
	if !ok {
		return
	}
	k, ok := s.parseIntParam(w, req, "k", 1, 1)
	if !ok {
		return
	}
	// degraded=1 opts into deadline degradation: when the query budget
	// expires mid-pipeline the client gets a 200 with Degraded set and
	// a certified [LB, UB] interval instead of a 504. Degraded and
	// exact requests coalesce separately (the answers differ).
	degrade := req.URL.Query().Get("degraded") == "1"
	epoch := s.epoch.Load()
	key := fmt.Sprintf("%d|query|%s|%d|d%v", epoch, rKey(r), k, degrade)
	if s.batch != nil {
		s.handleQueryBatched(w, req, r, k, degrade, epoch, key)
		return
	}
	// Queries beyond the replica horizon cannot be answered exactly by
	// the shards; they fall through to the solo engine pool.
	if co := s.coord.Load(); co != nil && r <= co.MaxR() {
		s.handleQuerySharded(w, req, co, r, k, epoch)
		return
	}
	val, cached, coalesced, err := s.execute(key, func() (any, error) {
		return s.withEngine(req.Context(), func(ctx context.Context, eng *core.Engine) (any, error) {
			var res *core.Result
			var err error
			if degrade {
				res, err = eng.RunTopKDegradedContext(ctx, r, k)
			} else {
				res, err = eng.RunTopKContext(ctx, r, k)
			}
			if err == nil {
				if res.Degraded {
					s.m.degraded.Inc()
				}
				s.observePhases(res.Stats)
			}
			return res, err
		})
	})
	if err != nil {
		s.writeExecError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, queryResponse{
		R: r, K: k, Epoch: epoch, Cached: cached, Coalesced: coalesced,
		Result: val.(*core.Result),
	})
}

// handleQueryBatched is the /v1/query path when batch execution is on:
// cache lookup, then Submit into the current epoch instead of a solo
// engine run. Coalescing is subsumed — identical (r, k) members of a
// group share one plan and one *Result — so the flight group is not
// consulted. The per-request deadline is applied here (the solo path
// gets it inside withEngine) so a member's detach-on-expiry works even
// while its group still has engine budget left.
func (s *Server) handleQueryBatched(w http.ResponseWriter, req *http.Request, r float64, k int, degrade bool, epoch uint64, key string) {
	if !s.cfg.DisableCache {
		if v, ok := s.cache.Get(key); ok {
			writeJSON(w, http.StatusOK, queryResponse{
				R: r, K: k, Epoch: epoch, Cached: true, Batched: true,
				Result: v.(*core.Result),
			})
			return
		}
	}
	ctx := req.Context()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	res, err := s.batch.Submit(ctx, r, k, degrade)
	if err != nil {
		s.writeExecError(w, err)
		return
	}
	if res.Degraded {
		s.m.degraded.Inc()
	}
	if !s.cfg.DisableCache && cacheable(res) {
		s.cache.Put(key, res)
	}
	writeJSON(w, http.StatusOK, queryResponse{
		R: r, K: k, Epoch: epoch, Batched: true, Result: res,
	})
}

// handleQuerySharded is the /v1/query path when sharded serving is on
// and the radius is inside the replica horizon: cache lookup and
// coalescing as usual, then a coordinator scatter–gather instead of a
// solo engine run. The coordinator owns admission (per-shard engine
// pools) and fault tolerance; shard failures arrive here as a 200 with
// Degraded set and a certified interval — cacheable() keeps those out
// of the result cache.
func (s *Server) handleQuerySharded(w http.ResponseWriter, req *http.Request, co *shard.Coordinator, r float64, k int, epoch uint64) {
	key := fmt.Sprintf("%d|query|%s|%d|sharded", epoch, rKey(r), k)
	ctx := req.Context()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	val, cached, coalesced, err := s.execute(key, func() (any, error) {
		s.m.inFlight.Inc()
		defer s.m.inFlight.Dec()
		res, rep, err := co.Query(ctx, r, k)
		if err != nil {
			return nil, err
		}
		if res.Degraded {
			s.m.degraded.Inc()
		}
		s.observePhases(res.Stats)
		return &shardQueryValue{res: res, rep: rep}, nil
	})
	if err != nil {
		s.writeExecError(w, err)
		return
	}
	sv := val.(*shardQueryValue)
	writeJSON(w, http.StatusOK, queryResponse{
		R: r, K: k, Epoch: epoch, Cached: cached, Coalesced: coalesced,
		Sharded: true, Scatter: sv.rep, Result: sv.res,
	})
}

func (s *Server) handleInteracting(w http.ResponseWriter, req *http.Request) {
	r, ok := s.parseR(w, req)
	if !ok {
		return
	}
	n := s.ds.Load().N()
	obj, ok := s.parseIntParam(w, req, "obj", -1, 0)
	if !ok {
		return
	}
	if req.URL.Query().Get("obj") == "" || obj >= n {
		s.badRequest(w, fmt.Sprintf("obj must be in [0, %d)", n))
		return
	}
	epoch := s.epoch.Load()
	key := fmt.Sprintf("%d|interacting|%s|%d", epoch, rKey(r), obj)
	val, cached, coalesced, err := s.execute(key, func() (any, error) {
		return s.withEngine(req.Context(), func(ctx context.Context, eng *core.Engine) (any, error) {
			return eng.InteractingSetContext(ctx, r, obj)
		})
	})
	if err != nil {
		s.writeExecError(w, err)
		return
	}
	ids := val.([]int)
	writeJSON(w, http.StatusOK, interactingResponse{
		R: r, Obj: obj, Epoch: epoch, Cached: cached, Coalesced: coalesced,
		Count: len(ids), IDs: ids,
	})
}

func (s *Server) handleScores(w http.ResponseWriter, req *http.Request) {
	r, ok := s.parseR(w, req)
	if !ok {
		return
	}
	buckets, ok := s.parseIntParam(w, req, "buckets", 12, 1)
	if !ok {
		return
	}
	full := req.URL.Query().Get("full") == "1"
	epoch := s.epoch.Load()
	key := fmt.Sprintf("%d|scores|%s|%d|%v", epoch, rKey(r), buckets, full)
	val, cached, coalesced, err := s.execute(key, func() (any, error) {
		return s.withEngine(req.Context(), func(ctx context.Context, eng *core.Engine) (any, error) {
			scores, err := eng.AllScoresContext(ctx, r)
			if err != nil {
				return nil, err
			}
			counts, width := core.ScoreHistogram(scores, buckets)
			p := &scoresPayload{
				N:               len(scores),
				HistogramCounts: counts,
				HistogramWidth:  width,
				P50:             core.TopPercentile(scores, 0.50),
				P90:             core.TopPercentile(scores, 0.90),
				P99:             core.TopPercentile(scores, 0.99),
				Max:             core.TopPercentile(scores, 1.0),
			}
			if full {
				p.Scores = scores
			}
			return p, nil
		})
	})
	if err != nil {
		s.writeExecError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, scoresResponse{
		R: r, Epoch: epoch, Cached: cached, Coalesced: coalesced,
		Result: val.(*scoresPayload),
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, req *http.Request) {
	rsParam := req.URL.Query().Get("rs")
	if rsParam == "" {
		s.badRequest(w, "missing rs (comma-separated thresholds)")
		return
	}
	parts := strings.Split(rsParam, ",")
	if len(parts) > s.cfg.MaxSweep {
		s.badRequest(w, fmt.Sprintf("sweep of %d thresholds exceeds the limit of %d", len(parts), s.cfg.MaxSweep))
		return
	}
	rs := make([]float64, 0, len(parts))
	for _, p := range parts {
		r, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || r <= 0 {
			s.badRequest(w, fmt.Sprintf("rs entry %q is not a positive number", p))
			return
		}
		rs = append(rs, r)
	}
	k, ok := s.parseIntParam(w, req, "k", 1, 1)
	if !ok {
		return
	}
	epoch := s.epoch.Load()
	keys := make([]string, len(rs))
	for i, r := range rs {
		keys[i] = rKey(r)
	}
	key := fmt.Sprintf("%d|sweep|%s|%d", epoch, strings.Join(keys, ","), k)
	val, cached, coalesced, err := s.execute(key, func() (any, error) {
		return s.withEngine(req.Context(), func(ctx context.Context, eng *core.Engine) (any, error) {
			out, err := eng.SweepContext(ctx, rs, k)
			if err != nil {
				return nil, err
			}
			for _, sr := range out {
				s.observePhases(sr.Result.Stats)
			}
			return out, nil
		})
	})
	if err != nil {
		s.writeExecError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sweepResponse{
		RS: rs, K: k, Epoch: epoch, Cached: cached, Coalesced: coalesced,
		Results: val.([]core.SweepResult),
	})
}

func (s *Server) handleSwap(w http.ResponseWriter, req *http.Request) {
	if !s.cfg.AllowSwap {
		writeError(w, http.StatusForbidden, "dataset swapping is disabled (start the server with swapping allowed)")
		return
	}
	// Validate the request before consulting the breaker: a malformed
	// body is the client's problem and must neither trip the breaker
	// nor consume its half-open probe.
	var sr swapRequest
	if err := json.NewDecoder(req.Body).Decode(&sr); err != nil || sr.Path == "" {
		s.badRequest(w, `body must be {"path": "<dataset file>"}`)
		return
	}
	if retry, ok := s.swapBreaker.Allow(); !ok {
		s.m.swapRefused.Inc()
		secs := int(retry/time.Second) + 1
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("dataset swapping suspended after repeated failures; retry in %ds", secs))
		return
	}
	// From here every outcome must be reported to the breaker, or a
	// half-open probe would never resolve.
	if err := s.cfg.Faults.Fire(fault.PointSwapLoad); err != nil {
		s.swapBreaker.Failure()
		s.writeExecError(w, err)
		return
	}
	ds, err := data.LoadFile(sr.Path)
	if err != nil {
		s.swapBreaker.Failure()
		s.badRequest(w, fmt.Sprintf("loading dataset: %v", err))
		return
	}
	if err := s.SwapDataset(ds); err != nil {
		s.swapBreaker.Failure()
		s.badRequest(w, err.Error())
		return
	}
	s.swapBreaker.Success()
	writeJSON(w, http.StatusOK, swapResponse{
		Dataset: ds.Name, Objects: ds.N(), Epoch: s.epoch.Load(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.drainMu.RLock()
	draining := s.draining
	s.drainMu.RUnlock()
	ds := s.ds.Load()
	status := "ok"
	if draining {
		status = "draining"
	}
	resp := healthResponse{
		Status: status, Dataset: ds.Name, Objects: ds.N(), Points: ds.TotalPoints(),
		Epoch: s.epoch.Load(), Draining: draining,
		UptimeS: time.Since(s.start).Seconds(),
	}
	if co := s.coord.Load(); co != nil {
		resp.Shards = co.Health()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	withBuckets := req.URL.Query().Get("buckets") == "1"
	hits, misses, evictions := s.cache.Stats()
	ds := s.ds.Load()
	snap := MetricsSnapshot{
		UptimeS:           time.Since(s.start).Seconds(),
		Dataset:           ds.Name,
		Objects:           ds.N(),
		DatasetEpoch:      s.epoch.Load(),
		InFlight:          s.m.inFlight.Value(),
		MaxInFlight:       cap(s.slots),
		CoalesceEnabled:   !s.cfg.DisableCoalesce,
		Requests:          make(map[string]uint64, len(endpointKinds)),
		EngineRuns:        s.m.engineRuns.Value(),
		Coalesced:         s.m.coalesced.Value(),
		AdmissionRejected: s.m.rejected.Value(),
		BadRequests:       s.m.badRequests.Value(),
		Timeouts:          s.m.timeouts.Value(),
		DrainRejected:     s.m.drainRejected.Value(),
		Panics:            s.m.panics.Value(),
		Quarantined:       s.m.quarantined.Value(),
		Degraded:          s.m.degraded.Value(),
		SwapBreaker: BreakerStats{
			State:               s.swapBreaker.State().String(),
			ConsecutiveFailures: s.swapBreaker.Failures(),
			Refused:             s.m.swapRefused.Value(),
		},
		FaultsFired: s.cfg.Faults.Counts(),
		Batch:       s.batchStats(withBuckets),
		Shards:      s.shardStats(withBuckets),
		Tuning:      s.tuningStats(),
		Cache: CacheStats{
			Enabled: !s.cfg.DisableCache, Hits: hits, Misses: misses,
			Evictions: evictions, Size: s.cache.Len(), Capacity: s.cache.Cap(),
		},
		HTTPLatency:  make(map[string]metrics.Snapshot, len(endpointKinds)),
		PhaseLatency: make(map[string]metrics.Snapshot, len(phaseNames)),
	}
	for _, k := range endpointKinds {
		snap.Requests[k] = s.m.requests[k].Value()
		snap.HTTPLatency[k] = s.m.httpLat[k].Snapshot(withBuckets)
	}
	for _, p := range phaseNames {
		snap.PhaseLatency[p] = s.m.phaseLat[p].Snapshot(withBuckets)
	}
	writeJSON(w, http.StatusOK, snap)
}

// shardStats snapshots the coordinator for /metrics, or nil when
// sharded serving is off.
func (s *Server) shardStats(withBuckets bool) *ShardStats {
	co := s.coord.Load()
	if co == nil {
		return nil
	}
	m := co.Metrics()
	return &ShardStats{
		Shards:            co.Shards(),
		MaxR:              co.MaxR(),
		DegradedTotal:     m.Degraded.Value(),
		HedgesTotal:       m.Hedges.Value(),
		RetriesTotal:      m.Retries.Value(),
		DownsTotal:        m.Downs.Value(),
		StaleTotal:        m.Stale.Value(),
		BadResponsesTotal: m.Bad.Value(),
		ScatterLatency:    m.Scatter.Snapshot(withBuckets),
		MergeLatency:      m.Merge.Snapshot(withBuckets),
		HedgeLatency:      m.Hedge.Snapshot(withBuckets),
		PrunedPerQuery:    m.Pruned.Snapshot(withBuckets),
		PerShard:          co.Health(),
	}
}

// tuningStats reports the current autotune state for /metrics, or nil
// when AutoTune is off.
func (s *Server) tuningStats() *TuningStats {
	ts := s.tuneState.Load()
	if ts == nil {
		return nil
	}
	return &TuningStats{Profile: ts.profile, Tuning: ts.tuning}
}

// batchStats snapshots the batch engine for /metrics, or nil when
// batch execution is off.
func (s *Server) batchStats(withBuckets bool) *batch.Stats {
	if s.batch == nil {
		return nil
	}
	st := s.batch.Stats(withBuckets)
	return &st
}

// ---- parsing and writing helpers ----

// parseR extracts the mandatory positive distance threshold.
func (s *Server) parseR(w http.ResponseWriter, req *http.Request) (float64, bool) {
	raw := req.URL.Query().Get("r")
	if raw == "" {
		s.badRequest(w, "missing r (distance threshold)")
		return 0, false
	}
	r, err := strconv.ParseFloat(raw, 64)
	if err != nil || r <= 0 {
		s.badRequest(w, fmt.Sprintf("r=%q is not a positive number", raw))
		return 0, false
	}
	return r, true
}

// parseIntParam extracts an optional integer parameter with a default
// and a minimum.
func (s *Server) parseIntParam(w http.ResponseWriter, req *http.Request, name string, def, minVal int) (int, bool) {
	raw := req.URL.Query().Get(name)
	if raw == "" {
		return def, true
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < minVal {
		s.badRequest(w, fmt.Sprintf("%s=%q is not an integer ≥ %d", name, raw, minVal))
		return 0, false
	}
	return v, true
}

func (s *Server) badRequest(w http.ResponseWriter, msg string) {
	s.m.badRequests.Inc()
	writeError(w, http.StatusBadRequest, msg)
}

func (s *Server) writeExecError(w http.ResponseWriter, err error) {
	code := s.statusFor(err)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeError(w, code, err.Error())
}

// rKey renders r for use in cache/flight keys: full precision so
// distinct thresholds never collide.
func rKey(r float64) string { return strconv.FormatFloat(r, 'g', 17, 64) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// An encode failure here means the client hung up mid-write;
	// there is nobody left to report it to.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}
