package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = (%v, %v), want (1, true)", v, ok)
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	// Touch "a" so "b" is the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction; LRU order broken")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a was evicted despite being most recently used")
	}
	if _, _, ev := c.Stats(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestPutReplaces(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("a", 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d after replacing put, want 1", c.Len())
	}
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("Get(a) = %v, want 2", v)
	}
}

func TestClear(t *testing.T) {
	c := New(4)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Clear, want 0", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry survived Clear")
	}
}

func TestTinyCapacity(t *testing.T) {
	c := New(0) // clamped to 1
	c.Put("a", 1)
	c.Put("b", 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("most recent entry missing from capacity-1 cache")
	}
}

// TestConcurrent exercises the lock under -race.
func TestConcurrent(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (w+i)%32)
				c.Put(key, i)
				c.Get(key)
				if i%100 == 0 {
					c.Clear()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("Len = %d exceeds capacity 16", c.Len())
	}
}
