// Package cache provides the bounded LRU result cache of the MIO
// server. Entries are keyed by the full query identity (kind, r, k and
// the dataset epoch — see internal/server), so a dataset swap
// invalidates implicitly via the epoch in addition to the explicit
// Clear the server performs. Values are immutable query results shared
// between goroutines; callers must not mutate what they Get.
package cache

import (
	"container/list"
	"sync"
)

// Cache is a fixed-capacity LRU map. It is safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

type entry struct {
	key string
	val any
}

// New returns a cache holding at most capacity entries. capacity < 1
// is treated as 1.
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached value for key and whether it was present,
// marking the entry most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put stores val under key, replacing any existing entry and evicting
// the least recently used entry when the cache is full.
func (c *Cache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*entry).key)
			c.evictions++
		}
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val})
}

// Clear drops every entry (hit/miss/eviction counters survive; they
// describe the cache's lifetime, not its current contents).
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Cap returns the configured capacity.
func (c *Cache) Cap() int { return c.cap }

// Stats returns the lifetime hit, miss and eviction counts.
func (c *Cache) Stats() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
