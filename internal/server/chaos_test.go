package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mio/internal/core"
	"mio/internal/core/labelstore"
	"mio/internal/data"
	"mio/internal/fault"
)

// TestChaosSurvival hammers a small engine pool with concurrent
// queries while fault injection misbehaves underneath: random request
// errors, verification panics, and verification latency spikes long
// enough to blow the query deadline. The server must keep answering
// with sane statuses, never leak a pool slot, recover every panic, and
// certify every degraded answer with an interval that contains the
// true score.
func TestChaosSurvival(t *testing.T) {
	reg := fault.New(11)
	reg.Arm(fault.Rule{Point: fault.PointRequest, Kind: fault.KindError, P: 0.05})
	reg.Arm(fault.Rule{Point: fault.PointVerification, Kind: fault.KindPanic, P: 0.08})
	reg.Arm(fault.Rule{Point: fault.PointVerification, Kind: fault.KindLatency, P: 0.25, Delay: 60 * time.Millisecond})

	ds := testDataset(300, 3)
	s, err := New(ds, core.Options{Labels: labelstore.NewStore()}, Config{
		MaxInFlight:   2,
		AdmissionWait: 5 * time.Millisecond,
		QueryTimeout:  25 * time.Millisecond,
		DisableCache:  true, // every request must reach the engine
		Faults:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	type degradedObs struct {
		r      float64
		obj    int
		lb, ub int
	}
	var (
		mu       sync.Mutex
		observed []degradedObs
		statuses = map[int]int{}
	)
	const workers, perWorker = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// A unique threshold per request defeats coalescing, so
				// every 200 is an independent engine run.
				r := 4 + float64(w*perWorker+i)*1e-6
				url := fmt.Sprintf("/v1/query?r=%s&k=1", rKey(r))
				if i%2 == 0 {
					url += "&degraded=1"
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
				mu.Lock()
				statuses[rec.Code]++
				mu.Unlock()
				switch rec.Code {
				case http.StatusOK:
					var qr queryResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
						t.Errorf("undecodable 200 body: %v", err)
						continue
					}
					if qr.Result.Degraded {
						iv := qr.Result.Interval
						if iv == nil || iv.LB > iv.UB || qr.Result.Best.Score != iv.LB {
							t.Errorf("malformed degraded result: %+v", qr.Result)
							continue
						}
						mu.Lock()
						observed = append(observed, degradedObs{r: r, obj: qr.Result.Best.Obj, lb: iv.LB, ub: iv.UB})
						mu.Unlock()
					}
				case http.StatusTooManyRequests, http.StatusInternalServerError,
					http.StatusServiceUnavailable, http.StatusGatewayTimeout:
					// Expected chaos outcomes.
				default:
					t.Errorf("unexpected status %d: %s", rec.Code, rec.Body.String())
				}
			}
		}(w)
	}
	wg.Wait()

	// Quiescence: every slot taken during the storm must be back —
	// panics included — or the pool has shrunk forever.
	if len(s.slots) != cap(s.slots) {
		t.Errorf("engine pool leaked: %d of %d slots present", len(s.slots), cap(s.slots))
	}

	var hr healthResponse
	if rec := get(t, h, "/healthz", &hr); rec.Code != http.StatusOK || hr.Status != "ok" {
		t.Errorf("healthz after chaos: code=%d status=%q", rec.Code, hr.Status)
	}

	var snap MetricsSnapshot
	get(t, h, "/metrics", &snap)
	if snap.Panics == 0 {
		t.Error("panic rule never bit: panic_total = 0")
	}
	if snap.Quarantined != snap.Panics {
		t.Errorf("quarantined_total = %d, panic_total = %d: every engine panic must quarantine exactly once",
			snap.Quarantined, snap.Panics)
	}
	if snap.Degraded == 0 || len(observed) == 0 {
		t.Errorf("latency rule never degraded a request: degraded_total=%d observed=%d (statuses %v)",
			snap.Degraded, len(observed), statuses)
	}
	if statuses[http.StatusOK] == 0 {
		t.Errorf("no request succeeded under chaos: %v", statuses)
	}

	// Every degraded interval must contain the true score, recomputed
	// on a clean engine with no faults armed.
	clean, err := core.NewEngine(ds, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range observed {
		ids, err := clean.InteractingSet(o.r, o.obj)
		if err != nil {
			t.Fatalf("clean recompute r=%g obj=%d: %v", o.r, o.obj, err)
		}
		if score := len(ids); score < o.lb || score > o.ub {
			t.Errorf("degraded interval [%d,%d] for r=%g obj=%d misses true score %d",
				o.lb, o.ub, o.r, o.obj, score)
		}
	}

	// Disarm and verify the survivors still answer exactly: the chaos
	// must not have poisoned any pooled engine. The tight chaos
	// deadline is relaxed first — all workers have joined, so nothing
	// races this write — because exactness, not latency, is under test.
	reg.Clear(fault.PointRequest)
	reg.Clear(fault.PointVerification)
	s.cfg.QueryTimeout = 30 * time.Second
	want, err := clean.RunTopK(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*cap(s.slots); i++ { // touch every engine at least once
		var qr queryResponse
		if rec := get(t, h, "/v1/query?r=5&k=1", &qr); rec.Code != http.StatusOK {
			t.Fatalf("post-chaos query %d: status %d: %s", i, rec.Code, rec.Body.String())
		} else if qr.Result.Best.Score != want.Best.Score || qr.Result.Degraded {
			t.Fatalf("post-chaos query %d: got %+v, want exact score %d", i, qr.Result.Best, want.Best.Score)
		}
	}
}

// TestQuarantineDeterministic pins the quarantine path: a guaranteed
// verification panic yields exactly one 500, one recovered panic, one
// quarantined engine — and the very next query, with the rule cleared,
// succeeds on the rebuilt pool.
func TestQuarantineDeterministic(t *testing.T) {
	reg := fault.New(1)
	reg.Arm(fault.Rule{Point: fault.PointVerification, Kind: fault.KindPanic, P: 1})
	s, err := New(testDataset(60, 5), core.Options{Labels: labelstore.NewStore()}, Config{Faults: reg})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	rec := get(t, h, "/v1/query?r=4&k=1", nil)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking query: status %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "injected panic") {
		t.Errorf("500 body does not surface the panic: %s", rec.Body.String())
	}
	var snap MetricsSnapshot
	get(t, h, "/metrics", &snap)
	if snap.Panics != 1 || snap.Quarantined != 1 {
		t.Errorf("panic_total=%d quarantined_total=%d, want 1 and 1", snap.Panics, snap.Quarantined)
	}
	if len(s.slots) != cap(s.slots) {
		t.Fatalf("slot leaked after quarantine: %d of %d", len(s.slots), cap(s.slots))
	}

	reg.Clear(fault.PointVerification)
	var qr queryResponse
	if rec := get(t, h, "/v1/query?r=4&k=1", &qr); rec.Code != http.StatusOK {
		t.Fatalf("query after quarantine: status %d: %s", rec.Code, rec.Body.String())
	}
	if qr.Result == nil || qr.Result.Degraded {
		t.Errorf("replacement engine returned a non-exact result: %+v", qr.Result)
	}
}

// TestSwapBreakerRecovery walks the swap circuit breaker through its
// whole life: repeated failing swaps trip it, a tripped breaker
// fast-fails with 503 + Retry-After without touching the file, and
// after the cooldown a good swap closes it again.
func TestSwapBreakerRecovery(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.bin")
	if err := data.SaveFile(good, testDataset(40, 2)); err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(dir, "missing.bin")

	const cooldown = 80 * time.Millisecond
	s, err := New(testDataset(80, 7), core.Options{}, Config{
		AllowSwap:          true,
		SwapBreakThreshold: 2,
		SwapBreakCooldown:  cooldown,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	post := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		body := strings.NewReader(fmt.Sprintf(`{"path": %q}`, path))
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/dataset", body))
		return rec
	}

	for i := 0; i < 2; i++ {
		if rec := post(missing); rec.Code != http.StatusBadRequest {
			t.Fatalf("failing swap %d: status %d, want 400", i, rec.Code)
		}
	}
	// Tripped: even a good path is refused without being read.
	rec := post(good)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("swap on open breaker: status %d, want 503", rec.Code)
	}
	if secs, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || secs < 1 {
		t.Errorf("open breaker sent Retry-After %q, want a positive integer", rec.Header().Get("Retry-After"))
	}
	var snap MetricsSnapshot
	get(t, h, "/metrics", &snap)
	if snap.SwapBreaker.State != "open" || snap.SwapBreaker.Refused != 1 {
		t.Errorf("breaker stats = %+v, want open with 1 refused", snap.SwapBreaker)
	}

	// A malformed body while open must not consume the eventual
	// half-open probe.
	badBody := httptest.NewRecorder()
	h.ServeHTTP(badBody, httptest.NewRequest("POST", "/v1/dataset", strings.NewReader("{")))
	if badBody.Code != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", badBody.Code)
	}

	time.Sleep(cooldown + 20*time.Millisecond)
	if rec := post(good); rec.Code != http.StatusOK {
		t.Fatalf("probe swap after cooldown: status %d: %s", rec.Code, rec.Body.String())
	}
	get(t, h, "/metrics", &snap)
	if snap.SwapBreaker.State != "closed" || snap.SwapBreaker.ConsecutiveFailures != 0 {
		t.Errorf("breaker after recovery = %+v, want closed with 0 failures", snap.SwapBreaker)
	}
	if s.Epoch() != 1 {
		t.Errorf("epoch = %d after one successful swap, want 1", s.Epoch())
	}
	if got := s.Dataset().N(); got != 40 {
		t.Errorf("served dataset has %d objects after swap, want 40", got)
	}
}
