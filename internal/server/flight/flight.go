// Package flight implements request coalescing (single-flight): when
// several callers ask for the same key concurrently, one of them — the
// leader — executes the function while the rest wait and share its
// result. For an MIO server this is the first line of defence against
// redundant work: a burst of identical (r, k) queries costs one engine
// run instead of many, before the result even reaches the cache.
//
// The package is a from-scratch, stdlib-only implementation shaped
// after golang.org/x/sync/singleflight, reduced to what the server
// needs plus a Pending inspection hook used by coalescing tests and
// metrics.
package flight

import (
	"errors"
	"sync"
)

// ErrLeaderPanicked is the error waiters receive when the leader's fn
// panicked: the leader re-panics (the panic is not swallowed), and
// every coalesced caller gets this sentinel instead of silently
// sharing a zero result.
var ErrLeaderPanicked = errors.New("flight: coalesced leader panicked")

// call tracks one in-flight execution.
type call struct {
	wg   sync.WaitGroup
	val  any
	err  error
	dups int // callers beyond the leader
}

// Group coalesces concurrent calls with equal keys. The zero value is
// ready to use.
type Group struct {
	mu sync.Mutex
	m  map[string]*call
}

// Do executes fn and returns its result, ensuring that at any moment
// at most one execution per key is in flight. Concurrent callers with
// the same key wait for the leader and receive its result with
// shared = true (the leader gets shared = false). Once the leader
// completes, the key is forgotten: a later Do starts a fresh
// execution.
//
// A panic in fn propagates to the leader (re-raised after cleanup);
// waiters receive ErrLeaderPanicked. Either way the key is forgotten
// and waiters are released, so a panicking fn cannot wedge later
// callers of the key.
func (g *Group) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	if c, ok := g.m[key]; ok {
		c.dups++
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &call{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	normal := false
	defer func() {
		if !normal {
			// fn panicked (or called runtime.Goexit): publish the
			// sentinel before releasing waiters, then let the panic
			// continue to the leader's recovery layers.
			c.val, c.err = nil, ErrLeaderPanicked
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		c.wg.Done()
	}()
	c.val, c.err = fn()
	normal = true
	return c.val, c.err, false
}

// Pending returns the number of callers currently attached to key: 0
// when nothing is in flight, 1 for a lone leader, 1+n when n callers
// are waiting to share the leader's result.
func (g *Group) Pending(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.m[key]
	if !ok {
		return 0
	}
	return 1 + c.dups
}
