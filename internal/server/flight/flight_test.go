package flight

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoSequential(t *testing.T) {
	var g Group
	v, err, shared := g.Do("k", func() (any, error) { return 7, nil })
	if v != 7 || err != nil || shared {
		t.Fatalf("Do = (%v, %v, %v), want (7, nil, false)", v, err, shared)
	}
	// The key is forgotten after completion: the next call re-executes.
	ran := false
	v, _, shared = g.Do("k", func() (any, error) { ran = true; return 8, nil })
	if !ran || v != 8 || shared {
		t.Fatalf("second Do = (%v, ran=%v, shared=%v), want fresh execution", v, ran, shared)
	}
}

func TestDoError(t *testing.T) {
	var g Group
	boom := errors.New("boom")
	_, err, _ := g.Do("k", func() (any, error) { return nil, boom })
	if err != boom {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestDoCoalesces blocks the leader until all followers are attached,
// then checks that fn ran exactly once and every caller saw its value.
func TestDoCoalesces(t *testing.T) {
	var g Group
	const followers = 9

	var execs atomic.Int64
	release := make(chan struct{})
	results := make(chan int, followers+1)
	sharedCount := atomic.Int64{}

	launch := func() {
		v, err, shared := g.Do("k", func() (any, error) {
			execs.Add(1)
			<-release
			return 42, nil
		})
		if err != nil {
			t.Errorf("Do returned err %v", err)
		}
		if shared {
			sharedCount.Add(1)
		}
		results <- v.(int)
	}

	go launch()
	// Wait for the leader to register, then attach followers.
	waitPending(t, &g, "k", 1)
	for i := 0; i < followers; i++ {
		go launch()
	}
	waitPending(t, &g, "k", followers+1)
	close(release)

	for i := 0; i < followers+1; i++ {
		if v := <-results; v != 42 {
			t.Fatalf("caller %d got %d, want 42", i, v)
		}
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want 1", n)
	}
	if n := sharedCount.Load(); n != followers {
		t.Fatalf("%d callers reported shared, want %d", n, followers)
	}
	if p := g.Pending("k"); p != 0 {
		t.Fatalf("Pending after completion = %d, want 0", p)
	}
}

// TestDistinctKeysDoNotCoalesce runs two keys concurrently and checks
// both functions execute.
func TestDistinctKeysDoNotCoalesce(t *testing.T) {
	var g Group
	var execs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, _ = g.Do(fmt.Sprintf("k%d", i), func() (any, error) {
				execs.Add(1)
				return nil, nil
			})
		}(i)
	}
	wg.Wait()
	if n := execs.Load(); n != 2 {
		t.Fatalf("fn executed %d times, want 2", n)
	}
}

// panicLeader runs a Do whose fn panics with value pv and returns what
// the leader's deferred recover observed, failing the test if the
// panic did not propagate.
func panicLeader(t *testing.T, g *Group, key string, pv any, gate chan struct{}) any {
	t.Helper()
	var recovered any
	func() {
		defer func() {
			recovered = recover()
			if recovered == nil {
				t.Error("leader panic did not propagate out of Do")
			}
		}()
		_, _, _ = g.Do(key, func() (any, error) {
			if gate != nil {
				<-gate
			}
			panic(pv)
		})
	}()
	return recovered
}

// TestPanicReleasesWaiters ensures a panicking leader does not wedge
// the key forever and that the panic value reaches the leader intact.
func TestPanicReleasesWaiters(t *testing.T) {
	var g Group
	if rec := panicLeader(t, &g, "k", "boom", nil); rec != "boom" {
		t.Fatalf("leader recovered %v, want the original panic value", rec)
	}
	done := make(chan struct{})
	go func() {
		_, _, _ = g.Do("k", func() (any, error) { return nil, nil })
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Do after a panicked leader never returned; key is wedged")
	}
}

// TestPanicGivesWaitersSentinel attaches waiters to a leader that will
// panic and checks every waiter receives ErrLeaderPanicked (not the
// pre-fix silent nil result).
func TestPanicGivesWaitersSentinel(t *testing.T) {
	var g Group
	const waiters = 5
	gate := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		panicLeader(t, &g, "k", errors.New("boom"), gate)
	}()
	waitPending(t, &g, "k", 1)

	type res struct {
		val    any
		err    error
		shared bool
	}
	results := make(chan res, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			v, err, shared := g.Do("k", func() (any, error) { return 1, nil })
			results <- res{v, err, shared}
		}()
	}
	waitPending(t, &g, "k", waiters+1)
	close(gate)
	<-leaderDone

	for i := 0; i < waiters; i++ {
		r := <-results
		// A waiter that attached in time shares the sentinel; one that
		// raced in after the key was forgotten became a fresh leader.
		if r.shared {
			if !errors.Is(r.err, ErrLeaderPanicked) || r.val != nil {
				t.Fatalf("waiter %d got (%v, %v), want (nil, ErrLeaderPanicked)", i, r.val, r.err)
			}
		} else if r.err != nil || r.val != 1 {
			t.Fatalf("fresh leader %d got (%v, %v), want (1, nil)", i, r.val, r.err)
		}
	}
}

func waitPending(t *testing.T, g *Group, key string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for g.Pending(key) < want {
		if time.Now().After(deadline) {
			t.Fatalf("Pending(%q) stuck at %d, want %d", key, g.Pending(key), want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}
