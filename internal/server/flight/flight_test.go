package flight

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoSequential(t *testing.T) {
	var g Group
	v, err, shared := g.Do("k", func() (any, error) { return 7, nil })
	if v != 7 || err != nil || shared {
		t.Fatalf("Do = (%v, %v, %v), want (7, nil, false)", v, err, shared)
	}
	// The key is forgotten after completion: the next call re-executes.
	ran := false
	v, _, shared = g.Do("k", func() (any, error) { ran = true; return 8, nil })
	if !ran || v != 8 || shared {
		t.Fatalf("second Do = (%v, ran=%v, shared=%v), want fresh execution", v, ran, shared)
	}
}

func TestDoError(t *testing.T) {
	var g Group
	boom := errors.New("boom")
	_, err, _ := g.Do("k", func() (any, error) { return nil, boom })
	if err != boom {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestDoCoalesces blocks the leader until all followers are attached,
// then checks that fn ran exactly once and every caller saw its value.
func TestDoCoalesces(t *testing.T) {
	var g Group
	const followers = 9

	var execs atomic.Int64
	release := make(chan struct{})
	results := make(chan int, followers+1)
	sharedCount := atomic.Int64{}

	launch := func() {
		v, err, shared := g.Do("k", func() (any, error) {
			execs.Add(1)
			<-release
			return 42, nil
		})
		if err != nil {
			t.Errorf("Do returned err %v", err)
		}
		if shared {
			sharedCount.Add(1)
		}
		results <- v.(int)
	}

	go launch()
	// Wait for the leader to register, then attach followers.
	waitPending(t, &g, "k", 1)
	for i := 0; i < followers; i++ {
		go launch()
	}
	waitPending(t, &g, "k", followers+1)
	close(release)

	for i := 0; i < followers+1; i++ {
		if v := <-results; v != 42 {
			t.Fatalf("caller %d got %d, want 42", i, v)
		}
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want 1", n)
	}
	if n := sharedCount.Load(); n != followers {
		t.Fatalf("%d callers reported shared, want %d", n, followers)
	}
	if p := g.Pending("k"); p != 0 {
		t.Fatalf("Pending after completion = %d, want 0", p)
	}
}

// TestDistinctKeysDoNotCoalesce runs two keys concurrently and checks
// both functions execute.
func TestDistinctKeysDoNotCoalesce(t *testing.T) {
	var g Group
	var execs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, _ = g.Do(fmt.Sprintf("k%d", i), func() (any, error) {
				execs.Add(1)
				return nil, nil
			})
		}(i)
	}
	wg.Wait()
	if n := execs.Load(); n != 2 {
		t.Fatalf("fn executed %d times, want 2", n)
	}
}

// TestPanicReleasesWaiters ensures a panicking leader does not wedge
// the key forever.
func TestPanicReleasesWaiters(t *testing.T) {
	var g Group
	func() {
		defer func() { _ = recover() }()
		_, _, _ = g.Do("k", func() (any, error) { panic("boom") })
	}()
	done := make(chan struct{})
	go func() {
		_, _, _ = g.Do("k", func() (any, error) { return nil, nil })
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Do after a panicked leader never returned; key is wedged")
	}
}

func waitPending(t *testing.T, g *Group, key string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for g.Pending(key) < want {
		if time.Now().After(deadline) {
			t.Fatalf("Pending(%q) stuck at %d, want %d", key, g.Pending(key), want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}
