package server

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"mio/internal/core/labelstore"
	"mio/internal/data"
	"mio/internal/durable"
)

// DurableState is the server's crash-safe on-disk state: a
// generation-numbered snapshot directory (internal/durable) where each
// committed generation holds the enveloped dataset plus that dataset's
// label files. The serving state machine is deliberately simple:
//
//	gen-N/dataset.bin   the dataset, checksummed (durable envelope)
//	gen-N/labels/       the §III-D label store for that dataset
//
// Datasets and labels are committed together per generation because
// labels are only meaningful for the dataset they were computed
// against: recovering gen N brings back exactly the label sets its
// queries produced, and a swap to gen N+1 starts with a fresh label
// directory instead of poisoning queries with stale labels.
//
// Startup calls Recover to reopen the newest generation that passes
// validation; SwapDataset calls CommitDataset so a replacement dataset
// is durable before it is served. Either way, a crash at any instant
// leaves the directory recoverable to a complete generation — the
// commit protocol's guarantee, exercised end-to-end by the crash
// matrix in state_test.go.
type DurableState struct {
	dir *durable.Dir
	dio durable.IO
}

const (
	stateDatasetFile = "dataset.bin"
	stateLabelsDir   = "labels"
)

// OpenState opens (creating if needed) a durable state directory. The
// IO context carries the fault registry, so chaos tests can inject
// write/sync/rename failures into every commit the server makes.
func OpenState(root string, dio durable.IO) (*DurableState, error) {
	d, err := durable.OpenDir(root, dio)
	if err != nil {
		return nil, err
	}
	return &DurableState{dir: d, dio: dio}, nil
}

// Root returns the state directory.
func (st *DurableState) Root() string { return st.dir.Root() }

// Recovered is the outcome of a successful Recover: the last-good
// generation's dataset and its disk-backed label store.
type Recovered struct {
	Dataset    *data.Dataset
	Labels     *labelstore.Store
	Generation uint64
}

// Recover walks the candidate generations (manifest's choice first,
// then newest-first) and returns the first whose dataset loads with
// its integrity verified. Generations that fail — missing dataset,
// bad envelope, CRC mismatch, undecodable payload — are quarantined
// (renamed *.corrupt) and skipped, so one corrupt snapshot can never
// wedge startup while an older good one exists. Returns (nil, nil)
// when no generation has been committed yet.
func (st *DurableState) Recover() (*Recovered, error) {
	cands, err := st.dir.Candidates()
	if err != nil {
		return nil, err
	}
	for _, gen := range cands {
		ds, verified, err := data.LoadFileVerified(filepath.Join(st.dir.GenPath(gen), stateDatasetFile))
		if err != nil || !verified {
			// The generation claims durability, so an unverified or
			// unreadable dataset means the snapshot is damaged: move it
			// aside and try the next candidate.
			if qerr := st.dir.QuarantineGen(gen); qerr != nil {
				return nil, qerr
			}
			continue
		}
		store, err := labelstore.NewDiskStoreIO(filepath.Join(st.dir.GenPath(gen), stateLabelsDir), st.dio)
		if err != nil {
			return nil, err
		}
		// If recovery fell past the manifest (it was absent, corrupt, or
		// named a generation that failed validation), repoint it so the
		// next startup goes straight to this generation.
		if mGen, ok, err := st.dir.Manifest(); err != nil {
			return nil, err
		} else if !ok || mGen != gen {
			if err := st.dir.SetManifest(gen); err != nil {
				return nil, err
			}
		}
		return &Recovered{Dataset: ds, Labels: store, Generation: gen}, nil
	}
	return nil, nil
}

// CommitDataset durably commits ds as a new generation and returns the
// generation's (initially empty) disk-backed label store. The dataset
// is fully on disk — enveloped, fsync'd, generation renamed into
// place, MANIFEST updated — before this returns, so a caller that
// serves ds afterwards knows a crash will recover to exactly this
// state. On error nothing is published: the previous generation stays
// last-good and the staging leftovers are invisible to recovery.
func (st *DurableState) CommitDataset(ds *data.Dataset) (*labelstore.Store, uint64, error) {
	var buf bytes.Buffer
	if err := data.WriteBinary(&buf, ds); err != nil {
		return nil, 0, err
	}
	stg, err := st.dir.Begin()
	if err != nil {
		return nil, 0, err
	}
	if err := stg.CommitFile(stateDatasetFile, buf.Bytes()); err != nil {
		stg.Abandon()
		return nil, 0, err
	}
	// The labels directory is created inside the stage so it is part of
	// the atomic publish; it starts empty and fills as queries label.
	if err := os.MkdirAll(filepath.Join(stg.Dir(), stateLabelsDir), 0o755); err != nil {
		stg.Abandon()
		return nil, 0, fmt.Errorf("server: staging labels dir: %w", err)
	}
	final, err := stg.Commit()
	if err != nil {
		return nil, 0, err
	}
	store, err := labelstore.NewDiskStoreIO(filepath.Join(final, stateLabelsDir), st.dio)
	if err != nil {
		return nil, 0, err
	}
	return store, stg.Gen(), nil
}

// LastGood returns the generation the MANIFEST currently names.
func (st *DurableState) LastGood() (uint64, bool, error) {
	return st.dir.Manifest()
}

// rollbackManifest best-effort repoints the MANIFEST at a previous
// generation. Used when a durable commit succeeded but the serving
// layer could not adopt the new dataset (engine build failure): the
// manifest must keep naming what is actually served.
func (st *DurableState) rollbackManifest(gen uint64, ok bool) {
	if ok {
		_ = st.dir.SetManifest(gen)
	}
}
