// Package breaker implements a small circuit breaker for the dataset
// swap path: repeated load/build failures trip it open so subsequent
// swap requests fail fast (HTTP 503 + Retry-After upstream) instead of
// re-reading a broken file on every attempt; after a cooldown a single
// probe is admitted, and its outcome decides between closing the
// breaker and re-opening it for another cooldown.
//
// The breaker is deliberately minimal: consecutive-failure threshold,
// fixed cooldown, one probe in half-open. The clock is injectable so
// tests drive state transitions without sleeping. A nil *Breaker is
// valid and permanently closed (always allows, ignores outcomes).
package breaker

import (
	"fmt"
	"sync"
	"time"
)

// State is the breaker's position.
type State int

const (
	// Closed: requests flow; consecutive failures are counted.
	Closed State = iota
	// Open: requests are refused until the cooldown elapses.
	Open
	// HalfOpen: the cooldown elapsed; exactly one probe is in flight
	// and everything else is refused until its outcome is reported.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Breaker is a consecutive-failure circuit breaker. Use New; the zero
// value has a zero threshold and trips on the first failure.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    State
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
}

// New returns a closed breaker that opens after threshold consecutive
// failures and admits a probe after each cooldown. threshold < 1 is
// treated as 1.
func New(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// WithClock replaces the breaker's clock and returns it; for tests.
func (b *Breaker) WithClock(now func() time.Time) *Breaker {
	b.now = now
	return b
}

// Allow reports whether a request may proceed. When it may not, retry
// is how long until the breaker will next admit a probe (0 when a
// half-open probe is already in flight — retry as soon as it
// resolves). Each allowed request must report Success or Failure;
// while open, the first Allow after the cooldown becomes the probe.
func (b *Breaker) Allow() (retry time.Duration, ok bool) {
	if b == nil {
		return 0, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return 0, true
	case HalfOpen:
		return 0, false
	default: // Open
		remaining := b.cooldown - b.now().Sub(b.openedAt)
		if remaining > 0 {
			return remaining, false
		}
		b.state = HalfOpen
		return 0, true
	}
}

// Success reports a successful request: the breaker closes and the
// failure streak resets.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.failures = 0
}

// Failure reports a failed request. A half-open probe failure re-opens
// immediately; closed-state failures open the breaker once the streak
// reaches the threshold.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.state == HalfOpen || b.failures >= b.threshold {
		b.state = Open
		b.openedAt = b.now()
	}
}

// State returns the breaker's current position, surfacing Open →
// HalfOpen eligibility without consuming the probe.
func (b *Breaker) State() State {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.now().Sub(b.openedAt) >= b.cooldown {
		return HalfOpen
	}
	return b.state
}

// Failures returns the current consecutive-failure count.
func (b *Breaker) Failures() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.failures
}
