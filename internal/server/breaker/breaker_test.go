package breaker

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return New(threshold, cooldown).WithClock(clk.now), clk
}

func TestOpensAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		if _, ok := b.Allow(); !ok {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Failure()
	}
	if b.State() != Closed {
		t.Fatalf("state after 2/3 failures = %v, want closed", b.State())
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state after 3/3 failures = %v, want open", b.State())
	}
	retry, ok := b.Allow()
	if ok {
		t.Fatal("open breaker admitted a request")
	}
	if retry <= 0 || retry > time.Minute {
		t.Fatalf("retry hint %v outside (0, cooldown]", retry)
	}
}

func TestSuccessResetsStreak(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatalf("state = %v after interleaved success, want closed", b.State())
	}
	if b.Failures() != 2 {
		t.Fatalf("failure streak = %d, want 2", b.Failures())
	}
}

func TestHalfOpenSingleProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute)
	b.Failure()
	if _, ok := b.Allow(); ok {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	clk.advance(time.Minute)
	if b.State() != HalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
	if _, ok := b.Allow(); !ok {
		t.Fatal("cooldown elapsed but probe refused")
	}
	// Only one probe until it resolves.
	if retry, ok := b.Allow(); ok || retry != 0 {
		t.Fatalf("second probe admitted (ok=%v retry=%v)", ok, retry)
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
	if _, ok := b.Allow(); !ok {
		t.Fatal("closed breaker refused request after recovery")
	}
}

func TestProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute)
	b.Failure()
	clk.advance(time.Minute)
	if _, ok := b.Allow(); !ok {
		t.Fatal("probe refused")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state after probe failure = %v, want open", b.State())
	}
	// The cooldown restarts from the probe failure.
	clk.advance(30 * time.Second)
	if _, ok := b.Allow(); ok {
		t.Fatal("reopened breaker admitted a request halfway through the new cooldown")
	}
	clk.advance(30 * time.Second)
	if _, ok := b.Allow(); !ok {
		t.Fatal("second probe refused after full cooldown")
	}
}

func TestNilBreakerAlwaysAllows(t *testing.T) {
	var b *Breaker
	if _, ok := b.Allow(); !ok {
		t.Fatal("nil breaker refused a request")
	}
	b.Failure()
	b.Success()
	if b.State() != Closed || b.Failures() != 0 {
		t.Fatal("nil breaker reported non-zero state")
	}
}
