package server

import (
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mio/internal/core"
	"mio/internal/data"
)

// TestAutoTuneAnswerParity: an auto-tuned server must serve the
// identical answer as a hand-configured one, never spending more
// distance computations, and must expose its profile + knob choice
// under /metrics.
func TestAutoTuneAnswerParity(t *testing.T) {
	ds := data.Adversarial(0.1)["Sparse"]
	hand, err := New(ds, core.Options{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := New(ds, core.Options{}, Config{AutoTune: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}

	var hr, ar queryResponse
	get(t, hand.Handler(), "/v1/query?r=8&k=3", &hr)
	get(t, auto.Handler(), "/v1/query?r=8&k=3", &ar)
	if !reflect.DeepEqual(ar.Result.TopK, hr.Result.TopK) {
		t.Fatalf("auto-tuned topk %v, want %v", ar.Result.TopK, hr.Result.TopK)
	}
	if ar.Result.Stats.DistanceComps > hr.Result.Stats.DistanceComps {
		t.Fatalf("auto-tuned dist_comps %d > hand %d",
			ar.Result.Stats.DistanceComps, hr.Result.Stats.DistanceComps)
	}

	var m MetricsSnapshot
	get(t, auto.Handler(), "/metrics", &m)
	if m.Tuning == nil {
		t.Fatal("autotuned server reports no tuning block in /metrics")
	}
	// Sparse is planar and sparse: the tuner must have gone 2-D with a
	// raised freeze threshold (pinned in internal/tune/parity_test.go).
	if m.Tuning.Tuning.Dims != 2 || m.Tuning.Tuning.FreezeMinPoints != 128 {
		t.Fatalf("unexpected tuning for Sparse: %+v", m.Tuning.Tuning)
	}
	if m.Tuning.Profile == nil || m.Tuning.Profile.Points != ds.TotalPoints() {
		t.Fatalf("tuning profile missing or stale: %+v", m.Tuning.Profile)
	}
	if len(m.Tuning.Tuning.Rules) == 0 {
		t.Fatal("tuning block carries no rule trail")
	}

	var hm MetricsSnapshot
	get(t, hand.Handler(), "/metrics", &hm)
	if hm.Tuning != nil {
		t.Fatal("hand-configured server unexpectedly reports tuning")
	}
}

// TestAutoTuneRetunesOnSwap: POST /v1/dataset must re-profile the
// incoming dataset and install fresh knobs before serving it.
func TestAutoTuneRetunesOnSwap(t *testing.T) {
	adv := data.Adversarial(0.1)
	s, err := New(adv["Sparse"], core.Options{}, Config{AutoTune: true, AllowSwap: true})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	var m MetricsSnapshot
	get(t, h, "/metrics", &m)
	if m.Tuning == nil || m.Tuning.Tuning.Dims != 2 {
		t.Fatalf("pre-swap tuning not the Sparse assignment: %+v", m.Tuning)
	}

	path := filepath.Join(t.TempDir(), "onecell.bin")
	if err := data.SaveFile(path, adv["OneCell"]); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/dataset",
		strings.NewReader(fmt.Sprintf(`{"path":%q}`, path))))
	if rec.Code != 200 {
		t.Fatalf("swap failed: %d %s", rec.Code, rec.Body.String())
	}

	get(t, h, "/metrics", &m)
	// OneCell is volumetric with everything in one query cell: 3-D and
	// the eager freeze threshold.
	if m.Tuning == nil || m.Tuning.Tuning.Dims != 3 || m.Tuning.Tuning.FreezeMinPoints != 8 {
		t.Fatalf("swap did not re-tune: %+v", m.Tuning)
	}
	if m.Tuning.Profile.Points != adv["OneCell"].TotalPoints() {
		t.Fatalf("post-swap profile is stale: %+v", m.Tuning.Profile)
	}

	// Answers over the swapped dataset still match a hand engine.
	hand, err := core.NewEngine(adv["OneCell"], core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := hand.RunTopK(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var qr queryResponse
	get(t, h, "/v1/query?r=4&k=2", &qr)
	if !reflect.DeepEqual(qr.Result.TopK, want.TopK) {
		t.Fatalf("post-swap topk %v, want %v", qr.Result.TopK, want.TopK)
	}
}
