// Package server implements the long-lived MIO serving layer: an
// HTTP API over one resident dataset and a pool of query engines,
// with the machinery a production front-end needs wrapped around the
// paper's pipeline:
//
//   - request coalescing (internal/server/flight): concurrent
//     identical queries collapse into one engine run;
//   - a bounded LRU result cache (internal/server/cache) keyed by the
//     full query identity including the dataset epoch, so a dataset
//     swap invalidates every stale entry;
//   - admission control: engine runs are bounded by the engine pool
//     (a channel semaphore); requests wait at most AdmissionWait for
//     a slot and are rejected with 429 under overload, 503 while
//     draining;
//   - per-request deadlines wired through the engines' Context query
//     variants;
//   - /metrics counters and per-phase latency histograms built on
//     core.PhaseStats.
//
// The request path is: parse → cache lookup → coalesce → admission →
// engine run → cache fill. Every engine in the pool shares one
// label store, so queries sharing ⌈r⌉ recycle label work (§III-D)
// regardless of which engine serves them; sharing is safe because a
// published label set is immutable and the store itself is
// mutex-protected.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mio/internal/batch"
	"mio/internal/core"
	"mio/internal/core/labelstore"
	"mio/internal/data"
	"mio/internal/fault"
	"mio/internal/server/breaker"
	"mio/internal/server/cache"
	"mio/internal/server/flight"
	"mio/internal/server/metrics"
	"mio/internal/shard"
	"mio/internal/shard/remote"
	"mio/internal/tune"
)

// Config tunes the serving machinery. The zero value selects sensible
// defaults (see the field comments); explicit negatives disable the
// optional behaviours.
type Config struct {
	// MaxInFlight bounds concurrent engine runs (and sizes the engine
	// pool). Default 1: the paper's engine is single-query, so true
	// run concurrency requires as many engines as slots.
	MaxInFlight int
	// AdmissionWait is how long a request may queue for an engine slot
	// before being rejected with 429. 0 selects 100ms; negative
	// rejects immediately when no slot is free.
	AdmissionWait time.Duration
	// QueryTimeout is the per-request engine deadline. 0 selects 30s;
	// negative disables the deadline.
	QueryTimeout time.Duration
	// CacheSize is the result cache capacity in entries. 0 selects
	// 256. Use DisableCache to turn caching off.
	CacheSize int
	// DisableCache bypasses the result cache entirely.
	DisableCache bool
	// DisableCoalesce bypasses single-flight request coalescing.
	DisableCoalesce bool
	// AllowSwap enables POST /v1/dataset (loading a new dataset from a
	// server-local path). Off by default: the endpoint reads the
	// server's filesystem, so it must be an explicit operator choice.
	AllowSwap bool
	// MaxSweep bounds the number of thresholds a single /v1/sweep may
	// request. 0 selects 64.
	MaxSweep int
	// SwapBreakThreshold is how many consecutive dataset-swap failures
	// (load or engine build) trip the swap circuit breaker, after which
	// swap requests fail fast with 503 + Retry-After instead of
	// re-reading a broken file. 0 selects 3.
	SwapBreakThreshold int
	// SwapBreakCooldown is how long a tripped swap breaker refuses
	// requests before admitting a probe. 0 selects 5s.
	SwapBreakCooldown time.Duration
	// State, when non-nil, makes the served dataset durable: SwapDataset
	// commits the replacement as a new generation (dataset enveloped and
	// fsync'd, MANIFEST updated) before any engine serves it, and the
	// per-generation label store becomes the pool's shared store. A
	// failed durable commit fails the swap — and therefore counts
	// against the swap circuit breaker — leaving the previous generation
	// last-good; there is no path to serving a dataset that would not
	// survive a crash. Callers that recover or commit at startup (see
	// cmd/miosrv) pass the same DurableState here.
	State *DurableState
	// Faults, when non-nil, arms fault injection: the registry fires at
	// the server's request/acquire/run/swap points and is handed to
	// every engine the server builds (phase points), unless the engine
	// options already carry their own registry. Production servers
	// leave it nil.
	Faults *fault.Registry
	// BatchExecution routes /v1/query through the epoch-driven batch
	// engine (internal/batch): concurrent queries gather into epochs,
	// group by ⌈r⌉ and share one index build and cell walk per group.
	// It generalises request coalescing — flight collapses identical
	// requests, an epoch collapses similar ones — and per-query results
	// stay bitwise identical to the query-major path. Other endpoints
	// keep the solo path.
	BatchExecution bool
	// BatchWindow is the epoch gather window; 0 selects
	// batch.DefaultWindow. Ignored unless BatchExecution is set.
	BatchWindow time.Duration
	// BatchMaxSize seals an epoch early once it holds this many
	// queries; 0 selects batch.DefaultMaxBatch. Ignored unless
	// BatchExecution is set.
	BatchMaxSize int
	// Shards routes /v1/query through the sharded scatter–gather
	// coordinator (internal/shard): the dataset is partitioned across
	// this many in-process shard engines, each query scatters per-shard
	// bound requests and merges the certified results, and shard
	// failures degrade the answer to an exact [LB, UB] interval instead
	// of an error. Queries whose r exceeds ShardMaxR fall back to the
	// solo engine pool. 0 disables. Mutually exclusive with
	// BatchExecution — the two execution strategies own /v1/query
	// routing in incompatible ways.
	Shards int
	// ShardMaxR is the partition's replica horizon: the largest radius
	// the shards can answer exactly. 0 selects 10.
	ShardMaxR float64
	// ShardTimeout bounds each per-shard attempt. 0 selects 2s.
	ShardTimeout time.Duration
	// ShardRetries is the per-shard retry budget after the first failed
	// attempt. 0 selects 1; negative disables retries.
	ShardRetries int
	// ShardHedgeAfter launches one speculative extra attempt against a
	// straggling shard after this duration. 0 selects ShardTimeout/4;
	// negative disables hedging.
	ShardHedgeAfter time.Duration
	// ShardBreakThreshold / ShardBreakCooldown configure each shard's
	// circuit breaker: consecutive failures to trip, and how long an
	// open breaker refuses attempts before its half-open probe.
	// 0 selects 3 failures / 5s.
	ShardBreakThreshold int
	ShardBreakCooldown  time.Duration
	// ShardAddrs routes /v1/query through REMOTE shard worker processes
	// at these base URLs (one per partition slot, in shard-id order, ≥ 2)
	// instead of in-process shard engines — the multi-process deployment
	// of the same scatter–gather algebra (DESIGN.md §17). The server
	// still loads the full dataset: it computes the dataset generation
	// every worker response must be stamped with, and it serves queries
	// beyond ShardMaxR from its own engine pool. Mutually exclusive with
	// Shards and BatchExecution.
	ShardAddrs []string
	// ShardProbeInterval is the remote worker health-probe cadence.
	// 0 selects 1s. Ignored unless ShardAddrs is set.
	ShardProbeInterval time.Duration
	// AutoTune profiles the dataset at construction (and again on every
	// swap) and lets internal/tune pick the engine knobs — worker count,
	// grid dimensionality, parallel partitioning, freeze threshold —
	// plus, when their Config fields are unset, MaxInFlight and the
	// batch gather window. Tuning is answer-invariant: queries return
	// the identical results under any knob assignment (DESIGN.md §16).
	// Pool size and batch knobs are fixed at construction; a swap
	// re-tunes only the per-engine knobs.
	AutoTune bool
	// Logf, when non-nil, receives the server's operational log lines
	// (today: the autotune profile and knob selection). Nil discards.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight < 1 {
		c.MaxInFlight = 1
	}
	if c.AdmissionWait == 0 {
		c.AdmissionWait = 100 * time.Millisecond
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.CacheSize < 1 {
		c.CacheSize = 256
	}
	if c.MaxSweep < 1 {
		c.MaxSweep = 64
	}
	if c.SwapBreakThreshold < 1 {
		c.SwapBreakThreshold = 3
	}
	if c.SwapBreakCooldown <= 0 {
		c.SwapBreakCooldown = 5 * time.Second
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// errOverload marks an admission-control rejection (HTTP 429).
var errOverload = errors.New("server: all engine slots busy")

// Server is a long-lived MIO query server over one dataset.
type Server struct {
	cfg  Config
	opts core.Options // engine template; Labels shared by the pool

	// slots is both the engine pool and the admission semaphore: a
	// request must receive an engine from the channel to run, and
	// returns it afterwards.
	slots chan *core.Engine

	ds    atomic.Pointer[data.Dataset]
	epoch atomic.Uint64

	// tmpl is the current (dataset, options) pair new engines are built
	// from. It duplicates ds/opts behind one atomic pointer so panic
	// quarantine can rebuild an engine without racing SwapDataset's
	// mutation of s.opts.
	tmpl atomic.Pointer[engineTemplate]

	// swapBreaker trips after repeated dataset-swap failures so broken
	// files stop being re-read on every request.
	swapBreaker *breaker.Breaker

	flight flight.Group
	cache  *cache.Cache

	// batch, when non-nil, is the epoch-driven cross-query executor
	// /v1/query routes through (Config.BatchExecution). Its group runs
	// go through withEngine, so admission, panic quarantine and swap
	// drain apply to batched work exactly as to solo queries.
	batch *batch.Engine

	// tuneState, when AutoTune is on, is the profile and knob
	// assignment currently serving; swapped atomically with the dataset
	// and reported under /metrics "tuning".
	tuneState atomic.Pointer[tuningState]

	// coord, when non-nil, is the sharded scatter–gather coordinator
	// /v1/query routes through (Config.Shards). It owns its own
	// per-shard engine pools; SwapDataset replaces it wholesale with
	// one built over the new dataset.
	coord atomic.Pointer[shard.Coordinator]

	// drainMu realises graceful drain: every request holds the read
	// lock for its duration; Drain takes the write lock, which waits
	// for in-flight requests, then flips draining so later requests
	// are refused with 503.
	drainMu  sync.RWMutex
	draining bool

	swapMu sync.Mutex // serialises dataset swaps

	start time.Time
	m     serverMetrics

	// testRunBarrier, when set by tests, runs while an engine slot is
	// held — it lets tests hold queries in flight deterministically.
	testRunBarrier func()
}

// endpoints enumerated for per-endpoint metrics.
var endpointKinds = []string{"query", "interacting", "scores", "sweep", "swap"}

type serverMetrics struct {
	requests map[string]*metrics.Counter
	httpLat  map[string]*metrics.Histogram
	phaseLat map[string]*metrics.Histogram

	engineRuns    metrics.Counter
	coalesced     metrics.Counter
	rejected      metrics.Counter
	badRequests   metrics.Counter
	timeouts      metrics.Counter
	drainRejected metrics.Counter
	panics        metrics.Counter // handler panics recovered by middleware
	quarantined   metrics.Counter // engines discarded after a panic
	degraded      metrics.Counter // deadline-degraded answers served
	swapRefused   metrics.Counter // swaps refused by the open breaker
	inFlight      metrics.Gauge
}

var phaseNames = []string{"label_input", "grid_mapping", "lower_bounding", "upper_bounding", "verification", "total"}

// init builds the per-endpoint and per-phase maps in place (the
// struct embeds atomics, so it must never be copied).
func (m *serverMetrics) init() {
	m.requests = make(map[string]*metrics.Counter)
	m.httpLat = make(map[string]*metrics.Histogram)
	m.phaseLat = make(map[string]*metrics.Histogram)
	for _, k := range endpointKinds {
		m.requests[k] = &metrics.Counter{}
		m.httpLat[k] = metrics.NewHistogram(nil)
	}
	for _, p := range phaseNames {
		m.phaseLat[p] = metrics.NewHistogram(nil)
	}
}

// engineTemplate is everything needed to build a replacement engine:
// the dataset and the exact options (including the shared label store)
// the pool's engines were built with.
type engineTemplate struct {
	ds   *data.Dataset
	opts core.Options
}

// tuningState pairs a dataset profile with the knob assignment selected
// from it. Immutable once published.
type tuningState struct {
	profile *tune.Profile
	tuning  tune.Tuning
}

// tuneFor profiles ds and selects its knob assignment for this host.
func tuneFor(ds *data.Dataset, cfg Config) *tuningState {
	prof := tune.Profiler(ds)
	tn := tune.Select(prof, tune.Env{MaxProcs: runtime.GOMAXPROCS(0)})
	cfg.logf("autotune: dataset %q: %s", ds.Name, prof.String())
	cfg.logf("autotune: selected %s", tn.String())
	return &tuningState{profile: prof, tuning: tn}
}

// applyTuned overwrites the tuner-owned engine knobs in opts. The
// caller keeps everything the tuner has no opinion on — Labels, Faults,
// and an explicit freeze disable.
func applyTuned(opts core.Options, tn tune.Tuning) core.Options {
	opts.Workers = tn.Opts.Workers
	opts.Dims = tn.Opts.Dims
	opts.LB = tn.Opts.LB
	opts.UB = tn.Opts.UB
	if !opts.DisableFreeze {
		opts.FreezeMinPoints = tn.Opts.FreezeMinPoints
	}
	return opts
}

// New builds a server over ds with a pool of cfg.MaxInFlight engines
// configured from engOpts. When engOpts.Labels is non-nil the same
// store is shared across the pool.
func New(ds *data.Dataset, engOpts core.Options, cfg Config) (*Server, error) {
	poolUnset := cfg.MaxInFlight < 1
	cfg = cfg.withDefaults()
	if cfg.Shards > 0 && cfg.BatchExecution {
		return nil, fmt.Errorf("server: Shards and BatchExecution are mutually exclusive")
	}
	if len(cfg.ShardAddrs) > 0 {
		if cfg.Shards > 0 {
			return nil, fmt.Errorf("server: ShardAddrs and Shards are mutually exclusive")
		}
		if cfg.BatchExecution {
			return nil, fmt.Errorf("server: ShardAddrs and BatchExecution are mutually exclusive")
		}
		if len(cfg.ShardAddrs) < 2 {
			return nil, fmt.Errorf("server: need at least 2 shard workers, got %d", len(cfg.ShardAddrs))
		}
	}
	var ts *tuningState
	if cfg.AutoTune {
		ts = tuneFor(ds, cfg)
		engOpts = applyTuned(engOpts, ts.tuning)
		if poolUnset {
			cfg.MaxInFlight = ts.tuning.PoolSize
		}
		if cfg.BatchWindow == 0 {
			cfg.BatchWindow = ts.tuning.BatchWindow
		}
		if cfg.BatchMaxSize == 0 {
			cfg.BatchMaxSize = ts.tuning.BatchMaxSize
		}
	}
	if engOpts.Faults == nil {
		engOpts.Faults = cfg.Faults
	}
	engines := make([]*core.Engine, 0, cfg.MaxInFlight)
	for i := 0; i < cfg.MaxInFlight; i++ {
		e, err := core.NewEngine(ds, engOpts)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		engines = append(engines, e)
	}
	s := newFromPool(ds, engOpts, engines, cfg)
	if ts != nil {
		s.tuneState.Store(ts)
	}
	if cfg.Shards > 0 {
		co, err := shard.New(ds, engOpts, s.shardConfig())
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.coord.Store(co)
	} else if len(cfg.ShardAddrs) > 0 {
		co, err := s.remoteCoordinator(ds)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.coord.Store(co)
	}
	return s, nil
}

// remoteCoordinator builds a scatter–gather coordinator over the
// configured remote shard workers. The generation stamp is derived
// from the server's own copy of the dataset plus the partition shape
// — workers that loaded anything else are rejected at validation,
// not merged.
func (s *Server) remoteCoordinator(ds *data.Dataset) (*shard.Coordinator, error) {
	cfg := s.shardConfig()
	maxR := cfg.MaxR
	if maxR <= 0 {
		maxR = shard.DefaultMaxR
	}
	shards := len(s.cfg.ShardAddrs)
	gen := remote.Generation(remote.Fingerprint(ds), shards, maxR)
	backends := make([]shard.Backend, shards)
	for i, addr := range s.cfg.ShardAddrs {
		backends[i] = remote.NewClient(remote.ClientConfig{
			Addr:          addr,
			Stamp:         remote.Stamp{Generation: gen, Shard: i, Shards: shards},
			Objects:       ds.N(),
			ProbeInterval: s.cfg.ShardProbeInterval,
			Faults:        s.cfg.Faults,
		})
	}
	co, err := shard.NewWithBackends(backends, ds.N(), cfg)
	if err != nil {
		for _, b := range backends {
			b.Close()
		}
		return nil, err
	}
	return co, nil
}

// shardConfig maps the server's shard tuning onto the coordinator's.
// Each admitted query needs at most two engine slots per shard
// (original + hedge), so the pool provisions 2×MaxInFlight — slow
// attempts must never starve a concurrent query's healthy ones.
func (s *Server) shardConfig() shard.Config {
	return shard.Config{
		Shards:         s.cfg.Shards,
		MaxR:           s.cfg.ShardMaxR,
		Timeout:        s.cfg.ShardTimeout,
		Retries:        s.cfg.ShardRetries,
		HedgeAfter:     s.cfg.ShardHedgeAfter,
		Pool:           2 * s.cfg.MaxInFlight,
		BreakThreshold: s.cfg.ShardBreakThreshold,
		BreakCooldown:  s.cfg.ShardBreakCooldown,
		Faults:         s.cfg.Faults,
	}
}

// NewFromEngine wraps one existing engine — the embedding path behind
// mio.Handler. The pool has exactly one slot regardless of
// cfg.MaxInFlight, honouring the engine's single-query contract.
func NewFromEngine(e *core.Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	cfg.MaxInFlight = 1
	return newFromPool(e.Dataset(), e.Options(), []*core.Engine{e}, cfg)
}

func newFromPool(ds *data.Dataset, engOpts core.Options, engines []*core.Engine, cfg Config) *Server {
	s := &Server{
		cfg:         cfg,
		opts:        engOpts,
		slots:       make(chan *core.Engine, len(engines)),
		cache:       cache.New(cfg.CacheSize),
		swapBreaker: breaker.New(cfg.SwapBreakThreshold, cfg.SwapBreakCooldown),
		start:       time.Now(),
	}
	s.m.init()
	for _, e := range engines {
		s.slots <- e
	}
	s.ds.Store(ds)
	s.tmpl.Store(&engineTemplate{ds: ds, opts: engOpts})
	if cfg.BatchExecution {
		// batch.New only fails on a nil RunFunc, which s.runGroup is not.
		s.batch, _ = batch.New(batch.Config{
			Window:   cfg.BatchWindow,
			MaxBatch: cfg.BatchMaxSize,
			Faults:   cfg.Faults,
			Run:      s.runGroup,
		})
	}
	return s
}

// runGroup executes one shared-⌈r⌉ batch group. It takes no caller
// context on purpose: per-member deadlines live inside each
// GroupSpec.Ctx, and the group as a whole runs under the server's
// QueryTimeout applied by withEngine — the same budget a solo query
// gets. Running through withEngine also means a panicking group
// quarantines its engine and refills the slot before the batch
// engine's own recovery fails the group's members, so the blast radius
// of a poisoned query is one group of one epoch.
func (s *Server) runGroup(specs []core.GroupSpec) ([]core.GroupOutcome, core.GroupReport, error) {
	type groupValue struct {
		outs []core.GroupOutcome
		rep  core.GroupReport
	}
	v, err := s.withEngine(context.Background(), func(ctx context.Context, eng *core.Engine) (any, error) {
		outs, rep := eng.RunGroup(ctx, specs)
		return groupValue{outs, rep}, nil
	})
	if err != nil {
		return nil, core.GroupReport{}, err
	}
	gv := v.(groupValue)
	// Members sharing a plan share one *Result; observe each distinct
	// result once so the phase histograms count pipelines, not fan-out.
	seen := make(map[*core.Result]struct{}, len(gv.outs))
	for _, o := range gv.outs {
		if o.Err != nil || o.Result == nil {
			continue
		}
		if _, dup := seen[o.Result]; dup {
			continue
		}
		seen[o.Result] = struct{}{}
		s.observePhases(o.Result.Stats)
	}
	return gv.outs, gv.rep, nil
}

// Dataset returns the currently served dataset.
func (s *Server) Dataset() *data.Dataset { return s.ds.Load() }

// MaxInFlight returns the engine-pool size actually in effect (it may
// have been chosen by the auto-tuner rather than Config.MaxInFlight).
func (s *Server) MaxInFlight() int { return cap(s.slots) }

// Epoch returns the dataset generation; it increments on every swap.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// SwapDataset atomically replaces the served dataset: with durable
// state configured it first commits ds as a new generation, then
// builds a fresh engine pool (with a fresh label store — labels are
// per-dataset and must not survive a swap; per-generation on disk
// when durable, in-memory otherwise), waits for in-flight engine runs
// to finish, installs the new engines, bumps the epoch and clears the
// result cache.
func (s *Server) SwapDataset(ds *data.Dataset) error {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()

	if err := s.cfg.Faults.Fire(fault.PointSwapBuild); err != nil {
		return fmt.Errorf("server: swap rejected: %w", err)
	}
	opts := s.opts
	// Re-tune for the incoming dataset before anything is built from it.
	// Only the per-engine knobs move: the pool size and the batch
	// engine's gather window were fixed at construction.
	var ts *tuningState
	if s.cfg.AutoTune {
		ts = tuneFor(ds, s.cfg)
		opts = applyTuned(opts, ts.tuning)
	}
	// Durability first: the new dataset must be committed as a
	// generation before anything serves it, so a crash mid-swap
	// recovers to either the old or the complete new dataset — never to
	// a half-swapped state. A failed commit publishes nothing (the old
	// MANIFEST still names the old generation) and fails the swap, which
	// the caller reports to the swap breaker like any other failure.
	var prevGen uint64
	var prevOK bool
	if s.cfg.State != nil {
		var err error
		if prevGen, prevOK, err = s.cfg.State.LastGood(); err != nil {
			return fmt.Errorf("server: swap rejected: %w", err)
		}
		store, _, err := s.cfg.State.CommitDataset(ds)
		if err != nil {
			return fmt.Errorf("server: swap rejected: durable commit: %w", err)
		}
		if opts.Labels != nil {
			opts.Labels = store
		}
	} else if opts.Labels != nil {
		// Fresh in-memory store: labels are per-dataset and must not
		// survive a swap.
		opts.Labels = labelstore.NewStore()
	}
	engines := make([]*core.Engine, 0, cap(s.slots))
	for i := 0; i < cap(s.slots); i++ {
		e, err := core.NewEngine(ds, opts)
		if err != nil {
			// The generation is committed but cannot be served; keep the
			// MANIFEST honest about what is actually running.
			if s.cfg.State != nil {
				s.cfg.State.rollbackManifest(prevGen, prevOK)
			}
			return fmt.Errorf("server: swap rejected: %w", err)
		}
		engines = append(engines, e)
	}
	// The coordinator is rebuilt over the new dataset before anything is
	// installed, so a failed shard build rejects the whole swap. Metrics
	// carry over: counters describe the serving process, not one
	// partition.
	var coord *shard.Coordinator
	if s.cfg.Shards > 0 || len(s.cfg.ShardAddrs) > 0 {
		var err error
		if s.cfg.Shards > 0 {
			coord, err = shard.New(ds, opts, s.shardConfig())
		} else {
			// Remote workers keep serving the OLD generation until they
			// are redeployed with the new dataset; the fresh coordinator's
			// stamp rejects their answers, so queries degrade (never mix
			// generations) until the fleet catches up.
			coord, err = s.remoteCoordinator(ds)
		}
		if err != nil {
			if s.cfg.State != nil {
				s.cfg.State.rollbackManifest(prevGen, prevOK)
			}
			return fmt.Errorf("server: swap rejected: %w", err)
		}
		if old := s.coord.Load(); old != nil {
			coord.AdoptMetrics(old.Metrics())
		}
	}
	// Drain the pool: receiving every slot waits for in-flight runs.
	// A run that panicked is not lost: quarantine pushes a replacement
	// engine into its slot before the panic continues, so all
	// cap(s.slots) receives complete.
	for i := 0; i < cap(s.slots); i++ {
		<-s.slots //lint:ignore lockcheck swapMu held across the drain on purpose: it serializes swaps, and this receive IS the wait for in-flight runs; query paths never take swapMu
	}
	for _, e := range engines {
		s.slots <- e //lint:ignore lockcheck refilling a fully drained pool cannot block (cap receives completed above), and swapMu only serializes other swappers
	}
	s.opts = opts
	s.ds.Store(ds)
	s.tmpl.Store(&engineTemplate{ds: ds, opts: opts})
	if ts != nil {
		s.tuneState.Store(ts)
	}
	if coord != nil {
		old := s.coord.Load()
		s.coord.Store(coord)
		if old != nil {
			// Stops the old coordinator's background probers; in-flight
			// queries that already loaded it still complete.
			old.Close()
		}
	}
	s.epoch.Add(1)
	s.cache.Clear()
	return nil
}

// Drain blocks until every in-flight request has completed, then
// makes the server refuse new work with 503. /healthz and /metrics
// keep responding so orchestrators can watch the drain.
func (s *Server) Drain() {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	if s.batch != nil {
		// No request is in flight past this point (the write lock waited
		// them out) so no epoch holds pending members; Close just stops
		// the gather machinery.
		s.batch.Close()
	}
	if co := s.coord.Load(); co != nil {
		// Stops remote shard health probers; Close is idempotent and
		// /healthz keeps serving the last-known shard states.
		co.Close()
	}
}

// acquire obtains an engine slot, queueing up to AdmissionWait.
func (s *Server) acquire(ctx context.Context) (*core.Engine, error) {
	select {
	case eng := <-s.slots:
		return eng, nil
	default:
	}
	if s.cfg.AdmissionWait < 0 {
		return nil, errOverload
	}
	timer := time.NewTimer(s.cfg.AdmissionWait)
	defer timer.Stop()
	select {
	case eng := <-s.slots:
		return eng, nil
	case <-timer.C:
		return nil, errOverload
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// withEngine runs fn holding an engine slot, with the per-request
// deadline applied on top of the caller's context.
//
// If fn panics, the engine that ran it is quarantined: the slot is
// refilled with a fresh engine built from the current template (same
// dataset, same shared label store) and the panic continues to the
// recovery middleware. Discarding the engine costs almost nothing —
// engines hold no per-query state — but guarantees that whatever
// inconsistency caused the panic cannot leak into later queries.
func (s *Server) withEngine(ctx context.Context, fn func(context.Context, *core.Engine) (any, error)) (any, error) {
	if err := s.cfg.Faults.Fire(fault.PointAcquire); err != nil {
		return nil, err
	}
	eng, err := s.acquire(ctx)
	if err != nil {
		if errors.Is(err, errOverload) {
			s.m.rejected.Inc()
		}
		return nil, err
	}
	defer func() {
		// Exactly one engine goes back per slot taken, panic or not;
		// the pool can never leak a slot.
		if rec := recover(); rec != nil {
			s.m.quarantined.Inc()
			s.slots <- s.replacementEngine(eng)
			panic(rec)
		}
		s.slots <- eng
	}()
	s.m.inFlight.Inc()
	defer s.m.inFlight.Dec()
	if s.testRunBarrier != nil {
		s.testRunBarrier()
	}
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	if err := s.cfg.Faults.Fire(fault.PointRun); err != nil {
		return nil, err
	}
	s.m.engineRuns.Inc()
	return fn(ctx, eng)
}

// replacementEngine builds a fresh engine from the current template to
// replace a quarantined one. If the build fails (the template already
// built this pool, so only resource exhaustion can get here) the
// suspect engine is returned instead: a possibly-tainted engine beats
// a leaked slot, which would silently shrink the pool forever.
func (s *Server) replacementEngine(old *core.Engine) *core.Engine {
	t := s.tmpl.Load()
	e, err := core.NewEngine(t.ds, t.opts)
	if err != nil {
		return old
	}
	return e
}

// execute is the shared request path: cache lookup, then coalesced
// execution of the leader function, then cache fill.
func (s *Server) execute(key string, fn func() (any, error)) (val any, cached, coalesced bool, err error) {
	if !s.cfg.DisableCache {
		if v, ok := s.cache.Get(key); ok {
			return v, true, false, nil
		}
	}
	wrapped := func() (any, error) {
		v, err := fn()
		if err == nil && !s.cfg.DisableCache && cacheable(v) {
			s.cache.Put(key, v)
		}
		return v, err
	}
	if s.cfg.DisableCoalesce {
		v, err := wrapped()
		return v, false, false, err
	}
	v, err, shared := s.flight.Do(key, wrapped)
	if shared {
		s.m.coalesced.Inc()
	}
	return v, false, shared, err
}

// cacheable reports whether a successful result may enter the result
// cache. Degraded answers are partial — replaying one to a later
// caller would hide the exact answer that caller had time to compute.
func cacheable(v any) bool {
	switch r := v.(type) {
	case *core.Result:
		return !r.Degraded
	case *shardQueryValue:
		return !r.res.Degraded
	}
	return true
}

// observePhases feeds one query's PhaseStats into the per-phase
// latency histograms.
func (s *Server) observePhases(st core.PhaseStats) {
	s.m.phaseLat["label_input"].Observe(st.LabelInput)
	s.m.phaseLat["grid_mapping"].Observe(st.GridMapping)
	s.m.phaseLat["lower_bounding"].Observe(st.LowerBounding)
	s.m.phaseLat["upper_bounding"].Observe(st.UpperBounding)
	s.m.phaseLat["verification"].Observe(st.Verification)
	s.m.phaseLat["total"].Observe(st.Total())
}

// statusFor maps an execution error to its HTTP status.
func (s *Server) statusFor(err error) int {
	switch {
	case errors.Is(err, errOverload):
		return http.StatusTooManyRequests
	case errors.Is(err, shard.ErrAllShardsDown):
		// Nothing left to certify even an interval with; distinct from
		// a timeout — per-shard failures never surface as 504.
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		s.m.timeouts.Inc()
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is written to a dead
		// connection, but pick one that is honest in logs.
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}
