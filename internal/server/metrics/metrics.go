// Package metrics provides the small, allocation-free instruments the
// MIO server exports on /metrics: atomic counters and gauges, plus a
// fixed-bucket latency histogram sized for query latencies from tens
// of microseconds to seconds. Everything is stdlib-only and safe for
// concurrent use.
package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways (e.g. the
// in-flight request count).
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBounds spans 50µs .. 10s in roughly 2.5x steps — wide
// enough for a cached hit on one end and a cold multi-second sweep on
// the other.
func DefaultLatencyBounds() []time.Duration {
	return []time.Duration{
		50 * time.Microsecond,
		100 * time.Microsecond,
		250 * time.Microsecond,
		500 * time.Microsecond,
		1 * time.Millisecond,
		2500 * time.Microsecond,
		5 * time.Millisecond,
		10 * time.Millisecond,
		25 * time.Millisecond,
		50 * time.Millisecond,
		100 * time.Millisecond,
		250 * time.Millisecond,
		500 * time.Millisecond,
		1 * time.Second,
		2500 * time.Millisecond,
		5 * time.Second,
		10 * time.Second,
	}
}

// Histogram is a cumulative-bucket latency histogram with fixed upper
// bounds (plus an implicit +Inf bucket).
type Histogram struct {
	mu     sync.Mutex
	bounds []time.Duration
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    time.Duration
	count  uint64
}

// NewHistogram returns a histogram over the given ascending bucket
// upper bounds; nil selects DefaultLatencyBounds.
func NewHistogram(bounds []time.Duration) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds()
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += d
	h.count++
}

// Bucket is one histogram bucket on the wire: the count of samples at
// or below the upper bound. LeMs < 0 marks the +Inf bucket.
type Bucket struct {
	LeMs  float64 `json:"le_ms"`
	Count uint64  `json:"count"`
}

// Snapshot is a point-in-time JSON-friendly view of a histogram, with
// estimated percentiles (linear interpolation inside buckets).
type Snapshot struct {
	Count   uint64   `json:"count"`
	SumMs   float64  `json:"sum_ms"`
	MeanMs  float64  `json:"mean_ms"`
	P50Ms   float64  `json:"p50_ms"`
	P90Ms   float64  `json:"p90_ms"`
	P99Ms   float64  `json:"p99_ms"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns the current state. withBuckets includes the raw
// bucket counts (the /metrics default omits them to keep the payload
// small; pass true for debugging).
func (h *Histogram) Snapshot(withBuckets bool) Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Snapshot{Count: h.count, SumMs: ms(h.sum)}
	if h.count > 0 {
		s.MeanMs = s.SumMs / float64(h.count)
	}
	s.P50Ms = h.quantileLocked(0.50)
	s.P90Ms = h.quantileLocked(0.90)
	s.P99Ms = h.quantileLocked(0.99)
	if withBuckets {
		s.Buckets = make([]Bucket, 0, len(h.counts))
		for i, c := range h.counts {
			b := Bucket{LeMs: -1, Count: c}
			if i < len(h.bounds) {
				b.LeMs = ms(h.bounds[i])
			}
			s.Buckets = append(s.Buckets, b)
		}
	}
	return s
}

// quantileLocked estimates the q-quantile in milliseconds. The +Inf
// bucket is reported as the largest finite bound (the estimate is a
// floor, not an upper bound, once samples overflow the bounds).
func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.bounds) {
			return ms(h.bounds[len(h.bounds)-1])
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return ms(hi)
		}
		// Linear interpolation of the rank inside this bucket.
		within := (rank - float64(cum-c)) / float64(c)
		return ms(lo) + within*(ms(hi)-ms(lo))
	}
	return ms(h.bounds[len(h.bounds)-1])
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
