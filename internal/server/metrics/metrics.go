// Package metrics provides the small, allocation-free instruments the
// MIO server exports on /metrics: atomic counters and gauges, plus a
// fixed-bucket latency histogram sized for query latencies from tens
// of microseconds to seconds. Everything is stdlib-only and safe for
// concurrent use.
package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways (e.g. the
// in-flight request count).
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBounds spans 50µs .. 10s in roughly 2.5x steps — wide
// enough for a cached hit on one end and a cold multi-second sweep on
// the other.
func DefaultLatencyBounds() []time.Duration {
	return []time.Duration{
		50 * time.Microsecond,
		100 * time.Microsecond,
		250 * time.Microsecond,
		500 * time.Microsecond,
		1 * time.Millisecond,
		2500 * time.Microsecond,
		5 * time.Millisecond,
		10 * time.Millisecond,
		25 * time.Millisecond,
		50 * time.Millisecond,
		100 * time.Millisecond,
		250 * time.Millisecond,
		500 * time.Millisecond,
		1 * time.Second,
		2500 * time.Millisecond,
		5 * time.Second,
		10 * time.Second,
	}
}

// Histogram is a cumulative-bucket latency histogram with fixed upper
// bounds (plus an implicit +Inf bucket).
type Histogram struct {
	mu     sync.Mutex
	bounds []time.Duration
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    time.Duration
	count  uint64
}

// NewHistogram returns a histogram over the given ascending bucket
// upper bounds; nil selects DefaultLatencyBounds.
func NewHistogram(bounds []time.Duration) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds()
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += d
	h.count++
}

// Bucket is one histogram bucket on the wire: the count of samples at
// or below the upper bound. LeMs < 0 marks the +Inf bucket.
type Bucket struct {
	LeMs  float64 `json:"le_ms"`
	Count uint64  `json:"count"`
}

// Snapshot is a point-in-time JSON-friendly view of a histogram, with
// estimated percentiles (linear interpolation inside buckets).
type Snapshot struct {
	Count   uint64   `json:"count"`
	SumMs   float64  `json:"sum_ms"`
	MeanMs  float64  `json:"mean_ms"`
	P50Ms   float64  `json:"p50_ms"`
	P90Ms   float64  `json:"p90_ms"`
	P99Ms   float64  `json:"p99_ms"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns the current state. withBuckets includes the raw
// bucket counts (the /metrics default omits them to keep the payload
// small; pass true for debugging).
func (h *Histogram) Snapshot(withBuckets bool) Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Snapshot{Count: h.count, SumMs: ms(h.sum)}
	if h.count > 0 {
		s.MeanMs = s.SumMs / float64(h.count)
	}
	s.P50Ms = h.quantileLocked(0.50)
	s.P90Ms = h.quantileLocked(0.90)
	s.P99Ms = h.quantileLocked(0.99)
	if withBuckets {
		s.Buckets = make([]Bucket, 0, len(h.counts))
		for i, c := range h.counts {
			b := Bucket{LeMs: -1, Count: c}
			if i < len(h.bounds) {
				b.LeMs = ms(h.bounds[i])
			}
			s.Buckets = append(s.Buckets, b)
		}
	}
	return s
}

// quantileLocked estimates the q-quantile in milliseconds. The +Inf
// bucket is reported as the largest finite bound (the estimate is a
// floor, not an upper bound, once samples overflow the bounds).
func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.bounds) {
			return ms(h.bounds[len(h.bounds)-1])
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return ms(hi)
		}
		// Linear interpolation of the rank inside this bucket.
		within := (rank - float64(cum-c)) / float64(c)
		return ms(lo) + within*(ms(hi)-ms(lo))
	}
	return ms(h.bounds[len(h.bounds)-1])
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// PowerOfTwoBounds returns 1, 2, 4, .. up to the first power of two
// covering max — the natural bucket ladder for size-like quantities
// (batch sizes, cell counts).
func PowerOfTwoBounds(max int64) []int64 {
	var bounds []int64
	for b := int64(1); ; b <<= 1 {
		bounds = append(bounds, b)
		if b >= max {
			return bounds
		}
	}
}

// IntHistogram is a cumulative-bucket histogram over integer values
// (counts, sizes), the dimensionless sibling of Histogram.
type IntHistogram struct {
	mu     sync.Mutex
	bounds []int64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    int64
	count  uint64
}

// NewIntHistogram returns a histogram over the given ascending bucket
// upper bounds; nil selects PowerOfTwoBounds(4096).
func NewIntHistogram(bounds []int64) *IntHistogram {
	if bounds == nil {
		bounds = PowerOfTwoBounds(4096)
	}
	return &IntHistogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *IntHistogram) Observe(v int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
}

// IntBucket is one IntHistogram bucket on the wire; Le < 0 marks the
// +Inf bucket.
type IntBucket struct {
	Le    int64  `json:"le"`
	Count uint64 `json:"count"`
}

// IntSnapshot is a point-in-time JSON-friendly view of an
// IntHistogram.
type IntSnapshot struct {
	Count   uint64      `json:"count"`
	Sum     int64       `json:"sum"`
	Mean    float64     `json:"mean"`
	Max     int64       `json:"max_le"` // upper bound of the highest non-empty bucket; -1 for +Inf
	Buckets []IntBucket `json:"buckets,omitempty"`
}

// Snapshot returns the current state; withBuckets includes the raw
// bucket counts.
func (h *IntHistogram) Snapshot(withBuckets bool) IntSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := IntSnapshot{Count: h.count, Sum: h.sum}
	if h.count > 0 {
		s.Mean = float64(h.sum) / float64(h.count)
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if i < len(h.bounds) {
			s.Max = h.bounds[i]
		} else {
			s.Max = -1
		}
	}
	if withBuckets {
		s.Buckets = make([]IntBucket, 0, len(h.counts))
		for i, c := range h.counts {
			b := IntBucket{Le: -1, Count: c}
			if i < len(h.bounds) {
				b.Le = h.bounds[i]
			}
			s.Buckets = append(s.Buckets, b)
		}
	}
	return s
}
