package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 {
		t.Fatalf("gauge = %d, want 1", g.Value())
	}
	g.Set(-3)
	if g.Value() != -3 {
		t.Fatalf("gauge = %d, want -3", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, 10 * time.Millisecond})
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(time.Minute)            // +Inf
	s := h.Snapshot(true)
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if len(s.Buckets) != 3 {
		t.Fatalf("buckets = %d, want 3", len(s.Buckets))
	}
	wantCounts := []uint64{1, 1, 1}
	for i, b := range s.Buckets {
		if b.Count != wantCounts[i] {
			t.Errorf("bucket %d count = %d, want %d", i, b.Count, wantCounts[i])
		}
	}
	if s.Buckets[2].LeMs != -1 {
		t.Errorf("last bucket LeMs = %v, want -1 (+Inf marker)", s.Buckets[2].LeMs)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(nil)
	// 100 samples at ~2ms: p50 and p99 must land in the (1ms, 2.5ms]
	// bucket.
	for i := 0; i < 100; i++ {
		h.Observe(2 * time.Millisecond)
	}
	s := h.Snapshot(false)
	for name, q := range map[string]float64{"p50": s.P50Ms, "p99": s.P99Ms} {
		if q <= 1.0 || q > 2.5 {
			t.Errorf("%s = %vms, want within (1, 2.5]", name, q)
		}
	}
	if s.MeanMs != 2.0 {
		t.Errorf("mean = %v, want 2.0", s.MeanMs)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil)
	s := h.Snapshot(false)
	if s.Count != 0 || s.P50Ms != 0 || s.MeanMs != 0 {
		t.Fatalf("empty snapshot = %+v, want zeros", s)
	}
}

func TestSnapshotJSONKeys(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(time.Millisecond)
	blob, err := json.Marshal(h.Snapshot(true))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"count", "sum_ms", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "buckets"} {
		if _, ok := m[k]; !ok {
			t.Errorf("snapshot JSON lacks key %q", k)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(false); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}
