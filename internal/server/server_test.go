package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mio/internal/core"
	"mio/internal/core/labelstore"
	"mio/internal/data"
)

func testDataset(n int, seed int64) *data.Dataset {
	return data.GenUniform(data.UniformConfig{N: n, M: 6, FieldSize: 30, Spread: 5, Seed: seed})
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(testDataset(80, 7), core.Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// get performs one request against the handler and decodes the JSON
// body into out (which may be nil).
func get(t *testing.T, h http.Handler, url string, out any) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decoding %s: %v (body %q)", url, err, rec.Body.String())
		}
	}
	return rec
}

func TestBadParams(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	cases := []string{
		"/v1/query",                  // missing r
		"/v1/query?r=0",              // non-positive r
		"/v1/query?r=-3",             //
		"/v1/query?r=abc",            // unparsable r
		"/v1/query?r=4&k=0",          // bad k
		"/v1/query?r=4&k=x",          //
		"/v1/interacting?r=4",        // missing obj
		"/v1/interacting?r=4&obj=-1", // negative obj
		"/v1/interacting?r=4&obj=99999",
		"/v1/scores?r=4&buckets=0",
		"/v1/sweep?k=1",                                   // missing rs
		"/v1/sweep?rs=2,zap&k=1",                          // unparsable rs entry
		"/v1/sweep?rs=2,-1&k=1",                           // non-positive rs entry
		"/v1/sweep?rs=" + strings.Repeat("2,", 100) + "2", // over MaxSweep
	}
	for _, url := range cases {
		if rec := get(t, h, url, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %q)", url, rec.Code, rec.Body.String())
		}
	}
	var snap MetricsSnapshot
	get(t, h, "/metrics", &snap)
	if snap.BadRequests != uint64(len(cases)) {
		t.Errorf("bad_request_total = %d, want %d", snap.BadRequests, len(cases))
	}
	if snap.EngineRuns != 0 {
		t.Errorf("engine_runs_total = %d after only bad requests, want 0", snap.EngineRuns)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/query?r=4", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/query: status %d, want 405", rec.Code)
	}
}

func TestQueryAndCacheHit(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	var first queryResponse
	if rec := get(t, h, "/v1/query?r=6&k=3", &first); rec.Code != http.StatusOK {
		t.Fatalf("query: status %d (body %q)", rec.Code, rec.Body.String())
	}
	if first.Cached || first.Coalesced {
		t.Errorf("first query reported cached=%v coalesced=%v, want false/false", first.Cached, first.Coalesced)
	}
	if len(first.Result.TopK) != 3 {
		t.Errorf("top_k has %d entries, want 3", len(first.Result.TopK))
	}

	var second queryResponse
	get(t, h, "/v1/query?r=6&k=3", &second)
	if !second.Cached {
		t.Error("identical second query was not served from cache")
	}
	if second.Result.Best != first.Result.Best {
		t.Errorf("cached result diverged: %+v vs %+v", second.Result.Best, first.Result.Best)
	}

	// A different k is a different key.
	var third queryResponse
	get(t, h, "/v1/query?r=6&k=1", &third)
	if third.Cached {
		t.Error("query with different k hit the cache")
	}

	var snap MetricsSnapshot
	get(t, h, "/metrics", &snap)
	if snap.Cache.Hits != 1 || snap.EngineRuns != 2 {
		t.Errorf("metrics: hits=%d runs=%d, want 1 and 2", snap.Cache.Hits, snap.EngineRuns)
	}
	if snap.Requests["query"] != 3 {
		t.Errorf("requests_total[query] = %d, want 3", snap.Requests["query"])
	}
	if snap.PhaseLatency["total"].Count != 2 {
		t.Errorf("phase_latency[total].count = %d, want 2", snap.PhaseLatency["total"].Count)
	}
}

func TestDisableCache(t *testing.T) {
	s := newTestServer(t, Config{DisableCache: true})
	h := s.Handler()
	var resp queryResponse
	get(t, h, "/v1/query?r=6", &resp)
	get(t, h, "/v1/query?r=6", &resp)
	if resp.Cached {
		t.Error("cache disabled but response reported cached")
	}
	var snap MetricsSnapshot
	get(t, h, "/metrics", &snap)
	if snap.EngineRuns != 2 {
		t.Errorf("engine_runs_total = %d with cache disabled, want 2", snap.EngineRuns)
	}
	if snap.Cache.Enabled {
		t.Error("metrics report cache enabled")
	}
}

// TestCoalescing holds the leader in flight with the test barrier
// until all followers are attached, then checks one engine run served
// everyone.
func TestCoalescing(t *testing.T) {
	const followers = 6
	s := newTestServer(t, Config{DisableCache: true})
	release := make(chan struct{})
	s.testRunBarrier = func() { <-release }
	h := s.Handler()

	key := fmt.Sprintf("0|query|%s|1|dfalse", rKey(6))
	var wg sync.WaitGroup
	codes := make(chan int, followers+1)
	coalesced := atomic.Int64{}
	for i := 0; i < followers+1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/query?r=6", nil))
			codes <- rec.Code
			var qr queryResponse
			if rec.Code == http.StatusOK {
				if err := json.Unmarshal(rec.Body.Bytes(), &qr); err == nil && qr.Coalesced {
					coalesced.Add(1)
				}
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.flight.Pending(key) < followers+1 {
		if time.Now().After(deadline) {
			t.Fatalf("flight.Pending = %d, want %d; followers never attached", s.flight.Pending(key), followers+1)
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Errorf("coalesced request returned %d", code)
		}
	}
	var snap MetricsSnapshot
	get(t, h, "/metrics", &snap)
	if snap.EngineRuns != 1 {
		t.Errorf("engine_runs_total = %d, want 1 (coalescing failed)", snap.EngineRuns)
	}
	if snap.Coalesced != followers {
		t.Errorf("coalesced_total = %d, want %d", snap.Coalesced, followers)
	}
	if got := coalesced.Load(); got != followers {
		t.Errorf("%d responses flagged coalesced, want %d", got, followers)
	}
}

// TestOverload429 fills the single engine slot and checks that a
// *distinct* query (no coalescing possible) is rejected with 429.
func TestOverload429(t *testing.T) {
	s := newTestServer(t, Config{AdmissionWait: -1, DisableCache: true})
	release := make(chan struct{})
	s.testRunBarrier = func() { <-release }
	h := s.Handler()

	done := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/query?r=6", nil))
		done <- rec.Code
	}()
	// Wait for the leader to hold the slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.m.inFlight.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never acquired the engine slot")
		}
		time.Sleep(100 * time.Microsecond)
	}

	rec := get(t, h, "/v1/query?r=7", nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("distinct query under load: status %d, want 429 (body %q)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 response lacks Retry-After")
	}
	close(release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("blocked leader finished with %d, want 200", code)
	}
	var snap MetricsSnapshot
	get(t, h, "/metrics", &snap)
	if snap.AdmissionRejected != 1 {
		t.Errorf("admission_rejected_total = %d, want 1", snap.AdmissionRejected)
	}
}

func TestQueryTimeout504(t *testing.T) {
	s := newTestServer(t, Config{QueryTimeout: time.Nanosecond})
	rec := get(t, s.Handler(), "/v1/query?r=6", nil)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %q)", rec.Code, rec.Body.String())
	}
}

func TestDrain503(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	get(t, h, "/v1/query?r=6", nil)
	s.Drain()
	if rec := get(t, h, "/v1/query?r=6", nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("query while draining: status %d, want 503", rec.Code)
	}
	// healthz and metrics keep responding and report the drain.
	var hr healthResponse
	if rec := get(t, h, "/healthz", &hr); rec.Code != http.StatusOK {
		t.Fatalf("healthz while draining: status %d, want 200", rec.Code)
	}
	if !hr.Draining || hr.Status != "draining" {
		t.Errorf("healthz = %+v, want draining", hr)
	}
	var snap MetricsSnapshot
	get(t, h, "/metrics", &snap)
	if snap.DrainRejected != 1 {
		t.Errorf("drain_rejected_total = %d, want 1", snap.DrainRejected)
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{})
	var hr healthResponse
	get(t, s.Handler(), "/healthz", &hr)
	if hr.Status != "ok" || hr.Objects != 80 || hr.Dataset != "uniform" {
		t.Errorf("healthz = %+v", hr)
	}
}

// TestSwapInvalidates swaps the dataset mid-session and checks the
// epoch bump, cache invalidation and fresh label store.
func TestSwapInvalidates(t *testing.T) {
	store := labelstore.NewStore()
	s, err := New(testDataset(80, 7), core.Options{Labels: store}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	var warm queryResponse
	get(t, h, "/v1/query?r=6", &warm)
	if warm.Result.Stats.UsedLabels {
		t.Error("first query claims to have reused labels")
	}
	// Same ⌈r⌉, different r: must reuse the labels just collected.
	var labelled queryResponse
	get(t, h, "/v1/query?r=5.5", &labelled)
	if !labelled.Result.Stats.UsedLabels {
		t.Error("second query sharing ⌈r⌉ did not reuse labels")
	}

	if err := s.SwapDataset(testDataset(120, 11)); err != nil {
		t.Fatal(err)
	}
	var hr healthResponse
	get(t, h, "/healthz", &hr)
	if hr.Objects != 120 || hr.Epoch != 1 {
		t.Errorf("post-swap healthz = %+v, want 120 objects at epoch 1", hr)
	}
	var fresh queryResponse
	get(t, h, "/v1/query?r=6", &fresh)
	if fresh.Cached {
		t.Error("post-swap query was served from the stale cache")
	}
	if fresh.Epoch != 1 {
		t.Errorf("post-swap query epoch = %d, want 1", fresh.Epoch)
	}
	if fresh.Result.Stats.UsedLabels {
		t.Error("post-swap query reused labels from the previous dataset")
	}
	if s.cache.Len() != 1 {
		t.Errorf("cache holds %d entries after swap+1 query, want 1", s.cache.Len())
	}
}

func TestSwapEndpointForbiddenByDefault(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/dataset", strings.NewReader(`{"path":"/tmp/x.bin"}`)))
	if rec.Code != http.StatusForbidden {
		t.Fatalf("swap without AllowSwap: status %d, want 403", rec.Code)
	}
}

func TestSwapEndpoint(t *testing.T) {
	path := t.TempDir() + "/swap.bin"
	if err := data.SaveFile(path, testDataset(50, 3)); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{AllowSwap: true})
	h := s.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/dataset", strings.NewReader(`{"path":"`+path+`"}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("swap: status %d (body %q)", rec.Code, rec.Body.String())
	}
	var hr healthResponse
	get(t, h, "/healthz", &hr)
	if hr.Objects != 50 || hr.Epoch != 1 {
		t.Errorf("post-swap healthz = %+v", hr)
	}
	// Bad path → 400, epoch unchanged.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/dataset", strings.NewReader(`{"path":"/nonexistent.bin"}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("swap with bad path: status %d, want 400", rec.Code)
	}
}

func TestInteractingScoresSweep(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	var ir interactingResponse
	if rec := get(t, h, "/v1/interacting?r=6&obj=0", &ir); rec.Code != http.StatusOK {
		t.Fatalf("interacting: status %d", rec.Code)
	}
	if ir.Count != len(ir.IDs) {
		t.Errorf("interacting count %d != len(ids) %d", ir.Count, len(ir.IDs))
	}

	var sr scoresResponse
	if rec := get(t, h, "/v1/scores?r=6", &sr); rec.Code != http.StatusOK {
		t.Fatalf("scores: status %d", rec.Code)
	}
	if sr.Result.N != 80 || sr.Result.Scores != nil {
		t.Errorf("scores payload = %+v, want n=80 without raw scores", sr.Result)
	}
	var srFull scoresResponse
	get(t, h, "/v1/scores?r=6&full=1", &srFull)
	if len(srFull.Result.Scores) != 80 {
		t.Errorf("full scores returned %d entries, want 80", len(srFull.Result.Scores))
	}

	var sw sweepResponse
	if rec := get(t, h, "/v1/sweep?rs=4,5,6&k=2", &sw); rec.Code != http.StatusOK {
		t.Fatalf("sweep: status %d", rec.Code)
	}
	if len(sw.Results) != 3 {
		t.Errorf("sweep returned %d results, want 3", len(sw.Results))
	}
	// Sweep is cached as one unit.
	get(t, h, "/v1/sweep?rs=4,5,6&k=2", &sw)
	if !sw.Cached {
		t.Error("identical sweep was not served from cache")
	}
}

// TestConcurrentStress hammers a real HTTP server with a mixture of
// identical and distinct queries across endpoints; run under -race in
// CI. Every response must be 200 or 429.
func TestConcurrentStress(t *testing.T) {
	s, err := New(testDataset(120, 5), core.Options{Labels: labelstore.NewStore()},
		Config{MaxInFlight: 2, AdmissionWait: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	urls := []string{
		"/v1/query?r=5", "/v1/query?r=5", "/v1/query?r=5", // identical: coalesce/cache
		"/v1/query?r=6&k=4", "/v1/query?r=7",
		"/v1/interacting?r=5&obj=3",
		"/v1/scores?r=5",
		"/v1/sweep?rs=4,5&k=2",
		"/metrics", "/healthz",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				url := urls[(w+i)%len(urls)]
				resp, err := http.Get(ts.URL + url)
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					errs <- fmt.Errorf("%s: status %d", url, resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	var snap MetricsSnapshot
	get(t, s.Handler(), "/metrics", &snap)
	if snap.EngineRuns == 0 {
		t.Error("stress run recorded no engine runs")
	}
	if snap.InFlight != 0 {
		t.Errorf("in_flight = %d after the stress run, want 0", snap.InFlight)
	}
}

// TestMetricsShape decodes /metrics and sanity-checks the documented
// fields exist with coherent values.
func TestMetricsShape(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	get(t, h, "/v1/query?r=6", nil)
	get(t, h, "/v1/query?r=6", nil)

	var m map[string]any
	get(t, h, "/metrics", &m)
	for _, k := range []string{
		"uptime_s", "dataset", "objects", "dataset_epoch", "in_flight", "max_in_flight",
		"coalesce_enabled", "requests_total", "engine_runs_total", "coalesced_total",
		"admission_rejected_total", "bad_request_total", "timeout_total",
		"drain_rejected_total", "cache", "http_latency", "phase_latency",
	} {
		if _, ok := m[k]; !ok {
			t.Errorf("/metrics lacks key %q", k)
		}
	}
	var snap MetricsSnapshot
	get(t, h, "/metrics?buckets=1", &snap)
	if snap.Cache.Hits != 1 || snap.Cache.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss", snap.Cache)
	}
	if hist := snap.PhaseLatency["total"]; hist.Count != 1 || len(hist.Buckets) == 0 {
		t.Errorf("phase_latency[total] = %+v, want count 1 with buckets", hist)
	}
}
