// Package loadgen drives an MIO query server (internal/server, via
// cmd/miosrv or an embedded handler) with a configurable open-loop
// workload and reports throughput, latency percentiles and the
// server-side serving metrics (cache hits, coalesced runs) observed
// during the run.
//
// The threshold mix is Zipf-skewed over a fixed set of r values: real
// monitoring workloads ask a few popular thresholds most of the time,
// which is exactly the shape request coalescing and result caching
// exploit. A uniform mix (Skew = 0) is available as the adversarial
// baseline.
package loadgen

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mio/internal/server"
)

// Config describes one load-generation run.
type Config struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// Concurrency is the number of client workers (default 8).
	Concurrency int
	// Requests is the total number of requests to issue (default 1000).
	Requests int
	// RValues is the threshold set workers draw from (default {4,5,6}).
	RValues []float64
	// Skew is the Zipf s parameter over RValues; values ≤ 1 select a
	// uniform draw. Higher skew concentrates load on RValues[0].
	Skew float64
	// K is the top-k passed on every query (default 1).
	K int
	// Seed makes the workload reproducible (default 1).
	Seed int64
	// Timeout bounds each HTTP request (default 30s).
	Timeout time.Duration
	// MaxAttempts is how many times one logical request may hit the
	// server: 429 (admission rejection) and 503 (drain, breaker) are
	// retried with jittered exponential backoff, honouring any
	// Retry-After the server sent. Default 3; 1 disables retries.
	MaxAttempts int
	// RetryBase is the backoff before the first retry; it doubles per
	// attempt and each sleep is capped at 2s. Default 50ms.
	RetryBase time.Duration
	// Burst switches from the open loop to closed-loop waves: all
	// Concurrency workers fire one request simultaneously, everyone
	// waits for the slowest, then the next wave starts. This is the
	// shape batch execution feeds on — a standing set of in-flight
	// queries for each epoch to gather — and the adversarial case for
	// a cache (every wave misses until thresholds repeat).
	Burst bool
	// KSpread, when > 1, cycles each worker's k over 1..KSpread instead
	// of the fixed K, so grouped queries carry distinct (r, k) plans.
	KSpread int
}

func (c Config) withDefaults() Config {
	if c.Concurrency < 1 {
		c.Concurrency = 8
	}
	if c.Requests < 1 {
		c.Requests = 1000
	}
	if len(c.RValues) == 0 {
		c.RValues = []float64{4, 5, 6}
	}
	if c.K < 1 {
		c.K = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	return c
}

// Report is the outcome of one run.
type Report struct {
	Requests int
	Errors   int           // transport errors
	Retries  int           // extra attempts after 429/503 responses
	Status   map[int]int   // HTTP status → count, final attempt only
	Elapsed  time.Duration // wall clock for the whole run
	QPS      float64       // successful (200) responses per second
	P50      time.Duration // client-observed latency percentiles
	P90      time.Duration
	P99      time.Duration
	Max      time.Duration

	// Server-side deltas over the run, from /metrics.
	EngineRuns  uint64
	Coalesced   uint64
	CacheHits   uint64
	CacheMisses uint64
	Rejected    uint64 // admission-control 429s

	// Batch-execution deltas, zero unless the server runs with
	// Config.BatchExecution (the /metrics batch section).
	BatchEpochs       uint64
	BatchQueries      uint64
	BatchPlans        uint64
	BatchShared       uint64 // queries answered by a groupmate's plan
	BatchCellsDeduped int64  // duplicate cell visits avoided by shared walks

	// Sharded-serving deltas, zero unless the server runs with
	// Config.Shards (the /metrics shards section). Sharded is true when
	// the section was present, so an all-zero healthy run still prints.
	Sharded       bool
	ShardCount    int
	ShardDegraded uint64 // queries answered with a certified interval
	ShardHedges   uint64 // speculative attempts against stragglers
	ShardRetries  uint64 // bound attempts relaunched after a failure
	ShardDowns    uint64 // per-query shard outcomes that ended down/late
	ShardStale    uint64 // remote responses rejected by the generation guard
	ShardBad      uint64 // remote responses rejected by strict validation
}

// String renders the report as the human-readable block cmd/mioload
// prints.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  requests      %d (%d errors)\n", r.Requests, r.Errors)
	if r.Retries > 0 {
		fmt.Fprintf(&b, "  retries       %d\n", r.Retries)
	}
	codes := make([]int, 0, len(r.Status))
	for c := range r.Status {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(&b, "    HTTP %d      %d\n", c, r.Status[c])
	}
	fmt.Fprintf(&b, "  elapsed       %v\n", r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  throughput    %.0f q/s\n", r.QPS)
	fmt.Fprintf(&b, "  latency       p50 %v  p90 %v  p99 %v  max %v\n",
		r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
	fmt.Fprintf(&b, "  engine runs   %d\n", r.EngineRuns)
	fmt.Fprintf(&b, "  coalesced     %d\n", r.Coalesced)
	fmt.Fprintf(&b, "  cache         %d hits / %d misses\n", r.CacheHits, r.CacheMisses)
	if r.Rejected > 0 {
		fmt.Fprintf(&b, "  rejected 429  %d\n", r.Rejected)
	}
	if r.BatchQueries > 0 {
		avg := float64(r.BatchQueries) / float64(r.BatchEpochs)
		fmt.Fprintf(&b, "  batch         %d epochs, %d queries (avg %.1f/epoch)\n",
			r.BatchEpochs, r.BatchQueries, avg)
		fmt.Fprintf(&b, "  batch plans   %d (%d shared), %d cell visits deduped\n",
			r.BatchPlans, r.BatchShared, r.BatchCellsDeduped)
	}
	if r.Sharded {
		rate := 0.0
		if ok := r.Status[http.StatusOK]; ok > 0 {
			rate = 100 * float64(r.ShardDegraded) / float64(ok)
		}
		fmt.Fprintf(&b, "  shards        %d, degraded %d (%.1f%% of 200s)\n",
			r.ShardCount, r.ShardDegraded, rate)
		fmt.Fprintf(&b, "  shard faults  %d retries, %d hedges, %d down/late outcomes\n",
			r.ShardRetries, r.ShardHedges, r.ShardDowns)
		if r.ShardStale > 0 || r.ShardBad > 0 {
			fmt.Fprintf(&b, "  shard reject  %d stale-generation, %d invalid responses\n",
				r.ShardStale, r.ShardBad)
		}
	}
	return b.String()
}

// picker draws threshold indices; Zipf-skewed when cfg.Skew > 1.
type picker struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	n    int
}

func newPicker(cfg Config, seed int64) *picker {
	p := &picker{rng: rand.New(rand.NewSource(seed)), n: len(cfg.RValues)}
	if cfg.Skew > 1 && p.n > 1 {
		p.zipf = rand.NewZipf(p.rng, cfg.Skew, 1, uint64(p.n-1))
	}
	return p
}

func (p *picker) next() int {
	if p.zipf != nil {
		return int(p.zipf.Uint64())
	}
	return p.rng.Intn(p.n)
}

// workerOut accumulates one client worker's observations.
type workerOut struct {
	lat     []time.Duration
	status  map[int]int
	errs    int
	retries int
}

// worker is one client worker: its own picker (reproducible draws),
// its own request counter (drives the k cycle) and its own output, so
// no two goroutines share state.
type worker struct {
	id   int // phase-shifts the k cycle so a burst wave spans all k values
	pick *picker
	seq  int
	out  workerOut
}

// one issues a single logical request, retrying 429/503 with backoff.
// Latency is measured across the whole logical request, backoff sleeps
// included — what a retrying client actually experiences.
func (w *worker) one(client *http.Client, cfg Config) {
	r := cfg.RValues[w.pick.next()]
	k := cfg.K
	if cfg.KSpread > 1 {
		k = 1 + (w.id+w.seq)%cfg.KSpread
	}
	w.seq++
	url := fmt.Sprintf("%s/v1/query?r=%g&k=%d", cfg.BaseURL, r, k)
	q0 := time.Now()
	for attempt := 1; ; attempt++ {
		resp, err := client.Get(url)
		if err != nil {
			w.out.errs++
			return
		}
		retryAfter := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if !retryable(resp.StatusCode) || attempt >= cfg.MaxAttempts {
			w.out.lat = append(w.out.lat, time.Since(q0))
			w.out.status[resp.StatusCode]++
			return
		}
		w.out.retries++
		time.Sleep(backoff(cfg, attempt, retryAfter, w.pick.rng))
	}
}

// Run executes the workload and gathers the report. The server's
// /metrics endpoint is read before and after to compute serving
// deltas, so concurrent external traffic would pollute them.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	client := &http.Client{Timeout: cfg.Timeout}
	before, err := fetchMetrics(client, cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: server unreachable: %w", err)
	}

	ws := make([]*worker, cfg.Concurrency)
	for w := range ws {
		ws[w] = &worker{
			id:   w,
			pick: newPicker(cfg, cfg.Seed+int64(w)*7919),
			out:  workerOut{status: make(map[int]int)},
		}
	}
	t0 := time.Now()
	if cfg.Burst {
		// Closed loop: every wave puts Concurrency requests in flight at
		// once and waits for the slowest before the next wave.
		for issued := 0; issued < cfg.Requests; {
			m := cfg.Concurrency
			if rest := cfg.Requests - issued; m > rest {
				m = rest
			}
			var wg sync.WaitGroup
			for w := 0; w < m; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					ws[w].one(client, cfg)
				}(w)
			}
			wg.Wait()
			issued += m
		}
	} else {
		var wg sync.WaitGroup
		share := cfg.Requests / cfg.Concurrency
		extra := cfg.Requests % cfg.Concurrency
		for w := 0; w < cfg.Concurrency; w++ {
			n := share
			if w < extra {
				n++
			}
			wg.Add(1)
			go func(w, n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					ws[w].one(client, cfg)
				}
			}(w, n)
		}
		wg.Wait()
	}
	elapsed := time.Since(t0)

	after, err := fetchMetrics(client, cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: reading post-run metrics: %w", err)
	}

	rep := &Report{Requests: cfg.Requests, Status: make(map[int]int), Elapsed: elapsed}
	var lats []time.Duration
	for _, w := range ws {
		rep.Errors += w.out.errs
		rep.Retries += w.out.retries
		for c, n := range w.out.status {
			rep.Status[c] += n
		}
		lats = append(lats, w.out.lat...)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep.P50, rep.P90, rep.P99 = quantile(lats, 0.50), quantile(lats, 0.90), quantile(lats, 0.99)
	if len(lats) > 0 {
		rep.Max = lats[len(lats)-1]
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.QPS = float64(rep.Status[http.StatusOK]) / secs
	}
	rep.EngineRuns = after.EngineRuns - before.EngineRuns
	rep.Coalesced = after.Coalesced - before.Coalesced
	rep.CacheHits = after.Cache.Hits - before.Cache.Hits
	rep.CacheMisses = after.Cache.Misses - before.Cache.Misses
	rep.Rejected = after.AdmissionRejected - before.AdmissionRejected
	if before.Batch != nil && after.Batch != nil {
		rep.BatchEpochs = after.Batch.Epochs - before.Batch.Epochs
		rep.BatchQueries = after.Batch.Queries - before.Batch.Queries
		rep.BatchPlans = after.Batch.Plans - before.Batch.Plans
		rep.BatchShared = after.Batch.SharedWork - before.Batch.SharedWork
		rep.BatchCellsDeduped = after.Batch.CellsDeduped.Sum - before.Batch.CellsDeduped.Sum
	}
	if before.Shards != nil && after.Shards != nil {
		rep.Sharded = true
		rep.ShardCount = after.Shards.Shards
		rep.ShardDegraded = after.Shards.DegradedTotal - before.Shards.DegradedTotal
		rep.ShardHedges = after.Shards.HedgesTotal - before.Shards.HedgesTotal
		rep.ShardRetries = after.Shards.RetriesTotal - before.Shards.RetriesTotal
		rep.ShardDowns = after.Shards.DownsTotal - before.Shards.DownsTotal
		rep.ShardStale = after.Shards.StaleTotal - before.Shards.StaleTotal
		rep.ShardBad = after.Shards.BadResponsesTotal - before.Shards.BadResponsesTotal
	}
	return rep, nil
}

// retryable reports whether a status signals transient overload worth
// another attempt: 429 from admission control, 503 from draining or an
// open circuit breaker.
func retryable(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// backoff computes the sleep before retry #attempt: the server's
// Retry-After when present, otherwise jittered exponential backoff
// from cfg.RetryBase. Every sleep is capped at 2s so a misbehaving
// server cannot stall the workload.
func backoff(cfg Config, attempt int, retryAfter string, rng *rand.Rand) time.Duration {
	const maxSleep = 2 * time.Second
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs >= 0 {
		d := time.Duration(secs) * time.Second
		if d > maxSleep {
			d = maxSleep
		}
		return d
	}
	d := cfg.RetryBase << (attempt - 1)
	if d > maxSleep {
		d = maxSleep
	}
	// Full jitter: a uniform draw in (0, d] de-synchronises workers
	// that were rejected together.
	return time.Duration(rng.Int63n(int64(d))) + 1
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func fetchMetrics(client *http.Client, base string) (*server.MetricsSnapshot, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	var snap server.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}
