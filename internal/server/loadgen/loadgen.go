// Package loadgen drives an MIO query server (internal/server, via
// cmd/miosrv or an embedded handler) with a configurable open-loop
// workload and reports throughput, latency percentiles and the
// server-side serving metrics (cache hits, coalesced runs) observed
// during the run.
//
// The threshold mix is Zipf-skewed over a fixed set of r values: real
// monitoring workloads ask a few popular thresholds most of the time,
// which is exactly the shape request coalescing and result caching
// exploit. A uniform mix (Skew = 0) is available as the adversarial
// baseline.
package loadgen

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mio/internal/server"
)

// Config describes one load-generation run.
type Config struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// Concurrency is the number of client workers (default 8).
	Concurrency int
	// Requests is the total number of requests to issue (default 1000).
	Requests int
	// RValues is the threshold set workers draw from (default {4,5,6}).
	RValues []float64
	// Skew is the Zipf s parameter over RValues; values ≤ 1 select a
	// uniform draw. Higher skew concentrates load on RValues[0].
	Skew float64
	// K is the top-k passed on every query (default 1).
	K int
	// Seed makes the workload reproducible (default 1).
	Seed int64
	// Timeout bounds each HTTP request (default 30s).
	Timeout time.Duration
	// MaxAttempts is how many times one logical request may hit the
	// server: 429 (admission rejection) and 503 (drain, breaker) are
	// retried with jittered exponential backoff, honouring any
	// Retry-After the server sent. Default 3; 1 disables retries.
	MaxAttempts int
	// RetryBase is the backoff before the first retry; it doubles per
	// attempt and each sleep is capped at 2s. Default 50ms.
	RetryBase time.Duration
}

func (c Config) withDefaults() Config {
	if c.Concurrency < 1 {
		c.Concurrency = 8
	}
	if c.Requests < 1 {
		c.Requests = 1000
	}
	if len(c.RValues) == 0 {
		c.RValues = []float64{4, 5, 6}
	}
	if c.K < 1 {
		c.K = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	return c
}

// Report is the outcome of one run.
type Report struct {
	Requests int
	Errors   int           // transport errors
	Retries  int           // extra attempts after 429/503 responses
	Status   map[int]int   // HTTP status → count, final attempt only
	Elapsed  time.Duration // wall clock for the whole run
	QPS      float64       // successful (200) responses per second
	P50      time.Duration // client-observed latency percentiles
	P90      time.Duration
	P99      time.Duration
	Max      time.Duration

	// Server-side deltas over the run, from /metrics.
	EngineRuns  uint64
	Coalesced   uint64
	CacheHits   uint64
	CacheMisses uint64
	Rejected    uint64 // admission-control 429s
}

// String renders the report as the human-readable block cmd/mioload
// prints.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  requests      %d (%d errors)\n", r.Requests, r.Errors)
	if r.Retries > 0 {
		fmt.Fprintf(&b, "  retries       %d\n", r.Retries)
	}
	codes := make([]int, 0, len(r.Status))
	for c := range r.Status {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(&b, "    HTTP %d      %d\n", c, r.Status[c])
	}
	fmt.Fprintf(&b, "  elapsed       %v\n", r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  throughput    %.0f q/s\n", r.QPS)
	fmt.Fprintf(&b, "  latency       p50 %v  p90 %v  p99 %v  max %v\n",
		r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
	fmt.Fprintf(&b, "  engine runs   %d\n", r.EngineRuns)
	fmt.Fprintf(&b, "  coalesced     %d\n", r.Coalesced)
	fmt.Fprintf(&b, "  cache         %d hits / %d misses\n", r.CacheHits, r.CacheMisses)
	if r.Rejected > 0 {
		fmt.Fprintf(&b, "  rejected 429  %d\n", r.Rejected)
	}
	return b.String()
}

// picker draws threshold indices; Zipf-skewed when cfg.Skew > 1.
type picker struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	n    int
}

func newPicker(cfg Config, seed int64) *picker {
	p := &picker{rng: rand.New(rand.NewSource(seed)), n: len(cfg.RValues)}
	if cfg.Skew > 1 && p.n > 1 {
		p.zipf = rand.NewZipf(p.rng, cfg.Skew, 1, uint64(p.n-1))
	}
	return p
}

func (p *picker) next() int {
	if p.zipf != nil {
		return int(p.zipf.Uint64())
	}
	return p.rng.Intn(p.n)
}

// Run executes the workload and gathers the report. The server's
// /metrics endpoint is read before and after to compute serving
// deltas, so concurrent external traffic would pollute them.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	client := &http.Client{Timeout: cfg.Timeout}
	before, err := fetchMetrics(client, cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: server unreachable: %w", err)
	}

	type workerOut struct {
		lat     []time.Duration
		status  map[int]int
		errs    int
		retries int
	}
	outs := make([]workerOut, cfg.Concurrency)
	var wg sync.WaitGroup
	share := cfg.Requests / cfg.Concurrency
	extra := cfg.Requests % cfg.Concurrency
	t0 := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		n := share
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			pick := newPicker(cfg, cfg.Seed+int64(w)*7919)
			out := workerOut{status: make(map[int]int), lat: make([]time.Duration, 0, n)}
			for i := 0; i < n; i++ {
				r := cfg.RValues[pick.next()]
				url := fmt.Sprintf("%s/v1/query?r=%g&k=%d", cfg.BaseURL, r, cfg.K)
				// Latency is measured across the whole logical request,
				// backoff sleeps included — what a retrying client
				// actually experiences.
				q0 := time.Now()
				for attempt := 1; ; attempt++ {
					resp, err := client.Get(url)
					if err != nil {
						out.errs++
						break
					}
					retryAfter := resp.Header.Get("Retry-After")
					resp.Body.Close()
					if !retryable(resp.StatusCode) || attempt >= cfg.MaxAttempts {
						out.lat = append(out.lat, time.Since(q0))
						out.status[resp.StatusCode]++
						break
					}
					out.retries++
					time.Sleep(backoff(cfg, attempt, retryAfter, pick.rng))
				}
			}
			outs[w] = out
		}(w, n)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	after, err := fetchMetrics(client, cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: reading post-run metrics: %w", err)
	}

	rep := &Report{Requests: cfg.Requests, Status: make(map[int]int), Elapsed: elapsed}
	var lats []time.Duration
	for _, out := range outs {
		rep.Errors += out.errs
		rep.Retries += out.retries
		for c, n := range out.status {
			rep.Status[c] += n
		}
		lats = append(lats, out.lat...)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep.P50, rep.P90, rep.P99 = quantile(lats, 0.50), quantile(lats, 0.90), quantile(lats, 0.99)
	if len(lats) > 0 {
		rep.Max = lats[len(lats)-1]
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.QPS = float64(rep.Status[http.StatusOK]) / secs
	}
	rep.EngineRuns = after.EngineRuns - before.EngineRuns
	rep.Coalesced = after.Coalesced - before.Coalesced
	rep.CacheHits = after.Cache.Hits - before.Cache.Hits
	rep.CacheMisses = after.Cache.Misses - before.Cache.Misses
	rep.Rejected = after.AdmissionRejected - before.AdmissionRejected
	return rep, nil
}

// retryable reports whether a status signals transient overload worth
// another attempt: 429 from admission control, 503 from draining or an
// open circuit breaker.
func retryable(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// backoff computes the sleep before retry #attempt: the server's
// Retry-After when present, otherwise jittered exponential backoff
// from cfg.RetryBase. Every sleep is capped at 2s so a misbehaving
// server cannot stall the workload.
func backoff(cfg Config, attempt int, retryAfter string, rng *rand.Rand) time.Duration {
	const maxSleep = 2 * time.Second
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs >= 0 {
		d := time.Duration(secs) * time.Second
		if d > maxSleep {
			d = maxSleep
		}
		return d
	}
	d := cfg.RetryBase << (attempt - 1)
	if d > maxSleep {
		d = maxSleep
	}
	// Full jitter: a uniform draw in (0, d] de-synchronises workers
	// that were rejected together.
	return time.Duration(rng.Int63n(int64(d))) + 1
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func fetchMetrics(client *http.Client, base string) (*server.MetricsSnapshot, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	var snap server.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}
