package loadgen

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mio/internal/core"
	"mio/internal/core/labelstore"
	"mio/internal/data"
	"mio/internal/server"
)

func startServer(t *testing.T, cfg server.Config) *httptest.Server {
	t.Helper()
	ds := data.GenUniform(data.UniformConfig{N: 100, M: 6, FieldSize: 30, Spread: 5, Seed: 9})
	s, err := server.New(ds, core.Options{Labels: labelstore.NewStore()}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestRunAgainstServer(t *testing.T) {
	ts := startServer(t, server.Config{MaxInFlight: 2, AdmissionWait: 5 * time.Second})
	rep, err := Run(Config{
		BaseURL:     ts.URL,
		Concurrency: 4,
		Requests:    200,
		RValues:     []float64{5, 6},
		Skew:        1.5,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("report has %d transport errors", rep.Errors)
	}
	if rep.Status[200] != 200 {
		t.Fatalf("status map = %v, want 200×200", rep.Status)
	}
	// A repeated-r workload must be absorbed by cache + coalescing:
	// far fewer engine runs than requests, and accounting must add up.
	if rep.EngineRuns >= 200 {
		t.Errorf("engine runs = %d for 200 repeated-r requests", rep.EngineRuns)
	}
	if rep.CacheHits == 0 {
		t.Error("no cache hits under a repeated-r workload")
	}
	// Every request is exactly one cache hit or miss; every miss is
	// either a coalesced follower or an engine run.
	if got := rep.CacheHits + rep.CacheMisses; got != 200 {
		t.Errorf("hits(%d)+misses(%d) = %d, want 200", rep.CacheHits, rep.CacheMisses, got)
	}
	if rep.CacheMisses != rep.EngineRuns+rep.Coalesced {
		t.Errorf("misses(%d) != runs(%d)+coalesced(%d)",
			rep.CacheMisses, rep.EngineRuns, rep.Coalesced)
	}
	if rep.QPS <= 0 || rep.P50 <= 0 || rep.Max < rep.P99 {
		t.Errorf("implausible timings: %+v", rep)
	}
	if rep.String() == "" {
		t.Error("empty report rendering")
	}
}

// TestRetriesOn429 fronts the workload with a flaky proxy that
// rejects every first and second attempt with 429 + Retry-After and
// checks the retry loop turns them into eventual 200s.
func TestRetriesOn429(t *testing.T) {
	ts := startServer(t, server.Config{MaxInFlight: 2, AdmissionWait: 5 * time.Second})
	var mu sync.Mutex
	attempts := map[string]int{}
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.HasPrefix(req.URL.Path, "/v1/") {
			mu.Lock()
			attempts[req.URL.RawQuery]++
			n := attempts[req.URL.RawQuery]
			mu.Unlock()
			if n%3 != 0 {
				w.Header().Set("Retry-After", "0")
				w.WriteHeader(http.StatusTooManyRequests)
				return
			}
		}
		resp, err := http.Get(ts.URL + req.URL.RequestURI())
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}))
	t.Cleanup(proxy.Close)

	// One worker keeps the shared attempt counter aligned with the
	// per-request attempt sequence (attempts 1,2 → 429; 3 → pass).
	rep, err := Run(Config{
		BaseURL:     proxy.URL,
		Concurrency: 1,
		Requests:    20,
		RValues:     []float64{5},
		Seed:        3,
		MaxAttempts: 3,
		RetryBase:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status[200] != 20 {
		t.Fatalf("status map = %v, want 20 eventual 200s", rep.Status)
	}
	if rep.Retries != 40 {
		t.Fatalf("retries = %d, want 40 (two 429s per logical request)", rep.Retries)
	}
	if !strings.Contains(rep.String(), "retries") {
		t.Error("report does not mention retries")
	}
}

// TestRetriesExhausted caps attempts below what the proxy demands and
// checks the final 429 is surfaced rather than retried forever.
func TestRetriesExhausted(t *testing.T) {
	always429 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.HasPrefix(req.URL.Path, "/v1/") {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		_, _ = w.Write([]byte("{}")) // empty /metrics snapshot
	}))
	t.Cleanup(always429.Close)
	rep, err := Run(Config{
		BaseURL:     always429.URL,
		Concurrency: 1,
		Requests:    4,
		RValues:     []float64{5},
		MaxAttempts: 2,
		RetryBase:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status[429] != 4 {
		t.Fatalf("status map = %v, want 4 final 429s", rep.Status)
	}
	if rep.Retries != 4 {
		t.Fatalf("retries = %d, want 4 (one extra attempt each)", rep.Retries)
	}
}

func TestRunUnreachable(t *testing.T) {
	if _, err := Run(Config{BaseURL: "http://127.0.0.1:1", Requests: 1}); err == nil {
		t.Fatal("expected an error for an unreachable server")
	}
}

func TestPickerSkew(t *testing.T) {
	cfg := Config{RValues: []float64{4, 5, 6, 7}, Skew: 2.0}.withDefaults()
	p := newPicker(cfg, 42)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[p.next()]++
	}
	if counts[0] <= counts[3] {
		t.Errorf("zipf draw not skewed toward index 0: %v", counts)
	}
	// Skew ≤ 1 falls back to uniform.
	uni := newPicker(Config{RValues: []float64{4, 5}, Skew: 0}.withDefaults(), 42)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[uni.next()] = true
	}
	if len(seen) != 2 {
		t.Errorf("uniform picker visited %d of 2 indices", len(seen))
	}
}
