package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mio/internal/core"
	"mio/internal/core/labelstore"
	"mio/internal/fault"
)

// TestBatchedQueryParity floods a batch-execution server with a
// concurrent burst of shared-⌈r⌉ queries and checks every answer
// against a clean solo engine: batching must be invisible in the
// results, visible only in the Batched flag and the /metrics batch
// section.
func TestBatchedQueryParity(t *testing.T) {
	ds := testDataset(200, 7)
	s, err := New(ds, core.Options{}, Config{
		MaxInFlight:    2,
		DisableCache:   true, // every request must reach the batch engine
		BatchExecution: true,
		BatchWindow:    50 * time.Millisecond,
		BatchMaxSize:   64,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	clean, err := core.NewEngine(ds, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	type rk struct {
		r float64
		k int
	}
	// Two ceilings, several exact thresholds each, two k values.
	var specs []rk
	for _, r := range []float64{5.1, 5.5, 5.9, 6.0, 6.3, 6.8} {
		for k := 1; k <= 2; k++ {
			specs = append(specs, rk{r, k})
		}
	}
	oracle := map[rk]*core.Result{}
	for _, sp := range specs {
		res, err := clean.RunTopK(sp.r, sp.k)
		if err != nil {
			t.Fatal(err)
		}
		oracle[sp] = res
	}

	var wg sync.WaitGroup
	errs := make(chan string, 2*len(specs))
	for round := 0; round < 2; round++ {
		for _, sp := range specs {
			wg.Add(1)
			go func(sp rk) {
				defer wg.Done()
				var qr queryResponse
				url := fmt.Sprintf("/v1/query?r=%s&k=%d", rKey(sp.r), sp.k)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
				if rec.Code != http.StatusOK {
					errs <- fmt.Sprintf("(%g,%d): status %d: %s", sp.r, sp.k, rec.Code, rec.Body.String())
					return
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
					errs <- fmt.Sprintf("(%g,%d): %v", sp.r, sp.k, err)
					return
				}
				if !qr.Batched {
					errs <- fmt.Sprintf("(%g,%d): response not marked batched", sp.r, sp.k)
				}
				want := oracle[sp]
				got := qr.Result
				if got.Best != want.Best || len(got.TopK) != len(want.TopK) {
					errs <- fmt.Sprintf("(%g,%d): best %+v != solo %+v", sp.r, sp.k, got.Best, want.Best)
					return
				}
				for i := range want.TopK {
					if got.TopK[i] != want.TopK[i] {
						errs <- fmt.Sprintf("(%g,%d): top_k[%d] %+v != %+v", sp.r, sp.k, i, got.TopK[i], want.TopK[i])
					}
				}
				// Work counters are part of the parity contract too.
				if got.Stats.Candidates != want.Stats.Candidates ||
					got.Stats.Verified != want.Stats.Verified ||
					got.Stats.DistanceComps != want.Stats.DistanceComps ||
					got.Stats.AdjComputed != want.Stats.AdjComputed {
					errs <- fmt.Sprintf("(%g,%d): counters diverged: got cand=%d ver=%d dist=%d adj=%d, want %d/%d/%d/%d",
						sp.r, sp.k,
						got.Stats.Candidates, got.Stats.Verified, got.Stats.DistanceComps, got.Stats.AdjComputed,
						want.Stats.Candidates, want.Stats.Verified, want.Stats.DistanceComps, want.Stats.AdjComputed)
				}
			}(sp)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	var snap MetricsSnapshot
	get(t, h, "/metrics", &snap)
	if snap.Batch == nil {
		t.Fatal("/metrics has no batch section on a batch-execution server")
	}
	if want := uint64(2 * len(specs)); snap.Batch.Queries != want {
		t.Errorf("batch queries = %d, want %d", snap.Batch.Queries, want)
	}
	if snap.Batch.Epochs == 0 || snap.Batch.Groups == 0 {
		t.Errorf("batch stats show no batching: %+v", snap.Batch)
	}
	if len(s.slots) != cap(s.slots) {
		t.Errorf("engine pool leaked: %d of %d slots present", len(s.slots), cap(s.slots))
	}
}

// TestBatchedCacheHit: the result cache sits in front of the batch
// engine; an identical repeat is served without touching an epoch.
func TestBatchedCacheHit(t *testing.T) {
	s := newTestServer(t, Config{BatchExecution: true, BatchWindow: time.Millisecond})
	h := s.Handler()

	var first, second queryResponse
	if rec := get(t, h, "/v1/query?r=6&k=2", &first); rec.Code != http.StatusOK {
		t.Fatalf("query: status %d (body %q)", rec.Code, rec.Body.String())
	}
	if !first.Batched || first.Cached {
		t.Errorf("first query: batched=%v cached=%v, want true/false", first.Batched, first.Cached)
	}
	get(t, h, "/v1/query?r=6&k=2", &second)
	if !second.Cached || !second.Batched {
		t.Errorf("second query: batched=%v cached=%v, want true/true", second.Batched, second.Cached)
	}
	if second.Result.Best != first.Result.Best {
		t.Errorf("cached result diverged: %+v vs %+v", second.Result.Best, first.Result.Best)
	}

	var snap MetricsSnapshot
	get(t, h, "/metrics", &snap)
	if snap.Batch.Queries != 1 {
		t.Errorf("batch engine saw %d queries, want 1 (second was a cache hit)", snap.Batch.Queries)
	}
}

// TestBatchedChaosSurvival is the batch-mode storm: concurrent mixed
// traffic while verification panics, latency spikes and epoch-close
// faults misbehave underneath. A panicking group must fail only its
// epoch's members — the engine quarantines, the pool refills, and the
// batch engine keeps serving subsequent epochs exactly.
func TestBatchedChaosSurvival(t *testing.T) {
	reg := fault.New(17)
	reg.Arm(fault.Rule{Point: fault.PointVerification, Kind: fault.KindPanic, P: 0.05})
	reg.Arm(fault.Rule{Point: fault.PointVerification, Kind: fault.KindLatency, P: 0.2, Delay: 40 * time.Millisecond})
	reg.Arm(fault.Rule{Point: fault.PointEpochClose, Kind: fault.KindError, P: 0.05})

	ds := testDataset(200, 3)
	s, err := New(ds, core.Options{Labels: labelstore.NewStore()}, Config{
		MaxInFlight:    2,
		QueryTimeout:   30 * time.Millisecond,
		DisableCache:   true,
		BatchExecution: true,
		BatchWindow:    2 * time.Millisecond,
		BatchMaxSize:   16,
		Faults:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	var (
		mu       sync.Mutex
		statuses = map[int]int{}
	)
	const workers, perWorker = 8, 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Cluster thresholds on few ceilings so epochs really
				// form multi-member groups under fire.
				r := 4 + float64(i%3) + float64(w)*1e-4
				url := fmt.Sprintf("/v1/query?r=%s&k=%d", rKey(r), 1+i%2)
				if i%2 == 0 {
					url += "&degraded=1"
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
				mu.Lock()
				statuses[rec.Code]++
				mu.Unlock()
				switch rec.Code {
				case http.StatusOK:
					var qr queryResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
						t.Errorf("undecodable 200 body: %v", err)
					} else if qr.Result.Degraded {
						if iv := qr.Result.Interval; iv == nil || iv.LB > iv.UB {
							t.Errorf("malformed degraded result: %+v", qr.Result)
						}
					}
				case http.StatusTooManyRequests, http.StatusInternalServerError,
					http.StatusServiceUnavailable, http.StatusGatewayTimeout:
					// Expected chaos outcomes.
				default:
					t.Errorf("unexpected status %d: %s", rec.Code, rec.Body.String())
				}
			}
		}(w)
	}
	wg.Wait()

	// Detached members answer their clients while their group is still
	// running on a pool engine; give in-flight groups a moment to
	// return their slots before asserting the pool is whole.
	deadline := time.Now().Add(10 * time.Second)
	for len(s.slots) != cap(s.slots) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if len(s.slots) != cap(s.slots) {
		t.Errorf("engine pool leaked: %d of %d slots present", len(s.slots), cap(s.slots))
	}
	if statuses[http.StatusOK] == 0 {
		t.Errorf("no request succeeded under chaos: %v", statuses)
	}

	// The storm is probabilistic (scheduling decides how many requests
	// reach verification before their deadline); force one certain
	// group panic so the quarantine-layering assertions always have a
	// subject.
	reg.Clear(fault.PointVerification)
	reg.Clear(fault.PointEpochClose)
	s.cfg.QueryTimeout = 30 * time.Second
	reg.Arm(fault.Rule{Point: fault.PointVerification, Kind: fault.KindPanic, P: 1})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/query?r=9&k=1", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("forced verification panic: status %d, want 500: %s", rec.Code, rec.Body.String())
	}
	reg.Clear(fault.PointVerification)

	var snap MetricsSnapshot
	get(t, h, "/metrics", &snap)
	// Engine panics surface through withEngine (quarantine) and are
	// absorbed by the batch engine's group recovery — they never reach
	// the HTTP panic middleware.
	if snap.Quarantined == 0 {
		t.Error("verification panic never quarantined: quarantined_total = 0")
	}
	if snap.Panics != 0 {
		t.Errorf("handler panic_total = %d: batch group panics must not escape to the HTTP layer", snap.Panics)
	}
	if snap.Batch == nil || snap.Batch.Panics != snap.Quarantined {
		t.Errorf("batch panics (%+v) != quarantined engines (%d): each group panic quarantines exactly one engine",
			snap.Batch, snap.Quarantined)
	}
	if snap.Batch.Failures == 0 && reg.Fired(fault.PointEpochClose) > 0 {
		// Epoch-close errors fail whole epochs before any group runs,
		// so they land in member errors, not the failures counter; just
		// confirm the point actually fired under the storm.
		t.Logf("epoch_close fired %d times with no group failures", reg.Fired(fault.PointEpochClose))
	}

	// Faults disarmed above: verify exactness survives — the next
	// epochs must serve bitwise-exact answers on the refilled pool.
	clean, err := core.NewEngine(ds, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.RunTopK(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*cap(s.slots); i++ {
		var qr queryResponse
		if rec := get(t, h, "/v1/query?r=5&k=1", &qr); rec.Code != http.StatusOK {
			t.Fatalf("post-chaos query %d: status %d: %s", i, rec.Code, rec.Body.String())
		} else if qr.Result.Best.Score != want.Best.Score || qr.Result.Degraded {
			t.Fatalf("post-chaos query %d: got %+v, want exact score %d", i, qr.Result.Best, want.Best.Score)
		}
	}
}
