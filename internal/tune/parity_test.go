package tune

import (
	"reflect"
	"runtime"
	"testing"

	"mio/internal/core"
	"mio/internal/data"
)

// TestTuningAnswerInvariance is the auto-tuner's safety contract over
// real datasets (standard + adversarial, small scale):
//
//  1. The tuned engine returns the identical top-k as the hand-default
//     engine — tuning can never change an answer.
//  2. Every execution knob (Workers, LB, UB, FreezeMinPoints) is
//     bitwise dist_comps-invariant: at fixed dimensionality the tuned
//     config reports exactly the hand-default counter.
//  3. The one declarative knob, Dims, is applied only when the
//     profiler proves exact planarity, and may only *remove* distance
//     computations (tighter r/√2 lower bounds) — never add any, so
//     the deterministic 1.0× bench gate keeps holding.
func TestTuningAnswerInvariance(t *testing.T) {
	sets := data.Standard(0.1)
	for name, ds := range data.Adversarial(0.1) {
		sets[name] = ds
	}
	for name, ds := range sets {
		prof := Profiler(ds)
		for _, procs := range []int{1, 4} {
			tn := Select(prof, Env{MaxProcs: procs, ExpectedRs: []float64{6, 8}})
			for _, r := range []float64{6, 8} {
				hand, err := core.NewEngine(ds, core.Options{Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				want, err := hand.RunTopK(r, 3)
				if err != nil {
					t.Fatal(err)
				}
				tuned, err := core.NewEngine(ds, tn.Opts)
				if err != nil {
					t.Fatal(err)
				}
				got, err := tuned.RunTopK(r, 3)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.TopK, want.TopK) {
					t.Errorf("%s procs=%d r=%g: tuned topk %v, want %v (tuning %s)",
						name, procs, r, got.TopK, want.TopK, tn.String())
				}
				if tn.Opts.Dims != 2 {
					if got.Stats.DistanceComps != want.Stats.DistanceComps {
						t.Errorf("%s procs=%d r=%g: tuned dist_comps %d, want %d bitwise (tuning %s)",
							name, procs, r, got.Stats.DistanceComps, want.Stats.DistanceComps, tn.String())
					}
				} else if got.Stats.DistanceComps > want.Stats.DistanceComps {
					t.Errorf("%s procs=%d r=%g: planar tuning INCREASED dist_comps %d > %d (tuning %s)",
						name, procs, r, got.Stats.DistanceComps, want.Stats.DistanceComps, tn.String())
				}
			}
		}
	}
}

// TestSelectOnRealProfilesIsStable pins the tuner's choices on the
// shipped datasets: a threshold drift that flipped a decision on a
// known workload should fail loudly here, not surface as a silent
// perf change in the tune-gate.
func TestSelectOnRealProfilesIsStable(t *testing.T) {
	env := Env{MaxProcs: 4}
	adv := data.Adversarial(0.15)

	sparse := Select(Profiler(adv["Sparse"]), env)
	if sparse.Opts.Dims != 2 || sparse.Opts.FreezeMinPoints != 128 {
		t.Errorf("Sparse tuning drifted: %s", sparse.String())
	}
	onecell := Select(Profiler(adv["OneCell"]), env)
	if onecell.Opts.FreezeMinPoints != 8 {
		t.Errorf("OneCell tuning drifted: %s", onecell.String())
	}
	commute := Select(Profiler(adv["Commute"]), env)
	if commute.Opts.Dims != 2 {
		t.Errorf("Commute tuning drifted: %s", commute.String())
	}
	power := Select(Profiler(adv["PowerSize"]), env)
	if power.Opts.UB != core.UBGreedyP {
		t.Errorf("PowerSize tuning drifted: %s", power.String())
	}

	std := data.Standard(0.15)
	bird := Select(Profiler(std["Bird"]), env)
	if bird.Opts.Dims != 2 {
		t.Errorf("Bird is planar and must tune to 2-D: %s", bird.String())
	}
	neuron := Select(Profiler(std["Neuron"]), env)
	if neuron.Opts.Dims != 3 {
		t.Errorf("Neuron is volumetric and must stay 3-D: %s", neuron.String())
	}
}

// TestSelectUsesRuntimeProcs is a smoke check that the conventional
// call site (Env{MaxProcs: runtime.GOMAXPROCS(0)}) yields a legal
// worker count for the host.
func TestSelectUsesRuntimeProcs(t *testing.T) {
	tn := Select(baseProfile(), Env{MaxProcs: runtime.GOMAXPROCS(0)})
	if tn.Opts.Workers < 1 || tn.Opts.Workers > runtime.GOMAXPROCS(0) {
		t.Fatalf("workers %d outside [1, %d]", tn.Opts.Workers, runtime.GOMAXPROCS(0))
	}
}
