// Package tune is the workload-aware auto-tuner: a build-time dataset
// profiler (Profile) plus a heuristic knob selector (Select) that maps
// the measured spatial features — skew, density, extent, object-size
// distribution, effective dimensionality — to a full engine/server
// configuration. Every knob the selector touches is answer-invariant
// by construction (DESIGN.md §16): whichever Tuning it picks, queries
// return the identical top-k and the identical dist_comps counter, so
// tuning can never trade correctness or the deterministic bench gate
// for speed.
package tune

import (
	"fmt"
	"math"
	"sort"

	"mio/internal/data"
)

// probeGridSide is the per-axis resolution of the occupancy probe
// grid. The grid is laid over the dataset's bounding box, so the
// histogram measures *relative* spatial skew independent of units;
// 32 per axis keeps the worst case at 32³ cells — a few hundred KiB of
// counters — while still resolving hotspots a query grid would see.
const probeGridSide = 32

// histBuckets is the number of log2 buckets in the occupancy
// histogram: bucket b counts probe cells holding [2^b, 2^(b+1))
// points, with the last bucket open-ended.
const histBuckets = 16

// Profile is the serializable statistics record the profiler computes
// in one pass (plus sorts) over a loaded dataset. It is embedded in
// miobench snapshots so every benchmark result pins the dataset shape
// it ran against, and reported by miosrv /metrics under -autotune.
type Profile struct {
	Dataset string `json:"dataset,omitempty"`
	Objects int    `json:"objects"`
	Points  int    `json:"points"`

	// Object-size (point-count) distribution quantiles.
	AvgPoints float64 `json:"avg_points"`
	SizeP10   int     `json:"size_p10"`
	SizeP50   int     `json:"size_p50"`
	SizeP90   int     `json:"size_p90"`
	SizeP99   int     `json:"size_p99"`
	SizeMax   int     `json:"size_max"`

	// Spatial extent and density. Density is points per unit of
	// occupied volume (area when planar): extents of zero span —
	// degenerate axes — are treated as 1 so the quotient stays finite.
	SpanX   float64 `json:"span_x"`
	SpanY   float64 `json:"span_y"`
	SpanZ   float64 `json:"span_z"`
	Density float64 `json:"density"`

	// EffectiveDims is 2 iff every point carries the identical Z
	// (exactly planar data) and 3 otherwise. The 2-D claim must be
	// exact: it widens the small-grid cells from r/√3 to r/√2, which is
	// only sound when same-cell point pairs have no Z separation.
	EffectiveDims int `json:"effective_dims"`

	// Cell-occupancy statistics over the probe grid. OccupancyHist[b]
	// counts occupied cells holding [2^b, 2^(b+1)) points.
	OccupiedCells  int     `json:"occupied_cells"`
	AvgCellPoints  float64 `json:"avg_cell_points"`
	OccupancyHist  []int   `json:"occupancy_hist"`
	TopDecileShare float64 `json:"top_decile_share"` // skew: point share of the top-10% fullest cells
	MaxCellShare   float64 `json:"max_cell_share"`   // point share of the single fullest cell
}

// SizeSkew returns the P99/P50 object-size ratio, the selector's
// size-skew signal (≥ 1; 1 means uniform sizes).
func (p *Profile) SizeSkew() float64 {
	if p.SizeP50 < 1 {
		return 1
	}
	return float64(p.SizeP99) / float64(p.SizeP50)
}

// String renders the one-line summary used by miosrv's -autotune log.
func (p *Profile) String() string {
	return fmt.Sprintf("objects=%d points=%d dims=%d avg_pts=%.1f size_p50/p99=%d/%d span=%.4gx%.4gx%.4g density=%.4g cells=%d top_decile=%.2f max_cell=%.3f",
		p.Objects, p.Points, p.EffectiveDims, p.AvgPoints,
		p.SizeP50, p.SizeP99, p.SpanX, p.SpanY, p.SpanZ, p.Density,
		p.OccupiedCells, p.TopDecileShare, p.MaxCellShare)
}

// Profiler computes the dataset Profile. The cost is two linear scans
// (bounding box, then probe-cell counts) plus an O(n log n) sort of
// the per-object sizes and an O(c log c) sort of the occupied-cell
// counts — cheap enough to run at every dataset load or swap.
func Profiler(ds *data.Dataset) *Profile {
	p := &Profile{
		Dataset:       ds.Name,
		Objects:       ds.N(),
		EffectiveDims: 3,
		OccupancyHist: make([]int, histBuckets),
	}
	if p.Objects == 0 {
		p.EffectiveDims = 2
		return p
	}

	// Pass 1: bounding box, sizes, planarity.
	box := ds.Bounds()
	sizes := make([]int, 0, p.Objects)
	planar := true
	z0 := ds.Objects[0].Pts[0].Z
	for i := range ds.Objects {
		pts := ds.Objects[i].Pts
		sizes = append(sizes, len(pts))
		p.Points += len(pts)
		if planar {
			for _, pt := range pts {
				if pt.Z != z0 {
					planar = false
					break
				}
			}
		}
	}
	if planar {
		p.EffectiveDims = 2
	}
	p.AvgPoints = float64(p.Points) / float64(p.Objects)
	sort.Ints(sizes)
	q := func(f float64) int { return sizes[minInt(int(f*float64(len(sizes))), len(sizes)-1)] }
	p.SizeP10, p.SizeP50, p.SizeP90, p.SizeP99 = q(0.10), q(0.50), q(0.90), q(0.99)
	p.SizeMax = sizes[len(sizes)-1]

	p.SpanX = box.Max.X - box.Min.X
	p.SpanY = box.Max.Y - box.Min.Y
	p.SpanZ = box.Max.Z - box.Min.Z
	vol := 1.0
	for _, s := range []float64{p.SpanX, p.SpanY, p.SpanZ} {
		if s > 0 {
			vol *= s
		}
	}
	p.Density = float64(p.Points) / vol

	// Pass 2: occupancy counts over the probe grid. Degenerate axes
	// collapse to a single stripe of cells.
	stepX := p.SpanX / probeGridSide
	stepY := p.SpanY / probeGridSide
	stepZ := p.SpanZ / probeGridSide
	cell := func(v, min, step float64) int {
		if step <= 0 {
			return 0
		}
		c := int((v - min) / step)
		return minInt(c, probeGridSide-1) // max coordinate lands inside
	}
	counts := make(map[int]int)
	for i := range ds.Objects {
		for _, pt := range ds.Objects[i].Pts {
			k := (cell(pt.X, box.Min.X, stepX)*probeGridSide+
				cell(pt.Y, box.Min.Y, stepY))*probeGridSide +
				cell(pt.Z, box.Min.Z, stepZ)
			counts[k]++
		}
	}
	p.OccupiedCells = len(counts)
	p.AvgCellPoints = float64(p.Points) / float64(maxInt(p.OccupiedCells, 1))
	occ := make([]int, 0, len(counts))
	for _, c := range counts {
		occ = append(occ, c)
		b := minInt(log2Floor(c), histBuckets-1)
		p.OccupancyHist[b]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(occ)))
	decile := maxInt(len(occ)/10, 1)
	top := 0
	for _, c := range occ[:decile] {
		top += c
	}
	p.TopDecileShare = float64(top) / float64(p.Points)
	p.MaxCellShare = float64(occ[0]) / float64(p.Points)
	return p
}

// ExpectedCellPoints estimates how many points a verification-phase
// large-grid cell (width ⌈r⌉) would hold at radius r, assuming the
// profile's average density: the selector's signal for whether SoA
// freezing will pay off. Planar data scales by r², volumetric by r³.
func (p *Profile) ExpectedCellPoints(r float64) float64 {
	w := math.Ceil(r)
	if p.EffectiveDims == 2 {
		return p.Density * w * w
	}
	return p.Density * w * w * w
}

func log2Floor(v int) int {
	b := 0
	for v > 1 {
		v >>= 1
		b++
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
