package tune

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"mio/internal/data"
	"mio/internal/geom"
)

// grid constructs a dataset of single-point objects at the given
// coordinates — the sharpest way to pin occupancy statistics.
func gridDataset(pts []geom.Point) *data.Dataset {
	ds := &data.Dataset{Name: "grid"}
	for i, p := range pts {
		ds.Objects = append(ds.Objects, data.Object{ID: i, Pts: []geom.Point{p}})
	}
	return ds
}

func TestProfilerBasicCounts(t *testing.T) {
	ds := &data.Dataset{Name: "basic"}
	sizes := []int{1, 2, 3, 4, 100}
	id := 0
	for _, n := range sizes {
		pts := make([]geom.Point, n)
		for j := range pts {
			pts[j] = geom.Pt(float64(id), float64(j), 1)
		}
		ds.Objects = append(ds.Objects, data.Object{ID: id, Pts: pts})
		id++
	}
	p := Profiler(ds)
	if p.Objects != 5 || p.Points != 110 {
		t.Fatalf("objects/points = %d/%d, want 5/110", p.Objects, p.Points)
	}
	if p.SizeMax != 100 || p.SizeP50 != 3 {
		t.Fatalf("size max/p50 = %d/%d, want 100/3", p.SizeMax, p.SizeP50)
	}
	if p.EffectiveDims != 2 {
		t.Fatalf("constant-Z data must profile as 2-D, got %d", p.EffectiveDims)
	}
	if math.Abs(p.AvgPoints-22) > 1e-9 {
		t.Fatalf("avg points = %g, want 22", p.AvgPoints)
	}
}

func TestProfilerPlanarDetectionIsExact(t *testing.T) {
	// One point off-plane by any amount must flip the dataset to 3-D:
	// the 2-D grid widening is only sound for exactly planar data.
	pts := []geom.Point{geom.Pt(0, 0, 5), geom.Pt(10, 0, 5), geom.Pt(0, 10, 5.000001)}
	if p := Profiler(gridDataset(pts)); p.EffectiveDims != 3 {
		t.Fatalf("near-planar data profiled as %d-D, want 3", p.EffectiveDims)
	}
	pts[2].Z = 5
	if p := Profiler(gridDataset(pts)); p.EffectiveDims != 2 {
		t.Fatalf("planar data at Z=5 profiled as %d-D, want 2", p.EffectiveDims)
	}
}

func TestProfilerSkewStatistics(t *testing.T) {
	// 1000 points in one corner cell, 10 spread along the diagonal:
	// near-total mass in the fullest cell.
	pts := make([]geom.Point, 0, 1010)
	for i := 0; i < 1000; i++ {
		pts = append(pts, geom.Pt(float64(i%10)*0.01, float64(i/10)*0.01, 0))
	}
	for i := 1; i <= 10; i++ {
		pts = append(pts, geom.Pt(float64(i)*100, float64(i)*100, 0))
	}
	p := Profiler(gridDataset(pts))
	if p.MaxCellShare < 0.9 {
		t.Fatalf("hotspot max cell share = %g, want ≥ 0.9", p.MaxCellShare)
	}
	if p.TopDecileShare < p.MaxCellShare {
		t.Fatalf("top decile share %g < max cell share %g", p.TopDecileShare, p.MaxCellShare)
	}
	// Uniform single-occupancy control: every cell holds one point, so
	// the top decile holds ≈ 10% of the mass.
	u := make([]geom.Point, 0, probeGridSide*probeGridSide)
	for x := 0; x < probeGridSide; x++ {
		for y := 0; y < probeGridSide; y++ {
			u = append(u, geom.Pt(float64(x)+0.5, float64(y)+0.5, 0))
		}
	}
	up := Profiler(gridDataset(u))
	if up.TopDecileShare > 0.12 {
		t.Fatalf("uniform top decile share = %g, want ≈ 0.10", up.TopDecileShare)
	}
	if up.MaxCellShare > 0.01 {
		t.Fatalf("uniform max cell share = %g, want tiny", up.MaxCellShare)
	}
	if up.OccupiedCells != probeGridSide*probeGridSide {
		t.Fatalf("uniform occupied cells = %d, want %d", up.OccupiedCells, probeGridSide*probeGridSide)
	}
}

func TestProfilerOccupancyHistogram(t *testing.T) {
	// 4 points in one cell, 1 in a far one: buckets log2(4)=2 and 0.
	pts := []geom.Point{
		geom.Pt(0, 0, 0), geom.Pt(0.01, 0, 0), geom.Pt(0, 0.01, 0), geom.Pt(0.01, 0.01, 0),
		geom.Pt(1000, 1000, 0),
	}
	p := Profiler(gridDataset(pts))
	if p.OccupiedCells != 2 {
		t.Fatalf("occupied cells = %d, want 2", p.OccupiedCells)
	}
	if p.OccupancyHist[0] != 1 || p.OccupancyHist[2] != 1 {
		t.Fatalf("occupancy hist = %v, want buckets 0 and 2 set", p.OccupancyHist)
	}
}

func TestProfilerDeterministicAndSerializable(t *testing.T) {
	ds := data.GenUniform(data.UniformConfig{N: 200, M: 8, FieldSize: 500, Spread: 12, Seed: 14})
	a, b := Profiler(ds), Profiler(ds)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("profiler is not deterministic over the same dataset")
	}
	blob, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Profile
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*a, back) {
		t.Fatal("profile does not round-trip through JSON")
	}
}

func TestExpectedCellPoints(t *testing.T) {
	// 1000 points over a 100×100 plane → density 0.1/unit². At r=10 a
	// query cell is 10×10 → 10 expected points; volumetric scales r³.
	pts := make([]geom.Point, 0, 1000)
	for i := 0; i < 1000; i++ {
		pts = append(pts, geom.Pt(float64(i%100), float64(i/10), 0))
	}
	p := Profiler(gridDataset(pts))
	if p.EffectiveDims != 2 {
		t.Fatalf("dims = %d, want 2", p.EffectiveDims)
	}
	got := p.ExpectedCellPoints(10)
	want := p.Density * 100
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("expected cell points = %g, want %g", got, want)
	}
	p.EffectiveDims = 3
	if g := p.ExpectedCellPoints(10); math.Abs(g-p.Density*1000) > 1e-9 {
		t.Fatalf("volumetric cell points = %g, want %g", g, p.Density*1000)
	}
}

func TestProfilerEmptyDataset(t *testing.T) {
	p := Profiler(&data.Dataset{Name: "empty"})
	if p.Objects != 0 || p.Points != 0 {
		t.Fatalf("empty dataset profile: %+v", p)
	}
}
