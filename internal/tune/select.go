package tune

import (
	"fmt"
	"strings"
	"time"

	"mio/internal/core"
)

// Env is the deployment context the selector combines with the
// dataset profile: the core budget and the radius range queries are
// expected to use (the server's and bench suite's sweep when nothing
// better is known).
type Env struct {
	// MaxProcs is the core budget, normally runtime.GOMAXPROCS(0).
	MaxProcs int
	// ExpectedRs is the anticipated radius range; nil falls back to
	// DefaultRs. Only the min/max matter.
	ExpectedRs []float64
}

// DefaultRs is the radius sweep assumed when the caller has no better
// information — the bench suite's default sweep.
var DefaultRs = []float64{4, 6, 8, 10}

// Tuning is a full knob assignment: the engine options plus the
// serving-layer knobs the profile informs. Every field is
// answer-invariant — see DESIGN.md §16 for the argument per knob.
type Tuning struct {
	Opts core.Options `json:"-"`

	// Serialized views of the chosen engine knobs for /metrics.
	Workers         int    `json:"workers"`
	Dims            int    `json:"dims"`
	LB              string `json:"lb"`
	UB              string `json:"ub"`
	FreezeMinPoints int    `json:"freeze_min_points"`

	// PoolSize is the suggested server engine-pool size (Config
	// MaxInFlight): enough engines to keep every core busy given each
	// engine's worker count.
	PoolSize int `json:"pool_size"`

	// Batch gather knobs for the cell-major execution engine.
	BatchWindow  time.Duration `json:"batch_window_ns"`
	BatchMaxSize int           `json:"batch_max_size"`

	// Rules names the heuristic rules that fired, in application
	// order — the explanation trail logged by miosrv -autotune.
	Rules []string `json:"rules"`
}

// String renders the one-line summary used by miosrv's -autotune log.
func (t *Tuning) String() string {
	return fmt.Sprintf("workers=%d dims=%d lb=%s ub=%s freeze_min=%d pool=%d batch_window=%s batch_max=%d rules=[%s]",
		t.Workers, t.Dims, t.LB, t.UB, t.FreezeMinPoints, t.PoolSize,
		t.BatchWindow, t.BatchMaxSize, strings.Join(t.Rules, " "))
}

// Selector thresholds. Each backs exactly one named rule below; the
// rule tests in select_test.go pin every threshold against synthetic
// profiles on both sides.
const (
	// tinyPoints: below this many total points a query is so short
	// that §IV's parallel phases cost more in coordination than they
	// save; stay on the single-core §III path.
	tinyPoints = 100_000
	// fewObjectsPerCore: with fewer objects than this per core, an
	// object partition cannot balance; split inside objects instead.
	fewObjectsPerCore = 64
	// sizeSkewHeavy: P99/P50 object-size ratio above which size-based
	// (within-object) partitions beat object-count-based ones.
	sizeSkewHeavy = 8.0
	// skewedTopDecile: top-decile cell share above which the dataset
	// counts as heavily skewed (uniform data scores ≈ 0.10).
	skewedTopDecile = 0.5
	// freezeHotCellPoints: expected points per query cell above which
	// cells freeze into SoA form eagerly (threshold 8).
	freezeHotCellPoints = 256
	// freezeSparseCellPoints: expected points per query cell below
	// which freezing is deferred (threshold 128) — flattening a cell
	// that barely clears the default threshold never pays back.
	freezeSparseCellPoints = 16
	// batchBigPoints: total points above which one engine pass is slow
	// enough that the batch gather window widens to collect more
	// sharers per epoch.
	batchBigPoints = 500_000
)

// Select maps a profile and environment to a Tuning via the heuristic
// table of DESIGN.md §16. Determinism: same profile + env, same
// Tuning. Every rule is unit-tested in isolation against synthetic
// profiles.
func Select(p *Profile, env Env) Tuning {
	if env.MaxProcs < 1 {
		env.MaxProcs = 1
	}
	rs := env.ExpectedRs
	if len(rs) == 0 {
		rs = DefaultRs
	}
	rMin, rMax := rs[0], rs[0]
	for _, r := range rs[1:] {
		if r < rMin {
			rMin = r
		}
		if r > rMax {
			rMax = r
		}
	}

	t := Tuning{}
	rule := func(name string) { t.Rules = append(t.Rules, name) }

	// --- dimensionality ---
	t.Opts.Dims = 3
	if p.EffectiveDims == 2 {
		// planar-2d: exactly-planar data widens small-grid cells from
		// r/√3 to r/√2 — tighter lower bounds, strictly fewer
		// candidates, never more dist_comps.
		t.Opts.Dims = 2
		rule("planar-2d")
	}

	// --- worker count ---
	switch {
	case env.MaxProcs < 2:
		// single-core-host: no cores to parallelise over.
		t.Opts.Workers = 1
		rule("single-core-host")
	case p.Points < tinyPoints:
		// single-core-tiny: coordination overhead exceeds the work.
		t.Opts.Workers = 1
		rule("single-core-tiny")
	default:
		// parallel-large: §IV parallel phases on every core.
		t.Opts.Workers = env.MaxProcs
		rule("parallel-large")
	}

	// --- lower-bounding partition (only observable when Workers > 1,
	// but always selected so the choice is deterministic) ---
	if p.Objects < fewObjectsPerCore*maxInt(t.Opts.Workers, 1) || p.SizeSkew() >= sizeSkewHeavy {
		// lb-split-keylists: few huge objects (or heavy size skew) make
		// object-count partitions unbalanceable; divide each object's
		// key list across cores instead (§IV LB-hash-p).
		t.Opts.LB = core.LBHashP
		rule("lb-split-keylists")
	} else {
		// lb-partition-objects: many comparable objects balance well
		// under the greedy object partition (§IV LB-greedy-d).
		t.Opts.LB = core.LBGreedyD
		rule("lb-partition-objects")
	}

	// --- upper-bounding partition ---
	if p.SizeSkew() < sizeSkewHeavy && p.TopDecileShare < skewedTopDecile {
		// ub-partition-objects: uniform sizes and low spatial skew make
		// per-object costs comparable, so the cheap |P_i| partition
		// (UB-greedy-d) balances without the Eq. 3 cost model.
		t.Opts.UB = core.UBGreedyD
		rule("ub-partition-objects")
	} else {
		// ub-cost-model: skew in either dimension needs the Eq. 3
		// cost-based point-group partition (UB-greedy-p).
		t.Opts.UB = core.UBGreedyP
		rule("ub-cost-model")
	}

	// --- freeze threshold ---
	t.Opts.FreezeMinPoints = core.DefaultFreezeMinPoints
	if p.ExpectedCellPoints(rMax) >= freezeHotCellPoints || p.MaxCellShare >= 0.5 {
		// freeze-hot-cells: dense query cells (or one cell holding half
		// the dataset) amortise SoA flattening almost immediately;
		// freeze small cells too.
		t.Opts.FreezeMinPoints = 8
		rule("freeze-hot-cells")
	} else if p.ExpectedCellPoints(rMin) < freezeSparseCellPoints && p.MaxCellShare < 0.5 {
		// freeze-late-sparse: sparse cells are probed a handful of
		// times; raise the threshold so flattening cost is only paid by
		// cells that really concentrate work.
		t.Opts.FreezeMinPoints = 128
		rule("freeze-late-sparse")
	}

	// --- server pool ---
	// pool-fill-cores: enough concurrent engines to cover every core,
	// given each engine burns Workers cores.
	t.PoolSize = maxInt(env.MaxProcs/maxInt(t.Opts.Workers, 1), 1)
	rule("pool-fill-cores")

	// --- batch gather window ---
	if p.Points >= batchBigPoints {
		// batch-wide-window: slow epochs amortise a longer gather.
		t.BatchWindow = 5 * time.Millisecond
		t.BatchMaxSize = 512
		rule("batch-wide-window")
	} else {
		// batch-narrow-window: fast epochs keep latency low.
		t.BatchWindow = 2 * time.Millisecond
		t.BatchMaxSize = 256
		rule("batch-narrow-window")
	}

	t.Workers = t.Opts.Workers
	t.Dims = t.Opts.Dims
	t.LB = t.Opts.LB.String()
	t.UB = t.Opts.UB.String()
	t.FreezeMinPoints = t.Opts.FreezeMinPoints
	return t
}
