package tune

import (
	"reflect"
	"testing"
	"time"

	"mio/internal/core"
)

// baseProfile is a moderate, unskewed 3-D profile that fires none of
// the special-case rules on a multi-core host; each rule test perturbs
// exactly the features its rule reads.
func baseProfile() *Profile {
	return &Profile{
		Objects: 10_000, Points: 200_000, AvgPoints: 20,
		SizeP10: 16, SizeP50: 20, SizeP90: 25, SizeP99: 30, SizeMax: 40,
		SpanX: 1000, SpanY: 1000, SpanZ: 1000,
		Density:       0.0002, // 0.2 points per 10³ cell at r=10
		EffectiveDims: 3,
		OccupiedCells: 20_000, AvgCellPoints: 10,
		TopDecileShare: 0.15, MaxCellShare: 0.001,
	}
}

func fired(t Tuning, rule string) bool {
	for _, r := range t.Rules {
		if r == rule {
			return true
		}
	}
	return false
}

func TestRulePlanar2D(t *testing.T) {
	p := baseProfile()
	p.EffectiveDims = 2
	got := Select(p, Env{MaxProcs: 4})
	if got.Opts.Dims != 2 || !fired(got, "planar-2d") {
		t.Fatalf("planar profile: dims=%d rules=%v", got.Opts.Dims, got.Rules)
	}
	p.EffectiveDims = 3
	if got := Select(p, Env{MaxProcs: 4}); got.Opts.Dims != 3 || fired(got, "planar-2d") {
		t.Fatalf("volumetric profile: dims=%d rules=%v", got.Opts.Dims, got.Rules)
	}
}

func TestRuleWorkerCount(t *testing.T) {
	p := baseProfile()
	if got := Select(p, Env{MaxProcs: 1}); got.Opts.Workers != 1 || !fired(got, "single-core-host") {
		t.Fatalf("1-core host: workers=%d rules=%v", got.Opts.Workers, got.Rules)
	}
	p.Points = tinyPoints - 1
	if got := Select(p, Env{MaxProcs: 8}); got.Opts.Workers != 1 || !fired(got, "single-core-tiny") {
		t.Fatalf("tiny dataset: workers=%d rules=%v", got.Opts.Workers, got.Rules)
	}
	p.Points = tinyPoints
	if got := Select(p, Env{MaxProcs: 8}); got.Opts.Workers != 8 || !fired(got, "parallel-large") {
		t.Fatalf("large dataset: workers=%d rules=%v", got.Opts.Workers, got.Rules)
	}
}

func TestRuleLBPartition(t *testing.T) {
	p := baseProfile()
	if got := Select(p, Env{MaxProcs: 4}); got.Opts.LB != core.LBGreedyD || !fired(got, "lb-partition-objects") {
		t.Fatalf("many comparable objects: lb=%v rules=%v", got.Opts.LB, got.Rules)
	}
	few := baseProfile()
	few.Objects = 100 // < 64 per core on 4 cores
	if got := Select(few, Env{MaxProcs: 4}); got.Opts.LB != core.LBHashP || !fired(got, "lb-split-keylists") {
		t.Fatalf("few objects: lb=%v rules=%v", got.Opts.LB, got.Rules)
	}
	skew := baseProfile()
	skew.SizeP99 = skew.SizeP50 * 10 // heavy size skew
	if got := Select(skew, Env{MaxProcs: 4}); got.Opts.LB != core.LBHashP || !fired(got, "lb-split-keylists") {
		t.Fatalf("size-skewed objects: lb=%v rules=%v", got.Opts.LB, got.Rules)
	}
}

func TestRuleUBPartition(t *testing.T) {
	p := baseProfile()
	if got := Select(p, Env{MaxProcs: 4}); got.Opts.UB != core.UBGreedyD || !fired(got, "ub-partition-objects") {
		t.Fatalf("uniform profile: ub=%v rules=%v", got.Opts.UB, got.Rules)
	}
	hot := baseProfile()
	hot.TopDecileShare = 0.8 // heavy spatial skew
	if got := Select(hot, Env{MaxProcs: 4}); got.Opts.UB != core.UBGreedyP || !fired(got, "ub-cost-model") {
		t.Fatalf("spatially skewed profile: ub=%v rules=%v", got.Opts.UB, got.Rules)
	}
	szskew := baseProfile()
	szskew.SizeP99 = szskew.SizeP50 * 10
	if got := Select(szskew, Env{MaxProcs: 4}); got.Opts.UB != core.UBGreedyP || !fired(got, "ub-cost-model") {
		t.Fatalf("size-skewed profile: ub=%v rules=%v", got.Opts.UB, got.Rules)
	}
}

func TestRuleFreezeThreshold(t *testing.T) {
	p := baseProfile()
	// Base: 0.2 expected points per cell at the default r sweep →
	// sparse → raised threshold.
	if got := Select(p, Env{MaxProcs: 4}); got.Opts.FreezeMinPoints != 128 || !fired(got, "freeze-late-sparse") {
		t.Fatalf("sparse profile: freeze=%d rules=%v", got.Opts.FreezeMinPoints, got.Rules)
	}
	dense := baseProfile()
	dense.Density = 1.0 // 1000 points per 10³ cell at r=10
	if got := Select(dense, Env{MaxProcs: 4}); got.Opts.FreezeMinPoints != 8 || !fired(got, "freeze-hot-cells") {
		t.Fatalf("dense profile: freeze=%d rules=%v", got.Opts.FreezeMinPoints, got.Rules)
	}
	onecell := baseProfile()
	onecell.MaxCellShare = 0.9 // all mass in one probe cell
	if got := Select(onecell, Env{MaxProcs: 4}); got.Opts.FreezeMinPoints != 8 || !fired(got, "freeze-hot-cells") {
		t.Fatalf("one-cell profile: freeze=%d rules=%v", got.Opts.FreezeMinPoints, got.Rules)
	}
	mid := baseProfile()
	mid.Density = 0.2 // 25 at r=5 min … 200 at r=10 max: neither rule
	if got := Select(mid, Env{MaxProcs: 4, ExpectedRs: []float64{5, 10}}); got.Opts.FreezeMinPoints != core.DefaultFreezeMinPoints {
		t.Fatalf("middle-density profile: freeze=%d rules=%v", got.Opts.FreezeMinPoints, got.Rules)
	}
}

func TestRulePoolSize(t *testing.T) {
	p := baseProfile()
	p.Points = 10 * tinyPoints // parallel-large fires → workers = procs
	if got := Select(p, Env{MaxProcs: 8}); got.PoolSize != 1 {
		t.Fatalf("parallel engines: pool=%d, want 1", got.PoolSize)
	}
	p.Points = tinyPoints - 1 // single-core engines → pool covers cores
	if got := Select(p, Env{MaxProcs: 8}); got.PoolSize != 8 {
		t.Fatalf("serial engines: pool=%d, want 8", got.PoolSize)
	}
}

func TestRuleBatchWindow(t *testing.T) {
	p := baseProfile()
	if got := Select(p, Env{MaxProcs: 4}); got.BatchWindow != 2*time.Millisecond || got.BatchMaxSize != 256 || !fired(got, "batch-narrow-window") {
		t.Fatalf("small dataset: window=%v max=%d rules=%v", got.BatchWindow, got.BatchMaxSize, got.Rules)
	}
	p.Points = batchBigPoints
	if got := Select(p, Env{MaxProcs: 4}); got.BatchWindow != 5*time.Millisecond || got.BatchMaxSize != 512 || !fired(got, "batch-wide-window") {
		t.Fatalf("big dataset: window=%v max=%d rules=%v", got.BatchWindow, got.BatchMaxSize, got.Rules)
	}
}

func TestSelectDeterministic(t *testing.T) {
	p := baseProfile()
	a := Select(p, Env{MaxProcs: 4})
	b := Select(p, Env{MaxProcs: 4})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Select is not deterministic: %+v vs %+v", a, b)
	}
	if a.Workers != a.Opts.Workers || a.Dims != a.Opts.Dims ||
		a.LB != a.Opts.LB.String() || a.UB != a.Opts.UB.String() ||
		a.FreezeMinPoints != a.Opts.FreezeMinPoints {
		t.Fatalf("serialized knob views diverge from Opts: %+v", a)
	}
}
