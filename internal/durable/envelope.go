package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// The record envelope wraps a payload so corruption is detected at
// read time. Layout (little-endian):
//
//	offset  size  field
//	     0     8  magic "MIODURB1"
//	     8     4  format version (currently 1)
//	    12     4  CRC-32 (IEEE) of the payload
//	    16     8  payload length in bytes
//	    24     …  payload
//
// The length must match the enclosing file exactly: a truncated file
// fails the length check before the CRC is even computed, and trailing
// garbage (e.g. a torn overwrite) is equally rejected.
const (
	envMagic   = uint64(0x4d494f4455524231) // "MIODURB1"
	envVersion = uint32(1)
	// EnvelopeOverhead is the number of header bytes Seal prepends.
	EnvelopeOverhead = 24
)

// Envelope validation errors, distinguishable with errors.Is.
var (
	// ErrNotEnveloped means the data does not start with the envelope
	// magic — it may be a legacy file written before the durability
	// layer existed, which callers can fall back to loading unverified.
	ErrNotEnveloped = errors.New("durable: no envelope magic")
	// ErrCorrupt means the data claims to be an envelope but fails
	// validation: bad version, wrong length, or CRC mismatch.
	ErrCorrupt = errors.New("durable: corrupt envelope")
)

// Seal wraps payload in a checksummed envelope.
func Seal(payload []byte) []byte {
	out := make([]byte, EnvelopeOverhead+len(payload))
	binary.LittleEndian.PutUint64(out[0:], envMagic)
	binary.LittleEndian.PutUint32(out[8:], envVersion)
	binary.LittleEndian.PutUint32(out[12:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint64(out[16:], uint64(len(payload)))
	copy(out[EnvelopeOverhead:], payload)
	return out
}

// Open validates data as a sealed envelope and returns the payload
// (aliasing data's backing array). A non-envelope prefix yields
// ErrNotEnveloped; anything that starts like an envelope but fails
// validation yields an error wrapping ErrCorrupt. Open never panics
// and never allocates proportionally to a claimed length: the length
// field is checked against len(data) before any use.
func Open(data []byte) ([]byte, error) {
	if len(data) < 8 || binary.LittleEndian.Uint64(data) != envMagic {
		return nil, ErrNotEnveloped
	}
	if len(data) < EnvelopeOverhead {
		return nil, fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(data))
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v == 0 || v > envVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	n := binary.LittleEndian.Uint64(data[16:])
	if n != uint64(len(data)-EnvelopeOverhead) {
		return nil, fmt.Errorf("%w: payload length %d, file holds %d", ErrCorrupt, n, len(data)-EnvelopeOverhead)
	}
	payload := data[EnvelopeOverhead:]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(data[12:]); got != want {
		return nil, fmt.Errorf("%w: CRC %08x, header says %08x", ErrCorrupt, got, want)
	}
	return payload, nil
}

// IsEnveloped reports whether data begins with the envelope magic —
// the cheap test LoadFile-style callers use to route between verified
// and legacy decoding.
func IsEnveloped(data []byte) bool {
	return len(data) >= 8 && binary.LittleEndian.Uint64(data) == envMagic
}

// CommitEnvelope seals payload and commits it atomically to path.
func (d IO) CommitEnvelope(path string, payload []byte) error {
	return d.WriteFileAtomic(path, Seal(payload))
}

// ReadEnvelopeFile reads path and returns its verified payload. The
// error distinguishes missing files (os.IsNotExist), legacy
// non-enveloped files (ErrNotEnveloped) and corruption (ErrCorrupt);
// quarantining on corruption is the caller's decision.
func ReadEnvelopeFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := Open(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return payload, nil
}
