// Package durable is the stdlib-only durability layer under MIO's
// persistent state (datasets and the §III-D label store). It provides
// three building blocks, each designed so that a crash at any instant
// leaves either the old state or the new state on disk — never a
// mixture:
//
//   - atomic file commit: payloads are written to a *.tmp sibling,
//     fsync'd, renamed onto the final name, and the parent directory
//     is fsync'd so the rename itself survives a power cut;
//   - a versioned record envelope (magic, format version, CRC-32,
//     payload length) so a torn or bit-flipped file is detected at
//     read time instead of being served;
//   - generation-numbered snapshot directories with a checksummed
//     MANIFEST naming the last-good generation, so multi-file state
//     (a dataset plus its accumulated label files) commits as a unit.
//
// Files that fail validation are never trusted and never deleted:
// Quarantine renames them to *.corrupt so operators can inspect what
// happened while readers treat them as absent.
//
// Every IO step can be interrupted by an injected fault
// (internal/fault's io.* points with the shortwrite/crash kinds),
// which is how the crash-matrix tests prove the recovery protocol.
package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"mio/internal/fault"
)

// IO carries the cross-cutting context of every durable write: the
// fault registry its commit steps fire. The zero value is a fully
// functional, fault-free IO.
type IO struct {
	// Faults, when non-nil, is consulted at every commit step
	// (io.write, io.sync, io.rename, io.dirsync). KindError aborts the
	// step with cleanup, KindShortWrite persists half the payload and
	// abandons the commit, KindCrash returns immediately with on-disk
	// state exactly as a kill would leave it.
	Faults *fault.Registry
}

// WriteFileAtomic commits payload to path so that a crash at any
// point leaves either the previous file or the complete new one under
// the final name, never a prefix: write to path+".tmp", fsync, rename
// over path, fsync the parent directory. An abandoned *.tmp from an
// earlier crash is silently replaced. An existing non-regular target
// (device node, pipe) is written through directly instead — rename
// would destroy it, and atomicity does not apply.
func (d IO) WriteFileAtomic(path string, payload []byte) error {
	// A non-regular destination (a device node, a pipe) must not be
	// replaced by rename: renaming a regular tmp file over /dev/full
	// would swap the device for a plain file. Atomicity is meaningless
	// for such targets — write through them directly so the write
	// error (e.g. ENOSPC from /dev/full) reaches the caller.
	if fi, err := os.Lstat(path); err == nil && !fi.Mode().IsRegular() {
		return d.writeThrough(path, payload)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if ferr := d.Faults.Fire(fault.PointIOWrite); ferr != nil {
		switch {
		case errors.Is(ferr, fault.ErrShortWrite):
			// Simulate dying mid-write: a prefix reaches the tmp file,
			// the final name is never touched.
			_, _ = f.Write(payload[:len(payload)/2])
			_ = f.Close()
		case errors.Is(ferr, fault.ErrCrash):
			_ = f.Close()
		default:
			_ = f.Close()
			_ = os.Remove(tmp)
		}
		return ferr
	}
	if _, err := f.Write(payload); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("durable: write %s: %w", tmp, err)
	}
	if ferr := d.Faults.Fire(fault.PointIOSync); ferr != nil {
		_ = f.Close()
		if !errors.Is(ferr, fault.ErrCrash) {
			_ = os.Remove(tmp)
		}
		return ferr
	}
	// The data must be on stable storage before the rename publishes
	// the name, or a power cut could commit a name pointing at
	// unwritten blocks.
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("durable: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("durable: close %s: %w", tmp, err)
	}
	if ferr := d.Faults.Fire(fault.PointIORename); ferr != nil {
		if !errors.Is(ferr, fault.ErrCrash) {
			_ = os.Remove(tmp)
		}
		return ferr
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("durable: rename %s: %w", tmp, err)
	}
	if ferr := d.Faults.Fire(fault.PointIODirSync); ferr != nil {
		// The rename already happened: whatever the fault, the new file
		// is (or may be, after a real crash) visible. No cleanup exists
		// that wouldn't destroy committed state.
		return ferr
	}
	return d.SyncDir(filepath.Dir(path))
}

// writeThrough writes payload straight into an existing non-regular
// file. No tmp sibling, no rename, no fsync: none of them apply to
// devices or pipes, and the direct write's error is the signal the
// caller wants (ENOSPC probes against /dev/full rely on it).
func (d IO) writeThrough(path string, payload []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if ferr := d.Faults.Fire(fault.PointIOWrite); ferr != nil {
		_ = f.Close()
		return ferr
	}
	_, werr := f.Write(payload)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("durable: write %s: %w", path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("durable: close %s: %w", path, cerr)
	}
	return nil
}

// SyncDir fsyncs a directory so a rename or create inside it survives
// a crash. Filesystems that refuse to sync directories (some network
// mounts) degrade to best-effort: the error is still reported.
func (d IO) SyncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: open dir %s: %w", dir, err)
	}
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return fmt.Errorf("durable: sync dir %s: %w", dir, serr)
	}
	if cerr != nil {
		return fmt.Errorf("durable: close dir %s: %w", dir, cerr)
	}
	return nil
}

// CorruptSuffix is appended to quarantined files and directories.
const CorruptSuffix = ".corrupt"

// Quarantine renames path out of the way as path.corrupt (appending
// .1, .2, … if earlier quarantines exist) so readers see it as absent
// while operators can inspect it. Quarantining a path that no longer
// exists is a no-op: concurrent readers may race to quarantine the
// same corrupt file and all of them must conclude "gone".
func (d IO) Quarantine(path string) error {
	dst := path + CorruptSuffix
	for i := 1; ; i++ {
		if _, err := os.Lstat(dst); os.IsNotExist(err) {
			break
		}
		dst = fmt.Sprintf("%s%s.%d", path, CorruptSuffix, i)
	}
	//lint:ignore fsync quarantine moves already-bad bytes aside; losing the rename in a crash just re-quarantines later
	err := os.Rename(path, dst)
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("durable: quarantine %s: %w", path, err)
	}
	return nil
}
