package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"mio/internal/fault"
)

// A Dir is a generation-numbered snapshot directory:
//
//	root/
//	  MANIFEST            enveloped JSON naming the last-good generation
//	  gen-000001/         a committed generation (complete by construction)
//	  gen-000002.stage/   an in-progress commit (ignored by recovery)
//	  gen-000001.corrupt/ a quarantined generation (ignored by recovery)
//
// The commit protocol makes a multi-file generation atomic: files are
// committed one by one into a *.stage directory (each via the
// enveloped atomic write), the directory is renamed to its final
// gen-N name, and only then is MANIFEST rewritten to point at N. A
// crash before the MANIFEST write leaves the old manifest naming the
// old generation; a crash after it leaves the new generation fully
// committed. There is no instant at which a reader following the
// protocol can observe a partial generation.
type Dir struct {
	IO
	root string
}

// OpenDir opens (creating if needed) a snapshot directory rooted at
// root.
func OpenDir(root string, dio IO) (*Dir, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	return &Dir{IO: dio, root: root}, nil
}

// Root returns the directory the generations live under.
func (d *Dir) Root() string { return d.root }

// GenPath returns the directory of a committed generation.
func (d *Dir) GenPath(gen uint64) string {
	return filepath.Join(d.root, fmt.Sprintf("gen-%06d", gen))
}

func (d *Dir) manifestPath() string { return filepath.Join(d.root, "MANIFEST") }

// manifest is the MANIFEST payload (enveloped JSON).
type manifest struct {
	Generation uint64 `json:"generation"`
}

// Manifest returns the last-good generation recorded in a valid
// MANIFEST, or ok=false when none exists. A MANIFEST that exists but
// fails validation is quarantined (it is useless: trusting it could
// resurrect a torn write) and reported as absent.
func (d *Dir) Manifest() (gen uint64, ok bool, err error) {
	payload, err := ReadEnvelopeFile(d.manifestPath())
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		if qerr := d.Quarantine(d.manifestPath()); qerr != nil {
			return 0, false, qerr
		}
		return 0, false, nil
	}
	var m manifest
	if jerr := json.Unmarshal(payload, &m); jerr != nil {
		if qerr := d.Quarantine(d.manifestPath()); qerr != nil {
			return 0, false, qerr
		}
		return 0, false, nil
	}
	return m.Generation, true, nil
}

// SetManifest atomically records gen as the last-good generation.
func (d *Dir) SetManifest(gen uint64) error {
	payload, err := json.Marshal(manifest{Generation: gen})
	if err != nil {
		return err
	}
	return d.CommitEnvelope(d.manifestPath(), payload)
}

// parseGen extracts N from a committed generation directory name
// ("gen-000123"), rejecting staging, corrupt and foreign entries.
func parseGen(name string) (uint64, bool) {
	rest, found := strings.CutPrefix(name, "gen-")
	if !found || strings.Contains(rest, ".") {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Generations lists the committed generation numbers, newest first.
// Staging (*.stage) and quarantined (*.corrupt) directories are
// excluded: the former were never committed, the latter failed
// validation.
func (d *Dir) Generations() ([]uint64, error) {
	entries, err := os.ReadDir(d.root)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	var gens []uint64
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if n, ok := parseGen(e.Name()); ok {
			gens = append(gens, n)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	return gens, nil
}

// Candidates returns the generations recovery should try, best first:
// the manifest's generation if it names an existing directory, then
// every other committed generation newest-first. Callers validate each
// candidate's contents and call QuarantineGen on failures before
// moving to the next.
func (d *Dir) Candidates() ([]uint64, error) {
	gens, err := d.Generations()
	if err != nil {
		return nil, err
	}
	mGen, ok, err := d.Manifest()
	if err != nil {
		return nil, err
	}
	if !ok {
		return gens, nil
	}
	out := make([]uint64, 0, len(gens))
	found := false
	for _, g := range gens {
		if g == mGen {
			found = true
		}
	}
	if found {
		out = append(out, mGen)
	}
	for _, g := range gens {
		if g != mGen {
			out = append(out, g)
		}
	}
	return out, nil
}

// QuarantineGen moves a generation directory aside as gen-N.corrupt
// so recovery skips it from now on.
func (d *Dir) QuarantineGen(gen uint64) error {
	return d.Quarantine(d.GenPath(gen))
}

// Staging is an in-progress generation commit.
type Staging struct {
	d   *Dir
	gen uint64
	dir string
}

// Begin opens a staging directory for the next generation: one past
// the largest generation visible on disk or named by the manifest, so
// a crash-orphaned generation directory can never collide with a
// later commit.
func (d *Dir) Begin() (*Staging, error) {
	gens, err := d.Generations()
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if len(gens) > 0 && gens[0]+1 > next {
		next = gens[0] + 1
	}
	if mGen, ok, err := d.Manifest(); err != nil {
		return nil, err
	} else if ok && mGen+1 > next {
		next = mGen + 1
	}
	dir := d.GenPath(next) + ".stage"
	// A leftover stage with this number means an earlier Begin crashed
	// before renaming; its contents were never committed, so clearing
	// it is safe.
	if err := os.RemoveAll(dir); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	return &Staging{d: d, gen: next, dir: dir}, nil
}

// Gen returns the generation number this staging will commit as.
func (s *Staging) Gen() uint64 { return s.gen }

// Dir returns the staging directory files are written into.
func (s *Staging) Dir() string { return s.dir }

// CommitFile seals payload and commits it atomically as name inside
// the staging directory.
func (s *Staging) CommitFile(name string, payload []byte) error {
	return s.d.CommitEnvelope(filepath.Join(s.dir, name), payload)
}

// Commit publishes the staged generation: rename the staging
// directory to its final gen-N name, sync the root so the rename is
// durable, and rewrite MANIFEST to point at N. On any error the
// snapshot directory is still consistent — either the old manifest
// still names the old generation, or (if only the manifest write
// failed after the rename) the new generation sits complete on disk
// awaiting a future manifest. Returns the committed generation path.
func (s *Staging) Commit() (string, error) {
	final := s.d.GenPath(s.gen)
	if ferr := s.d.Faults.Fire(fault.PointIORename); ferr != nil {
		if !errors.Is(ferr, fault.ErrCrash) {
			s.Abandon()
		}
		return "", ferr
	}
	//lint:ignore fsync the staged files were each fsync'd by CommitFile; only the directory entry moves here
	if err := os.Rename(s.dir, final); err != nil {
		s.Abandon()
		return "", fmt.Errorf("durable: commit generation %d: %w", s.gen, err)
	}
	if ferr := s.d.Faults.Fire(fault.PointIODirSync); ferr != nil {
		// Renamed but possibly not durable; recovery handles both the
		// published and unpublished outcome, so just report.
		return "", ferr
	}
	if err := s.d.SyncDir(s.d.root); err != nil {
		return "", err
	}
	if err := s.d.SetManifest(s.gen); err != nil {
		return "", err
	}
	return final, nil
}

// Abandon removes the staging directory; safe after a failed Commit.
func (s *Staging) Abandon() {
	_ = os.RemoveAll(s.dir)
}
