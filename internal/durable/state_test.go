package durable

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mio/internal/fault"
)

func TestGenerationCommitAndManifest(t *testing.T) {
	d, err := OpenDir(t.TempDir(), IO{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := d.Manifest(); err != nil || ok {
		t.Fatalf("fresh dir manifest = ok=%v err=%v", ok, err)
	}

	stg, err := d.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if stg.Gen() != 1 {
		t.Fatalf("first generation = %d", stg.Gen())
	}
	if err := stg.CommitFile("dataset.bin", []byte("ds-v1")); err != nil {
		t.Fatal(err)
	}
	final, err := stg.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if final != d.GenPath(1) {
		t.Fatalf("committed path %q", final)
	}
	if gen, ok, _ := d.Manifest(); !ok || gen != 1 {
		t.Fatalf("manifest after commit = %d, %v", gen, ok)
	}
	if got, err := ReadEnvelopeFile(filepath.Join(final, "dataset.bin")); err != nil || string(got) != "ds-v1" {
		t.Fatalf("generation file: %q, %v", got, err)
	}

	// Second generation stacks on top.
	stg2, err := d.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if stg2.Gen() != 2 {
		t.Fatalf("second generation = %d", stg2.Gen())
	}
	if err := stg2.CommitFile("dataset.bin", []byte("ds-v2")); err != nil {
		t.Fatal(err)
	}
	if _, err := stg2.Commit(); err != nil {
		t.Fatal(err)
	}
	gens, err := d.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gens, []uint64{2, 1}) {
		t.Fatalf("generations = %v", gens)
	}
	if cands, _ := d.Candidates(); !reflect.DeepEqual(cands, []uint64{2, 1}) {
		t.Fatalf("candidates = %v", cands)
	}
}

func TestCandidatesPreferManifestAndSkipStageCorrupt(t *testing.T) {
	root := t.TempDir()
	d, err := OpenDir(root, IO{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		stg, err := d.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := stg.CommitFile("f", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := stg.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Roll the manifest back to 2: candidates must lead with 2.
	if err := d.SetManifest(2); err != nil {
		t.Fatal(err)
	}
	// Plant noise that recovery must ignore.
	if err := os.MkdirAll(filepath.Join(root, "gen-000009.stage"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := d.QuarantineGen(1); err != nil {
		t.Fatal(err)
	}
	cands, err := d.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cands, []uint64{2, 3}) {
		t.Fatalf("candidates = %v, want [2 3]", cands)
	}
	// The next Begin must not collide with the orphan stage number's
	// committed cousins: it numbers past every committed generation.
	stg, err := d.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if stg.Gen() != 4 {
		t.Fatalf("next generation = %d, want 4", stg.Gen())
	}
	stg.Abandon()
}

func TestCorruptManifestIsQuarantined(t *testing.T) {
	d, err := OpenDir(t.TempDir(), IO{})
	if err != nil {
		t.Fatal(err)
	}
	stg, _ := d.Begin()
	if err := stg.CommitFile("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := stg.Commit(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the MANIFEST.
	mpath := filepath.Join(d.Root(), "MANIFEST")
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(mpath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := d.Manifest(); err != nil || ok {
		t.Fatalf("corrupt manifest = ok=%v err=%v, want absent", ok, err)
	}
	if _, err := os.Stat(mpath + CorruptSuffix); err != nil {
		t.Errorf("corrupt manifest not quarantined: %v", err)
	}
	// Recovery falls back to scanning generations.
	if cands, _ := d.Candidates(); !reflect.DeepEqual(cands, []uint64{1}) {
		t.Errorf("candidates after manifest loss = %v", cands)
	}
}

// TestGenerationCommitCrashPoints drives one injected crash through
// each step of a generation commit and checks the invariant: the
// snapshot directory recovers to a complete generation, never a
// partial one.
func TestGenerationCommitCrashPoints(t *testing.T) {
	type step struct {
		name string
		rule fault.Rule
		// wantNew reports whether the crash lands after the publish
		// point, i.e. a reopened dir must see generation 2.
		wantNew bool
	}
	steps := []step{
		{"shortwrite-dataset", fault.Rule{Point: fault.PointIOWrite, Kind: fault.KindShortWrite, P: 1}, false},
		{"crash-dataset-sync", fault.Rule{Point: fault.PointIOSync, Kind: fault.KindCrash, P: 1}, false},
		{"error-dataset-rename", fault.Rule{Point: fault.PointIORename, Kind: fault.KindError, P: 1}, false},
		// After=1 skips the dataset file's rename draw: the crash hits
		// the staging-directory rename instead.
		{"crash-stage-rename", fault.Rule{Point: fault.PointIORename, Kind: fault.KindCrash, P: 1, After: 1}, false},
		// After=2 lands on the MANIFEST file's rename: the generation
		// directory is already published, only the manifest lags.
		{"crash-manifest-rename", fault.Rule{Point: fault.PointIORename, Kind: fault.KindCrash, P: 1, After: 2}, false},
		// Crash on the final dirsync after the manifest rename: fully
		// committed.
		{"crash-after-manifest", fault.Rule{Point: fault.PointIODirSync, Kind: fault.KindCrash, P: 1, After: 2}, true},
	}
	for _, tc := range steps {
		t.Run(tc.name, func(t *testing.T) {
			root := t.TempDir()
			d, err := OpenDir(root, IO{})
			if err != nil {
				t.Fatal(err)
			}
			stg, _ := d.Begin()
			if err := stg.CommitFile("dataset.bin", []byte("gen1")); err != nil {
				t.Fatal(err)
			}
			if _, err := stg.Commit(); err != nil {
				t.Fatal(err)
			}

			reg := fault.New(1)
			reg.Arm(tc.rule)
			faulty := &Dir{IO: IO{Faults: reg}, root: root}
			stg2, err := faulty.Begin()
			if err != nil {
				t.Fatal(err)
			}
			werr := stg2.CommitFile("dataset.bin", []byte("gen2"))
			var cerr error
			if werr == nil {
				_, cerr = stg2.Commit()
			}
			if werr == nil && cerr == nil {
				t.Fatal("injected commit reported success")
			}

			// "Restart": reopen fault-free and recover.
			re, err := OpenDir(root, IO{})
			if err != nil {
				t.Fatal(err)
			}
			cands, err := re.Candidates()
			if err != nil {
				t.Fatal(err)
			}
			if len(cands) == 0 {
				t.Fatal("no generation survived")
			}
			best := cands[0]
			want := uint64(1)
			wantPayload := "gen1"
			if tc.wantNew {
				want, wantPayload = 2, "gen2"
			}
			if best != want {
				t.Fatalf("recovered generation %d, want %d (candidates %v)", best, want, cands)
			}
			got, err := ReadEnvelopeFile(filepath.Join(re.GenPath(best), "dataset.bin"))
			if err != nil || string(got) != wantPayload {
				t.Fatalf("recovered payload %q, %v", got, err)
			}
			// Whatever the manifest says must be a committed generation.
			if mGen, ok, _ := re.Manifest(); ok {
				if _, err := os.Stat(re.GenPath(mGen)); err != nil {
					t.Errorf("manifest names generation %d which does not exist", mGen)
				}
			}
		})
	}
}

func TestCommitErrorsWrapInjected(t *testing.T) {
	reg := fault.New(1)
	reg.Arm(fault.Rule{Point: fault.PointIOWrite, Kind: fault.KindError, P: 1})
	d, err := OpenDir(t.TempDir(), IO{Faults: reg})
	if err != nil {
		t.Fatal(err)
	}
	stg, err := d.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := stg.CommitFile("f", []byte("x")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	stg.Abandon()
}
