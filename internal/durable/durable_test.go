package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mio/internal/fault"
)

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	var dio IO
	if err := dio.WriteFileAtomic(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	// Overwrite commits too.
	if err := dio.WriteFileAtomic(path, []byte("world")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "world" {
		t.Fatalf("overwrite read back %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("tmp file survived a successful commit")
	}
}

// TestCrashNeverReplacesPreviousFile is the satellite regression: for
// every injected IO misbehaviour, the valid previous file stays intact
// under the final name.
func TestCrashNeverReplacesPreviousFile(t *testing.T) {
	cases := []struct {
		point string
		kind  fault.Kind
	}{
		{fault.PointIOWrite, fault.KindShortWrite},
		{fault.PointIOWrite, fault.KindCrash},
		{fault.PointIOWrite, fault.KindError},
		{fault.PointIOSync, fault.KindError},
		{fault.PointIOSync, fault.KindCrash},
		{fault.PointIORename, fault.KindError},
		{fault.PointIORename, fault.KindCrash},
	}
	for _, tc := range cases {
		t.Run(tc.point+"/"+tc.kind.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "f.bin")
			if err := (IO{}).WriteFileAtomic(path, []byte("previous")); err != nil {
				t.Fatal(err)
			}
			reg := fault.New(1)
			reg.Arm(fault.Rule{Point: tc.point, Kind: tc.kind, P: 1})
			dio := IO{Faults: reg}
			err := dio.WriteFileAtomic(path, []byte("next-value"))
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("injected commit returned %v", err)
			}
			got, rerr := os.ReadFile(path)
			if rerr != nil || string(got) != "previous" {
				t.Fatalf("previous file damaged: %q, %v", got, rerr)
			}
			// A crash-left tmp must never hold a full new payload
			// under the final name; under the tmp name a prefix is
			// legal (that is exactly what a kill leaves).
			if tmp, err := os.ReadFile(path + ".tmp"); err == nil {
				if tc.kind == fault.KindShortWrite && len(tmp) >= len("next-value") {
					t.Errorf("short write persisted the full payload: %q", tmp)
				}
			}
		})
	}
}

func TestCrashAfterRenameIsCommitted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	reg := fault.New(1)
	reg.Arm(fault.Rule{Point: fault.PointIODirSync, Kind: fault.KindCrash, P: 1})
	err := IO{Faults: reg}.WriteFileAtomic(path, []byte("v2"))
	if !errors.Is(err, fault.ErrCrash) {
		t.Fatalf("err = %v", err)
	}
	// The rename happened before the crash point: the new content is
	// visible, which recovery must treat as a committed write.
	if got, err := os.ReadFile(path); err != nil || string(got) != "v2" {
		t.Fatalf("post-rename crash lost the committed file: %q, %v", got, err)
	}
}

func TestQuarantine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	var dio IO
	if err := dio.Quarantine(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("quarantined file still present under original name")
	}
	if got, err := os.ReadFile(path + CorruptSuffix); err != nil || string(got) != "junk" {
		t.Errorf("quarantined bytes not preserved: %q, %v", got, err)
	}
	// A second corrupt file with the same name gets a numbered slot.
	if err := os.WriteFile(path, []byte("junk2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := dio.Quarantine(path); err != nil {
		t.Fatal(err)
	}
	if got, err := os.ReadFile(path + CorruptSuffix + ".1"); err != nil || string(got) != "junk2" {
		t.Errorf("second quarantine: %q, %v", got, err)
	}
	// Quarantining a missing path is a no-op, not an error.
	if err := dio.Quarantine(filepath.Join(dir, "gone")); err != nil {
		t.Errorf("quarantine of missing path: %v", err)
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)} {
		sealed := Seal(payload)
		if !IsEnveloped(sealed) {
			t.Fatal("sealed data not recognised")
		}
		got, err := Open(sealed)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload mutated: %d bytes vs %d", len(got), len(payload))
		}
	}
}

func TestEnvelopeRejectsCorruption(t *testing.T) {
	sealed := Seal([]byte("the payload under test"))
	// Every single-bit flip anywhere in the record must be detected.
	for i := 0; i < len(sealed); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), sealed...)
			mut[i] ^= 1 << bit
			if _, err := Open(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d went undetected", i, bit)
			}
		}
	}
	// Truncation at every length must be detected.
	for n := 0; n < len(sealed); n++ {
		if _, err := Open(sealed[:n]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
	// Trailing garbage too.
	if _, err := Open(append(append([]byte(nil), sealed...), 0)); err == nil {
		t.Fatal("trailing byte went undetected")
	}
	// Non-enveloped data is distinguished from corruption.
	if _, err := Open([]byte("MIODATA1 something legacy")); !errors.Is(err, ErrNotEnveloped) {
		t.Errorf("legacy prefix: %v, want ErrNotEnveloped", err)
	}
}

func TestReadEnvelopeFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rec.bin")
	if err := (IO{}).CommitEnvelope(path, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEnvelopeFile(path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("got %q, %v", got, err)
	}
	if _, err := ReadEnvelopeFile(filepath.Join(dir, "missing")); !os.IsNotExist(err) {
		t.Errorf("missing file: %v, want IsNotExist", err)
	}
	if err := os.WriteFile(path, []byte("not an envelope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEnvelopeFile(path); !errors.Is(err, ErrNotEnveloped) {
		t.Errorf("legacy file: %v", err)
	}
}

// FuzzDurableEnvelope: decoding arbitrary bytes never panics, a valid
// seal always opens to the same payload, and any mutation of a sealed
// record fails validation.
func FuzzDurableEnvelope(f *testing.F) {
	f.Add([]byte("seed payload"), uint16(0), uint8(0))
	f.Add([]byte{}, uint16(3), uint8(1))
	f.Add(bytes.Repeat([]byte{0x5A}, 300), uint16(299), uint8(7))
	f.Fuzz(func(t *testing.T, payload []byte, flipAt uint16, flipBit uint8) {
		// Arbitrary input: must not panic, and non-magic input must
		// report ErrNotEnveloped.
		if _, err := Open(payload); err == nil {
			if !IsEnveloped(payload) {
				t.Fatal("Open accepted data without the magic")
			}
		}
		sealed := Seal(payload)
		got, err := Open(sealed)
		if err != nil {
			t.Fatalf("fresh seal failed to open: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("round trip mutated payload")
		}
		i := int(flipAt) % len(sealed)
		mut := append([]byte(nil), sealed...)
		mut[i] ^= 1 << (flipBit % 8)
		if _, err := Open(mut); err == nil {
			t.Fatalf("flip at byte %d went undetected", i)
		}
	})
}

// TestWriteFileAtomicNonRegularTarget pins the write-through rule:
// committing to a device node must not rename a regular file over it
// (which would silently destroy the device — /dev/full would stop
// returning ENOSPC forever after) and must not leave a *.tmp sibling.
func TestWriteFileAtomicNonRegularTarget(t *testing.T) {
	fi, err := os.Lstat(os.DevNull)
	if err != nil || fi.Mode().IsRegular() {
		t.Skipf("no usable %s device", os.DevNull)
	}
	if err := (IO{}).WriteFileAtomic(os.DevNull, []byte("discard me")); err != nil {
		t.Fatalf("write through %s: %v", os.DevNull, err)
	}
	after, err := os.Lstat(os.DevNull)
	if err != nil {
		t.Fatal(err)
	}
	if after.Mode().IsRegular() {
		t.Fatalf("%s was replaced by a regular file: rename-over-device", os.DevNull)
	}
	if _, err := os.Lstat(os.DevNull + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp sibling left beside device target: %v", err)
	}
}
