package bitmap

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoaringBasic(t *testing.T) {
	r := NewRoaring()
	if r.Cardinality() != 0 || r.Test(0) {
		t.Fatal("new roaring not empty")
	}
	in := []int{0, 5, 5, 65535, 65536, 1 << 20, 1<<20 + 1}
	for _, b := range in {
		r.Set(b)
	}
	want := []int{0, 5, 65535, 65536, 1 << 20, 1<<20 + 1}
	if got := r.Bits(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Bits = %v, want %v", got, want)
	}
	if r.Cardinality() != len(want) {
		t.Fatalf("card = %d", r.Cardinality())
	}
	for _, b := range want {
		if !r.Test(b) {
			t.Fatalf("Test(%d) = false", b)
		}
	}
	for _, b := range []int{1, 4, 6, 65534, 65537, -3} {
		if r.Test(b) {
			t.Fatalf("Test(%d) = true", b)
		}
	}
}

func TestRoaringOutOfOrderSets(t *testing.T) {
	// Unlike Compressed, arbitrary insertion order must work.
	r := NewRoaring()
	for _, b := range []int{100, 3, 70000, 50, 3, 69999} {
		r.Set(b)
	}
	want := []int{3, 50, 100, 69999, 70000}
	if got := r.Bits(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Bits = %v", got)
	}
}

func TestRoaringArrayToBitmapPromotion(t *testing.T) {
	r := NewRoaring()
	for i := 0; i < 2*arrayMaxLen; i++ {
		r.Set(i * 2) // same chunk? 2*4096*2 = 16384 < 65536, yes
	}
	if r.Cardinality() != 2*arrayMaxLen {
		t.Fatalf("card = %d", r.Cardinality())
	}
	if r.containers[0].kind != kindBitmap {
		t.Fatalf("container kind = %v, want bitmap", r.containers[0].kind)
	}
	// Every other bit still reads correctly.
	for i := 0; i < 2*arrayMaxLen; i++ {
		if !r.Test(i*2) || r.Test(i*2+1) {
			t.Fatalf("bit %d wrong after promotion", i)
		}
	}
}

func TestRoaringOptimizeRunContainer(t *testing.T) {
	r := NewRoaring()
	for i := 1000; i < 30000; i++ {
		r.Set(i)
	}
	before := r.SizeBytes()
	r.Optimize()
	after := r.SizeBytes()
	if r.containers[0].kind != kindRun {
		t.Fatalf("clustered container kind = %v, want run", r.containers[0].kind)
	}
	if after >= before {
		t.Fatalf("optimize grew: %d -> %d", before, after)
	}
	if r.Cardinality() != 29000 {
		t.Fatalf("card after optimize = %d", r.Cardinality())
	}
	if !r.Test(1000) || !r.Test(29999) || r.Test(999) || r.Test(30000) {
		t.Fatal("run container membership wrong")
	}
	// Mutating a run container falls back safely.
	r.Set(50)
	if !r.Test(50) || !r.Test(15000) {
		t.Fatal("set after optimize broken")
	}
}

func TestRoaringOptimizeSparseStaysArray(t *testing.T) {
	r := RoaringFromBits(1, 100, 5000, 60000)
	r.Optimize()
	// 4 scattered bits: 2-run-per-bit run encoding costs 16 bytes,
	// array costs 8 — either is tiny, but card must survive.
	if r.Cardinality() != 4 {
		t.Fatalf("card = %d", r.Cardinality())
	}
	if got := r.Bits(); !reflect.DeepEqual(got, []int{1, 100, 5000, 60000}) {
		t.Fatalf("bits = %v", got)
	}
}

func TestRoaringOpsSmall(t *testing.T) {
	a := RoaringFromBits(1, 2, 70000, 70001)
	b := RoaringFromBits(2, 3, 70001, 200000)
	if got := RoaringOr(a, b).Bits(); !reflect.DeepEqual(got, []int{1, 2, 3, 70000, 70001, 200000}) {
		t.Fatalf("Or = %v", got)
	}
	if got := RoaringAnd(a, b).Bits(); !reflect.DeepEqual(got, []int{2, 70001}) {
		t.Fatalf("And = %v", got)
	}
	if got := RoaringAndNot(a, b).Bits(); !reflect.DeepEqual(got, []int{1, 70000}) {
		t.Fatalf("AndNot = %v", got)
	}
	e := NewRoaring()
	if got := RoaringOr(a, e).Bits(); !reflect.DeepEqual(got, a.Bits()) {
		t.Fatalf("Or empty = %v", got)
	}
	if got := RoaringAnd(a, e).Bits(); len(got) != 0 {
		t.Fatalf("And empty = %v", got)
	}
	if got := RoaringAndNot(e, a).Bits(); len(got) != 0 {
		t.Fatalf("AndNot empty = %v", got)
	}
}

// Property: roaring ops agree with the dense reference and with the
// EWAH implementation for arbitrary inputs spanning multiple chunks.
func TestRoaringQuickAgainstDense(t *testing.T) {
	type input struct {
		A, B []uint32
	}
	f := func(in input) bool {
		n := 1 << 18
		da, db := NewDense(n), NewDense(n)
		ra, rb := NewRoaring(), NewRoaring()
		for _, x := range in.A {
			v := int(x) % n
			da.Set(v)
			ra.Set(v)
		}
		for _, x := range in.B {
			v := int(x) % n
			db.Set(v)
			rb.Set(v)
		}
		ra.Optimize()
		or := da.Clone()
		or.Or(db)
		and := da.Clone()
		and.And(db)
		anot := da.Clone()
		anot.AndNot(db)
		return reflect.DeepEqual(RoaringOr(ra, rb).Bits(), or.Bits()) &&
			reflect.DeepEqual(RoaringAnd(ra, rb).Bits(), and.Bits()) &&
			reflect.DeepEqual(RoaringAndNot(ra, rb).Bits(), anot.Bits()) &&
			ra.Cardinality() == da.Cardinality()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRoaringMatchesEWAHOnSkewedData(t *testing.T) {
	// A BIGrid-like workload: dense blocks plus sparse tails.
	rng := rand.New(rand.NewSource(4))
	n := 1 << 17
	d := NewDense(n)
	r := NewRoaring()
	for i := 20000; i < 26000; i++ {
		d.Set(i)
		r.Set(i)
	}
	for j := 0; j < 500; j++ {
		v := rng.Intn(n)
		d.Set(v)
		r.Set(v)
	}
	c := FromDense(d)
	if !reflect.DeepEqual(r.Bits(), c.Bits()) {
		t.Fatal("roaring and EWAH disagree")
	}
	r.Optimize()
	if !reflect.DeepEqual(r.Bits(), c.Bits()) {
		t.Fatal("optimize changed contents")
	}
	// Both must compress far below dense.
	if r.SizeBytes() >= d.SizeBytes() || c.SizeBytes() >= d.SizeBytes() {
		t.Fatalf("no compression: roaring=%d ewah=%d dense=%d",
			r.SizeBytes(), c.SizeBytes(), d.SizeBytes())
	}
}

func TestRoaringForEachEarlyStop(t *testing.T) {
	r := RoaringFromBits(1, 2, 3, 70000, 70001)
	count := 0
	r.ForEach(func(int) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("visited %d", count)
	}
}

func TestRoaringSetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewRoaring().Set(-1)
}

// Ablation benchmark: the three containers on a skewed OR-heavy
// workload shaped like lower-bounding.
func BenchmarkContainerAblationOr(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	n := 1 << 17
	const sets = 64
	denses := make([]*Dense, sets)
	ewahs := make([]*Compressed, sets)
	roars := make([]*Roaring, sets)
	for i := range denses {
		d := NewDense(n)
		r := NewRoaring()
		base := rng.Intn(n - 2000)
		for j := 0; j < 800; j++ { // clustered block
			d.Set(base + j)
			r.Set(base + j)
		}
		for j := 0; j < 50; j++ { // sparse tail
			v := rng.Intn(n)
			d.Set(v)
			r.Set(v)
		}
		r.Optimize()
		denses[i] = d
		ewahs[i] = FromDense(d)
		roars[i] = r
	}
	b.Run("ewah-into-scratch", func(b *testing.B) {
		s := NewScratch(n)
		for i := 0; i < b.N; i++ {
			s.Reset()
			for _, c := range ewahs {
				s.OrCompressed(c)
			}
		}
	})
	b.Run("ewah-merge-chain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			acc := New()
			for _, c := range ewahs {
				acc = Or(acc, c)
			}
		}
	})
	b.Run("roaring-merge-chain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			acc := NewRoaring()
			for _, c := range roars {
				acc = RoaringOr(acc, c)
			}
		}
	})
	b.Run("dense-or", func(b *testing.B) {
		acc := NewDense(n)
		for i := 0; i < b.N; i++ {
			acc.Reset()
			for _, c := range denses {
				acc.Or(c)
			}
		}
	})
}

func TestRoaringMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		r := NewRoaring()
		// Mixed shape: a dense block, a run-friendly block, sparse tail.
		base := rng.Intn(1 << 18)
		for i := 0; i < rng.Intn(6000); i++ {
			r.Set(base + i)
		}
		for i := 0; i < rng.Intn(300); i++ {
			r.Set(rng.Intn(1 << 20))
		}
		if trial%2 == 0 {
			r.Optimize()
		}
		data, err := r.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Roaring
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(back.Bits(), r.Bits()) {
			t.Fatalf("trial %d: round-trip mismatch", trial)
		}
		if back.Cardinality() != r.Cardinality() {
			t.Fatalf("trial %d: card mismatch", trial)
		}
		// Decoded bitmap stays usable.
		back.Set(1 << 21)
		if !back.Test(1 << 21) {
			t.Fatal("set after unmarshal failed")
		}
	}
}

func TestRoaringUnmarshalErrors(t *testing.T) {
	var r Roaring
	if err := r.UnmarshalBinary(nil); err == nil {
		t.Error("nil accepted")
	}
	if err := r.UnmarshalBinary(make([]byte, 8)); err == nil {
		t.Error("bad magic accepted")
	}
	good, _ := RoaringFromBits(1, 2, 70000).MarshalBinary()
	if err := r.UnmarshalBinary(good[:len(good)-1]); err == nil {
		t.Error("truncated accepted")
	}
	if err := r.UnmarshalBinary(append(good, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Corrupt a cardinality.
	bad := append([]byte(nil), good...)
	bad[11]++ // first container card low byte
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Error("corrupted cardinality accepted")
	}
	if err := r.UnmarshalBinary(good); err != nil {
		t.Errorf("good payload rejected: %v", err)
	}
}
