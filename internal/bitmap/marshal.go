package bitmap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// marshalVersion identifies the on-disk encoding of Compressed.
const marshalVersion = 1

// maxUnmarshalWords caps the logical size of a decoded bitmap (2^24
// words = ~1 billion bits), rejecting hostile payloads whose run
// lengths would make later full decodes unreasonably expensive.
const maxUnmarshalWords = 1 << 24

// logicalWordsOf sums the logical word counts of an encoded word
// stream without materialising it. It tolerates malformed streams (the
// caller validates structure separately).
func logicalWordsOf(raw []byte) int {
	full := 0
	for pos := 0; pos+8 <= len(raw); {
		m := binary.LittleEndian.Uint64(raw[pos:])
		_, runLen, lit := markerFields(m)
		full += int(runLen) + int(lit)
		pos += 8 * (1 + int(lit))
		if full > maxUnmarshalWords {
			return full
		}
	}
	return full
}

// MarshalBinary encodes the bitmap for persistence. The pending word is
// flushed into the encoding, so the result is a canonical snapshot.
func (c *Compressed) MarshalBinary() ([]byte, error) {
	snap := c.Clone()
	snap.flushPending()
	buf := make([]byte, 0, 8*(len(snap.words)+3))
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(marshalVersion))
	buf = append(buf, hdr[:]...)
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(snap.words)))
	buf = append(buf, hdr[:]...)
	binary.LittleEndian.PutUint64(hdr[:], uint64(snap.card))
	buf = append(buf, hdr[:]...)
	for _, w := range snap.words {
		binary.LittleEndian.PutUint64(hdr[:], w)
		buf = append(buf, hdr[:]...)
	}
	return buf, nil
}

// UnmarshalBinary decodes a bitmap previously produced by
// MarshalBinary, replacing the receiver's contents.
func (c *Compressed) UnmarshalBinary(data []byte) error {
	if len(data) < 24 {
		return errors.New("bitmap: truncated header")
	}
	if v := binary.LittleEndian.Uint64(data[0:8]); v != marshalVersion {
		return fmt.Errorf("bitmap: unsupported version %d", v)
	}
	nWords64 := binary.LittleEndian.Uint64(data[8:16])
	card := int(binary.LittleEndian.Uint64(data[16:24]))
	// Validate the word count against the actual payload size before
	// converting, so oversized counts cannot overflow the arithmetic.
	if uint64(len(data)-24)/8 != nWords64 || (len(data)-24)%8 != 0 {
		return fmt.Errorf("bitmap: payload %d bytes does not hold %d words", len(data), nWords64)
	}
	nWords := int(nWords64)
	if full := logicalWordsOf(data[24:]); full > maxUnmarshalWords {
		return fmt.Errorf("bitmap: payload spans %d logical words, limit %d", full, maxUnmarshalWords)
	}
	c.Reset()
	c.words = make([]uint64, nWords)
	for i := range c.words {
		c.words[i] = binary.LittleEndian.Uint64(data[24+8*i:])
	}
	// Validate the marker structure and recompute the derived state in
	// one run-aware pass: fills contribute in O(1) regardless of their
	// length, so hostile payloads with enormous runs cannot stall the
	// decoder.
	pos := 0
	full := 0
	recount := 0
	lastBit := -1
	for pos < len(c.words) {
		markerPos := pos
		fill, runLen, lit := markerFields(c.words[pos])
		pos += 1 + int(lit)
		if pos > len(c.words) {
			return errors.New("bitmap: marker literal count exceeds payload")
		}
		if fill && runLen > 0 {
			recount += int(runLen) * 64
			lastBit = (full+int(runLen))*64 - 1
		}
		full += int(runLen)
		for li := 0; li < int(lit); li++ {
			w := c.words[markerPos+1+li]
			recount += bits.OnesCount64(w)
			if w != 0 {
				lastBit = full*64 + 63 - bits.LeadingZeros64(w)
			}
			full++
		}
		c.lastMarker = markerPos
	}
	c.fullWords = full
	c.lastBit = lastBit
	c.card = recount
	if c.card != card {
		return fmt.Errorf("bitmap: cardinality mismatch: header %d, payload %d", card, c.card)
	}
	return nil
}
