package bitmap

import "math/bits"

// Scratch is a dense bitset with O(1) reset, used for the per-object
// temporary bitsets b(o_i) that the bounding and verification phases
// create for every object (Algorithms 4-6). A naive dense bitset would
// spend O(n/64) zeroing per object — O(n²/64) per query. Scratch
// versions every word with an epoch stamp instead: Reset bumps the
// epoch and all stale words read as zero.
//
// Scratch additionally maintains its cardinality incrementally so that
// the |b(o_i)| reads in the inner loops are O(1).
type Scratch struct {
	words  []uint64
	stamps []uint32
	epoch  uint32
	card   int
	// maxWord is the highest word index written this epoch, bounding
	// iteration. -1 when nothing was written.
	maxWord int
}

// NewScratch returns a scratch bitset able to hold bits [0, n).
func NewScratch(n int) *Scratch {
	return &Scratch{
		words:   make([]uint64, (n+63)/64),
		stamps:  make([]uint32, (n+63)/64),
		epoch:   1,
		maxWord: -1,
	}
}

// Reset clears the bitset in O(1).
func (s *Scratch) Reset() {
	s.epoch++
	s.card = 0
	s.maxWord = -1
	if s.epoch == 0 { // wrapped: stamps may alias, hard-reset
		for i := range s.stamps {
			s.stamps[i] = 0
		}
		s.epoch = 1
	}
}

// word returns the current value of word i.
func (s *Scratch) word(i int) uint64 {
	if s.stamps[i] != s.epoch {
		return 0
	}
	return s.words[i]
}

// setWord overwrites word i with w, maintaining cardinality.
func (s *Scratch) setWord(i int, w uint64) {
	old := uint64(0)
	if s.stamps[i] == s.epoch {
		old = s.words[i]
	} else {
		s.stamps[i] = s.epoch
	}
	s.words[i] = w
	s.card += bits.OnesCount64(w) - bits.OnesCount64(old)
	if i > s.maxWord {
		s.maxWord = i
	}
}

// Set sets bit i.
func (s *Scratch) Set(i int) {
	w := i >> 6
	s.setWord(w, s.word(w)|1<<uint(i&63))
}

// Clear clears bit i.
func (s *Scratch) Clear(i int) {
	w := i >> 6
	s.setWord(w, s.word(w)&^(1<<uint(i&63)))
}

// Test reports whether bit i is set.
func (s *Scratch) Test(i int) bool {
	return s.word(i>>6)&(1<<uint(i&63)) != 0
}

// Cardinality returns the number of set bits in O(1).
func (s *Scratch) Cardinality() int { return s.card }

// OrCompressed sets s |= c. Zero runs of c are skipped without touching
// the accumulator.
func (s *Scratch) OrCompressed(c *Compressed) {
	c.iterate(func(idx int, w uint64) bool {
		old := s.word(idx)
		if nw := old | w; nw != old {
			s.setWord(idx, nw)
		}
		return true
	})
}

// OrScratch sets s |= t.
func (s *Scratch) OrScratch(t *Scratch) {
	for i := 0; i <= t.maxWord; i++ {
		w := t.word(i)
		if w == 0 {
			continue
		}
		s.setWord(i, s.word(i)|w)
	}
}

// AndScratch sets s &= t. Used by object-partitioned parallel
// verification to restrict a worker's candidate mask to the objects it
// owns.
func (s *Scratch) AndScratch(t *Scratch) {
	for i := 0; i <= s.maxWord; i++ {
		w := s.word(i)
		if w == 0 {
			continue
		}
		if nw := w & t.word(i); nw != w {
			s.setWord(i, nw)
		}
	}
}

// AndNotFromCompressed sets s = c &^ sub, replacing s's current
// contents. This is the "b ← b^adj(c) − b(o_i)" step of verification
// (Algorithm 6, line 10).
func (s *Scratch) AndNotFromCompressed(c *Compressed, sub *Scratch) {
	s.Reset()
	c.iterate(func(idx int, w uint64) bool {
		if masked := w &^ sub.word(idx); masked != 0 {
			s.setWord(idx, masked)
		}
		return true
	})
}

// ForEach calls fn with every set bit in increasing order; fn returning
// false stops the iteration.
func (s *Scratch) ForEach(fn func(bit int) bool) {
	for i := 0; i <= s.maxWord; i++ {
		w := s.word(i)
		base := i << 6
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(base + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Bits returns the set bits in increasing order.
func (s *Scratch) Bits() []int {
	out := make([]int, 0, s.card)
	s.ForEach(func(b int) bool { out = append(out, b); return true })
	return out
}

// ToCompressed compresses the current contents.
func (s *Scratch) ToCompressed() *Compressed {
	c := New()
	zeros := 0
	lastBit := -1
	for i := 0; i <= s.maxWord; i++ {
		w := s.word(i)
		if w == 0 {
			zeros++
			continue
		}
		if zeros > 0 {
			c.appendFill(false, uint64(zeros))
			zeros = 0
		}
		c.appendWord(w)
		c.card += bits.OnesCount64(w)
		lastBit = i<<6 + 63 - bits.LeadingZeros64(w)
	}
	c.lastBit = lastBit
	return c
}
