package bitmap

// Roaring is a from-scratch Roaring-style compressed bitmap: the bit
// space is split into 2^16-bit chunks, each stored in whichever of
// three container types is smallest — a sorted array of 16-bit values
// (sparse), a packed 1024-word bitset (dense), or a run-length list
// (clustered). The paper (footnote 3) notes BIGrid is orthogonal to
// the compressed-bitset choice and uses EWAH; this type exists to back
// that claim with a second, structurally different implementation that
// the property tests and the container ablation benchmark compare
// against Compressed and Dense.

import (
	"math/bits"
	"sort"
)

const (
	arrayMaxLen  = 4096 // above this an array container converts to bitmap
	bitmapWords  = 1024 // 65536 bits
	runMaxCount  = 2047 // above this a run container converts to bitmap
	containerCap = 1 << 16
)

type containerKind uint8

const (
	kindArray containerKind = iota
	kindBitmap
	kindRun
)

// interval is a run of consecutive values [start, start+length].
type interval struct {
	start  uint16
	length uint16 // run covers start..start+length (inclusive)
}

// container holds one 2^16-bit chunk in exactly one representation.
type container struct {
	kind  containerKind
	card  int
	array []uint16
	words []uint64
	runs  []interval
}

// Roaring is the top-level bitmap: sorted chunk keys with their
// containers.
type Roaring struct {
	keys       []uint16
	containers []*container
}

// NewRoaring returns an empty roaring bitmap.
func NewRoaring() *Roaring { return &Roaring{} }

// chunkIndex finds the position of key in r.keys, or (-1, insertion
// point) when absent.
func (r *Roaring) chunkIndex(key uint16) (int, int) {
	i := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= key })
	if i < len(r.keys) && r.keys[i] == key {
		return i, i
	}
	return -1, i
}

// Set sets bit b. Unlike Compressed, bits may be set in any order.
func (r *Roaring) Set(b int) {
	if b < 0 {
		panic("bitmap: negative bit")
	}
	key := uint16(b >> 16)
	low := uint16(b & 0xffff)
	idx, ins := r.chunkIndex(key)
	if idx < 0 {
		c := &container{kind: kindArray}
		r.keys = append(r.keys, 0)
		r.containers = append(r.containers, nil)
		copy(r.keys[ins+1:], r.keys[ins:])
		copy(r.containers[ins+1:], r.containers[ins:])
		r.keys[ins] = key
		r.containers[ins] = c
		idx = ins
	}
	r.containers[idx].set(low)
}

// Test reports whether bit b is set.
func (r *Roaring) Test(b int) bool {
	if b < 0 {
		return false
	}
	idx, _ := r.chunkIndex(uint16(b >> 16))
	if idx < 0 {
		return false
	}
	return r.containers[idx].test(uint16(b & 0xffff))
}

// Cardinality returns the number of set bits.
func (r *Roaring) Cardinality() int {
	n := 0
	for _, c := range r.containers {
		n += c.card
	}
	return n
}

// SizeBytes returns the payload footprint.
func (r *Roaring) SizeBytes() int {
	n := len(r.keys)*2 + len(r.containers)*8
	for _, c := range r.containers {
		n += len(c.array)*2 + len(c.words)*8 + len(c.runs)*4
	}
	return n
}

// ForEach visits every set bit in increasing order; fn returning false
// stops the iteration.
func (r *Roaring) ForEach(fn func(b int) bool) {
	for i, key := range r.keys {
		base := int(key) << 16
		if !r.containers[i].forEach(base, fn) {
			return
		}
	}
}

// Bits returns the set bits in increasing order.
func (r *Roaring) Bits() []int {
	out := make([]int, 0, r.Cardinality())
	r.ForEach(func(b int) bool { out = append(out, b); return true })
	return out
}

// Optimize converts each container to its smallest representation,
// including run containers for clustered data.
func (r *Roaring) Optimize() {
	for _, c := range r.containers {
		c.optimize()
	}
}

// --- container operations ---

func (c *container) set(v uint16) {
	switch c.kind {
	case kindArray:
		i := sort.Search(len(c.array), func(i int) bool { return c.array[i] >= v })
		if i < len(c.array) && c.array[i] == v {
			return
		}
		c.array = append(c.array, 0)
		copy(c.array[i+1:], c.array[i:])
		c.array[i] = v
		c.card++
		if len(c.array) > arrayMaxLen {
			c.toBitmap()
		}
	case kindBitmap:
		w := int(v >> 6)
		mask := uint64(1) << (v & 63)
		if c.words[w]&mask == 0 {
			c.words[w] |= mask
			c.card++
		}
	case kindRun:
		// Run containers are produced by optimize; mutating one falls
		// back to bitmap form first.
		c.toBitmapFromRuns()
		c.set(v)
	}
}

func (c *container) test(v uint16) bool {
	switch c.kind {
	case kindArray:
		i := sort.Search(len(c.array), func(i int) bool { return c.array[i] >= v })
		return i < len(c.array) && c.array[i] == v
	case kindBitmap:
		return c.words[v>>6]&(1<<(v&63)) != 0
	default:
		i := sort.Search(len(c.runs), func(i int) bool {
			return uint32(c.runs[i].start)+uint32(c.runs[i].length) >= uint32(v)
		})
		return i < len(c.runs) && c.runs[i].start <= v
	}
}

func (c *container) forEach(base int, fn func(int) bool) bool {
	switch c.kind {
	case kindArray:
		for _, v := range c.array {
			if !fn(base + int(v)) {
				return false
			}
		}
	case kindBitmap:
		for wi, w := range c.words {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				if !fn(base + wi<<6 + b) {
					return false
				}
				w &= w - 1
			}
		}
	default:
		for _, run := range c.runs {
			for v := int(run.start); v <= int(run.start)+int(run.length); v++ {
				if !fn(base + v) {
					return false
				}
			}
		}
	}
	return true
}

func (c *container) toBitmap() {
	words := make([]uint64, bitmapWords)
	for _, v := range c.array {
		words[v>>6] |= 1 << (v & 63)
	}
	c.kind = kindBitmap
	c.words = words
	c.array = nil
}

func (c *container) toBitmapFromRuns() {
	words := make([]uint64, bitmapWords)
	card := 0
	for _, run := range c.runs {
		for v := int(run.start); v <= int(run.start)+int(run.length); v++ {
			words[v>>6] |= 1 << (uint(v) & 63)
			card++
		}
	}
	c.kind = kindBitmap
	c.words = words
	c.runs = nil
	c.card = card
}

// runsOf returns the run-length encoding of the container's bits.
func (c *container) runsOf() []interval {
	var runs []interval
	prev := -2
	for wi, w := range c.wordsView() {
		for w != 0 {
			b := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if b == prev+1 && len(runs) > 0 && runs[len(runs)-1].length < 0xffff {
				runs[len(runs)-1].length++
			} else {
				runs = append(runs, interval{start: uint16(b)})
			}
			prev = b
		}
	}
	return runs
}

// wordsView returns the container's bits as a 1024-word view, building
// one for array containers.
func (c *container) wordsView() []uint64 {
	switch c.kind {
	case kindBitmap:
		return c.words
	case kindArray:
		words := make([]uint64, bitmapWords)
		for _, v := range c.array {
			words[v>>6] |= 1 << (v & 63)
		}
		return words
	default:
		words := make([]uint64, bitmapWords)
		for _, run := range c.runs {
			for v := int(run.start); v <= int(run.start)+int(run.length); v++ {
				words[v>>6] |= 1 << (uint(v) & 63)
			}
		}
		return words
	}
}

// optimize picks the smallest representation for the container.
func (c *container) optimize() {
	runs := c.runsOf()
	runBytes := len(runs) * 4
	arrayBytes := c.card * 2
	bitmapBytes := bitmapWords * 8
	switch {
	case len(runs) <= runMaxCount && runBytes <= arrayBytes && runBytes <= bitmapBytes:
		c.kind = kindRun
		c.runs = runs
		c.array = nil
		c.words = nil
	case c.card <= arrayMaxLen:
		if c.kind != kindArray {
			arr := make([]uint16, 0, c.card)
			c.forEach(0, func(b int) bool { arr = append(arr, uint16(b)); return true })
			c.kind = kindArray
			c.array = arr
			c.words = nil
			c.runs = nil
		}
	default:
		if c.kind != kindBitmap {
			words := c.wordsView()
			c.kind = kindBitmap
			c.words = words
			c.array = nil
			c.runs = nil
		}
	}
}

// RoaringOr returns a | b as a new roaring bitmap.
func RoaringOr(a, b *Roaring) *Roaring {
	out := NewRoaring()
	i, j := 0, 0
	for i < len(a.keys) || j < len(b.keys) {
		switch {
		case j >= len(b.keys) || (i < len(a.keys) && a.keys[i] < b.keys[j]):
			out.keys = append(out.keys, a.keys[i])
			out.containers = append(out.containers, a.containers[i].clone())
			i++
		case i >= len(a.keys) || b.keys[j] < a.keys[i]:
			out.keys = append(out.keys, b.keys[j])
			out.containers = append(out.containers, b.containers[j].clone())
			j++
		default:
			out.keys = append(out.keys, a.keys[i])
			out.containers = append(out.containers, orContainers(a.containers[i], b.containers[j]))
			i++
			j++
		}
	}
	return out
}

// RoaringAnd returns a & b as a new roaring bitmap.
func RoaringAnd(a, b *Roaring) *Roaring {
	out := NewRoaring()
	i, j := 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			i++
		case b.keys[j] < a.keys[i]:
			j++
		default:
			c := andContainers(a.containers[i], b.containers[j])
			if c.card > 0 {
				out.keys = append(out.keys, a.keys[i])
				out.containers = append(out.containers, c)
			}
			i++
			j++
		}
	}
	return out
}

// RoaringAndNot returns a &^ b as a new roaring bitmap.
func RoaringAndNot(a, b *Roaring) *Roaring {
	out := NewRoaring()
	j := 0
	for i, key := range a.keys {
		for j < len(b.keys) && b.keys[j] < key {
			j++
		}
		var c *container
		if j < len(b.keys) && b.keys[j] == key {
			c = andNotContainers(a.containers[i], b.containers[j])
		} else {
			c = a.containers[i].clone()
		}
		if c.card > 0 {
			out.keys = append(out.keys, key)
			out.containers = append(out.containers, c)
		}
	}
	return out
}

func (c *container) clone() *container {
	d := &container{kind: c.kind, card: c.card}
	d.array = append([]uint16(nil), c.array...)
	d.words = append([]uint64(nil), c.words...)
	d.runs = append([]interval(nil), c.runs...)
	return d
}

func wordOp(a, b *container, op func(x, y uint64) uint64) *container {
	wa, wb := a.wordsView(), b.wordsView()
	words := make([]uint64, bitmapWords)
	card := 0
	for i := range words {
		w := op(wa[i], wb[i])
		words[i] = w
		card += bits.OnesCount64(w)
	}
	out := &container{kind: kindBitmap, words: words, card: card}
	out.optimize()
	return out
}

func orContainers(a, b *container) *container {
	return wordOp(a, b, func(x, y uint64) uint64 { return x | y })
}

func andContainers(a, b *container) *container {
	return wordOp(a, b, func(x, y uint64) uint64 { return x & y })
}

func andNotContainers(a, b *container) *container {
	return wordOp(a, b, func(x, y uint64) uint64 { return x &^ y })
}

// RoaringFromBits builds a roaring bitmap from bit positions.
func RoaringFromBits(bitsSet ...int) *Roaring {
	r := NewRoaring()
	for _, b := range bitsSet {
		r.Set(b)
	}
	return r
}
