package bitmap

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestScratchBasic(t *testing.T) {
	s := NewScratch(1000)
	s.Set(1)
	s.Set(64)
	s.Set(999)
	if s.Cardinality() != 3 {
		t.Fatalf("card = %d, want 3", s.Cardinality())
	}
	if !s.Test(64) || s.Test(63) {
		t.Fatal("Test wrong")
	}
	s.Clear(64)
	if s.Cardinality() != 2 || s.Test(64) {
		t.Fatal("Clear failed")
	}
	if got := s.Bits(); !reflect.DeepEqual(got, []int{1, 999}) {
		t.Fatalf("Bits = %v", got)
	}
}

func TestScratchResetIsCheapAndComplete(t *testing.T) {
	s := NewScratch(256)
	for i := 0; i < 256; i++ {
		s.Set(i)
	}
	s.Reset()
	if s.Cardinality() != 0 {
		t.Fatalf("card after Reset = %d", s.Cardinality())
	}
	for i := 0; i < 256; i++ {
		if s.Test(i) {
			t.Fatalf("bit %d survived Reset", i)
		}
	}
	s.Set(10)
	if got := s.Bits(); !reflect.DeepEqual(got, []int{10}) {
		t.Fatalf("Bits after reuse = %v", got)
	}
}

func TestScratchEpochWrap(t *testing.T) {
	s := NewScratch(128)
	s.Set(5)
	s.epoch = ^uint32(0) // force wrap on next Reset
	s.Reset()
	if s.Test(5) || s.Cardinality() != 0 {
		t.Fatal("bit visible after epoch wrap")
	}
	s.Set(7)
	if !s.Test(7) {
		t.Fatal("Set after wrap failed")
	}
}

func TestScratchOrCompressed(t *testing.T) {
	n := 2048
	s := NewScratch(n)
	s.Set(3)
	c := FromBits(n, 3, 100, 2000)
	s.OrCompressed(c)
	if got := s.Bits(); !reflect.DeepEqual(got, []int{3, 100, 2000}) {
		t.Fatalf("Bits = %v", got)
	}
	if s.Cardinality() != 3 {
		t.Fatalf("card = %d", s.Cardinality())
	}
}

func TestScratchOrScratch(t *testing.T) {
	n := 512
	a, b := NewScratch(n), NewScratch(n)
	a.Set(1)
	a.Set(200)
	b.Set(200)
	b.Set(300)
	a.OrScratch(b)
	if got := a.Bits(); !reflect.DeepEqual(got, []int{1, 200, 300}) {
		t.Fatalf("Bits = %v", got)
	}
}

func TestScratchAndNotFromCompressed(t *testing.T) {
	n := 512
	sub := NewScratch(n)
	sub.Set(10)
	sub.Set(20)
	c := FromBits(n, 10, 20, 30, 400)
	out := NewScratch(n)
	out.Set(499) // stale content must be replaced
	out.AndNotFromCompressed(c, sub)
	if got := out.Bits(); !reflect.DeepEqual(got, []int{30, 400}) {
		t.Fatalf("Bits = %v", got)
	}
	if out.Cardinality() != 2 {
		t.Fatalf("card = %d", out.Cardinality())
	}
}

func TestScratchToCompressed(t *testing.T) {
	n := 4096
	s := NewScratch(n)
	for i := 100; i < 300; i++ {
		s.Set(i)
	}
	s.Set(4000)
	c := s.ToCompressed()
	if !reflect.DeepEqual(c.Bits(), s.Bits()) {
		t.Fatal("ToCompressed bits mismatch")
	}
	if c.Cardinality() != s.Cardinality() || c.MaxBit() != 4000 {
		t.Fatalf("metadata mismatch: card=%d max=%d", c.Cardinality(), c.MaxBit())
	}
}

// Property: a random interleaving of Set/Clear tracked in parallel on a
// Dense reference always agrees.
func TestScratchQuickAgainstDense(t *testing.T) {
	f := func(ops []uint16, clears []bool) bool {
		n := 1 << 16
		s := NewScratch(n)
		d := NewDense(n)
		for i, o := range ops {
			bit := int(o)
			if i < len(clears) && clears[i] {
				s.Clear(bit)
				d.Clear(bit)
			} else {
				s.Set(bit)
				d.Set(bit)
			}
		}
		return s.Cardinality() == d.Cardinality() && reflect.DeepEqual(s.Bits(), d.Bits())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestScratchReuseAcrossManyEpochs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 4096
	s := NewScratch(n)
	for epoch := 0; epoch < 200; epoch++ {
		s.Reset()
		d := NewDense(n)
		for j := 0; j < 50; j++ {
			b := rng.Intn(n)
			s.Set(b)
			d.Set(b)
		}
		if s.Cardinality() != d.Cardinality() {
			t.Fatalf("epoch %d: card %d vs %d", epoch, s.Cardinality(), d.Cardinality())
		}
		if !reflect.DeepEqual(s.Bits(), d.Bits()) {
			t.Fatalf("epoch %d: bits mismatch", epoch)
		}
	}
}

func TestDenseOps(t *testing.T) {
	d := NewDense(200)
	d.Set(0)
	d.Set(199)
	if d.Len() != 200 || d.Cardinality() != 2 {
		t.Fatalf("Len/Card wrong: %d %d", d.Len(), d.Cardinality())
	}
	e := d.Clone()
	e.Clear(0)
	if d.Cardinality() != 2 || e.Cardinality() != 1 {
		t.Fatal("Clone not independent")
	}
	d.Reset()
	if d.Cardinality() != 0 {
		t.Fatal("Reset failed")
	}
	d.OrCompressed(FromBits(200, 7, 63, 64))
	if got := d.Bits(); !reflect.DeepEqual(got, []int{7, 63, 64}) {
		t.Fatalf("OrCompressed = %v", got)
	}
	visited := 0
	d.ForEach(func(int) bool { visited++; return visited < 2 })
	if visited != 2 {
		t.Fatalf("ForEach early stop visited %d", visited)
	}
}
