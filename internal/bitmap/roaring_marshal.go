package bitmap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// roaringMagic identifies the on-disk encoding of Roaring.
const roaringMagic = uint32(0x524f4152) // "ROAR"

// MarshalBinary encodes the bitmap. Containers are serialised in their
// current representation, so calling Optimize first yields the
// smallest encoding.
func (r *Roaring) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 16+r.SizeBytes())
	var u32 [4]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		buf = append(buf, u32[:]...)
	}
	put16 := func(v uint16) {
		buf = append(buf, byte(v), byte(v>>8))
	}
	put32(roaringMagic)
	put32(uint32(len(r.keys)))
	for i, key := range r.keys {
		c := r.containers[i]
		put16(key)
		buf = append(buf, byte(c.kind))
		put32(uint32(c.card))
		switch c.kind {
		case kindArray:
			put32(uint32(len(c.array)))
			for _, v := range c.array {
				put16(v)
			}
		case kindBitmap:
			for _, w := range c.words {
				var u64 [8]byte
				binary.LittleEndian.PutUint64(u64[:], w)
				buf = append(buf, u64[:]...)
			}
		case kindRun:
			put32(uint32(len(c.runs)))
			for _, run := range c.runs {
				put16(run.start)
				put16(run.length)
			}
		}
	}
	return buf, nil
}

// UnmarshalBinary decodes a bitmap produced by MarshalBinary, replacing
// the receiver's contents.
func (r *Roaring) UnmarshalBinary(data []byte) error {
	pos := 0
	get32 := func() (uint32, error) {
		if pos+4 > len(data) {
			return 0, errors.New("bitmap: truncated roaring payload")
		}
		v := binary.LittleEndian.Uint32(data[pos:])
		pos += 4
		return v, nil
	}
	get16 := func() (uint16, error) {
		if pos+2 > len(data) {
			return 0, errors.New("bitmap: truncated roaring payload")
		}
		v := uint16(data[pos]) | uint16(data[pos+1])<<8
		pos += 2
		return v, nil
	}
	magic, err := get32()
	if err != nil {
		return err
	}
	if magic != roaringMagic {
		return errors.New("bitmap: bad roaring magic")
	}
	nKeys, err := get32()
	if err != nil {
		return err
	}
	out := Roaring{}
	var prevKey int = -1
	for i := uint32(0); i < nKeys; i++ {
		key, err := get16()
		if err != nil {
			return err
		}
		if int(key) <= prevKey {
			return errors.New("bitmap: roaring keys not strictly increasing")
		}
		prevKey = int(key)
		if pos >= len(data) {
			return errors.New("bitmap: truncated roaring container")
		}
		kind := containerKind(data[pos])
		pos++
		card, err := get32()
		if err != nil {
			return err
		}
		c := &container{kind: kind, card: int(card)}
		switch kind {
		case kindArray:
			n, err := get32()
			if err != nil {
				return err
			}
			if n > containerCap {
				return errors.New("bitmap: implausible array length")
			}
			c.array = make([]uint16, n)
			for j := range c.array {
				if c.array[j], err = get16(); err != nil {
					return err
				}
				if j > 0 && c.array[j] <= c.array[j-1] {
					return errors.New("bitmap: roaring array not sorted")
				}
			}
			if int(card) != len(c.array) {
				return errors.New("bitmap: array cardinality mismatch")
			}
		case kindBitmap:
			if pos+bitmapWords*8 > len(data) {
				return errors.New("bitmap: truncated roaring bitmap container")
			}
			c.words = make([]uint64, bitmapWords)
			recount := 0
			for j := range c.words {
				c.words[j] = binary.LittleEndian.Uint64(data[pos:])
				pos += 8
				recount += bits.OnesCount64(c.words[j])
			}
			if recount != int(card) {
				return errors.New("bitmap: bitmap cardinality mismatch")
			}
		case kindRun:
			n, err := get32()
			if err != nil {
				return err
			}
			if n > containerCap {
				return errors.New("bitmap: implausible run count")
			}
			c.runs = make([]interval, n)
			recount := 0
			for j := range c.runs {
				if c.runs[j].start, err = get16(); err != nil {
					return err
				}
				if c.runs[j].length, err = get16(); err != nil {
					return err
				}
				recount += int(c.runs[j].length) + 1
			}
			if recount != int(card) {
				return errors.New("bitmap: run cardinality mismatch")
			}
		default:
			return fmt.Errorf("bitmap: unknown container kind %d", kind)
		}
		out.keys = append(out.keys, key)
		out.containers = append(out.containers, c)
	}
	if pos != len(data) {
		return errors.New("bitmap: trailing bytes in roaring payload")
	}
	*r = out
	return nil
}
