package bitmap

import "math/bits"

// segDecoder walks a compressed bitmap as a stream of 64-bit words,
// exposing fill runs so that run-aware consumers can process them in
// bulk. Each marker contributes a fill phase (runLen identical words)
// followed by a literal phase; an unflushed pending word is served
// last, preceded by its zero gap.
type segDecoder struct {
	c   *Compressed
	pos int // next unread index in c.words

	fill    bool   // current phase is a fill
	fillVal uint64 // 0 or ^0 when fill
	left    int    // words left in the current phase
	litPos  int    // index of next literal word; -1 means serve c.pending

	litLeft      int // literals of the current marker still to be served
	pendingState int // 0 = not reached, 1 = gap served, 2 = done
}

func newSegDecoder(c *Compressed) *segDecoder {
	d := &segDecoder{c: c}
	d.advance()
	return d
}

// done reports whether the stream is exhausted.
func (d *segDecoder) done() bool { return d.left == 0 }

// advance loads the next non-empty phase.
func (d *segDecoder) advance() {
	for d.left == 0 {
		if d.litLeft > 0 {
			d.fill = false
			d.left = d.litLeft
			d.litLeft = 0
			return
		}
		if d.pos < len(d.c.words) {
			fill, runLen, lit := markerFields(d.c.words[d.pos])
			d.pos++
			d.litPos = d.pos
			d.pos += int(lit)
			if runLen > 0 {
				d.fill = true
				d.fillVal = 0
				if fill {
					d.fillVal = ^uint64(0)
				}
				d.left = int(runLen)
				d.litLeft = int(lit)
				return
			}
			if lit > 0 {
				d.fill = false
				d.left = int(lit)
				return
			}
			continue
		}
		switch d.pendingState {
		case 0:
			d.pendingState = 1
			if d.c.pendingIdx < 0 {
				d.pendingState = 2
				return
			}
			if gap := d.c.pendingIdx - d.c.fullWords; gap > 0 {
				d.fill = true
				d.fillVal = 0
				d.left = gap
				return
			}
		case 2:
			return
		}
		d.pendingState = 2
		d.fill = false
		d.left = 1
		d.litPos = -1
		return
	}
}

// next returns the next word. The caller must ensure !done().
func (d *segDecoder) next() uint64 {
	var w uint64
	switch {
	case d.fill:
		w = d.fillVal
	case d.litPos < 0:
		w = d.c.pending
	default:
		w = d.c.words[d.litPos]
		d.litPos++
	}
	d.left--
	if d.left == 0 {
		d.advance()
	}
	return w
}

// fillRun reports whether the decoder is inside a fill phase and, if
// so, its value and remaining length.
func (d *segDecoder) fillRun() (val uint64, n int, ok bool) {
	if d.left > 0 && d.fill {
		return d.fillVal, d.left, true
	}
	return 0, 0, false
}

// skip consumes n words from the current fill phase.
func (d *segDecoder) skip(n int) {
	d.left -= n
	if d.left == 0 {
		d.advance()
	}
}

type binOp int

const (
	opOr binOp = iota
	opAnd
	opAndNot
)

func (op binOp) apply(a, b uint64) uint64 {
	switch op {
	case opOr:
		return a | b
	case opAnd:
		return a & b
	default:
		return a &^ b
	}
}

// merge computes "a op b" as a new compressed bitmap, collapsing
// aligned fill runs in bulk.
func merge(a, b *Compressed, op binOp) *Compressed {
	out := New()
	da, db := newSegDecoder(a), newSegDecoder(b)
	emit := func(w uint64) {
		out.appendWord(w)
		out.card += bits.OnesCount64(w)
	}
	for !da.done() && !db.done() {
		va, na, fa := da.fillRun()
		vb, nb, fb := db.fillRun()
		if fa && fb {
			n := na
			if nb < n {
				n = nb
			}
			switch w := op.apply(va, vb); w {
			case 0:
				out.appendFill(false, uint64(n))
			case ^uint64(0):
				out.appendFill(true, uint64(n))
				out.card += n * 64
			default:
				for k := 0; k < n; k++ {
					emit(w)
				}
			}
			da.skip(n)
			db.skip(n)
			continue
		}
		emit(op.apply(da.next(), db.next()))
	}
	for !da.done() {
		if w := op.apply(da.next(), 0); w == 0 {
			out.appendFill(false, 1)
		} else {
			emit(w)
		}
	}
	for !db.done() {
		if w := op.apply(0, db.next()); w == 0 {
			out.appendFill(false, 1)
		} else {
			emit(w)
		}
	}
	out.recomputeLastBit()
	return out
}

// recomputeLastBit fixes lastBit after bulk construction by scanning
// the encoded words.
func (c *Compressed) recomputeLastBit() {
	last := -1
	c.iterate(func(idx int, w uint64) bool {
		if w != 0 {
			last = idx<<6 + 63 - bits.LeadingZeros64(w)
		}
		return true
	})
	c.lastBit = last
}

// Or returns a | b as a new compressed bitmap.
func Or(a, b *Compressed) *Compressed { return merge(a, b, opOr) }

// And returns a & b as a new compressed bitmap.
func And(a, b *Compressed) *Compressed { return merge(a, b, opAnd) }

// AndNot returns a &^ b as a new compressed bitmap.
func AndNot(a, b *Compressed) *Compressed { return merge(a, b, opAndNot) }

// OrAll returns the union of the given bitmaps. Nil entries are treated
// as empty. The result is freshly allocated.
func OrAll(bms []*Compressed) *Compressed {
	out := New()
	for _, b := range bms {
		if b == nil || b.Empty() {
			continue
		}
		if out.Empty() {
			out = b.Clone()
			continue
		}
		out = Or(out, b)
	}
	return out
}
