package bitmap

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// refOp applies the op on dense references.
func refOp(op binOp, n int, a, b []int) []int {
	da, db := NewDense(n), NewDense(n)
	for _, x := range a {
		da.Set(x)
	}
	for _, x := range b {
		db.Set(x)
	}
	switch op {
	case opOr:
		da.Or(db)
	case opAnd:
		da.And(db)
	default:
		da.AndNot(db)
	}
	return da.Bits()
}

func TestMergeOpsSmall(t *testing.T) {
	n := 300
	a := FromBits(n, 1, 2, 64, 65, 128, 200)
	b := FromBits(n, 2, 3, 65, 129, 200, 250)

	if got, want := Or(a, b).Bits(), refOp(opOr, n, a.Bits(), b.Bits()); !reflect.DeepEqual(got, want) {
		t.Fatalf("Or = %v, want %v", got, want)
	}
	if got, want := And(a, b).Bits(), refOp(opAnd, n, a.Bits(), b.Bits()); !reflect.DeepEqual(got, want) {
		t.Fatalf("And = %v, want %v", got, want)
	}
	if got, want := AndNot(a, b).Bits(), refOp(opAndNot, n, a.Bits(), b.Bits()); !reflect.DeepEqual(got, want) {
		t.Fatalf("AndNot = %v, want %v", got, want)
	}
}

func TestMergeOpsEmptyOperands(t *testing.T) {
	n := 200
	a := FromBits(n, 5, 100)
	e := New()
	if got := Or(a, e).Bits(); !reflect.DeepEqual(got, a.Bits()) {
		t.Fatalf("Or with empty = %v", got)
	}
	if got := Or(e, a).Bits(); !reflect.DeepEqual(got, a.Bits()) {
		t.Fatalf("Or empty-first = %v", got)
	}
	if got := And(a, e).Bits(); len(got) != 0 {
		t.Fatalf("And with empty = %v", got)
	}
	if got := AndNot(a, e).Bits(); !reflect.DeepEqual(got, a.Bits()) {
		t.Fatalf("AndNot with empty = %v", got)
	}
	if got := AndNot(e, a).Bits(); len(got) != 0 {
		t.Fatalf("AndNot empty-first = %v", got)
	}
}

func TestMergeOpsUnequalLengths(t *testing.T) {
	a := FromBits(100000, 99999)
	b := FromBits(100, 0, 1)
	got := Or(a, b)
	want := []int{0, 1, 99999}
	if !reflect.DeepEqual(got.Bits(), want) {
		t.Fatalf("Or unequal = %v, want %v", got.Bits(), want)
	}
	if got.Cardinality() != 3 || got.MaxBit() != 99999 {
		t.Fatalf("metadata: card=%d max=%d", got.Cardinality(), got.MaxBit())
	}
}

func TestMergeWithPendingWords(t *testing.T) {
	// Operands that still have unflushed pending words must merge
	// correctly.
	a := New()
	a.Set(3)
	a.Set(700) // pending word at index 10
	b := New()
	b.Set(700)
	b.Set(701)
	got := Or(a, b).Bits()
	want := []int{3, 700, 701}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Or with pending = %v, want %v", got, want)
	}
	if got := And(a, b).Bits(); !reflect.DeepEqual(got, []int{700}) {
		t.Fatalf("And with pending = %v", got)
	}
}

func TestOrAll(t *testing.T) {
	n := 500
	bms := []*Compressed{
		FromBits(n, 1, 2),
		nil,
		New(),
		FromBits(n, 2, 3, 400),
		FromBits(n, 100),
	}
	got := OrAll(bms).Bits()
	want := []int{1, 2, 3, 100, 400}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("OrAll = %v, want %v", got, want)
	}
	if got := OrAll(nil); !got.Empty() {
		t.Fatal("OrAll(nil) not empty")
	}
}

// quick.Check property: compressed ops agree with dense reference ops
// for arbitrary bit sets.
func TestMergeOpsQuick(t *testing.T) {
	type input struct {
		A, B []uint16
	}
	f := func(in input) bool {
		n := 1 << 16
		da, db := NewDense(n), NewDense(n)
		for _, x := range in.A {
			da.Set(int(x))
		}
		for _, x := range in.B {
			db.Set(int(x))
		}
		ca, cb := FromDense(da), FromDense(db)
		for _, op := range []binOp{opOr, opAnd, opAndNot} {
			ref := da.Clone()
			switch op {
			case opOr:
				ref.Or(db)
			case opAnd:
				ref.And(db)
			default:
				ref.AndNot(db)
			}
			got := merge(ca, cb, op)
			if !reflect.DeepEqual(got.Bits(), ref.Bits()) {
				return false
			}
			if got.Cardinality() != ref.Cardinality() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeFillRuns(t *testing.T) {
	// Two bitmaps with large aligned one-fills exercise the bulk fill
	// path of merge.
	n := 1 << 14
	da, db := NewDense(n), NewDense(n)
	for i := 0; i < 4096; i++ {
		da.Set(i)
	}
	for i := 2048; i < 8192; i++ {
		db.Set(i)
	}
	ca, cb := FromDense(da), FromDense(db)
	or := Or(ca, cb)
	if or.Cardinality() != 8192 {
		t.Fatalf("Or card = %d, want 8192", or.Cardinality())
	}
	and := And(ca, cb)
	if and.Cardinality() != 2048 {
		t.Fatalf("And card = %d, want 2048", and.Cardinality())
	}
	anot := AndNot(ca, cb)
	if anot.Cardinality() != 2048 {
		t.Fatalf("AndNot card = %d, want 2048", anot.Cardinality())
	}
	// Fill-fill merging must keep the result compact.
	if or.SizeBytes() > 64 {
		t.Fatalf("Or of fills not compact: %d bytes", or.SizeBytes())
	}
}

func BenchmarkOrCompressedSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 20
	bms := make([]*Compressed, 64)
	for i := range bms {
		d := NewDense(n)
		for j := 0; j < 200; j++ {
			d.Set(rng.Intn(n))
		}
		bms[i] = FromDense(d)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewScratch(n)
		for _, bm := range bms {
			s.OrCompressed(bm)
		}
		_ = s.Cardinality()
	}
}
