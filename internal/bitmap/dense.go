package bitmap

import "math/bits"

// Dense is a plain uncompressed bitset with a fixed capacity. It serves
// as the reference implementation for property tests, as the ablation
// baseline ("what if BIGrid used uncompressed bitsets"), and as the
// staging area for bitmaps whose bits arrive out of order.
type Dense struct {
	words []uint64
	n     int
}

// NewDense returns a dense bitset able to hold bits [0, n).
func NewDense(n int) *Dense {
	return &Dense{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity in bits.
func (d *Dense) Len() int { return d.n }

// Set sets bit i.
func (d *Dense) Set(i int) { d.words[i>>6] |= 1 << uint(i&63) }

// Clear clears bit i.
func (d *Dense) Clear(i int) { d.words[i>>6] &^= 1 << uint(i&63) }

// Test reports whether bit i is set.
func (d *Dense) Test(i int) bool { return d.words[i>>6]&(1<<uint(i&63)) != 0 }

// Cardinality returns the number of set bits. It is O(n/64).
func (d *Dense) Cardinality() int {
	c := 0
	for _, w := range d.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset clears every bit.
func (d *Dense) Reset() {
	for i := range d.words {
		d.words[i] = 0
	}
}

// Or sets d |= e. The bitsets must have the same capacity.
func (d *Dense) Or(e *Dense) {
	for i, w := range e.words {
		d.words[i] |= w
	}
}

// AndNot sets d &^= e. The bitsets must have the same capacity.
func (d *Dense) AndNot(e *Dense) {
	for i, w := range e.words {
		d.words[i] &^= w
	}
}

// And sets d &= e. The bitsets must have the same capacity.
func (d *Dense) And(e *Dense) {
	for i, w := range e.words {
		d.words[i] &= w
	}
}

// OrCompressed sets d |= c.
func (d *Dense) OrCompressed(c *Compressed) {
	c.iterate(func(idx int, w uint64) bool {
		d.words[idx] |= w
		return true
	})
}

// ForEach calls fn with every set bit in increasing order; fn returning
// false stops the iteration.
func (d *Dense) ForEach(fn func(bit int) bool) {
	for i, w := range d.words {
		base := i << 6
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(base + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Bits returns the set bits in increasing order. The result is never
// nil, so it compares equal to the other bitset types' Bits output.
func (d *Dense) Bits() []int {
	out := make([]int, 0, 8)
	d.ForEach(func(b int) bool { out = append(out, b); return true })
	return out
}

// SizeBytes returns the memory footprint of the bit payload.
func (d *Dense) SizeBytes() int { return len(d.words) * 8 }

// Clone returns a deep copy of d.
func (d *Dense) Clone() *Dense {
	return &Dense{words: append([]uint64(nil), d.words...), n: d.n}
}
