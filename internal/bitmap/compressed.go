// Package bitmap implements the bitset machinery behind BIGrid: an
// EWAH-style 64-bit word-aligned compressed bitmap (run-length encoded
// fills plus literal words), a plain dense bitset, and an
// epoch-versioned "scratch" accumulator used for the per-object
// temporary bitsets of the lower-bounding, upper-bounding and
// verification phases.
//
// The compressed format follows the word-aligned hybrid of Lemire,
// Kaser and Aouiche (EWAH): the payload is a sequence of marker words,
// each followed by zero or more literal words. A marker encodes
//
//	bit 0      : the fill bit (value of the run words)
//	bits 1-32  : run length, in 64-bit words
//	bits 33-63 : number of literal words following the marker
//
// Runs of identical words (all-zero for sparse space, all-one for dense
// space) therefore cost one word regardless of length, which is exactly
// the skew the paper exploits (§III-A).
package bitmap

import (
	"fmt"
	"math/bits"
)

const (
	maxRunLen = 1<<32 - 1 // run length field is 32 bits
	maxLitLen = 1<<31 - 1 // literal count field is 31 bits
	wordBits  = 64
)

func makeMarker(fill bool, runLen, lit uint64) uint64 {
	m := runLen<<1 | lit<<33
	if fill {
		m |= 1
	}
	return m
}

func markerFields(m uint64) (fill bool, runLen, lit uint64) {
	return m&1 == 1, (m >> 1) & maxRunLen, m >> 33
}

// Compressed is an EWAH-compressed bitmap. Bits must be set in
// non-decreasing order (repeating the most recent bit is allowed),
// which matches how BIGrid construction scans objects: grid mapping
// visits objects in increasing id order, so each cell's bitset is
// appended to monotonically. Arbitrary-order construction goes through
// Dense followed by FromDense.
//
// The zero value is an empty bitmap ready to use.
type Compressed struct {
	words []uint64 // marker + literal words
	card  int      // number of set bits
	// Append state. pendingIdx is the logical word index the pending
	// word will occupy, or -1 when there is no pending word. fullWords
	// counts logical words already encoded into words.
	pending    uint64
	pendingIdx int
	fullWords  int
	lastBit    int // highest bit set so far, -1 when empty
	// lastMarker is the index in words of the marker currently being
	// extended, or -1 when none exists yet.
	lastMarker int
}

// New returns an empty compressed bitmap.
func New() *Compressed {
	return &Compressed{pendingIdx: -1, lastBit: -1, lastMarker: -1}
}

func (c *Compressed) init() {
	if c.lastMarker == 0 && c.pendingIdx == 0 && c.lastBit == 0 && len(c.words) == 0 && c.card == 0 && c.fullWords == 0 {
		// Zero value: fix the sentinel fields.
		c.pendingIdx = -1
		c.lastBit = -1
		c.lastMarker = -1
	}
}

// Set sets bit i. i must be greater than or equal to the last bit set;
// setting the same bit repeatedly is a no-op. Set panics on
// out-of-order calls, which would silently corrupt the encoding.
func (c *Compressed) Set(i int) {
	c.init()
	if i < 0 {
		panic(fmt.Sprintf("bitmap: negative bit %d", i))
	}
	if i == c.lastBit {
		return
	}
	if i < c.lastBit {
		panic(fmt.Sprintf("bitmap: out-of-order Set(%d) after %d", i, c.lastBit))
	}
	w := i >> 6
	if c.pendingIdx < 0 {
		c.pendingIdx = w
	} else if w > c.pendingIdx {
		c.flushPending()
		c.appendFill(false, uint64(w-c.fullWords))
		c.pending = 0
		c.pendingIdx = w
	}
	c.pending |= 1 << uint(i&63)
	c.lastBit = i
	c.card++
}

// flushPending encodes the pending literal word, including any zero-run
// gap that precedes it.
func (c *Compressed) flushPending() {
	if c.pendingIdx < 0 {
		return
	}
	if gap := c.pendingIdx - c.fullWords; gap > 0 {
		c.appendFill(false, uint64(gap))
	}
	c.appendWord(c.pending)
	c.pending = 0
	c.pendingIdx = -1
}

// appendWord encodes one logical 64-bit word at position fullWords.
func (c *Compressed) appendWord(w uint64) {
	switch w {
	case 0:
		c.appendFill(false, 1)
	case ^uint64(0):
		c.appendFill(true, 1)
	default:
		c.appendLiteral(w)
	}
	// appendFill/appendLiteral update fullWords themselves.
}

func (c *Compressed) appendFill(fill bool, n uint64) {
	if n == 0 {
		return
	}
	c.fullWords += int(n)
	for n > 0 {
		take := n
		if c.lastMarker >= 0 {
			f, runLen, lit := markerFields(c.words[c.lastMarker])
			if lit == 0 && (f == fill || runLen == 0) && runLen < maxRunLen {
				room := uint64(maxRunLen) - runLen
				if take > room {
					take = room
				}
				c.words[c.lastMarker] = makeMarker(fill, runLen+take, 0)
				n -= take
				continue
			}
		}
		if take > maxRunLen {
			take = maxRunLen
		}
		c.words = append(c.words, makeMarker(fill, take, 0))
		c.lastMarker = len(c.words) - 1
		n -= take
	}
}

func (c *Compressed) appendLiteral(w uint64) {
	c.fullWords++
	if c.lastMarker >= 0 {
		f, runLen, lit := markerFields(c.words[c.lastMarker])
		if lit < maxLitLen {
			c.words[c.lastMarker] = makeMarker(f, runLen, lit+1)
			c.words = append(c.words, w)
			return
		}
	}
	c.words = append(c.words, makeMarker(false, 0, 1), w)
	c.lastMarker = len(c.words) - 2
}

// Cardinality returns the number of set bits. It is O(1).
func (c *Compressed) Cardinality() int { return c.card }

// Empty reports whether no bit is set.
func (c *Compressed) Empty() bool { return c.card == 0 }

// MaxBit returns the highest set bit, or -1 when the bitmap is empty.
func (c *Compressed) MaxBit() int { return c.lastBit }

// SizeBytes returns the in-memory payload size of the compressed
// encoding in bytes (markers, literals and the pending word).
func (c *Compressed) SizeBytes() int {
	n := len(c.words) * 8
	if c.pendingIdx >= 0 {
		n += 8
	}
	return n
}

// UncompressedSizeBytes returns the size a dense encoding of the same
// logical length would occupy. The ratio against SizeBytes is the
// compression ratio reported in the paper (footnote 4).
func (c *Compressed) UncompressedSizeBytes() int {
	return c.logicalWords() * 8
}

func (c *Compressed) logicalWords() int {
	if c.pendingIdx >= 0 {
		return c.pendingIdx + 1
	}
	return c.fullWords
}

// Test reports whether bit i is set. It decodes the bitmap and is meant
// for tests and assertions, not hot paths.
func (c *Compressed) Test(i int) bool {
	if i < 0 || c == nil {
		return false
	}
	target := i >> 6
	found := uint64(0)
	c.iterate(func(idx int, w uint64) bool {
		if idx == target {
			found = w
			return false
		}
		return idx < target
	})
	return found&(1<<uint(i&63)) != 0
}

// iterate calls fn for every non-zero logical word in order, with its
// logical index. fn returning false stops the iteration. Zero runs are
// skipped in O(1).
func (c *Compressed) iterate(fn func(idx int, w uint64) bool) {
	idx := 0
	pos := 0
	for pos < len(c.words) {
		fill, runLen, lit := markerFields(c.words[pos])
		pos++
		if fill && runLen > 0 {
			for k := 0; k < int(runLen); k++ {
				if !fn(idx+k, ^uint64(0)) {
					return
				}
			}
		}
		idx += int(runLen)
		for k := 0; k < int(lit); k++ {
			if !fn(idx+k, c.words[pos+k]) {
				return
			}
		}
		idx += int(lit)
		pos += int(lit)
	}
	if c.pendingIdx >= 0 && c.pending != 0 {
		fn(c.pendingIdx, c.pending)
	}
}

// ForEach calls fn with the index of every set bit in increasing order.
// fn returning false stops the iteration early.
func (c *Compressed) ForEach(fn func(bit int) bool) {
	c.iterate(func(idx int, w uint64) bool {
		base := idx << 6
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(base + b) {
				return false
			}
			w &= w - 1
		}
		return true
	})
}

// Bits returns the set bits in increasing order. Intended for tests.
func (c *Compressed) Bits() []int {
	out := make([]int, 0, c.card)
	c.ForEach(func(b int) bool { out = append(out, b); return true })
	return out
}

// Clone returns a deep copy of c.
func (c *Compressed) Clone() *Compressed {
	d := *c
	d.words = append([]uint64(nil), c.words...)
	return &d
}

// Reset restores c to the empty state, retaining allocated capacity.
func (c *Compressed) Reset() {
	c.words = c.words[:0]
	c.card = 0
	c.pending = 0
	c.pendingIdx = -1
	c.fullWords = 0
	c.lastBit = -1
	c.lastMarker = -1
}

// FromDense compresses a dense bitset. Trailing zero words are
// dropped.
func FromDense(d *Dense) *Compressed {
	c := New()
	last := -1
	for i := len(d.words) - 1; i >= 0; i-- {
		if d.words[i] != 0 {
			last = i
			break
		}
	}
	zeros := 0
	for i := 0; i <= last; i++ {
		w := d.words[i]
		if w == 0 {
			zeros++
			continue
		}
		if zeros > 0 {
			c.appendFill(false, uint64(zeros))
			zeros = 0
		}
		c.appendWord(w)
		c.card += bits.OnesCount64(w)
	}
	if last >= 0 {
		w := d.words[last]
		c.lastBit = last<<6 + 63 - bits.LeadingZeros64(w)
	}
	return c
}

// FromBits builds a compressed bitmap from a sorted-or-unsorted list of
// bit positions. Intended for tests and small fixtures.
func FromBits(n int, bitsSet ...int) *Compressed {
	d := NewDense(n)
	for _, b := range bitsSet {
		d.Set(b)
	}
	return FromDense(d)
}
