package bitmap

import (
	"reflect"
	"testing"
)

// decodeBits turns fuzz bytes into a bounded ascending bit sequence;
// each byte is a gap from the previous bit.
func decodeBits(data []byte) []int {
	bits := make([]int, 0, len(data))
	cur := -1
	for _, b := range data {
		cur += int(b) + 1
		bits = append(bits, cur)
		if cur > 1<<20 {
			break
		}
	}
	return bits
}

// FuzzCompressedSet checks the EWAH append path against the dense
// reference for arbitrary ascending bit sequences.
func FuzzCompressedSet(f *testing.F) {
	f.Add([]byte{0, 0, 63, 1, 255})
	f.Add([]byte{255, 255, 255, 255})
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		bits := decodeBits(data)
		c := New()
		maxBit := 0
		for _, b := range bits {
			c.Set(b)
			if b > maxBit {
				maxBit = b
			}
		}
		d := NewDense(maxBit + 1)
		for _, b := range bits {
			d.Set(b)
		}
		if c.Cardinality() != d.Cardinality() {
			t.Fatalf("card %d vs %d", c.Cardinality(), d.Cardinality())
		}
		if !reflect.DeepEqual(c.Bits(), d.Bits()) {
			t.Fatal("bits mismatch")
		}
		// Marshal round-trip must preserve everything.
		payload, err := c.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Compressed
		if err := back.UnmarshalBinary(payload); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back.Bits(), c.Bits()) {
			t.Fatal("round-trip mismatch")
		}
	})
}

// FuzzMergeOps checks the three compressed merges and the roaring
// counterparts against dense references.
func FuzzMergeOps(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{3, 2, 1})
	f.Add([]byte{}, []byte{0})
	f.Add([]byte{255, 0, 255}, []byte{0, 255, 0})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		bitsA, bitsB := decodeBits(rawA), decodeBits(rawB)
		n := 2
		for _, b := range append(append([]int{}, bitsA...), bitsB...) {
			if b >= n {
				n = b + 1
			}
		}
		da, db := NewDense(n), NewDense(n)
		ra, rb := NewRoaring(), NewRoaring()
		for _, b := range bitsA {
			da.Set(b)
			ra.Set(b)
		}
		for _, b := range bitsB {
			db.Set(b)
			rb.Set(b)
		}
		ca, cb := FromDense(da), FromDense(db)
		ra.Optimize()

		check := func(name string, got []int, ref func(x, y *Dense)) {
			want := da.Clone()
			ref(want, db)
			if !reflect.DeepEqual(got, want.Bits()) {
				t.Fatalf("%s mismatch", name)
			}
		}
		check("ewah-or", Or(ca, cb).Bits(), (*Dense).Or)
		check("ewah-and", And(ca, cb).Bits(), (*Dense).And)
		check("ewah-andnot", AndNot(ca, cb).Bits(), (*Dense).AndNot)
		check("roaring-or", RoaringOr(ra, rb).Bits(), (*Dense).Or)
		check("roaring-and", RoaringAnd(ra, rb).Bits(), (*Dense).And)
		check("roaring-andnot", RoaringAndNot(ra, rb).Bits(), (*Dense).AndNot)
	})
}

// FuzzUnmarshal throws arbitrary bytes at both decoders: they must
// reject or accept without panicking, and anything accepted must
// re-encode to equivalent content.
func FuzzUnmarshal(f *testing.F) {
	seed, _ := FromBits(100, 1, 50, 99).MarshalBinary()
	f.Add(seed)
	rseed, _ := RoaringFromBits(1, 70000).MarshalBinary()
	f.Add(rseed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var c Compressed
		if err := c.UnmarshalBinary(data); err == nil {
			if c.Cardinality() > 1<<22 {
				t.Skip("accepted huge bitmap; content comparison too big")
			}
			again, err := c.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			var back Compressed
			if err := back.UnmarshalBinary(again); err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if !reflect.DeepEqual(back.Bits(), c.Bits()) {
				t.Fatal("re-encode changed contents")
			}
		}
		var r Roaring
		if err := r.UnmarshalBinary(data); err == nil {
			again, err := r.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			var back Roaring
			if err := back.UnmarshalBinary(again); err != nil {
				t.Fatalf("roaring re-decode failed: %v", err)
			}
			if !reflect.DeepEqual(back.Bits(), r.Bits()) {
				t.Fatal("roaring re-encode changed contents")
			}
		}
	})
}
