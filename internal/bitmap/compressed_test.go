package bitmap

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestCompressedEmpty(t *testing.T) {
	c := New()
	if c.Cardinality() != 0 || !c.Empty() {
		t.Fatalf("new bitmap not empty: card=%d", c.Cardinality())
	}
	if c.MaxBit() != -1 {
		t.Fatalf("MaxBit of empty = %d, want -1", c.MaxBit())
	}
	if got := c.Bits(); len(got) != 0 {
		t.Fatalf("Bits of empty = %v", got)
	}
	if c.Test(0) || c.Test(100) {
		t.Fatal("Test on empty bitmap returned true")
	}
}

func TestCompressedZeroValue(t *testing.T) {
	var c Compressed
	c.Set(5)
	c.Set(7)
	if got := c.Bits(); !reflect.DeepEqual(got, []int{5, 7}) {
		t.Fatalf("zero-value bitmap Bits = %v, want [5 7]", got)
	}
}

func TestCompressedSetBasic(t *testing.T) {
	c := New()
	in := []int{0, 1, 63, 64, 65, 127, 128, 1000, 1001, 70000}
	for _, b := range in {
		c.Set(b)
	}
	if got := c.Bits(); !reflect.DeepEqual(got, in) {
		t.Fatalf("Bits = %v, want %v", got, in)
	}
	if c.Cardinality() != len(in) {
		t.Fatalf("Cardinality = %d, want %d", c.Cardinality(), len(in))
	}
	if c.MaxBit() != 70000 {
		t.Fatalf("MaxBit = %d, want 70000", c.MaxBit())
	}
	for _, b := range in {
		if !c.Test(b) {
			t.Fatalf("Test(%d) = false", b)
		}
	}
	for _, b := range []int{2, 62, 66, 129, 999, 69999, 70001} {
		if c.Test(b) {
			t.Fatalf("Test(%d) = true, want false", b)
		}
	}
}

func TestCompressedSetIdempotent(t *testing.T) {
	c := New()
	c.Set(10)
	c.Set(10)
	c.Set(10)
	if c.Cardinality() != 1 {
		t.Fatalf("Cardinality after repeated Set = %d, want 1", c.Cardinality())
	}
}

func TestCompressedSetOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Set did not panic")
		}
	}()
	c := New()
	c.Set(10)
	c.Set(9)
}

func TestCompressedSetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Set did not panic")
		}
	}()
	New().Set(-1)
}

func TestCompressedLongRuns(t *testing.T) {
	// A single bit far out forces a long zero run; a dense block forces
	// a one-fill after FromDense.
	c := New()
	c.Set(1 << 20)
	if c.SizeBytes() >= (1<<20)/8 {
		t.Fatalf("sparse bitmap not compressed: %d bytes", c.SizeBytes())
	}
	if got := c.Bits(); !reflect.DeepEqual(got, []int{1 << 20}) {
		t.Fatalf("Bits = %v", got)
	}

	d := NewDense(4096)
	for i := 256; i < 2304; i++ { // 32 full one-words
		d.Set(i)
	}
	cc := FromDense(d)
	if cc.Cardinality() != 2048 {
		t.Fatalf("FromDense cardinality = %d, want 2048", cc.Cardinality())
	}
	if cc.SizeBytes() >= d.SizeBytes() {
		t.Fatalf("dense block not compressed: %d >= %d", cc.SizeBytes(), d.SizeBytes())
	}
	if !reflect.DeepEqual(cc.Bits(), d.Bits()) {
		t.Fatal("FromDense bits mismatch")
	}
}

func TestCompressedClone(t *testing.T) {
	c := New()
	c.Set(3)
	c.Set(100)
	d := c.Clone()
	d.Set(200)
	if c.Cardinality() != 2 || d.Cardinality() != 3 {
		t.Fatalf("clone not independent: %d, %d", c.Cardinality(), d.Cardinality())
	}
}

func TestCompressedReset(t *testing.T) {
	c := New()
	c.Set(5)
	c.Set(500)
	c.Reset()
	if !c.Empty() || c.MaxBit() != -1 {
		t.Fatal("Reset did not empty the bitmap")
	}
	c.Set(2)
	if got := c.Bits(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("Bits after Reset+Set = %v", got)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	c := New()
	for i := 0; i < 100; i += 3 {
		c.Set(i)
	}
	count := 0
	c.ForEach(func(int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("ForEach visited %d bits, want 5", count)
	}
}

// randomSortedBits draws k distinct sorted bit positions below n.
func randomSortedBits(rng *rand.Rand, n, k int) []int {
	seen := map[int]bool{}
	for len(seen) < k {
		seen[rng.Intn(n)] = true
	}
	out := make([]int, 0, k)
	for b := range seen {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

func TestCompressedRandomAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 64 + rng.Intn(5000)
		k := rng.Intn(n)
		bits := randomSortedBits(rng, n, k)
		c := New()
		d := NewDense(n)
		for _, b := range bits {
			c.Set(b)
			d.Set(b)
		}
		if c.Cardinality() != d.Cardinality() {
			t.Fatalf("trial %d: card %d vs %d", trial, c.Cardinality(), d.Cardinality())
		}
		if !reflect.DeepEqual(c.Bits(), d.Bits()) {
			t.Fatalf("trial %d: bits mismatch", trial)
		}
		// FromDense round-trip.
		c2 := FromDense(d)
		if !reflect.DeepEqual(c2.Bits(), d.Bits()) || c2.Cardinality() != d.Cardinality() {
			t.Fatalf("trial %d: FromDense mismatch", trial)
		}
		if c2.MaxBit() != c.MaxBit() {
			t.Fatalf("trial %d: MaxBit %d vs %d", trial, c2.MaxBit(), c.MaxBit())
		}
	}
}

func TestCompressedMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 64 + rng.Intn(3000)
		c := New()
		for _, b := range randomSortedBits(rng, n, rng.Intn(n/2+1)) {
			c.Set(b)
		}
		data, err := c.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Compressed
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !reflect.DeepEqual(back.Bits(), c.Bits()) {
			t.Fatalf("trial %d: round-trip bits mismatch", trial)
		}
		if back.Cardinality() != c.Cardinality() || back.MaxBit() != c.MaxBit() {
			t.Fatalf("trial %d: round-trip metadata mismatch", trial)
		}
		// The decoded bitmap must still be appendable.
		if c.MaxBit() >= 0 {
			back.Set(c.MaxBit() + 100)
			if !back.Test(c.MaxBit() + 100) {
				t.Fatalf("trial %d: append after unmarshal failed", trial)
			}
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var c Compressed
	if err := c.UnmarshalBinary(nil); err == nil {
		t.Fatal("nil payload accepted")
	}
	if err := c.UnmarshalBinary(make([]byte, 23)); err == nil {
		t.Fatal("short payload accepted")
	}
	good, _ := FromBits(100, 1, 2, 3).MarshalBinary()
	bad := append([]byte(nil), good...)
	bad[0] = 99 // version
	if err := c.UnmarshalBinary(bad); err == nil {
		t.Fatal("bad version accepted")
	}
	bad2 := append([]byte(nil), good...)
	if err := c.UnmarshalBinary(bad2[:len(bad2)-8]); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestCompressionRatioOnSkewedData(t *testing.T) {
	// Simulates a dense cell in a skewed dataset: a contiguous block of
	// objects present, everything else absent. Compression must beat
	// the dense encoding by a wide margin (paper footnote 4 reports
	// 80-99.9%).
	n := 100000
	d := NewDense(n)
	for i := 5000; i < 5600; i++ {
		d.Set(i)
	}
	c := FromDense(d)
	ratio := 1 - float64(c.SizeBytes())/float64(d.SizeBytes())
	if ratio < 0.8 {
		t.Fatalf("compression ratio %.3f < 0.8", ratio)
	}
}
