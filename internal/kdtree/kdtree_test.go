package kdtree

import (
	"math"
	"math/rand"
	"testing"

	"mio/internal/geom"
)

func randPts(rng *rand.Rand, n int, spread float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*spread, rng.Float64()*spread, rng.Float64()*spread)
	}
	return pts
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil)
	if tr.Len() != 0 {
		t.Fatal("empty tree has points")
	}
	if tr.WithinExists(geom.Pt(0, 0, 0), 100) {
		t.Fatal("WithinExists on empty tree")
	}
	if !math.IsInf(tr.NearestDist2(geom.Pt(0, 0, 0)), 1) {
		t.Fatal("NearestDist2 on empty tree not Inf")
	}
	if !math.IsInf(tr.MinDistBetween([]geom.Point{{X: 1}}), 1) {
		t.Fatal("MinDistBetween on empty tree not Inf")
	}
}

func TestWithinExistsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		pts := randPts(rng, 1+rng.Intn(300), 100)
		tr := Build(pts)
		for probe := 0; probe < 50; probe++ {
			p := geom.Pt(rng.Float64()*120-10, rng.Float64()*120-10, rng.Float64()*120-10)
			r := rng.Float64() * 30
			want := false
			for _, q := range pts {
				if geom.Dist2(p, q) <= r*r {
					want = true
					break
				}
			}
			if got := tr.WithinExists(p, r); got != want {
				t.Fatalf("trial %d: WithinExists(%v, %g) = %v, want %v", trial, p, r, got, want)
			}
		}
	}
}

func TestNearestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		pts := randPts(rng, 1+rng.Intn(200), 50)
		tr := Build(pts)
		for probe := 0; probe < 30; probe++ {
			p := geom.Pt(rng.Float64()*60-5, rng.Float64()*60-5, rng.Float64()*60-5)
			want := math.Inf(1)
			for _, q := range pts {
				if d := geom.Dist2(p, q); d < want {
					want = d
				}
			}
			if got := tr.NearestDist2(p); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: NearestDist2 = %v, want %v", trial, got, want)
			}
		}
	}
}

func TestMinDistBetweenAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		a := randPts(rng, 1+rng.Intn(100), 40)
		b := randPts(rng, 1+rng.Intn(100), 40)
		tr := Build(b)
		want := math.Inf(1)
		for _, p := range a {
			for _, q := range b {
				if d := geom.Dist2(p, q); d < want {
					want = d
				}
			}
		}
		want = math.Sqrt(want)
		if got := tr.MinDistBetween(a); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: MinDistBetween = %v, want %v", trial, got, want)
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Pt(1, 2, 3) // all identical: degenerate splits
	}
	tr := Build(pts)
	if !tr.WithinExists(geom.Pt(1, 2, 3), 0.001) {
		t.Fatal("duplicate-point tree broken")
	}
	if d := tr.NearestDist2(geom.Pt(1, 2, 4)); math.Abs(d-1) > 1e-12 {
		t.Fatalf("NearestDist2 = %v", d)
	}
}

func TestBuildDoesNotAliasInput(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 1, 1), geom.Pt(2, 2, 2)}
	tr := Build(pts)
	pts[0] = geom.Pt(99, 99, 99)
	if !tr.WithinExists(geom.Pt(1, 1, 1), 0.1) {
		t.Fatal("tree affected by caller mutation")
	}
}
