// Package kdtree implements a static 3-D kd-tree over points. It backs
// the NL-kd baseline (footnote 9 of the paper) and the closest-pair
// preprocessing of the theoretical algorithm (§II-B).
package kdtree

import (
	"math"
	"sort"

	"mio/internal/geom"
)

// Tree is an immutable kd-tree. The zero Tree is empty.
type Tree struct {
	pts   []geom.Point // points in tree order
	nodes []node
}

type node struct {
	axis        int8
	split       float64
	lo, hi      int32 // point range covered by this node
	left, right int32 // child node indices, -1 when leaf
}

const leafSize = 16

// Build constructs a kd-tree over a copy of pts.
func Build(pts []geom.Point) *Tree {
	t := &Tree{pts: append([]geom.Point(nil), pts...)}
	if len(t.pts) == 0 {
		return t
	}
	t.build(0, len(t.pts))
	return t
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.pts) }

// build recursively partitions t.pts[lo:hi] and returns the node index.
func (t *Tree) build(lo, hi int) int32 {
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{lo: int32(lo), hi: int32(hi), left: -1, right: -1})
	if hi-lo <= leafSize {
		return idx
	}
	// Split on the axis with the largest extent.
	b := geom.Bound(t.pts[lo:hi])
	ext := b.Extent()
	axis := geom.AxisX
	if ext.Y > ext.Coord(axis) {
		axis = geom.AxisY
	}
	if ext.Z > ext.Coord(axis) {
		axis = geom.AxisZ
	}
	mid := (lo + hi) / 2
	sub := t.pts[lo:hi]
	sort.Slice(sub, func(i, j int) bool { return sub[i].Coord(axis) < sub[j].Coord(axis) })
	split := t.pts[mid].Coord(axis)

	left := t.build(lo, mid)
	right := t.build(mid, hi)
	t.nodes[idx].axis = int8(axis)
	t.nodes[idx].split = split
	t.nodes[idx].left = left
	t.nodes[idx].right = right
	return idx
}

// WithinExists reports whether some indexed point lies within distance
// r of p. It prunes subtrees by split-plane distance and exits on the
// first hit.
func (t *Tree) WithinExists(p geom.Point, r float64) bool {
	if len(t.pts) == 0 {
		return false
	}
	return t.withinExists(0, p, r*r)
}

func (t *Tree) withinExists(ni int32, p geom.Point, r2 float64) bool {
	n := &t.nodes[ni]
	if n.left < 0 {
		for _, q := range t.pts[n.lo:n.hi] {
			if geom.Dist2(p, q) <= r2 {
				return true
			}
		}
		return false
	}
	d := p.Coord(geom.Axis(n.axis)) - n.split
	first, second := n.left, n.right
	if d > 0 {
		first, second = n.right, n.left
	}
	if t.withinExists(first, p, r2) {
		return true
	}
	if d*d <= r2 {
		return t.withinExists(second, p, r2)
	}
	return false
}

// NearestDist2 returns the squared distance from p to its nearest
// indexed point, or +Inf when the tree is empty.
func (t *Tree) NearestDist2(p geom.Point) float64 {
	best := math.Inf(1)
	if len(t.pts) == 0 {
		return best
	}
	t.nearest(0, p, &best)
	return best
}

func (t *Tree) nearest(ni int32, p geom.Point, best *float64) {
	n := &t.nodes[ni]
	if n.left < 0 {
		for _, q := range t.pts[n.lo:n.hi] {
			if d := geom.Dist2(p, q); d < *best {
				*best = d
			}
		}
		return
	}
	d := p.Coord(geom.Axis(n.axis)) - n.split
	first, second := n.left, n.right
	if d > 0 {
		first, second = n.right, n.left
	}
	t.nearest(first, p, best)
	if d*d < *best {
		t.nearest(second, p, best)
	}
}

// MinDistBetween returns the minimum distance between any point of pts
// and any point indexed by t (the closest-pair distance between two
// objects). It returns +Inf when either side is empty.
func (t *Tree) MinDistBetween(pts []geom.Point) float64 {
	best := math.Inf(1)
	if len(t.pts) == 0 {
		return best
	}
	for _, p := range pts {
		if d := t.nearestBounded(0, p, best); d < best {
			best = d
		}
		if best == 0 {
			break
		}
	}
	return math.Sqrt(best)
}

// nearestBounded is nearest-neighbour search that prunes against an
// external bound.
func (t *Tree) nearestBounded(ni int32, p geom.Point, bound float64) float64 {
	best := bound
	t.nearest2(ni, p, &best)
	return best
}

func (t *Tree) nearest2(ni int32, p geom.Point, best *float64) {
	n := &t.nodes[ni]
	if n.left < 0 {
		for _, q := range t.pts[n.lo:n.hi] {
			if d := geom.Dist2(p, q); d < *best {
				*best = d
			}
		}
		return
	}
	d := p.Coord(geom.Axis(n.axis)) - n.split
	first, second := n.left, n.right
	if d > 0 {
		first, second = n.right, n.left
	}
	t.nearest2(first, p, best)
	if d*d < *best {
		t.nearest2(second, p, best)
	}
}
