package shard

import (
	"context"
	"errors"
	"testing"

	"mio/internal/core"
	"mio/internal/data"
	"mio/internal/geom"
)

func oracle(t *testing.T, ds *data.Dataset, r float64, k int) *core.Result {
	t.Helper()
	e, err := core.NewEngine(ds, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunTopK(r, k)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameTopK(a, b []core.Scored) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParityWithOracle is the healthy-cluster acceptance gate: across a
// (shards, r, k) sweep the scatter–gather answer must be identical to
// the single-engine oracle — same objects, same scores, same tie
// order — and deterministic in its work accounting.
func TestParityWithOracle(t *testing.T) {
	ds := uniformDS(150, 11)
	for _, shards := range []int{2, 3, 4, 5} {
		c, err := New(ds, core.Options{}, Config{Shards: shards, MaxR: 8})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for _, r := range []float64{2, 4, 6} {
			for _, k := range []int{1, 3, 7} {
				want := oracle(t, ds, r, k)
				res, rep, err := c.Query(context.Background(), r, k)
				if err != nil {
					t.Fatalf("shards=%d r=%g k=%d: %v", shards, r, k, err)
				}
				if res.Degraded || rep.Degraded || rep.Failed != 0 {
					t.Fatalf("shards=%d r=%g k=%d: degraded on a healthy cluster: %+v", shards, r, k, rep)
				}
				if !sameTopK(res.TopK, want.TopK) {
					t.Fatalf("shards=%d r=%g k=%d: top-k mismatch\n got %v\nwant %v",
						shards, r, k, res.TopK, want.TopK)
				}
				if res.Best != want.Best {
					t.Fatalf("shards=%d r=%g k=%d: best %v, oracle %v", shards, r, k, res.Best, want.Best)
				}
				// Work accounting is deterministic (not oracle-equal:
				// halo replicas are re-bounded per shard, see DESIGN.md
				// §15): a second identical run must report identical
				// distance-computation counts.
				res2, _, err := c.Query(context.Background(), r, k)
				if err != nil {
					t.Fatalf("shards=%d r=%g k=%d rerun: %v", shards, r, k, err)
				}
				if res2.Stats.DistanceComps != res.Stats.DistanceComps {
					t.Fatalf("shards=%d r=%g k=%d: dist comps not deterministic: %d vs %d",
						shards, r, k, res.Stats.DistanceComps, res2.Stats.DistanceComps)
				}
			}
		}
		for _, sh := range c.shards {
			waitSlots(t, sh)
		}
	}
}

// skewedDS builds a dataset with a dense cluster in one corner and
// isolated objects scattered far away: the shards that inherit the
// sparse half have upper bounds far below the dense shard's lower
// bounds, so the coordinator can prune them before verification.
func skewedDS() *data.Dataset {
	dense := data.GenUniform(data.UniformConfig{N: 40, M: 6, FieldSize: 8, Spread: 2, Seed: 1})
	sparse := data.GenUniform(data.UniformConfig{N: 40, M: 6, FieldSize: 2000, Spread: 2, Seed: 2})
	ds := &data.Dataset{Name: "skewed"}
	for _, o := range dense.Objects {
		ds.Objects = append(ds.Objects, data.Object{ID: len(ds.Objects), Pts: o.Pts, Times: o.Times})
	}
	for _, o := range sparse.Objects {
		pts := make([]geom.Point, len(o.Pts))
		for i, p := range o.Pts {
			pts[i] = geom.Pt(p.X+3000, p.Y, p.Z)
		}
		ds.Objects = append(ds.Objects, data.Object{ID: len(ds.Objects), Pts: pts, Times: o.Times})
	}
	return ds
}

// TestShardPruning: on skewed data the bound merge must eliminate
// whole shards before verification, and still answer exactly.
func TestShardPruning(t *testing.T) {
	ds := skewedDS()
	c, err := New(ds, core.Options{}, Config{Shards: 4, MaxR: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := oracle(t, ds, 3, 1)
	res, rep, err := c.Query(context.Background(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pruned == 0 {
		t.Fatalf("no shards pruned on skewed data: %+v", rep)
	}
	if res.Degraded || !sameTopK(res.TopK, want.TopK) {
		t.Fatalf("pruned run wrong: got %v (degraded=%v), want %v", res.TopK, res.Degraded, want.TopK)
	}
	for _, run := range rep.PerShard {
		if run.State == StatePruned && run.MaxUB >= rep.Floor {
			t.Fatalf("shard %d pruned with MaxUB %d ≥ floor %d", run.ID, run.MaxUB, rep.Floor)
		}
	}
	for _, sh := range c.shards {
		waitSlots(t, sh)
	}
}

func TestBeyondHorizon(t *testing.T) {
	c, err := New(uniformDS(40, 2), core.Options{}, Config{Shards: 2, MaxR: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query(context.Background(), 9, 1); !errors.Is(err, ErrBeyondHorizon) {
		t.Fatalf("r beyond horizon returned %v", err)
	}
	if _, _, err := c.Query(context.Background(), -1, 1); err == nil {
		t.Fatal("accepted negative r")
	}
	if _, _, err := c.Query(context.Background(), 2, 0); err == nil {
		t.Fatal("accepted k=0")
	}
}

func TestHealthSnapshot(t *testing.T) {
	c, err := New(uniformDS(50, 4), core.Options{}, Config{Shards: 3, MaxR: 6})
	if err != nil {
		t.Fatal(err)
	}
	hs := c.Health()
	if len(hs) != 3 {
		t.Fatalf("got %d health rows", len(hs))
	}
	objs := 0
	for i, h := range hs {
		if h.ID != i {
			t.Fatalf("health rows out of order: %+v", hs)
		}
		if h.Breaker != "closed" {
			t.Fatalf("shard %d breaker %q at rest", i, h.Breaker)
		}
		objs += h.Primaries
	}
	if objs != 50 {
		t.Fatalf("health primaries sum to %d, want 50", objs)
	}
}
