package shard

import (
	"context"
	"errors"
	"time"

	"mio/internal/core"
)

// DefaultMaxR is the replica horizon selected when a Config (or a
// remote worker's config) leaves MaxR unset. Coordinator and workers
// must agree on the effective horizon — it is folded into the dataset
// generation stamp — so the default lives here, in one place.
const DefaultMaxR = 10

// Transport-level failure sentinels. The coordinator inspects attempt
// errors with errors.Is to keep per-class counters; the remote
// transport (internal/shard/remote) wraps them around the concrete
// network/validation failures.
var (
	// ErrStaleGeneration marks a response rejected by the generation
	// guard: the worker answered, but for a different dataset
	// generation than the coordinator is serving — a restarted or
	// mis-deployed worker. Merging such an answer would silently mix
	// datasets, so the shard is treated as down instead.
	ErrStaleGeneration = errors.New("shard: response from a different dataset generation")
	// ErrBadResponse marks a response rejected by strict validation
	// before it could touch the merge: corrupt or truncated envelope,
	// malformed JSON, out-of-range ids or scores, broken canonical
	// order, or an oversized body.
	ErrBadResponse = errors.New("shard: invalid shard response")
	// ErrUnreachable marks an attempt refused because the health prober
	// currently considers the worker down; no network round trip is
	// paid.
	ErrUnreachable = errors.New("shard: worker down")

	// errNoSlot marks an engine-pool acquire that timed out; the
	// coordinator does not charge it to the shard's breaker (the shard
	// is busy, not broken).
	errNoSlot = errors.New("shard: engine pool exhausted")
)

// Shard probe states reported in BackendInfo.State and /healthz.
const (
	// ProbeUp: the last health probe (or query) succeeded.
	ProbeUp = "up"
	// ProbeSuspect: a recent probe failed but the down threshold has
	// not been reached (or the worker has never been probed yet).
	ProbeSuspect = "suspect"
	// ProbeDown: consecutive probe failures reached the threshold, or
	// the worker answered with a stale generation; attempts fast-fail
	// until a probe succeeds again.
	ProbeDown = "down"
)

// Backend is one shard's query transport. The in-process engine pool
// (local.go) and the remote HTTP worker client
// (internal/shard/remote.Client) both implement it; the coordinator's
// retry/hedge/breaker/envelope machinery is transport-agnostic.
//
// Every object id crossing this interface is GLOBAL: backends own the
// local↔global mapping so the merge algebra never sees shard-local
// numbering.
type Backend interface {
	// Bound runs the bound phase (label input through upper-bounding,
	// restricted to the shard's primaries) under ctx and returns the
	// paused bounds. Implementations convert panics to errors and
	// quarantine whatever state the panic may have poisoned.
	Bound(ctx context.Context, r float64, k int) (Bounds, error)
	// Info reports the backend's identity and, for remote backends, the
	// prober's last-known view of the worker.
	Info() BackendInfo
	// Close releases background resources (probers). It must be
	// idempotent; in-flight calls may still complete afterwards.
	Close()
}

// Bounds is a shard's paused bound-phase product. Exactly one of
// Complete or Release must be called, once: Complete finishes
// verification against the merged floor, Release abandons the bounds
// (shard pruned, query cancelled) and returns the resources.
type Bounds interface {
	// TopLBs returns the k highest certified lower bounds over the
	// shard's primaries, global ids, canonical order.
	TopLBs() []core.Scored
	// MaxUB returns the highest certified upper bound over the shard's
	// primaries.
	MaxUB() int
	// Stats exposes the bound-phase work done so far.
	Stats() core.PhaseStats
	// Complete resumes verification against floor and returns the
	// shard's exact top-k (global ids).
	Complete(ctx context.Context, floor int) (*core.Result, error)
	// Release abandons the paused query.
	Release()
}

// BackendInfo is a backend's health-reporting snapshot.
type BackendInfo struct {
	// Objects/Primaries/Replicas describe the shard's slice of the
	// dataset. For remote backends they reflect the last successful
	// /shardz probe and are zero until one lands.
	Objects   int
	Primaries int
	Replicas  int
	// Addr is the worker address ("" for in-process backends).
	Addr string
	// Generation is the dataset generation the backend expects of its
	// worker (0 for in-process backends — the coordinator shares the
	// process, so generations cannot diverge).
	Generation uint64
	// State is the prober's view (ProbeUp/ProbeSuspect/ProbeDown), or
	// "" for in-process backends, whose liveness the breaker tracks.
	State string
	// LastProbeErr is the most recent probe failure ("" when healthy);
	// LastProbeAgo is how long ago the last probe finished (negative
	// when never probed).
	LastProbeErr string
	LastProbeAgo time.Duration
}
