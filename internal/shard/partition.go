// Package shard implements sharded MIO serving: the dataset is split
// across N in-process shard engines by a two-level space-oriented
// partition with border-object halo replicas, and a scatter–gather
// coordinator merges per-shard [LB, UB] score bounds and verified
// results into answers identical to a single-engine run — degrading to
// certified intervals, instead of failing, when shards are slow, dead
// or flapping (DESIGN.md §15).
package shard

import (
	"fmt"
	"sort"

	"mio/internal/data"
	"mio/internal/geom"
)

// Partition is a two-level space-oriented split of a dataset (after
// Tsitsigkos et al., PAPERS.md): objects are assigned to shards by the
// min corner of their MBR through x-rank slabs subdivided by y-rank,
// and each shard additionally receives halo replicas — objects whose
// MBR lies within MaxR of the shard's primary extent. The replica
// discipline makes shard-local scores of primary objects exact for any
// query radius r ≤ MaxR: every possible interaction partner of a
// primary is present locally, so cross-shard interactions are counted
// exactly once (in the primary shard of each endpoint) and never
// twice (replicas are barred from answering).
type Partition struct {
	// Shards is the number of shards.
	Shards int
	// MaxR is the replica horizon: local scores are exact for r ≤ MaxR.
	MaxR float64
	// Primary[g] is the shard that answers for global object g.
	Primary []int32
	// Ext[s] is shard s's extent: the bounding box of its primaries'
	// MBRs.
	Ext []geom.Box
	// Members[s] lists shard s's global object ids, ascending: its
	// primaries plus every halo replica.
	Members [][]int32
	// IsPrimary[s] is parallel to Members[s].
	IsPrimary [][]bool
}

// BuildPartition splits ds across shards with halo horizon maxR.
// Primary placement balances object counts: floor(sqrt(shards)) x-rank
// slabs, each subdivided into y-rank cells, one cell per shard.
func BuildPartition(ds *data.Dataset, shards int, maxR float64) (*Partition, error) {
	n := ds.N()
	if shards < 2 {
		return nil, fmt.Errorf("shard: need at least 2 shards, got %d", shards)
	}
	if shards > n {
		return nil, fmt.Errorf("shard: %d shards for %d objects", shards, n)
	}
	if maxR <= 0 {
		return nil, fmt.Errorf("shard: replica horizon must be positive, got %g", maxR)
	}

	mbrs := make([]geom.Box, n)
	for i := range ds.Objects {
		mbrs[i] = geom.Bound(ds.Objects[i].Pts)
	}

	p := &Partition{
		Shards:    shards,
		MaxR:      maxR,
		Primary:   make([]int32, n),
		Ext:       make([]geom.Box, shards),
		Members:   make([][]int32, shards),
		IsPrimary: make([][]bool, shards),
	}

	// Level 1: split object ids into slabs by x-rank of the MBR min
	// corner. Slab widths are proportional to the number of shard cells
	// each slab will hold, so cells end up with balanced object counts.
	nSlabs := 1
	for (nSlabs+1)*(nSlabs+1) <= shards {
		nSlabs++
	}
	cellsPerSlab := make([]int, nSlabs)
	for s := 0; s < nSlabs; s++ {
		cellsPerSlab[s] = shards / nSlabs
		if s < shards%nSlabs {
			cellsPerSlab[s]++
		}
	}
	byX := make([]int32, n)
	for i := range byX {
		byX[i] = int32(i)
	}
	sort.Slice(byX, func(a, b int) bool {
		ra, rb := mbrs[byX[a]].Min, mbrs[byX[b]].Min
		if ra.X != rb.X {
			return ra.X < rb.X
		}
		return byX[a] < byX[b] // deterministic on duplicate coordinates
	})

	// Level 2: within each slab, split by y-rank into that slab's
	// cells. Shard ids are assigned slab-major.
	shardID := int32(0)
	lo := 0
	assigned := 0
	for s := 0; s < nSlabs; s++ {
		assigned += cellsPerSlab[s]
		hi := n * assigned / shards
		slab := append([]int32(nil), byX[lo:hi]...)
		sort.Slice(slab, func(a, b int) bool {
			ra, rb := mbrs[slab[a]].Min, mbrs[slab[b]].Min
			if ra.Y != rb.Y {
				return ra.Y < rb.Y
			}
			return slab[a] < slab[b]
		})
		cLo := 0
		for c := 0; c < cellsPerSlab[s]; c++ {
			cHi := len(slab) * (c + 1) / cellsPerSlab[s]
			for _, g := range slab[cLo:cHi] {
				p.Primary[g] = shardID
			}
			cLo = cHi
			shardID++
		}
		lo = hi
	}

	// Extents, then halos: g is replicated into shard s when its MBR
	// lies within MaxR of Ext[s] — if any object primary in s could
	// interact with g at some r ≤ MaxR, then dist(MBR_g, MBR_prim) ≤ r,
	// MBR_prim ⊆ Ext[s], so this test admits g.
	for g := 0; g < n; g++ {
		s := p.Primary[g]
		p.Ext[s] = p.Ext[s].Union(mbrs[g])
	}
	maxR2 := maxR * maxR
	for s := 0; s < shards; s++ {
		for g := 0; g < n; g++ {
			prim := int(p.Primary[g]) == s
			if !prim && mbrs[g].Dist2ToBox(p.Ext[s]) > maxR2 {
				continue
			}
			p.Members[s] = append(p.Members[s], int32(g))
			p.IsPrimary[s] = append(p.IsPrimary[s], prim)
		}
		if len(p.Members[s]) == 0 {
			return nil, fmt.Errorf("shard: shard %d received no objects", s)
		}
	}
	return p, nil
}

// ShardDataset materialises shard s's local dataset: members renumbered
// from zero, point storage aliased (no copies). The returned mask marks
// the local ids that are primaries.
func (p *Partition) ShardDataset(ds *data.Dataset, s int) (*data.Dataset, []bool) {
	members := p.Members[s]
	local := &data.Dataset{
		Name:    fmt.Sprintf("%s[shard %d/%d]", ds.Name, s, p.Shards),
		Objects: make([]data.Object, len(members)),
	}
	for l, g := range members {
		src := &ds.Objects[g]
		local.Objects[l] = data.Object{ID: l, Pts: src.Pts, Times: src.Times}
	}
	return local, p.IsPrimary[s]
}

// Primaries returns the number of primary objects of shard s.
func (p *Partition) Primaries(s int) int {
	c := 0
	for _, prim := range p.IsPrimary[s] {
		if prim {
			c++
		}
	}
	return c
}
