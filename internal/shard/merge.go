package shard

import (
	"sort"

	"mio/internal/core"
)

// The bound-merge algebra (DESIGN.md §15):
//
//   - floor: the k-th highest entry of the union of per-shard TopLBs.
//     Every entry is a certified lower bound of a distinct global
//     object's score (primaries only — no object appears twice), so at
//     least k objects score ≥ floor and floor is a sound global
//     verification threshold.
//   - shard pruning: a shard with MaxUB < floor (strictly — ties may
//     still tie into the top-k) cannot contribute any answer, so its
//     verification is skipped before it costs anything.
//   - result merge: per-shard top-k lists are exact primary scores.
//     The global canonical top-k restricted to one shard's primaries
//     is a prefix of that shard's canonical order, hence contained in
//     its local top-k; merging the lists in canonical order and
//     truncating at k therefore reproduces the single-engine answer
//     exactly.

// canonicalLess is the global answer order: score descending, object
// id ascending — the same order core's insertTopK maintains.
func canonicalLess(a, b core.Scored) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Obj < b.Obj
}

// mergeFloor returns the k-th highest score among the merged per-shard
// lower-bound lists, or 0 when fewer than k bounds survived.
func mergeFloor(tops [][]core.Scored, k int) int {
	var all []int
	for _, t := range tops {
		for _, s := range t {
			all = append(all, s.Score)
		}
	}
	if len(all) < k {
		return 0
	}
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	return all[k-1]
}

// mergeTopK merges per-shard exact top-k lists (already mapped to
// global ids) into the global canonical top-k.
func mergeTopK(lists [][]core.Scored, k int) []core.Scored {
	var all []core.Scored
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return canonicalLess(all[a], all[b]) })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// mergeStats folds per-shard phase stats into the response's single
// PhaseStats. Work counters sum — the scattered query really did all
// of it, and the sum is deterministic because every shard's pipeline
// is. Durations take the per-phase maximum: shards run concurrently,
// so the slowest shard is what the caller waited for. Index footprints
// sum (every shard's grid exists at once).
func mergeStats(sts []core.PhaseStats) core.PhaseStats {
	var out core.PhaseStats
	maxDur := func(a, b *core.PhaseStats) {
		if b.LabelInput > a.LabelInput {
			a.LabelInput = b.LabelInput
		}
		if b.GridMapping > a.GridMapping {
			a.GridMapping = b.GridMapping
		}
		if b.LowerBounding > a.LowerBounding {
			a.LowerBounding = b.LowerBounding
		}
		if b.UpperBounding > a.UpperBounding {
			a.UpperBounding = b.UpperBounding
		}
		if b.Verification > a.Verification {
			a.Verification = b.Verification
		}
	}
	for i := range sts {
		st := &sts[i]
		maxDur(&out, st)
		out.UsedLabels = out.UsedLabels || st.UsedLabels
		out.LabelPersistFailed = out.LabelPersistFailed || st.LabelPersistFailed
		out.LabelBytes += st.LabelBytes
		out.Candidates += st.Candidates
		out.Verified += st.Verified
		out.DistanceComps += st.DistanceComps
		out.AdjComputed += st.AdjComputed
		out.SmallCells += st.SmallCells
		out.LargeCells += st.LargeCells
		out.IndexBytes += st.IndexBytes
		out.SmallGridBytes += st.SmallGridBytes
		out.SmallGridUncompressedBytes += st.SmallGridUncompressedBytes
		out.LargeGridBytes += st.LargeGridBytes
	}
	return out
}

// toGlobal maps a shard-local scored list to global object ids.
func toGlobal(global []int32, list []core.Scored) []core.Scored {
	out := make([]core.Scored, len(list))
	for i, s := range list {
		out[i] = core.Scored{Obj: int(global[s.Obj]), Score: s.Score}
	}
	return out
}
