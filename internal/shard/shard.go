package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mio/internal/core"
	"mio/internal/data"
	"mio/internal/server/breaker"
)

// ErrBreakerOpen marks a shard attempt refused by its open circuit
// breaker: the shard is treated as down for this query without paying
// an engine run, and recovers through the breaker's half-open probe.
var ErrBreakerOpen = errors.New("shard: breaker open")

// poolPerShard is each shard's default engine-pool size
// (Config.Pool overrides it). Two slots let a hedged attempt run
// while the original straggles; one coordinator query never starts
// more than two attempts at once per shard, but a caller serving
// several queries concurrently must provision for all of them
// (Config.Pool = 2 × its admission width) or slow attempts starve
// healthy ones out of slots.
const poolPerShard = 2

// envelopeCap bounds the per-shard upper-bound envelope (distinct
// radii remembered). Serving workloads draw from a handful of
// thresholds, so eviction is effectively never hit.
const envelopeCap = 128

// Shard is one space partition: a local dataset (primaries + halo
// replicas), a small engine pool with panic quarantine, a circuit
// breaker, and the last-known upper-bound envelope that certifies
// degraded answers when the shard cannot be reached.
type Shard struct {
	id      int
	ds      *data.Dataset
	global  []int32 // local id → global id
	primary []bool
	opts    core.Options // engine template (per-shard label store)

	slots chan *core.Engine
	br    *breaker.Breaker

	mu        sync.Mutex
	lastErr   string
	lastErrAt time.Time
	envelope  map[float64]int // query radius → MaxUB recorded at it
}

// newShard builds shard id over its local dataset with a pool of
// pool engines.
func newShard(id, pool int, ds *data.Dataset, global []int32, primary []bool, opts core.Options, brThreshold int, brCooldown time.Duration) (*Shard, error) {
	sh := &Shard{
		id:       id,
		ds:       ds,
		global:   global,
		primary:  primary,
		opts:     opts,
		slots:    make(chan *core.Engine, pool),
		br:       breaker.New(brThreshold, brCooldown),
		envelope: make(map[float64]int, 8),
	}
	for i := 0; i < pool; i++ {
		e, err := core.NewEngine(ds, opts)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", id, err)
		}
		sh.slots <- e
	}
	return sh, nil
}

// acquire takes an engine slot, waiting on ctx.
func (sh *Shard) acquire(ctx context.Context) (*core.Engine, error) {
	select {
	case e := <-sh.slots:
		return e, nil
	default:
	}
	select {
	case e := <-sh.slots:
		return e, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// release returns an engine to the pool.
func (sh *Shard) release(e *core.Engine) { sh.slots <- e }

// quarantine discards a panicked engine and refills its slot with a
// fresh one built from the shard's template — the same refill
// discipline the server pool uses. If the rebuild fails the suspect
// engine goes back: a possibly-tainted engine beats a leaked slot.
func (sh *Shard) quarantine(old *core.Engine) {
	e, err := core.NewEngine(sh.ds, sh.opts)
	if err != nil {
		sh.slots <- old
		return
	}
	sh.slots <- e
}

// noteError records the shard's most recent failure for /healthz.
func (sh *Shard) noteError(err error) {
	sh.mu.Lock()
	sh.lastErr = err.Error()
	sh.lastErrAt = time.Now()
	sh.mu.Unlock()
}

// recordEnvelope remembers MaxUB observed for radius r after a
// successful bound phase. τ^upp is computed from the grid at r, and
// scores are monotone in the radius, so the recorded value upper-bounds
// every primary's score at any radius ≤ r — the "last-known envelope"
// degraded answers fall back on.
func (sh *Shard) recordEnvelope(r float64, maxUB int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.envelope) >= envelopeCap {
		if _, exists := sh.envelope[r]; !exists {
			// Evict the largest radius: it certifies the widest range but
			// is also the loosest bound; any deterministic choice works.
			worst := r
			for rr := range sh.envelope {
				if rr > worst {
					worst = rr
				}
			}
			if worst == r {
				return
			}
			delete(sh.envelope, worst)
		}
	}
	sh.envelope[r] = maxUB
}

// envelopeUB returns the tightest recorded upper bound valid at radius
// r: the smallest value among entries recorded at radii ≥ r. ok is
// false when no entry certifies r — the caller falls back to the
// trivial bound.
func (sh *Shard) envelopeUB(r float64) (int, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	best, ok := 0, false
	for rr, ub := range sh.envelope {
		if rr >= r && (!ok || ub < best) {
			best, ok = ub, true
		}
	}
	return best, ok
}

// Health is one shard's status line in /healthz.
type Health struct {
	ID        int    `json:"id"`
	Objects   int    `json:"objects"`
	Primaries int    `json:"primaries"`
	Replicas  int    `json:"replicas"`
	Breaker   string `json:"breaker"`
	// LastError is the most recent attempt failure ("" when the shard
	// has never failed); LastErrorAgoS is how long ago it happened.
	LastError     string  `json:"last_error,omitempty"`
	LastErrorAgoS float64 `json:"last_error_ago_s,omitempty"`
	// EnvelopeRadii counts the radii with a recorded upper-bound
	// envelope — the shard's degradation safety net.
	EnvelopeRadii int `json:"envelope_radii"`
}

// health snapshots the shard's status.
func (sh *Shard) health() Health {
	sh.mu.Lock()
	lastErr, lastAt, envN := sh.lastErr, sh.lastErrAt, len(sh.envelope)
	sh.mu.Unlock()
	prim := 0
	for _, p := range sh.primary {
		if p {
			prim++
		}
	}
	h := Health{
		ID:            sh.id,
		Objects:       len(sh.global),
		Primaries:     prim,
		Replicas:      len(sh.global) - prim,
		Breaker:       sh.br.State().String(),
		LastError:     lastErr,
		EnvelopeRadii: envN,
	}
	if lastErr != "" {
		h.LastErrorAgoS = time.Since(lastAt).Seconds()
	}
	return h
}

// sortHealth orders a health slice by shard id (map-order callers).
func sortHealth(hs []Health) {
	sort.Slice(hs, func(a, b int) bool { return hs[a].ID < hs[b].ID })
}
