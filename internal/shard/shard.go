package shard

import (
	"errors"
	"sort"
	"sync"
	"time"

	"mio/internal/server/breaker"
)

// ErrBreakerOpen marks a shard attempt refused by its open circuit
// breaker: the shard is treated as down for this query without paying
// an engine run (or a network round trip), and recovers through the
// breaker's half-open probe.
var ErrBreakerOpen = errors.New("shard: breaker open")

// poolPerShard is each in-process shard's default engine-pool size
// (Config.Pool overrides it). Two slots let a hedged attempt run
// while the original straggles; one coordinator query never starts
// more than two attempts at once per shard, but a caller serving
// several queries concurrently must provision for all of them
// (Config.Pool = 2 × its admission width) or slow attempts starve
// healthy ones out of slots.
const poolPerShard = 2

// envelopeCap bounds the per-shard upper-bound envelope (distinct
// radii remembered). Serving workloads draw from a handful of
// thresholds, so eviction is effectively never hit.
const envelopeCap = 128

// Shard is the coordinator's per-shard control block: a transport
// backend (in-process engine pool or remote HTTP worker), a circuit
// breaker, and the last-known upper-bound envelope that certifies
// degraded answers when the shard cannot be reached.
type Shard struct {
	id      int
	backend Backend
	br      *breaker.Breaker

	mu        sync.Mutex
	lastErr   string
	lastErrAt time.Time
	envelope  map[float64]int // query radius → MaxUB recorded at it
}

// newShard wraps backend as shard id.
func newShard(id int, backend Backend, brThreshold int, brCooldown time.Duration) *Shard {
	return &Shard{
		id:       id,
		backend:  backend,
		br:       breaker.New(brThreshold, brCooldown),
		envelope: make(map[float64]int, 8),
	}
}

// noteError records the shard's most recent failure for /healthz.
func (sh *Shard) noteError(err error) {
	sh.mu.Lock()
	sh.lastErr = err.Error()
	sh.lastErrAt = time.Now()
	sh.mu.Unlock()
}

// recordEnvelope remembers MaxUB observed for radius r after a
// successful bound phase. τ^upp is computed from the grid at r, and
// scores are monotone in the radius, so the recorded value upper-bounds
// every primary's score at any radius ≤ r — the "last-known envelope"
// degraded answers fall back on.
func (sh *Shard) recordEnvelope(r float64, maxUB int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.envelope) >= envelopeCap {
		if _, exists := sh.envelope[r]; !exists {
			// Evict the largest radius: it certifies the widest range but
			// is also the loosest bound; any deterministic choice works.
			worst := r
			for rr := range sh.envelope {
				if rr > worst {
					worst = rr
				}
			}
			if worst == r {
				return
			}
			delete(sh.envelope, worst)
		}
	}
	sh.envelope[r] = maxUB
}

// envelopeUB returns the tightest recorded upper bound valid at radius
// r: the smallest value among entries recorded at radii ≥ r. ok is
// false when no entry certifies r — the caller falls back to the
// trivial bound.
func (sh *Shard) envelopeUB(r float64) (int, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	best, ok := 0, false
	for rr, ub := range sh.envelope {
		if rr >= r && (!ok || ub < best) {
			best, ok = ub, true
		}
	}
	return best, ok
}

// Health is one shard's status line in /healthz: what the shard holds,
// how reachable it is, and why answers might be degrading.
type Health struct {
	ID        int `json:"id"`
	Objects   int `json:"objects"`
	Primaries int `json:"primaries"`
	Replicas  int `json:"replicas"`
	// State is the shard's liveness: the health prober's view for
	// remote workers (up/suspect/down), derived from the breaker for
	// in-process shards.
	State   string `json:"state"`
	Breaker string `json:"breaker"`
	// Addr and Generation identify a remote worker and the dataset
	// generation the coordinator expects of it; absent for in-process
	// shards.
	Addr       string `json:"addr,omitempty"`
	Generation uint64 `json:"generation,omitempty"`
	// LastError is the most recent attempt failure ("" when the shard
	// has never failed); LastErrorAgoS is how long ago it happened.
	LastError     string  `json:"last_error,omitempty"`
	LastErrorAgoS float64 `json:"last_error_ago_s,omitempty"`
	// LastProbeError / LastProbeAgoS report the remote health prober's
	// most recent failure and probe recency.
	LastProbeError string  `json:"last_probe_error,omitempty"`
	LastProbeAgoS  float64 `json:"last_probe_ago_s,omitempty"`
	// EnvelopeRadii counts the radii with a recorded upper-bound
	// envelope — the shard's degradation safety net.
	EnvelopeRadii int `json:"envelope_radii"`
}

// health snapshots the shard's status.
func (sh *Shard) health() Health {
	sh.mu.Lock()
	lastErr, lastAt, envN := sh.lastErr, sh.lastErrAt, len(sh.envelope)
	sh.mu.Unlock()
	info := sh.backend.Info()
	h := Health{
		ID:             sh.id,
		Objects:        info.Objects,
		Primaries:      info.Primaries,
		Replicas:       info.Replicas,
		State:          info.State,
		Breaker:        sh.br.State().String(),
		Addr:           info.Addr,
		Generation:     info.Generation,
		LastError:      lastErr,
		LastProbeError: info.LastProbeErr,
		EnvelopeRadii:  envN,
	}
	if h.State == "" {
		// In-process shards have no prober; the breaker is the liveness
		// signal operators get.
		switch sh.br.State().String() {
		case "open":
			h.State = ProbeDown
		case "half-open":
			h.State = ProbeSuspect
		default:
			h.State = ProbeUp
		}
	}
	if lastErr != "" {
		h.LastErrorAgoS = time.Since(lastAt).Seconds()
	}
	if info.LastProbeAgo >= 0 && (info.Addr != "" || info.LastProbeErr != "") {
		h.LastProbeAgoS = info.LastProbeAgo.Seconds()
	}
	return h
}

// sortHealth orders a health slice by shard id (map-order callers).
func sortHealth(hs []Health) {
	sort.Slice(hs, func(a, b int) bool { return hs[a].ID < hs[b].ID })
}
