package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"mio/internal/core"
	"mio/internal/durable"
	"mio/internal/fault"
	"mio/internal/shard"
)

// releaseTimeout bounds the best-effort release round trip a pruned
// shard's bounds fire off-path.
const releaseTimeout = 2 * time.Second

// ClientConfig configures one remote shard client.
type ClientConfig struct {
	// Addr is the worker's base URL (e.g. "http://10.0.0.7:7001").
	Addr string
	// Stamp is the exact stamp every response must carry: the dataset
	// generation the coordinator computed from its own copy of the
	// data, plus this worker's partition slot.
	Stamp Stamp
	// Objects is the global object count n; response ids and scores
	// are range-checked against it.
	Objects int
	// ProbeInterval / ProbeTimeout drive the background health prober.
	// Defaults 1s / 1s.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// DownAfter is how many consecutive failures (probe or query) mark
	// the worker down; until then it is suspect. Default 3.
	DownAfter int
	// MaxResponseBytes caps response reads. Default
	// DefaultMaxResponseBytes.
	MaxResponseBytes int64
	// Faults, when non-nil, drives the client-side injection points
	// (net_send, net_recv).
	Faults *fault.Registry
	// HTTPClient overrides the transport (tests); per-request contexts
	// carry the deadlines, so it needs no global timeout.
	HTTPClient *http.Client
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.MaxResponseBytes <= 0 {
		c.MaxResponseBytes = DefaultMaxResponseBytes
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
	}
	return c
}

// Client drives one remote shard worker and implements shard.Backend:
// the coordinator's retry/hedge/breaker machinery calls it exactly
// like an in-process engine pool. Every response is size-capped,
// envelope-checked, strictly decoded, stamp-verified and
// range-validated before a byte of it reaches the merge.
type Client struct {
	cfg ClientConfig

	mu        sync.Mutex
	state     string // ProbeUp / ProbeSuspect / ProbeDown
	fails     int    // consecutive probe/query failures
	lastErr   string
	lastProbe time.Time // zero: never probed
	objects   int       // from the last good /shardz
	primaries int
	replicas  int

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewClient builds a client for one worker and starts its health
// prober. The worker starts as suspect — attempts are allowed (the
// breaker absorbs early failures) but the shard is not yet trusted as
// up — and transitions on the first probe or query.
func NewClient(cfg ClientConfig) *Client {
	cfg = cfg.withDefaults()
	c := &Client{
		cfg:   cfg,
		state: shard.ProbeSuspect,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go c.probeLoop()
	return c
}

// Close stops the health prober. Idempotent; in-flight calls finish.
func (c *Client) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// Info snapshots the prober's view for /healthz.
func (c *Client) Info() shard.BackendInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	ago := time.Duration(-1)
	if !c.lastProbe.IsZero() {
		ago = time.Since(c.lastProbe)
	}
	return shard.BackendInfo{
		Objects:      c.objects,
		Primaries:    c.primaries,
		Replicas:     c.replicas,
		Addr:         c.cfg.Addr,
		Generation:   c.cfg.Stamp.Generation,
		State:        c.state,
		LastProbeErr: c.lastErr,
		LastProbeAgo: ago,
	}
}

// Bound runs the worker's bound phase. When the prober considers the
// worker down it fast-fails without a round trip; the prober, not the
// query path, is then responsible for noticing recovery.
func (c *Client) Bound(ctx context.Context, r float64, k int) (shard.Bounds, error) {
	if st, lastErr := c.snapshotState(); st == shard.ProbeDown {
		return nil, fmt.Errorf("%w: %s (last error: %s)", shard.ErrUnreachable, c.cfg.Addr, lastErr)
	}
	payload, err := c.post(ctx, PathBound, BoundRequest{R: r, K: k})
	if err != nil {
		c.noteFailure(err)
		return nil, err
	}
	var resp BoundResponse
	if err := decodeStrict(payload, &resp); err != nil {
		err = fmt.Errorf("%w: %s: %v", shard.ErrBadResponse, c.cfg.Addr, err)
		c.noteFailure(err)
		return nil, err
	}
	if err := checkBoundResponse(&resp, c.cfg.Stamp, k, c.cfg.Objects); err != nil {
		c.noteFailure(err)
		return nil, err
	}
	c.noteSuccess()
	return &remoteBounds{c: c, resp: resp, k: k}, nil
}

// post sends a strict-JSON request and returns the validated envelope
// payload of a 200 response. Network failures, non-200 statuses,
// oversized bodies and corrupt envelopes all come back as errors; the
// injected net_send/net_recv points fail the exchange at the
// respective boundary.
func (c *Client) post(ctx context.Context, path string, body any) ([]byte, error) {
	if err := c.cfg.Faults.Fire(fault.PointNetSend); err != nil {
		return nil, fmt.Errorf("%s%s: send: %w", c.cfg.Addr, path, err)
	}
	reqBody, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.Addr+path, bytes.NewReader(reqBody))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%s%s: %w", c.cfg.Addr, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxResponseBytes+1))
	if err != nil {
		return nil, fmt.Errorf("%s%s: read: %w", c.cfg.Addr, path, err)
	}
	if err := c.cfg.Faults.Fire(fault.PointNetRecv); err != nil {
		return nil, fmt.Errorf("%s%s: recv: %w", c.cfg.Addr, path, err)
	}
	if int64(len(data)) > c.cfg.MaxResponseBytes {
		return nil, fmt.Errorf("%w: %s%s: response exceeds %d bytes", shard.ErrBadResponse, c.cfg.Addr, path, c.cfg.MaxResponseBytes)
	}
	if resp.StatusCode != http.StatusOK {
		var we wireError
		if jerr := json.Unmarshal(data, &we); jerr == nil && we.Error != "" {
			return nil, fmt.Errorf("%s%s: worker answered %d: %s", c.cfg.Addr, path, resp.StatusCode, we.Error)
		}
		return nil, fmt.Errorf("%s%s: worker answered %d", c.cfg.Addr, path, resp.StatusCode)
	}
	payload, err := durable.Open(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %s%s: %v", shard.ErrBadResponse, c.cfg.Addr, path, err)
	}
	return payload, nil
}

// snapshotState reads the prober state without holding the lock across
// any I/O.
func (c *Client) snapshotState() (string, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state, c.lastErr
}

// noteSuccess records a healthy exchange: the worker is up and the
// failure streak resets.
func (c *Client) noteSuccess() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state = shard.ProbeUp
	c.fails = 0
	c.lastErr = ""
}

// noteFailure records a failed exchange. Stale generations mark the
// worker down immediately — it is serving the wrong data, and no
// amount of retrying fixes that — while ordinary failures walk the
// up → suspect → down ladder.
func (c *Client) noteFailure(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastErr = err.Error()
	if isStale(err) {
		c.state = shard.ProbeDown
		c.fails = c.cfg.DownAfter
		return
	}
	c.fails++
	if c.fails >= c.cfg.DownAfter {
		c.state = shard.ProbeDown
	} else {
		c.state = shard.ProbeSuspect
	}
}

func isStale(err error) bool {
	for e := err; e != nil; {
		if e == shard.ErrStaleGeneration {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// probeLoop polls /shardz until Close. A successful probe with a
// matching stamp flips the worker (back) to up — including recovery
// from a stale generation after a correct redeploy.
func (c *Client) probeLoop() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	c.probeOnce()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.probeOnce()
		}
	}
}

func (c *Client) probeOnce() {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	resp, err := c.fetchShardz(ctx)
	c.mu.Lock()
	c.lastProbe = time.Now()
	c.mu.Unlock()
	if err != nil {
		c.noteFailure(err)
		return
	}
	c.mu.Lock()
	c.objects = resp.Objects
	c.primaries = resp.Primaries
	c.replicas = resp.Replicas
	c.mu.Unlock()
	c.noteSuccess()
}

// fetchShardz reads and validates one /shardz snapshot.
func (c *Client) fetchShardz(ctx context.Context) (*ShardzResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.Addr+PathShardz, nil)
	if err != nil {
		return nil, err
	}
	hresp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%s%s: %w", c.cfg.Addr, PathShardz, err)
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hresp.Body, c.cfg.MaxResponseBytes+1))
	if err != nil {
		return nil, fmt.Errorf("%s%s: read: %w", c.cfg.Addr, PathShardz, err)
	}
	if int64(len(data)) > c.cfg.MaxResponseBytes {
		return nil, fmt.Errorf("%w: %s%s: response exceeds %d bytes", shard.ErrBadResponse, c.cfg.Addr, PathShardz, c.cfg.MaxResponseBytes)
	}
	if hresp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s%s: worker answered %d", c.cfg.Addr, PathShardz, hresp.StatusCode)
	}
	payload, err := durable.Open(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %s%s: %v", shard.ErrBadResponse, c.cfg.Addr, PathShardz, err)
	}
	var resp ShardzResponse
	if err := decodeStrict(payload, &resp); err != nil {
		return nil, fmt.Errorf("%w: %s%s: %v", shard.ErrBadResponse, c.cfg.Addr, PathShardz, err)
	}
	if err := checkShardz(&resp, c.cfg.Objects); err != nil {
		return nil, err
	}
	if err := checkStamp(resp.Stamp, c.cfg.Stamp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// remoteBounds is a paused bound phase living on the worker, addressed
// by its handle.
type remoteBounds struct {
	c    *Client
	resp BoundResponse
	k    int
}

func (b *remoteBounds) TopLBs() []core.Scored  { return b.resp.TopLBs }
func (b *remoteBounds) MaxUB() int             { return b.resp.MaxUB }
func (b *remoteBounds) Stats() core.PhaseStats { return b.resp.Stats }

// Complete resumes the worker-side verification against floor. The
// response passes the same validation gauntlet as the bound response.
func (b *remoteBounds) Complete(ctx context.Context, floor int) (*core.Result, error) {
	payload, err := b.c.post(ctx, PathComplete, CompleteRequest{Handle: b.resp.Handle, Floor: floor})
	if err != nil {
		b.c.noteFailure(err)
		return nil, err
	}
	var resp CompleteResponse
	if err := decodeStrict(payload, &resp); err != nil {
		err = fmt.Errorf("%w: %s: %v", shard.ErrBadResponse, b.c.cfg.Addr, err)
		b.c.noteFailure(err)
		return nil, err
	}
	if err := checkCompleteResponse(&resp, b.c.cfg.Stamp, b.k, b.c.cfg.Objects); err != nil {
		b.c.noteFailure(err)
		return nil, err
	}
	b.c.noteSuccess()
	res := &core.Result{TopK: resp.TopK, Stats: resp.Stats}
	if len(res.TopK) > 0 {
		res.Best = res.TopK[0]
	}
	return res, nil
}

// Release abandons the worker-side handle, best-effort and off the
// query path: the gather loop must not stall on a round trip whose
// only purpose is returning an engine slot a little earlier than the
// worker's TTL reaper would.
func (b *remoteBounds) Release() {
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), releaseTimeout)
		defer cancel()
		_, _ = b.c.post(ctx, PathRelease, ReleaseRequest{Handle: b.resp.Handle})
	}()
}
