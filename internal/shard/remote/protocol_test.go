package remote

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mio/internal/core"
	"mio/internal/data"
	"mio/internal/durable"
	"mio/internal/shard"
)

func uniformDS(n int, seed int64) *data.Dataset {
	return data.GenUniform(data.UniformConfig{N: n, M: 6, FieldSize: 40, Spread: 5, Seed: seed})
}

// TestFingerprintDeterminism: identical content hashes identically
// regardless of how it was built; any content or shape change moves
// the generation.
func TestFingerprintDeterminism(t *testing.T) {
	a, b := uniformDS(60, 3), uniformDS(60, 3)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("identical datasets produced different fingerprints")
	}
	if Fingerprint(a) == Fingerprint(uniformDS(60, 4)) {
		t.Fatal("different datasets produced the same fingerprint")
	}
	if Fingerprint(a) == Fingerprint(uniformDS(61, 3)) {
		t.Fatal("different sizes produced the same fingerprint")
	}
	fp := Fingerprint(a)
	if Generation(fp, 2, 8) == Generation(fp, 3, 8) {
		t.Fatal("different shard counts produced the same generation")
	}
	if Generation(fp, 2, 8) == Generation(fp, 2, 10) {
		t.Fatal("different replica horizons produced the same generation")
	}
	// Moving one coordinate by one ULP must move the fingerprint: the
	// guard is content-exact, not approximate.
	c := uniformDS(60, 3)
	c.Objects[10].Pts[0].X += 1e-12
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatal("coordinate perturbation did not move the fingerprint")
	}
}

// TestDecodeStrict: unknown fields and trailing garbage are rejected,
// exact payloads round-trip.
func TestDecodeStrict(t *testing.T) {
	var br BoundRequest
	if err := decodeStrict([]byte(`{"r":2,"k":3}`), &br); err != nil {
		t.Fatalf("exact payload rejected: %v", err)
	}
	if err := decodeStrict([]byte(`{"r":2,"k":3,"extra":1}`), &br); err == nil {
		t.Fatal("unknown field accepted")
	}
	if err := decodeStrict([]byte(`{"r":2,"k":3}{"r":1,"k":1}`), &br); err == nil {
		t.Fatal("trailing JSON accepted")
	}
	if err := decodeStrict([]byte(`{"r":2,"k":3} garbage`), &br); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// TestCheckScoredList walks the validation table: out-of-range ids and
// scores, duplicates, and canonical-order violations must all be
// rejected as ErrBadResponse.
func TestCheckScoredList(t *testing.T) {
	n := 100
	cases := []struct {
		name string
		list []core.Scored
		ok   bool
	}{
		{"empty", nil, true},
		{"sorted", []core.Scored{{Obj: 5, Score: 9}, {Obj: 2, Score: 7}, {Obj: 9, Score: 7}}, true},
		{"negative id", []core.Scored{{Obj: -1, Score: 3}}, false},
		{"id at n", []core.Scored{{Obj: 100, Score: 3}}, false},
		{"negative score", []core.Scored{{Obj: 1, Score: -2}}, false},
		{"score above n-1", []core.Scored{{Obj: 1, Score: 100}}, false},
		{"duplicate id", []core.Scored{{Obj: 4, Score: 8}, {Obj: 4, Score: 3}}, false},
		{"score ascending", []core.Scored{{Obj: 1, Score: 3}, {Obj: 2, Score: 5}}, false},
		{"tie order broken", []core.Scored{{Obj: 7, Score: 5}, {Obj: 3, Score: 5}}, false},
	}
	for _, tc := range cases {
		err := checkScoredList("list", tc.list, len(tc.list), n)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: accepted", tc.name)
			} else if !errors.Is(err, shard.ErrBadResponse) {
				t.Errorf("%s: error is not ErrBadResponse: %v", tc.name, err)
			}
		}
	}
	if err := checkScoredList("list", []core.Scored{{Obj: 1, Score: 3}, {Obj: 2, Score: 2}}, 1, n); err == nil {
		t.Error("over-limit list accepted")
	}
}

// TestCheckBoundResponse: stamp mismatches map to ErrStaleGeneration,
// structural breakage to ErrBadResponse.
func TestCheckBoundResponse(t *testing.T) {
	want := Stamp{Generation: 7, Shard: 1, Shards: 3}
	good := BoundResponse{
		Stamp:  want,
		Handle: 1,
		TopLBs: []core.Scored{{Obj: 3, Score: 4}},
		MaxUB:  9,
	}
	if err := checkBoundResponse(&good, want, 2, 50); err != nil {
		t.Fatalf("good response rejected: %v", err)
	}
	stale := good
	stale.Stamp.Generation = 8
	if err := checkBoundResponse(&stale, want, 2, 50); !errors.Is(err, shard.ErrStaleGeneration) {
		t.Fatalf("wrong generation: got %v, want ErrStaleGeneration", err)
	}
	slot := good
	slot.Stamp.Shard = 2
	if err := checkBoundResponse(&slot, want, 2, 50); !errors.Is(err, shard.ErrStaleGeneration) {
		t.Fatalf("wrong shard slot: got %v, want ErrStaleGeneration", err)
	}
	badUB := good
	badUB.MaxUB = 50
	if err := checkBoundResponse(&badUB, want, 2, 50); !errors.Is(err, shard.ErrBadResponse) {
		t.Fatalf("max_ub out of range: got %v, want ErrBadResponse", err)
	}
	lbOverUB := good
	lbOverUB.MaxUB = 3
	if err := checkBoundResponse(&lbOverUB, want, 2, 50); !errors.Is(err, shard.ErrBadResponse) {
		t.Fatalf("lower bound above max_ub: got %v, want ErrBadResponse", err)
	}
	negStats := good
	negStats.Stats.Candidates = -1
	if err := checkBoundResponse(&negStats, want, 2, 50); !errors.Is(err, shard.ErrBadResponse) {
		t.Fatalf("negative stats: got %v, want ErrBadResponse", err)
	}
}

// FuzzRemoteShardResponse is the hostile-payload gate: whatever bytes
// a worker answers with, the client must either return a fully
// validated bounds object or an error — never panic, never hand
// unvalidated data to the merge.
func FuzzRemoteShardResponse(f *testing.F) {
	// Seeds: a well-formed response, truncations, corruptions, stale
	// stamps, bare JSON without an envelope, deep garbage.
	good, _ := json.Marshal(BoundResponse{
		Stamp:  Stamp{Generation: 42, Shard: 0, Shards: 2},
		Handle: 1,
		TopLBs: []core.Scored{{Obj: 3, Score: 5}},
		MaxUB:  9,
	})
	sealed := durable.Seal(good)
	f.Add(sealed)
	f.Add(sealed[:len(sealed)-3])
	f.Add(sealed[:durable.EnvelopeOverhead/2])
	corrupt := append([]byte(nil), sealed...)
	corrupt[durable.EnvelopeOverhead] ^= 0x40
	f.Add(corrupt)
	stale, _ := json.Marshal(BoundResponse{Stamp: Stamp{Generation: 41, Shard: 0, Shards: 2}})
	f.Add(durable.Seal(stale))
	f.Add(good) // JSON without an envelope
	f.Add([]byte(`{"error":"boom"}`))
	f.Add([]byte{})
	f.Add(durable.Seal([]byte(`{"stamp":{"generation":42,"shard":0,"shards":2},"handle":1,"top_lbs":[{"obj":-5,"score":2}],"max_ub":3,"stats":{}}`)))

	// One shared server and client across all executions: the server
	// answers every request with the current fuzz input, and the
	// client's failure ladder is reset per input so a hostile payload
	// never gets fast-failed instead of parsed.
	var mu sync.Mutex
	var body []byte
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		b := body
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(b)
	}))
	c := NewClient(ClientConfig{
		Addr:    srv.URL,
		Stamp:   Stamp{Generation: 42, Shard: 0, Shards: 2},
		Objects: 100,
		// Probes would race the swapped body; park them.
		ProbeInterval: time.Hour,
	})
	f.Cleanup(func() { c.Close(); srv.Close() })

	f.Fuzz(func(t *testing.T, in []byte) {
		mu.Lock()
		body = append(body[:0], in...)
		mu.Unlock()
		c.mu.Lock()
		c.state = shard.ProbeSuspect
		c.fails = 0
		c.mu.Unlock()
		b, err := c.Bound(context.Background(), 2, 3)
		if err != nil {
			if b != nil {
				t.Fatal("error AND bounds returned")
			}
			return
		}
		// Anything accepted must have survived full validation.
		resp := BoundResponse{
			Stamp:  Stamp{Generation: 42, Shard: 0, Shards: 2},
			Handle: b.(*remoteBounds).resp.Handle,
			TopLBs: b.TopLBs(),
			MaxUB:  b.MaxUB(),
			Stats:  b.Stats(),
		}
		if verr := checkBoundResponse(&resp, Stamp{Generation: 42, Shard: 0, Shards: 2}, 3, 100); verr != nil {
			t.Fatalf("accepted response fails validation: %v", verr)
		}
	})
}
