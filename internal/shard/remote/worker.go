package remote

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"time"

	"mio/internal/core"
	"mio/internal/core/labelstore"
	"mio/internal/data"
	"mio/internal/durable"
	"mio/internal/fault"
	"mio/internal/shard"
)

// maxRequestBytes caps how much of a request body the worker reads;
// bound/complete/release requests are a handful of scalars.
const maxRequestBytes = 1 << 20

// WorkerConfig configures one shard worker process.
type WorkerConfig struct {
	// Index is this worker's shard id in [0, Shards); Shards is the
	// cluster's partition count (≥ 2). Both are baked into the stamp.
	Index  int
	Shards int
	// MaxR is the replica horizon; it must match the coordinator's
	// (both fold it into the generation). Default shard.DefaultMaxR.
	MaxR float64
	// Pool is the engine-pool size, which also bounds how many bound
	// phases can be paused at once. Default 2.
	Pool int
	// HandleTTL is how long a paused bound phase may sit unresumed
	// before its engine is reclaimed — the backstop for a coordinator
	// that died between bound and complete. Default 30s.
	HandleTTL time.Duration
	// AcquireWait bounds how long a bound request waits for a free
	// engine before answering 503. Default 500ms.
	AcquireWait time.Duration
	// Faults, when non-nil, drives the worker-side injection points
	// (shard.run panics, stale-generation stamps, envelope corruption).
	Faults *fault.Registry
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.MaxR <= 0 {
		c.MaxR = shard.DefaultMaxR
	}
	if c.Pool <= 0 {
		c.Pool = 2
	}
	if c.HandleTTL <= 0 {
		c.HandleTTL = 30 * time.Second
	}
	if c.AcquireWait <= 0 {
		c.AcquireWait = 500 * time.Millisecond
	}
	return c
}

// pending is one paused bound phase: the BoundSet, the engine it is
// tied to, and when the handle expires.
type pending struct {
	set     *core.BoundSet
	eng     *core.Engine
	expires time.Time
}

// Worker serves one shard of the dataset over HTTP. It partitions the
// full dataset exactly as the coordinator does (BuildPartition is
// deterministic), keeps a small engine pool with panic quarantine, and
// stamps every response with its dataset generation.
type Worker struct {
	cfg     WorkerConfig
	stamp   Stamp
	ds      *data.Dataset // shard-local dataset
	global  []int32       // local id → global id
	primary []bool
	opts    core.Options
	faults  *fault.Registry

	slots chan *core.Engine

	mu      sync.Mutex
	handles map[uint64]*pending
	nextID  uint64
}

// NewWorker partitions ds for cfg.Index and builds the worker's engine
// pool. opts is the engine template; a configured label store is
// replaced with a fresh in-memory one (shard-local ids make a shared
// store meaningless), and cfg.Faults overrides opts.Faults.
func NewWorker(ds *data.Dataset, opts core.Options, cfg WorkerConfig) (*Worker, error) {
	cfg = cfg.withDefaults()
	if cfg.Index < 0 || cfg.Index >= cfg.Shards {
		return nil, fmt.Errorf("remote: shard index %d outside [0,%d)", cfg.Index, cfg.Shards)
	}
	part, err := shard.BuildPartition(ds, cfg.Shards, cfg.MaxR)
	if err != nil {
		return nil, err
	}
	local, primary := part.ShardDataset(ds, cfg.Index)
	if opts.Labels != nil {
		opts.Labels = labelstore.NewStore()
	}
	if cfg.Faults != nil {
		opts.Faults = cfg.Faults
	}
	w := &Worker{
		cfg:     cfg,
		stamp:   Stamp{Generation: Generation(Fingerprint(ds), cfg.Shards, cfg.MaxR), Shard: cfg.Index, Shards: cfg.Shards},
		ds:      local,
		global:  part.Members[cfg.Index],
		primary: primary,
		opts:    opts,
		faults:  cfg.Faults,
		slots:   make(chan *core.Engine, cfg.Pool),
		handles: make(map[uint64]*pending),
	}
	for i := 0; i < cfg.Pool; i++ {
		e, err := core.NewEngine(local, opts)
		if err != nil {
			return nil, fmt.Errorf("remote: shard %d engine: %w", cfg.Index, err)
		}
		w.slots <- e
	}
	return w, nil
}

// Stamp returns the worker's generation stamp.
func (w *Worker) Stamp() Stamp { return w.stamp }

// Close abandons every paused bound phase. The HTTP server's lifecycle
// belongs to the caller.
func (w *Worker) Close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for id, p := range w.handles {
		delete(w.handles, id)
		w.slots <- p.eng
	}
}

// Handler returns the worker's HTTP handler.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathShardz, w.handleShardz)
	mux.HandleFunc(PathBound, w.handleBound)
	mux.HandleFunc(PathComplete, w.handleComplete)
	mux.HandleFunc(PathRelease, w.handleRelease)
	return mux
}

// reap releases engines held by expired handles — the lazy sweep run
// at the top of every request, so an idle worker holds stale engines
// no longer than TTL + one request gap.
func (w *Worker) reap() {
	now := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	for id, p := range w.handles {
		if now.After(p.expires) {
			delete(w.handles, id)
			w.slots <- p.eng
		}
	}
}

// acquire takes an engine slot, waiting up to AcquireWait.
func (w *Worker) acquire(deadline <-chan struct{}) (*core.Engine, bool) {
	select {
	case e := <-w.slots:
		return e, true
	default:
	}
	t := time.NewTimer(w.cfg.AcquireWait)
	defer t.Stop()
	select {
	case e := <-w.slots:
		return e, true
	case <-t.C:
		return nil, false
	case <-deadline:
		return nil, false
	}
}

// quarantine discards a panicked engine and refills its slot from the
// template; if the rebuild fails the suspect engine goes back (a
// possibly-tainted engine beats a leaked slot).
func (w *Worker) quarantine(old *core.Engine) {
	e, err := core.NewEngine(w.ds, w.opts)
	if err != nil {
		w.slots <- old
		return
	}
	w.slots <- e
}

// respStamp is the stamp written into responses. The stale-generation
// fault point perturbs it, simulating a worker that restarted onto
// different data — the client must reject the answer, not merge it.
func (w *Worker) respStamp() Stamp {
	st := w.stamp
	if w.faults.Fire(fault.PointStaleGen) != nil {
		st.Generation++
	}
	return st
}

// writeError answers with a JSON error body (not enveloped: errors are
// diagnostics, never merged).
func writeError(rw http.ResponseWriter, code int, msg string) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	_ = json.NewEncoder(rw).Encode(wireError{Error: msg})
}

// writeEnveloped seals v's JSON encoding in a durable envelope and
// writes it. The net-corrupt fault point flips a payload byte after
// sealing, so the client's CRC check — not luck — must catch it.
func (w *Worker) writeEnveloped(rw http.ResponseWriter, v any) {
	payload, err := json.Marshal(v)
	if err != nil {
		writeError(rw, http.StatusInternalServerError, err.Error())
		return
	}
	sealed := durable.Seal(payload)
	if w.faults.Fire(fault.PointNetCorrupt) != nil && len(sealed) > durable.EnvelopeOverhead {
		sealed[durable.EnvelopeOverhead] ^= 0xFF
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.WriteHeader(http.StatusOK)
	_, _ = rw.Write(sealed)
}

// readRequest strictly decodes a size-capped JSON request body.
func readRequest(rw http.ResponseWriter, req *http.Request, v any) bool {
	if req.Method != http.MethodPost {
		writeError(rw, http.StatusMethodNotAllowed, "POST required")
		return false
	}
	body, err := io.ReadAll(io.LimitReader(req.Body, maxRequestBytes+1))
	if err != nil {
		writeError(rw, http.StatusBadRequest, err.Error())
		return false
	}
	if len(body) > maxRequestBytes {
		writeError(rw, http.StatusRequestEntityTooLarge, "request body too large")
		return false
	}
	if err := decodeStrict(body, v); err != nil {
		writeError(rw, http.StatusBadRequest, err.Error())
		return false
	}
	return true
}

func (w *Worker) handleShardz(rw http.ResponseWriter, req *http.Request) {
	w.reap()
	prim := 0
	for _, p := range w.primary {
		if p {
			prim++
		}
	}
	w.mu.Lock()
	held := len(w.handles)
	w.mu.Unlock()
	w.writeEnveloped(rw, ShardzResponse{
		Stamp:     w.respStamp(),
		Objects:   len(w.global),
		Primaries: prim,
		Replicas:  len(w.global) - prim,
		Handles:   held,
	})
}

func (w *Worker) handleBound(rw http.ResponseWriter, req *http.Request) {
	w.reap()
	var br BoundRequest
	if !readRequest(rw, req, &br) {
		return
	}
	if math.IsNaN(br.R) || math.IsInf(br.R, 0) || br.R <= 0 {
		writeError(rw, http.StatusBadRequest, fmt.Sprintf("r must be a positive finite number, got %g", br.R))
		return
	}
	if br.R > w.cfg.MaxR {
		writeError(rw, http.StatusBadRequest, fmt.Sprintf("r=%g exceeds the replica horizon %g", br.R, w.cfg.MaxR))
		return
	}
	if br.K < 1 {
		writeError(rw, http.StatusBadRequest, fmt.Sprintf("k must be at least 1, got %d", br.K))
		return
	}
	eng, ok := w.acquire(req.Context().Done())
	if !ok {
		writeError(rw, http.StatusServiceUnavailable, "engine pool exhausted")
		return
	}
	defer func() {
		if p := recover(); p != nil {
			w.quarantine(eng)
			writeError(rw, http.StatusInternalServerError, fmt.Sprintf("panic: %v", p))
		}
	}()
	// Fired with the engine held, matching the in-process backend: a
	// panic rule here must exercise the quarantine path.
	if err := w.faults.Fire(fault.PointShardRun); err != nil {
		w.slots <- eng
		writeError(rw, http.StatusInternalServerError, err.Error())
		return
	}
	set, err := eng.Bound(req.Context(), br.R, br.K, w.primary)
	if err != nil {
		w.slots <- eng
		writeError(rw, http.StatusInternalServerError, err.Error())
		return
	}
	w.mu.Lock()
	w.nextID++
	id := w.nextID
	w.handles[id] = &pending{set: set, eng: eng, expires: time.Now().Add(w.cfg.HandleTTL)}
	w.mu.Unlock()
	w.writeEnveloped(rw, BoundResponse{
		Stamp:  w.respStamp(),
		Handle: id,
		TopLBs: w.toGlobal(set.TopLBs()),
		MaxUB:  set.MaxUB(),
		Stats:  set.Stats(),
	})
}

func (w *Worker) handleComplete(rw http.ResponseWriter, req *http.Request) {
	w.reap()
	var cr CompleteRequest
	if !readRequest(rw, req, &cr) {
		return
	}
	if cr.Floor < 0 {
		writeError(rw, http.StatusBadRequest, fmt.Sprintf("floor must be non-negative, got %d", cr.Floor))
		return
	}
	p, ok := w.takeHandle(cr.Handle)
	if !ok {
		writeError(rw, http.StatusNotFound, fmt.Sprintf("unknown or expired handle %d", cr.Handle))
		return
	}
	released := false
	defer func() {
		if pan := recover(); pan != nil {
			w.quarantine(p.eng)
			writeError(rw, http.StatusInternalServerError, fmt.Sprintf("panic: %v", pan))
			return
		}
		if !released {
			w.slots <- p.eng
		}
	}()
	res, err := p.set.Complete(req.Context(), cr.Floor)
	w.slots <- p.eng
	released = true
	if err != nil {
		writeError(rw, http.StatusInternalServerError, err.Error())
		return
	}
	w.writeEnveloped(rw, CompleteResponse{
		Stamp: w.respStamp(),
		TopK:  w.toGlobal(res.TopK),
		Stats: res.Stats,
	})
}

func (w *Worker) handleRelease(rw http.ResponseWriter, req *http.Request) {
	w.reap()
	var rr ReleaseRequest
	if !readRequest(rw, req, &rr) {
		return
	}
	if p, ok := w.takeHandle(rr.Handle); ok {
		w.slots <- p.eng
	}
	w.writeEnveloped(rw, struct{}{})
}

// takeHandle removes and returns a paused bound phase. Single-use:
// complete and release both consume the handle.
func (w *Worker) takeHandle(id uint64) (*pending, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	p, ok := w.handles[id]
	if ok {
		delete(w.handles, id)
	}
	return p, ok
}

// toGlobal maps shard-local ids to global ids, preserving canonical
// order (Members is ascending, so local order ≡ global order on ties).
func (w *Worker) toGlobal(list []core.Scored) []core.Scored {
	out := make([]core.Scored, len(list))
	for i, s := range list {
		out[i] = core.Scored{Obj: int(w.global[s.Obj]), Score: s.Score}
	}
	return out
}
