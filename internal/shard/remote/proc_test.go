package remote_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"strconv"
	"sync"
	"testing"
	"time"

	"mio/internal/core"
	"mio/internal/data"
	"mio/internal/server"
	"mio/internal/shard"
	"mio/internal/shard/remote"
)

// The chaos cluster serves `-gen uniform -scale 0.1 -seed 7`; this is
// the identical dataset the test's in-process oracle and coordinator
// build, exercising the content-fingerprint generation guard across
// real process boundaries.
const (
	chaosScale = "0.1"
	chaosSeed  = "7"
	chaosN     = 200 // clamp(2000 * 0.1)
)

func chaosDataset() *data.Dataset {
	return data.GenUniform(data.UniformConfig{N: chaosN, M: 16, FieldSize: 1000, Spread: 8, Seed: 7})
}

func buildMiosrv(t *testing.T) string {
	t.Helper()
	bin := t.TempDir() + "/miosrv"
	out, err := exec.Command("go", "build", "-o", bin, "mio/cmd/miosrv").CombinedOutput()
	if err != nil {
		t.Fatalf("building miosrv: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// workerProc is one real miosrv -shard-serve process.
type workerProc struct {
	cmd  *exec.Cmd
	addr string
}

func (p *workerProc) kill() {
	if p.cmd != nil && p.cmd.Process != nil {
		_ = p.cmd.Process.Kill() // SIGKILL: no graceful shutdown
		_, _ = p.cmd.Process.Wait()
		p.cmd = nil
	}
}

// startWorkerProc spawns worker idx of 3 on addr and waits until its
// /shardz endpoint answers.
func startWorkerProc(t *testing.T, bin string, idx int, addr string, extra ...string) *workerProc {
	t.Helper()
	args := []string{
		"-gen", "uniform", "-scale", chaosScale, "-seed", chaosSeed,
		"-shards", "3", "-shard-serve", "-shard-index", strconv.Itoa(idx),
		"-addr", addr,
	}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting worker %d: %v", idx, err)
	}
	p := &workerProc{cmd: cmd, addr: addr}
	t.Cleanup(p.kill)

	url := "http://" + addr + remote.PathShardz
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("worker %d on %s never became reachable", idx, addr)
	return nil
}

type chaosQueryResponse struct {
	Sharded bool          `json:"sharded"`
	Scatter *shard.Report `json:"scatter"`
	Result  *core.Result  `json:"result"`
}

// chaosQuery issues one /v1/query and requires a 200 with a parseable,
// internally consistent body — under every failure mode in this test,
// anything else is a bug.
func chaosQuery(t *testing.T, base string, r float64, k int) *chaosQueryResponse {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/query?r=%g&k=%d", base, r, k))
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("query read: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query answered %d, want 200 under every failure mode: %s", resp.StatusCode, body)
	}
	var qr chaosQueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("query body: %v\n%s", err, body)
	}
	if qr.Result == nil {
		t.Fatalf("query body has no result: %s", body)
	}
	if qr.Result.Degraded && qr.Result.Interval == nil {
		t.Fatalf("degraded result without certified interval: %s", body)
	}
	return &qr
}

func chaosHealth(t *testing.T, base string) []shard.Health {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var h struct {
		Shards []shard.Health `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	return h.Shards
}

// TestMultiProcessChaos is the acceptance chaos run: three real worker
// processes behind an in-process (race-instrumented) coordinator. One
// worker is SIGKILLed mid-scatter, another is restarted with armed
// envelope-corruption faults, and the coordinator must keep answering
// every query with a 200 — exact on a healthy cluster, a certified
// interval containing the oracle score otherwise — then return to
// exact answers once the workers come back.
func TestMultiProcessChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos test (spawns real worker processes)")
	}
	bin := buildMiosrv(t)
	ds := chaosDataset()

	addrs := []string{freeAddr(t), freeAddr(t), freeAddr(t)}
	workers := make([]*workerProc, 3)
	for i := range workers {
		workers[i] = startWorkerProc(t, bin, i, addrs[i])
	}

	srv, err := server.New(ds, core.Options{}, server.Config{
		MaxInFlight:        4,
		DisableCache:       true, // cached answers would mask degradation
		DisableCoalesce:    true,
		ShardAddrs:         []string{"http://" + addrs[0], "http://" + addrs[1], "http://" + addrs[2]},
		ShardProbeInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Drain() })

	oracle := func(r float64, k int) *core.Result {
		e, err := core.NewEngine(ds, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.RunTopK(r, k)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	wantBest := oracle(3, 3).Best

	checkInterval := func(qr *chaosQueryResponse) {
		t.Helper()
		if !qr.Result.Degraded {
			return
		}
		iv := qr.Result.Interval
		if iv.LB > wantBest.Score || wantBest.Score > iv.UB {
			t.Fatalf("certified interval [%d,%d] does not contain oracle score %d", iv.LB, iv.UB, wantBest.Score)
		}
	}

	// Phase 1 — healthy cluster: every answer is exact and matches the
	// single-engine oracle.
	for _, rk := range []struct {
		r float64
		k int
	}{{2, 1}, {3, 3}, {4, 5}} {
		want := oracle(rk.r, rk.k)
		qr := chaosQuery(t, ts.URL, rk.r, rk.k)
		if !qr.Sharded {
			t.Fatalf("r=%g k=%d: query did not take the sharded path", rk.r, rk.k)
		}
		if qr.Result.Degraded {
			t.Fatalf("r=%g k=%d: healthy cluster degraded: %+v", rk.r, rk.k, qr.Scatter)
		}
		if qr.Result.Best != want.Best || len(qr.Result.TopK) != len(want.TopK) {
			t.Fatalf("r=%g k=%d: answer %+v diverges from oracle %+v", rk.r, rk.k, qr.Result.Best, want.Best)
		}
		for i := range want.TopK {
			if qr.Result.TopK[i] != want.TopK[i] {
				t.Fatalf("r=%g k=%d: TopK[%d] = %+v, oracle %+v", rk.r, rk.k, i, qr.Result.TopK[i], want.TopK[i])
			}
		}
	}

	// Phase 2 — SIGKILL worker 1 mid-scatter: queries racing the kill
	// must all come back 200, exact or certified.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				checkInterval(chaosQuery(t, ts.URL, 3, 3))
			}
		}()
	}
	time.Sleep(30 * time.Millisecond) // land the kill inside the query burst
	workers[1].kill()
	wg.Wait()

	// Phase 3 — steady state with a dead worker: still 200, now
	// degraded with a certified interval, and /healthz reports the
	// shard down.
	deadline := time.Now().Add(10 * time.Second)
	for {
		qr := chaosQuery(t, ts.URL, 3, 3)
		checkInterval(qr)
		if qr.Result.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queries never degraded after worker 1 was killed")
		}
		time.Sleep(20 * time.Millisecond)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		hs := chaosHealth(t, ts.URL)
		if len(hs) == 3 && hs[1].State == shard.ProbeDown && hs[1].Addr != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never marked worker 1 down: %+v", hs)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Phase 4 — flap worker 2: restart it with envelope corruption
	// armed on half its responses. With one worker dead and one
	// flapping, every query must still answer 200 with a certified
	// interval whenever it cannot be exact.
	workers[2].kill()
	workers[2] = startWorkerProc(t, bin, 2, addrs[2],
		"-faults", "seed=3;"+"shard.net_corrupt=error:0.5")
	for i := 0; i < 12; i++ {
		checkInterval(chaosQuery(t, ts.URL, 3, 3))
	}

	// Phase 5 — recovery: bring workers 1 and 2 back clean. The same
	// generation stamp lets them rejoin, and answers return to exact
	// oracle parity (the dead shard's breaker needs its cooldown to
	// half-open, so allow generous time).
	workers[2].kill()
	workers[1] = startWorkerProc(t, bin, 1, addrs[1])
	workers[2] = startWorkerProc(t, bin, 2, addrs[2])
	want := oracle(3, 3)
	deadline = time.Now().Add(20 * time.Second)
	for {
		qr := chaosQuery(t, ts.URL, 3, 3)
		checkInterval(qr)
		if !qr.Result.Degraded {
			if qr.Result.Best != want.Best {
				t.Fatalf("recovered answer %+v diverges from oracle %+v", qr.Result.Best, want.Best)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never recovered to exact answers: %+v", qr.Scatter)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
