// Package remote is the multi-process shard transport: an HTTP worker
// that serves one shard's bound/verify entry points, and a hardened
// client implementing shard.Backend so the coordinator drives remote
// workers exactly like in-process engine pools (DESIGN.md §17).
//
// The wire protocol mirrors the split-phase engine API: POST bound
// pauses after upper-bounding and returns a handle; POST complete
// resumes verification against the merged floor; POST release abandons
// a paused query. Every response body — including /shardz — is sealed
// in internal/durable's checksummed envelope, stamped with the worker's
// dataset generation, and strictly validated by the client before
// anything touches the merge.
package remote

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"

	"mio/internal/core"
	"mio/internal/data"
	"mio/internal/shard"
)

// Endpoint paths. The query endpoints are versioned: a coordinator
// speaking v2 must not be silently misunderstood by a v1 worker.
const (
	PathShardz   = "/shardz"
	PathBound    = "/shard/v1/bound"
	PathComplete = "/shard/v1/complete"
	PathRelease  = "/shard/v1/release"
)

// DefaultMaxResponseBytes caps how much of a worker response the
// client will read. TopLBs/TopK are at most k entries and stats are
// fixed-size, so real responses are a few KB; the cap only exists so a
// hostile or broken worker cannot balloon the coordinator's memory.
const DefaultMaxResponseBytes = 8 << 20

// Stamp identifies which dataset generation and partition slot a
// worker is serving. Every response carries one; the client rejects
// any mismatch as shard.ErrStaleGeneration — a restarted worker that
// loaded different data (or the same data under a different partition
// shape) must degrade the shard, never silently merge.
type Stamp struct {
	Generation uint64 `json:"generation"`
	Shard      int    `json:"shard"`
	Shards     int    `json:"shards"`
}

// BoundRequest asks the worker to run the bound phase for (r, k).
type BoundRequest struct {
	R float64 `json:"r"`
	K int     `json:"k"`
}

// BoundResponse is the paused bound phase: certified bounds plus the
// handle that resumes or abandons it. Ids are GLOBAL.
type BoundResponse struct {
	Stamp  Stamp           `json:"stamp"`
	Handle uint64          `json:"handle"`
	TopLBs []core.Scored   `json:"top_lbs"`
	MaxUB  int             `json:"max_ub"`
	Stats  core.PhaseStats `json:"stats"`
}

// CompleteRequest resumes verification of a paused bound phase
// against the coordinator's merged floor.
type CompleteRequest struct {
	Handle uint64 `json:"handle"`
	Floor  int    `json:"floor"`
}

// CompleteResponse is the shard's exact verified top-k (global ids,
// canonical order).
type CompleteResponse struct {
	Stamp Stamp           `json:"stamp"`
	TopK  []core.Scored   `json:"top_k"`
	Stats core.PhaseStats `json:"stats"`
}

// ReleaseRequest abandons a paused bound phase (shard pruned or query
// cancelled), returning its engine to the worker's pool early instead
// of waiting out the handle TTL.
type ReleaseRequest struct {
	Handle uint64 `json:"handle"`
}

// ShardzResponse is the worker's health snapshot.
type ShardzResponse struct {
	Stamp     Stamp `json:"stamp"`
	Objects   int   `json:"objects"`
	Primaries int   `json:"primaries"`
	Replicas  int   `json:"replicas"`
	// Handles is how many bound phases are currently paused.
	Handles int `json:"handles"`
}

// wireError is the JSON body of a non-200 worker response.
type wireError struct {
	Error string `json:"error"`
}

// Fingerprint hashes a dataset's full content — object count, point
// counts, exact coordinate and timestamp bits — into the generation
// fingerprint. Coordinator and workers load the same dataset
// independently (from a file or a seeded generator); equal content
// yields equal fingerprints with no file distribution or handshake.
func Fingerprint(ds *data.Dataset) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	w(uint64(ds.N()))
	for i := range ds.Objects {
		o := &ds.Objects[i]
		w(uint64(len(o.Pts)))
		for _, p := range o.Pts {
			w(math.Float64bits(p.X))
			w(math.Float64bits(p.Y))
			w(math.Float64bits(p.Z))
		}
		for _, t := range o.Times {
			w(math.Float64bits(t))
		}
	}
	return h.Sum64()
}

// Generation folds the partition shape into a dataset fingerprint: a
// worker repartitioned onto a different shard count or replica horizon
// holds different primaries and replicas, so its answers are just as
// unmergeable as answers from different data.
func Generation(fingerprint uint64, shards int, maxR float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range [...]uint64{fingerprint, uint64(shards), math.Float64bits(maxR)} {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// decodeStrict parses data as exactly one JSON value of v's shape:
// unknown fields and trailing garbage are errors. Wire structs must
// match bit-for-bit or the response is rejected.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

// checkStamp rejects a response stamped with a different generation or
// partition slot than the client expects.
func checkStamp(got, want Stamp) error {
	if got != want {
		return fmt.Errorf("%w: worker reports generation=%d shard=%d/%d, coordinator expects generation=%d shard=%d/%d",
			shard.ErrStaleGeneration, got.Generation, got.Shard, got.Shards, want.Generation, want.Shard, want.Shards)
	}
	return nil
}

// checkScoredList validates a scored list before it may touch the
// merge: at most limit entries, every id in [0, n), every score in
// [0, n-1] (no object interacts with more than n-1 others), no
// duplicate ids, and canonical order (score descending, id ascending
// on ties) — the order the merge algebra's correctness rests on.
func checkScoredList(name string, list []core.Scored, limit, n int) error {
	if len(list) > limit {
		return fmt.Errorf("%w: %s has %d entries, limit %d", shard.ErrBadResponse, name, len(list), limit)
	}
	seen := make(map[int]struct{}, len(list))
	for i, s := range list {
		if s.Obj < 0 || s.Obj >= n {
			return fmt.Errorf("%w: %s[%d] object id %d outside [0,%d)", shard.ErrBadResponse, name, i, s.Obj, n)
		}
		if s.Score < 0 || s.Score > n-1 {
			return fmt.Errorf("%w: %s[%d] score %d outside [0,%d]", shard.ErrBadResponse, name, i, s.Score, n-1)
		}
		if _, dup := seen[s.Obj]; dup {
			return fmt.Errorf("%w: %s repeats object id %d", shard.ErrBadResponse, name, s.Obj)
		}
		seen[s.Obj] = struct{}{}
		if i > 0 {
			prev := list[i-1]
			if s.Score > prev.Score || (s.Score == prev.Score && s.Obj < prev.Obj) {
				return fmt.Errorf("%w: %s breaks canonical order at index %d", shard.ErrBadResponse, name, i)
			}
		}
	}
	return nil
}

// checkStats rejects stats with negative durations or counters — a
// corrupt response shaped well enough to parse must still not skew the
// merged accounting.
func checkStats(s core.PhaseStats) error {
	for _, d := range [...]int64{int64(s.LabelInput), int64(s.GridMapping), int64(s.LowerBounding), int64(s.UpperBounding), int64(s.Verification)} {
		if d < 0 {
			return fmt.Errorf("%w: negative phase duration", shard.ErrBadResponse)
		}
	}
	for _, c := range [...]int{s.LabelBytes, s.Candidates, s.Verified, s.DistanceComps, s.AdjComputed,
		s.SmallCells, s.LargeCells, s.IndexBytes, s.SmallGridBytes, s.SmallGridUncompressedBytes, s.LargeGridBytes} {
		if c < 0 {
			return fmt.Errorf("%w: negative stats counter", shard.ErrBadResponse)
		}
	}
	return nil
}

// checkBoundResponse fully validates a decoded bound response for a
// dataset of n global objects and a query with parameter k.
func checkBoundResponse(resp *BoundResponse, want Stamp, k, n int) error {
	if err := checkStamp(resp.Stamp, want); err != nil {
		return err
	}
	if err := checkScoredList("top_lbs", resp.TopLBs, k, n); err != nil {
		return err
	}
	if resp.MaxUB < 0 || resp.MaxUB > n-1 {
		return fmt.Errorf("%w: max_ub %d outside [0,%d]", shard.ErrBadResponse, resp.MaxUB, n-1)
	}
	for _, s := range resp.TopLBs {
		if s.Score > resp.MaxUB {
			return fmt.Errorf("%w: lower bound %d exceeds max_ub %d", shard.ErrBadResponse, s.Score, resp.MaxUB)
		}
	}
	return checkStats(resp.Stats)
}

// checkCompleteResponse fully validates a decoded complete response.
func checkCompleteResponse(resp *CompleteResponse, want Stamp, k, n int) error {
	if err := checkStamp(resp.Stamp, want); err != nil {
		return err
	}
	if err := checkScoredList("top_k", resp.TopK, k, n); err != nil {
		return err
	}
	return checkStats(resp.Stats)
}

// checkShardz validates a decoded /shardz response: the generation is
// checked by the caller (stale is a distinct state, not a bad
// response); here only structural sanity.
func checkShardz(resp *ShardzResponse, n int) error {
	if resp.Objects < 0 || resp.Primaries < 0 || resp.Replicas < 0 || resp.Handles < 0 {
		return fmt.Errorf("%w: negative shardz counter", shard.ErrBadResponse)
	}
	if resp.Objects > n || resp.Primaries+resp.Replicas != resp.Objects {
		return fmt.Errorf("%w: shardz accounting broken (%d objects, %d primaries, %d replicas)",
			shard.ErrBadResponse, resp.Objects, resp.Primaries, resp.Replicas)
	}
	return nil
}
