package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mio/internal/core"
	"mio/internal/data"
	"mio/internal/durable"
	"mio/internal/fault"
	"mio/internal/shard"
)

// ---------- harness ----------

// startWorker stands one shard worker up behind an httptest server,
// optionally wrapping its handler (hostile-response tests).
func startWorker(t *testing.T, ds *data.Dataset, idx, shards int, maxR float64, wcfg WorkerConfig, wrap func(http.Handler) http.Handler) (*Worker, *httptest.Server) {
	t.Helper()
	wcfg.Index, wcfg.Shards, wcfg.MaxR = idx, shards, maxR
	w, err := NewWorker(ds, core.Options{}, wcfg)
	if err != nil {
		t.Fatalf("NewWorker(%d/%d): %v", idx, shards, err)
	}
	h := http.Handler(w.Handler())
	if wrap != nil {
		h = wrap(h)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(func() { srv.Close(); w.Close() })
	return w, srv
}

// remoteCluster builds a full remote coordinator: one worker+server per
// shard, one hardened client per worker, assembled via NewWithBackends.
// wraps[i] mangles worker i's handler; tweak edits client i's config.
func remoteCluster(t *testing.T, ds *data.Dataset, shards int, maxR float64, cfg shard.Config,
	wraps map[int]func(http.Handler) http.Handler, tweak func(i int, cc *ClientConfig)) *shard.Coordinator {
	t.Helper()
	gen := Generation(Fingerprint(ds), shards, maxR)
	backends := make([]shard.Backend, shards)
	for i := 0; i < shards; i++ {
		_, srv := startWorker(t, ds, i, shards, maxR, WorkerConfig{}, wraps[i])
		cc := ClientConfig{
			Addr:          srv.URL,
			Stamp:         Stamp{Generation: gen, Shard: i, Shards: shards},
			Objects:       ds.N(),
			ProbeInterval: 25 * time.Millisecond,
			ProbeTimeout:  500 * time.Millisecond,
		}
		if tweak != nil {
			tweak(i, &cc)
		}
		backends[i] = NewClient(cc)
	}
	cfg.MaxR = maxR
	co, err := shard.NewWithBackends(backends, ds.N(), cfg)
	if err != nil {
		t.Fatalf("NewWithBackends: %v", err)
	}
	t.Cleanup(co.Close)
	return co
}

func oracleRun(t *testing.T, ds *data.Dataset, r float64, k int) *core.Result {
	t.Helper()
	e, err := core.NewEngine(ds, core.Options{})
	if err != nil {
		t.Fatalf("oracle engine: %v", err)
	}
	res, err := e.RunTopK(r, k)
	if err != nil {
		t.Fatalf("oracle run: %v", err)
	}
	return res
}

func sameScored(a, b []core.Scored) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mangleBound rewrites the body of every 200 bound response; other
// paths (probes, complete, release) pass through untouched.
func mangleBound(f func(body []byte) []byte) func(http.Handler) http.Handler {
	return func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != PathBound {
				inner.ServeHTTP(w, r)
				return
			}
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			body := rec.Body.Bytes()
			if rec.Code == http.StatusOK {
				body = f(body)
			}
			w.WriteHeader(rec.Code)
			_, _ = w.Write(body)
		})
	}
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// ---------- healthy-cluster parity ----------

// TestRemoteParityWithOracle is the acceptance sweep: a healthy
// multi-process cluster must answer bitwise-identically to the
// in-process sharded coordinator — deterministic work counters
// included — and exactly match the single-engine oracle.
func TestRemoteParityWithOracle(t *testing.T) {
	ds := uniformDS(160, 1)
	const maxR = 8.0
	ctx := context.Background()
	for _, shards := range []int{2, 3} {
		local, err := shard.New(ds, core.Options{}, shard.Config{Shards: shards, MaxR: maxR})
		if err != nil {
			t.Fatalf("shards=%d: local coordinator: %v", shards, err)
		}
		rem := remoteCluster(t, ds, shards, maxR, shard.Config{}, nil, nil)
		for _, r := range []float64{2, 4} {
			for _, k := range []int{1, 3, 7} {
				want := oracleRun(t, ds, r, k)
				lres, _, lerr := local.Query(ctx, r, k)
				if lerr != nil {
					t.Fatalf("shards=%d r=%g k=%d: local query: %v", shards, r, k, lerr)
				}
				rres, rrep, rerr := rem.Query(ctx, r, k)
				if rerr != nil {
					t.Fatalf("shards=%d r=%g k=%d: remote query: %v", shards, r, k, rerr)
				}
				if rres.Degraded || rrep.Failed != 0 {
					t.Fatalf("shards=%d r=%g k=%d: healthy cluster degraded: %+v", shards, r, k, rrep)
				}
				if !sameScored(rres.TopK, want.TopK) {
					t.Errorf("shards=%d r=%g k=%d: TopK %v != oracle %v", shards, r, k, rres.TopK, want.TopK)
				}
				if rres.Best != want.Best {
					t.Errorf("shards=%d r=%g k=%d: Best %v != oracle %v", shards, r, k, rres.Best, want.Best)
				}
				// The transport must not change the computation: the
				// deterministic work counters match the in-process
				// sharded run exactly.
				if rres.Stats.DistanceComps != lres.Stats.DistanceComps ||
					rres.Stats.Candidates != lres.Stats.Candidates ||
					rres.Stats.Verified != lres.Stats.Verified {
					t.Errorf("shards=%d r=%g k=%d: work counters diverge: remote {dc=%d cand=%d ver=%d} local {dc=%d cand=%d ver=%d}",
						shards, r, k,
						rres.Stats.DistanceComps, rres.Stats.Candidates, rres.Stats.Verified,
						lres.Stats.DistanceComps, lres.Stats.Candidates, lres.Stats.Verified)
				}
				// And it is reproducible: a second remote run does the
				// same work.
				rres2, _, rerr2 := rem.Query(ctx, r, k)
				if rerr2 != nil {
					t.Fatalf("shards=%d r=%g k=%d: remote rerun: %v", shards, r, k, rerr2)
				}
				if rres2.Stats.DistanceComps != rres.Stats.DistanceComps {
					t.Errorf("shards=%d r=%g k=%d: DistanceComps not deterministic: %d then %d",
						shards, r, k, rres.Stats.DistanceComps, rres2.Stats.DistanceComps)
				}
			}
		}
	}
}

// TestRemoteHealth: /healthz's per-shard rows carry the remote
// transport's identity — address, expected generation, prober state.
func TestRemoteHealth(t *testing.T) {
	ds := uniformDS(80, 2)
	const maxR = 8.0
	co := remoteCluster(t, ds, 2, maxR, shard.Config{}, nil, nil)
	gen := Generation(Fingerprint(ds), 2, maxR)
	waitFor(t, 2*time.Second, "both workers probed up", func() bool {
		for _, h := range co.Health() {
			if h.State != shard.ProbeUp {
				return false
			}
		}
		return true
	})
	for _, h := range co.Health() {
		if h.Addr == "" {
			t.Errorf("shard %d: no addr in health row", h.ID)
		}
		if h.Generation != gen {
			t.Errorf("shard %d: health generation %d, want %d", h.ID, h.Generation, gen)
		}
		if h.Objects <= 0 {
			t.Errorf("shard %d: health objects %d, want > 0 (from /shardz)", h.ID, h.Objects)
		}
	}
}

// ---------- hostile responses ----------

// TestHostileResponsesDegrade is satellite 3's table: every class of
// broken worker response must turn into shard-down degradation — a
// 200-path answer whose certified interval contains the oracle score —
// and never a panic or a silent merge of unvalidated data.
func TestHostileResponsesDegrade(t *testing.T) {
	ds := uniformDS(120, 4)
	const (
		shards = 3
		maxR   = 8.0
		r      = 3.0
		k      = 3
	)
	gen := Generation(Fingerprint(ds), shards, maxR)
	stamp := Stamp{Generation: gen, Shard: 1, Shards: shards}
	seal := func(resp BoundResponse) []byte {
		b, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		return durable.Seal(b)
	}
	want := oracleRun(t, ds, r, k)

	cases := []struct {
		name      string
		mangle    func(body []byte) []byte
		tweak     func(i int, cc *ClientConfig)
		wantStale bool
		wantBad   bool
	}{
		{
			name:    "truncated envelope",
			mangle:  func(b []byte) []byte { return b[:len(b)/2] },
			wantBad: true,
		},
		{
			name: "corrupted payload byte",
			mangle: func(b []byte) []byte {
				out := append([]byte(nil), b...)
				out[durable.EnvelopeOverhead] ^= 0x20
				return out
			},
			wantBad: true,
		},
		{
			name:    "bare JSON without envelope",
			mangle:  func([]byte) []byte { return []byte(`{"stamp":{},"handle":1}`) },
			wantBad: true,
		},
		{
			name:    "unknown fields",
			mangle:  func([]byte) []byte { return durable.Seal([]byte(`{"bogus":true}`)) },
			wantBad: true,
		},
		{
			name: "duplicate object ids",
			mangle: func([]byte) []byte {
				return seal(BoundResponse{Stamp: stamp, Handle: 9,
					TopLBs: []core.Scored{{Obj: 5, Score: 4}, {Obj: 5, Score: 2}}, MaxUB: 10})
			},
			wantBad: true,
		},
		{
			name: "canonical order broken",
			mangle: func([]byte) []byte {
				return seal(BoundResponse{Stamp: stamp, Handle: 9,
					TopLBs: []core.Scored{{Obj: 2, Score: 3}, {Obj: 9, Score: 5}}, MaxUB: 10})
			},
			wantBad: true,
		},
		{
			name: "object id out of range",
			mangle: func([]byte) []byte {
				return seal(BoundResponse{Stamp: stamp, Handle: 9,
					TopLBs: []core.Scored{{Obj: ds.N(), Score: 3}}, MaxUB: 10})
			},
			wantBad: true,
		},
		{
			name: "score outside [0,n-1]",
			mangle: func([]byte) []byte {
				return seal(BoundResponse{Stamp: stamp, Handle: 9,
					TopLBs: []core.Scored{{Obj: 3, Score: ds.N()}}, MaxUB: ds.N() - 1})
			},
			wantBad: true,
		},
		{
			name:   "oversized response",
			mangle: func([]byte) []byte { return bytes.Repeat([]byte{'x'}, 64<<10) },
			tweak: func(i int, cc *ClientConfig) {
				if i == 1 {
					cc.MaxResponseBytes = 16 << 10
				}
			},
			wantBad: true,
		},
		{
			name: "stale generation",
			mangle: func([]byte) []byte {
				st := stamp
				st.Generation++
				return seal(BoundResponse{Stamp: st, Handle: 9,
					TopLBs: []core.Scored{{Obj: 3, Score: 4}}, MaxUB: 10})
			},
			wantStale: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			co := remoteCluster(t, ds, shards, maxR, shard.Config{},
				map[int]func(http.Handler) http.Handler{1: mangleBound(tc.mangle)}, tc.tweak)
			res, rep, err := co.Query(context.Background(), r, k)
			if err != nil {
				t.Fatalf("query must degrade, not fail: %v", err)
			}
			if !res.Degraded || res.Interval == nil {
				t.Fatalf("hostile shard did not degrade the result: %+v", rep)
			}
			if rep.PerShard[1].State != shard.StateDown {
				t.Fatalf("hostile shard state %q, want %q (err: %s)",
					rep.PerShard[1].State, shard.StateDown, rep.PerShard[1].Err)
			}
			if res.Interval.LB > want.Best.Score || want.Best.Score > res.Interval.UB {
				t.Fatalf("certified interval [%d,%d] does not contain oracle score %d",
					res.Interval.LB, res.Interval.UB, want.Best.Score)
			}
			// Degraded partial answers must still be true scores: no
			// unvalidated data leaked into the merge.
			if res.Best.Score > want.Best.Score {
				t.Fatalf("degraded best %v exceeds oracle best %v — hostile data merged", res.Best, want.Best)
			}
			m := co.Metrics()
			if tc.wantStale && m.Stale.Value() == 0 {
				t.Error("stale-generation rejection not counted in Metrics.Stale")
			}
			if tc.wantBad && m.Bad.Value() == 0 {
				t.Error("invalid-response rejection not counted in Metrics.Bad")
			}
			// The healthy shards still answer exactly for their
			// primaries on the next query too — the cluster keeps
			// serving.
			if _, _, err := co.Query(context.Background(), r, k); err != nil {
				t.Fatalf("second query after degradation failed: %v", err)
			}
		})
	}
}

// ---------- injected transport faults ----------

// TestFaultPointsDegrade drives the four new injection points through
// the -faults flag syntax and checks each one degrades the shard
// instead of failing or poisoning the query.
func TestFaultPointsDegrade(t *testing.T) {
	ds := uniformDS(100, 5)
	const (
		shards = 3
		maxR   = 8.0
		r      = 3.0
		k      = 2
	)
	want := oracleRun(t, ds, r, k)

	check := func(t *testing.T, co *shard.Coordinator, reg *fault.Registry, point string, wantCounter func(*shard.Metrics) uint64) {
		t.Helper()
		res, rep, err := co.Query(context.Background(), r, k)
		if err != nil {
			t.Fatalf("query must degrade, not fail: %v", err)
		}
		if !res.Degraded || res.Interval == nil {
			t.Fatalf("fault at %s did not degrade: %+v", point, rep)
		}
		if res.Interval.LB > want.Best.Score || want.Best.Score > res.Interval.UB {
			t.Fatalf("interval [%d,%d] misses oracle score %d", res.Interval.LB, res.Interval.UB, want.Best.Score)
		}
		if reg.Fired(point) == 0 {
			t.Fatalf("injection point %s never fired", point)
		}
		if wantCounter != nil && wantCounter(co.Metrics()) == 0 {
			t.Errorf("fault at %s not counted in coordinator metrics", point)
		}
	}

	t.Run("client net_send", func(t *testing.T) {
		reg, err := fault.Parse(fault.PointNetSend + "=error:1")
		if err != nil {
			t.Fatal(err)
		}
		co := remoteCluster(t, ds, shards, maxR, shard.Config{}, nil, func(i int, cc *ClientConfig) {
			if i == 1 {
				cc.Faults = reg
			}
		})
		check(t, co, reg, fault.PointNetSend, nil)
	})

	t.Run("client net_recv", func(t *testing.T) {
		reg, err := fault.Parse(fault.PointNetRecv + "=error:1")
		if err != nil {
			t.Fatal(err)
		}
		co := remoteCluster(t, ds, shards, maxR, shard.Config{}, nil, func(i int, cc *ClientConfig) {
			if i == 1 {
				cc.Faults = reg
			}
		})
		check(t, co, reg, fault.PointNetRecv, nil)
	})

	t.Run("worker net_corrupt", func(t *testing.T) {
		reg, err := fault.Parse(fault.PointNetCorrupt + "=error:1")
		if err != nil {
			t.Fatal(err)
		}
		gen := Generation(Fingerprint(ds), shards, maxR)
		backends := make([]shard.Backend, shards)
		for i := 0; i < shards; i++ {
			wcfg := WorkerConfig{}
			if i == 1 {
				wcfg.Faults = reg
			}
			_, srv := startWorker(t, ds, i, shards, maxR, wcfg, nil)
			backends[i] = NewClient(ClientConfig{
				Addr:          srv.URL,
				Stamp:         Stamp{Generation: gen, Shard: i, Shards: shards},
				Objects:       ds.N(),
				ProbeInterval: 25 * time.Millisecond,
			})
		}
		co, err := shard.NewWithBackends(backends, ds.N(), shard.Config{MaxR: maxR})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(co.Close)
		check(t, co, reg, fault.PointNetCorrupt, func(m *shard.Metrics) uint64 { return m.Bad.Value() })
	})

	t.Run("worker stale_gen", func(t *testing.T) {
		reg, err := fault.Parse(fault.PointStaleGen + "=error:1")
		if err != nil {
			t.Fatal(err)
		}
		gen := Generation(Fingerprint(ds), shards, maxR)
		backends := make([]shard.Backend, shards)
		var flapping *Client
		for i := 0; i < shards; i++ {
			wcfg := WorkerConfig{}
			if i == 1 {
				wcfg.Faults = reg
			}
			_, srv := startWorker(t, ds, i, shards, maxR, wcfg, nil)
			c := NewClient(ClientConfig{
				Addr:          srv.URL,
				Stamp:         Stamp{Generation: gen, Shard: i, Shards: shards},
				Objects:       ds.N(),
				ProbeInterval: 25 * time.Millisecond,
			})
			if i == 1 {
				flapping = c
			}
			backends[i] = c
		}
		co, err := shard.NewWithBackends(backends, ds.N(), shard.Config{MaxR: maxR})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(co.Close)
		check(t, co, reg, fault.PointStaleGen, func(m *shard.Metrics) uint64 { return m.Stale.Value() })
		// A stale generation is not a transient: the client marks the
		// worker down immediately instead of retrying it to death.
		if st := flapping.Info().State; st != shard.ProbeDown {
			t.Errorf("stale worker state %q, want %q", st, shard.ProbeDown)
		}
	})
}

// ---------- prober lifecycle ----------

// deadSwitch wraps a handler with a kill switch: while dead, every
// request answers 502, probes included.
type deadSwitch struct {
	mu    sync.Mutex
	dead  bool
	inner http.Handler
}

func (d *deadSwitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	dead := d.dead
	d.mu.Unlock()
	if dead {
		http.Error(w, "gone", http.StatusBadGateway)
		return
	}
	d.inner.ServeHTTP(w, r)
}

func (d *deadSwitch) set(dead bool) {
	d.mu.Lock()
	d.dead = dead
	d.mu.Unlock()
}

// TestProberLifecycle: consecutive probe failures walk the worker to
// down, down workers fast-fail without a round trip, and a succeeding
// probe brings the worker back up.
func TestProberLifecycle(t *testing.T) {
	ds := uniformDS(60, 6)
	const (
		shards = 2
		maxR   = 8.0
	)
	w, err := NewWorker(ds, core.Options{}, WorkerConfig{Index: 0, Shards: shards, MaxR: maxR})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	ds1 := &deadSwitch{inner: w.Handler()}
	srv := httptest.NewServer(ds1)
	t.Cleanup(srv.Close)

	gen := Generation(Fingerprint(ds), shards, maxR)
	c := NewClient(ClientConfig{
		Addr:          srv.URL,
		Stamp:         Stamp{Generation: gen, Shard: 0, Shards: shards},
		Objects:       ds.N(),
		ProbeInterval: 15 * time.Millisecond,
		DownAfter:     2,
	})
	t.Cleanup(c.Close)

	waitFor(t, 2*time.Second, "initial probe to mark worker up", func() bool {
		return c.Info().State == shard.ProbeUp
	})
	if _, err := c.Bound(context.Background(), 3, 2); err != nil {
		t.Fatalf("healthy bound failed: %v", err)
	}

	ds1.set(true)
	waitFor(t, 2*time.Second, "probes to mark worker down", func() bool {
		return c.Info().State == shard.ProbeDown
	})
	if _, err := c.Bound(context.Background(), 3, 2); err == nil {
		t.Fatal("bound against a down worker succeeded")
	} else if got := err.Error(); got == "" {
		t.Fatal("empty error")
	}
	// Fast-fail means no round trip: the request never reaches the
	// (dead) server, so it cannot flip the failure ladder further.
	info := c.Info()
	if info.State != shard.ProbeDown || info.LastProbeErr == "" {
		t.Fatalf("down worker info incomplete: %+v", info)
	}

	ds1.set(false)
	waitFor(t, 2*time.Second, "probe to recover the worker", func() bool {
		return c.Info().State == shard.ProbeUp
	})
	if _, err := c.Bound(context.Background(), 3, 2); err != nil {
		t.Fatalf("bound after recovery failed: %v", err)
	}
}

// ---------- worker handle lifecycle ----------

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data := new(bytes.Buffer)
	if _, err := data.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, data.Bytes()
}

func openBound(t *testing.T, raw []byte) BoundResponse {
	t.Helper()
	payload, err := durable.Open(raw)
	if err != nil {
		t.Fatalf("open envelope: %v", err)
	}
	var br BoundResponse
	if err := decodeStrict(payload, &br); err != nil {
		t.Fatalf("decode bound response: %v", err)
	}
	return br
}

// TestWorkerHandleLifecycle: handles are single-use, bound 503s when
// the pool is exhausted, and the TTL reaper reclaims abandoned engines.
func TestWorkerHandleLifecycle(t *testing.T) {
	ds := uniformDS(60, 7)
	_, srv := startWorker(t, ds, 0, 2, 8.0, WorkerConfig{
		Pool:        1,
		HandleTTL:   40 * time.Millisecond,
		AcquireWait: 10 * time.Millisecond,
	}, nil)

	// Take the only engine and pause it behind a handle.
	resp, raw := postJSON(t, srv.URL+PathBound, BoundRequest{R: 3, K: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first bound: %d %s", resp.StatusCode, raw)
	}
	h1 := openBound(t, raw).Handle

	// Pool exhausted: the next bound must answer 503, not hang.
	resp, _ = postJSON(t, srv.URL+PathBound, BoundRequest{R: 3, K: 2})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("bound with exhausted pool: %d, want 503", resp.StatusCode)
	}

	// Past the TTL the reaper reclaims the engine...
	time.Sleep(60 * time.Millisecond)
	resp, raw = postJSON(t, srv.URL+PathBound, BoundRequest{R: 3, K: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bound after reap: %d %s", resp.StatusCode, raw)
	}
	h2 := openBound(t, raw).Handle

	// ...which also voided the old handle.
	resp, _ = postJSON(t, srv.URL+PathComplete, CompleteRequest{Handle: h1, Floor: 0})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("complete on reaped handle: %d, want 404", resp.StatusCode)
	}

	// The live handle completes exactly once.
	resp, raw = postJSON(t, srv.URL+PathComplete, CompleteRequest{Handle: h2, Floor: 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("complete: %d %s", resp.StatusCode, raw)
	}
	resp, _ = postJSON(t, srv.URL+PathComplete, CompleteRequest{Handle: h2, Floor: 0})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second complete on same handle: %d, want 404", resp.StatusCode)
	}

	// Release is idempotent best-effort: unknown handles are fine.
	resp, _ = postJSON(t, srv.URL+PathRelease, ReleaseRequest{Handle: 999})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("release unknown handle: %d, want 200", resp.StatusCode)
	}

	// Hostile requests: wrong method, malformed parameters.
	get, err := http.Get(srv.URL + PathBound)
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET bound: %d, want 405", get.StatusCode)
	}
	for _, bad := range []BoundRequest{{R: -1, K: 2}, {R: 3, K: 0}, {R: 100, K: 2}} {
		resp, _ = postJSON(t, srv.URL+PathBound, bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bound %+v: %d, want 400", bad, resp.StatusCode)
		}
	}
}
