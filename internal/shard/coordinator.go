package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mio/internal/core"
	"mio/internal/core/labelstore"
	"mio/internal/data"
	"mio/internal/fault"
	"mio/internal/server/metrics"
)

// ErrBeyondHorizon is returned when the query radius exceeds the
// partition's replica horizon: shard-local scores would miss
// cross-shard interactions, so the caller must fall back to a
// single-engine run.
var ErrBeyondHorizon = errors.New("shard: query radius exceeds the replica horizon")

// ErrAllShardsDown is returned when no shard produced bounds: there is
// nothing to certify an interval with.
var ErrAllShardsDown = errors.New("shard: every shard failed the bound phase")

// Config tunes the coordinator. The zero value of every field selects
// a sensible default via withDefaults.
type Config struct {
	// Shards is the number of partitions (required, ≥ 2).
	Shards int
	// MaxR is the replica horizon: queries with r ≤ MaxR are answerable
	// by the shards; larger radii return ErrBeyondHorizon. Default 10.
	MaxR float64
	// Timeout bounds each per-shard attempt (bound phase and
	// verification separately). Default 2s.
	Timeout time.Duration
	// Retries is how many times a failed bound attempt is relaunched
	// after jittered backoff. Default 1; -1 disables retries.
	Retries int
	// HedgeAfter launches one extra speculative attempt when the first
	// has not answered within this duration — the classic tail-latency
	// hedge. Default Timeout/4; negative disables hedging.
	HedgeAfter time.Duration
	// Backoff is the base delay before a retry (doubled per attempt,
	// with up to 50% jitter). Default 10ms.
	Backoff time.Duration
	// Pool is each shard's engine-pool size. One query needs at most
	// two slots per shard (original + hedge), so a caller serving Q
	// queries concurrently should set 2Q or hedged attempts starve
	// healthy ones out of slots. Default 2.
	Pool int
	// BreakThreshold / BreakCooldown configure each shard's circuit
	// breaker. Defaults 3 failures / 5s.
	BreakThreshold int
	BreakCooldown  time.Duration
	// Faults, when non-nil, is consulted at the scatter/merge/shard
	// points and threaded into every shard engine.
	Faults *fault.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxR <= 0 {
		c.MaxR = DefaultMaxR
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 1
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = c.Timeout / 4
	}
	if c.Backoff <= 0 {
		c.Backoff = 10 * time.Millisecond
	}
	if c.Pool <= 0 {
		c.Pool = poolPerShard
	}
	if c.BreakThreshold <= 0 {
		c.BreakThreshold = 3
	}
	if c.BreakCooldown <= 0 {
		c.BreakCooldown = 5 * time.Second
	}
	return c
}

// Metrics aggregates the coordinator's observability state; the server
// snapshots it into /metrics.
type Metrics struct {
	// Scatter observes per-shard bound-attempt latency; Merge observes
	// the gather/verify/merge tail after the last bound arrives; Hedge
	// observes how long the primary attempt had been running when its
	// hedge launched.
	Scatter  *metrics.Histogram
	Merge    *metrics.Histogram
	Hedge    *metrics.Histogram
	Hedges   *metrics.Counter
	Retries  *metrics.Counter
	Downs    *metrics.Counter // shard outcomes that ended down or late
	Degraded *metrics.Counter
	// Stale counts responses rejected by the dataset-generation guard;
	// Bad counts responses rejected by strict validation (corrupt
	// envelope, malformed payload). Both are remote-transport failures
	// that degrade the shard instead of poisoning the merge.
	Stale *metrics.Counter
	Bad   *metrics.Counter
	// Pruned observes, per query, how many shards the bound merge
	// eliminated before verification.
	Pruned *metrics.IntHistogram
}

func newMetrics() *Metrics {
	return &Metrics{
		Scatter:  metrics.NewHistogram(nil),
		Merge:    metrics.NewHistogram(nil),
		Hedge:    metrics.NewHistogram(nil),
		Hedges:   new(metrics.Counter),
		Retries:  new(metrics.Counter),
		Downs:    new(metrics.Counter),
		Degraded: new(metrics.Counter),
		Stale:    new(metrics.Counter),
		Bad:      new(metrics.Counter),
		Pruned:   metrics.NewIntHistogram(metrics.PowerOfTwoBounds(64)),
	}
}

// Coordinator scatters MIO queries across N shards — in-process engine
// pools or remote worker processes, behind the same Backend interface —
// and gathers the per-shard bounds and verified results back into a
// single answer. On a healthy cluster the answer is bitwise-identical
// to a single-engine run; when shards are slow, dead or flapping it
// degrades to a certified [LB, UB] interval instead of failing
// (DESIGN.md §15, §17).
type Coordinator struct {
	cfg    Config
	shards []*Shard
	n      int // global object count
	m      *Metrics
}

// New partitions ds per cfg and builds in-process shard engines. opts
// is the per-shard engine template; when opts.Labels is set each shard
// gets its own in-memory store (shard-local ids make the global store
// meaningless), and cfg.Faults overrides opts.Faults so one registry
// drives both coordinator and engine points.
func New(ds *data.Dataset, opts core.Options, cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	part, err := BuildPartition(ds, cfg.Shards, cfg.MaxR)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:    cfg,
		shards: make([]*Shard, cfg.Shards),
		n:      ds.N(),
		m:      newMetrics(),
	}
	for s := 0; s < cfg.Shards; s++ {
		local, primary := part.ShardDataset(ds, s)
		shOpts := opts
		if shOpts.Labels != nil {
			shOpts.Labels = labelstore.NewStore()
		}
		if cfg.Faults != nil {
			shOpts.Faults = cfg.Faults
		}
		global := part.Members[s]
		backend, err := newLocalBackend(s, cfg.Pool, local, global, primary, shOpts)
		if err != nil {
			return nil, err
		}
		c.shards[s] = newShard(s, backend, cfg.BreakThreshold, cfg.BreakCooldown)
	}
	return c, nil
}

// NewWithBackends builds a coordinator over caller-supplied shard
// transports — the multi-process entry point, where each backend is a
// remote worker client. n is the global object count (the trivial
// degradation bound when a shard has no recorded envelope); backends
// are taken in shard-id order. The coordinator owns the backends and
// closes them via Close.
func NewWithBackends(backends []Backend, n int, cfg Config) (*Coordinator, error) {
	if len(backends) < 2 {
		return nil, fmt.Errorf("shard: need at least 2 backends, got %d", len(backends))
	}
	if n < 2 {
		return nil, fmt.Errorf("shard: need at least 2 objects, got %d", n)
	}
	cfg.Shards = len(backends)
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:    cfg,
		shards: make([]*Shard, len(backends)),
		n:      n,
		m:      newMetrics(),
	}
	for s, b := range backends {
		c.shards[s] = newShard(s, b, cfg.BreakThreshold, cfg.BreakCooldown)
	}
	return c, nil
}

// Close releases every shard backend (stops remote health probers).
// In-flight queries may still complete; new ones should not be issued.
func (c *Coordinator) Close() {
	for _, sh := range c.shards {
		sh.backend.Close()
	}
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return c.cfg.Shards }

// MaxR returns the replica horizon.
func (c *Coordinator) MaxR() float64 { return c.cfg.MaxR }

// Metrics returns the coordinator's metric set.
func (c *Coordinator) Metrics() *Metrics { return c.m }

// AdoptMetrics replaces the coordinator's metric set, letting a
// replacement coordinator (dataset swap) continue its predecessor's
// counters. Must be called before the coordinator serves queries.
func (c *Coordinator) AdoptMetrics(m *Metrics) {
	if m != nil {
		if m.Stale == nil { // metric set from before the remote transport
			m.Stale = new(metrics.Counter)
			m.Bad = new(metrics.Counter)
		}
		c.m = m
	}
}

// Health snapshots every shard's status, ordered by id.
func (c *Coordinator) Health() []Health {
	hs := make([]Health, 0, len(c.shards))
	for _, sh := range c.shards {
		hs = append(hs, sh.health())
	}
	sortHealth(hs)
	return hs
}

// attemptRes is one bound attempt's outcome.
type attemptRes struct {
	bounds Bounds
	err    error
}

// shardBound is one shard's overall bound-phase outcome after retries
// and hedging.
type shardBound struct {
	sh       *Shard
	bounds   Bounds
	attempts int
	hedged   bool
	err      error
}

// Query answers the MIO query (r, k) by scatter–gather. It returns the
// merged result, a per-shard report, and an error only when the query
// itself is invalid (or every shard is unreachable) — shard failures
// degrade the result instead (Result.Degraded + Interval).
func (c *Coordinator) Query(ctx context.Context, r float64, k int) (*core.Result, *Report, error) {
	if r <= 0 {
		return nil, nil, fmt.Errorf("shard: distance threshold must be positive, got %g", r)
	}
	if k < 1 {
		return nil, nil, fmt.Errorf("shard: k must be at least 1, got %d", k)
	}
	if r > c.cfg.MaxR {
		return nil, nil, fmt.Errorf("%w (r=%g, horizon=%g)", ErrBeyondHorizon, r, c.cfg.MaxR)
	}
	if err := c.cfg.Faults.Fire(fault.PointScatter); err != nil {
		return nil, nil, err
	}

	// Instant-death injection: fired per shard in id order before the
	// fan-out so chaos schedules (Rule.After) are deterministic.
	down := make([]error, len(c.shards))
	for i := range c.shards {
		down[i] = c.cfg.Faults.Fire(fault.PointShardDown)
	}

	// Scatter the bound phase.
	bounds := make([]shardBound, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		bounds[i] = shardBound{sh: sh}
		if down[i] != nil {
			bounds[i].err = down[i]
			sh.noteError(down[i])
			continue
		}
		wg.Add(1)
		go func(i int, sh *Shard) {
			defer wg.Done()
			bounds[i] = c.boundShard(ctx, sh, r, k)
		}(i, sh)
	}
	wg.Wait()
	tMerge := time.Now()

	if err := c.cfg.Faults.Fire(fault.PointMerge); err != nil {
		for i := range bounds {
			if bounds[i].bounds != nil {
				bounds[i].bounds.Release()
			}
		}
		return nil, nil, err
	}

	res, rep := c.gather(ctx, r, k, bounds)
	c.m.Merge.Observe(time.Since(tMerge))
	if res == nil {
		return nil, rep, ErrAllShardsDown
	}
	if res.Degraded {
		c.m.Degraded.Inc()
	}
	c.m.Pruned.Observe(int64(rep.Pruned))
	return res, rep, nil
}

// boundShard drives one shard's bound phase: breaker-gated attempts
// with per-attempt deadlines, jittered-backoff retries, and one hedged
// attempt if the first straggles. The first success wins; a reaper
// drains losing attempts and releases their bounds.
func (c *Coordinator) boundShard(ctx context.Context, sh *Shard, r float64, k int) shardBound {
	out := shardBound{sh: sh}
	budget := 1 + c.cfg.Retries // sequential attempts; hedge is extra
	resCh := make(chan attemptRes, budget+1)
	outstanding := 0
	t0 := time.Now()

	launch := func() {
		out.attempts++
		outstanding++
		go func() { resCh <- c.attempt(ctx, sh, r, k) }()
	}
	launch()
	launched := 1

	var hedgeC <-chan time.Time
	if c.cfg.HedgeAfter > 0 {
		ht := time.NewTimer(c.cfg.HedgeAfter)
		defer ht.Stop()
		hedgeC = ht.C
	}
	var backoffT *time.Timer
	var backoffC <-chan time.Time
	defer func() {
		if backoffT != nil {
			backoffT.Stop()
		}
	}()

	finish := func(win attemptRes) shardBound {
		out.bounds, out.err = win.bounds, win.err
		if outstanding > 0 {
			// Losing attempts are still running; drain them off-path so
			// their resources (engine slots, remote handles) come back.
			go func(pending int) {
				for i := 0; i < pending; i++ {
					if late := <-resCh; late.bounds != nil {
						late.bounds.Release()
					}
				}
			}(outstanding)
		}
		return out
	}

	for {
		select {
		case res := <-resCh:
			outstanding--
			if res.err == nil {
				return finish(res)
			}
			out.err = res.err
			if outstanding > 0 {
				continue // the hedge may still win
			}
			if launched < budget && ctx.Err() == nil {
				c.m.Retries.Inc()
				launched++
				d := c.cfg.Backoff << (launched - 2)
				d += time.Duration(rand.Int63n(int64(d)/2 + 1))
				backoffT = time.NewTimer(d)
				backoffC = backoffT.C
				continue
			}
			return out
		case <-backoffC:
			backoffC = nil
			launch()
		case <-hedgeC:
			hedgeC = nil
			// The hedge rides outside the retry budget: one extra
			// concurrent attempt racing the straggler.
			if outstanding == 1 && !out.hedged && ctx.Err() == nil {
				out.hedged = true
				c.m.Hedges.Inc()
				c.m.Hedge.Observe(time.Since(t0))
				launch()
			}
		case <-ctx.Done():
			if out.err == nil {
				out.err = ctx.Err()
			}
			return finish(attemptRes{err: out.err})
		}
	}
}

// attempt runs one breaker-gated bound attempt against the shard's
// backend. Backends convert panics to errors, so only bookkeeping
// lives here: breaker charging (refusals and pool exhaustion exempt),
// per-class failure counters, and the degradation envelope.
func (c *Coordinator) attempt(ctx context.Context, sh *Shard, r float64, k int) attemptRes {
	if retry, ok := sh.br.Allow(); !ok {
		// Refused, not failed: the breaker's own bookkeeping must not
		// see refusals or it would never half-open.
		return attemptRes{err: fmt.Errorf("shard %d: %w (retry in %s)", sh.id, ErrBreakerOpen, retry.Round(time.Millisecond))}
	}
	actx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	t0 := time.Now()
	b, err := sh.backend.Bound(actx, r, k)
	c.m.Scatter.Observe(time.Since(t0))
	if err != nil {
		if errors.Is(err, errNoSlot) {
			// The shard is busy, not broken: no breaker charge, no
			// health note — the caller's admission control is at fault.
			return attemptRes{err: err}
		}
		switch {
		case errors.Is(err, ErrStaleGeneration):
			c.m.Stale.Inc()
		case errors.Is(err, ErrBadResponse):
			c.m.Bad.Inc()
		}
		if !errors.Is(err, ErrUnreachable) {
			// Prober-refused attempts never reached the worker; charging
			// the breaker too would double-count one failure signal.
			sh.br.Failure()
		}
		sh.noteError(err)
		return attemptRes{err: err}
	}
	sh.br.Success()
	sh.recordEnvelope(r, b.MaxUB())
	return attemptRes{bounds: b}
}

// gather merges the per-shard bound outcomes: computes the global
// verification floor, prunes shards whose upper bound cannot reach it,
// completes the survivors concurrently, and assembles either the exact
// merged top-k or a certified degraded interval. Returns nil when no
// shard produced bounds.
func (c *Coordinator) gather(ctx context.Context, r float64, k int, bounds []shardBound) (*core.Result, *Report) {
	rep := &Report{Shards: len(bounds), PerShard: make([]ShardRun, len(bounds))}
	type boundInfo struct {
		tops  []core.Scored
		maxUB int
	}
	infos := make([]boundInfo, len(bounds))
	var tops [][]core.Scored
	for i := range bounds {
		b := &bounds[i]
		run := &rep.PerShard[i]
		run.ID = b.sh.id
		run.Attempts = b.attempts
		run.Hedged = b.hedged
		retries := b.attempts - 1
		if b.hedged {
			retries-- // the hedge launch is not a retry
		}
		rep.Retries += maxInt(0, retries)
		if b.hedged {
			rep.Hedges++
		}
		if b.bounds == nil {
			run.State = StateDown
			if b.err != nil {
				run.Err = b.err.Error()
			}
			continue
		}
		infos[i] = boundInfo{tops: b.bounds.TopLBs(), maxUB: b.bounds.MaxUB()}
		run.MaxUB = infos[i].maxUB
		if len(infos[i].tops) > 0 {
			run.BestLB = infos[i].tops[0].Score
		}
		tops = append(tops, infos[i].tops)
	}
	if len(tops) == 0 {
		rep.Failed = len(bounds)
		rep.Degraded = true
		return nil, rep
	}

	// The floor is sound globally even with shards down: it only
	// asserts that k objects score at least this much, which the
	// surviving shards' bounds already prove.
	floor := mergeFloor(tops, k)
	rep.Floor = floor

	// Prune, then complete the survivors concurrently.
	var wg sync.WaitGroup
	results := make([]*core.Result, len(bounds))
	stats := make([]core.PhaseStats, len(bounds))
	haveStats := make([]bool, len(bounds))
	errs := make([]error, len(bounds))
	for i := range bounds {
		b := &bounds[i]
		if b.bounds == nil {
			continue
		}
		if infos[i].maxUB < floor {
			rep.PerShard[i].State = StatePruned
			rep.Pruned++
			// Cannot hold an answer, but its bound-phase work counts;
			// snapshot the stats before the release invalidates them.
			stats[i] = b.bounds.Stats()
			haveStats[i] = true
			b.bounds.Release()
			continue
		}
		wg.Add(1)
		go func(i int, b *shardBound) {
			defer wg.Done()
			results[i], errs[i] = c.complete(ctx, b, floor)
		}(i, b)
	}
	wg.Wait()

	// Assemble: exact lists from completed shards, certified bounds
	// from the rest.
	var lists [][]core.Scored
	var allStats []core.PhaseStats
	degraded := false
	lbBest := core.Scored{Obj: -1}
	ub := 0
	bumpUB := func(v int) {
		if v > ub {
			ub = v
		}
	}
	for i := range bounds {
		b := &bounds[i]
		run := &rep.PerShard[i]
		switch {
		case run.State == StatePruned:
			if haveStats[i] {
				allStats = append(allStats, stats[i])
			}
			bumpUB(infos[i].maxUB)
		case b.bounds == nil:
			degraded = true
			rep.Failed++
			c.m.Downs.Inc()
			if env, ok := b.sh.envelopeUB(r); ok {
				bumpUB(env)
			} else {
				bumpUB(c.n - 1) // trivial: no object interacts with more than n-1 others
			}
		case errs[i] != nil:
			run.State = StateLate
			run.Err = errs[i].Error()
			degraded = true
			rep.Failed++
			c.m.Downs.Inc()
			b.sh.noteError(errs[i])
			// Its bounds are still certified: best primary scores in
			// [BestLB, MaxUB].
			bumpUB(infos[i].maxUB)
			if len(infos[i].tops) > 0 && better(infos[i].tops[0], lbBest) {
				lbBest = infos[i].tops[0]
			}
		default:
			run.State = StateOK
			res := results[i]
			allStats = append(allStats, res.Stats)
			lists = append(lists, res.TopK)
			if len(res.TopK) > 0 {
				bumpUB(res.TopK[0].Score)
				if better(res.TopK[0], lbBest) {
					lbBest = res.TopK[0]
				}
			}
		}
	}

	merged := mergeTopK(lists, k)
	out := &core.Result{TopK: merged, Stats: mergeStats(allStats)}
	if !degraded {
		if len(merged) > 0 {
			out.Best = merged[0]
		}
		return out, rep
	}

	rep.Degraded = true
	out.Degraded = true
	// lbBest is an object certified to score ≥ lbBest.Score; ub bounds
	// every object anywhere (OK shards by their exact maxima, late
	// shards by MaxUB, down shards by their envelope). The true global
	// maximum therefore lies in [lbBest.Score, ub].
	out.Best = lbBest
	out.Interval = &core.Interval{LB: lbBest.Score, UB: ub}
	if len(merged) == 0 && lbBest.Obj >= 0 {
		out.TopK = []core.Scored{lbBest}
	}
	return out, rep
}

// complete runs a shard's verification against the merged floor with
// the same per-attempt deadline and breaker discipline as the bound
// attempts. Backends own resource return (engine slots, remote
// handles) and panic conversion.
func (c *Coordinator) complete(ctx context.Context, b *shardBound, floor int) (*core.Result, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	r, err := b.bounds.Complete(actx, floor)
	if err != nil {
		b.sh.br.Failure()
		return nil, err
	}
	b.sh.br.Success()
	return r, nil
}

// better orders degraded best-candidates canonically.
func better(a, b core.Scored) bool {
	if b.Obj < 0 {
		return true
	}
	return canonicalLess(a, b)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
