package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mio/internal/core"
	"mio/internal/core/labelstore"
	"mio/internal/data"
	"mio/internal/fault"
	"mio/internal/server/metrics"
)

// ErrBeyondHorizon is returned when the query radius exceeds the
// partition's replica horizon: shard-local scores would miss
// cross-shard interactions, so the caller must fall back to a
// single-engine run.
var ErrBeyondHorizon = errors.New("shard: query radius exceeds the replica horizon")

// ErrAllShardsDown is returned when no shard produced bounds: there is
// nothing to certify an interval with.
var ErrAllShardsDown = errors.New("shard: every shard failed the bound phase")

// Config tunes the coordinator. The zero value of every field selects
// a sensible default via withDefaults.
type Config struct {
	// Shards is the number of partitions (required, ≥ 2).
	Shards int
	// MaxR is the replica horizon: queries with r ≤ MaxR are answerable
	// by the shards; larger radii return ErrBeyondHorizon. Default 10.
	MaxR float64
	// Timeout bounds each per-shard attempt (bound phase and
	// verification separately). Default 2s.
	Timeout time.Duration
	// Retries is how many times a failed bound attempt is relaunched
	// after jittered backoff. Default 1; -1 disables retries.
	Retries int
	// HedgeAfter launches one extra speculative attempt when the first
	// has not answered within this duration — the classic tail-latency
	// hedge. Default Timeout/4; negative disables hedging.
	HedgeAfter time.Duration
	// Backoff is the base delay before a retry (doubled per attempt,
	// with up to 50% jitter). Default 10ms.
	Backoff time.Duration
	// Pool is each shard's engine-pool size. One query needs at most
	// two slots per shard (original + hedge), so a caller serving Q
	// queries concurrently should set 2Q or hedged attempts starve
	// healthy ones out of slots. Default 2.
	Pool int
	// BreakThreshold / BreakCooldown configure each shard's circuit
	// breaker. Defaults 3 failures / 5s.
	BreakThreshold int
	BreakCooldown  time.Duration
	// Faults, when non-nil, is consulted at the scatter/merge/shard
	// points and threaded into every shard engine.
	Faults *fault.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxR <= 0 {
		c.MaxR = 10
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 1
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = c.Timeout / 4
	}
	if c.Backoff <= 0 {
		c.Backoff = 10 * time.Millisecond
	}
	if c.Pool <= 0 {
		c.Pool = poolPerShard
	}
	if c.BreakThreshold <= 0 {
		c.BreakThreshold = 3
	}
	if c.BreakCooldown <= 0 {
		c.BreakCooldown = 5 * time.Second
	}
	return c
}

// Metrics aggregates the coordinator's observability state; the server
// snapshots it into /metrics.
type Metrics struct {
	// Scatter observes per-shard bound-attempt latency; Merge observes
	// the gather/verify/merge tail after the last bound arrives; Hedge
	// observes how long the primary attempt had been running when its
	// hedge launched.
	Scatter  *metrics.Histogram
	Merge    *metrics.Histogram
	Hedge    *metrics.Histogram
	Hedges   *metrics.Counter
	Retries  *metrics.Counter
	Downs    *metrics.Counter // shard outcomes that ended down or late
	Degraded *metrics.Counter
	// Pruned observes, per query, how many shards the bound merge
	// eliminated before verification.
	Pruned *metrics.IntHistogram
}

func newMetrics() *Metrics {
	return &Metrics{
		Scatter:  metrics.NewHistogram(nil),
		Merge:    metrics.NewHistogram(nil),
		Hedge:    metrics.NewHistogram(nil),
		Hedges:   new(metrics.Counter),
		Retries:  new(metrics.Counter),
		Downs:    new(metrics.Counter),
		Degraded: new(metrics.Counter),
		Pruned:   metrics.NewIntHistogram(metrics.PowerOfTwoBounds(64)),
	}
}

// Coordinator scatters MIO queries across N in-process shards and
// gathers the per-shard bounds and verified results back into a single
// answer. On a healthy cluster the answer is bitwise-identical to a
// single-engine run; when shards are slow, dead or flapping it degrades
// to a certified [LB, UB] interval instead of failing (DESIGN.md §15).
type Coordinator struct {
	cfg    Config
	part   *Partition
	shards []*Shard
	n      int // global object count
	m      *Metrics
}

// New partitions ds per cfg and builds the shard engines. opts is the
// per-shard engine template; when opts.Labels is set each shard gets
// its own in-memory store (shard-local ids make the global store
// meaningless), and cfg.Faults overrides opts.Faults so one registry
// drives both coordinator and engine points.
func New(ds *data.Dataset, opts core.Options, cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	part, err := BuildPartition(ds, cfg.Shards, cfg.MaxR)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:    cfg,
		part:   part,
		shards: make([]*Shard, cfg.Shards),
		n:      ds.N(),
		m:      newMetrics(),
	}
	for s := 0; s < cfg.Shards; s++ {
		local, primary := part.ShardDataset(ds, s)
		shOpts := opts
		if shOpts.Labels != nil {
			shOpts.Labels = labelstore.NewStore()
		}
		if cfg.Faults != nil {
			shOpts.Faults = cfg.Faults
		}
		global := part.Members[s]
		sh, err := newShard(s, cfg.Pool, local, global, primary, shOpts, cfg.BreakThreshold, cfg.BreakCooldown)
		if err != nil {
			return nil, err
		}
		c.shards[s] = sh
	}
	return c, nil
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return c.cfg.Shards }

// MaxR returns the replica horizon.
func (c *Coordinator) MaxR() float64 { return c.cfg.MaxR }

// Metrics returns the coordinator's metric set.
func (c *Coordinator) Metrics() *Metrics { return c.m }

// AdoptMetrics replaces the coordinator's metric set, letting a
// replacement coordinator (dataset swap) continue its predecessor's
// counters. Must be called before the coordinator serves queries.
func (c *Coordinator) AdoptMetrics(m *Metrics) {
	if m != nil {
		c.m = m
	}
}

// Health snapshots every shard's status, ordered by id.
func (c *Coordinator) Health() []Health {
	hs := make([]Health, 0, len(c.shards))
	for _, sh := range c.shards {
		hs = append(hs, sh.health())
	}
	sortHealth(hs)
	return hs
}

// attemptRes is one bound attempt's outcome.
type attemptRes struct {
	set *core.BoundSet
	eng *core.Engine
	err error
}

// shardBound is one shard's overall bound-phase outcome after retries
// and hedging.
type shardBound struct {
	sh       *Shard
	set      *core.BoundSet
	eng      *core.Engine
	attempts int
	hedged   bool
	err      error
}

// Query answers the MIO query (r, k) by scatter–gather. It returns the
// merged result, a per-shard report, and an error only when the query
// itself is invalid (or every shard is unreachable) — shard failures
// degrade the result instead (Result.Degraded + Interval).
func (c *Coordinator) Query(ctx context.Context, r float64, k int) (*core.Result, *Report, error) {
	if r <= 0 {
		return nil, nil, fmt.Errorf("shard: distance threshold must be positive, got %g", r)
	}
	if k < 1 {
		return nil, nil, fmt.Errorf("shard: k must be at least 1, got %d", k)
	}
	if r > c.cfg.MaxR {
		return nil, nil, fmt.Errorf("%w (r=%g, horizon=%g)", ErrBeyondHorizon, r, c.cfg.MaxR)
	}
	if err := c.cfg.Faults.Fire(fault.PointScatter); err != nil {
		return nil, nil, err
	}

	// Instant-death injection: fired per shard in id order before the
	// fan-out so chaos schedules (Rule.After) are deterministic.
	down := make([]error, len(c.shards))
	for i := range c.shards {
		down[i] = c.cfg.Faults.Fire(fault.PointShardDown)
	}

	// Scatter the bound phase.
	bounds := make([]shardBound, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		bounds[i] = shardBound{sh: sh}
		if down[i] != nil {
			bounds[i].err = down[i]
			sh.noteError(down[i])
			continue
		}
		wg.Add(1)
		go func(i int, sh *Shard) {
			defer wg.Done()
			bounds[i] = c.boundShard(ctx, sh, r, k)
		}(i, sh)
	}
	wg.Wait()
	tMerge := time.Now()

	if err := c.cfg.Faults.Fire(fault.PointMerge); err != nil {
		for i := range bounds {
			if bounds[i].eng != nil {
				bounds[i].sh.release(bounds[i].eng)
			}
		}
		return nil, nil, err
	}

	res, rep := c.gather(ctx, r, k, bounds)
	c.m.Merge.Observe(time.Since(tMerge))
	if res == nil {
		return nil, rep, ErrAllShardsDown
	}
	if res.Degraded {
		c.m.Degraded.Inc()
	}
	c.m.Pruned.Observe(int64(rep.Pruned))
	return res, rep, nil
}

// boundShard drives one shard's bound phase: breaker-gated attempts
// with per-attempt deadlines, jittered-backoff retries, and one hedged
// attempt if the first straggles. The first success wins; a reaper
// drains losing attempts and returns their engines to the pool.
func (c *Coordinator) boundShard(ctx context.Context, sh *Shard, r float64, k int) shardBound {
	out := shardBound{sh: sh}
	budget := 1 + c.cfg.Retries // sequential attempts; hedge is extra
	resCh := make(chan attemptRes, budget+1)
	outstanding := 0
	t0 := time.Now()

	launch := func() {
		out.attempts++
		outstanding++
		go func() { resCh <- c.attempt(ctx, sh, r, k) }()
	}
	launch()
	launched := 1

	var hedgeC <-chan time.Time
	if c.cfg.HedgeAfter > 0 {
		ht := time.NewTimer(c.cfg.HedgeAfter)
		defer ht.Stop()
		hedgeC = ht.C
	}
	var backoffT *time.Timer
	var backoffC <-chan time.Time
	defer func() {
		if backoffT != nil {
			backoffT.Stop()
		}
	}()

	finish := func(win attemptRes) shardBound {
		out.set, out.eng, out.err = win.set, win.eng, win.err
		if outstanding > 0 {
			// Losing attempts are still running; drain them off-path so
			// their engine slots return to the pool.
			go func(pending int) {
				for i := 0; i < pending; i++ {
					if late := <-resCh; late.eng != nil {
						sh.release(late.eng)
					}
				}
			}(outstanding)
		}
		return out
	}

	for {
		select {
		case res := <-resCh:
			outstanding--
			if res.err == nil {
				return finish(res)
			}
			out.err = res.err
			if outstanding > 0 {
				continue // the hedge may still win
			}
			if launched < budget && ctx.Err() == nil {
				c.m.Retries.Inc()
				launched++
				d := c.cfg.Backoff << (launched - 2)
				d += time.Duration(rand.Int63n(int64(d)/2 + 1))
				backoffT = time.NewTimer(d)
				backoffC = backoffT.C
				continue
			}
			return out
		case <-backoffC:
			backoffC = nil
			launch()
		case <-hedgeC:
			hedgeC = nil
			// The hedge rides outside the retry budget: one extra
			// concurrent attempt racing the straggler.
			if outstanding == 1 && !out.hedged && ctx.Err() == nil {
				out.hedged = true
				c.m.Hedges.Inc()
				c.m.Hedge.Observe(time.Since(t0))
				launch()
			}
		case <-ctx.Done():
			if out.err == nil {
				out.err = ctx.Err()
			}
			return finish(attemptRes{err: out.err})
		}
	}
}

// attempt runs one breaker-gated bound attempt on a pooled engine. A
// panic anywhere inside (fault injection or the engine itself)
// quarantines the engine — its slot is refilled from the shard
// template — and converts to an error so the retry loop stays alive.
func (c *Coordinator) attempt(ctx context.Context, sh *Shard, r float64, k int) (res attemptRes) {
	if retry, ok := sh.br.Allow(); !ok {
		// Refused, not failed: the breaker's own bookkeeping must not
		// see refusals or it would never half-open.
		return attemptRes{err: fmt.Errorf("shard %d: %w (retry in %s)", sh.id, ErrBreakerOpen, retry.Round(time.Millisecond))}
	}
	eng, err := sh.acquire(ctx)
	if err != nil {
		return attemptRes{err: err}
	}
	t0 := time.Now()
	defer func() {
		if p := recover(); p != nil {
			sh.quarantine(eng)
			sh.br.Failure()
			perr := fmt.Errorf("shard %d: panic: %v", sh.id, p)
			sh.noteError(perr)
			res = attemptRes{err: perr}
		}
	}()
	actx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	if err := c.cfg.Faults.Fire(fault.PointShardRun); err != nil {
		sh.release(eng)
		sh.br.Failure()
		sh.noteError(err)
		return attemptRes{err: err}
	}
	set, err := eng.Bound(actx, r, k, sh.primary)
	c.m.Scatter.Observe(time.Since(t0))
	if err != nil {
		sh.release(eng)
		sh.br.Failure()
		sh.noteError(err)
		return attemptRes{err: err}
	}
	sh.br.Success()
	sh.recordEnvelope(r, set.MaxUB())
	return attemptRes{set: set, eng: eng}
}

// gather merges the per-shard bound outcomes: computes the global
// verification floor, prunes shards whose upper bound cannot reach it,
// completes the survivors concurrently, and assembles either the exact
// merged top-k or a certified degraded interval. Returns nil when no
// shard produced bounds.
func (c *Coordinator) gather(ctx context.Context, r float64, k int, bounds []shardBound) (*core.Result, *Report) {
	rep := &Report{Shards: len(bounds), PerShard: make([]ShardRun, len(bounds))}
	type boundInfo struct {
		tops  []core.Scored
		maxUB int
	}
	infos := make([]boundInfo, len(bounds))
	var tops [][]core.Scored
	for i := range bounds {
		b := &bounds[i]
		run := &rep.PerShard[i]
		run.ID = b.sh.id
		run.Attempts = b.attempts
		run.Hedged = b.hedged
		retries := b.attempts - 1
		if b.hedged {
			retries-- // the hedge launch is not a retry
		}
		rep.Retries += maxInt(0, retries)
		if b.hedged {
			rep.Hedges++
		}
		if b.set == nil {
			run.State = StateDown
			if b.err != nil {
				run.Err = b.err.Error()
			}
			continue
		}
		infos[i] = boundInfo{tops: b.set.TopLBs(), maxUB: b.set.MaxUB()}
		run.MaxUB = infos[i].maxUB
		if len(infos[i].tops) > 0 {
			run.BestLB = infos[i].tops[0].Score
		}
		tops = append(tops, infos[i].tops)
	}
	if len(tops) == 0 {
		rep.Failed = len(bounds)
		rep.Degraded = true
		return nil, rep
	}

	// The floor is sound globally even with shards down: it only
	// asserts that k objects score at least this much, which the
	// surviving shards' bounds already prove.
	floor := mergeFloor(tops, k)
	rep.Floor = floor

	// Prune, then complete the survivors concurrently.
	var wg sync.WaitGroup
	results := make([]*core.Result, len(bounds))
	errs := make([]error, len(bounds))
	for i := range bounds {
		b := &bounds[i]
		if b.set == nil {
			continue
		}
		if infos[i].maxUB < floor {
			rep.PerShard[i].State = StatePruned
			rep.Pruned++
			b.sh.release(b.eng)
			continue
		}
		wg.Add(1)
		go func(i int, b *shardBound) {
			defer wg.Done()
			results[i], errs[i] = c.complete(ctx, b, floor)
		}(i, b)
	}
	wg.Wait()

	// Assemble: exact lists from completed shards, certified bounds
	// from the rest.
	var lists [][]core.Scored
	var stats []core.PhaseStats
	degraded := false
	lbBest := core.Scored{Obj: -1}
	ub := 0
	bumpUB := func(v int) {
		if v > ub {
			ub = v
		}
	}
	for i := range bounds {
		b := &bounds[i]
		run := &rep.PerShard[i]
		switch {
		case run.State == StatePruned:
			// Cannot hold an answer, but its bound-phase work counts.
			stats = append(stats, b.set.Stats())
			bumpUB(infos[i].maxUB)
		case b.set == nil:
			degraded = true
			rep.Failed++
			c.m.Downs.Inc()
			if env, ok := b.sh.envelopeUB(r); ok {
				bumpUB(env)
			} else {
				bumpUB(c.n - 1) // trivial: no object interacts with more than n-1 others
			}
		case errs[i] != nil:
			run.State = StateLate
			run.Err = errs[i].Error()
			degraded = true
			rep.Failed++
			c.m.Downs.Inc()
			b.sh.noteError(errs[i])
			// Its bounds are still certified: best primary scores in
			// [BestLB, MaxUB].
			bumpUB(infos[i].maxUB)
			if len(infos[i].tops) > 0 {
				if cand := mapLocalBest(b.sh, infos[i].tops[0]); better(cand, lbBest) {
					lbBest = cand
				}
			}
		default:
			run.State = StateOK
			res := results[i]
			stats = append(stats, res.Stats)
			list := toGlobal(b.sh.global, res.TopK)
			lists = append(lists, list)
			if len(list) > 0 {
				bumpUB(list[0].Score)
				if better(list[0], lbBest) {
					lbBest = list[0]
				}
			}
		}
	}

	merged := mergeTopK(lists, k)
	out := &core.Result{TopK: merged, Stats: mergeStats(stats)}
	if !degraded {
		if len(merged) > 0 {
			out.Best = merged[0]
		}
		return out, rep
	}

	rep.Degraded = true
	out.Degraded = true
	// lbBest is an object certified to score ≥ lbBest.Score; ub bounds
	// every object anywhere (OK shards by their exact maxima, late
	// shards by MaxUB, down shards by their envelope). The true global
	// maximum therefore lies in [lbBest.Score, ub].
	out.Best = lbBest
	out.Interval = &core.Interval{LB: lbBest.Score, UB: ub}
	if len(merged) == 0 && lbBest.Obj >= 0 {
		out.TopK = []core.Scored{lbBest}
	}
	return out, rep
}

// complete runs a shard's verification against the merged floor with
// the same deadline, panic-quarantine and error discipline as the
// bound attempts. It always returns the engine to the pool.
func (c *Coordinator) complete(ctx context.Context, b *shardBound, floor int) (res *core.Result, err error) {
	sh := b.sh
	eng := b.eng
	released := false
	defer func() {
		if p := recover(); p != nil {
			sh.quarantine(eng)
			sh.br.Failure()
			err = fmt.Errorf("shard %d: panic: %v", sh.id, p)
			res = nil
			return
		}
		if !released {
			sh.release(eng)
		}
	}()
	actx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	r, cerr := b.set.Complete(actx, floor)
	sh.release(eng)
	released = true
	if cerr != nil {
		sh.br.Failure()
		return nil, cerr
	}
	sh.br.Success()
	return r, nil
}

// better orders degraded best-candidates canonically.
func better(a, b core.Scored) bool {
	if b.Obj < 0 {
		return true
	}
	return canonicalLess(a, b)
}

// mapLocalBest maps a shard-local best candidate to its global id.
func mapLocalBest(sh *Shard, s core.Scored) core.Scored {
	return core.Scored{Obj: int(sh.global[s.Obj]), Score: s.Score}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
