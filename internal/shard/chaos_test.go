package shard

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mio/internal/core"
	"mio/internal/fault"
	"mio/internal/server/breaker"
)

// waitSlots fails the test unless every engine slot of sh returns to
// the pool — the no-slot-leak invariant after hedges, retries, panics
// and cancelled attempts (losers drain asynchronously).
func waitSlots(t *testing.T, sh *Shard) {
	t.Helper()
	lb, ok := sh.backend.(*localBackend)
	if !ok {
		t.Fatalf("shard %d: backend is %T, not a local engine pool", sh.id, sh.backend)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(lb.slots) != cap(lb.slots) {
		if time.Now().After(deadline) {
			t.Fatalf("shard %d: %d/%d engine slots returned", sh.id, len(lb.slots), cap(lb.slots))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func chaosCoordinator(t *testing.T, reg *fault.Registry, cfg Config) *Coordinator {
	t.Helper()
	ds := uniformDS(120, 17)
	cfg.Faults = reg
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	if cfg.MaxR == 0 {
		cfg.MaxR = 8
	}
	c, err := New(ds, core.Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestChaosShardDown kills one shard before the scatter: the query
// must still answer 200-style — degraded, with a certified interval
// containing the oracle score — and recover to exact parity once the
// fault clears.
func TestChaosShardDown(t *testing.T) {
	reg := fault.New(1)
	c := chaosCoordinator(t, reg, Config{})
	ds := uniformDS(120, 17)
	want := oracle(t, ds, 4, 1)

	// After=3 skips shards 0–2, so exactly shard 3 dies this query.
	reg.Arm(fault.Rule{Point: fault.PointShardDown, Kind: fault.KindError, P: 1, After: 3})
	res, rep, err := c.Query(context.Background(), 4, 1)
	if err != nil {
		t.Fatalf("shard death must degrade, not fail: %v", err)
	}
	if !res.Degraded || !rep.Degraded || rep.Failed != 1 {
		t.Fatalf("want one degraded shard, got %+v", rep)
	}
	if rep.PerShard[3].State != StateDown {
		t.Fatalf("shard 3 state %q", rep.PerShard[3].State)
	}
	if res.Interval == nil ||
		res.Interval.LB > want.Best.Score || want.Best.Score > res.Interval.UB {
		t.Fatalf("interval %+v does not contain oracle score %d", res.Interval, want.Best.Score)
	}
	if res.Best.Score != res.Interval.LB {
		t.Fatalf("degraded Best.Score %d ≠ interval LB %d", res.Best.Score, res.Interval.LB)
	}

	reg.Clear(fault.PointShardDown)
	res, rep, err = c.Query(context.Background(), 4, 1)
	if err != nil || res.Degraded {
		t.Fatalf("did not recover: err=%v degraded=%v", err, res != nil && res.Degraded)
	}
	if res.Best != want.Best {
		t.Fatalf("post-recovery best %v, oracle %v", res.Best, want.Best)
	}
	for _, sh := range c.shards {
		waitSlots(t, sh)
	}
}

// TestChaosEnvelopeTightensInterval: a healthy query teaches each
// shard its upper-bound envelope; when the shard later dies, the
// degraded interval uses that envelope instead of the trivial n−1
// bound — and still contains the truth.
func TestChaosEnvelopeTightensInterval(t *testing.T) {
	reg := fault.New(1)
	c := chaosCoordinator(t, reg, Config{})
	ds := uniformDS(120, 17)
	want := oracle(t, ds, 4, 1)

	if _, _, err := c.Query(context.Background(), 4, 1); err != nil {
		t.Fatal(err)
	}
	reg.Arm(fault.Rule{Point: fault.PointShardDown, Kind: fault.KindError, P: 1, After: 3})
	res, _, err := c.Query(context.Background(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interval == nil || res.Interval.UB >= c.n-1 {
		t.Fatalf("envelope did not tighten the interval: %+v (n=%d)", res.Interval, c.n)
	}
	if res.Interval.LB > want.Best.Score || want.Best.Score > res.Interval.UB {
		t.Fatalf("tightened interval %+v excludes oracle score %d", res.Interval, want.Best.Score)
	}
}

// TestChaosPanicQuarantine arms a panic in every bound attempt: the
// query must fail closed (all shards down) without crashing the
// process or leaking engine slots, and the next query — faults
// cleared, breakers cooled — must answer exactly.
func TestChaosPanicQuarantine(t *testing.T) {
	reg := fault.New(1)
	c := chaosCoordinator(t, reg, Config{
		BreakThreshold: 3,
		BreakCooldown:  30 * time.Millisecond,
		HedgeAfter:     -1,
	})
	ds := uniformDS(120, 17)
	want := oracle(t, ds, 4, 3)

	reg.Arm(fault.Rule{Point: fault.PointShardRun, Kind: fault.KindPanic, P: 1})
	res, rep, err := c.Query(context.Background(), 4, 3)
	if !errors.Is(err, ErrAllShardsDown) {
		t.Fatalf("every shard panicking returned (%v, %v)", res, err)
	}
	if rep.Failed != 4 || rep.Retries == 0 {
		t.Fatalf("want 4 failed shards with retries, got %+v", rep)
	}
	for _, run := range rep.PerShard {
		if run.State != StateDown || !strings.Contains(run.Err, "panic") {
			t.Fatalf("shard %d: state %q err %q", run.ID, run.State, run.Err)
		}
	}
	for _, sh := range c.shards {
		waitSlots(t, sh) // quarantine must refill every slot it drained
	}

	reg.Clear(fault.PointShardRun)
	time.Sleep(50 * time.Millisecond) // let breakers cool down
	res, rep, err = c.Query(context.Background(), 4, 3)
	if err != nil || res.Degraded {
		t.Fatalf("did not recover from panics: err=%v rep=%+v", err, rep)
	}
	if !sameTopK(res.TopK, want.TopK) {
		t.Fatalf("post-quarantine answer %v, oracle %v", res.TopK, want.TopK)
	}
}

// TestChaosBreakerTripAndRecover: persistent shard errors must trip
// the per-shard breakers (so later queries stop burning attempts on a
// dead shard), and a half-open probe must close them again once the
// shard heals.
func TestChaosBreakerTripAndRecover(t *testing.T) {
	reg := fault.New(1)
	c := chaosCoordinator(t, reg, Config{
		Retries:        -1, // one attempt per query: breaker math is exact
		HedgeAfter:     -1,
		BreakThreshold: 2,
		BreakCooldown:  40 * time.Millisecond,
	})
	ds := uniformDS(120, 17)
	want := oracle(t, ds, 4, 1)

	reg.Arm(fault.Rule{Point: fault.PointShardRun, Kind: fault.KindError, P: 1})
	for q := 0; q < 2; q++ {
		if _, _, err := c.Query(context.Background(), 4, 1); !errors.Is(err, ErrAllShardsDown) {
			t.Fatalf("query %d: %v", q, err)
		}
	}
	for _, sh := range c.shards {
		if sh.br.State() != breaker.Open {
			t.Fatalf("shard %d breaker %v after %d failures", sh.id, sh.br.State(), 2)
		}
	}

	// With breakers open, attempts are refused before any engine runs.
	before := reg.Fired(fault.PointShardRun)
	_, rep, err := c.Query(context.Background(), 4, 1)
	if !errors.Is(err, ErrAllShardsDown) {
		t.Fatalf("open breakers: %v", err)
	}
	if got := reg.Fired(fault.PointShardRun); got != before {
		t.Fatalf("open breakers still ran engines: %d fires → %d", before, got)
	}
	for _, run := range rep.PerShard {
		if !strings.Contains(run.Err, "breaker open") {
			t.Fatalf("shard %d err %q, want breaker refusal", run.ID, run.Err)
		}
	}

	reg.Clear(fault.PointShardRun)
	time.Sleep(60 * time.Millisecond)
	res, rep, err := c.Query(context.Background(), 4, 1)
	if err != nil || res.Degraded {
		t.Fatalf("half-open probe did not recover: err=%v rep=%+v", err, rep)
	}
	if res.Best != want.Best {
		t.Fatalf("post-recovery best %v, oracle %v", res.Best, want.Best)
	}
	for _, sh := range c.shards {
		if sh.br.State() != breaker.Closed {
			t.Fatalf("shard %d breaker %v after successful probe", sh.id, sh.br.State())
		}
		waitSlots(t, sh)
	}
}

// TestChaosHedgedScatter: every first attempt straggles past the hedge
// trigger; the answer must stay exact, hedges must be recorded, and
// the losing attempts must return their engines.
func TestChaosHedgedScatter(t *testing.T) {
	reg := fault.New(1)
	c := chaosCoordinator(t, reg, Config{
		Timeout:    10 * time.Second,
		HedgeAfter: 20 * time.Millisecond,
	})
	ds := uniformDS(120, 17)
	want := oracle(t, ds, 4, 1)

	reg.Arm(fault.Rule{Point: fault.PointShardRun, Kind: fault.KindLatency, P: 1, Delay: 150 * time.Millisecond})
	res, rep, err := c.Query(context.Background(), 4, 1)
	if err != nil || res.Degraded {
		t.Fatalf("hedged run failed: err=%v rep=%+v", err, rep)
	}
	if rep.Hedges == 0 {
		t.Fatalf("stragglers did not hedge: %+v", rep)
	}
	if res.Best != want.Best {
		t.Fatalf("hedged best %v, oracle %v", res.Best, want.Best)
	}
	for _, sh := range c.shards {
		waitSlots(t, sh)
	}
}

// TestChaosLateVerification: bounds arrive but every verification
// fails — the coordinator must fall back to the certified bound
// interval rather than erroring.
func TestChaosLateVerification(t *testing.T) {
	reg := fault.New(1)
	c := chaosCoordinator(t, reg, Config{HedgeAfter: -1})
	ds := uniformDS(120, 17)
	want := oracle(t, ds, 4, 1)

	reg.Arm(fault.Rule{Point: fault.PointVerification, Kind: fault.KindError, P: 1})
	res, rep, err := c.Query(context.Background(), 4, 1)
	if err != nil {
		t.Fatalf("late shards must degrade, not fail: %v", err)
	}
	if !res.Degraded || res.Interval == nil {
		t.Fatalf("want degraded interval, got %+v / %+v", res, rep)
	}
	late := 0
	for _, run := range rep.PerShard {
		if run.State == StateLate {
			late++
		}
	}
	if late == 0 {
		t.Fatalf("no shard reported late: %+v", rep)
	}
	if res.Interval.LB > want.Best.Score || want.Best.Score > res.Interval.UB {
		t.Fatalf("interval %+v excludes oracle score %d", res.Interval, want.Best.Score)
	}
	for _, sh := range c.shards {
		waitSlots(t, sh)
	}
}

// TestChaosScatterMergePoints: faults at the coordinator's own points
// fail the query outright (nothing to certify) without leaking slots.
func TestChaosScatterMergePoints(t *testing.T) {
	reg := fault.New(1)
	c := chaosCoordinator(t, reg, Config{})

	reg.Arm(fault.Rule{Point: fault.PointScatter, Kind: fault.KindError, P: 1})
	if _, _, err := c.Query(context.Background(), 4, 1); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("scatter fault: %v", err)
	}
	reg.Clear(fault.PointScatter)

	reg.Arm(fault.Rule{Point: fault.PointMerge, Kind: fault.KindError, P: 1})
	if _, _, err := c.Query(context.Background(), 4, 1); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("merge fault: %v", err)
	}
	for _, sh := range c.shards {
		waitSlots(t, sh)
	}
}

// TestChaosCancelMidScatter: caller cancellation mid-scatter surfaces
// promptly and returns every engine.
func TestChaosCancelMidScatter(t *testing.T) {
	reg := fault.New(1)
	c := chaosCoordinator(t, reg, Config{HedgeAfter: -1})
	reg.Arm(fault.Rule{Point: fault.PointShardRun, Kind: fault.KindLatency, P: 1, Delay: 100 * time.Millisecond})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, _, err := c.Query(ctx, 4, 1)
	if err == nil {
		t.Fatal("cancelled scatter returned a result")
	}
	for _, sh := range c.shards {
		waitSlots(t, sh)
	}
}
