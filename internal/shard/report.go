package shard

// Shard states reported per query.
const (
	// StateOK: bounds and verification both completed.
	StateOK = "ok"
	// StatePruned: bounds completed and the shard's MaxUB fell below
	// the merged floor, so verification was skipped entirely.
	StatePruned = "pruned"
	// StateLate: bounds completed but verification failed or timed out;
	// the shard contributes its certified [best LB, MaxUB] instead of
	// exact scores.
	StateLate = "late"
	// StateDown: the bound phase never succeeded (dead, past deadline,
	// breaker open, or killed by fault injection); only the last-known
	// envelope speaks for the shard.
	StateDown = "down"
)

// ShardRun is one shard's outcome within a single scattered query.
type ShardRun struct {
	ID    int    `json:"id"`
	State string `json:"state"`
	// Attempts counts bound-phase engine attempts (1 on the happy
	// path; retries and the hedge add to it).
	Attempts int  `json:"attempts"`
	Hedged   bool `json:"hedged,omitempty"`
	// BestLB/MaxUB are the shard's certified score bounds over its
	// primaries (meaningless when State is "down").
	BestLB int    `json:"best_lb"`
	MaxUB  int    `json:"max_ub"`
	Err    string `json:"err,omitempty"`
}

// Report summarises one scattered query for the response envelope and
// tests: how many shards answered, were pruned by the bound merge, or
// degraded the answer.
type Report struct {
	Shards  int `json:"shards"`
	Pruned  int `json:"pruned"`
	Failed  int `json:"failed"` // down + late
	Hedges  int `json:"hedges"`
	Retries int `json:"retries"`
	// Floor is the merged verification threshold (k-th highest of the
	// surviving shards' lower bounds).
	Floor    int        `json:"floor"`
	Degraded bool       `json:"degraded"`
	PerShard []ShardRun `json:"per_shard"`
}
