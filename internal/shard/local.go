package shard

import (
	"context"
	"fmt"

	"mio/internal/core"
	"mio/internal/data"
	"mio/internal/fault"
)

// localBackend is the in-process shard transport: a small engine pool
// with panic quarantine over the shard's local dataset. It is the PR 8
// execution path, unchanged in behaviour — the engine runs, quarantine
// discipline and local→global mapping all live here now so the
// coordinator can drive remote workers through the same interface.
type localBackend struct {
	id      int
	ds      *data.Dataset
	global  []int32 // local id → global id
	primary []bool
	opts    core.Options // engine template (per-shard label store)
	faults  *fault.Registry

	slots chan *core.Engine
}

func newLocalBackend(id, pool int, ds *data.Dataset, global []int32, primary []bool, opts core.Options) (*localBackend, error) {
	lb := &localBackend{
		id:      id,
		ds:      ds,
		global:  global,
		primary: primary,
		opts:    opts,
		faults:  opts.Faults,
		slots:   make(chan *core.Engine, pool),
	}
	for i := 0; i < pool; i++ {
		e, err := core.NewEngine(ds, opts)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", id, err)
		}
		lb.slots <- e
	}
	return lb, nil
}

// acquire takes an engine slot, waiting on ctx.
func (lb *localBackend) acquire(ctx context.Context) (*core.Engine, error) {
	select {
	case e := <-lb.slots:
		return e, nil
	default:
	}
	select {
	case e := <-lb.slots:
		return e, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("shard %d: %w: %w", lb.id, errNoSlot, ctx.Err())
	}
}

// release returns an engine to the pool.
func (lb *localBackend) release(e *core.Engine) { lb.slots <- e }

// quarantine discards a panicked engine and refills its slot with a
// fresh one built from the shard's template — the same refill
// discipline the server pool uses. If the rebuild fails the suspect
// engine goes back: a possibly-tainted engine beats a leaked slot.
func (lb *localBackend) quarantine(old *core.Engine) {
	e, err := core.NewEngine(lb.ds, lb.opts)
	if err != nil {
		lb.slots <- old
		return
	}
	lb.slots <- e
}

// Bound acquires an engine and runs the bound phase restricted to the
// shard's primaries. A panic anywhere inside (fault injection or the
// engine itself) quarantines the engine — its slot is refilled from
// the template — and converts to an error so the coordinator's retry
// loop stays alive.
func (lb *localBackend) Bound(ctx context.Context, r float64, k int) (b Bounds, err error) {
	eng, aerr := lb.acquire(ctx)
	if aerr != nil {
		return nil, aerr
	}
	defer func() {
		if p := recover(); p != nil {
			lb.quarantine(eng)
			b, err = nil, fmt.Errorf("shard %d: panic: %v", lb.id, p)
		}
	}()
	if ferr := lb.faults.Fire(fault.PointShardRun); ferr != nil {
		lb.release(eng)
		return nil, ferr
	}
	set, rerr := eng.Bound(ctx, r, k, lb.primary)
	if rerr != nil {
		lb.release(eng)
		return nil, rerr
	}
	return &localBounds{lb: lb, set: set, eng: eng}, nil
}

func (lb *localBackend) Info() BackendInfo {
	prim := 0
	for _, p := range lb.primary {
		if p {
			prim++
		}
	}
	return BackendInfo{
		Objects:   len(lb.global),
		Primaries: prim,
		Replicas:  len(lb.global) - prim,
	}
}

func (lb *localBackend) Close() {}

// localBounds is a paused in-process query: the BoundSet plus the
// engine it is tied to.
type localBounds struct {
	lb  *localBackend
	set *core.BoundSet
	eng *core.Engine
}

// TopLBs maps the shard-local canonical top LBs to global ids. The
// mapping is order-preserving: Members[s] is ascending, so local-id
// ties break exactly as global-id ties would.
func (b *localBounds) TopLBs() []core.Scored { return toGlobal(b.lb.global, b.set.TopLBs()) }

func (b *localBounds) MaxUB() int { return b.set.MaxUB() }

func (b *localBounds) Stats() core.PhaseStats { return b.set.Stats() }

func (b *localBounds) Release() { b.lb.release(b.eng) }

// Complete resumes verification with the same panic-quarantine
// discipline as Bound and always returns the engine to the pool.
func (b *localBounds) Complete(ctx context.Context, floor int) (res *core.Result, err error) {
	released := false
	defer func() {
		if p := recover(); p != nil {
			b.lb.quarantine(b.eng)
			res, err = nil, fmt.Errorf("shard %d: panic: %v", b.lb.id, p)
			return
		}
		if !released {
			b.lb.release(b.eng)
		}
	}()
	r, cerr := b.set.Complete(ctx, floor)
	b.lb.release(b.eng)
	released = true
	if cerr != nil {
		return nil, cerr
	}
	r.TopK = toGlobal(b.lb.global, r.TopK)
	if len(r.TopK) > 0 {
		r.Best = r.TopK[0]
	}
	return r, nil
}
