package shard

import (
	"testing"

	"mio/internal/data"
	"mio/internal/geom"
)

func uniformDS(n int, seed int64) *data.Dataset {
	return data.GenUniform(data.UniformConfig{N: n, M: 6, FieldSize: 40, Spread: 5, Seed: seed})
}

// TestPartitionInvariants checks the structural contract every other
// guarantee rests on: each object has exactly one primary shard, the
// member lists are sorted and consistent with the primary assignment,
// and the halo rule replicates every object that could interact with a
// shard's primaries at any radius up to MaxR.
func TestPartitionInvariants(t *testing.T) {
	ds := uniformDS(100, 3)
	n := ds.N()
	mbrs := make([]geom.Box, n)
	for i := range ds.Objects {
		mbrs[i] = geom.Bound(ds.Objects[i].Pts)
	}
	const maxR = 8.0
	for _, shards := range []int{2, 3, 4, 5, 7} {
		p, err := BuildPartition(ds, shards, maxR)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		primaries := 0
		for s := 0; s < shards; s++ {
			if len(p.Members[s]) == 0 {
				t.Fatalf("shards=%d: shard %d empty", shards, s)
			}
			for l, g := range p.Members[s] {
				if l > 0 && p.Members[s][l-1] >= g {
					t.Fatalf("shards=%d: shard %d members not strictly ascending", shards, s)
				}
				if want := int(p.Primary[g]) == s; p.IsPrimary[s][l] != want {
					t.Fatalf("shards=%d: shard %d member %d primary flag %v, Primary says %v",
						shards, s, g, p.IsPrimary[s][l], want)
				}
				if p.IsPrimary[s][l] {
					primaries++
				}
			}
		}
		if primaries != n {
			t.Fatalf("shards=%d: %d primaries for %d objects", shards, primaries, n)
		}

		// Halo completeness: any object whose MBR is within maxR of
		// another object's MBR must be present in that object's primary
		// shard — otherwise a cross-shard interaction would go unscored.
		member := make([]map[int32]bool, shards)
		for s := range member {
			member[s] = make(map[int32]bool, len(p.Members[s]))
			for _, g := range p.Members[s] {
				member[s][g] = true
			}
		}
		for g := 0; g < n; g++ {
			for h := 0; h < n; h++ {
				if g == h {
					continue
				}
				if mbrs[int32(h)].Dist2ToBox(mbrs[g]) <= maxR*maxR {
					if s := p.Primary[g]; !member[s][int32(h)] {
						t.Fatalf("shards=%d: object %d within %g of %d but absent from shard %d",
							shards, h, maxR, g, s)
					}
				}
			}
		}
	}
}

func TestPartitionRejects(t *testing.T) {
	ds := uniformDS(10, 1)
	if _, err := BuildPartition(ds, 1, 5); err == nil {
		t.Fatal("accepted 1 shard")
	}
	if _, err := BuildPartition(ds, 11, 5); err == nil {
		t.Fatal("accepted more shards than objects")
	}
	if _, err := BuildPartition(ds, 2, 0); err == nil {
		t.Fatal("accepted zero replica horizon")
	}
}

func TestShardDataset(t *testing.T) {
	ds := uniformDS(60, 9)
	p, err := BuildPartition(ds, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < p.Shards; s++ {
		local, primary := p.ShardDataset(ds, s)
		if len(primary) != local.N() {
			t.Fatalf("shard %d: mask length %d vs %d objects", s, len(primary), local.N())
		}
		if err := local.Validate(); err != nil {
			t.Fatalf("shard %d: invalid local dataset: %v", s, err)
		}
		for l, g := range p.Members[s] {
			if local.Objects[l].ID != l {
				t.Fatalf("shard %d: local object %d has id %d", s, l, local.Objects[l].ID)
			}
			if &local.Objects[l].Pts[0] != &ds.Objects[g].Pts[0] {
				t.Fatalf("shard %d: local object %d copied its points", s, l)
			}
		}
		if got := p.Primaries(s); got == 0 {
			t.Fatalf("shard %d: no primaries", s)
		}
	}
}
