// Package fault is a deterministic, seed-driven fault-injection
// registry for chaos-testing the MIO serving stack. Code under test
// declares named injection points — fixed strings like
// "engine.verification" or "swap.load" — and calls Registry.Fire at
// each one; a registry armed with rules makes some of those calls
// misbehave: sleep (a latency spike), return an error, or panic, each
// with a configured probability drawn from a seeded PRNG.
//
// The registry is nil-safe and effectively free when disarmed: Fire on
// a nil or rule-less registry is a pointer check plus one atomic load,
// so injection points can stay compiled into production paths.
// Determinism: a given seed yields the same accept/reject sequence for
// a given sequence of Fire calls. Concurrent callers serialise on an
// internal mutex, so cross-goroutine interleaving (not the per-call
// draws) is the only source of run-to-run variation.
//
// Rules are configured programmatically (Arm) or parsed from the
// cmd/miosrv -faults flag syntax (Parse):
//
//	seed=42;engine.verification=panic:0.01;swap.load=error:0.5;server.run=latency:0.1:5ms
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical injection points of the miosrv stack. The string is the
// registry key, so flags, tests and metrics all name the same spots;
// packages fire them via these constants, never literals.
const (
	// PointRequest fires at the top of every /v1 request.
	PointRequest = "server.request"
	// PointAcquire fires while a request acquires an engine slot.
	PointAcquire = "server.acquire"
	// PointRun fires while an engine slot is held, before the run.
	PointRun = "server.run"
	// PointSwapLoad fires before a dataset swap reads the file.
	PointSwapLoad = "swap.load"
	// PointSwapBuild fires before a swap builds its engine pool.
	PointSwapBuild = "swap.build"
	// PointLabelInput .. PointVerification fire at the entry of the
	// corresponding §III/§IV pipeline phase inside the engine.
	PointLabelInput    = "engine.label_input"
	PointGridMapping   = "engine.grid_mapping"
	PointLowerBounding = "engine.lower_bounding"
	PointUpperBounding = "engine.upper_bounding"
	PointVerification  = "engine.verification"

	// PointEpochClose fires when a batch epoch is sealed, before its
	// groups dispatch; an error here fails every query gathered into
	// the epoch.
	PointEpochClose = "batch.epoch_close"
	// PointGroupBuild fires at the start of one shared-⌈r⌉ group run,
	// before the group's shared label input and grid build.
	PointGroupBuild = "batch.group_build"
	// PointCellWalk fires before a group's shared cell walk — the pass
	// that freezes the union of every member's candidate cells exactly
	// once.
	PointCellWalk = "batch.cell_walk"

	// PointScatter fires in the coordinator before a query fans out to
	// its shards; an error here fails the query before any shard runs.
	PointScatter = "shard.scatter"
	// PointShardDown fires once per shard (in shard-id order, before
	// the fan-out); an error marks that shard dead for this query — the
	// instant-death simulation, no attempt, no retry.
	PointShardDown = "shard.down"
	// PointShardRun fires inside each per-shard bound attempt while the
	// shard's engine is held: latency rules make stragglers (exercising
	// hedged scatter), errors drive retries and the shard breaker, and
	// panics exercise the shard-scoped quarantine.
	PointShardRun = "shard.run"
	// PointMerge fires in the coordinator after the gather, before
	// per-shard results merge into the global answer.
	PointMerge = "shard.merge"

	// PointNetSend fires in the remote shard client before a request
	// leaves for a worker; an error is a send failure (connection
	// refused, partition) before any bytes hit the wire.
	PointNetSend = "shard.net_send"
	// PointNetRecv fires in the remote shard client after a response
	// body has been read, before it is validated; an error models the
	// connection dying mid-response.
	PointNetRecv = "shard.net_recv"
	// PointNetCorrupt fires in the shard worker as each response
	// envelope is written; an error makes the worker flip a byte of the
	// sealed envelope, so the client's checksum validation must catch
	// it — corrupt bytes on the wire, deterministically.
	PointNetCorrupt = "shard.net_corrupt"
	// PointStaleGen fires in the shard worker as each response is
	// stamped; an error makes the worker stamp a wrong dataset
	// generation, simulating a worker restarted onto a different
	// dataset than the coordinator's.
	PointStaleGen = "shard.stale_gen"

	// PointIOWrite .. PointIODirSync fire inside internal/durable's
	// atomic file commit, in commit order: while the payload is written
	// to the *.tmp file, before the file Sync, before the rename onto
	// the final name, and before the parent-directory sync. Together
	// with KindShortWrite and KindCrash they model every place a real
	// crash can interrupt a commit.
	PointIOWrite   = "io.write"
	PointIOSync    = "io.sync"
	PointIORename  = "io.rename"
	PointIODirSync = "io.dirsync"
)

// Kind is the misbehaviour a rule injects.
type Kind uint8

const (
	// KindLatency sleeps for the rule's Delay.
	KindLatency Kind = iota
	// KindError makes Fire return an error wrapping ErrInjected.
	KindError
	// KindPanic panics with a Panic value naming the point.
	KindPanic
	// KindShortWrite makes Fire return an error wrapping ErrShortWrite:
	// IO code interprets it as "the process died mid-write", persisting
	// only a prefix of the payload and abandoning the commit.
	KindShortWrite
	// KindCrash makes Fire return an error wrapping ErrCrash: IO code
	// interprets it as "the process died right here", returning without
	// any cleanup so on-disk state is exactly what a kill would leave.
	KindCrash
)

func (k Kind) String() string {
	switch k {
	case KindLatency:
		return "latency"
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindShortWrite:
		return "shortwrite"
	case KindCrash:
		return "crash"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ErrInjected is the sentinel wrapped by every injected error, so
// callers and tests can tell injected failures from organic ones with
// errors.Is.
var ErrInjected = errors.New("fault: injected error")

// ErrShortWrite marks a KindShortWrite injection (also wraps
// ErrInjected): the commit must behave as if the process died after
// writing only part of the payload.
var ErrShortWrite = errors.New("fault: injected short write")

// ErrCrash marks a KindCrash injection (also wraps ErrInjected): the
// commit must stop dead, leaving on-disk state untouched — no cleanup,
// no rollback — exactly as a kill at that instant would.
var ErrCrash = errors.New("fault: injected crash")

// Panic is the value a KindPanic rule panics with; recovery layers can
// type-assert it to distinguish injected panics from real bugs.
type Panic struct{ Point string }

func (p Panic) String() string { return "fault: injected panic at " + p.Point }

// Rule arms one injection point with one misbehaviour.
type Rule struct {
	// Point is the injection-point name the rule applies to.
	Point string
	// Kind selects the misbehaviour.
	Kind Kind
	// P is the per-Fire firing probability in [0, 1].
	P float64
	// Delay is the sleep for KindLatency rules.
	Delay time.Duration
	// After makes the rule ineligible for its first After draws: with
	// P=1 the rule fires deterministically on exactly the (After+1)-th
	// Fire at its point. Crash-matrix tests use this to walk one
	// injected crash through every commit step of a multi-file
	// operation.
	After uint64

	// seen counts draws made against this rule (eligible or not).
	seen uint64
}

func (r Rule) String() string {
	s := fmt.Sprintf("%s=%s:%g", r.Point, r.Kind, r.P)
	if r.Kind == KindLatency {
		s += ":" + r.Delay.String()
	}
	return s
}

// Registry holds the armed rules and the seeded PRNG. The zero value
// and nil are both valid, permanently-disarmed registries.
type Registry struct {
	armed atomic.Bool

	mu    sync.Mutex
	rng   *rand.Rand
	rules map[string][]Rule
	fired map[string]uint64
}

// New returns a registry whose probability draws derive from seed.
func New(seed int64) *Registry {
	return &Registry{
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[string][]Rule),
		fired: make(map[string]uint64),
	}
}

// Arm adds a rule. Multiple rules may share a point; each draws
// independently on every Fire.
func (r *Registry) Arm(rule Rule) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rules[rule.Point] = append(r.rules[rule.Point], rule)
	r.armed.Store(true)
}

// Clear removes every rule armed at point, leaving its fired count.
func (r *Registry) Clear(point string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.rules, point)
	r.armed.Store(len(r.rules) > 0)
}

// Fire consults the rules for point. It may sleep (latency rule),
// return a non-nil error (error rule) or panic with a Panic value
// (panic rule); usually it does nothing and returns nil. Safe on a nil
// registry.
func (r *Registry) Fire(point string) error {
	if r == nil || !r.armed.Load() {
		return nil
	}
	var sleep time.Duration
	var err error
	r.mu.Lock()
	rules := r.rules[point]
	for i := range rules {
		rule := &rules[i]
		rule.seen++
		if rule.seen <= rule.After {
			continue
		}
		if r.rng.Float64() >= rule.P {
			continue
		}
		r.fired[point]++
		switch rule.Kind {
		case KindLatency:
			sleep += rule.Delay
		case KindError:
			err = fmt.Errorf("%w at %s", ErrInjected, point)
		case KindShortWrite:
			err = fmt.Errorf("%w: %w at %s", ErrInjected, ErrShortWrite, point)
		case KindCrash:
			err = fmt.Errorf("%w: %w at %s", ErrInjected, ErrCrash, point)
		case KindPanic:
			r.mu.Unlock()
			panic(Panic{Point: point})
		}
	}
	r.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	return err
}

// Fired returns how many times rules at point have fired.
func (r *Registry) Fired(point string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fired[point]
}

// Counts returns a copy of the per-point fired counters.
func (r *Registry) Counts() map[string]uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.fired))
	for k, v := range r.fired {
		out[k] = v
	}
	return out
}

// String lists the armed rules in point order.
func (r *Registry) String() string {
	if r == nil {
		return "<disarmed>"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	points := make([]string, 0, len(r.rules))
	for p := range r.rules {
		points = append(points, p)
	}
	sort.Strings(points)
	var parts []string
	for _, p := range points {
		for _, rule := range r.rules[p] {
			parts = append(parts, rule.String())
		}
	}
	if len(parts) == 0 {
		return "<disarmed>"
	}
	return strings.Join(parts, ";")
}

// Parse builds a registry from the -faults flag syntax: clauses
// separated by ';', each either "seed=<int>" or
// "<point>=<kind>:<probability>[:<duration>]" with kind one of
// latency, error, panic, shortwrite, crash. The duration is mandatory
// for latency rules and rejected for the others.
func Parse(spec string) (*Registry, error) {
	seed := int64(1)
	var rules []Rule
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("fault: clause %q: want point=kind:prob[:duration] or seed=N", clause)
		}
		if key == "seed" {
			s, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q", val)
			}
			seed = s
			continue
		}
		rule, err := parseRule(key, val)
		if err != nil {
			return nil, err
		}
		rules = append(rules, rule)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fault: spec %q arms no rules", spec)
	}
	reg := New(seed)
	for _, r := range rules {
		reg.Arm(r)
	}
	return reg, nil
}

func parseRule(point, val string) (Rule, error) {
	parts := strings.Split(val, ":")
	if len(parts) < 2 {
		return Rule{}, fmt.Errorf("fault: %s=%s: want kind:prob[:duration]", point, val)
	}
	rule := Rule{Point: point}
	switch parts[0] {
	case "latency":
		rule.Kind = KindLatency
	case "error":
		rule.Kind = KindError
	case "panic":
		rule.Kind = KindPanic
	case "shortwrite":
		rule.Kind = KindShortWrite
	case "crash":
		rule.Kind = KindCrash
	default:
		return Rule{}, fmt.Errorf("fault: %s: unknown kind %q (want latency, error, panic, shortwrite or crash)", point, parts[0])
	}
	p, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || p < 0 || p > 1 {
		return Rule{}, fmt.Errorf("fault: %s: probability %q not in [0, 1]", point, parts[1])
	}
	rule.P = p
	switch {
	case rule.Kind == KindLatency:
		if len(parts) != 3 {
			return Rule{}, fmt.Errorf("fault: %s: latency rules need a duration, e.g. latency:%g:5ms", point, p)
		}
		d, err := time.ParseDuration(parts[2])
		if err != nil || d <= 0 {
			return Rule{}, fmt.Errorf("fault: %s: bad latency duration %q", point, parts[2])
		}
		rule.Delay = d
	case len(parts) != 2:
		return Rule{}, fmt.Errorf("fault: %s: only latency rules take a duration", point)
	}
	return rule, nil
}
