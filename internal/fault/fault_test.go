package fault

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilAndDisarmedAreFree(t *testing.T) {
	var nilReg *Registry
	if err := nilReg.Fire("x"); err != nil {
		t.Fatalf("nil registry Fire = %v, want nil", err)
	}
	if got := nilReg.Fired("x"); got != 0 {
		t.Fatalf("nil registry Fired = %d", got)
	}
	empty := New(1)
	if err := empty.Fire("x"); err != nil {
		t.Fatalf("disarmed registry Fire = %v, want nil", err)
	}
	var zero Registry
	if err := zero.Fire("x"); err != nil {
		t.Fatalf("zero registry Fire = %v, want nil", err)
	}
}

func TestErrorRuleFiresWithSeededProbability(t *testing.T) {
	reg := New(7)
	reg.Arm(Rule{Point: "p", Kind: KindError, P: 0.5})
	errs := 0
	for i := 0; i < 1000; i++ {
		if err := reg.Fire("p"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error %v does not wrap ErrInjected", err)
			}
			errs++
		}
	}
	if errs < 400 || errs > 600 {
		t.Fatalf("p=0.5 rule fired %d/1000 times", errs)
	}
	if got := reg.Fired("p"); got != uint64(errs) {
		t.Fatalf("Fired = %d, want %d", got, errs)
	}
	// Points without rules stay silent.
	if err := reg.Fire("other"); err != nil {
		t.Fatalf("rule-less point fired: %v", err)
	}
}

func TestDeterministicAcrossRegistries(t *testing.T) {
	seq := func() []bool {
		reg := New(42)
		reg.Arm(Rule{Point: "p", Kind: KindError, P: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = reg.Fire("p") != nil
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between same-seed registries", i)
		}
	}
}

func TestPanicRule(t *testing.T) {
	reg := New(1)
	reg.Arm(Rule{Point: "p", Kind: KindPanic, P: 1})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("P=1 panic rule did not panic")
		}
		pv, ok := r.(Panic)
		if !ok || pv.Point != "p" {
			t.Fatalf("panic value = %#v, want fault.Panic{Point: \"p\"}", r)
		}
	}()
	_ = reg.Fire("p")
}

func TestLatencyRuleSleeps(t *testing.T) {
	reg := New(1)
	reg.Arm(Rule{Point: "p", Kind: KindLatency, P: 1, Delay: 20 * time.Millisecond})
	t0 := time.Now()
	if err := reg.Fire("p"); err != nil {
		t.Fatalf("latency rule returned error %v", err)
	}
	if d := time.Since(t0); d < 20*time.Millisecond {
		t.Fatalf("latency rule slept only %v", d)
	}
}

func TestClearDisarms(t *testing.T) {
	reg := New(1)
	reg.Arm(Rule{Point: "p", Kind: KindError, P: 1})
	if err := reg.Fire("p"); err == nil {
		t.Fatal("armed P=1 rule did not fire")
	}
	reg.Clear("p")
	if err := reg.Fire("p"); err != nil {
		t.Fatalf("cleared point still fires: %v", err)
	}
	if reg.armed.Load() {
		t.Fatal("registry still armed after clearing its only point")
	}
}

func TestConcurrentFireIsSafe(t *testing.T) {
	reg := New(3)
	reg.Arm(Rule{Point: "p", Kind: KindError, P: 0.5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = reg.Fire("p")
			}
		}()
	}
	wg.Wait()
	counts := reg.Counts()
	if counts["p"] == 0 || counts["p"] > 1600 {
		t.Fatalf("fired count %d out of range", counts["p"])
	}
}

func TestParse(t *testing.T) {
	reg, err := Parse("seed=9; engine.verification=panic:0.01 ;swap.load=error:0.5;server.run=latency:1:5ms")
	if err != nil {
		t.Fatal(err)
	}
	want := "engine.verification=panic:0.01;server.run=latency:1:5ms;swap.load=error:0.5"
	if got := reg.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	// The latency rule at P=1 must fire.
	t0 := time.Now()
	if err := reg.Fire(PointRun); err != nil {
		t.Fatal(err)
	}
	if time.Since(t0) < 5*time.Millisecond {
		t.Fatal("parsed latency rule did not sleep")
	}

	for _, bad := range []string{
		"",
		"nonsense",
		"p=latency:0.5",      // latency without duration
		"p=error:0.5:5ms",    // duration on a non-latency rule
		"p=explode:0.5",      // unknown kind
		"p=error:1.5",        // probability out of range
		"seed=x;p=error:0.5", // bad seed
		"seed=3",             // no rules
		"p=panic",            // missing probability
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", bad)
		}
	}
}

func TestIOKindsAndSentinels(t *testing.T) {
	reg := New(3)
	reg.Arm(Rule{Point: PointIOWrite, Kind: KindShortWrite, P: 1})
	reg.Arm(Rule{Point: PointIORename, Kind: KindCrash, P: 1})

	err := reg.Fire(PointIOWrite)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, ErrShortWrite) {
		t.Fatalf("shortwrite Fire = %v, want ErrInjected and ErrShortWrite", err)
	}
	if errors.Is(err, ErrCrash) {
		t.Fatal("shortwrite error claims to be a crash")
	}
	err = reg.Fire(PointIORename)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, ErrCrash) {
		t.Fatalf("crash Fire = %v, want ErrInjected and ErrCrash", err)
	}
}

// TestRuleAfterSkipsEarlyDraws pins the crash-matrix mechanism: a P=1
// rule with After=n stays quiet for its first n draws and fires
// deterministically on draw n+1 and every draw beyond.
func TestRuleAfterSkipsEarlyDraws(t *testing.T) {
	reg := New(1)
	reg.Arm(Rule{Point: PointIOSync, Kind: KindError, P: 1, After: 2})
	for i := 0; i < 2; i++ {
		if err := reg.Fire(PointIOSync); err != nil {
			t.Fatalf("draw %d fired early: %v", i+1, err)
		}
	}
	for i := 2; i < 5; i++ {
		if err := reg.Fire(PointIOSync); err == nil {
			t.Fatalf("draw %d did not fire", i+1)
		}
	}
	if got := reg.Fired(PointIOSync); got != 3 {
		t.Fatalf("Fired = %d, want 3", got)
	}
}

func TestParseIOKinds(t *testing.T) {
	reg, err := Parse("seed=9;io.sync=crash:1;io.write=shortwrite:0.5")
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.String(); got != "io.sync=crash:1;io.write=shortwrite:0.5" {
		t.Fatalf("String = %q", got)
	}
	if _, err := Parse("io.sync=crash:1:5ms"); err == nil {
		t.Fatal("crash rule with a duration accepted")
	}
}
