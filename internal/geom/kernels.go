package geom

// Batch distance kernels over structure-of-arrays point blocks.
//
// The verification hot path (Algorithm 6 lines 13-17) resolves one
// query point against a whole posting list at a time. Walking a
// []Point slice pays a 24-byte stride and a branch per point; these
// kernels instead take the coordinates as three flat []float64 blocks
// (the frozen layout of grid.PostingBlock), which keeps the loads
// sequential, lets the compiler eliminate bounds checks, and unrolls
// the squared-distance evaluation 4-wide. All kernels are
// allocation-free and evaluate exactly dx*dx + dy*dy + dz*dz per
// point — the same expression shape as Dist2, so results are
// bit-identical to the scalar oracle.
//
// xs, ys and zs must have equal length; the kernels panic otherwise
// (via the reslice below) rather than silently truncating.

// FirstWithin2 returns the index of the first point (xs[i], ys[i],
// zs[i]) whose squared distance to (px, py, pz) is at most r2, or -1
// when no point qualifies. The scan is 4-wide unrolled with an early
// exit after each block, and within a qualifying block the lowest
// index wins — exactly the point the scalar break-on-first-hit loop
// would have stopped at.
func FirstWithin2(px, py, pz float64, xs, ys, zs []float64, r2 float64) int {
	n := len(xs)
	ys = ys[:n]
	zs = zs[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dx0 := xs[i] - px
		dy0 := ys[i] - py
		dz0 := zs[i] - pz
		dx1 := xs[i+1] - px
		dy1 := ys[i+1] - py
		dz1 := zs[i+1] - pz
		dx2 := xs[i+2] - px
		dy2 := ys[i+2] - py
		dz2 := zs[i+2] - pz
		dx3 := xs[i+3] - px
		dy3 := ys[i+3] - py
		dz3 := zs[i+3] - pz
		d0 := dx0*dx0 + dy0*dy0 + dz0*dz0
		d1 := dx1*dx1 + dy1*dy1 + dz1*dz1
		d2 := dx2*dx2 + dy2*dy2 + dz2*dz2
		d3 := dx3*dx3 + dy3*dy3 + dz3*dz3
		if d0 <= r2 || d1 <= r2 || d2 <= r2 || d3 <= r2 {
			if d0 <= r2 {
				return i
			}
			if d1 <= r2 {
				return i + 1
			}
			if d2 <= r2 {
				return i + 2
			}
			return i + 3
		}
	}
	for ; i < n; i++ {
		dx := xs[i] - px
		dy := ys[i] - py
		dz := zs[i] - pz
		if dx*dx+dy*dy+dz*dz <= r2 {
			return i
		}
	}
	return -1
}

// AnyWithin2 reports whether any point of the block lies within
// squared distance r2 of (px, py, pz).
func AnyWithin2(px, py, pz float64, xs, ys, zs []float64, r2 float64) bool {
	return FirstWithin2(px, py, pz, xs, ys, zs, r2) >= 0
}

// CountWithin2 returns the number of points of the block within
// squared distance r2 of (px, py, pz). Unlike FirstWithin2 it scans
// the whole block (no early exit), so branchless accumulation keeps
// the 4-wide blocks tight.
func CountWithin2(px, py, pz float64, xs, ys, zs []float64, r2 float64) int {
	n := len(xs)
	ys = ys[:n]
	zs = zs[:n]
	count := 0
	i := 0
	for ; i+4 <= n; i += 4 {
		dx0 := xs[i] - px
		dy0 := ys[i] - py
		dz0 := zs[i] - pz
		dx1 := xs[i+1] - px
		dy1 := ys[i+1] - py
		dz1 := zs[i+1] - pz
		dx2 := xs[i+2] - px
		dy2 := ys[i+2] - py
		dz2 := zs[i+2] - pz
		dx3 := xs[i+3] - px
		dy3 := ys[i+3] - py
		dz3 := zs[i+3] - pz
		if dx0*dx0+dy0*dy0+dz0*dz0 <= r2 {
			count++
		}
		if dx1*dx1+dy1*dy1+dz1*dz1 <= r2 {
			count++
		}
		if dx2*dx2+dy2*dy2+dz2*dz2 <= r2 {
			count++
		}
		if dx3*dx3+dy3*dy3+dz3*dz3 <= r2 {
			count++
		}
	}
	for ; i < n; i++ {
		dx := xs[i] - px
		dy := ys[i] - py
		dz := zs[i] - pz
		if dx*dx+dy*dy+dz*dz <= r2 {
			count++
		}
	}
	return count
}
