package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// scalarFirstWithin2 is the oracle: the exact break-on-first-hit loop
// the kernels replace, built on the scalar Dist2.
func scalarFirstWithin2(p Point, xs, ys, zs []float64, r2 float64) int {
	for i := range xs {
		if Dist2(p, Point{xs[i], ys[i], zs[i]}) <= r2 {
			return i
		}
	}
	return -1
}

func scalarCountWithin2(p Point, xs, ys, zs []float64, r2 float64) int {
	count := 0
	for i := range xs {
		if Dist2(p, Point{xs[i], ys[i], zs[i]}) <= r2 {
			count++
		}
	}
	return count
}

// splitSoA flattens pts into coordinate blocks.
func splitSoA(pts []Point) (xs, ys, zs []float64) {
	for _, p := range pts {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
		zs = append(zs, p.Z)
	}
	return
}

// checkKernels cross-checks every kernel against the scalar oracle on
// one input and reports mismatches.
func checkKernels(t *testing.T, p Point, xs, ys, zs []float64, r2 float64) {
	t.Helper()
	wantFirst := scalarFirstWithin2(p, xs, ys, zs, r2)
	if got := FirstWithin2(p.X, p.Y, p.Z, xs, ys, zs, r2); got != wantFirst {
		t.Errorf("FirstWithin2(%v, n=%d, r2=%g) = %d, scalar %d", p, len(xs), r2, got, wantFirst)
	}
	if got, want := AnyWithin2(p.X, p.Y, p.Z, xs, ys, zs, r2), wantFirst >= 0; got != want {
		t.Errorf("AnyWithin2(%v, n=%d, r2=%g) = %v, scalar %v", p, len(xs), r2, got, want)
	}
	wantCount := scalarCountWithin2(p, xs, ys, zs, r2)
	if got := CountWithin2(p.X, p.Y, p.Z, xs, ys, zs, r2); got != wantCount {
		t.Errorf("CountWithin2(%v, n=%d, r2=%g) = %d, scalar %d", p, len(xs), r2, got, wantCount)
	}
}

// TestKernelsAdversarial pins the edge cases down explicitly: empty
// blocks, every tail length around the 4-wide unroll, signed zeros,
// subnormals, exact-boundary distances and huge magnitudes.
func TestKernelsAdversarial(t *testing.T) {
	sub := math.SmallestNonzeroFloat64 // subnormal
	cases := []struct {
		name string
		p    Point
		pts  []Point
		r2   float64
	}{
		{"empty", Pt(0, 0, 0), nil, 1},
		{"len1-hit", Pt(0, 0, 0), []Point{Pt(0.5, 0, 0)}, 1},
		{"len1-miss", Pt(0, 0, 0), []Point{Pt(2, 0, 0)}, 1},
		{"len3-tail-hit", Pt(0, 0, 0), []Point{Pt(9, 0, 0), Pt(9, 9, 0), Pt(0.1, 0.1, 0.1)}, 1},
		{"len5-hit-in-block-and-tail", Pt(0, 0, 0), []Point{Pt(9, 0, 0), Pt(0.1, 0, 0), Pt(0.2, 0, 0), Pt(9, 9, 9), Pt(0, 0, 0)}, 1},
		{"len7-all-miss", Pt(0, 0, 0), []Point{Pt(2, 0, 0), Pt(0, 2, 0), Pt(0, 0, 2), Pt(2, 2, 0), Pt(2, 0, 2), Pt(0, 2, 2), Pt(2, 2, 2)}, 1},
		{"signed-zero", Pt(math.Copysign(0, -1), 0, 0), []Point{Pt(0, math.Copysign(0, -1), 0), Pt(math.Copysign(0, -1), math.Copysign(0, -1), math.Copysign(0, -1))}, 0},
		{"subnormal-coords", Pt(sub, -sub, sub), []Point{Pt(-sub, sub, -sub), Pt(0, 0, 0)}, 0},
		{"subnormal-r2", Pt(0, 0, 0), []Point{Pt(sub, 0, 0), Pt(0, 0, 0)}, sub},
		{"exact-boundary", Pt(0, 0, 0), []Point{Pt(1, 0, 0), Pt(0, 1, 0)}, 1}, // d² == r² counts (<=)
		{"just-past-boundary", Pt(0, 0, 0), []Point{Pt(1, 0, 0)}, math.Nextafter(1, 0)},
		{"huge-coords", Pt(1e154, 0, 0), []Point{Pt(-1e154, 0, 0), Pt(1e154, 1, 1)}, 3},
		{"inf-distance-overflow", Pt(1e200, 1e200, 0), []Point{Pt(-1e200, -1e200, 0), Pt(1e200, 1e200, 0)}, math.MaxFloat64},
		{"r2-zero-first-of-dups", Pt(1, 2, 3), []Point{Pt(1, 2, 3), Pt(1, 2, 3), Pt(1, 2, 3), Pt(1, 2, 3), Pt(1, 2, 3)}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			xs, ys, zs := splitSoA(tc.pts)
			checkKernels(t, tc.p, xs, ys, zs, tc.r2)
		})
	}
}

// TestKernelsMatchScalarProperty is the randomized property: on blocks
// of every length (crossing the unroll boundary) with clustered
// coordinates, kernels and scalar oracle agree bit-for-bit.
func TestKernelsMatchScalarProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := local.Intn(21) // 0..20 covers empty, sub-block, and multi-block
		r := local.Float64() * 3
		p := Pt(local.NormFloat64()*2, local.NormFloat64()*2, local.NormFloat64()*2)
		pts := make([]Point, n)
		for i := range pts {
			// Cluster near p so hits and misses interleave.
			pts[i] = Pt(p.X+local.NormFloat64()*2, p.Y+local.NormFloat64()*2, p.Z+local.NormFloat64()*2)
		}
		xs, ys, zs := splitSoA(pts)
		wantFirst := scalarFirstWithin2(p, xs, ys, zs, r*r)
		wantCount := scalarCountWithin2(p, xs, ys, zs, r*r)
		return FirstWithin2(p.X, p.Y, p.Z, xs, ys, zs, r*r) == wantFirst &&
			AnyWithin2(p.X, p.Y, p.Z, xs, ys, zs, r*r) == (wantFirst >= 0) &&
			CountWithin2(p.X, p.Y, p.Z, xs, ys, zs, r*r) == wantCount
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// FuzzKernelsMatchScalar drives the kernels with fuzz-chosen query
// point, radius and a PRNG-expanded block whose coordinates mix
// normal values, signed zeros and subnormals. NaN inputs are skipped:
// the layer above (data.Validate, ReadBinary hardening) rejects them
// before any kernel runs.
func FuzzKernelsMatchScalar(f *testing.F) {
	f.Add(0.0, 0.0, 0.0, 1.0, int64(1), uint8(0))
	f.Add(1.5, -2.5, 3.5, 2.0, int64(42), uint8(9))
	f.Add(math.Copysign(0, -1), 0.0, 0.0, 0.0, int64(7), uint8(5))
	f.Add(1e154, -1e154, 0.0, math.MaxFloat64, int64(99), uint8(20))
	f.Fuzz(func(t *testing.T, px, py, pz, r2 float64, seed int64, n uint8) {
		if math.IsNaN(px) || math.IsNaN(py) || math.IsNaN(pz) || math.IsNaN(r2) {
			t.Skip("NaN-free domain")
		}
		local := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		ys := make([]float64, n)
		zs := make([]float64, n)
		for i := 0; i < int(n); i++ {
			for _, c := range []*float64{&xs[i], &ys[i], &zs[i]} {
				switch local.Intn(8) {
				case 0:
					*c = math.Copysign(0, -1)
				case 1:
					*c = math.SmallestNonzeroFloat64 * float64(local.Intn(5))
				case 2:
					*c = px + local.NormFloat64()*1e-8
				default:
					*c = local.NormFloat64() * math.Pow(10, float64(local.Intn(8)-4))
				}
			}
		}
		p := Pt(px, py, pz)
		wantFirst := scalarFirstWithin2(p, xs, ys, zs, r2)
		if got := FirstWithin2(px, py, pz, xs, ys, zs, r2); got != wantFirst {
			t.Fatalf("FirstWithin2 = %d, scalar %d (n=%d r2=%g)", got, wantFirst, n, r2)
		}
		if got := CountWithin2(px, py, pz, xs, ys, zs, r2); got != scalarCountWithin2(p, xs, ys, zs, r2) {
			t.Fatalf("CountWithin2 = %d, scalar %d (n=%d r2=%g)", got, scalarCountWithin2(p, xs, ys, zs, r2), n, r2)
		}
	})
}

// TestKernelsMismatchedLengthsPanic documents the contract: shorter
// ys/zs blocks panic instead of truncating silently.
func TestKernelsMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched block lengths did not panic")
		}
	}()
	FirstWithin2(0, 0, 0, []float64{1, 2}, []float64{1}, []float64{1, 2}, 1)
}

func BenchmarkFirstWithin2(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	const n = 256
	xs := make([]float64, n)
	ys := make([]float64, n)
	zs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		ys[i] = rng.Float64() * 100
		zs[i] = rng.Float64() * 100
	}
	b.Run("miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if FirstWithin2(-50, -50, -50, xs, ys, zs, 1) != -1 {
				b.Fatal("unexpected hit")
			}
		}
	})
	b.Run("scalar-miss", func(b *testing.B) {
		p := Pt(-50, -50, -50)
		for i := 0; i < b.N; i++ {
			if scalarFirstWithin2(p, xs, ys, zs, 1) != -1 {
				b.Fatal("unexpected hit")
			}
		}
	})
}
