package geom

import "math"

// Box is an axis-aligned bounding box. The zero Box is empty (Min above
// Max); extend it with Expand.
type Box struct {
	Min, Max Point
}

// EmptyBox returns a box that contains no points and absorbs any point
// through Expand.
func EmptyBox() Box {
	inf := math.Inf(1)
	return Box{
		Min: Point{inf, inf, inf},
		Max: Point{-inf, -inf, -inf},
	}
}

// Empty reports whether the box contains no points.
func (b Box) Empty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// Expand returns the box grown to include p.
func (b Box) Expand(p Point) Box {
	return Box{
		Min: Point{math.Min(b.Min.X, p.X), math.Min(b.Min.Y, p.Y), math.Min(b.Min.Z, p.Z)},
		Max: Point{math.Max(b.Max.X, p.X), math.Max(b.Max.Y, p.Y), math.Max(b.Max.Z, p.Z)},
	}
}

// Union returns the smallest box containing both b and c.
func (b Box) Union(c Box) Box {
	if b.Empty() {
		return c
	}
	if c.Empty() {
		return b
	}
	return Box{
		Min: Point{math.Min(b.Min.X, c.Min.X), math.Min(b.Min.Y, c.Min.Y), math.Min(b.Min.Z, c.Min.Z)},
		Max: Point{math.Max(b.Max.X, c.Max.X), math.Max(b.Max.Y, c.Max.Y), math.Max(b.Max.Z, c.Max.Z)},
	}
}

// Contains reports whether p lies inside the box (inclusive).
func (b Box) Contains(p Point) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Dist2To returns the squared distance from p to the box (0 if inside).
func (b Box) Dist2To(p Point) float64 {
	d := 0.0
	for _, c := range [3][3]float64{
		{p.X, b.Min.X, b.Max.X},
		{p.Y, b.Min.Y, b.Max.Y},
		{p.Z, b.Min.Z, b.Max.Z},
	} {
		v, lo, hi := c[0], c[1], c[2]
		if v < lo {
			d += (lo - v) * (lo - v)
		} else if v > hi {
			d += (v - hi) * (v - hi)
		}
	}
	return d
}

// Dist2ToBox returns the squared distance between the boxes (0 when
// they touch or overlap): the per-axis gaps between the nearer faces.
// It lower-bounds the distance between any point pair drawn from the
// two boxes, which is what the shard halo rule needs — an object whose
// MBR sits farther than r from a shard's extent cannot interact with
// any object inside it.
func (b Box) Dist2ToBox(c Box) float64 {
	d := 0.0
	for _, a := range [3][4]float64{
		{b.Min.X, b.Max.X, c.Min.X, c.Max.X},
		{b.Min.Y, b.Max.Y, c.Min.Y, c.Max.Y},
		{b.Min.Z, b.Max.Z, c.Min.Z, c.Max.Z},
	} {
		if gap := a[2] - a[1]; gap > 0 { // c entirely above b on this axis
			d += gap * gap
		} else if gap := a[0] - a[3]; gap > 0 { // b entirely above c
			d += gap * gap
		}
	}
	return d
}

// Bound returns the bounding box of pts.
func Bound(pts []Point) Box {
	b := EmptyBox()
	for _, p := range pts {
		b = b.Expand(p)
	}
	return b
}

// Extent returns the side lengths of the box, or zeros when empty.
func (b Box) Extent() Point {
	if b.Empty() {
		return Point{}
	}
	return b.Max.Sub(b.Min)
}
