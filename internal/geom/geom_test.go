package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Pt(1, 2, 3)
	q := Pt(4, -2, 0.5)
	if got := p.Add(q); got != Pt(5, 0, 3.5) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-3, 4, 2.5) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 1*4+2*-2+3*0.5 {
		t.Errorf("Dot = %v", got)
	}
	if got := Pt(3, 4, 0).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if p.String() == "" {
		t.Error("String empty")
	}
}

func TestDistAndWithin(t *testing.T) {
	p := Pt(0, 0, 0)
	q := Pt(1, 2, 2)
	if got := Dist(p, q); got != 3 {
		t.Errorf("Dist = %v, want 3", got)
	}
	if Dist2(p, q) != 9 {
		t.Errorf("Dist2 = %v, want 9", Dist2(p, q))
	}
	if !Within(p, q, 3) {
		t.Error("Within(3) = false at distance exactly 3")
	}
	if Within(p, q, 2.999) {
		t.Error("Within(2.999) = true at distance 3")
	}
}

func TestCoordAxes(t *testing.T) {
	p := Pt(7, 8, 9)
	if p.Coord(AxisX) != 7 || p.Coord(AxisY) != 8 || p.Coord(AxisZ) != 9 {
		t.Error("Coord wrong")
	}
}

func TestDistQuickSymmetricNonNegative(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		// Constrain to finite values.
		for _, v := range []float64{ax, ay, az, bx, by, bz} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				return true
			}
		}
		p, q := Pt(ax, ay, az), Pt(bx, by, bz)
		d := Dist2(p, q)
		return d >= 0 && d == Dist2(q, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoxBasics(t *testing.T) {
	b := EmptyBox()
	if !b.Empty() {
		t.Error("EmptyBox not empty")
	}
	b = b.Expand(Pt(1, 2, 3))
	b = b.Expand(Pt(-1, 5, 0))
	if b.Empty() {
		t.Error("expanded box empty")
	}
	if !b.Contains(Pt(0, 3, 1)) {
		t.Error("Contains inner point = false")
	}
	if b.Contains(Pt(2, 3, 1)) {
		t.Error("Contains outer point = true")
	}
	if got := b.Extent(); got != Pt(2, 3, 3) {
		t.Errorf("Extent = %v", got)
	}
	if EmptyBox().Extent() != Pt(0, 0, 0) {
		t.Error("empty Extent not zero")
	}
}

func TestBoxUnion(t *testing.T) {
	a := Bound([]Point{Pt(0, 0, 0), Pt(1, 1, 1)})
	b := Bound([]Point{Pt(2, -1, 0), Pt(3, 0, 5)})
	u := a.Union(b)
	for _, p := range []Point{Pt(0, 0, 0), Pt(1, 1, 1), Pt(2, -1, 0), Pt(3, 0, 5)} {
		if !u.Contains(p) {
			t.Errorf("union misses %v", p)
		}
	}
	if got := a.Union(EmptyBox()); got != a {
		t.Error("union with empty changed box")
	}
	if got := EmptyBox().Union(a); got != a {
		t.Error("empty union with box changed box")
	}
}

func TestBoxDist2To(t *testing.T) {
	b := Bound([]Point{Pt(0, 0, 0), Pt(2, 2, 2)})
	if d := b.Dist2To(Pt(1, 1, 1)); d != 0 {
		t.Errorf("inside dist = %v", d)
	}
	if d := b.Dist2To(Pt(3, 1, 1)); d != 1 {
		t.Errorf("face dist = %v", d)
	}
	if d := b.Dist2To(Pt(3, 3, 3)); d != 3 {
		t.Errorf("corner dist = %v", d)
	}
	if d := b.Dist2To(Pt(-2, -2, 1)); d != 8 {
		t.Errorf("edge dist = %v", d)
	}
}

func TestBoundMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]Point, 50)
	for i := range pts {
		pts[i] = Pt(rng.NormFloat64()*10, rng.NormFloat64()*10, rng.NormFloat64()*10)
	}
	b := Bound(pts)
	for _, p := range pts {
		if !b.Contains(p) {
			t.Fatalf("bound misses %v", p)
		}
	}
}
