// Package geom provides the primitive spatial types used throughout the
// repository: three-dimensional points, squared-distance arithmetic and
// axis-aligned bounding boxes. Two-dimensional data is represented with
// Z = 0, as the paper treats the 2-D case as a trivial restriction of
// the 3-D one.
package geom

import (
	"fmt"
	"math"
)

// Point is a point in three-dimensional Euclidean space. Objects in a
// dataset are sets of Points.
type Point struct {
	X, Y, Z float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y, z float64) Point { return Point{X: x, Y: y, Z: z} }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y, p.Z + q.Z} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y, p.Z - q.Z} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s, p.Z * s} }

// Dot returns the dot product of p and q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y + p.Z*q.Z }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Sqrt(p.Dot(p)) }

// Dist returns the Euclidean distance between p and q.
func Dist(p, q Point) float64 { return math.Sqrt(Dist2(p, q)) }

// Dist2 returns the squared Euclidean distance between p and q.
// Interaction tests compare Dist2 against r² to avoid square roots in
// hot loops.
func Dist2(p, q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	dz := p.Z - q.Z
	return dx*dx + dy*dy + dz*dz
}

// Within reports whether the distance between p and q is at most r.
// r must be non-negative.
func Within(p, q Point, r float64) bool { return Dist2(p, q) <= r*r }

// Axis selects a coordinate axis.
type Axis int

// The three coordinate axes.
const (
	AxisX Axis = iota
	AxisY
	AxisZ
)

// Coord returns the coordinate of p along the given axis.
func (p Point) Coord(a Axis) float64 {
	switch a {
	case AxisX:
		return p.X
	case AxisY:
		return p.Y
	default:
		return p.Z
	}
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%g, %g, %g)", p.X, p.Y, p.Z)
}
