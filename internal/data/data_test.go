package data

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"mio/internal/geom"
)

func TestDatasetStats(t *testing.T) {
	ds := &Dataset{
		Name: "x",
		Objects: []Object{
			{ID: 0, Pts: []geom.Point{geom.Pt(0, 0, 0), geom.Pt(1, 1, 1)}},
			{ID: 1, Pts: []geom.Point{geom.Pt(2, 2, 2)}},
		},
	}
	if ds.N() != 2 || ds.TotalPoints() != 3 {
		t.Fatalf("N=%d total=%d", ds.N(), ds.TotalPoints())
	}
	if ds.AvgPoints() != 1.5 {
		t.Fatalf("m = %v", ds.AvgPoints())
	}
	b := ds.Bounds()
	if b.Min != geom.Pt(0, 0, 0) || b.Max != geom.Pt(2, 2, 2) {
		t.Fatalf("bounds = %v", b)
	}
	s := ds.Summary()
	if s.N != 2 || !strings.Contains(s.String(), "n=2") {
		t.Fatalf("summary = %v", s)
	}
	if (&Dataset{}).AvgPoints() != 0 {
		t.Fatal("empty AvgPoints")
	}
}

func TestValidate(t *testing.T) {
	good := &Dataset{Objects: []Object{{ID: 0, Pts: []geom.Point{{}}}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good dataset rejected: %v", err)
	}
	cases := []*Dataset{
		{Objects: []Object{{ID: 1, Pts: []geom.Point{{}}}}},                         // wrong id
		{Objects: []Object{{ID: 0}}},                                                // empty object
		{Objects: []Object{{ID: 0, Pts: []geom.Point{{}}, Times: []float64{1, 2}}}}, // mismatched times
	}
	for i, ds := range cases {
		if err := ds.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSample(t *testing.T) {
	ds := GenUniform(UniformConfig{N: 100, M: 5, FieldSize: 50, Spread: 3, Seed: 1})
	s := ds.Sample(0.3, 42)
	if s.N() != 30 {
		t.Fatalf("sample N = %d", s.N())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("sample invalid: %v", err)
	}
	// Determinism.
	s2 := ds.Sample(0.3, 42)
	if !reflect.DeepEqual(pointsOf(s), pointsOf(s2)) {
		t.Fatal("sampling not deterministic")
	}
	// rate >= 1 clones.
	full := ds.Sample(1.0, 42)
	if full.N() != 100 {
		t.Fatalf("full sample N = %d", full.N())
	}
}

func pointsOf(ds *Dataset) [][]geom.Point {
	out := make([][]geom.Point, ds.N())
	for i := range ds.Objects {
		out[i] = ds.Objects[i].Pts
	}
	return out
}

func TestGeneratorsShapeAndDeterminism(t *testing.T) {
	type gen struct {
		name string
		make func() *Dataset
	}
	gens := []gen{
		{"neuron", func() *Dataset {
			return GenNeuron(NeuronConfig{N: 30, M: 100, Clusters: 3, FieldSize: 200, ClusterStd: 20, StepLen: 1.5, Branches: 4, Seed: 7})
		}},
		{"bird", func() *Dataset {
			return GenTrajectory(TrajectoryConfig{N: 50, M: 20, Groups: 4, FieldSize: 2000, Speed: 20, FollowStd: 8, Solo: 0.4, Seed: 7})
		}},
		{"syn", func() *Dataset {
			return GenPowerLaw(PowerLawConfig{N: 200, M: 6, Alpha: 1.5, Clusters: 20, FieldSize: 5000, HubStd: 5, Seed: 7})
		}},
		{"uniform", func() *Dataset {
			return GenUniform(UniformConfig{N: 40, M: 6, FieldSize: 100, Spread: 5, Seed: 7})
		}},
	}
	for _, g := range gens {
		a := g.make()
		if err := a.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", g.name, err)
		}
		b := g.make()
		if !reflect.DeepEqual(pointsOf(a), pointsOf(b)) {
			t.Fatalf("%s not deterministic", g.name)
		}
	}
}

func TestGenNeuronHasSkewAndElongation(t *testing.T) {
	ds := GenNeuron(NeuronConfig{N: 30, M: 200, Clusters: 3, FieldSize: 300, ClusterStd: 20, StepLen: 1.5, Branches: 4, Seed: 8})
	// Objects must be elongated: extent far exceeds the step length.
	for i := range ds.Objects {
		ext := (&Dataset{Objects: ds.Objects[i : i+1]}).Bounds().Extent()
		if math.Max(ext.X, math.Max(ext.Y, ext.Z)) < 5 {
			t.Fatalf("object %d not elongated: extent %v", i, ext)
		}
	}
}

func TestGenTrajectoryIsPlanar(t *testing.T) {
	ds := GenTrajectory(TrajectoryConfig{N: 20, M: 15, Groups: 3, FieldSize: 1000, Speed: 20, FollowStd: 5, Solo: 0.5, Seed: 9})
	for i := range ds.Objects {
		for _, p := range ds.Objects[i].Pts {
			if p.Z != 0 {
				t.Fatalf("trajectory point off-plane: %v", p)
			}
		}
	}
}

func TestGenPowerLawClusterSkew(t *testing.T) {
	// The largest cluster must hold far more objects than the median —
	// that is the power-law shape the Syn stand-in exists for.
	ds := GenPowerLaw(PowerLawConfig{N: 2000, M: 4, Alpha: 1.6, Clusters: 50, FieldSize: 50000, HubStd: 5, Seed: 10})
	// Recover cluster assignment by quantising anchors coarsely.
	counts := map[[3]int]int{}
	for i := range ds.Objects {
		p := ds.Objects[i].Pts[0]
		key := [3]int{int(p.X / 1000), int(p.Y / 1000), int(p.Z / 1000)}
		counts[key]++
	}
	sizes := make([]int, 0, len(counts))
	for _, c := range counts {
		sizes = append(sizes, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	if len(sizes) < 5 || sizes[0] < 4*sizes[len(sizes)/2] {
		t.Fatalf("no power-law skew: sizes %v...", sizes[:minInt(len(sizes), 8)])
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestWithTimestamps(t *testing.T) {
	ds := GenUniform(UniformConfig{N: 10, M: 5, FieldSize: 100, Spread: 5, Seed: 11})
	td := WithTimestamps(ds, 2.0, 100, 12)
	if err := td.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range td.Objects {
		o := &td.Objects[i]
		if !o.Temporal() {
			t.Fatalf("object %d missing times", i)
		}
		for j := 1; j < len(o.Times); j++ {
			if d := o.Times[j] - o.Times[j-1]; math.Abs(d-2.0) > 1e-9 {
				t.Fatalf("tick = %v", d)
			}
		}
	}
	if ds.Objects[0].Temporal() {
		t.Fatal("original dataset mutated")
	}
}

func TestTextRoundTrip(t *testing.T) {
	ds := GenUniform(UniformConfig{N: 15, M: 4, FieldSize: 100, Spread: 5, Seed: 13})
	ds.Name = "roundtrip"
	var buf bytes.Buffer
	if err := WriteText(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pointsOf(ds), pointsOf(back)) {
		t.Fatal("text round-trip mismatch")
	}
}

func TestTextRoundTripTemporal(t *testing.T) {
	ds := WithTimestamps(GenUniform(UniformConfig{N: 5, M: 3, FieldSize: 50, Spread: 5, Seed: 14}), 1, 10, 15)
	var buf bytes.Buffer
	if err := WriteText(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Objects {
		if !reflect.DeepEqual(ds.Objects[i].Times, back.Objects[i].Times) {
			t.Fatalf("object %d times mismatch", i)
		}
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"",                   // no points
		"0 1 2",              // too few fields
		"0 1 2 3 4 5",        // too many fields
		"x 1 2 3",            // bad id
		"-1 1 2 3",           // negative id
		"0 a 2 3",            // bad number
		"1 1 2 3",            // non-dense ids
		"0 1 2 3\n0 1 2 3 4", // mixed temporal
	}
	for i, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
	// Comments and blank lines are fine.
	ok := "# comment\n\n0 1 2 3\n"
	if _, err := ReadText(strings.NewReader(ok)); err != nil {
		t.Errorf("comment case rejected: %v", err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	ds := WithTimestamps(GenUniform(UniformConfig{N: 20, M: 6, FieldSize: 100, Spread: 5, Seed: 16}), 1, 10, 17)
	ds.Name = "bin"
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "bin" || !reflect.DeepEqual(pointsOf(ds), pointsOf(back)) {
		t.Fatal("binary round-trip mismatch")
	}
	for i := range ds.Objects {
		if !reflect.DeepEqual(ds.Objects[i].Times, back.Objects[i].Times) {
			t.Fatalf("object %d times mismatch", i)
		}
	}
}

func TestBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 8))); err == nil {
		t.Error("bad magic accepted")
	}
	ds := GenUniform(UniformConfig{N: 3, M: 2, FieldSize: 10, Spread: 2, Seed: 18})
	var buf bytes.Buffer
	WriteBinary(&buf, ds)
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	ds := GenUniform(UniformConfig{N: 8, M: 3, FieldSize: 20, Spread: 2, Seed: 19})
	ds.Name = "file"
	for _, name := range []string{"d.txt", "d.bin"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, ds); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(pointsOf(ds), pointsOf(back)) {
			t.Fatalf("%s round-trip mismatch", name)
		}
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestStandardDatasets(t *testing.T) {
	sets := Standard(0.1)
	wantNames := []string{"Neuron", "Neuron-2", "Bird", "Bird-2", "Syn"}
	for _, n := range wantNames {
		ds, ok := sets[n]
		if !ok {
			t.Fatalf("missing %s", n)
		}
		if ds.Name != n || ds.N() < 8 {
			t.Fatalf("%s: name=%q n=%d", n, ds.Name, ds.N())
		}
	}
	// Shape relations from Table I: Neuron has fewer, bigger objects
	// than Neuron-2; Bird has the most objects.
	if sets["Neuron"].AvgPoints() <= sets["Neuron-2"].AvgPoints() {
		t.Error("Neuron should have larger m than Neuron-2")
	}
	if sets["Bird"].N() <= sets["Bird-2"].N() {
		t.Error("Bird should have larger n than Bird-2")
	}
}
