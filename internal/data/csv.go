package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"mio/internal/geom"
)

// CSVColumns maps dataset fields to CSV column names. Real tracking
// exports (e.g. movebank.org) identify the animal by a tag column and
// carry coordinates plus an optional timestamp; this reader groups rows
// by the object column into one Object per distinct value.
type CSVColumns struct {
	// Obj names the column identifying the object (required). Distinct
	// values become objects, numbered in order of first appearance.
	Obj string
	// X, Y name the coordinate columns (required).
	X, Y string
	// Z names the third coordinate column ("" for planar data, Z = 0).
	Z string
	// T names the timestamp column ("" for purely spatial data). The
	// column must parse as a float (e.g. seconds since an epoch).
	T string
}

// ReadCSV parses a headered CSV stream into a dataset using the given
// column mapping. Rows keep their file order within each object, so
// trajectory point sequences are preserved.
func ReadCSV(r io.Reader, cols CSVColumns) (*Dataset, error) {
	if cols.Obj == "" || cols.X == "" || cols.Y == "" {
		return nil, fmt.Errorf("data: csv mapping needs Obj, X and Y columns")
	}
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("data: csv header: %w", err)
	}
	idx := map[string]int{}
	for i, h := range header {
		idx[h] = i
	}
	col := func(name string) (int, error) {
		i, ok := idx[name]
		if !ok {
			return 0, fmt.Errorf("data: csv column %q not found (have %v)", name, header)
		}
		return i, nil
	}
	objI, err := col(cols.Obj)
	if err != nil {
		return nil, err
	}
	xI, err := col(cols.X)
	if err != nil {
		return nil, err
	}
	yI, err := col(cols.Y)
	if err != nil {
		return nil, err
	}
	zI := -1
	if cols.Z != "" {
		if zI, err = col(cols.Z); err != nil {
			return nil, err
		}
	}
	tI := -1
	if cols.T != "" {
		if tI, err = col(cols.T); err != nil {
			return nil, err
		}
	}

	type acc struct {
		order int
		pts   []geom.Point
		times []float64
	}
	objs := map[string]*acc{}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("data: csv line %d: %w", line, err)
		}
		parse := func(i int) (float64, error) {
			v, err := strconv.ParseFloat(rec[i], 64)
			if err != nil {
				return 0, fmt.Errorf("data: csv line %d column %q: %w", line, header[i], err)
			}
			return v, nil
		}
		x, err := parse(xI)
		if err != nil {
			return nil, err
		}
		y, err := parse(yI)
		if err != nil {
			return nil, err
		}
		z := 0.0
		if zI >= 0 {
			if z, err = parse(zI); err != nil {
				return nil, err
			}
		}
		key := rec[objI]
		a := objs[key]
		if a == nil {
			a = &acc{order: len(objs)}
			objs[key] = a
		}
		a.pts = append(a.pts, geom.Pt(x, y, z))
		if tI >= 0 {
			tv, err := parse(tI)
			if err != nil {
				return nil, err
			}
			a.times = append(a.times, tv)
		}
	}
	if len(objs) == 0 {
		return nil, fmt.Errorf("data: csv has no data rows")
	}
	ordered := make([]*acc, len(objs))
	for _, a := range objs {
		ordered[a.order] = a
	}
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].order < ordered[j].order })
	ds := &Dataset{}
	for i, a := range ordered {
		ds.Objects = append(ds.Objects, Object{ID: i, Pts: a.pts, Times: a.times})
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}
