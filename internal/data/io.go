package data

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"mio/internal/durable"
	"mio/internal/geom"
)

// Text format: one point per line, "objectID x y z [t]", blank lines
// and '#' comments ignored. Object ids must be dense starting at zero
// but may appear in any order.
//
// Binary format: a compact little-endian encoding with a magic header,
// used by the CLIs to cache generated datasets.

// WriteText writes ds in the text format.
func WriteText(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# dataset %s: n=%d points=%d\n", ds.Name, ds.N(), ds.TotalPoints()); err != nil {
		return err
	}
	for i := range ds.Objects {
		o := &ds.Objects[i]
		for j, p := range o.Pts {
			var err error
			if o.Times != nil {
				_, err = fmt.Fprintf(bw, "%d %g %g %g %g\n", i, p.X, p.Y, p.Z, o.Times[j])
			} else {
				_, err = fmt.Fprintf(bw, "%d %g %g %g\n", i, p.X, p.Y, p.Z)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadText parses the text format.
func ReadText(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	type row struct {
		pts   []geom.Point
		times []float64
	}
	objs := map[int]*row{}
	maxID := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 && len(fields) != 5 {
			return nil, fmt.Errorf("data: line %d: want 4 or 5 fields, got %d", lineNo, len(fields))
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil || id < 0 {
			return nil, fmt.Errorf("data: line %d: bad object id %q", lineNo, fields[0])
		}
		var v [4]float64
		for fi := 1; fi < len(fields); fi++ {
			v[fi-1], err = strconv.ParseFloat(fields[fi], 64)
			if err != nil || !finite(v[fi-1]) {
				return nil, fmt.Errorf("data: line %d: bad number %q", lineNo, fields[fi])
			}
		}
		o := objs[id]
		if o == nil {
			o = &row{}
			objs[id] = o
		}
		o.pts = append(o.pts, geom.Pt(v[0], v[1], v[2]))
		if len(fields) == 5 {
			o.times = append(o.times, v[3])
		}
		if id > maxID {
			maxID = id
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("data: %w", err)
	}
	if maxID < 0 {
		return nil, errors.New("data: no points")
	}
	ds := &Dataset{}
	for i := 0; i <= maxID; i++ {
		o := objs[i]
		if o == nil {
			return nil, fmt.Errorf("data: object ids not dense: %d missing", i)
		}
		if o.times != nil && len(o.times) != len(o.pts) {
			return nil, fmt.Errorf("data: object %d mixes timestamped and plain points", i)
		}
		ds.Objects = append(ds.Objects, Object{ID: i, Pts: o.pts, Times: o.times})
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

const binMagic = uint64(0x4d494f4441544131) // "MIODATA1"

// finite rejects NaN and ±Inf while decoding untrusted input: a
// non-finite coordinate would silently corrupt grid mapping (the
// float→int cell conversion is implementation-defined for NaN), so
// corrupt files fail at the boundary instead.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// WriteBinary writes ds in the binary format.
func WriteBinary(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	var u [8]byte
	var werr error // first write error; later puts become no-ops
	put := func(v uint64) {
		if werr != nil {
			return
		}
		binary.LittleEndian.PutUint64(u[:], v)
		_, werr = bw.Write(u[:])
	}
	putF := func(v float64) { put(math.Float64bits(v)) }
	put(binMagic)
	put(uint64(len(ds.Name)))
	if werr == nil {
		_, werr = bw.WriteString(ds.Name)
	}
	put(uint64(ds.N()))
	for i := range ds.Objects {
		o := &ds.Objects[i]
		put(uint64(len(o.Pts)))
		hasTimes := uint64(0)
		if o.Times != nil {
			hasTimes = 1
		}
		put(hasTimes)
		for j, p := range o.Pts {
			putF(p.X)
			putF(p.Y)
			putF(p.Z)
			if hasTimes == 1 {
				putF(o.Times[j])
			}
		}
	}
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// allocClamp bounds speculative slice pre-allocation while decoding
// untrusted input: claimed lengths above it start small and grow by
// append, so a lying header costs reads, not memory.
const allocClamp = 1 << 16

// ReadBinary parses the binary format. Counts in the header are
// validated, and — when r is seekable, as files are — checked against
// the bytes actually remaining, so a corrupt or truncated file is
// rejected up front instead of triggering huge allocations or a long
// doomed decode.
func ReadBinary(r io.Reader) (*Dataset, error) {
	// left is the number of input bytes not yet consumed, or -1 when
	// the source cannot reveal its size.
	left := int64(-1)
	if s, ok := r.(io.Seeker); ok {
		if cur, err := s.Seek(0, io.SeekCurrent); err == nil {
			if end, err := s.Seek(0, io.SeekEnd); err == nil {
				if _, err := s.Seek(cur, io.SeekStart); err == nil {
					left = end - cur
				}
			}
		}
	}
	br := bufio.NewReader(r)
	var u [8]byte
	get := func() (uint64, error) {
		if _, err := io.ReadFull(br, u[:]); err != nil {
			return 0, err
		}
		if left >= 0 {
			left -= 8
		}
		return binary.LittleEndian.Uint64(u[:]), nil
	}
	magic, err := get()
	if err != nil {
		return nil, fmt.Errorf("data: %w", err)
	}
	if magic != binMagic {
		return nil, errors.New("data: bad magic")
	}
	nameLen, err := get()
	if err != nil {
		return nil, fmt.Errorf("data: %w", err)
	}
	if nameLen > 1<<20 || (left >= 0 && nameLen > uint64(left)) {
		return nil, fmt.Errorf("data: name length %d exceeds input", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("data: %w", err)
	}
	if left >= 0 {
		left -= int64(nameLen)
	}
	n, err := get()
	if err != nil {
		return nil, fmt.Errorf("data: %w", err)
	}
	// Every object costs at least 16 header bytes, so a sized input
	// bounds n exactly; otherwise fall back to a sanity cap.
	if n > 1<<32 || (left >= 0 && n > uint64(left/16)) {
		return nil, fmt.Errorf("data: object count %d exceeds input", n)
	}
	objCap := min(n, allocClamp)
	ds := &Dataset{Name: string(name), Objects: make([]Object, 0, objCap)}
	for i := 0; i < int(n); i++ {
		m, err := get()
		if err != nil {
			return nil, fmt.Errorf("data: object %d: %w", i, err)
		}
		hasTimes, err := get()
		if err != nil {
			return nil, fmt.Errorf("data: object %d: %w", i, err)
		}
		if hasTimes > 1 {
			return nil, fmt.Errorf("data: object %d: hasTimes flag is %d, want 0 or 1", i, hasTimes)
		}
		ptBytes := int64(24)
		if hasTimes == 1 {
			ptBytes = 32
		}
		if left >= 0 && m > uint64(left/ptBytes) {
			return nil, fmt.Errorf("data: object %d: point count %d exceeds remaining input", i, m)
		}
		ptCap := min(m, allocClamp)
		o := Object{ID: i, Pts: make([]geom.Point, 0, ptCap)}
		if hasTimes == 1 {
			o.Times = make([]float64, 0, ptCap)
		}
		for j := 0; j < int(m); j++ {
			var c [4]float64
			fields := 3
			if hasTimes == 1 {
				fields = 4
			}
			for fi := 0; fi < fields; fi++ {
				v, err := get()
				if err != nil {
					return nil, fmt.Errorf("data: object %d point %d: %w", i, j, err)
				}
				c[fi] = math.Float64frombits(v)
				if !finite(c[fi]) {
					return nil, fmt.Errorf("data: object %d point %d: non-finite value", i, j)
				}
			}
			o.Pts = append(o.Pts, geom.Pt(c[0], c[1], c[2]))
			if hasTimes == 1 {
				o.Times = append(o.Times, c[3])
			}
		}
		ds.Objects = append(ds.Objects, o)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// SaveFile writes ds to path, choosing the format by extension: ".txt"
// for text, anything else binary. Both paths commit atomically
// (tmp+fsync+rename, see internal/durable): a crash mid-save can never
// leave a truncated file under the final name. Binary files are
// additionally wrapped in durable's checksummed envelope so corruption
// is detected at load time; text files stay plain text for greppability
// and load flagged unverified.
func SaveFile(path string, ds *Dataset) error {
	return SaveFileIO(path, ds, durable.IO{})
}

// SaveFileIO is SaveFile with an explicit durability context, so crash
// tests can inject IO faults into the commit steps.
func SaveFileIO(path string, ds *Dataset, dio durable.IO) error {
	var buf bytes.Buffer
	if strings.HasSuffix(path, ".txt") {
		if err := WriteText(&buf, ds); err != nil {
			return err
		}
		return dio.WriteFileAtomic(path, buf.Bytes())
	}
	if err := WriteBinary(&buf, ds); err != nil {
		return err
	}
	return dio.CommitEnvelope(path, buf.Bytes())
}

// LoadFile reads a dataset from path, choosing the format by extension.
func LoadFile(path string) (*Dataset, error) {
	ds, _, err := LoadFileVerified(path)
	return ds, err
}

// LoadFileVerified reads a dataset from path and additionally reports
// whether its integrity was verified: true for envelope-wrapped files
// (magic, version, length and CRC-32 all checked), false for legacy
// text and pre-envelope binary files, which still load for
// compatibility but carry no corruption protection. An envelope that
// fails validation is an error wrapping durable.ErrCorrupt — the file
// claims to be protected, so a checksum mismatch must never be served.
func LoadFileVerified(path string) (*Dataset, bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	if durable.IsEnveloped(raw) {
		payload, err := durable.Open(raw)
		if err != nil {
			return nil, false, fmt.Errorf("data: %s: %w", path, err)
		}
		ds, err := ReadBinary(bytes.NewReader(payload))
		if err != nil {
			return nil, false, err
		}
		return ds, true, nil
	}
	if strings.HasSuffix(path, ".txt") {
		ds, err := ReadText(bytes.NewReader(raw))
		return ds, false, err
	}
	ds, err := ReadBinary(bytes.NewReader(raw))
	return ds, false, err
}
