package data

import (
	"fmt"
	"math"
	"math/rand"

	"mio/internal/geom"
)

// This file generates the adversarial workload suite of DESIGN.md §16:
// datasets deliberately shaped against the engine's hand-set defaults,
// used to stress the auto-tuner's heuristic table. Each generator is
// deterministic under its seed, and each advertised shape property is
// pinned by a profile-based test (adversarial_test.go).

// OneCellConfig parameterises GenOneCell.
type OneCellConfig struct {
	N, M int
	Side float64 // side length of the single occupied cube
	Seed int64
}

// DefaultOneCell is the all-in-one-cell stress: the entire dataset
// inside a cube smaller than one query cell, so every object interacts
// with every other and spatial pruning buys nothing.
func DefaultOneCell() OneCellConfig {
	return OneCellConfig{N: 600, M: 40, Side: 6, Seed: 31}
}

// GenOneCell generates the all-in-one-cell dataset: all points uniform
// in a Side-sized cube. Extreme density with zero spatial spread — the
// regime where the freeze threshold, not pruning, decides speed.
func GenOneCell(cfg OneCellConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Name: "onecell"}
	for i := 0; i < cfg.N; i++ {
		pts := make([]geom.Point, 0, cfg.M)
		for s := 0; s < cfg.M; s++ {
			pts = append(pts, geom.Pt(
				rng.Float64()*cfg.Side,
				rng.Float64()*cfg.Side,
				rng.Float64()*cfg.Side,
			))
		}
		ds.Objects = append(ds.Objects, Object{ID: i, Pts: pts})
	}
	return ds
}

// UniformSparseConfig parameterises GenUniformSparse.
type UniformSparseConfig struct {
	N, M      int
	FieldSize float64
	Spread    float64 // object extent
	Seed      int64
}

// DefaultUniformSparse is the uniform-sparse stress: planar objects
// spread thin over a huge field, so most query cells hold at most one
// object and the default (3-D, eager-freeze) knobs waste work.
func DefaultUniformSparse() UniformSparseConfig {
	return UniformSparseConfig{N: 12000, M: 10, FieldSize: 60000, Spread: 15, Seed: 32}
}

// GenUniformSparse generates the uniform-sparse dataset: planar
// (z = 0) objects with uniform anchors and small extent. Minimal skew,
// minimal density, exactly two effective dimensions.
func GenUniformSparse(cfg UniformSparseConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Name: "sparse"}
	for i := 0; i < cfg.N; i++ {
		ax := rng.Float64() * cfg.FieldSize
		ay := rng.Float64() * cfg.FieldSize
		pts := make([]geom.Point, 0, cfg.M)
		for s := 0; s < cfg.M; s++ {
			pts = append(pts, geom.Pt(
				ax+rng.Float64()*cfg.Spread,
				ay+rng.Float64()*cfg.Spread,
				0,
			))
		}
		ds.Objects = append(ds.Objects, Object{ID: i, Pts: pts})
	}
	return ds
}

// PowerLawSizesConfig parameterises GenPowerLawSizes.
type PowerLawSizesConfig struct {
	N         int
	MinM      int     // smallest object size
	MaxM      int     // largest object size
	Alpha     float64 // Zipf exponent of the size distribution
	Clusters  int
	FieldSize float64
	HubStd    float64
	Seed      int64
}

// DefaultPowerLawSizes is the power-law object-size stress: a few
// enormous objects among thousands of tiny ones, so count-based
// parallel partitions and per-object cost assumptions collapse.
func DefaultPowerLawSizes() PowerLawSizesConfig {
	return PowerLawSizesConfig{N: 4000, MinM: 4, MaxM: 4000, Alpha: 1.1, Clusters: 60, FieldSize: 2500, HubStd: 20, Seed: 33}
}

// GenPowerLawSizes generates objects whose point counts follow a
// truncated Zipf(Alpha) over [MinM, MaxM]: object sizes span three
// orders of magnitude while anchors cluster like GenPowerLaw's.
func GenPowerLawSizes(cfg PowerLawSizesConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Name: "powersize"}
	centers := make([]geom.Point, cfg.Clusters)
	for i := range centers {
		centers[i] = geom.Pt(
			rng.Float64()*cfg.FieldSize,
			rng.Float64()*cfg.FieldSize,
			rng.Float64()*cfg.FieldSize,
		)
	}
	// Inverse-CDF sampling of a continuous truncated power law: sizes
	// concentrate at MinM with a heavy MaxM tail.
	sampleM := func() int {
		u := rng.Float64()
		a := 1 - cfg.Alpha
		lo := math.Pow(float64(cfg.MinM), a)
		hi := math.Pow(float64(cfg.MaxM), a)
		m := int(math.Pow(lo+u*(hi-lo), 1/a))
		if m < cfg.MinM {
			m = cfg.MinM
		}
		if m > cfg.MaxM {
			m = cfg.MaxM
		}
		return m
	}
	for i := 0; i < cfg.N; i++ {
		c := centers[rng.Intn(len(centers))]
		anchor := geom.Pt(
			c.X+rng.NormFloat64()*cfg.HubStd,
			c.Y+rng.NormFloat64()*cfg.HubStd,
			c.Z+rng.NormFloat64()*cfg.HubStd,
		)
		m := sampleM()
		pts := make([]geom.Point, 0, m)
		cur := anchor
		for s := 0; s < m; s++ {
			cur = cur.Add(randUnit(rng).Scale(rng.Float64() * cfg.HubStd * 0.2))
			pts = append(pts, cur)
		}
		ds.Objects = append(ds.Objects, Object{ID: i, Pts: pts})
	}
	return ds
}

// HotspotCommuteConfig parameterises GenHotspotCommute.
type HotspotCommuteConfig struct {
	N         int
	M         int
	Hotspots  int
	FieldSize float64
	HotStd    float64 // point spread inside a hotspot
	Commute   float64 // fraction of objects that commute between hotspots
	Seed      int64
}

// DefaultHotspotCommute is the urban-mobility stress: planar hotspots
// (homes/offices) holding most of the mass, connected by commute
// trajectories — the MOIST-style skew real movement data shows.
func DefaultHotspotCommute() HotspotCommuteConfig {
	return HotspotCommuteConfig{N: 8000, M: 24, Hotspots: 5, FieldSize: 20000, HotStd: 60, Commute: 0.3, Seed: 34}
}

// GenHotspotCommute generates the hotspot-commute mix: planar (z = 0)
// objects either dwell inside one Zipf-weighted hotspot or commute
// along the straight line between two hotspots. Heavy top-decile skew
// with thin corridors between the peaks.
func GenHotspotCommute(cfg HotspotCommuteConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Name: "commute"}
	centers := make([]geom.Point, cfg.Hotspots)
	for i := range centers {
		centers[i] = geom.Pt(rng.Float64()*cfg.FieldSize, rng.Float64()*cfg.FieldSize, 0)
	}
	weights := make([]float64, cfg.Hotspots)
	total := 0.0
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), 1.5)
		total += weights[i]
	}
	pick := func() int {
		x := rng.Float64() * total
		for i, w := range weights {
			if x < w {
				return i
			}
			x -= w
		}
		return cfg.Hotspots - 1
	}
	for i := 0; i < cfg.N; i++ {
		pts := make([]geom.Point, 0, cfg.M)
		if rng.Float64() < cfg.Commute {
			// Commuter: M points along the segment between two distinct
			// hotspots, with road-width jitter.
			a := pick()
			b := pick()
			for b == a {
				b = (b + 1) % cfg.Hotspots
			}
			from, to := centers[a], centers[b]
			for s := 0; s < cfg.M; s++ {
				f := float64(s) / float64(cfg.M-1)
				pts = append(pts, geom.Pt(
					from.X+(to.X-from.X)*f+rng.NormFloat64()*cfg.HotStd*0.2,
					from.Y+(to.Y-from.Y)*f+rng.NormFloat64()*cfg.HotStd*0.2,
					0,
				))
			}
		} else {
			// Dweller: M points inside one hotspot.
			c := centers[pick()]
			for s := 0; s < cfg.M; s++ {
				pts = append(pts, geom.Pt(
					c.X+rng.NormFloat64()*cfg.HotStd,
					c.Y+rng.NormFloat64()*cfg.HotStd,
					0,
				))
			}
		}
		ds.Objects = append(ds.Objects, Object{ID: i, Pts: pts})
	}
	return ds
}

// Adversarial returns the four adversarial datasets of DESIGN.md §16
// at the given scale factor (object counts scale like Standard's).
func Adversarial(scale float64) map[string]*Dataset {
	scaleN := func(n int) int {
		v := int(float64(n) * scale)
		return maxInt(v, 8)
	}
	oc := DefaultOneCell()
	oc.N = scaleN(oc.N)
	us := DefaultUniformSparse()
	us.N = scaleN(us.N)
	ps := DefaultPowerLawSizes()
	ps.N = scaleN(ps.N)
	hc := DefaultHotspotCommute()
	hc.N = scaleN(hc.N)

	out := map[string]*Dataset{
		"OneCell":   GenOneCell(oc),
		"Sparse":    GenUniformSparse(us),
		"PowerSize": GenPowerLawSizes(ps),
		"Commute":   GenHotspotCommute(hc),
	}
	for name, ds := range out {
		ds.Name = name
		if err := ds.Validate(); err != nil {
			panic(fmt.Sprintf("data: adversarial generator %s produced invalid dataset: %v", name, err))
		}
	}
	return out
}
