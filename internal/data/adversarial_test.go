package data_test

import (
	"reflect"
	"testing"

	"mio/internal/data"
	"mio/internal/tune"
)

// These tests pin each adversarial generator to its advertised shape
// via the profiler: the tuner's rules key off exactly these statistics,
// so a generator drifting out of its regime would silently hollow out
// the tune-gate. All generators are deterministic under their seeds —
// asserted by profiling two independent generations.

func profileTwice(t *testing.T, gen func() *data.Dataset) *tune.Profile {
	t.Helper()
	a, b := tune.Profiler(gen()), tune.Profiler(gen())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("generator is not deterministic under its fixed seed")
	}
	return a
}

func TestOneCellShape(t *testing.T) {
	cfg := data.DefaultOneCell()
	p := profileTwice(t, func() *data.Dataset { return data.GenOneCell(cfg) })
	if p.SpanX > cfg.Side || p.SpanY > cfg.Side || p.SpanZ > cfg.Side {
		t.Fatalf("spans %g/%g/%g exceed the advertised cube side %g", p.SpanX, p.SpanY, p.SpanZ, cfg.Side)
	}
	if p.EffectiveDims != 3 {
		t.Fatalf("dims = %d, want 3", p.EffectiveDims)
	}
	// Everything within one query cell at any bench radius: expected
	// per-cell occupancy must dwarf the freeze-hot threshold.
	if got := p.ExpectedCellPoints(4); got < 1000 {
		t.Fatalf("expected cell points at r=4 = %g, want ≫ freeze-hot threshold", got)
	}
	if !ruleFired(t, p, "freeze-hot-cells") {
		t.Fatalf("one-cell profile must fire freeze-hot-cells")
	}
}

func TestUniformSparseShape(t *testing.T) {
	cfg := data.DefaultUniformSparse()
	p := profileTwice(t, func() *data.Dataset { return data.GenUniformSparse(cfg) })
	if p.EffectiveDims != 2 {
		t.Fatalf("dims = %d, want 2 (planar)", p.EffectiveDims)
	}
	// Uniform: the top decile of cells holds barely more than 10% of
	// the mass; no single cell concentrates anything.
	if p.TopDecileShare > 0.25 {
		t.Fatalf("top decile share = %g, want ≤ 0.25 (uniform)", p.TopDecileShare)
	}
	if p.MaxCellShare > 0.01 {
		t.Fatalf("max cell share = %g, want tiny", p.MaxCellShare)
	}
	// Sparse: well under one point per query cell at the max bench r.
	if got := p.ExpectedCellPoints(10); got >= 16 {
		t.Fatalf("expected cell points at r=10 = %g, want sparse (< 16)", got)
	}
	if !ruleFired(t, p, "freeze-late-sparse") || !ruleFired(t, p, "planar-2d") {
		t.Fatalf("sparse profile must fire freeze-late-sparse and planar-2d")
	}
}

func TestPowerLawSizesShape(t *testing.T) {
	cfg := data.DefaultPowerLawSizes()
	p := profileTwice(t, func() *data.Dataset { return data.GenPowerLawSizes(cfg) })
	if p.SizeSkew() < 8 {
		t.Fatalf("size skew P99/P50 = %g, want ≥ 8 (power-law sizes)", p.SizeSkew())
	}
	if p.SizeMax < 50*p.SizeP50 {
		t.Fatalf("size max/p50 = %d/%d, want ≥ 50× spread", p.SizeMax, p.SizeP50)
	}
	if p.SizeP10 > 2*cfg.MinM {
		t.Fatalf("size p10 = %d, want near MinM=%d (mass at the small end)", p.SizeP10, cfg.MinM)
	}
	if !ruleFired(t, p, "ub-cost-model") {
		t.Fatalf("size-skewed profile must fire ub-cost-model")
	}
}

func TestHotspotCommuteShape(t *testing.T) {
	cfg := data.DefaultHotspotCommute()
	p := profileTwice(t, func() *data.Dataset { return data.GenHotspotCommute(cfg) })
	if p.EffectiveDims != 2 {
		t.Fatalf("dims = %d, want 2 (planar)", p.EffectiveDims)
	}
	// Hotspots concentrate most of the mass in few cells.
	if p.TopDecileShare < 0.5 {
		t.Fatalf("top decile share = %g, want ≥ 0.5 (hotspot skew)", p.TopDecileShare)
	}
	if !ruleFired(t, p, "planar-2d") || !ruleFired(t, p, "ub-cost-model") {
		t.Fatalf("commute profile must fire planar-2d and ub-cost-model")
	}
}

func TestAdversarialMapScalesAndValidates(t *testing.T) {
	sets := data.Adversarial(0.15)
	want := []string{"OneCell", "Sparse", "PowerSize", "Commute"}
	for _, name := range want {
		ds, ok := sets[name]
		if !ok {
			t.Fatalf("missing adversarial dataset %q", name)
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.Name != name {
			t.Fatalf("dataset name %q, want %q", ds.Name, name)
		}
	}
	full := data.Adversarial(1.0)
	if full["Sparse"].N() <= sets["Sparse"].N() {
		t.Fatal("scale factor does not scale object counts")
	}
}

func ruleFired(t *testing.T, p *tune.Profile, rule string) bool {
	t.Helper()
	tn := tune.Select(p, tune.Env{MaxProcs: 4})
	for _, r := range tn.Rules {
		if r == rule {
			return true
		}
	}
	t.Logf("rules fired: %v", tn.Rules)
	return false
}
