package data

import (
	"fmt"
	"math"
	"math/rand"

	"mio/internal/geom"
)

// This file generates the stand-in datasets of DESIGN.md §5. The
// paper's real datasets (neuromorpho.org neurons, movebank.org bird
// trajectories, a brain-network-derived synthetic) are not
// redistributable, so each generator reproduces the properties the
// algorithms are actually sensitive to: point-heavy objects, elongated
// non-convex shapes, heavy spatial skew, and (for Syn) a power-law
// interaction-score distribution.

// NeuronConfig parameterises GenNeuron.
type NeuronConfig struct {
	N          int     // number of neurons
	M          int     // target points per neuron
	Clusters   int     // soma clusters (spatial skew)
	FieldSize  float64 // side length of the cubic field, micrometres
	ClusterStd float64 // soma spread inside a cluster
	StepLen    float64 // arbor segment length
	Branches   int     // arbors per neuron
	Seed       int64
}

// DefaultNeuron mirrors the paper's Neuron dataset shape (few objects,
// many points each, tightly interwoven arbors) at laptop scale. The
// field is small relative to total arbor length so that neuropil
// regions are dense — the regime the paper's real tissue data lives in.
func DefaultNeuron() NeuronConfig {
	return NeuronConfig{N: 120, M: 2400, Clusters: 3, FieldSize: 160, ClusterStd: 25, StepLen: 0.6, Branches: 6, Seed: 1}
}

// DefaultNeuron2 mirrors Neuron-2 (more objects, fewer points each).
func DefaultNeuron2() NeuronConfig {
	return NeuronConfig{N: 900, M: 300, Clusters: 4, FieldSize: 170, ClusterStd: 22, StepLen: 0.8, Branches: 4, Seed: 2}
}

// GenNeuron generates neuron-like objects: somata drawn from Gaussian
// clusters, each emitting branching 3-D random-walk arbors whose
// segments step StepLen at a time. The result is elongated, non-convex
// and spatially skewed — the regime where MBR indexing fails and
// compressed bitsets pay off (§II-B, §III-A).
func GenNeuron(cfg NeuronConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Name: "neuron"}
	centers := make([]geom.Point, cfg.Clusters)
	for i := range centers {
		centers[i] = geom.Pt(
			rng.Float64()*cfg.FieldSize,
			rng.Float64()*cfg.FieldSize,
			rng.Float64()*cfg.FieldSize,
		)
	}
	for i := 0; i < cfg.N; i++ {
		c := centers[rng.Intn(len(centers))]
		soma := geom.Pt(
			c.X+rng.NormFloat64()*cfg.ClusterStd,
			c.Y+rng.NormFloat64()*cfg.ClusterStd,
			c.Z+rng.NormFloat64()*cfg.ClusterStd,
		)
		// ±25% size variation so objects have different cardinalities,
		// as the paper notes (§II-A).
		m := cfg.M + rng.Intn(cfg.M/2+1) - cfg.M/4
		if m < 4 {
			m = 4
		}
		pts := make([]geom.Point, 0, m)
		pts = append(pts, soma)
		perBranch := (m - 1) / maxInt(cfg.Branches, 1)
		for b := 0; b < cfg.Branches && len(pts) < m; b++ {
			cur := soma
			dir := randUnit(rng)
			for s := 0; s < perBranch && len(pts) < m; s++ {
				// Correlated walk: mostly straight with jitter, an
				// axon/dendrite-like process.
				dir = dir.Add(randUnit(rng).Scale(0.35))
				dir = dir.Scale(1 / dir.Norm())
				cur = cur.Add(dir.Scale(cfg.StepLen))
				pts = append(pts, cur)
			}
		}
		for len(pts) < m {
			pts = append(pts, soma.Add(randUnit(rng).Scale(rng.Float64()*cfg.StepLen)))
		}
		ds.Objects = append(ds.Objects, Object{ID: i, Pts: pts})
	}
	return ds
}

// TrajectoryConfig parameterises GenTrajectory.
type TrajectoryConfig struct {
	N         int     // number of sub-trajectories
	M         int     // points per sub-trajectory
	Groups    int     // leader-follower flocks
	FieldSize float64 // side length of the square field, metres
	Speed     float64 // step length per tick
	FollowStd float64 // follower spread around the leader
	Solo      float64 // fraction of trajectories that fly alone
	Seed      int64
}

// DefaultBird mirrors the paper's Bird dataset shape (many short
// trajectories concentrated along migration corridors) at laptop
// scale.
func DefaultBird() TrajectoryConfig {
	return TrajectoryConfig{N: 6000, M: 50, Groups: 12, FieldSize: 3500, Speed: 15, FollowStd: 5, Solo: 0.2, Seed: 3}
}

// DefaultBird2 mirrors Bird-2 (fewer, longer trajectories).
func DefaultBird2() TrajectoryConfig {
	return TrajectoryConfig{N: 1800, M: 100, Groups: 8, FieldSize: 3000, Speed: 12, FollowStd: 5, Solo: 0.2, Seed: 4}
}

// GenTrajectory generates 2-D bird-like sub-trajectories (z = 0):
// correlated random walks, organised in leader-follower flocks so that
// leaders interact with large fractions of the dataset (the Fig. 2
// behaviour, where the MIO answer reaches ~30% of the set). Flock
// membership is Zipf-skewed — real social structure concentrates most
// individuals into a few large flocks — and each flock follows one
// leader path, so members of the same flock share a route. Long flights
// are emitted as fixed-length sub-trajectories exactly as the paper
// prepares its Bird data.
func GenTrajectory(cfg TrajectoryConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Name: "bird"}
	// Leaders: one flight per flock; the path is a few windows long so
	// followers' windows overlap spatially.
	type flock struct {
		path []geom.Point
	}
	flocks := make([]flock, cfg.Groups)
	ticks := 3 * cfg.M
	for g := range flocks {
		pos := geom.Pt(rng.Float64()*cfg.FieldSize, rng.Float64()*cfg.FieldSize, 0)
		heading := rng.Float64() * 2 * math.Pi
		path := make([]geom.Point, 0, ticks)
		for s := 0; s < ticks; s++ {
			heading += rng.NormFloat64() * 0.2
			pos = pos.Add(geom.Pt(math.Cos(heading)*cfg.Speed, math.Sin(heading)*cfg.Speed, 0))
			path = append(path, pos)
		}
		flocks[g] = flock{path: path}
	}
	// Zipf weights over flocks: the largest flock holds roughly half of
	// all followers, which puts the MIO answer's interacting share in
	// the ~30% regime the paper's Fig. 2 reports.
	weights := make([]float64, cfg.Groups)
	totalW := 0.0
	for g := range weights {
		weights[g] = 1 / math.Pow(float64(g+1), 1.7)
		totalW += weights[g]
	}
	pickFlock := func() int {
		x := rng.Float64() * totalW
		for g, w := range weights {
			if x < w {
				return g
			}
			x -= w
		}
		return cfg.Groups - 1
	}
	for i := 0; i < cfg.N; i++ {
		var pts []geom.Point
		if rng.Float64() < cfg.Solo {
			// Solo flight: independent correlated walk.
			pos := geom.Pt(rng.Float64()*cfg.FieldSize, rng.Float64()*cfg.FieldSize, 0)
			heading := rng.Float64() * 2 * math.Pi
			pts = make([]geom.Point, 0, cfg.M)
			for s := 0; s < cfg.M; s++ {
				heading += rng.NormFloat64() * 0.3
				pos = pos.Add(geom.Pt(math.Cos(heading)*cfg.Speed, math.Sin(heading)*cfg.Speed, 0))
				pts = append(pts, pos)
			}
		} else {
			// Follower: a window of the flock leader's path plus noise.
			// Window starts are quadratically biased toward the path
			// start, so trajectories near the origin of the corridor
			// interact with the most others — a sharp, Fig. 2-like
			// leader instead of a plateau of ties.
			f := flocks[pickFlock()]
			u := rng.Float64()
			start := int(u * u * float64(len(f.path)-cfg.M))
			pts = make([]geom.Point, 0, cfg.M)
			for s := 0; s < cfg.M; s++ {
				p := f.path[start+s]
				pts = append(pts, geom.Pt(
					p.X+rng.NormFloat64()*cfg.FollowStd,
					p.Y+rng.NormFloat64()*cfg.FollowStd,
					0,
				))
			}
		}
		ds.Objects = append(ds.Objects, Object{ID: i, Pts: pts})
	}
	return ds
}

// PowerLawConfig parameterises GenPowerLaw.
type PowerLawConfig struct {
	N         int     // number of objects
	M         int     // points per object
	Alpha     float64 // Zipf exponent of cluster sizes
	Clusters  int     // number of spatial clusters
	FieldSize float64
	HubStd    float64 // point spread inside a cluster
	Seed      int64
}

// DefaultSyn mirrors the paper's Syn dataset (many small objects whose
// score distribution follows a power law) at laptop scale.
func DefaultSyn() PowerLawConfig {
	return PowerLawConfig{N: 20000, M: 16, Alpha: 1.6, Clusters: 400, FieldSize: 4000, HubStd: 14, Seed: 5}
}

// GenPowerLaw generates the Syn stand-in: objects are assigned to
// spatial clusters whose sizes follow a Zipf(Alpha) distribution, so an
// object in a cluster of size s interacts with Θ(s) objects — the
// score distribution inherits the power law, mimicking the
// human-brain-network-derived synthetic of §V-A.
func GenPowerLaw(cfg PowerLawConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Name: "syn"}
	// Zipf cluster weights.
	weights := make([]float64, cfg.Clusters)
	total := 0.0
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), cfg.Alpha)
		total += weights[i]
	}
	centers := make([]geom.Point, cfg.Clusters)
	for i := range centers {
		centers[i] = geom.Pt(
			rng.Float64()*cfg.FieldSize,
			rng.Float64()*cfg.FieldSize,
			rng.Float64()*cfg.FieldSize,
		)
	}
	for i := 0; i < cfg.N; i++ {
		// Sample a cluster proportional to its Zipf weight.
		x := rng.Float64() * total
		ci := 0
		for ; ci < cfg.Clusters-1; ci++ {
			if x < weights[ci] {
				break
			}
			x -= weights[ci]
		}
		c := centers[ci]
		anchor := geom.Pt(
			c.X+rng.NormFloat64()*cfg.HubStd,
			c.Y+rng.NormFloat64()*cfg.HubStd,
			c.Z+rng.NormFloat64()*cfg.HubStd,
		)
		pts := make([]geom.Point, 0, cfg.M)
		for s := 0; s < cfg.M; s++ {
			pts = append(pts, anchor.Add(randUnit(rng).Scale(rng.Float64()*cfg.HubStd)))
		}
		ds.Objects = append(ds.Objects, Object{ID: i, Pts: pts})
	}
	return ds
}

// UniformConfig parameterises GenUniform, a skew-free control dataset
// used by tests and ablations.
type UniformConfig struct {
	N, M      int
	FieldSize float64
	Spread    float64 // object extent
	Seed      int64
}

// GenUniform generates objects whose anchors are uniform in the field
// and whose points are uniform inside a Spread-sized cube around the
// anchor.
func GenUniform(cfg UniformConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Name: "uniform"}
	for i := 0; i < cfg.N; i++ {
		anchor := geom.Pt(
			rng.Float64()*cfg.FieldSize,
			rng.Float64()*cfg.FieldSize,
			rng.Float64()*cfg.FieldSize,
		)
		pts := make([]geom.Point, 0, cfg.M)
		for s := 0; s < cfg.M; s++ {
			pts = append(pts, anchor.Add(geom.Pt(
				rng.Float64()*cfg.Spread,
				rng.Float64()*cfg.Spread,
				rng.Float64()*cfg.Spread,
			)))
		}
		ds.Objects = append(ds.Objects, Object{ID: i, Pts: pts})
	}
	return ds
}

// WithTimestamps adds synthetic generation times to every point of ds
// for the temporal variant (Appendix B): each object's points are
// stamped sequentially with the given tick, starting at a random offset
// in [0, horizon).
func WithTimestamps(ds *Dataset, tick, horizon float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	out := &Dataset{Name: ds.Name + "+t"}
	for i := range ds.Objects {
		o := ds.Objects[i]
		times := make([]float64, len(o.Pts))
		t0 := rng.Float64() * horizon
		for j := range times {
			times[j] = t0 + float64(j)*tick
		}
		out.Objects = append(out.Objects, Object{ID: i, Pts: o.Pts, Times: times})
	}
	return out
}

func randUnit(rng *rand.Rand) geom.Point {
	for {
		v := geom.Pt(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		if n := v.Norm(); n > 1e-9 {
			return v.Scale(1 / n)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Standard returns the five stand-in datasets of DESIGN.md §5 at the
// given scale factor (1.0 = defaults; 0.25 shrinks object counts for
// quick tests). The names follow the paper's Table I.
func Standard(scale float64) map[string]*Dataset {
	scaleN := func(n int) int {
		v := int(float64(n) * scale)
		return maxInt(v, 8)
	}
	nc := DefaultNeuron()
	nc.N = scaleN(nc.N)
	n2 := DefaultNeuron2()
	n2.N = scaleN(n2.N)
	b := DefaultBird()
	b.N = scaleN(b.N)
	b2 := DefaultBird2()
	b2.N = scaleN(b2.N)
	sy := DefaultSyn()
	sy.N = scaleN(sy.N)

	out := map[string]*Dataset{
		"Neuron":   GenNeuron(nc),
		"Neuron-2": GenNeuron(n2),
		"Bird":     GenTrajectory(b),
		"Bird-2":   GenTrajectory(b2),
		"Syn":      GenPowerLaw(sy),
	}
	for name, ds := range out {
		ds.Name = name
		if err := ds.Validate(); err != nil {
			panic(fmt.Sprintf("data: generator %s produced invalid dataset: %v", name, err))
		}
	}
	return out
}
