package data

import (
	"strings"
	"testing"

	"mio/internal/geom"
)

const birdsCSV = `tag,lon,lat,alt,ts
A,1.0,2.0,0.5,10
B,5.0,6.0,0.0,11
A,1.5,2.5,0.6,12
C,9.0,9.0,1.0,13
B,5.5,6.5,0.1,14
`

func TestReadCSVBasic(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader(birdsCSV), CSVColumns{
		Obj: "tag", X: "lon", Y: "lat", Z: "alt", T: "ts",
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 3 {
		t.Fatalf("n = %d", ds.N())
	}
	// Objects numbered by first appearance: A=0, B=1, C=2.
	a := ds.Objects[0]
	if len(a.Pts) != 2 || a.Pts[0] != geom.Pt(1, 2, 0.5) || a.Pts[1] != geom.Pt(1.5, 2.5, 0.6) {
		t.Fatalf("object A = %+v", a)
	}
	if a.Times[0] != 10 || a.Times[1] != 12 {
		t.Fatalf("object A times = %v", a.Times)
	}
	if len(ds.Objects[1].Pts) != 2 || len(ds.Objects[2].Pts) != 1 {
		t.Fatal("grouping wrong")
	}
}

func TestReadCSVPlanarNoTime(t *testing.T) {
	csvData := "id,x,y\nA,1,2\nA,3,4\n"
	ds, err := ReadCSV(strings.NewReader(csvData), CSVColumns{Obj: "id", X: "x", Y: "y"})
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 1 || ds.Objects[0].Temporal() {
		t.Fatalf("ds = %+v", ds.Objects[0])
	}
	if ds.Objects[0].Pts[0].Z != 0 {
		t.Fatal("z not zeroed")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		csv  string
		cols CSVColumns
	}{
		{"missing mapping", birdsCSV, CSVColumns{Obj: "tag"}},
		{"unknown obj column", birdsCSV, CSVColumns{Obj: "nope", X: "lon", Y: "lat"}},
		{"unknown x column", birdsCSV, CSVColumns{Obj: "tag", X: "nope", Y: "lat"}},
		{"unknown y column", birdsCSV, CSVColumns{Obj: "tag", X: "lon", Y: "nope"}},
		{"unknown z column", birdsCSV, CSVColumns{Obj: "tag", X: "lon", Y: "lat", Z: "nope"}},
		{"unknown t column", birdsCSV, CSVColumns{Obj: "tag", X: "lon", Y: "lat", T: "nope"}},
		{"bad number", "id,x,y\nA,one,2\n", CSVColumns{Obj: "id", X: "x", Y: "y"}},
		{"bad time", "id,x,y,t\nA,1,2,noon\n", CSVColumns{Obj: "id", X: "x", Y: "y", T: "t"}},
		{"empty", "id,x,y\n", CSVColumns{Obj: "id", X: "x", Y: "y"}},
		{"no header", "", CSVColumns{Obj: "id", X: "x", Y: "y"}},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.csv), c.cols); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestReadCSVRoundTripsThroughEnginePipeline(t *testing.T) {
	// CSV -> dataset -> save -> load keeps everything intact.
	ds, err := ReadCSV(strings.NewReader(birdsCSV), CSVColumns{
		Obj: "tag", X: "lon", Y: "lat", Z: "alt", T: "ts",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.TotalPoints() != 5 {
		t.Fatalf("points = %d", ds.TotalPoints())
	}
}
