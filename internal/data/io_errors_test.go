package data

import (
	"errors"
	"path/filepath"
	"testing"
)

// capWriter fails with errDiskFull once more than limit bytes have
// been written, emulating a device that fills up mid-save.
type capWriter struct {
	n, limit int
}

var errDiskFull = errors.New("synthetic disk full")

func (w *capWriter) Write(p []byte) (int, error) {
	if w.n+len(p) > w.limit {
		return 0, errDiskFull
	}
	w.n += len(p)
	return len(p), nil
}

func bigDataset() *Dataset {
	// ~2000 points: comfortably larger than bufio's 4 KiB buffer in
	// both encodings, so the underlying writer is guaranteed to be hit
	// before the final Flush.
	return GenUniform(UniformConfig{N: 200, M: 10, FieldSize: 500, Spread: 5, Seed: 21})
}

// TestWriteTextPropagatesWriterError is the regression test for the
// errcheck finding in WriteText: per-line Fprintf errors used to be
// dropped, so a failure was only (sticky-)reported by the final
// Flush; they now fail fast and must surface the writer's error.
func TestWriteTextPropagatesWriterError(t *testing.T) {
	err := WriteText(&capWriter{limit: 1 << 12}, bigDataset())
	if !errors.Is(err, errDiskFull) {
		t.Fatalf("WriteText on a full device returned %v, want errDiskFull", err)
	}
}

// TestWriteBinaryPropagatesWriterError is the twin regression test for
// the dropped bw.Write / bw.WriteString errors in WriteBinary.
func TestWriteBinaryPropagatesWriterError(t *testing.T) {
	err := WriteBinary(&capWriter{limit: 1 << 12}, bigDataset())
	if !errors.Is(err, errDiskFull) {
		t.Fatalf("WriteBinary on a full device returned %v, want errDiskFull", err)
	}
}

// TestWriteTextZeroBudget exercises the very first write failing (the
// header line), which the pre-fix code silently ignored until Flush.
func TestWriteTextZeroBudget(t *testing.T) {
	err := WriteText(&capWriter{limit: 0}, bigDataset())
	if !errors.Is(err, errDiskFull) {
		t.Fatalf("WriteText with no write budget returned %v, want errDiskFull", err)
	}
}

// TestSaveFileRoundTripAfterFix guards that the explicit Close-error
// handling in SaveFile did not disturb the happy path.
func TestSaveFileRoundTripAfterFix(t *testing.T) {
	ds := GenUniform(UniformConfig{N: 12, M: 4, FieldSize: 40, Spread: 3, Seed: 7})
	for _, name := range []string{"ds.bin", "ds.txt"} {
		path := filepath.Join(t.TempDir(), name)
		if err := SaveFile(path, ds); err != nil {
			t.Fatalf("SaveFile(%s): %v", name, err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatalf("LoadFile(%s): %v", name, err)
		}
		if got.N() != ds.N() || got.TotalPoints() != ds.TotalPoints() {
			t.Fatalf("%s round trip: got n=%d pts=%d, want n=%d pts=%d",
				name, got.N(), got.TotalPoints(), ds.N(), ds.TotalPoints())
		}
	}
}

// TestSaveFileBadPath guards the Create-error path.
func TestSaveFileBadPath(t *testing.T) {
	ds := GenUniform(UniformConfig{N: 3, M: 2, FieldSize: 10, Spread: 1, Seed: 1})
	if err := SaveFile(filepath.Join(t.TempDir(), "no", "such", "dir", "x.bin"), ds); err == nil {
		t.Fatal("SaveFile into a missing directory succeeded")
	}
}
