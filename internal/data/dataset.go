// Package data defines the object/dataset model shared by every
// algorithm in the repository, synthetic dataset generators standing in
// for the paper's real datasets (see DESIGN.md §5), text and binary
// serialisation, sampling and statistics.
package data

import (
	"fmt"
	"math/rand"

	"mio/internal/geom"
)

// Object is a spatial object: a set of points, optionally with one
// timestamp per point (used only by the temporal variant of Appendix
// B; Times is nil for purely spatial data). ID is the object's index in
// its dataset and doubles as its bit position in every bitset.
type Object struct {
	ID    int
	Pts   []geom.Point
	Times []float64
}

// Temporal reports whether the object carries timestamps.
func (o *Object) Temporal() bool { return o.Times != nil }

// Dataset is an in-memory, static collection of objects, as the paper
// assumes (§II-A). Object IDs always equal their slice index.
type Dataset struct {
	Objects []Object
	// Name labels the dataset in reports; it has no semantic meaning.
	Name string
}

// N returns the number of objects (the paper's n).
func (d *Dataset) N() int { return len(d.Objects) }

// TotalPoints returns the total number of points (the paper's n·m).
func (d *Dataset) TotalPoints() int {
	t := 0
	for i := range d.Objects {
		t += len(d.Objects[i].Pts)
	}
	return t
}

// AvgPoints returns the average number of points per object (the
// paper's m).
func (d *Dataset) AvgPoints() float64 {
	if d.N() == 0 {
		return 0
	}
	return float64(d.TotalPoints()) / float64(d.N())
}

// Bounds returns the bounding box of all points.
func (d *Dataset) Bounds() geom.Box {
	b := geom.EmptyBox()
	for i := range d.Objects {
		for _, p := range d.Objects[i].Pts {
			b = b.Expand(p)
		}
	}
	return b
}

// Validate checks structural invariants: ids match indices, no empty
// objects, and timestamp slices (when present) match point counts.
func (d *Dataset) Validate() error {
	for i := range d.Objects {
		o := &d.Objects[i]
		if o.ID != i {
			return fmt.Errorf("data: object at index %d has id %d", i, o.ID)
		}
		if len(o.Pts) == 0 {
			return fmt.Errorf("data: object %d has no points", i)
		}
		if o.Times != nil && len(o.Times) != len(o.Pts) {
			return fmt.Errorf("data: object %d has %d points but %d timestamps", i, len(o.Pts), len(o.Times))
		}
	}
	return nil
}

// Sample returns a new dataset holding a uniform sample of rate·n
// objects, re-numbered from zero, drawn deterministically from seed.
// This is the scalability-test workload of Fig. 6.
func (d *Dataset) Sample(rate float64, seed int64) *Dataset {
	if rate >= 1 {
		return d.Clone()
	}
	rng := rand.New(rand.NewSource(seed))
	want := int(rate * float64(d.N()))
	perm := rng.Perm(d.N())[:want]
	out := &Dataset{Name: fmt.Sprintf("%s[s=%.2f]", d.Name, rate)}
	out.Objects = make([]Object, 0, want)
	for _, idx := range perm {
		o := d.Objects[idx]
		out.Objects = append(out.Objects, Object{
			ID:    len(out.Objects),
			Pts:   o.Pts,
			Times: o.Times,
		})
	}
	return out
}

// Clone returns a copy of the dataset that shares point storage but
// owns its object slice.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{Name: d.Name, Objects: append([]Object(nil), d.Objects...)}
	return out
}

// Stats summarises a dataset in the shape of the paper's Table I.
type Stats struct {
	Name        string
	N           int
	M           float64
	TotalPoints int
	Bounds      geom.Box
}

// Summary computes the dataset statistics.
func (d *Dataset) Summary() Stats {
	return Stats{
		Name:        d.Name,
		N:           d.N(),
		M:           d.AvgPoints(),
		TotalPoints: d.TotalPoints(),
		Bounds:      d.Bounds(),
	}
}

// String formats the stats as one row of Table I.
func (s Stats) String() string {
	return fmt.Sprintf("%-12s n=%-8d m=%-8.1f nm=%d", s.Name, s.N, s.M, s.TotalPoints)
}
