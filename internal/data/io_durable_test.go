package data

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mio/internal/durable"
	"mio/internal/fault"
)

// TestSaveFileAtomicUnderCrash is the satellite regression: a
// kill-injected partial write must never replace a valid previous
// file, for the bare text path and the binary path alike.
func TestSaveFileAtomicUnderCrash(t *testing.T) {
	old := GenUniform(UniformConfig{N: 10, M: 4, FieldSize: 40, Spread: 3, Seed: 1})
	next := GenUniform(UniformConfig{N: 30, M: 4, FieldSize: 40, Spread: 3, Seed: 2})
	kinds := []struct {
		point string
		kind  fault.Kind
	}{
		{fault.PointIOWrite, fault.KindShortWrite},
		{fault.PointIOSync, fault.KindCrash},
		{fault.PointIORename, fault.KindCrash},
		{fault.PointIORename, fault.KindError},
	}
	for _, name := range []string{"ds.bin", "ds.txt"} {
		for _, tc := range kinds {
			t.Run(name+"/"+tc.point+"/"+tc.kind.String(), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), name)
				if err := SaveFile(path, old); err != nil {
					t.Fatal(err)
				}
				reg := fault.New(1)
				reg.Arm(fault.Rule{Point: tc.point, Kind: tc.kind, P: 1})
				if err := SaveFileIO(path, next, durable.IO{Faults: reg}); !errors.Is(err, fault.ErrInjected) {
					t.Fatalf("injected save returned %v", err)
				}
				got, verified, err := LoadFileVerified(path)
				if err != nil {
					t.Fatalf("previous file no longer loads: %v", err)
				}
				if got.N() != old.N() {
					t.Fatalf("previous file replaced: %d objects, want %d", got.N(), old.N())
				}
				if name == "ds.bin" && !verified {
					t.Error("binary previous file lost its envelope")
				}
			})
		}
	}
}

func TestLoadFileVerifiedFlags(t *testing.T) {
	ds := GenUniform(UniformConfig{N: 8, M: 3, FieldSize: 30, Spread: 2, Seed: 5})
	dir := t.TempDir()

	// New-format binary: enveloped, verified.
	bin := filepath.Join(dir, "new.bin")
	if err := SaveFile(bin, ds); err != nil {
		t.Fatal(err)
	}
	if got, verified, err := LoadFileVerified(bin); err != nil || !verified || got.N() != ds.N() {
		t.Fatalf("enveloped binary: n=%v verified=%v err=%v", got.N(), verified, err)
	}

	// Legacy binary (raw WriteBinary, the pre-envelope format): loads,
	// but flagged unverified.
	legacy := filepath.Join(dir, "legacy.bin")
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(legacy, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, verified, err := LoadFileVerified(legacy); err != nil || verified || got.N() != ds.N() {
		t.Fatalf("legacy binary: n=%v verified=%v err=%v, want unverified load", got.N(), verified, err)
	}

	// Text: loads unverified.
	txt := filepath.Join(dir, "ds.txt")
	if err := SaveFile(txt, ds); err != nil {
		t.Fatal(err)
	}
	if _, verified, err := LoadFileVerified(txt); err != nil || verified {
		t.Fatalf("text: verified=%v err=%v, want unverified load", verified, err)
	}
}

// TestLoadFileRejectsCorruptEnvelope: a file that claims envelope
// protection and fails it must error (wrapping durable.ErrCorrupt),
// never fall back to an unverified decode of garbage.
func TestLoadFileRejectsCorruptEnvelope(t *testing.T) {
	ds := GenUniform(UniformConfig{N: 8, M: 3, FieldSize: 30, Spread: 2, Seed: 5})
	path := filepath.Join(t.TempDir(), "ds.bin")
	if err := SaveFile(path, ds); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte deep in the point data.
	raw[len(raw)-9] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadFileVerified(path); !errors.Is(err, durable.ErrCorrupt) {
		t.Fatalf("bit-flipped file loaded: err=%v, want ErrCorrupt", err)
	}
	if _, err := LoadFile(path); !errors.Is(err, durable.ErrCorrupt) {
		t.Fatalf("LoadFile on bit-flipped file: %v", err)
	}
}
