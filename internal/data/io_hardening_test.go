package data

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"testing"
)

// noSeek hides the Seeker interface of the underlying reader, forcing
// ReadBinary onto its unsized (allocation-clamped) path.
type noSeek struct{ r io.Reader }

func (n noSeek) Read(p []byte) (int, error) { return n.r.Read(p) }

// binHeader builds the start of a binary dataset file: magic, name
// length, name, object count.
func binHeader(name string, n uint64) []byte {
	var buf bytes.Buffer
	var u [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(u[:], v)
		buf.Write(u[:])
	}
	put(binMagic)
	put(uint64(len(name)))
	buf.WriteString(name)
	put(n)
	return buf.Bytes()
}

// TestReadBinaryRejectsLyingHeaders feeds small files whose headers
// claim enormous payloads. Every one must be rejected — on the sized
// path up front, on the unsized path without large allocations — and
// never make the decoder trust a count the input cannot back.
func TestReadBinaryRejectsLyingHeaders(t *testing.T) {
	var u8 [8]byte
	le := func(v uint64) []byte {
		binary.LittleEndian.PutUint64(u8[:], v)
		return append([]byte(nil), u8[:]...)
	}
	cases := map[string][]byte{
		// 40-byte file claiming 2^40 objects.
		"huge object count": binHeader("x", 1<<40),
		// One object claiming 2^40 points.
		"huge point count": append(binHeader("x", 1),
			append(le(1<<40), le(0)...)...),
		// Name longer than the entire file.
		"name beyond input": append(append(le(binMagic), le(1<<19)...), 'x'),
		// hasTimes must be 0 or 1.
		"bad hasTimes flag": append(binHeader("x", 1),
			append(le(0), le(7)...)...),
		// Claimed timestamped points at 32 bytes each don't fit.
		"temporal overflow": append(binHeader("x", 1),
			append(le(1<<30), le(1)...)...),
	}
	for label, in := range cases {
		if _, err := ReadBinary(bytes.NewReader(in)); err == nil {
			t.Errorf("%s: sized read accepted corrupt input", label)
		}
		if _, err := ReadBinary(noSeek{bytes.NewReader(in)}); err == nil {
			t.Errorf("%s: unsized read accepted corrupt input", label)
		}
	}
}

// TestReadBinaryUnsizedMatchesSized round-trips a real dataset through
// both paths.
func TestReadBinaryUnsizedMatchesSized(t *testing.T) {
	ds := WithTimestamps(GenUniform(UniformConfig{N: 12, M: 5, FieldSize: 50, Spread: 4, Seed: 5}), 1, 9, 3)
	ds.Name = "both-paths"
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	sized, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	unsized, err := ReadBinary(noSeek{bytes.NewReader(buf.Bytes())})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sized, unsized) {
		t.Fatal("sized and unsized decodes disagree")
	}
}

// FuzzReadBinary drives arbitrary bytes through both decode paths. The
// properties: no panic, the sized and unsized paths agree on
// accept/reject, and anything accepted is a valid dataset that both
// paths decode identically.
func FuzzReadBinary(f *testing.F) {
	ds := WithTimestamps(GenUniform(UniformConfig{N: 4, M: 3, FieldSize: 20, Spread: 2, Seed: 7}), 1, 5, 2)
	ds.Name = "seed"
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-7])
	f.Add(valid[:17])
	f.Add(binHeader("x", 1<<40))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, in []byte) {
		sized, errSized := ReadBinary(bytes.NewReader(in))
		unsized, errUnsized := ReadBinary(noSeek{bytes.NewReader(in)})
		if (errSized == nil) != (errUnsized == nil) {
			t.Fatalf("paths disagree: sized err=%v, unsized err=%v", errSized, errUnsized)
		}
		if errSized != nil {
			return
		}
		if err := sized.Validate(); err != nil {
			t.Fatalf("accepted dataset fails validation: %v", err)
		}
		if !reflect.DeepEqual(sized, unsized) {
			t.Fatal("sized and unsized decodes disagree")
		}
	})
}
