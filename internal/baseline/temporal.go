package baseline

import (
	"math"

	"mio/internal/data"
	"mio/internal/geom"
)

// TemporalNLScores is the brute-force oracle for the spatio-temporal
// variant (Appendix B): objects interact iff some point pair is within
// distance r and within δ in generation time.
func TemporalNLScores(ds *data.Dataset, r, delta float64) []int {
	n := ds.N()
	r2 := r * r
	scores := make([]int, n)
	for i := 0; i < n; i++ {
		oi := &ds.Objects[i]
		for j := i + 1; j < n; j++ {
			oj := &ds.Objects[j]
			if temporalInteracts(oi, oj, r2, delta) {
				scores[i]++
				scores[j]++
			}
		}
	}
	return scores
}

func temporalInteracts(a, b *data.Object, r2, delta float64) bool {
	for pi, p := range a.Pts {
		for qi, q := range b.Pts {
			if geom.Dist2(p, q) <= r2 && math.Abs(a.Times[pi]-b.Times[qi]) <= delta {
				return true
			}
		}
	}
	return false
}

// TemporalNL returns the k most interactive objects under the
// spatio-temporal definition.
func TemporalNL(ds *data.Dataset, r, delta float64, k int) []Scored {
	return TopKFromScores(TemporalNLScores(ds, r, delta), k)
}
