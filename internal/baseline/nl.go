// Package baseline implements the competitor algorithms the paper
// evaluates against BIGrid: the nested-loop algorithm NL (Algorithm 1),
// its kd-tree variant NL-kd (footnote 9), the simple-grid algorithm SG
// (a TOUCH-style in-memory spatial join specialised for MIO queries),
// and the theoretical O(n log n) algorithm of §II-B with its quadratic
// preprocessing. All of them are exact, so they double as oracles for
// the correctness tests of the core engine.
package baseline

import (
	"sort"

	"mio/internal/data"
	"mio/internal/geom"
	"mio/internal/kdtree"
	"mio/internal/parallel"
)

// Scored pairs an object id with its exact score (mirrors core.Scored
// without importing it, to keep the dependency edges one-way).
type Scored struct {
	Obj   int
	Score int
}

// TopKFromScores converts a full score vector into the k best entries
// in non-increasing score order (ties by ascending id).
func TopKFromScores(scores []int, k int) []Scored {
	all := make([]Scored, len(scores))
	for i, s := range scores {
		all[i] = Scored{Obj: i, Score: s}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Score != all[b].Score {
			return all[a].Score > all[b].Score
		}
		return all[a].Obj < all[b].Obj
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// objCoords is one object's point set flattened into SoA coordinate
// arrays, the layout the geom batch kernels consume. NL touches every
// object n-1 times, so the one-time flattening amortises immediately.
type objCoords struct {
	xs, ys, zs []float64
}

// flattenObjects flattens every object of ds into objCoords, backed by
// three dataset-wide arrays (one allocation per axis).
func flattenObjects(ds *data.Dataset) []objCoords {
	total := 0
	for i := range ds.Objects {
		total += len(ds.Objects[i].Pts)
	}
	xs := make([]float64, 0, total)
	ys := make([]float64, 0, total)
	zs := make([]float64, 0, total)
	flat := make([]objCoords, ds.N())
	for i := range ds.Objects {
		lo := len(xs)
		for _, p := range ds.Objects[i].Pts {
			xs = append(xs, p.X)
			ys = append(ys, p.Y)
			zs = append(zs, p.Z)
		}
		flat[i] = objCoords{xs: xs[lo:], ys: ys[lo:], zs: zs[lo:]}
	}
	return flat
}

// interacts reports whether two objects have a point pair within r,
// with the early break of Algorithm 1 (lines 7-12): the AnyWithin2
// kernel exits on the first point of b within r of a point of a.
func interacts(a *data.Object, b objCoords, r2 float64) bool {
	for _, p := range a.Pts {
		if geom.AnyWithin2(p.X, p.Y, p.Z, b.xs, b.ys, b.zs, r2) {
			return true
		}
	}
	return false
}

// NLScores computes the exact score of every object with the
// nested-loop algorithm (Algorithm 1): O(n²m²) worst case, with the
// early break once a pair interacts.
func NLScores(ds *data.Dataset, r float64) []int {
	n := ds.N()
	r2 := r * r
	flat := flattenObjects(ds)
	scores := make([]int, n)
	for i := 0; i < n; i++ {
		oi := &ds.Objects[i]
		for j := i + 1; j < n; j++ {
			if interacts(oi, flat[j], r2) {
				scores[i]++
				scores[j]++
			}
		}
	}
	return scores
}

// NL runs the nested-loop algorithm and returns the k most interactive
// objects.
func NL(ds *data.Dataset, r float64, k int) []Scored {
	return TopKFromScores(NLScores(ds, r), k)
}

// NLParallel parallelises the outer object loop of Algorithm 1 over t
// cores. As §V-C discusses, the per-pair cost is unknowable in advance,
// so the partition is a plain round-robin and load balance is poor —
// reproducing that behaviour is the point.
func NLParallel(ds *data.Dataset, r float64, k, t int) []Scored {
	n := ds.N()
	r2 := r * r
	flat := flattenObjects(ds)
	partial := make([][]int, t)
	parallel.Run(t, func(w int) {
		sc := make([]int, n)
		for i := w; i < n; i += t {
			oi := &ds.Objects[i]
			for j := i + 1; j < n; j++ {
				if interacts(oi, flat[j], r2) {
					sc[i]++
					sc[j]++
				}
			}
		}
		partial[w] = sc
	})
	scores := make([]int, n)
	for _, sc := range partial {
		for i, v := range sc {
			scores[i] += v
		}
	}
	return TopKFromScores(scores, k)
}

// NLKDScores is the kd-tree NL variant of footnote 9: each object's
// points are indexed by a kd-tree, and the pairwise test becomes an
// existence query, giving O(n²·m·log m).
func NLKDScores(ds *data.Dataset, r float64) []int {
	n := ds.N()
	trees := make([]*kdtree.Tree, n)
	for i := 0; i < n; i++ {
		trees[i] = kdtree.Build(ds.Objects[i].Pts)
	}
	scores := make([]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			// Probe the smaller object's points against the larger
			// object's tree.
			pi, tj := ds.Objects[i].Pts, trees[j]
			if len(ds.Objects[j].Pts) < len(pi) {
				pi, tj = ds.Objects[j].Pts, trees[i]
			}
			for _, p := range pi {
				if tj.WithinExists(p, r) {
					scores[i]++
					scores[j]++
					break
				}
			}
		}
	}
	return scores
}

// NLKD runs the kd-tree NL variant and returns the k most interactive
// objects.
func NLKD(ds *data.Dataset, r float64, k int) []Scored {
	return TopKFromScores(NLKDScores(ds, r), k)
}
