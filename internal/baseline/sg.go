package baseline

import (
	"mio/internal/bitmap"
	"mio/internal/data"
	"mio/internal/geom"
	"mio/internal/grid"
	"mio/internal/parallel"
)

// sgCell is a simple-grid cell: posting lists only, no bitsets — SG is
// the state-of-the-art spatial-join competitor (TOUCH-style) optimised
// for the MIO problem, but without BIGrid's bounding machinery. soa is
// the frozen SoA image of postings, built eagerly at the end of
// BuildSG: unlike the core engine's per-query grid, SG scans its whole
// grid once per object, so every cell repays the flattening n times
// over.
type sgCell struct {
	postings []grid.Posting
	soa      *grid.PostingBlock
}

// SGIndex is the simple grid the SG algorithm builds online: one
// uniform grid with cell width r, so all points within r of a point lie
// in its cell or the 26 adjacent cells.
type SGIndex struct {
	width float64
	cells map[grid.Key]*sgCell
}

// BuildSG builds the simple grid for threshold r. Like the BIGrid
// builder it memoises the last (key, cell) pair, since consecutive
// points of path-like objects usually share a cell.
func BuildSG(ds *data.Dataset, r float64) *SGIndex {
	idx := &SGIndex{width: r, cells: make(map[grid.Key]*sgCell)}
	var lastKey grid.Key
	var lastCell *sgCell
	for i := range ds.Objects {
		for j, p := range ds.Objects[i].Pts {
			k := grid.KeyFor(p, r)
			c := lastCell
			if c == nil || k != lastKey {
				var ok bool
				c, ok = idx.cells[k]
				if !ok {
					c = &sgCell{}
					idx.cells[k] = c
				}
				lastKey, lastCell = k, c
			}
			if n := len(c.postings); n > 0 && int(c.postings[n-1].Obj) == i {
				c.postings[n-1].Pts = append(c.postings[n-1].Pts, p)
				c.postings[n-1].Idx = append(c.postings[n-1].Idx, int32(j))
			} else {
				c.postings = append(c.postings, grid.Posting{
					Obj: int32(i), Pts: []geom.Point{p}, Idx: []int32{int32(j)},
				})
			}
		}
	}
	for _, c := range idx.cells {
		c.soa = grid.NewPostingBlock(c.postings)
	}
	return idx
}

// Cells returns the number of non-empty cells.
func (idx *SGIndex) Cells() int { return len(idx.cells) }

// SizeBytes estimates the grid's memory footprint.
func (idx *SGIndex) SizeBytes() int {
	const entryOverhead = 16 + 8 + 24
	total := 0
	for _, c := range idx.cells {
		total += entryOverhead
		for _, p := range c.postings {
			total += 16 + len(p.Pts)*24 + len(p.Idx)*4
		}
		if c.soa != nil {
			total += c.soa.SizeBytes()
		}
	}
	return total
}

// scoreObject computes τ(o_i) by probing the 27-cell neighbourhood of
// every point, marking found interactions in seen to skip repeats.
func (idx *SGIndex) scoreObject(ds *data.Dataset, i int, r2 float64, seen *bitmap.Scratch) int {
	seen.Reset()
	seen.Set(i)
	var neigh [27]grid.Key
	for _, p := range ds.Objects[i].Pts {
		k := grid.KeyFor(p, idx.width)
		for _, nk := range k.NeighborsAndSelf(neigh[:0]) {
			c := idx.cells[nk]
			if c == nil {
				continue
			}
			soa := c.soa
			for pi := range c.postings {
				obj := int(c.postings[pi].Obj)
				if seen.Test(obj) {
					continue
				}
				// One box comparison rejects a whole posting; postings
				// that survive it are scanned with the batch kernel,
				// which keeps the scalar loop's exit-on-first-hit.
				if soa.Boxes[pi].Dist2To(p) > r2 {
					continue
				}
				xs, ys, zs := soa.Points(pi)
				if geom.AnyWithin2(p.X, p.Y, p.Z, xs, ys, zs, r2) {
					seen.Set(obj)
				}
			}
		}
	}
	return seen.Cardinality() - 1
}

// SGScores builds the simple grid and computes every object's exact
// score with it.
func SGScores(ds *data.Dataset, r float64) []int {
	idx := BuildSG(ds, r)
	n := ds.N()
	scores := make([]int, n)
	seen := bitmap.NewScratch(n)
	r2 := r * r
	for i := 0; i < n; i++ {
		scores[i] = idx.scoreObject(ds, i, r2, seen)
	}
	return scores
}

// SG runs the simple-grid algorithm and returns the k most interactive
// objects.
func SG(ds *data.Dataset, r float64, k int) []Scored {
	return TopKFromScores(SGScores(ds, r), k)
}

// SGParallel parallelises SG's per-object scoring by hash-partitioning
// objects across t cores (§V-C). Skewed data defeats this partition —
// reproducing that is the point of Fig. 9's SG curves.
func SGParallel(ds *data.Dataset, r float64, k, t int) []Scored {
	idx := BuildSG(ds, r)
	n := ds.N()
	scores := make([]int, n)
	r2 := r * r
	parallel.Run(t, func(w int) {
		seen := bitmap.NewScratch(n)
		for i := w; i < n; i += t {
			scores[i] = idx.scoreObject(ds, i, r2, seen)
		}
	})
	return TopKFromScores(scores, k)
}
