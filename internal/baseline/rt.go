package baseline

import (
	"mio/internal/bitmap"
	"mio/internal/data"
	"mio/internal/geom"
	"mio/internal/rtree"
)

// This file implements the MBR-based competitors of §II-B. The paper
// dismisses R-trees because point-set objects have complex, elongated
// shapes whose bounding rectangles enclose mostly empty space; these
// two algorithms exist to make that argument measurable.

// RTObjectStats reports how selective the object-MBR filter was.
type RTObjectStats struct {
	// CandidatePairs is the number of object pairs whose MBRs pass the
	// distance-r filter; VerifiedPairs of them had to be checked
	// point-by-point; InteractingPairs actually interact. A filter
	// passing nearly all pairs degenerates to the nested loop, which is
	// the paper's point.
	CandidatePairs   int
	InteractingPairs int
}

// RTObjectScores computes exact scores with an object-level R-tree:
// one MBR per object, candidate pairs from an MBR-distance join,
// pairwise point verification for survivors.
func RTObjectScores(ds *data.Dataset, r float64) ([]int, RTObjectStats) {
	n := ds.N()
	entries := make([]rtree.Entry, n)
	for i := range ds.Objects {
		entries[i] = rtree.Entry{Box: geom.Bound(ds.Objects[i].Pts), ID: int32(i)}
	}
	tree := rtree.Build(entries, 0)
	scores := make([]int, n)
	var st RTObjectStats
	r2 := r * r
	flat := flattenObjects(ds)
	for i := 0; i < n; i++ {
		oi := &ds.Objects[i]
		box := entries[i].Box
		tree.SearchBoxWithin(box, r, func(e rtree.Entry) bool {
			j := int(e.ID)
			if j <= i { // each unordered pair once
				return true
			}
			st.CandidatePairs++
			if interacts(oi, flat[j], r2) {
				st.InteractingPairs++
				scores[i]++
				scores[j]++
			}
			return true
		})
	}
	return scores, st
}

// RTObject runs the object-MBR algorithm and returns the k most
// interactive objects.
func RTObject(ds *data.Dataset, r float64, k int) []Scored {
	scores, _ := RTObjectScores(ds, r)
	return TopKFromScores(scores, k)
}

// RTPointScores computes exact scores with a point-level R-tree: every
// point is indexed with its object id, and each object's points issue
// ball queries, skipping objects already found. This is the fair
// tree-shaped analogue of SG.
func RTPointScores(ds *data.Dataset, r float64) []int {
	n := ds.N()
	total := ds.TotalPoints()
	entries := make([]rtree.Entry, 0, total)
	for i := range ds.Objects {
		for _, p := range ds.Objects[i].Pts {
			entries = append(entries, rtree.Entry{
				Box: geom.Box{Min: p, Max: p},
				ID:  int32(i),
			})
		}
	}
	tree := rtree.Build(entries, 0)
	scores := make([]int, n)
	seen := bitmap.NewScratch(n)
	for i := 0; i < n; i++ {
		seen.Reset()
		seen.Set(i)
		for _, p := range ds.Objects[i].Pts {
			tree.SearchWithin(p, r, func(e rtree.Entry) bool {
				j := int(e.ID)
				if !seen.Test(j) {
					// Entry boxes are points, so passing the box filter
					// means the point itself is within r.
					seen.Set(j)
				}
				return true
			})
		}
		scores[i] = seen.Cardinality() - 1
	}
	return scores
}

// RTPoint runs the point-level R-tree algorithm and returns the k most
// interactive objects.
func RTPoint(ds *data.Dataset, r float64, k int) []Scored {
	return TopKFromScores(RTPointScores(ds, r), k)
}
