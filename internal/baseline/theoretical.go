package baseline

import (
	"sort"

	"mio/internal/data"
	"mio/internal/kdtree"
	"mio/internal/parallel"
)

// Theoretical is the O(n log n)-per-query algorithm of §II-B: for every
// object it precomputes the sorted array A_i of closest-pair distances
// to every other object, after which τ(o_i) for any r is one binary
// search. The preprocessing costs O(n²(m log m + log n)) time and the
// index O(n²) space — the paper's point is exactly that this is
// impractical, and the type exists to demonstrate it (and to serve as
// one more exact oracle on small inputs).
type Theoretical struct {
	// dists[i] is A_i: closest-pair distances from object i to every
	// other object, sorted ascending.
	dists [][]float64
}

// BuildTheoretical runs the quadratic preprocessing over t cores
// (t < 2 means serial). Keep the input small: the cost is O(n²·m·log m).
func BuildTheoretical(ds *data.Dataset, t int) *Theoretical {
	n := ds.N()
	trees := make([]*kdtree.Tree, n)
	for i := 0; i < n; i++ {
		trees[i] = kdtree.Build(ds.Objects[i].Pts)
	}
	// closest[i][j] for j > i, computed once per unordered pair.
	th := &Theoretical{dists: make([][]float64, n)}
	for i := range th.dists {
		th.dists[i] = make([]float64, 0, n-1)
	}
	type pairDist struct {
		i, j int
		d    float64
	}
	rows := make([][]pairDist, n)
	if t < 1 {
		t = 1
	}
	parallel.Run(t, func(w int) {
		for i := w; i < n; i += t {
			row := make([]pairDist, 0, n-i-1)
			for j := i + 1; j < n; j++ {
				pi, tj := ds.Objects[i].Pts, trees[j]
				if len(ds.Objects[j].Pts) < len(pi) {
					pi, tj = ds.Objects[j].Pts, trees[i]
				}
				row = append(row, pairDist{i: i, j: j, d: tj.MinDistBetween(pi)})
			}
			rows[i] = row
		}
	})
	for _, row := range rows {
		for _, pd := range row {
			th.dists[pd.i] = append(th.dists[pd.i], pd.d)
			th.dists[pd.j] = append(th.dists[pd.j], pd.d)
		}
	}
	for i := range th.dists {
		sort.Float64s(th.dists[i])
	}
	return th
}

// Score returns τ(o_i) for threshold r by binary search on A_i.
func (th *Theoretical) Score(i int, r float64) int {
	return sort.SearchFloat64s(th.dists[i], nextAfter(r))
}

// nextAfter nudges r up so the binary search keeps distances exactly
// equal to r (the predicate is dist ≤ r).
func nextAfter(r float64) float64 {
	// SearchFloat64s finds the first index with dists[idx] >= x; using
	// x just above r counts all entries <= r.
	return r * (1 + 1e-12)
}

// Query answers the top-k MIO query in O(n log n).
func (th *Theoretical) Query(r float64, k int) []Scored {
	scores := make([]int, len(th.dists))
	for i := range th.dists {
		scores[i] = th.Score(i, r)
	}
	return TopKFromScores(scores, k)
}

// SizeBytes returns the O(n²) index footprint.
func (th *Theoretical) SizeBytes() int {
	total := 0
	for _, d := range th.dists {
		total += 24 + len(d)*8
	}
	return total
}
