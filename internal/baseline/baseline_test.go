package baseline

import (
	"math"
	"reflect"
	"testing"

	"mio/internal/data"
	"mio/internal/geom"
)

// tiny fixture with hand-computable interactions:
//
//	o0: points near origin
//	o1: one point within 1.5 of o0
//	o2: far away cluster, within 2 of o3
//	o3: far away cluster
func fixture() *data.Dataset {
	return &data.Dataset{
		Name: "fixture",
		Objects: []data.Object{
			{ID: 0, Pts: []geom.Point{geom.Pt(0, 0, 0), geom.Pt(1, 0, 0)}},
			{ID: 1, Pts: []geom.Point{geom.Pt(2, 0, 0)}},
			{ID: 2, Pts: []geom.Point{geom.Pt(100, 0, 0)}},
			{ID: 3, Pts: []geom.Point{geom.Pt(100, 1.5, 0)}},
		},
	}
}

func TestNLScoresFixture(t *testing.T) {
	ds := fixture()
	// r=1: o0-o1 interact (dist 1 between (1,0,0) and (2,0,0)).
	if got := NLScores(ds, 1); !reflect.DeepEqual(got, []int{1, 1, 0, 0}) {
		t.Fatalf("r=1 scores = %v", got)
	}
	// r=1.5: additionally o2-o3.
	if got := NLScores(ds, 1.5); !reflect.DeepEqual(got, []int{1, 1, 1, 1}) {
		t.Fatalf("r=1.5 scores = %v", got)
	}
	// r=0.5: nothing.
	if got := NLScores(ds, 0.5); !reflect.DeepEqual(got, []int{0, 0, 0, 0}) {
		t.Fatalf("r=0.5 scores = %v", got)
	}
}

func TestTopKFromScores(t *testing.T) {
	top := TopKFromScores([]int{3, 9, 9, 1}, 3)
	want := []Scored{{Obj: 1, Score: 9}, {Obj: 2, Score: 9}, {Obj: 0, Score: 3}}
	if !reflect.DeepEqual(top, want) {
		t.Fatalf("top = %v", top)
	}
	if got := TopKFromScores([]int{5}, 10); len(got) != 1 {
		t.Fatalf("k>n = %v", got)
	}
}

func randomDataset(seed int64) *data.Dataset {
	return data.GenUniform(data.UniformConfig{N: 60, M: 10, FieldSize: 120, Spread: 8, Seed: seed})
}

func TestAllBaselinesAgree(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		ds := randomDataset(seed)
		for _, r := range []float64{3, 8, 20} {
			nl := NLScores(ds, r)
			nlkd := NLKDScores(ds, r)
			sg := SGScores(ds, r)
			if !reflect.DeepEqual(nl, nlkd) {
				t.Fatalf("seed %d r=%g: NL %v vs NLKD %v", seed, r, nl, nlkd)
			}
			if !reflect.DeepEqual(nl, sg) {
				t.Fatalf("seed %d r=%g: NL %v vs SG %v", seed, r, nl, sg)
			}
		}
	}
}

func TestParallelBaselinesAgree(t *testing.T) {
	ds := randomDataset(7)
	r := 8.0
	want := NL(ds, r, 5)
	for _, workers := range []int{2, 4} {
		if got := NLParallel(ds, r, 5, workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("NLParallel(%d) = %v, want %v", workers, got, want)
		}
		if got := SGParallel(ds, r, 5, workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("SGParallel(%d) = %v, want %v", workers, got, want)
		}
	}
}

func TestTheoreticalMatchesNL(t *testing.T) {
	ds := randomDataset(9)
	th := BuildTheoretical(ds, 2)
	for _, r := range []float64{3, 8, 20} {
		want := NLScores(ds, r)
		for i := range want {
			if got := th.Score(i, r); got != want[i] {
				t.Fatalf("r=%g obj %d: theoretical %d, NL %d", r, i, got, want[i])
			}
		}
		if got := th.Query(r, 3); !reflect.DeepEqual(got, TopKFromScores(want, 3)) {
			t.Fatalf("r=%g: Query = %v", r, got)
		}
	}
	if th.SizeBytes() < ds.N()*ds.N()*8 {
		t.Errorf("theoretical index suspiciously small: %d bytes", th.SizeBytes())
	}
}

func TestSGIndexAccounting(t *testing.T) {
	ds := randomDataset(11)
	idx := BuildSG(ds, 8)
	if idx.Cells() == 0 {
		t.Fatal("no cells")
	}
	if idx.SizeBytes() <= 0 {
		t.Fatal("no size")
	}
}

func TestTemporalOracleConstraints(t *testing.T) {
	ds := &data.Dataset{
		Objects: []data.Object{
			{ID: 0, Pts: []geom.Point{geom.Pt(0, 0, 0)}, Times: []float64{0}},
			{ID: 1, Pts: []geom.Point{geom.Pt(1, 0, 0)}, Times: []float64{5}},
			{ID: 2, Pts: []geom.Point{geom.Pt(0.5, 0, 0)}, Times: []float64{0.5}},
		},
	}
	// Spatially all within r=2. Temporal δ=1: only 0-2 qualify.
	if got := TemporalNLScores(ds, 2, 1); !reflect.DeepEqual(got, []int{1, 0, 1}) {
		t.Fatalf("δ=1 scores = %v", got)
	}
	// δ=10: all pairs.
	if got := TemporalNLScores(ds, 2, 10); !reflect.DeepEqual(got, []int{2, 2, 2}) {
		t.Fatalf("δ=10 scores = %v", got)
	}
	// Exactly δ apart counts (≤).
	if got := TemporalNLScores(ds, 2, 4.5); !reflect.DeepEqual(got, []int{1, 1, 2}) {
		t.Fatalf("δ=4.5 scores = %v", got)
	}
	if got := TemporalNL(ds, 2, 10, 1); got[0].Score != 2 {
		t.Fatalf("TemporalNL = %v", got)
	}
}

func TestInteractsBoundaryInclusive(t *testing.T) {
	a := &data.Object{Pts: []geom.Point{geom.Pt(0, 0, 0)}}
	b := objCoords{xs: []float64{3}, ys: []float64{4}, zs: []float64{0}}
	if !interacts(a, b, 25) { // dist exactly 5, r²=25
		t.Fatal("boundary distance not inclusive")
	}
	if interacts(a, b, 25-1e-9) {
		t.Fatal("beyond-boundary counted")
	}
	if math.Sqrt(25) != 5 {
		t.Fatal("sanity")
	}
}

func TestRTBaselinesAgreeWithNL(t *testing.T) {
	ds := randomDataset(21)
	for _, r := range []float64{3, 8, 20} {
		nl := NLScores(ds, r)
		rtObj, st := RTObjectScores(ds, r)
		if !reflect.DeepEqual(nl, rtObj) {
			t.Fatalf("r=%g: RTObject %v vs NL %v", r, rtObj, nl)
		}
		if st.CandidatePairs < st.InteractingPairs {
			t.Fatalf("r=%g: stats inconsistent: %+v", r, st)
		}
		rtPt := RTPointScores(ds, r)
		if !reflect.DeepEqual(nl, rtPt) {
			t.Fatalf("r=%g: RTPoint %v vs NL %v", r, rtPt, nl)
		}
		if got := RTObject(ds, r, 3); !reflect.DeepEqual(got, TopKFromScores(nl, 3)) {
			t.Fatalf("r=%g: RTObject topk = %v", r, got)
		}
		if got := RTPoint(ds, r, 3); !reflect.DeepEqual(got, TopKFromScores(nl, 3)) {
			t.Fatalf("r=%g: RTPoint topk = %v", r, got)
		}
	}
}

func TestRTObjectFilterDegeneratesOnElongatedObjects(t *testing.T) {
	// §II-B's argument: elongated objects make the MBR filter useless.
	// Neuron-like arbors criss-cross, so nearly every MBR pair passes
	// even though far fewer pairs interact.
	ds := data.GenNeuron(data.NeuronConfig{
		N: 40, M: 200, Clusters: 2, FieldSize: 120, ClusterStd: 20, StepLen: 1, Branches: 5, Seed: 23,
	})
	r := 2.0
	scores, st := RTObjectScores(ds, r)
	interacting := 0
	for _, s := range scores {
		interacting += s
	}
	interacting /= 2
	if st.CandidatePairs < 2*interacting {
		t.Skipf("filter unexpectedly selective: %d candidates, %d interacting", st.CandidatePairs, interacting)
	}
	// The point of the test: the filter passes far more pairs than
	// interact, confirming the paper's rationale for grids over MBRs.
	if st.CandidatePairs == 0 {
		t.Fatal("no candidates at all")
	}
	t.Logf("MBR filter: %d candidate pairs for %d interacting (%.1fx overshoot)",
		st.CandidatePairs, interacting, float64(st.CandidatePairs)/float64(maxPairs(interacting, 1)))
}

func maxPairs(a, b int) int {
	if a > b {
		return a
	}
	return b
}
