package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"mio/internal/geom"
)

func randEntries(rng *rand.Rand, n int, spread float64) []Entry {
	out := make([]Entry, n)
	for i := range out {
		p := geom.Pt(rng.Float64()*spread, rng.Float64()*spread, rng.Float64()*spread)
		out[i] = Entry{Box: geom.Box{Min: p, Max: p}, ID: int32(i)}
	}
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil, 0)
	if tr.Len() != 0 || tr.Depth() != 0 {
		t.Fatal("empty tree wrong")
	}
	tr.SearchWithin(geom.Pt(0, 0, 0), 100, func(Entry) bool {
		t.Fatal("visited entry in empty tree")
		return true
	})
}

func TestSingleEntry(t *testing.T) {
	e := Entry{Box: geom.Box{Min: geom.Pt(1, 1, 1), Max: geom.Pt(1, 1, 1)}, ID: 7}
	tr := Build([]Entry{e}, 0)
	if tr.Len() != 1 || tr.Depth() != 1 {
		t.Fatalf("len=%d depth=%d", tr.Len(), tr.Depth())
	}
	found := 0
	tr.SearchWithin(geom.Pt(0, 0, 0), 2, func(got Entry) bool {
		if got.ID != 7 {
			t.Fatalf("id = %d", got.ID)
		}
		found++
		return true
	})
	if found != 1 {
		t.Fatalf("found = %d", found)
	}
	tr.SearchWithin(geom.Pt(0, 0, 0), 1, func(Entry) bool {
		t.Fatal("entry outside radius visited")
		return true
	})
}

func TestSearchWithinAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(800)
		entries := randEntries(rng, n, 100)
		tr := Build(entries, 1+rng.Intn(31))
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
		for probe := 0; probe < 20; probe++ {
			p := geom.Pt(rng.Float64()*120-10, rng.Float64()*120-10, rng.Float64()*120-10)
			r := rng.Float64() * 25
			want := map[int32]bool{}
			for _, e := range entries {
				if geom.Dist2(p, e.Box.Min) <= r*r {
					want[e.ID] = true
				}
			}
			got := map[int32]bool{}
			tr.SearchWithin(p, r, func(e Entry) bool {
				got[e.ID] = true
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("trial %d: got %d entries, want %d", trial, len(got), len(want))
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("trial %d: missing id %d", trial, id)
				}
			}
		}
	}
}

func TestSearchBoxWithinAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Entries with real extents.
	n := 300
	entries := make([]Entry, n)
	for i := range entries {
		lo := geom.Pt(rng.Float64()*80, rng.Float64()*80, rng.Float64()*80)
		hi := lo.Add(geom.Pt(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10))
		entries[i] = Entry{Box: geom.Box{Min: lo, Max: hi}, ID: int32(i)}
	}
	tr := Build(entries, 8)
	for probe := 0; probe < 30; probe++ {
		lo := geom.Pt(rng.Float64()*80, rng.Float64()*80, rng.Float64()*80)
		q := geom.Box{Min: lo, Max: lo.Add(geom.Pt(5, 5, 5))}
		r := rng.Float64() * 15
		want := 0
		for _, e := range entries {
			if boxDist2(e.Box, q) <= r*r {
				want++
			}
		}
		got := 0
		tr.SearchBoxWithin(q, r, func(Entry) bool { got++; return true })
		if got != want {
			t.Fatalf("probe %d: got %d, want %d", probe, got, want)
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := Build(randEntries(rng, 500, 10), 8)
	visited := 0
	tr.SearchWithin(geom.Pt(5, 5, 5), 100, func(Entry) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Fatalf("visited = %d", visited)
	}
}

func TestTreeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := Build(randEntries(rng, 10000, 1000), 16)
	// 10000 entries at fanout 16: depth must be ~log16(10000/16)+1 ≈ 4,
	// certainly not degenerate.
	if d := tr.Depth(); d < 3 || d > 6 {
		t.Fatalf("depth = %d", d)
	}
}

func TestBoxDist2(t *testing.T) {
	a := geom.Box{Min: geom.Pt(0, 0, 0), Max: geom.Pt(1, 1, 1)}
	b := geom.Box{Min: geom.Pt(0.5, 0.5, 0.5), Max: geom.Pt(2, 2, 2)}
	if d := boxDist2(a, b); d != 0 {
		t.Fatalf("overlapping boxes dist %v", d)
	}
	c := geom.Box{Min: geom.Pt(3, 0, 0), Max: geom.Pt(4, 1, 1)}
	if d := boxDist2(a, c); d != 4 {
		t.Fatalf("face-gap dist %v, want 4", d)
	}
	e := geom.Box{Min: geom.Pt(3, 3, 3), Max: geom.Pt(4, 4, 4)}
	if d := boxDist2(a, e); d != 12 {
		t.Fatalf("corner-gap dist %v, want 12", d)
	}
	if boxDist2(a, c) != boxDist2(c, a) {
		t.Fatal("not symmetric")
	}
}

func TestStrPackCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 15, 16, 17, 100, 1000} {
		entries := randEntries(rng, n, 50)
		tr := Build(entries, 16)
		got := map[int32]bool{}
		tr.SearchWithin(geom.Pt(25, 25, 25), 1e9, func(e Entry) bool {
			got[e.ID] = true
			return true
		})
		if len(got) != n {
			ids := make([]int, 0, len(got))
			for id := range got {
				ids = append(ids, int(id))
			}
			sort.Ints(ids)
			t.Fatalf("n=%d: tree holds %d entries", n, len(got))
		}
	}
}
