// Package rtree implements a static, STR-bulk-loaded R-tree over boxed
// entries. It backs the MBR-based baselines of §II-B: the paper argues
// that R-trees are ineffective for point-set objects because complex
// object shapes produce "uselessly large rectangles with large empty
// spaces"; the baselines built on this package demonstrate that
// empirically.
package rtree

import (
	"math"
	"sort"

	"mio/internal/geom"
)

// Entry is one indexed item: a bounding box and an opaque payload id.
type Entry struct {
	Box geom.Box
	ID  int32
}

type node struct {
	box      geom.Box
	children []int32 // node indices; nil for leaves
	entries  []Entry // leaf payload
}

// Tree is an immutable R-tree.
type Tree struct {
	nodes []node
	root  int32
	size  int
}

// DefaultFanout is the node capacity used when Build is given a
// non-positive fanout.
const DefaultFanout = 16

// Build bulk-loads a tree from entries with the Sort-Tile-Recursive
// algorithm: entries are sorted into x-slabs, each slab into y-runs,
// each run into z-tiles of fanout entries.
func Build(entries []Entry, fanout int) *Tree {
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	t := &Tree{size: len(entries)}
	if len(entries) == 0 {
		t.root = -1
		return t
	}
	own := append([]Entry(nil), entries...)
	leaves := strPack(own, fanout, func(group []Entry) int32 {
		box := geom.EmptyBox()
		for _, e := range group {
			box = box.Union(e.Box)
		}
		t.nodes = append(t.nodes, node{box: box, entries: group})
		return int32(len(t.nodes) - 1)
	})
	t.root = t.buildUpper(leaves, fanout)
	return t
}

// buildUpper packs node ids level by level until one root remains.
func (t *Tree) buildUpper(ids []int32, fanout int) int32 {
	for len(ids) > 1 {
		// Pack child nodes by box centre with the same STR scheme.
		entries := make([]Entry, len(ids))
		for i, id := range ids {
			entries[i] = Entry{Box: t.nodes[id].box, ID: id}
		}
		ids = strPack(entries, fanout, func(group []Entry) int32 {
			box := geom.EmptyBox()
			children := make([]int32, len(group))
			for i, e := range group {
				box = box.Union(e.Box)
				children[i] = e.ID
			}
			t.nodes = append(t.nodes, node{box: box, children: children})
			return int32(len(t.nodes) - 1)
		})
	}
	return ids[0]
}

// strPack tiles entries into groups of fanout via x/y/z sorting and
// emits each group, returning the emitted ids.
func strPack(entries []Entry, fanout int, emit func([]Entry) int32) []int32 {
	n := len(entries)
	leafCount := (n + fanout - 1) / fanout
	slabCount := int(math.Ceil(math.Cbrt(float64(leafCount))))
	center := func(e Entry, a geom.Axis) float64 {
		return (e.Box.Min.Coord(a) + e.Box.Max.Coord(a)) / 2
	}
	sort.Slice(entries, func(i, j int) bool { return center(entries[i], geom.AxisX) < center(entries[j], geom.AxisX) })
	var ids []int32
	slabSize := (n + slabCount - 1) / slabCount
	for x := 0; x < n; x += slabSize {
		xe := entries[x:minInt(x+slabSize, n)]
		sort.Slice(xe, func(i, j int) bool { return center(xe[i], geom.AxisY) < center(xe[j], geom.AxisY) })
		runCount := int(math.Ceil(math.Sqrt(float64((len(xe) + fanout - 1) / fanout))))
		runSize := (len(xe) + runCount - 1) / runCount
		for y := 0; y < len(xe); y += runSize {
			ye := xe[y:minInt(y+runSize, len(xe))]
			sort.Slice(ye, func(i, j int) bool { return center(ye[i], geom.AxisZ) < center(ye[j], geom.AxisZ) })
			for z := 0; z < len(ye); z += fanout {
				ids = append(ids, emit(ye[z:minInt(z+fanout, len(ye))]))
			}
		}
	}
	return ids
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Len returns the number of indexed entries.
func (t *Tree) Len() int { return t.size }

// Depth returns the height of the tree (1 for a single leaf).
func (t *Tree) Depth() int {
	if t.root < 0 {
		return 0
	}
	d := 1
	id := t.root
	for t.nodes[id].children != nil {
		d++
		id = t.nodes[id].children[0]
	}
	return d
}

// SearchWithin visits every entry whose box lies within distance r of
// p (box min-distance ≤ r). visit returning false stops the search.
func (t *Tree) SearchWithin(p geom.Point, r float64, visit func(Entry) bool) {
	if t.root < 0 {
		return
	}
	t.searchWithin(t.root, p, r*r, visit)
}

func (t *Tree) searchWithin(id int32, p geom.Point, r2 float64, visit func(Entry) bool) bool {
	n := &t.nodes[id]
	if n.box.Dist2To(p) > r2 {
		return true
	}
	if n.children == nil {
		for _, e := range n.entries {
			if e.Box.Dist2To(p) > r2 {
				continue
			}
			if !visit(e) {
				return false
			}
		}
		return true
	}
	for _, c := range n.children {
		if !t.searchWithin(c, p, r2, visit) {
			return false
		}
	}
	return true
}

// SearchBoxWithin visits every entry whose box lies within distance r
// of box q (box-to-box min distance ≤ r).
func (t *Tree) SearchBoxWithin(q geom.Box, r float64, visit func(Entry) bool) {
	if t.root < 0 {
		return
	}
	t.searchBoxWithin(t.root, q, r*r, visit)
}

func (t *Tree) searchBoxWithin(id int32, q geom.Box, r2 float64, visit func(Entry) bool) bool {
	n := &t.nodes[id]
	if boxDist2(n.box, q) > r2 {
		return true
	}
	if n.children == nil {
		for _, e := range n.entries {
			if boxDist2(e.Box, q) > r2 {
				continue
			}
			if !visit(e) {
				return false
			}
		}
		return true
	}
	for _, c := range n.children {
		if !t.searchBoxWithin(c, q, r2, visit) {
			return false
		}
	}
	return true
}

// boxDist2 returns the squared minimum distance between two boxes
// (0 when they intersect).
func boxDist2(a, b geom.Box) float64 {
	d := 0.0
	for _, ax := range []geom.Axis{geom.AxisX, geom.AxisY, geom.AxisZ} {
		lo1, hi1 := a.Min.Coord(ax), a.Max.Coord(ax)
		lo2, hi2 := b.Min.Coord(ax), b.Max.Coord(ax)
		if hi1 < lo2 {
			d += (lo2 - hi1) * (lo2 - hi1)
		} else if hi2 < lo1 {
			d += (lo1 - hi2) * (lo1 - hi2)
		}
	}
	return d
}
