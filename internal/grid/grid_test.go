package grid

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mio/internal/geom"
)

func TestKeyForQuantises(t *testing.T) {
	if k := KeyFor(geom.Pt(0.5, 1.5, -0.5), 1); k != (Key{0, 1, -1}) {
		t.Errorf("KeyFor = %v", k)
	}
	if k := KeyFor(geom.Pt(10, 10, 10), 2.5); k != (Key{4, 4, 4}) {
		t.Errorf("KeyFor = %v", k)
	}
	// Exactly on a boundary falls into the upper cell.
	if k := KeyFor(geom.Pt(2, 0, 0), 2); k.X != 1 {
		t.Errorf("boundary key = %v", k)
	}
	// Negative coordinates floor downward.
	if k := KeyFor(geom.Pt(-0.1, 0, 0), 1); k.X != -1 {
		t.Errorf("negative key = %v", k)
	}
}

func TestNeighbors(t *testing.T) {
	k := Key{0, 0, 0}
	n := k.Neighbors(nil)
	if len(n) != 26 {
		t.Fatalf("neighbors = %d, want 26", len(n))
	}
	seen := map[Key]bool{}
	for _, nk := range n {
		if nk == k {
			t.Error("self in Neighbors")
		}
		if seen[nk] {
			t.Errorf("duplicate %v", nk)
		}
		seen[nk] = true
		if abs32(nk.X-k.X) > 1 || abs32(nk.Y-k.Y) > 1 || abs32(nk.Z-k.Z) > 1 {
			t.Errorf("non-adjacent %v", nk)
		}
	}
	ns := k.NeighborsAndSelf(nil)
	if len(ns) != 27 || ns[0] != k {
		t.Fatalf("NeighborsAndSelf = %d keys, first %v", len(ns), ns[0])
	}
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

// Property (Definition 2): two points in the same small-grid cell are
// within r of each other.
func TestSmallWidthGuarantee(t *testing.T) {
	f := func(r float64, a, b [3]float64) bool {
		r = 0.1 + math.Abs(math.Mod(r, 100))
		for i := range a {
			a[i] = math.Mod(a[i], 1000)
			b[i] = math.Mod(b[i], 1000)
			if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
				return true
			}
		}
		w := SmallWidth(r, 3)
		p := geom.Pt(a[0], a[1], a[2])
		// Force q into p's cell by construction.
		k := KeyFor(p, w)
		q := geom.Pt(
			(float64(k.X)+frac(b[0]))*w,
			(float64(k.Y)+frac(b[1]))*w,
			(float64(k.Z)+frac(b[2]))*w,
		)
		if KeyFor(q, w) != k {
			return true // construction edge case; skip
		}
		return geom.Dist(p, q) <= r*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func frac(v float64) float64 {
	v = math.Abs(v)
	return v - math.Floor(v)
}

// Property (Definition 3): every point within r of p lies in p's
// large-grid cell or one of its 26 neighbours.
func TestLargeNeighborhoodCoversRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		r := 0.5 + rng.Float64()*20
		w := LargeWidth(r)
		p := geom.Pt(rng.Float64()*100-50, rng.Float64()*100-50, rng.Float64()*100-50)
		// Random point within r of p.
		dir := geom.Pt(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		n := dir.Norm()
		if n == 0 {
			continue
		}
		q := p.Add(dir.Scale(rng.Float64() * r / n))
		pk := KeyFor(p, w)
		qk := KeyFor(q, w)
		if abs32(pk.X-qk.X) > 1 || abs32(pk.Y-qk.Y) > 1 || abs32(pk.Z-qk.Z) > 1 {
			t.Fatalf("r=%g w=%g: %v -> %v not adjacent (dist %g)", r, w, pk, qk, geom.Dist(p, q))
		}
	}
}

func TestSmallWidth2D(t *testing.T) {
	if w := SmallWidth(4, 2); math.Abs(w-4/math.Sqrt2) > 1e-12 {
		t.Errorf("2D width = %v", w)
	}
	if w := SmallWidth(4, 3); math.Abs(w-4/math.Sqrt(3)) > 1e-12 {
		t.Errorf("3D width = %v", w)
	}
	if LargeWidth(4.2) != 5 {
		t.Errorf("LargeWidth(4.2) = %v", LargeWidth(4.2))
	}
	if LargeWidth(4) != 4 {
		t.Errorf("LargeWidth(4) = %v", LargeWidth(4))
	}
}

func TestSmallGridAddTransitions(t *testing.T) {
	g := NewSmallGrid(1)
	p := geom.Pt(0.5, 0.5, 0.5)
	k, before, after, cell := g.Add(0, p)
	if before != 0 || after != 1 {
		t.Fatalf("first add: %d -> %d", before, after)
	}
	if cell.FirstObject() != 0 {
		t.Fatalf("first object = %d", cell.FirstObject())
	}
	// Same object again: no transition.
	_, before, after, _ = g.Add(0, geom.Pt(0.6, 0.6, 0.6))
	if before != 1 || after != 1 {
		t.Fatalf("same-object re-add: %d -> %d", before, after)
	}
	// Second object: 1 -> 2.
	_, before, after, _ = g.Add(3, geom.Pt(0.7, 0.7, 0.7))
	if before != 1 || after != 2 {
		t.Fatalf("second object: %d -> %d", before, after)
	}
	// Third object: 2 -> 3.
	_, before, after, _ = g.Add(5, geom.Pt(0.2, 0.2, 0.2))
	if before != 2 || after != 3 {
		t.Fatalf("third object: %d -> %d", before, after)
	}
	if g.Len() != 1 {
		t.Fatalf("cells = %d", g.Len())
	}
	if g.Cell(k) != cell {
		t.Fatal("Cell lookup mismatch")
	}
	if g.Cell(Key{9, 9, 9}) != nil {
		t.Fatal("phantom cell")
	}
	if g.SizeBytes() <= 0 || g.UncompressedSizeBytes(1000) <= g.SizeBytes() {
		t.Error("size accounting implausible")
	}
	count := 0
	g.ForEach(func(Key, *SmallCell) { count++ })
	if count != 1 {
		t.Fatalf("ForEach visited %d", count)
	}
	if g.Width() != 1 {
		t.Fatal("width")
	}
}

func TestLargeGridPostings(t *testing.T) {
	g := NewLargeGrid(2, 8)
	pts := []geom.Point{
		geom.Pt(0.5, 0.5, 0.5),
		geom.Pt(1.0, 1.0, 1.0),
		geom.Pt(1.5, 0.5, 0.5),
	}
	g.Add(0, 0, pts[0])
	g.Add(0, 1, pts[1])
	g.Add(2, 0, pts[2])
	k := g.KeyFor(pts[0])
	c := g.Cell(k)
	if c == nil {
		t.Fatal("cell missing")
	}
	if got := c.Posting(0); len(got) != 2 {
		t.Fatalf("posting(0) = %d pts", len(got))
	}
	if got := c.Posting(2); len(got) != 1 {
		t.Fatalf("posting(2) = %d pts", len(got))
	}
	if got := c.Posting(1); got != nil {
		t.Fatalf("posting(1) = %v", got)
	}
	if c.B.Cardinality() != 2 {
		t.Fatalf("cell bitset card = %d", c.B.Cardinality())
	}
	if len(c.Postings[0].Idx) != 2 || c.Postings[0].Idx[1] != 1 {
		t.Fatalf("point indices wrong: %v", c.Postings[0].Idx)
	}
}

func TestComputeAdj(t *testing.T) {
	g := NewLargeGrid(1, 8)
	// Objects 0,1 in adjacent cells; object 2 far away.
	g.Add(0, 0, geom.Pt(0.5, 0.5, 0.5))
	g.Add(1, 0, geom.Pt(1.5, 0.5, 0.5))
	g.Add(2, 0, geom.Pt(50, 50, 50))

	k0 := g.KeyFor(geom.Pt(0.5, 0.5, 0.5))
	adj, fresh := g.ComputeAdj(k0)
	if !fresh {
		t.Fatal("first ComputeAdj not fresh")
	}
	if got := adj.Bits(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("adj bits = %v", got)
	}
	if g.Cell(k0).Adj() != adj {
		t.Fatal("Adj not memoised")
	}
	adj2, fresh2 := g.ComputeAdj(k0)
	if fresh2 || adj2 != adj {
		t.Fatal("second ComputeAdj recomputed")
	}
	kFar := g.KeyFor(geom.Pt(50, 50, 50))
	adjFar, _ := g.ComputeAdj(kFar)
	if got := adjFar.Bits(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("isolated adj = %v", got)
	}
	if a, fresh := g.ComputeAdj(Key{99, 99, 99}); a != nil || fresh {
		t.Fatal("ComputeAdj on missing cell")
	}
}

func TestGridMerge(t *testing.T) {
	// Partial grids over object ranges [0,2) and [2,4) merge into the
	// same structure a serial build produces.
	pts := [][]geom.Point{
		{geom.Pt(0.5, 0.5, 0.5)},
		{geom.Pt(0.6, 0.6, 0.6), geom.Pt(5.5, 0.5, 0.5)},
		{geom.Pt(0.7, 0.7, 0.7)},
		{geom.Pt(5.6, 0.6, 0.6)},
	}
	build := func(lo, hi int) (*SmallGrid, *LargeGrid) {
		sg := NewSmallGrid(1)
		lg := NewLargeGrid(2, 8)
		for i := lo; i < hi; i++ {
			for j, p := range pts[i] {
				sg.Add(i, p)
				lg.Add(i, j, p)
			}
		}
		return sg, lg
	}
	s1, l1 := build(0, 2)
	s2, l2 := build(2, 4)
	s1.MergeFrom(s2)
	l1.MergeFrom(l2)
	sFull, lFull := build(0, 4)

	if s1.Len() != sFull.Len() || l1.Len() != lFull.Len() {
		t.Fatalf("cell counts differ: %d/%d vs %d/%d", s1.Len(), l1.Len(), sFull.Len(), lFull.Len())
	}
	sFull.ForEach(func(k Key, c *SmallCell) {
		mc := s1.Cell(k)
		if mc == nil {
			t.Fatalf("merged small grid missing %v", k)
		}
		if got, want := mc.B.Bits(), c.B.Bits(); len(got) != len(want) {
			t.Fatalf("cell %v bits %v vs %v", k, got, want)
		}
	})
	lFull.ForEach(func(k Key, c *LargeCell) {
		mc := l1.Cell(k)
		if mc == nil {
			t.Fatalf("merged large grid missing %v", k)
		}
		if len(mc.Postings) != len(c.Postings) {
			t.Fatalf("cell %v postings %d vs %d", k, len(mc.Postings), len(c.Postings))
		}
		for i := range c.Postings {
			if mc.Postings[i].Obj != c.Postings[i].Obj {
				t.Fatalf("cell %v posting order differs", k)
			}
		}
	})
}

func TestNeighborhoodRadius(t *testing.T) {
	k := Key{1, 2, 3}
	for _, radius := range []int32{0, 1, 2} {
		got := k.NeighborhoodRadius(nil, radius)
		side := int(2*radius + 1)
		if len(got) != side*side*side {
			t.Fatalf("radius %d: %d keys, want %d", radius, len(got), side*side*side)
		}
		seen := map[Key]bool{}
		for _, nk := range got {
			if seen[nk] {
				t.Fatalf("radius %d: duplicate %v", radius, nk)
			}
			seen[nk] = true
		}
		if !seen[k] {
			t.Fatalf("radius %d: self missing", radius)
		}
	}
}

func TestComputeAdjRadiusMatchesAdjAtOne(t *testing.T) {
	g := NewLargeGrid(1, 8)
	g.Add(0, 0, geom.Pt(0.5, 0.5, 0.5))
	g.Add(1, 0, geom.Pt(1.5, 0.5, 0.5))
	g.Add(2, 0, geom.Pt(3.5, 0.5, 0.5)) // two cells away
	k := g.KeyFor(geom.Pt(0.5, 0.5, 0.5))
	adj1, lookups := g.ComputeAdjRadius(k, 1)
	if lookups != 27 {
		t.Fatalf("lookups = %d", lookups)
	}
	want, _ := g.ComputeAdj(k)
	if !reflect.DeepEqual(adj1.Bits(), want.Bits()) {
		t.Fatalf("radius-1 union %v vs ComputeAdj %v", adj1.Bits(), want.Bits())
	}
	adj3, lookups3 := g.ComputeAdjRadius(k, 3)
	if lookups3 != 343 {
		t.Fatalf("radius-3 lookups = %d", lookups3)
	}
	if got := adj3.Bits(); len(got) != 3 {
		t.Fatalf("radius-3 union = %v", got)
	}
}

func TestGridAccessorsAndSizes(t *testing.T) {
	g := NewLargeGrid(3, 8)
	if g.Width() != 3 {
		t.Fatal("width")
	}
	g.Add(0, 0, geom.Pt(1, 1, 1))
	g.Add(1, 0, geom.Pt(1.5, 1, 1))
	if g.SizeBytes() <= 0 {
		t.Fatal("SizeBytes")
	}
	g.ComputeAdj(g.KeyFor(geom.Pt(1, 1, 1)))
	szWithAdj := g.SizeBytes()
	if szWithAdj <= 0 {
		t.Fatal("SizeBytes with adj")
	}
	cards := 0
	g.ForEachCard(func(card int) { cards += card })
	if cards != 2 {
		t.Fatalf("ForEachCard sum = %d", cards)
	}
}

func TestMergeFromDisjointAndOverlapping(t *testing.T) {
	// Small grid: overlapping cell ORs bitsets; disjoint cell adopted.
	a := NewSmallGrid(1)
	b := NewSmallGrid(1)
	a.Add(0, geom.Pt(0.5, 0.5, 0.5))
	b.Add(2, geom.Pt(0.5, 0.5, 0.5)) // same cell
	b.Add(3, geom.Pt(9.5, 0.5, 0.5)) // new cell
	a.MergeFrom(b)
	shared := a.Cell(KeyFor(geom.Pt(0.5, 0.5, 0.5), 1))
	if got := shared.B.Bits(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("merged bits = %v", got)
	}
	if shared.FirstObject() != 0 {
		t.Fatalf("first = %d", shared.FirstObject())
	}
	adopted := a.Cell(KeyFor(geom.Pt(9.5, 0.5, 0.5), 1))
	if adopted == nil || adopted.FirstObject() != 3 {
		t.Fatal("adopted cell wrong")
	}
	// Large grid overlapping postings stay sorted.
	la := NewLargeGrid(2, 8)
	lb := NewLargeGrid(2, 8)
	la.Add(0, 0, geom.Pt(0.5, 0.5, 0.5))
	lb.Add(1, 0, geom.Pt(0.6, 0.6, 0.6))
	lb.Add(2, 0, geom.Pt(0.7, 0.7, 0.7))
	la.MergeFrom(lb)
	c := la.Cell(la.KeyFor(geom.Pt(0.5, 0.5, 0.5)))
	if len(c.Postings) != 3 {
		t.Fatalf("postings = %d", len(c.Postings))
	}
	for i := 1; i < len(c.Postings); i++ {
		if c.Postings[i].Obj <= c.Postings[i-1].Obj {
			t.Fatal("postings unsorted after merge")
		}
	}
}
