// Package grid implements the two uniform hash grids that make up a
// BIGrid (§III-A of the paper): the small-grid, whose cell width
// r/√3 guarantees that any two points sharing a cell are within r of
// each other, and the large-grid, whose cell width ⌈r⌉ guarantees that
// all points within r of a point lie in its cell or one of the 26
// adjacent cells. Cells are created on demand — no empty cells are ever
// materialised — and a point maps to exactly one cell per grid.
package grid

import (
	"math"

	"mio/internal/geom"
)

// Key identifies a grid cell by its integer cell coordinates. Keys are
// comparable and used directly as hash-map keys.
type Key struct {
	X, Y, Z int32
}

// Less orders keys lexicographically by (X, Y, Z), giving callers a
// deterministic cell iteration order independent of map layout.
func (k Key) Less(o Key) bool {
	if k.X != o.X {
		return k.X < o.X
	}
	if k.Y != o.Y {
		return k.Y < o.Y
	}
	return k.Z < o.Z
}

// KeyFor quantises a point to the cell key for the given cell width.
func KeyFor(p geom.Point, width float64) Key {
	return Key{
		X: int32(math.Floor(p.X / width)),
		Y: int32(math.Floor(p.Y / width)),
		Z: int32(math.Floor(p.Z / width)),
	}
}

// Neighbors appends the keys of the 26 cells adjacent to k (sharing a
// face, edge or corner) to buf and returns it. k itself is excluded.
func (k Key) Neighbors(buf []Key) []Key {
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			for dz := int32(-1); dz <= 1; dz++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				buf = append(buf, Key{k.X + dx, k.Y + dy, k.Z + dz})
			}
		}
	}
	return buf
}

// NeighborsAndSelf appends k and its 26 adjacent keys to buf (27 keys
// total, self first) and returns it.
func (k Key) NeighborsAndSelf(buf []Key) []Key {
	buf = append(buf, k)
	return k.Neighbors(buf)
}

// NeighborhoodRadius appends every key within Chebyshev distance
// radius of k — (2·radius+1)³ keys, k included — and returns buf. The
// Appendix-A offline-grid analysis uses radius > 1: a grid built for a
// smaller r' must widen its neighbourhood to ⌈r/r'⌉ cells to stay
// correct for queries with r > r'.
func (k Key) NeighborhoodRadius(buf []Key, radius int32) []Key {
	for dx := -radius; dx <= radius; dx++ {
		for dy := -radius; dy <= radius; dy++ {
			for dz := -radius; dz <= radius; dz++ {
				buf = append(buf, Key{k.X + dx, k.Y + dy, k.Z + dz})
			}
		}
	}
	return buf
}

// SmallWidth returns the small-grid cell width for threshold r in the
// given dimensionality (2 or 3): the largest width whose cell diagonal
// is at most r, so that two points in the same cell are certainly
// within r (Definition 2).
func SmallWidth(r float64, dims int) float64 {
	if dims == 2 {
		return r / math.Sqrt2
	}
	//lint:ignore dist2 cell-width setup runs once per query, not in a point loop
	return r / math.Sqrt(3)
}

// LargeWidth returns the large-grid cell width for threshold r:
// ⌈r⌉ (Definition 3). The ceiling makes the large-grid — and therefore
// the point labels of §III-D — shareable between all queries with the
// same ⌈r⌉.
func LargeWidth(r float64) float64 {
	return math.Ceil(r)
}
