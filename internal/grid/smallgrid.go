package grid

import (
	"mio/internal/bitmap"
	"mio/internal/geom"
)

// SmallCell is a small-grid cell: a compressed bitset whose i-th bit is
// set iff object i has a point in the cell (Definition 2). first
// remembers the first object mapped into the cell so that the "bitset
// cardinality becomes 2" transition of Algorithm 3 can retro-actively
// register that object's key list entry.
type SmallCell struct {
	B     *bitmap.Compressed
	first int32
}

// FirstObject returns the id of the first object mapped into the cell.
func (c *SmallCell) FirstObject() int { return int(c.first) }

// SmallGrid is the lower-bounding grid of a BIGrid.
type SmallGrid struct {
	width float64
	cells map[Key]*SmallCell
	// lastKey/lastCell memoise the most recent Add target; consecutive
	// points of path-like objects usually share a cell.
	lastKey  Key
	lastCell *SmallCell
}

// NewSmallGrid returns an empty small-grid with the given cell width.
func NewSmallGrid(width float64) *SmallGrid {
	return &SmallGrid{width: width, cells: make(map[Key]*SmallCell)}
}

// Width returns the cell width.
func (g *SmallGrid) Width() float64 { return g.width }

// KeyFor returns the small-grid key of p.
func (g *SmallGrid) KeyFor(p geom.Point) Key { return KeyFor(p, g.width) }

// Add maps one point of object obj into the grid, creating the cell on
// demand. It returns the cell key and the number of distinct objects in
// the cell before and after the insertion, which drives the key-list
// bookkeeping of Algorithm 3 (lines 7-10).
func (g *SmallGrid) Add(obj int, p geom.Point) (k Key, before, after int, cell *SmallCell) {
	k = g.KeyFor(p)
	c := g.lastCell
	if c == nil || k != g.lastKey {
		var ok bool
		c, ok = g.cells[k]
		if !ok {
			c = &SmallCell{B: bitmap.New(), first: int32(obj)}
			g.cells[k] = c
		}
		g.lastKey, g.lastCell = k, c
	}
	before = c.B.Cardinality()
	c.B.Set(obj)
	after = c.B.Cardinality()
	return k, before, after, c
}

// Cell returns the cell with the given key, or nil.
func (g *SmallGrid) Cell(k Key) *SmallCell { return g.cells[k] }

// Len returns the number of non-empty cells.
func (g *SmallGrid) Len() int { return len(g.cells) }

// ForEach calls fn for every cell. Iteration order is unspecified.
func (g *SmallGrid) ForEach(fn func(k Key, c *SmallCell)) {
	for k, c := range g.cells {
		fn(k, c)
	}
}

// MergeFrom merges other into g by OR-ing cell bitsets. Merges must be
// applied in ascending object-range order so that each cell's first
// object stays the globally first one.
func (g *SmallGrid) MergeFrom(other *SmallGrid) {
	for k, oc := range other.cells {
		c, ok := g.cells[k]
		if !ok {
			g.cells[k] = oc
			continue
		}
		c.B = bitmap.Or(c.B, oc.B)
	}
}

// SizeBytes estimates the memory footprint of the grid: cell bitsets
// plus per-entry map overhead.
func (g *SmallGrid) SizeBytes() int {
	const entryOverhead = 16 /* key */ + 8 /* ptr */ + 24 /* cell header */
	total := 0
	for _, c := range g.cells {
		total += entryOverhead + c.B.SizeBytes()
	}
	return total
}

// UncompressedSizeBytes estimates the footprint if every cell used a
// dense n-bit bitset, for compression-ratio reporting.
func (g *SmallGrid) UncompressedSizeBytes(n int) int {
	const entryOverhead = 16 + 8 + 24
	return g.Len() * (entryOverhead + (n+63)/64*8)
}
