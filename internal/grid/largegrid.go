package grid

import (
	"sort"
	"sync"
	"sync/atomic"

	"mio/internal/bitmap"
	"mio/internal/geom"
)

// Posting is one posting list of a large-grid cell's inverted list: the
// points of a single object that fall into the cell. Idx holds each
// point's index within its object, parallel to Pts; the labeling scheme
// of §III-D addresses points by (object, index).
type Posting struct {
	Obj int32
	Pts []geom.Point
	Idx []int32
}

// LargeCell is a large-grid cell (Definition 3): an inverted list of
// postings, the membership bitset b(c), and the lazily computed
// adjacency bitset b^adj(c) = OR of b over the cell and its 26
// neighbours. The adjacency bitset stays unset until the upper-bounding
// phase computes it (Algorithm 5 line 9) — never during grid mapping,
// to avoid the cell access cost the paper calls out. It is stored
// behind an atomic pointer so concurrent phases can memoise it without
// locks.
type LargeCell struct {
	B        *bitmap.Compressed
	adj      atomic.Pointer[bitmap.Compressed]
	Postings []Posting
	// npts counts the cell's points across all postings, maintained by
	// Add/MergeFrom. Callers use it to decide whether a cell is big
	// enough to be worth freezing.
	npts int32
	// soa is the frozen structure-of-arrays image of Postings, built
	// lazily by EnsureFrozen (or eagerly by LargeGrid.Freeze) and nil
	// before then. Any later mutation (Add, MergeFrom) invalidates it,
	// so a non-nil image is always consistent with Postings. The atomic
	// pointer lets concurrent verification workers freeze a shared cell
	// without locks: both may build the (identical, immutable) block,
	// one publishes, the loser's copy is garbage.
	soa atomic.Pointer[PostingBlock]
}

// Adj returns the memoised b^adj(c), or nil if not yet computed.
func (c *LargeCell) Adj() *bitmap.Compressed { return c.adj.Load() }

// NumPoints returns the total number of points in the cell.
func (c *LargeCell) NumPoints() int { return int(c.npts) }

// Frozen returns the cell's frozen SoA image, or nil if none exists.
func (c *LargeCell) Frozen() *PostingBlock { return c.soa.Load() }

// EnsureFrozen returns the cell's frozen SoA image, building and
// memoising it on first call. Safe for concurrent use once grid
// construction has finished; must not run concurrently with mutation.
func (c *LargeCell) EnsureFrozen() *PostingBlock {
	if b := c.soa.Load(); b != nil {
		return b
	}
	b := NewPostingBlock(c.Postings)
	if c.soa.CompareAndSwap(nil, b) {
		return b
	}
	return c.soa.Load()
}

// invalidateFrozen drops a stale SoA image after mutation. The load
// keeps the common construction path (no image exists yet) to a plain
// read instead of an atomic store per point.
func (c *LargeCell) invalidateFrozen() {
	if c.soa.Load() != nil {
		c.soa.Store(nil)
	}
}

// PostingIndex returns the index of obj's posting in Postings, or -1.
// Postings are sorted by object id (construction visits objects in id
// order), so lookup is a binary search.
func (c *LargeCell) PostingIndex(obj int) int {
	i := sort.Search(len(c.Postings), func(i int) bool { return int(c.Postings[i].Obj) >= obj })
	if i < len(c.Postings) && int(c.Postings[i].Obj) == obj {
		return i
	}
	return -1
}

// Posting returns the posting list for obj, or nil.
func (c *LargeCell) Posting(obj int) []geom.Point {
	if i := c.PostingIndex(obj); i >= 0 {
		return c.Postings[i].Pts
	}
	return nil
}

// LargeGrid is the upper-bounding and verification grid of a BIGrid.
type LargeGrid struct {
	width    float64
	nObjects int
	cells    map[Key]*LargeCell
	// scratches pools per-goroutine accumulators for ComputeAdj so the
	// 27-cell unions run without chained compressed merges.
	scratches sync.Pool
	// lastKey/lastCell memoise the most recent Add target: consecutive
	// points of arbor- and trajectory-like objects usually fall into
	// the same cell, skipping the hash lookup.
	lastKey  Key
	lastCell *LargeCell
}

// NewLargeGrid returns an empty large-grid with the given cell width
// over a dataset of nObjects objects.
func NewLargeGrid(width float64, nObjects int) *LargeGrid {
	g := &LargeGrid{width: width, nObjects: nObjects, cells: make(map[Key]*LargeCell)}
	g.scratches.New = func() any { return bitmap.NewScratch(nObjects) }
	return g
}

// Width returns the cell width.
func (g *LargeGrid) Width() float64 { return g.width }

// KeyFor returns the large-grid key of p.
func (g *LargeGrid) KeyFor(p geom.Point) Key { return KeyFor(p, g.width) }

// Add maps point ptIdx of object obj into the grid, creating the cell
// on demand, setting the obj bit and appending to the inverted list
// (Algorithm 3 lines 15-21). Objects must be added in non-decreasing id
// order, which keeps the posting lists sorted.
func (g *LargeGrid) Add(obj, ptIdx int, p geom.Point) (Key, *LargeCell) {
	k := g.KeyFor(p)
	c := g.lastCell
	if c == nil || k != g.lastKey {
		var ok bool
		c, ok = g.cells[k]
		if !ok {
			c = &LargeCell{B: bitmap.New()}
			g.cells[k] = c
		}
		g.lastKey, g.lastCell = k, c
	}
	c.B.Set(obj)
	c.npts++
	c.invalidateFrozen()
	if n := len(c.Postings); n > 0 && int(c.Postings[n-1].Obj) == obj {
		c.Postings[n-1].Pts = append(c.Postings[n-1].Pts, p)
		c.Postings[n-1].Idx = append(c.Postings[n-1].Idx, int32(ptIdx))
	} else {
		c.Postings = append(c.Postings, Posting{
			Obj: int32(obj),
			Pts: []geom.Point{p},
			Idx: []int32{int32(ptIdx)},
		})
	}
	return k, c
}

// Cell returns the cell with the given key, or nil.
func (g *LargeGrid) Cell(k Key) *LargeCell { return g.cells[k] }

// Len returns the number of non-empty cells.
func (g *LargeGrid) Len() int { return len(g.cells) }

// ForEach calls fn for every cell. Iteration order is unspecified.
func (g *LargeGrid) ForEach(fn func(k Key, c *LargeCell)) {
	for k, c := range g.cells {
		fn(k, c)
	}
}

// ComputeAdj computes and memoises b^adj for the cell with key k: the
// OR of b(c') over k and its 26 adjacent cells. fresh reports whether
// this call did the computation (false when it was already memoised or
// another goroutine won the publish race). Safe for concurrent use
// once grid construction has finished.
func (g *LargeGrid) ComputeAdj(k Key) (adj *bitmap.Compressed, fresh bool) {
	c := g.cells[k]
	if c == nil {
		return nil, false
	}
	if a := c.adj.Load(); a != nil {
		return a, false
	}
	var neigh [27]Key
	keys := k.NeighborsAndSelf(neigh[:0])
	s := g.scratches.Get().(*bitmap.Scratch)
	s.Reset()
	for _, nk := range keys {
		if nc := g.cells[nk]; nc != nil {
			s.OrCompressed(nc.B)
		}
	}
	a := s.ToCompressed()
	g.scratches.Put(s)
	if c.adj.CompareAndSwap(nil, a) {
		return a, true
	}
	return c.adj.Load(), false
}

// MergeFrom merges other into g: bitsets are OR-ed and posting lists
// concatenated. Merges must be applied in ascending object-range order
// (the parallel grid builder partitions objects into contiguous ranges)
// so posting lists stay sorted by object id. Adjacency bitsets must not
// have been computed yet on either grid.
func (g *LargeGrid) MergeFrom(other *LargeGrid) {
	for k, oc := range other.cells {
		c, ok := g.cells[k]
		if !ok {
			g.cells[k] = oc
			continue
		}
		c.B = bitmap.Or(c.B, oc.B)
		c.Postings = append(c.Postings, oc.Postings...)
		c.npts += oc.npts
		c.invalidateFrozen()
	}
}

// Freeze eagerly derives the structure-of-arrays image of every cell's
// posting lists (see PostingBlock). The query pipeline does NOT call
// this — it freezes cells lazily and selectively at probe time
// (LargeCell.EnsureFrozen), because an online per-query grid touches
// only a small fraction of its cells during verification and flattening
// the rest is pure overhead. Freeze exists for grids that outlive one
// query (offline/reused indexes) and for tests. It is idempotent —
// cells that already carry a consistent image are skipped — and must
// not run concurrently with mutation.
func (g *LargeGrid) Freeze() {
	for _, c := range g.cells {
		c.EnsureFrozen()
	}
}

// SizeBytes estimates the memory footprint of the grid: bitsets,
// adjacency bitsets, postings and per-entry map overhead.
func (g *LargeGrid) SizeBytes() int {
	const entryOverhead = 16 + 8 + 48
	total := 0
	for _, c := range g.cells {
		total += entryOverhead + c.B.SizeBytes()
		if a := c.adj.Load(); a != nil {
			total += a.SizeBytes()
		}
		for _, p := range c.Postings {
			total += 16 /* posting header */ + len(p.Pts)*24 + len(p.Idx)*4
		}
		if b := c.soa.Load(); b != nil {
			total += b.SizeBytes()
		}
	}
	return total
}

// ForEachCard calls fn with each cell's object cardinality (diagnostic).
func (g *LargeGrid) ForEachCard(fn func(card int)) {
	for _, c := range g.cells {
		fn(c.B.Cardinality())
	}
}

// ComputeAdjRadius computes (without memoising) the union of b(c')
// over every cell within Chebyshev distance radius of k. radius 1
// matches ComputeAdj; larger radii implement the widened
// neighbourhoods an offline grid built for r' < r must visit to stay
// correct (Appendix A). It returns the union and the number of cell
// lookups performed.
func (g *LargeGrid) ComputeAdjRadius(k Key, radius int32) (*bitmap.Compressed, int) {
	keys := k.NeighborhoodRadius(nil, radius)
	s := g.scratches.Get().(*bitmap.Scratch)
	s.Reset()
	for _, nk := range keys {
		if nc := g.cells[nk]; nc != nil {
			s.OrCompressed(nc.B)
		}
	}
	a := s.ToCompressed()
	g.scratches.Put(s)
	return a, len(keys)
}
