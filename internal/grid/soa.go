package grid

import "mio/internal/geom"

// PostingBlock is the frozen, cache-friendly image of a cell's posting
// lists: every point of the cell in one structure-of-arrays block
// (posting-major, so each posting owns a contiguous coordinate range),
// plus a per-posting offset table and axis-aligned bounding box.
//
// The AoS postings ([]Posting with []geom.Point payloads) remain the
// source of truth while a grid is under construction or being merged;
// a PostingBlock is derived once, after mapping finishes, and is
// immutable from then on. Verification probes the block with the
// geom batch kernels and skips a whole posting when
// Boxes[p].Dist2To(q) > r² — one comparison instead of a point scan.
type PostingBlock struct {
	// Xs, Ys, Zs hold the coordinates of all cell points,
	// posting-major: posting p occupies index range [Off[p], Off[p+1]).
	Xs, Ys, Zs []float64
	// Off has len(postings)+1 entries.
	Off []int32
	// Boxes[p] is the AABB of posting p's points.
	Boxes []geom.Box
}

// NewPostingBlock flattens posts into a PostingBlock. The coordinate
// blocks are allocated in one piece per axis, sized exactly.
func NewPostingBlock(posts []Posting) *PostingBlock {
	total := 0
	for i := range posts {
		total += len(posts[i].Pts)
	}
	b := &PostingBlock{
		Xs:    make([]float64, 0, total),
		Ys:    make([]float64, 0, total),
		Zs:    make([]float64, 0, total),
		Off:   make([]int32, len(posts)+1),
		Boxes: make([]geom.Box, len(posts)),
	}
	for i := range posts {
		box := geom.EmptyBox()
		for _, p := range posts[i].Pts {
			b.Xs = append(b.Xs, p.X)
			b.Ys = append(b.Ys, p.Y)
			b.Zs = append(b.Zs, p.Z)
			box = box.Expand(p)
		}
		b.Off[i+1] = int32(len(b.Xs))
		b.Boxes[i] = box
	}
	return b
}

// Points returns the coordinate sub-blocks of posting p.
func (b *PostingBlock) Points(p int) (xs, ys, zs []float64) {
	lo, hi := b.Off[p], b.Off[p+1]
	return b.Xs[lo:hi], b.Ys[lo:hi], b.Zs[lo:hi]
}

// Len returns the number of points of posting p.
func (b *PostingBlock) Len(p int) int { return int(b.Off[p+1] - b.Off[p]) }

// SizeBytes estimates the block's memory footprint.
func (b *PostingBlock) SizeBytes() int {
	return 5*24 + /* headers */
		cap(b.Xs)*8 + cap(b.Ys)*8 + cap(b.Zs)*8 +
		cap(b.Off)*4 + cap(b.Boxes)*48
}
