package grid

import (
	"math/rand"
	"sync"
	"testing"

	"mio/internal/geom"
)

// buildRandomGrid maps a deterministic random point cloud (path-like,
// so consecutive points share cells) into a fresh large grid.
func buildRandomGrid(seed int64, nObj, maxPts int, width float64) *LargeGrid {
	rng := rand.New(rand.NewSource(seed))
	g := NewLargeGrid(width, nObj)
	for obj := 0; obj < nObj; obj++ {
		p := geom.Pt(rng.Float64()*50, rng.Float64()*50, rng.Float64()*50)
		for j := 0; j < 1+rng.Intn(maxPts); j++ {
			p = p.Add(geom.Pt(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()))
			g.Add(obj, j, p)
		}
	}
	return g
}

// TestFreezeMatchesAoS asserts the frozen SoA image of every cell is a
// faithful flattening: identical postings (same points in the same
// order) and AABBs that exactly bound each posting.
func TestFreezeMatchesAoS(t *testing.T) {
	g := buildRandomGrid(31, 120, 30, 2)
	g.Freeze()
	cells := 0
	g.ForEach(func(k Key, c *LargeCell) {
		cells++
		soa := c.Frozen()
		if soa == nil {
			t.Fatalf("cell %v not frozen", k)
		}
		if len(soa.Off) != len(c.Postings)+1 || len(soa.Boxes) != len(c.Postings) {
			t.Fatalf("cell %v: offset/box table sized %d/%d for %d postings",
				k, len(soa.Off), len(soa.Boxes), len(c.Postings))
		}
		for pi := range c.Postings {
			post := &c.Postings[pi]
			xs, ys, zs := soa.Points(pi)
			if len(xs) != len(post.Pts) || soa.Len(pi) != len(post.Pts) {
				t.Fatalf("cell %v posting %d: %d SoA points vs %d AoS", k, pi, len(xs), len(post.Pts))
			}
			want := geom.Bound(post.Pts)
			if soa.Boxes[pi] != want {
				t.Fatalf("cell %v posting %d: AABB %+v, want %+v", k, pi, soa.Boxes[pi], want)
			}
			for i, p := range post.Pts {
				if xs[i] != p.X || ys[i] != p.Y || zs[i] != p.Z {
					t.Fatalf("cell %v posting %d point %d: SoA (%g,%g,%g) vs AoS %v",
						k, pi, i, xs[i], ys[i], zs[i], p)
				}
			}
		}
	})
	if cells == 0 {
		t.Fatal("grid generated no cells")
	}
}

// TestFreezeInvalidation: mutating a frozen cell drops its SoA image,
// and re-freezing restores consistency; untouched cells keep their
// image (idempotence).
func TestFreezeInvalidation(t *testing.T) {
	g := NewLargeGrid(2, 8)
	g.Add(0, 0, geom.Pt(0.5, 0.5, 0.5))
	g.Add(1, 0, geom.Pt(9.5, 0.5, 0.5))
	g.Freeze()
	k0 := g.KeyFor(geom.Pt(0.5, 0.5, 0.5))
	kFar := g.KeyFor(geom.Pt(9.5, 0.5, 0.5))
	farSoA := g.Cell(kFar).Frozen()
	if g.Cell(k0).Frozen() == nil || farSoA == nil {
		t.Fatal("freeze left cells without SoA")
	}

	g.Add(2, 0, geom.Pt(0.6, 0.6, 0.6)) // same cell as object 0
	if g.Cell(k0).Frozen() != nil {
		t.Fatal("Add did not invalidate the frozen image")
	}
	g.Freeze()
	c := g.Cell(k0)
	if c.Frozen() == nil || len(c.Frozen().Boxes) != 2 {
		t.Fatalf("re-freeze image wrong: %+v", c.Frozen())
	}
	if g.Cell(kFar).Frozen() != farSoA {
		t.Fatal("idempotent re-freeze rebuilt an untouched cell")
	}

	// Merge also invalidates overlapping cells.
	other := NewLargeGrid(2, 8)
	other.Add(5, 0, geom.Pt(0.7, 0.7, 0.7))
	other.Freeze()
	g.MergeFrom(other)
	if g.Cell(k0).Frozen() != nil {
		t.Fatal("MergeFrom did not invalidate the frozen image")
	}
	g.Freeze()
	if got := len(g.Cell(k0).Frozen().Boxes); got != 3 {
		t.Fatalf("post-merge freeze has %d postings, want 3", got)
	}
}

// TestPostingBlockEmpty covers cells and postings with no points.
func TestPostingBlockEmpty(t *testing.T) {
	b := NewPostingBlock(nil)
	if len(b.Off) != 1 || len(b.Boxes) != 0 || len(b.Xs) != 0 {
		t.Fatalf("empty block: %+v", b)
	}
	if b.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must count headers")
	}
	b = NewPostingBlock([]Posting{{Obj: 3}})
	if b.Len(0) != 0 {
		t.Fatalf("pointless posting Len = %d", b.Len(0))
	}
	if !b.Boxes[0].Empty() {
		t.Fatalf("pointless posting AABB not empty: %+v", b.Boxes[0])
	}
}

// TestPostingIndex pins the binary-search lookup against Posting.
func TestPostingIndex(t *testing.T) {
	g := NewLargeGrid(4, 16)
	for _, obj := range []int{1, 4, 9} {
		g.Add(obj, 0, geom.Pt(0.5, 0.5, 0.5))
	}
	c := g.Cell(g.KeyFor(geom.Pt(0.5, 0.5, 0.5)))
	for _, tc := range []struct{ obj, want int }{{1, 0}, {4, 1}, {9, 2}, {0, -1}, {5, -1}, {100, -1}} {
		if got := c.PostingIndex(tc.obj); got != tc.want {
			t.Errorf("PostingIndex(%d) = %d, want %d", tc.obj, got, tc.want)
		}
	}
	if pts := c.Posting(4); len(pts) != 1 {
		t.Fatalf("Posting(4) = %v", pts)
	}
}

// TestEnsureFrozenConcurrent hammers lazy freezing from many
// goroutines: all callers must observe the same published block (the
// CAS loser adopts the winner's image).
func TestEnsureFrozenConcurrent(t *testing.T) {
	g := buildRandomGrid(7, 40, 20, 2)
	var keys []Key
	g.ForEach(func(k Key, _ *LargeCell) { keys = append(keys, k) })
	results := make([][]*PostingBlock, 8)
	var wg sync.WaitGroup
	for w := range results {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = make([]*PostingBlock, len(keys))
			for i, k := range keys {
				results[w][i] = g.Cell(k).EnsureFrozen()
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < len(results); w++ {
		for i := range keys {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d cell %v saw a different frozen block", w, keys[i])
			}
		}
	}
}
