package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// dist2Funcs are the squared-distance producers. Their results live in
// r²-space; comparing them against a plain radius silently admits
// every pair within √r instead of r.
var dist2Funcs = map[string]bool{
	"Dist2":        true,
	"NearestDist2": true,
	"Dist2To":      true,
}

// radiusRe matches identifiers that denote an *unsquared* radius.
var radiusRe = regexp.MustCompile(`^(r|R|radius|Radius)$`)

// squaredNameRe matches identifiers conventionally holding squared
// radii (r2, rr, radius2, rSq, rSquared, ...).
var squaredNameRe = regexp.MustCompile(`(2|[sS]q|[sS]quared|RR)$|^rr$`)

// defaultHotPathRe marks the packages whose inner loops must stay
// square-root free (§III: all interaction tests compare squared
// distances).
var defaultHotPathRe = regexp.MustCompile(`internal/(core|grid|bitmap)(/|$)`)

// postingLoopRe marks the packages whose posting loops must use the
// geom batch kernels: the core pipeline probes frozen SoA blocks with
// FirstWithin2/AnyWithin2, so a scalar Dist2 inside a range over
// []Point there is either the deliberate AoS fallback (suppress it
// with a reason) or a performance bug.
var postingLoopRe = regexp.MustCompile(`internal/core(/|$)`)

// Dist2Analyzer enforces the squared-distance convention:
//
//  1. a comparison of a Dist2/NearestDist2/Dist2To result against a
//     bare radius identifier (r, radius) is flagged — the right-hand
//     side must be r*r or a *2-suffixed squared value;
//  2. math.Sqrt may not appear in hot-path packages (matching hotRe,
//     default internal/core, internal/grid, internal/bitmap);
//  3. in internal/core (non-test files), a Dist2-family call inside a
//     loop ranging over a []Point is flagged: posting loops belong on
//     the batch kernels over frozen SoA blocks.
//
// Pass nil for hotRe to use the default hot-path set.
func Dist2Analyzer(hotRe *regexp.Regexp) *Analyzer {
	if hotRe == nil {
		hotRe = defaultHotPathRe
	}
	a := &Analyzer{
		Name: "dist2",
		Doc:  "enforce squared-distance comparisons (Dist2 vs r*r), a Sqrt-free hot path, and kernel-based posting loops",
	}
	a.Run = func(p *Pass) {
		hot := hotRe.MatchString(p.Pkg.Path)
		postingScope := postingLoopRe.MatchString(p.Pkg.Path)
		reported := map[token.Pos]bool{}
		walkFiles(p, func(f *ast.File) {
			testFile := strings.HasSuffix(p.Pkg.Fset.Position(f.Pos()).Filename, "_test.go")
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					checkDist2Cmp(p, n)
				case *ast.RangeStmt:
					if postingScope && !testFile && rangesOverPoints(p, n) {
						checkPostingLoop(p, n, reported)
					}
				case *ast.CallExpr:
					if hot && isMathSqrt(p, n) {
						p.Reportf(n.Pos(), "math.Sqrt in hot-path package %s: compare squared distances against r*r instead", p.Pkg.Path)
					}
				}
				return true
			})
		})
	}
	return a
}

// rangesOverPoints reports whether r iterates a slice of a named type
// called Point (geom.Point in the real module, a local stand-in in
// fixtures).
func rangesOverPoints(p *Pass, r *ast.RangeStmt) bool {
	tv, ok := p.Pkg.Info.Types[r.X]
	if !ok || tv.Type == nil {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	named, ok := sl.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Point"
}

// checkPostingLoop flags scalar Dist2-family calls in the body of a
// range over []Point. reported dedupes calls seen through nested
// ranges.
func checkPostingLoop(p *Pass, r *ast.RangeStmt, reported map[token.Pos]bool) {
	ast.Inspect(r.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if !dist2Funcs[name] || reported[call.Pos()] {
			return true
		}
		reported[call.Pos()] = true
		p.Reportf(call.Pos(), "scalar %s in a posting loop over []Point: probe a frozen SoA block with the geom batch kernels (FirstWithin2/AnyWithin2) instead", name)
		return true
	})
}

func checkDist2Cmp(p *Pass, b *ast.BinaryExpr) {
	switch b.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
	default:
		return
	}
	var radius ast.Expr
	switch {
	case isDist2Call(b.X):
		radius = b.Y
	case isDist2Call(b.Y):
		radius = b.X
	default:
		return
	}
	if name, bad := unsquaredRadius(radius); bad {
		p.Reportf(b.Pos(), "squared distance compared against unsquared radius %q: use %s*%s or a precomputed %s2", name, name, name, name)
	}
}

// isDist2Call reports whether e is a direct call of a squared-distance
// producer.
func isDist2Call(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return dist2Funcs[calleeName(call)]
}

// unsquaredRadius reports whether e is a bare radius-named identifier
// (or field selector) that is not itself squared.
func unsquaredRadius(e ast.Expr) (string, bool) {
	var name string
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		// r*r products, literals and other expressions are fine.
		return "", false
	}
	if !radiusRe.MatchString(name) || squaredNameRe.MatchString(name) {
		return "", false
	}
	return name, true
}

// isMathSqrt reports whether call is math.Sqrt, verified against type
// information when available so a local Sqrt helper is not flagged.
func isMathSqrt(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sqrt" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if obj, ok := p.Pkg.Info.Uses[id]; ok {
		pn, ok := obj.(*types.PkgName)
		return ok && pn.Imported().Path() == "math"
	}
	// No type info (broken package): fall back to the textual form.
	return id.Name == "math" && !strings.Contains(p.Pkg.Path, "geom")
}
