package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Scratch method classification. The epoch-stamped bitmap.Scratch is
// only correct when every compute-and-read cycle starts from a Reset;
// OrScratch is deliberately excluded from the result reads because the
// destination of a merge is *supposed* to accumulate.
var (
	scratchWrites = map[string]bool{"Set": true, "Clear": true, "OrCompressed": true, "OrScratch": true}
	scratchReads  = map[string]bool{"Cardinality": true, "Bits": true, "ToCompressed": true}
	scratchResets = map[string]bool{"Reset": true, "AndNotFromCompressed": true}
)

// ScratchAnalyzer enforces the bitmap.Scratch epoch discipline:
//
//  1. a loop whose every iteration both writes into and reads a result
//     (Cardinality/Bits/ToCompressed) from a scratch declared outside
//     the loop must Reset it inside the loop — otherwise iteration k
//     observes the union of iterations 1..k and the τ bounds inflate;
//  2. NewScratch must not be called inside a loop body (that re-buys
//     the O(n/64) zeroing the epoch stamps exist to avoid) — hoist the
//     allocation and Reset per iteration instead.
//
// Loops inside function literals are analyzed in their own right, but
// a function literal appearing inside a loop is treated as part of
// that loop's body, since worker closures run per iteration.
func ScratchAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "scratch",
		Doc:  "enforce Reset between uses of bitmap.Scratch and loop-hoisted allocation",
	}
	a.Run = func(p *Pass) {
		walkFiles(p, func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				body := loopBody(n)
				if body == nil {
					return true
				}
				checkLoopReuse(p, n, body)
				checkLoopAlloc(p, body)
				return true
			})
		})
	}
	return a
}

func loopBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

// scratchEvents accumulates, per canonical receiver expression, which
// method classes a region performs.
type scratchEvents struct {
	write, read, reset bool
	firstWrite         ast.Node
	base               *ast.Ident
}

// checkLoopReuse implements rule 1. Reads that appear inside an if or
// for *condition* are progress guards on a bitset being consumed
// incrementally (the verification phase's early-exit checks), not
// per-iteration result extraction, so they do not count.
func checkLoopReuse(p *Pass, loop ast.Node, body *ast.BlockStmt) {
	guarded := guardReads(body)
	events := map[string]*scratchEvents{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isScratchExpr(p, sel.X) {
			return true
		}
		key := canonExpr(sel.X)
		ev := events[key]
		if ev == nil {
			ev = &scratchEvents{base: baseIdent(sel.X)}
			events[key] = ev
		}
		m := sel.Sel.Name
		switch {
		case scratchResets[m]:
			ev.reset = true
		case scratchWrites[m]:
			if ev.firstWrite == nil {
				ev.firstWrite = call
			}
			ev.write = true
		case scratchReads[m]:
			if !guarded[call] {
				ev.read = true
			}
		}
		return true
	})
	for key, ev := range events {
		if !ev.write || !ev.read || ev.reset {
			continue
		}
		if ev.base == nil || declaredWithin(p, ev.base, body) {
			continue // fresh per iteration (or unresolvable: stay quiet)
		}
		p.Reportf(ev.firstWrite.Pos(),
			"bitmap.Scratch %s is written and read every iteration without a Reset in the loop: stale bits from earlier iterations leak into the result", key)
	}
}

// guardReads collects calls appearing inside if/for conditions (and
// if-init statements feeding only the condition are NOT included: an
// `if c := s.Cardinality(); c > 0 { tau[i] = c }` extracts a result).
func guardReads(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	mark := func(e ast.Expr) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				out[c] = true
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			mark(n.Cond)
		case *ast.ForStmt:
			mark(n.Cond)
		}
		return true
	})
	return out
}

// checkLoopAlloc implements rule 2. Function literals stop the search
// (a worker closure's body runs once per worker, not per iteration),
// and assignments into an index expression are exempt: filling a
// pre-sized pool slice with one scratch per worker is the idiom this
// rule pushes people toward.
func checkLoopAlloc(p *Pass, body *ast.BlockStmt) {
	poolInit := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i, rhs := range asg.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && calleeName(call) == "NewScratch" {
				if _, idx := asg.Lhs[i].(*ast.IndexExpr); idx {
					poolInit[call] = true
				}
			}
		}
		return true
	})
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if calleeName(n) == "NewScratch" && !poolInit[n] {
				p.Reportf(n.Pos(), "NewScratch inside a loop re-pays the zeroing cost the epoch stamps avoid: hoist the allocation and Reset per iteration")
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// isScratchExpr reports whether e's type is bitmap.Scratch (or a
// pointer to it). Matching is by type name so that self-contained test
// fixtures can declare their own Scratch.
func isScratchExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Scratch"
}

// canonExpr renders e with index expressions collapsed, so that
// locals[0] and locals[w] alias to the same accumulator family.
func canonExpr(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return canonExpr(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return canonExpr(e.X) + "[·]"
	case *ast.CallExpr:
		return canonExpr(e.Fun) + "(…)"
	}
	return fmt.Sprintf("%T", e)
}

// baseIdent returns the leftmost identifier of e.
func baseIdent(e ast.Expr) *ast.Ident {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return baseIdent(e.X)
	case *ast.IndexExpr:
		return baseIdent(e.X)
	}
	return nil
}

// declaredWithin reports whether id's declaration lies inside node's
// source range.
func declaredWithin(p *Pass, id *ast.Ident, node ast.Node) bool {
	obj := p.Pkg.Info.Uses[id]
	if obj == nil {
		obj = p.Pkg.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}
