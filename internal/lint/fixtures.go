package lint

// fixtures.go is the analyzer self-test: each analyzer ships a golden
// fixture under testdata/ annotated with
//
//	// want "substring" "another substring"
//
// comments. RunFixture loads the fixture as an in-memory package
// (stdlib imports only, via CheckSource), runs the analyzer, and
// cross-checks both directions: every want must be matched by a
// diagnostic on that line, and every diagnostic must be wanted. The
// same suite backs `go test ./internal/lint` and `miolint -fixtures`,
// so CI can prove the analyzers themselves work before trusting a
// clean run over the module.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Fixture pairs one golden file with the analyzers that must produce
// exactly its // want set.
type Fixture struct {
	Name       string
	File       string // under the testdata directory
	ImportPath string // crafted so the analyzer's default scope applies
	Analyzers  []*Analyzer
}

// FixtureSuite returns every analyzer golden fixture.
func FixtureSuite() []Fixture {
	return []Fixture{
		{"dist2", "dist2.go", "fix/internal/core/d2", []*Analyzer{Dist2Analyzer(nil)}},
		{"scratch", "scratch.go", "fix/scratch", []*Analyzer{ScratchAnalyzer()}},
		{"gohygiene", "gohygiene.go", "fix/gohygiene", []*Analyzer{GoHygieneAnalyzer()}},
		{"errcheck", "errcheck.go", "fix/cmd/app", []*Analyzer{ErrCheckAnalyzer(nil)}},
		{"options", "options.go", "fix/examples/app", []*Analyzer{OptionsAnalyzer(nil)}},
		{"recover", "recover.go", "fix/recover", []*Analyzer{RecoverAnalyzer()}},
		{"fsync", "fsync.go", "fix/fsync", []*Analyzer{FsyncAnalyzer(nil)}},
		{"lockcheck", "lockcheck.go", "fix/internal/server/lk", []*Analyzer{LockCheckAnalyzer(nil)}},
		{"ctxflow", "ctxflow.go", "fix/pipeline", []*Analyzer{CtxFlowAnalyzer()}},
		{"faultpoint", "faultpoint.go", "fix/internal/fault", []*Analyzer{FaultPointAnalyzer()}},
	}
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.+)$`)
var wantStrRe = regexp.MustCompile(`"([^"]*)"`)

// RunFixture runs one fixture from dir and returns the mismatches
// (empty means the fixture is green). The error covers I/O and
// type-check problems — a fixture that does not compile proves
// nothing.
func RunFixture(dir string, fx Fixture) ([]string, error) {
	src, err := os.ReadFile(filepath.Join(dir, fx.File))
	if err != nil {
		return nil, err
	}
	pkg, err := CheckSource(fx.ImportPath, map[string]string{fx.File: string(src)})
	if err != nil {
		return nil, err
	}
	for _, e := range pkg.Errors {
		return nil, fmt.Errorf("fixture must type-check: %v", e)
	}
	runner := &Runner{Analyzers: fx.Analyzers, AuditSuppressions: true}
	diags := runner.Run([]*Package{pkg})
	if len(diags) == 0 {
		return []string{fmt.Sprintf("%s: fixture produced no diagnostics; miolint would exit 0 on it", fx.File)}, nil
	}
	return diffWants(fx.File, string(src), diags), nil
}

// diffWants cross-checks diagnostics against the fixture's // want
// comments, both directions.
func diffWants(file, src string, diags []Diagnostic) []string {
	var fails []string
	want := map[int][]string{} // line -> expected substrings
	for i, line := range strings.Split(src, "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, sm := range wantStrRe.FindAllStringSubmatch(m[1], -1) {
			want[i+1] = append(want[i+1], sm[1])
		}
	}
	got := map[int][]string{}
	for _, d := range diags {
		got[d.Pos.Line] = append(got[d.Pos.Line], d.Message)
	}
	for line, subs := range want {
		for _, sub := range subs {
			found := false
			for _, msg := range got[line] {
				if strings.Contains(msg, sub) {
					found = true
				}
			}
			if !found {
				fails = append(fails, fmt.Sprintf("%s:%d: expected diagnostic containing %q, got %v", file, line, sub, got[line]))
			}
		}
	}
	for line, msgs := range got {
		if len(want[line]) == 0 {
			fails = append(fails, fmt.Sprintf("%s:%d: unexpected diagnostic(s): %v", file, line, msgs))
		}
	}
	sort.Strings(fails) // map iteration above must not leak into output order
	return fails
}
