package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// FsyncAnalyzer enforces the repository's durability protocol at the
// syscall boundary (DESIGN.md §12). Two rules:
//
//  1. os.Rename without a preceding sync. A rename publishes a name;
//     if the data behind it was never fsync'd, a power cut can commit
//     the name while the blocks are garbage — the exact torn state the
//     durable layer exists to prevent. Any earlier call in the same
//     function whose callee name contains "sync" (f.Sync, SyncDir, a
//     helper) or is one of the durable commit helpers
//     (WriteFileAtomic, CommitEnvelope, CommitFile) satisfies the
//     rule; renames that are legitimately sync-free (quarantining
//     already-bad bytes, moving staged files whose contents were
//     fsync'd elsewhere) carry a //lint:ignore fsync with the reason.
//
//  2. An unchecked (*os.File).Sync() call. Sync's error is the entire
//     point of calling it — a failed fsync means the data is NOT
//     durable and the commit must not proceed — so dropping it as a
//     bare statement (or a defer) silently downgrades the protocol to
//     hope. An explicit `_ =` discard is left to the errcheck
//     conventions.
//
// Test files are exempt: tests rename files to simulate corruption and
// torn state on purpose, and nothing in a _test.go file is load-bearing
// for durability.
func FsyncAnalyzer(pathRe *regexp.Regexp) *Analyzer {
	if pathRe == nil {
		pathRe = regexp.MustCompile(``) // durability ordering applies everywhere
	}
	a := &Analyzer{
		Name: "fsync",
		Doc:  "os.Rename without a preceding sync; unchecked (*os.File).Sync errors",
	}
	a.Run = func(p *Pass) {
		if !pathRe.MatchString(p.Pkg.Path) {
			return
		}
		walkFiles(p, func(f *ast.File) {
			if strings.HasSuffix(p.Pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
				return
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkRenameOrdering(p, fd)
			}
			checkUncheckedSync(p, f)
		})
	}
	return a
}

// checkRenameOrdering flags os.Rename calls in fd that no sync-ish
// call precedes. Ordering is by source position, which matches
// execution order for the straight-line commit sequences this rule is
// about; a sync on one branch satisfies a rename on another only if it
// is written earlier, which is exactly the reviewable property the
// protocol wants.
func checkRenameOrdering(p *Pass, fd *ast.FuncDecl) {
	var syncs []token.Pos
	var renames []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPkgCall(p, call, "os", "Rename") {
			renames = append(renames, call)
			return true
		}
		if isSyncish(call) {
			syncs = append(syncs, call.Pos())
		}
		return true
	})
	for _, call := range renames {
		preceded := false
		for _, s := range syncs {
			if s < call.Pos() {
				preceded = true
				break
			}
		}
		if !preceded {
			p.Reportf(call.Pos(),
				"os.Rename without a preceding sync in %s: a crash can publish the name before the data; fsync the file first or commit via durable.WriteFileAtomic",
				fd.Name.Name)
		}
	}
}

// isSyncish reports whether call plausibly makes data durable before a
// later rename: its bare callee name contains "sync", or it is one of
// the durable commit helpers that sync internally.
func isSyncish(call *ast.CallExpr) bool {
	name := calleeName(call)
	if strings.Contains(strings.ToLower(name), "sync") {
		return true
	}
	switch name {
	case "WriteFileAtomic", "CommitEnvelope", "CommitFile":
		return true
	}
	return false
}

// checkUncheckedSync flags (*os.File).Sync() calls whose error result
// is dropped: bare expression statements and defers.
func checkUncheckedSync(p *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		var call *ast.CallExpr
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			call, _ = stmt.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call = stmt.Call
		}
		if call == nil || !isFileSync(p, call) {
			return true
		}
		p.Reportf(call.Pos(), "Sync error is silently dropped: a failed fsync means the data is not durable, so the commit must stop")
		return true
	})
}

// isFileSync reports whether call is (*os.File).Sync().
func isFileSync(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sync" {
		return false
	}
	tv, ok := p.Pkg.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File"
}

// isPkgCall reports whether call is pkgPath.fn(...) via a direct
// package selector.
func isPkgCall(p *Pass, call *ast.CallExpr, pkgPath, fn string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
	return ok && obj.Imported().Path() == pkgPath
}
