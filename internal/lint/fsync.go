package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// FsyncAnalyzer enforces the repository's durability protocol at the
// syscall boundary (DESIGN.md §12). Two rules:
//
//  1. os.Rename that unsynced data may reach. A rename publishes a
//     name; if the data behind it was never fsync'd, a power cut can
//     commit the name while the blocks are garbage — the exact torn
//     state the durable layer exists to prevent. This rule is
//     path-sensitive (CFG + must-analysis): the rename is clean only
//     if a sync-ish call dominates it on *every* path, so a branch
//     that skips the Sync is flagged even when another branch — or
//     earlier straight-line code, if a Write has since dirtied the
//     file — does sync. "Sync-ish" is any call whose callee name
//     contains "sync" (f.Sync, SyncDir, a helper) or one of the
//     durable commit helpers (WriteFileAtomic, CommitEnvelope,
//     CommitFile); a later (*os.File).Write or os.WriteFile makes the
//     data unsynced again. Renames that are legitimately sync-free
//     (quarantining already-bad bytes, moving staged files whose
//     contents were fsync'd elsewhere) carry a //lint:ignore fsync
//     with the reason.
//
//  2. An unchecked (*os.File).Sync() call. Sync's error is the entire
//     point of calling it — a failed fsync means the data is NOT
//     durable and the commit must not proceed — so dropping it as a
//     bare statement (or a defer) silently downgrades the protocol to
//     hope. An explicit `_ =` discard is left to the errcheck
//     conventions.
//
// Test files are exempt: tests rename files to simulate corruption and
// torn state on purpose, and nothing in a _test.go file is load-bearing
// for durability.
func FsyncAnalyzer(pathRe *regexp.Regexp) *Analyzer {
	if pathRe == nil {
		pathRe = regexp.MustCompile(``) // durability ordering applies everywhere
	}
	a := &Analyzer{
		Name: "fsync",
		Doc:  "os.Rename reachable by unsynced data on some path; unchecked (*os.File).Sync errors",
	}
	a.Run = func(p *Pass) {
		if !pathRe.MatchString(p.Pkg.Path) {
			return
		}
		// Deferred func(){...}() bodies are analyzed both inlined in the
		// parent's exit preamble and as functions of their own; dedupe.
		seen := map[string]bool{}
		report := func(pos token.Pos, format string, args ...any) {
			msg := fmt.Sprintf(format, args...)
			key := fmt.Sprintf("%d:%s", pos, msg)
			if !seen[key] {
				seen[key] = true
				p.Reportf(pos, "%s", msg)
			}
		}
		walkFiles(p, func(f *ast.File) {
			if strings.HasSuffix(p.Position(f.Pos()).Filename, "_test.go") {
				return
			}
			forEachFuncBody(f, func(name string, _ *ast.FuncType, body *ast.BlockStmt) {
				checkRenameOrdering(p, name, body, report)
			})
			checkUncheckedSync(p, f)
		})
	}
	return a
}

// The fsync fact is one bit: "unsynced data may reach this point".
// Join is OR (a single unsynced path taints the merge), which makes
// the complementary property — synced — a must-analysis: a rename is
// clean only when every incoming path has synced since its last
// write. Entry starts unsynced.
const fsyncUnsynced uint8 = 1

func checkRenameOrdering(p *Pass, name string, body *ast.BlockStmt, report func(pos token.Pos, format string, args ...any)) {
	g := BuildCFG(body)
	reporting := false

	transfer := func(b *Block, in uint8) uint8 {
		out := in
		for _, node := range b.Nodes {
			ast.Inspect(node, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.DeferStmt:
					return false
				case *ast.CallExpr:
					switch {
					case isPkgCall(p, n, "os", "Rename"):
						if reporting && out&fsyncUnsynced != 0 {
							report(n.Pos(), "os.Rename without a preceding sync on every path in %s: a crash can publish the name before the data; fsync the file on each branch or commit via durable.WriteFileAtomic", name)
						}
					case isSyncish(n) || isFileSync(p, n):
						out = 0
					case isFileWrite(p, n):
						out = fsyncUnsynced
					}
				}
				return true
			})
		}
		return out
	}

	in, ok := Forward(g, fsyncUnsynced, func(a, b uint8) uint8 { return a | b },
		func(a, b uint8) bool { return a == b }, transfer)
	if !ok {
		return
	}
	reporting = true
	eachReachable(g, in, transfer)
}

// isSyncish reports whether call plausibly makes data durable before a
// later rename: its bare callee name contains "sync", or it is one of
// the durable commit helpers that sync internally.
func isSyncish(call *ast.CallExpr) bool {
	name := calleeName(call)
	if strings.Contains(strings.ToLower(name), "sync") {
		return true
	}
	switch name {
	case "WriteFileAtomic", "CommitEnvelope", "CommitFile":
		return true
	}
	return false
}

// isFileWrite reports whether call puts new bytes behind a file —
// (*os.File).Write/WriteString/WriteAt or os.WriteFile — which makes
// any earlier sync stale.
func isFileWrite(p *Pass, call *ast.CallExpr) bool {
	if isPkgCall(p, call, "os", "WriteFile") {
		return true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteAt":
		return isOSFile(p, sel.X)
	}
	return false
}

// checkUncheckedSync flags (*os.File).Sync() calls whose error result
// is dropped: bare expression statements and defers.
func checkUncheckedSync(p *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		var call *ast.CallExpr
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			call, _ = stmt.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call = stmt.Call
		}
		if call == nil || !isFileSync(p, call) {
			return true
		}
		p.Reportf(call.Pos(), "Sync error is silently dropped: a failed fsync means the data is not durable, so the commit must stop")
		return true
	})
}

// isFileSync reports whether call is (*os.File).Sync().
func isFileSync(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Sync" && isOSFile(p, sel.X)
}

// isOSFile reports whether e's type is *os.File or os.File.
func isOSFile(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	return isNamed && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File"
}

// isPkgCall reports whether call is pkgPath.fn(...) via a direct
// package selector.
func isPkgCall(p *Pass, call *ast.CallExpr, pkgPath, fn string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
	return ok && obj.Imported().Path() == pkgPath
}
