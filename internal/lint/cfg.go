package lint

// cfg.go builds intraprocedural control-flow graphs over go/ast
// function bodies. The graph is deliberately lint-grade rather than
// compiler-grade: basic blocks hold the statements and condition
// expressions in evaluation order, edges follow every syntactic path
// (if/for/range/switch/select/goto/labeled break and continue), and
// defers are modelled with a single synthetic exit-preamble block that
// every function exit flows through, holding the deferred calls in
// LIFO order. That preamble makes the common pairing idiom
//
//	mu.Lock()
//	defer mu.Unlock()
//
// analyzable: the unlock's effect applies on every exit path, but not
// before — so a blocking operation between Lock and return is still
// seen as running under the lock.
//
// Approximations, chosen to avoid false positives rather than to be
// execution-exact:
//
//   - conditionally-registered defers are assumed to run (a defer is
//     always routed through the preamble);
//   - a deferred func(){...}() literal is inlined as straight-line code
//     in the preamble (its internal control flow is not expanded);
//   - panic(...), runtime.Goexit and *.Exit/*.Fatal* calls terminate
//     the block with an edge to the preamble, as a return does;
//   - function literals are not expanded into the enclosing graph —
//     analyzers build a separate CFG per literal via forEachFuncBody.

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is one basic block: nodes that execute consecutively, in
// evaluation order. Nodes are statements and the condition/tag
// expressions of the control statement that ends the block; analyzers
// walk each node with ast.Inspect but must not descend into
// *ast.FuncLit (a different function) or *ast.DeferStmt (a
// registration — the deferred call reappears in the exit preamble).
type Block struct {
	Index int
	// Desc names the block's syntactic role ("entry", "if.then",
	// "for.head", "defers", ...) for dumps and golden tests.
	Desc  string
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block // creation order; Blocks[i].Index == i
	Entry  *Block
	// Defers is the synthetic exit preamble: every return, panic and
	// fall-off-the-end edge leads here, and the deferred calls run here
	// in LIFO order. It is always present (empty when the function has
	// no defers) so analyses treat all exits uniformly.
	Defers *Block
	Exit   *Block
}

// String renders the graph one block per line:
//
//	b0 entry [2] -> b3
//
// where [n] is the node count (omitted when zero).
func (g *CFG) String() string {
	var b strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&b, "b%d %s", blk.Index, blk.Desc)
		if len(blk.Nodes) > 0 {
			fmt.Fprintf(&b, " [%d]", len(blk.Nodes))
		}
		if len(blk.Succs) > 0 {
			b.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&b, " b%d", s.Index)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BuildCFG constructs the control-flow graph of body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		g:      &CFG{},
		labels: map[string]*Block{},
	}
	b.g.Entry = b.newBlock("entry")
	b.g.Defers = b.newBlock("defers")
	b.g.Exit = b.newBlock("exit")
	b.edge(b.g.Defers, b.g.Exit)
	b.cur = b.g.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.g.Defers)
	}
	// Deferred calls run last-registered-first.
	for i := len(b.deferred) - 1; i >= 0; i-- {
		b.g.Defers.Nodes = append(b.g.Defers.Nodes, b.deferred[i])
	}
	return b.g
}

// scope is one enclosing breakable/continuable statement.
type scope struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch and select scopes
}

type cfgBuilder struct {
	g   *CFG
	cur *Block // nil after a terminator: following code is unreachable

	scopes   []scope
	labels   map[string]*Block // label name -> target block (goto, labeled stmt)
	fallTo   []*Block          // fallthrough target stack, one per switch clause
	deferred []ast.Node        // preamble nodes in registration order
}

func (b *cfgBuilder) newBlock(desc string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Desc: desc}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// ensure guarantees a current block, opening an unreachable one for
// code that follows a terminator.
func (b *cfgBuilder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	b.ensure().Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// findBreak locates the break target: the innermost scope, or the one
// carrying the label.
func (b *cfgBuilder) findBreak(label string) *Block {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		if label == "" || b.scopes[i].label == label {
			return b.scopes[i].breakTo
		}
	}
	return nil
}

func (b *cfgBuilder) findContinue(label string) *Block {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := b.scopes[i]
		if sc.continueTo != nil && (label == "" || sc.label == label) {
			return sc.continueTo
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		if b.cur != nil {
			b.edge(b.cur, lb)
		}
		b.cur = lb
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		then := b.newBlock("if.then")
		b.edge(cond, then)
		var els *Block
		if s.Else != nil {
			els = b.newBlock("if.else")
			b.edge(cond, els)
		}
		b.cur = then
		b.stmt(s.Body, "")
		thenEnd := b.cur
		var elseEnd *Block
		if els != nil {
			b.cur = els
			b.stmt(s.Else, "")
			elseEnd = b.cur
		}
		after := b.newBlock("if.after")
		if els == nil {
			b.edge(cond, after)
		}
		if thenEnd != nil {
			b.edge(thenEnd, after)
		}
		if elseEnd != nil {
			b.edge(elseEnd, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		pre := b.ensure()
		head := b.newBlock("for.head")
		b.edge(pre, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock("for.body")
		b.edge(head, body)
		backTo := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
			backTo = post
		}
		after := b.newBlock("for.after")
		if s.Cond != nil {
			b.edge(head, after)
		}
		b.scopes = append(b.scopes, scope{label: label, breakTo: after, continueTo: backTo})
		b.cur = body
		b.stmt(s.Body, "")
		if b.cur != nil {
			b.edge(b.cur, backTo)
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = after

	case *ast.RangeStmt:
		b.add(s.X)
		pre := b.ensure()
		head := b.newBlock("range.head")
		b.edge(pre, head)
		body := b.newBlock("range.body")
		after := b.newBlock("range.after")
		b.edge(head, body)
		b.edge(head, after)
		b.scopes = append(b.scopes, scope{label: label, breakTo: after, continueTo: head})
		b.cur = body
		b.stmt(s.Body, "")
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body.List, label, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(s.Body.List, label, false)

	case *ast.SelectStmt:
		head := b.ensure()
		after := b.newBlock("select.after")
		b.scopes = append(b.scopes, scope{label: label, breakTo: after})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			desc := "select.case"
			if cc.Comm == nil {
				desc = "select.default"
			}
			blk := b.newBlock(desc)
			b.edge(head, blk)
			if cc.Comm != nil {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			b.cur = blk
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		// select{} blocks forever: after stays unreachable.
		b.cur = after

	case *ast.BranchStmt:
		name := ""
		if s.Label != nil {
			name = s.Label.Name
		}
		b.ensure()
		switch s.Tok {
		case token.BREAK:
			if t := b.findBreak(name); t != nil {
				b.edge(b.cur, t)
			}
		case token.CONTINUE:
			if t := b.findContinue(name); t != nil {
				b.edge(b.cur, t)
			}
		case token.GOTO:
			b.edge(b.cur, b.labelBlock(name))
		case token.FALLTHROUGH:
			if n := len(b.fallTo); n > 0 && b.fallTo[n-1] != nil {
				b.edge(b.cur, b.fallTo[n-1])
			}
		}
		b.cur = nil

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Defers)
		b.cur = nil

	case *ast.DeferStmt:
		b.add(s) // registration marker; effect excluded by analyzers
		// A deferred func(){...}() literal runs as straight-line code in
		// the preamble; other deferred calls appear as the call itself.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok && len(lit.Type.Params.List) == 0 {
			b.deferred = append(b.deferred, lit.Body)
		} else {
			b.deferred = append(b.deferred, s.Call)
		}

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isTerminalCall(call) {
			b.edge(b.cur, b.g.Defers)
			b.cur = nil
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt, ...
		b.add(s)
	}
}

// switchClauses builds the shared clause structure of switch and type
// switch. allowFall enables fallthrough edges (expression switch only).
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, label string, allowFall bool) {
	head := b.ensure()
	after := b.newBlock("switch.after")
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		desc := "case"
		if cc.List == nil {
			desc = "default"
			hasDefault = true
		}
		bodies[i] = b.newBlock(desc)
		b.edge(head, bodies[i])
		for _, e := range cc.List {
			bodies[i].Nodes = append(bodies[i].Nodes, e)
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.scopes = append(b.scopes, scope{label: label, breakTo: after})
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		var fall *Block
		if allowFall && i+1 < len(bodies) {
			fall = bodies[i+1]
		}
		b.fallTo = append(b.fallTo, fall)
		b.cur = bodies[i]
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
		b.fallTo = b.fallTo[:len(b.fallTo)-1]
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

// isTerminalCall reports whether a call never returns for the purposes
// of this CFG: panic, runtime.Goexit, and the *.Exit / *.Fatal* family
// (os.Exit, log.Fatalf, t.Fatal, ...). All are routed through the
// defer preamble — exact for panic and Goexit, conservative for Exit.
func isTerminalCall(call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		switch fn.Sel.Name {
		case "Exit", "Goexit", "Fatal", "Fatalf", "Fatalln", "FailNow":
			return true
		}
	}
	return false
}

// forEachFuncBody invokes fn for every function body in the file:
// declarations first, then every function literal (each literal is its
// own function with its own CFG). name is a human-readable identifier
// for diagnostics.
func forEachFuncBody(f *ast.File, fn func(name string, ft *ast.FuncType, body *ast.BlockStmt)) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn(fd.Name.Name, fd.Type, fd.Body)
		outer := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				fn("a function literal in "+outer, lit.Type, lit.Body)
			}
			return true
		})
	}
}
