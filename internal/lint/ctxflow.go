package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Context provenance bits. May-analysis: a bit says the value can
// have that origin on at least one path.
const (
	ctxDerived uint8 = 1 << iota // threaded from the function's ctx parameter
	ctxFresh                     // started from context.Background()/TODO()
)

// ctxFact maps context-typed variables to their possible provenance.
type ctxFact map[types.Object]uint8

func (f ctxFact) eq(g ctxFact) bool {
	if len(f) != len(g) {
		return false
	}
	for k, v := range f {
		if w, ok := g[k]; !ok || v != w {
			return false
		}
	}
	return true
}

func (f ctxFact) clone() ctxFact {
	g := make(ctxFact, len(f))
	for k, v := range f {
		g[k] = v
	}
	return g
}

func joinCtx(a, b ctxFact) ctxFact {
	out := a.clone()
	for k, v := range b {
		out[k] |= v
	}
	return out
}

// CtxFlowAnalyzer enforces context threading: a function that accepts
// a context.Context must actually pass that context (or a context
// derived from it) to its context-capable callees, on every path.
// Three rules, all scoped to functions that have a ctx parameter —
// functions without one (compatibility shims, main, tests) may start
// contexts freely:
//
//  1. no laundering: calling context.Background() or context.TODO()
//     inside such a function discards the caller's deadline and
//     cancellation;
//  2. no fresh handoff: passing a context-typed variable that may —
//     on some path — hold a fresh Background/TODO context to a callee
//     with a context parameter. This is the flow-sensitive version of
//     rule 1: `use := ctx; if x { use = context.Background() }` is
//     caught at the call site where the branches have merged;
//  3. no context-dropping variants: calling a method M when the
//     receiver also provides MContext taking a context.Context first —
//     the non-Context variant silently substitutes Background.
//
// context.WithCancel/WithTimeout/WithValue propagate their parent's
// provenance; unknown sources (req.Context(), a struct field) count
// as derived, keeping the analyzer quiet where it cannot see.
// Function literals are separate functions: a literal with its own
// ctx parameter is checked against that parameter, one without is
// exempt.
func CtxFlowAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "ctxflow",
		Doc:  "ctx-taking functions must thread their ctx to every context-capable callee on every path",
	}
	a.Run = func(p *Pass) {
		if p.Pkg.Name == "main" {
			return
		}
		seen := map[string]bool{}
		report := func(pos token.Pos, format string, args ...any) {
			msg := fmt.Sprintf(format, args...)
			key := fmt.Sprintf("%d:%s", pos, msg)
			if !seen[key] {
				seen[key] = true
				p.Reportf(pos, "%s", msg)
			}
		}
		walkFiles(p, func(f *ast.File) {
			if strings.HasSuffix(p.Position(f.Pos()).Filename, "_test.go") {
				return
			}
			forEachFuncBody(f, func(name string, ft *ast.FuncType, body *ast.BlockStmt) {
				params := ctxParams(p, ft)
				if len(params) == 0 {
					return
				}
				ctxFlowFunc(p, name, body, params, report)
			})
		})
	}
	return a
}

// ctxParams returns the context.Context-typed parameter objects of ft.
func ctxParams(p *Pass, ft *ast.FuncType) []types.Object {
	if ft.Params == nil {
		return nil
	}
	var out []types.Object
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := p.Pkg.Info.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func ctxFlowFunc(p *Pass, name string, body *ast.BlockStmt, params []types.Object, report func(pos token.Pos, format string, args ...any)) {
	g := BuildCFG(body)
	entry := ctxFact{}
	for _, obj := range params {
		entry[obj] = ctxDerived
	}
	reporting := false

	transfer := func(b *Block, in ctxFact) ctxFact {
		out := in
		mutated := false
		set := func(obj types.Object, st uint8) {
			if !mutated {
				out = out.clone()
				mutated = true
			}
			out[obj] = st
		}
		for _, node := range b.Nodes {
			ast.Inspect(node, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.DeferStmt:
					return false
				case *ast.AssignStmt:
					ctxAssign(p, n, out, set)
				case *ast.CallExpr:
					ctxCall(p, n, name, out, reporting, report)
				}
				return true
			})
		}
		return out
	}

	in, ok := Forward(g, entry, joinCtx, ctxFact.eq, transfer)
	if !ok {
		return
	}
	reporting = true
	eachReachable(g, in, transfer)
}

// ctxAssign tracks `use := ctx`, `use = context.Background()`,
// `ctx, cancel := context.WithTimeout(parent, d)` — any assignment to
// a context-typed identifier.
func ctxAssign(p *Pass, as *ast.AssignStmt, fact ctxFact, set func(types.Object, uint8)) {
	rhs := func(i int) ast.Expr {
		if len(as.Rhs) == 1 {
			return as.Rhs[0] // tuple assignment: every lhs shares the call
		}
		if i < len(as.Rhs) {
			return as.Rhs[i]
		}
		return nil
	}
	for i, l := range as.Lhs {
		id, isIdent := l.(*ast.Ident)
		if !isIdent {
			continue
		}
		obj := p.Pkg.Info.Defs[id]
		if obj == nil {
			obj = p.Pkg.Info.Uses[id]
		}
		if obj == nil || !isContextType(obj.Type()) {
			continue
		}
		if r := rhs(i); r != nil {
			set(obj, ctxProvenance(p, fact, r))
		}
	}
}

// ctxCall applies rules 1–3 at one call site.
func ctxCall(p *Pass, call *ast.CallExpr, fn string, fact ctxFact, reporting bool, report func(pos token.Pos, format string, args ...any)) {
	if !reporting {
		return
	}
	// Rule 1: laundering.
	for _, src := range []string{"Background", "TODO"} {
		if isPkgCall(p, call, "context", src) {
			report(call.Pos(), "context.%s() inside %s, which already receives a context: thread the ctx parameter so deadlines and cancellation propagate", src, fn)
			return
		}
	}
	// Rule 2: passing a may-be-fresh context variable to a ctx-capable callee.
	if sig := callSignature(p, call); sig != nil {
		for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
			if !isContextType(sig.Params().At(i).Type()) {
				continue
			}
			id, isIdent := call.Args[i].(*ast.Ident)
			if !isIdent {
				continue
			}
			obj := p.Pkg.Info.Uses[id]
			if obj == nil {
				continue
			}
			if st, tracked := fact[obj]; tracked && st&ctxFresh != 0 {
				report(call.Args[i].Pos(), "%s may hold a fresh Background/TODO context on some path through %s: pass the ctx parameter (or a context derived from it)", id.Name, fn)
			}
		}
		if hasCtxParam(sig) {
			return // the callee takes a context; rule 3 is moot
		}
	}
	// Rule 3: a ctx-dropping variant when a Context-taking one exists.
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return
	}
	selection, has := p.Pkg.Info.Selections[sel]
	if !has || selection.Kind() != types.MethodVal {
		return
	}
	variant := sel.Sel.Name + "Context"
	obj, _, _ := types.LookupFieldOrMethod(selection.Recv(), true, p.Pkg.Types, variant)
	m, isFunc := obj.(*types.Func)
	if !isFunc {
		return
	}
	msig, isSig := m.Type().(*types.Signature)
	if !isSig || msig.Params().Len() == 0 || !isContextType(msig.Params().At(0).Type()) {
		return
	}
	report(call.Pos(), "%s drops the request context: call %s(ctx, ...) so cancellation reaches the work", sel.Sel.Name, variant)
}

// callSignature resolves the callee's *types.Signature, or nil for
// conversions and untyped callees.
func callSignature(p *Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := p.Pkg.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func hasCtxParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// ctxProvenance evaluates a context expression's origin against the
// current fact: Background/TODO are fresh, context.With* propagate
// their parent, tracked variables look up, everything else (fields,
// method results like req.Context()) counts as derived.
func ctxProvenance(p *Pass, fact ctxFact, e ast.Expr) uint8 {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return ctxProvenance(p, fact, e.X)
	case *ast.Ident:
		if obj := p.Pkg.Info.Uses[e]; obj != nil {
			if st, ok := fact[obj]; ok {
				return st
			}
		}
		return ctxDerived
	case *ast.CallExpr:
		if isPkgCall(p, e, "context", "Background") || isPkgCall(p, e, "context", "TODO") {
			return ctxFresh
		}
		if sel, isSel := e.Fun.(*ast.SelectorExpr); isSel && len(e.Args) > 0 {
			if id, isIdent := sel.X.(*ast.Ident); isIdent {
				if pn, isPkg := p.Pkg.Info.Uses[id].(*types.PkgName); isPkg && pn.Imported().Path() == "context" {
					return ctxProvenance(p, fact, e.Args[0])
				}
			}
		}
	}
	return ctxDerived
}
