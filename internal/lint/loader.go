package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string // import path ("mio/internal/core"); external test packages get a "_test" suffix
	Dir   string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Errors holds type-checking problems. Analysis still runs on a
	// package with errors (the AST and partial type info remain
	// usable), but cmd/miolint surfaces them.
	Errors []error
}

// Loader parses and type-checks every package of a module using only
// the standard library: module-internal imports are resolved by
// recursive loading, standard-library imports through the go/importer
// source importer (which type-checks GOROOT sources and therefore
// needs no compiled export data).
type Loader struct {
	Fset *token.FileSet
	// IncludeTests merges _test.go files into their package and loads
	// external (package foo_test) test packages.
	IncludeTests bool

	moduleDir  string
	modulePath string
	std        types.ImporterFrom
	cache      map[string]*Package
	loading    map[string]bool
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:         fset,
		IncludeTests: true,
		moduleDir:    root,
		modulePath:   modPath,
		std:          importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:        map[string]*Package{},
		loading:      map[string]bool{},
	}, nil
}

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

// ModuleDir returns the module root directory (where go.mod lives).
func (l *Loader) ModuleDir() string { return l.moduleDir }

// findModule walks upward from dir to the enclosing go.mod.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// LoadModule loads every package under the module root, in a
// deterministic order. Directories named testdata, vendor or starting
// with "." or "_" are skipped, as the go tool does.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.moduleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.moduleDir &&
			(name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.moduleDir, dir)
		if err != nil {
			return nil, err
		}
		path := l.modulePath
		if rel != "." {
			path = l.modulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, xtest, err := l.loadDir(path, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		if xtest != nil {
			pkgs = append(pkgs, xtest)
		}
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") && !strings.HasPrefix(e.Name(), "_") {
			return true
		}
	}
	return false
}

// loadDir parses and checks the package in dir plus, when present and
// requested, its external test package.
func (l *Loader) loadDir(path, dir string) (pkg, xtest *Package, err error) {
	if p, ok := l.cache[path]; ok {
		return p, l.cache[path+"_test"], nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var base, xfiles []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !l.IncludeTests {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, fmt.Errorf("lint: %w", err)
		}
		if isTest && strings.HasSuffix(f.Name.Name, "_test") {
			xfiles = append(xfiles, f)
		} else {
			base = append(base, f)
		}
	}
	if len(base) > 0 {
		pkg = l.check(path, dir, base)
		l.cache[path] = pkg
	}
	if len(xfiles) > 0 {
		xtest = l.check(path+"_test", dir, xfiles)
		l.cache[path+"_test"] = xtest
	}
	return pkg, xtest, nil
}

// ensure loads a module-internal package on demand (for imports).
func (l *Loader) ensure(path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
	dir := filepath.Join(l.moduleDir, filepath.FromSlash(rel))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	p := l.check(path, dir, files)
	l.cache[path] = p
	return p, nil
}

// check type-checks files as one package.
func (l *Loader) check(path, dir string, files []*ast.File) *Package {
	l.loading[path] = true
	defer delete(l.loading, path)

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Info: info}
	if len(files) > 0 {
		pkg.Name = files[0].Name.Name
	}
	conf := types.Config{
		Importer: &moduleImporter{l: l, dir: dir},
		Error:    func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	pkg.Types = tpkg
	if err != nil && len(pkg.Errors) == 0 {
		pkg.Errors = append(pkg.Errors, err)
	}
	return pkg
}

// moduleImporter resolves module-internal imports recursively and
// delegates everything else to the GOROOT source importer.
type moduleImporter struct {
	l   *Loader
	dir string
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, m.dir, 0)
}

func (m *moduleImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == m.l.modulePath || strings.HasPrefix(path, m.l.modulePath+"/") {
		// An external test package importing its own base package
		// resolves to the already-loaded (or on-demand loaded) base.
		p, err := m.l.ensure(path)
		if err != nil {
			return nil, err
		}
		if p.Types == nil {
			return nil, fmt.Errorf("lint: %s failed to type-check", path)
		}
		return p.Types, nil
	}
	return m.l.std.ImportFrom(path, srcDir, mode)
}

// CheckSource type-checks in-memory sources as a single package —
// used by the analyzer golden tests to load self-contained fixtures.
// files maps file names to source text; imports must be resolvable by
// the GOROOT source importer (i.e. standard library only).
func CheckSource(importPath string, files map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	var asts []*ast.File
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, files[name], parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	pkg := &Package{Path: importPath, Fset: fset, Files: asts, Info: info}
	if len(asts) > 0 {
		pkg.Name = asts[0].Name.Name
	}
	conf := types.Config{
		Importer: stdOnly{std},
		Error:    func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	tpkg, err := conf.Check(importPath, fset, asts, info)
	pkg.Types = tpkg
	if err != nil && len(pkg.Errors) == 0 {
		pkg.Errors = append(pkg.Errors, err)
	}
	return pkg, nil
}

type stdOnly struct{ std types.ImporterFrom }

func (s stdOnly) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return s.std.ImportFrom(path, "", 0)
}
