package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// FaultPointAnalyzer cross-checks every fault-injection point name
// referenced in source against the registered set — the exported
// Point* string constants of the fault package. A misspelled point
// arms a rule nothing ever fires, silently making chaos tests
// vacuous; this turns that class of typo into a lint error. Checks:
//
//   - arguments to Registry.Fire / Fired / Clear, and the Point field
//     of fault.Rule composite literals: a string literal is rejected
//     even when its spelling matches (the constants exist so renames
//     propagate); any other constant expression must equal a
//     registered point. Non-constant values are runtime data and out
//     of scope.
//   - constant specs passed to fault.Parse: each "point=kind:..."
//     clause's point must be registered (the "seed=" clause is not a
//     point).
//   - module-wide (via the Finish hook): a registered Point* constant
//     that no non-test file references is dead — it documents an
//     injection point that does not exist — and is reported at its
//     declaration.
//
// The fault package's own _test.go files are exempt: the registry
// unit tests exercise arbitrary point names on purpose.
func FaultPointAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "faultpoint",
		Doc:  "fault.Point names referenced in source must match the registered constant set",
	}
	a.Run = func(p *Pass) {
		faultPkg := findFaultPkg(p.Pkg)
		if faultPkg == nil {
			return
		}
		points := registeredPoints(faultPkg)
		if len(points) == 0 {
			return
		}
		inFaultPkg := p.Pkg.Types == faultPkg
		walkFiles(p, func(f *ast.File) {
			if inFaultPkg && strings.HasSuffix(p.Position(f.Pos()).Filename, "_test.go") {
				return // registry unit tests use arbitrary names on purpose
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkFaultCall(p, n, faultPkg, points)
				case *ast.CompositeLit:
					checkRuleLit(p, n, faultPkg, points)
				}
				return true
			})
		})
	}
	a.Finish = func(m *ModulePass) {
		reportDeadPoints(m)
	}
	return a
}

// findFaultPkg locates the fault package in scope: the package under
// analysis itself, or one of its direct imports named "fault".
func findFaultPkg(pkg *Package) *types.Package {
	if pkg.Types == nil {
		return nil
	}
	if pkg.Types.Name() == "fault" {
		return pkg.Types
	}
	for _, imp := range pkg.Types.Imports() {
		if imp.Name() == "fault" {
			return imp
		}
	}
	return nil
}

// registeredPoints returns value -> constant name for the exported
// Point* string constants of the fault package.
func registeredPoints(faultPkg *types.Package) map[string]string {
	points := map[string]string{}
	scope := faultPkg.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Point") {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.String {
			continue
		}
		points[constant.StringVal(c.Val())] = name
	}
	return points
}

// faultCallee returns the point-name argument expression when call is
// Registry.Fire/Fired/Clear (resolved to the fault package, so an
// unrelated Clear method never matches), and whether call is
// fault.Parse.
func faultCallee(p *Pass, call *ast.CallExpr, faultPkg *types.Package) (pointArg ast.Expr, isParse bool) {
	if len(call.Args) == 0 {
		return nil, false
	}
	// Inside the fault package itself Parse is an unqualified call.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "Parse" {
		if obj, has := p.Pkg.Info.Uses[id]; has && obj.Pkg() == faultPkg {
			return nil, true
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	switch sel.Sel.Name {
	case "Fire", "Fired", "Clear":
		selection, has := p.Pkg.Info.Selections[sel]
		if !has || selection.Kind() != types.MethodVal {
			return nil, false
		}
		if fn := selection.Obj(); fn.Pkg() == faultPkg {
			return call.Args[0], false
		}
	case "Parse":
		if obj, has := p.Pkg.Info.Uses[sel.Sel]; has && obj.Pkg() == faultPkg {
			return nil, true
		}
	}
	return nil, false
}

func checkFaultCall(p *Pass, call *ast.CallExpr, faultPkg *types.Package, points map[string]string) {
	arg, isParse := faultCallee(p, call, faultPkg)
	if isParse {
		checkParseSpec(p, call.Args[0], points)
		return
	}
	if arg != nil {
		checkPointExpr(p, arg, points)
	}
}

// checkRuleLit validates the Point field of fault.Rule{...} literals.
func checkRuleLit(p *Pass, lit *ast.CompositeLit, faultPkg *types.Package, points map[string]string) {
	tv, ok := p.Pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() != faultPkg || named.Obj().Name() != "Rule" {
		return
	}
	for i, elt := range lit.Elts {
		if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
			if key, isIdent := kv.Key.(*ast.Ident); isIdent && key.Name == "Point" {
				checkPointExpr(p, kv.Value, points)
			}
		} else if i == 0 {
			checkPointExpr(p, elt, points) // positional: Point is the first field
		}
	}
}

// checkPointExpr validates one constant point-name expression.
func checkPointExpr(p *Pass, e ast.Expr, points map[string]string) {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // runtime value: out of scope
	}
	val := constant.StringVal(tv.Value)
	name, known := points[val]
	if lit, isLit := unparen(e).(*ast.BasicLit); isLit {
		if known {
			p.Reportf(lit.Pos(), "injection point %q spelled as a string literal: use fault.%s so the reference survives renames", val, name)
		} else {
			p.Reportf(lit.Pos(), "unknown injection point %q: not a registered fault.Point* constant, so no chaos rule armed here can ever fire", val)
		}
		return
	}
	if !known {
		p.Reportf(e.Pos(), "constant resolves to unknown injection point %q: not a registered fault.Point* constant", val)
	}
}

// checkParseSpec validates the point of every clause in a constant
// fault.Parse spec string.
func checkParseSpec(p *Pass, e ast.Expr, points map[string]string) {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	for _, clause := range strings.Split(constant.StringVal(tv.Value), ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		point, _, ok := strings.Cut(clause, "=")
		if !ok || point == "seed" {
			continue
		}
		if _, known := points[point]; !known {
			p.Reportf(e.Pos(), "fault spec arms unknown injection point %q: not a registered fault.Point* constant, so the rule can never fire", point)
		}
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// reportDeadPoints runs module-wide after every package: a Point*
// constant never referenced outside _test.go files names an injection
// point that does not exist in any production code path.
func reportDeadPoints(m *ModulePass) {
	// The registered set, from the fault package(s) loaded as part of
	// the module (not fixtures).
	type pointConst struct {
		obj *types.Const
		pkg *Package
	}
	var decls []pointConst
	declared := map[types.Object]bool{}
	for _, pkg := range m.Pkgs {
		if pkg.Name != "fault" || pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			if !strings.HasPrefix(name, "Point") {
				continue
			}
			if c, ok := scope.Lookup(name).(*types.Const); ok && c.Val().Kind() == constant.String {
				decls = append(decls, pointConst{c, pkg})
				declared[c] = true
			}
		}
	}
	if len(decls) == 0 {
		return
	}
	used := map[types.Object]bool{}
	for _, pkg := range m.Pkgs {
		for id, obj := range pkg.Info.Uses {
			if !declared[obj] {
				continue
			}
			if strings.HasSuffix(pkg.Fset.Position(id.Pos()).Filename, "_test.go") {
				continue
			}
			used[obj] = true
		}
	}
	for _, d := range decls {
		if !used[d.obj] {
			m.Report(d.pkg.Fset.Position(d.obj.Pos()),
				"injection point %s (%q) is never fired outside tests: a dead point makes every chaos rule armed at it vacuous; wire it into the code path or remove it",
				d.obj.Name(), constant.StringVal(d.obj.Val()))
		}
	}
}
