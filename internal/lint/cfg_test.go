package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func buildBody(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_fixture.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body)
}

// TestCFGShapes pins the block/edge structure the builder produces
// for every control construct the analyzers rely on. The dump format
// is CFG.String: one block per line, [n] node count, -> successors.
func TestCFGShapes(t *testing.T) {
	tests := []struct {
		name string
		body string
		want string
	}{
		{
			"if-else",
			`x()
if c {
	a()
} else {
	b()
}
y()`,
			`b0 entry [2] -> b3 b4
b1 defers -> b2
b2 exit
b3 if.then [1] -> b5
b4 if.else [1] -> b5
b5 if.after [1] -> b1
`,
		},
		{
			"if-return",
			`if c {
	return
}
y()`,
			`b0 entry [1] -> b3 b4
b1 defers -> b2
b2 exit
b3 if.then [1] -> b1
b4 if.after [1] -> b1
`,
		},
		{
			"for-break-continue",
			`for i := 0; c; i++ {
	if d {
		break
	}
	if e {
		continue
	}
	a()
}
y()`,
			`b0 entry [1] -> b3
b1 defers -> b2
b2 exit
b3 for.head [1] -> b4 b6
b4 for.body [1] -> b7 b8
b5 for.post [1] -> b3
b6 for.after [1] -> b1
b7 if.then -> b6
b8 if.after [1] -> b9 b10
b9 if.then -> b5
b10 if.after [1] -> b5
`,
		},
		{
			"range",
			`for _, v := range xs {
	a(v)
}
y()`,
			`b0 entry [1] -> b3
b1 defers -> b2
b2 exit
b3 range.head -> b4 b5
b4 range.body [1] -> b3
b5 range.after [1] -> b1
`,
		},
		{
			"switch-fallthrough-default",
			`switch t := v; t {
case 1:
	a()
	fallthrough
case 2:
	b()
default:
	c()
}
y()`,
			`b0 entry [2] -> b4 b5 b6
b1 defers -> b2
b2 exit
b3 switch.after [1] -> b1
b4 case [2] -> b5
b5 case [2] -> b3
b6 default [1] -> b3
`,
		},
		{
			"select",
			`select {
case v := <-ch:
	a(v)
case ch2 <- 1:
	b()
}
y()`,
			`b0 entry -> b4 b5
b1 defers -> b2
b2 exit
b3 select.after [1] -> b1
b4 select.case [2] -> b3
b5 select.case [2] -> b3
`,
		},
		{
			"defer-and-return-paths",
			`mu.Lock()
defer mu.Unlock()
if c {
	return
}
a()`,
			`b0 entry [3] -> b3 b4
b1 defers [1] -> b2
b2 exit
b3 if.then [1] -> b1
b4 if.after [1] -> b1
`,
		},
		{
			"goto-label",
			`i := 0
loop:
	if c {
		goto done
	}
	i++
	goto loop
done:
	y()`,
			`b0 entry [1] -> b3
b1 defers -> b2
b2 exit
b3 label.loop [1] -> b4 b6
b4 if.then -> b5
b5 label.done [1] -> b1
b6 if.after [1] -> b3
`,
		},
		{
			"labeled-nested-loops",
			`outer:
	for a {
		for b {
			if c {
				break outer
			}
			continue outer
		}
	}
y()`,
			`b0 entry -> b3
b1 defers -> b2
b2 exit
b3 label.outer -> b4
b4 for.head [1] -> b5 b6
b5 for.body -> b7
b6 for.after [1] -> b1
b7 for.head [1] -> b8 b9
b8 for.body [1] -> b10 b11
b9 for.after -> b4
b10 if.then -> b6
b11 if.after -> b4
`,
		},
		{
			"panic-terminates",
			`if c {
	panic("x")
}
y()`,
			`b0 entry [1] -> b3 b4
b1 defers -> b2
b2 exit
b3 if.then [1] -> b1
b4 if.after [1] -> b1
`,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			g := buildBody(t, tc.body)
			if got := g.String(); got != tc.want {
				t.Errorf("CFG mismatch\n--- got ---\n%s--- want ---\n%s", got, tc.want)
			}
		})
	}
}

// TestCFGDefersLIFO pins the exit preamble: deferred calls appear in
// reverse registration order, and a deferred func(){...}() literal is
// inlined as its body.
func TestCFGDefersLIFO(t *testing.T) {
	g := buildBody(t, `defer a()
defer func() {
	b()
}()
x()`)
	if len(g.Defers.Nodes) != 2 {
		t.Fatalf("preamble has %d nodes, want 2", len(g.Defers.Nodes))
	}
	if _, ok := g.Defers.Nodes[0].(*ast.BlockStmt); !ok {
		t.Errorf("first preamble node is %T, want the inlined closure body (*ast.BlockStmt)", g.Defers.Nodes[0])
	}
	if _, ok := g.Defers.Nodes[1].(*ast.CallExpr); !ok {
		t.Errorf("second preamble node is %T, want the deferred call a()", g.Defers.Nodes[1])
	}
	if g.Defers.Nodes[0].Pos() < g.Defers.Nodes[1].Pos() {
		t.Error("preamble not in LIFO order: the later defer must run first")
	}
}

// adversarialNest is a loop nest with labeled continue, break and a
// goto crossing loop levels — the shape that maximizes re-queueing in
// the worklist.
const adversarialNest = `outer:
	for a {
		for b {
			if c {
				continue outer
			}
			if d {
				break
			}
			goto inner
		inner:
			x()
		}
		for e {
			if g {
				goto inner2
			}
		inner2:
			y()
		}
	}
z()`

// TestForwardFixpointTerminates runs a monotone analysis (saturating
// hop counter, join = max) over the adversarial nest and checks it
// converges well inside the budget with a consistent fixpoint.
func TestForwardFixpointTerminates(t *testing.T) {
	g := buildBody(t, adversarialNest)
	const cap = 5
	steps := 0
	in, ok := Forward(g, 0,
		func(a, b int) int { return max(a, b) },
		func(a, b int) bool { return a == b },
		func(b *Block, f int) int { steps++; return min(f+1, cap) },
	)
	if !ok {
		t.Fatal("monotone analysis did not converge")
	}
	if steps > 64*len(g.Blocks) {
		t.Errorf("fixpoint took %d transfers over %d blocks: worklist is thrashing", steps, len(g.Blocks))
	}
	if _, reached := in[g.Exit]; !reached {
		t.Fatal("exit unreachable in a function that falls off its end")
	}
	// Fixpoint consistency: every reachable block's IN is at least the
	// join of its reachable predecessors' OUTs.
	for _, b := range g.Blocks {
		f, reached := in[b]
		if !reached || b == g.Entry {
			continue
		}
		for _, p := range b.Preds {
			pf, pok := in[p]
			if !pok {
				continue
			}
			if out := min(pf+1, cap); f < out {
				t.Errorf("b%d IN=%d < pred b%d OUT=%d: not a fixpoint", b.Index, f, p.Index, out)
			}
		}
	}
}

// TestForwardBudgetBails feeds Forward a non-monotone transfer (an
// unbounded counter) and checks the step budget trips instead of
// hanging, reporting non-convergence.
func TestForwardBudgetBails(t *testing.T) {
	g := buildBody(t, `for a {
	x()
}`)
	_, ok := Forward(g, 0,
		func(a, b int) int { return max(a, b) },
		func(a, b int) bool { return a == b },
		func(b *Block, f int) int { return f + 1 }, // never saturates
	)
	if ok {
		t.Fatal("non-monotone analysis reported convergence")
	}
}

// TestCFGUnreachableAfterTerminator: code after a return opens an
// unreachable block that the dataflow engine then never visits.
func TestCFGUnreachableAfterTerminator(t *testing.T) {
	g := buildBody(t, `return
x()`)
	var unreachable *Block
	for _, b := range g.Blocks {
		if b.Desc == "unreachable" {
			unreachable = b
		}
	}
	if unreachable == nil {
		t.Fatal("no unreachable block for code after return")
	}
	in, ok := Forward(g, 0,
		func(a, b int) int { return max(a, b) },
		func(a, b int) bool { return a == b },
		func(b *Block, f int) int { return f },
	)
	if !ok {
		t.Fatal("trivial analysis did not converge")
	}
	if _, visited := in[unreachable]; visited {
		t.Error("dataflow visited an unreachable block")
	}
	if !strings.Contains(g.String(), "unreachable") {
		t.Error("dump does not mention the unreachable block")
	}
}
