package lint

// dataflow.go is the generic forward-dataflow fixpoint engine the
// flow-sensitive analyzers instantiate. An analysis supplies a fact
// type F, the entry fact, a join (merge at control-flow confluences),
// an equality test (has the fact changed?), and a transfer function
// (the effect of one block's nodes on a fact). The engine iterates a
// FIFO worklist to a fixpoint and returns each reachable block's IN
// fact.
//
// Contract: join and transfer must be pure — return a fresh or
// structurally-shared value, never mutate their arguments — because
// the same fact value is joined into several successors. For a
// may-analysis, join is set union and facts grow toward "anything
// could have happened"; for a must-analysis, join keeps only what
// holds on every incoming edge. Either way the lattice must be finite
// (or of bounded height) for the fixpoint to exist; the step budget
// below is a hard backstop so a buggy transfer can never hang lint.

// Forward runs a forward dataflow analysis over g to a fixpoint.
//
// It returns the IN fact of every reachable block (unreachable blocks
// are absent from the map) and whether the analysis converged within
// its step budget. The budget — 64 visits per block plus slack — is
// far beyond what any monotone analysis on these CFGs needs; a false
// return means the transfer/join pair oscillates and the caller
// should discard the result rather than report from it.
func Forward[F any](g *CFG, entry F, join func(F, F) F, equal func(F, F) bool, transfer func(b *Block, in F) F) (map[*Block]F, bool) {
	in := map[*Block]F{g.Entry: entry}
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	budget := 64*len(g.Blocks) + 256

	for len(work) > 0 {
		if budget == 0 {
			return in, false
		}
		budget--
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		out := transfer(blk, in[blk])
		for _, s := range blk.Succs {
			old, seen := in[s]
			next := out
			if seen {
				next = join(old, out)
				if equal(next, old) {
					continue
				}
			}
			in[s] = next
			if !queued[s] {
				work = append(work, s)
				queued[s] = true
			}
		}
	}
	return in, true
}

// eachReachable replays transfer once per reachable block, in block
// index order. Analyzers use it as the deterministic reporting pass
// after Forward converges: the transfer closure flips into reporting
// mode and re-walks each block with its fixpoint IN fact, so every
// diagnostic is emitted exactly once and in source order regardless of
// the worklist's visit order.
func eachReachable[F any](g *CFG, in map[*Block]F, transfer func(b *Block, in F) F) {
	for _, b := range g.Blocks {
		if f, ok := in[b]; ok {
			transfer(b, f)
		}
	}
}
