package lint

import (
	"fmt"
	"strings"
	"testing"
)

// TestAnalyzersGolden runs every analyzer against its fixture under
// testdata and cross-checks diagnostics with the // want comments.
// The same suite backs `miolint -fixtures`.
func TestAnalyzersGolden(t *testing.T) {
	for _, fx := range FixtureSuite() {
		t.Run(fx.Name, func(t *testing.T) {
			fails, err := RunFixture("testdata", fx)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range fails {
				t.Error(f)
			}
		})
	}
}

// TestSuppression covers the //lint:ignore mechanics: trailing and
// preceding placement, the "all" wildcard, name mismatch, and the
// malformed-comment diagnostic. The runner here has the stale audit
// off, so a non-matching suppression surfaces only the unsuppressed
// finding (the audit's own behavior is TestStaleSuppressionAudit's).
func TestSuppression(t *testing.T) {
	const tmpl = `package p

func fails() error { return nil }

func f() {
	%s
}
`
	cases := []struct {
		name    string
		body    string
		wantN   int
		wantSub string
	}{
		{"trailing", `fails() //lint:ignore errcheck reasoned`, 0, ""},
		{"preceding", "//lint:ignore errcheck reasoned\n\tfails()", 0, ""},
		{"wildcard", `fails() //lint:ignore all reasoned`, 0, ""},
		{"wrong-name", `fails() //lint:ignore dist2 reasoned`, 1, "silently dropped"},
		{"missing-reason", `fails() //lint:ignore errcheck`, 2, "malformed"},
		{"no-comment", `fails()`, 1, "silently dropped"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := fmt.Sprintf(tmpl, tc.body)
			pkg, err := CheckSource("fix/cmd/sup", map[string]string{"sup.go": src})
			if err != nil {
				t.Fatal(err)
			}
			runner := &Runner{Analyzers: []*Analyzer{ErrCheckAnalyzer(nil)}}
			diags := runner.Run([]*Package{pkg})
			if len(diags) != tc.wantN {
				t.Fatalf("got %d diagnostics %v, want %d", len(diags), diags, tc.wantN)
			}
			if tc.wantN > 0 {
				found := false
				for _, d := range diags {
					if strings.Contains(d.Message, tc.wantSub) {
						found = true
					}
				}
				if !found {
					t.Fatalf("no diagnostic in %v contains %q", diags, tc.wantSub)
				}
			}
		})
	}
}

// TestStaleSuppressionAudit pins the audit: a suppression that matches
// a diagnostic is silent, one that matches nothing is itself reported,
// and disabling analyzers turns the audit off (their suppressions
// would all look stale).
func TestStaleSuppressionAudit(t *testing.T) {
	const src = `package p

func fails() error { return nil }

func f() {
	fails() //lint:ignore errcheck the result is advisory here
	//lint:ignore errcheck nothing on this line fails
	_ = 1 + 1
}
`
	pkg, err := CheckSource("fix/cmd/stale", map[string]string{"stale.go": src})
	if err != nil {
		t.Fatal(err)
	}
	run := func(r *Runner) []Diagnostic { return r.Run([]*Package{pkg}) }

	audited := run(&Runner{Analyzers: []*Analyzer{ErrCheckAnalyzer(nil)}, AuditSuppressions: true})
	if len(audited) != 1 || !strings.Contains(audited[0].Message, "stale //lint:ignore errcheck") {
		t.Fatalf("audited run = %v, want exactly the stale-suppression diagnostic", audited)
	}
	if audited[0].Pos.Line != 7 {
		t.Errorf("stale diagnostic at line %d, want 7 (the dead comment)", audited[0].Pos.Line)
	}

	unaudited := run(&Runner{Analyzers: []*Analyzer{ErrCheckAnalyzer(nil)}})
	if len(unaudited) != 0 {
		t.Fatalf("unaudited run = %v, want none", unaudited)
	}

	disabled := NewRunner()
	disabled.Disable("errcheck")
	if disabled.AuditSuppressions {
		t.Error("Disable must turn the stale audit off")
	}
}

// TestDisable checks analyzer filtering.
func TestDisable(t *testing.T) {
	r := NewRunner()
	n := len(r.Analyzers)
	r.Disable("errcheck, options")
	if len(r.Analyzers) != n-2 {
		t.Fatalf("Disable removed %d analyzers, want 2", n-len(r.Analyzers))
	}
	for _, a := range r.Analyzers {
		if a.Name == "errcheck" || a.Name == "options" {
			t.Fatalf("analyzer %s survived Disable", a.Name)
		}
	}
}

// TestRepoIsLintClean loads the real module and asserts the full suite
// — stale-suppression audit included — reports nothing: the
// conventions the analyzers enforce hold everywhere, and stay held.
// This is the same gate CI applies via `go run ./cmd/miolint ./...`.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module against GOROOT sources")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded only %d packages; loader lost part of the module", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, e := range pkg.Errors {
			t.Errorf("%s: type error: %v", pkg.Path, e)
		}
	}
	diags := NewRunner().Run(pkgs)
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestLoaderFindsTestPackages asserts the loader sees in-package and
// external test files, which several analyzers (options in
// particular) must be able to inspect.
func TestLoaderFindsTestPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	root := byPath[loader.ModulePath()]
	if root == nil {
		t.Fatalf("root package %s not loaded", loader.ModulePath())
	}
	hasTestFile := false
	for _, f := range root.Files {
		if strings.HasSuffix(root.Fset.Position(f.Pos()).Filename, "_test.go") {
			hasTestFile = true
		}
	}
	if !hasTestFile {
		t.Error("root package loaded without its _test.go files")
	}
}
