package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts expectations of the form
//
//	// want "substring" "another substring"
//
// from a fixture line. Every expectation must be matched by a
// diagnostic on that line, and every diagnostic must be expected.
var wantRe = regexp.MustCompile(`//\s*want\s+(.+)$`)
var wantStrRe = regexp.MustCompile(`"([^"]*)"`)

// TestAnalyzersGolden runs each analyzer against its fixture under
// testdata and cross-checks diagnostics with the // want comments.
func TestAnalyzersGolden(t *testing.T) {
	tests := []struct {
		name       string
		file       string
		importPath string // crafted so the analyzer's default scope applies
		analyzer   *Analyzer
	}{
		{"dist2", "dist2.go", "fix/internal/core/d2", Dist2Analyzer(nil)},
		{"scratch", "scratch.go", "fix/scratch", ScratchAnalyzer()},
		{"gohygiene", "gohygiene.go", "fix/gohygiene", GoHygieneAnalyzer()},
		{"errcheck", "errcheck.go", "fix/cmd/app", ErrCheckAnalyzer(nil)},
		{"options", "options.go", "fix/examples/app", OptionsAnalyzer(nil)},
		{"recover", "recover.go", "fix/recover", RecoverAnalyzer()},
		{"fsync", "fsync.go", "fix/fsync", FsyncAnalyzer(nil)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", tc.file))
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := CheckSource(tc.importPath, map[string]string{tc.file: string(src)})
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range pkg.Errors {
				t.Fatalf("fixture must type-check: %v", e)
			}
			runner := &Runner{Analyzers: []*Analyzer{tc.analyzer}}
			diags := runner.Run([]*Package{pkg})
			if len(diags) == 0 {
				t.Fatalf("fixture produced no diagnostics; miolint would exit 0 on it")
			}
			checkWants(t, tc.file, string(src), diags)
		})
	}
}

func checkWants(t *testing.T, file, src string, diags []Diagnostic) {
	t.Helper()
	want := map[int][]string{} // line -> expected substrings
	for i, line := range strings.Split(src, "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, sm := range wantStrRe.FindAllStringSubmatch(m[1], -1) {
			want[i+1] = append(want[i+1], sm[1])
		}
	}
	got := map[int][]string{}
	for _, d := range diags {
		got[d.Pos.Line] = append(got[d.Pos.Line], d.Message)
	}
	for line, subs := range want {
		for _, sub := range subs {
			found := false
			for _, msg := range got[line] {
				if strings.Contains(msg, sub) {
					found = true
				}
			}
			if !found {
				t.Errorf("%s:%d: expected diagnostic containing %q, got %v", file, line, sub, got[line])
			}
		}
	}
	for line, msgs := range got {
		if len(want[line]) == 0 {
			t.Errorf("%s:%d: unexpected diagnostic(s): %v", file, line, msgs)
		}
	}
}

// TestSuppression covers the //lint:ignore mechanics: trailing and
// preceding placement, the "all" wildcard, name mismatch, and the
// malformed-comment diagnostic.
func TestSuppression(t *testing.T) {
	const tmpl = `package p

func fails() error { return nil }

func f() {
	%s
}
`
	cases := []struct {
		name    string
		body    string
		wantN   int
		wantSub string
	}{
		{"trailing", `fails() //lint:ignore errcheck reasoned`, 0, ""},
		{"preceding", "//lint:ignore errcheck reasoned\n\tfails()", 0, ""},
		{"wildcard", `fails() //lint:ignore all reasoned`, 0, ""},
		{"wrong-name", `fails() //lint:ignore dist2 reasoned`, 1, "silently dropped"},
		{"missing-reason", `fails() //lint:ignore errcheck`, 2, "malformed"},
		{"no-comment", `fails()`, 1, "silently dropped"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := fmt.Sprintf(tmpl, tc.body)
			pkg, err := CheckSource("fix/cmd/sup", map[string]string{"sup.go": src})
			if err != nil {
				t.Fatal(err)
			}
			runner := &Runner{Analyzers: []*Analyzer{ErrCheckAnalyzer(nil)}}
			diags := runner.Run([]*Package{pkg})
			if len(diags) != tc.wantN {
				t.Fatalf("got %d diagnostics %v, want %d", len(diags), diags, tc.wantN)
			}
			if tc.wantN > 0 {
				found := false
				for _, d := range diags {
					if strings.Contains(d.Message, tc.wantSub) {
						found = true
					}
				}
				if !found {
					t.Fatalf("no diagnostic in %v contains %q", diags, tc.wantSub)
				}
			}
		})
	}
}

// TestDisable checks analyzer filtering.
func TestDisable(t *testing.T) {
	r := NewRunner()
	n := len(r.Analyzers)
	r.Disable("errcheck, options")
	if len(r.Analyzers) != n-2 {
		t.Fatalf("Disable removed %d analyzers, want 2", n-len(r.Analyzers))
	}
	for _, a := range r.Analyzers {
		if a.Name == "errcheck" || a.Name == "options" {
			t.Fatalf("analyzer %s survived Disable", a.Name)
		}
	}
}

// TestRepoIsLintClean loads the real module and asserts the full suite
// reports nothing: the conventions the analyzers enforce hold
// everywhere, and stay held. This is the same gate CI applies via
// `go run ./cmd/miolint ./...`.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module against GOROOT sources")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded only %d packages; loader lost part of the module", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, e := range pkg.Errors {
			t.Errorf("%s: type error: %v", pkg.Path, e)
		}
	}
	diags := NewRunner().Run(pkgs)
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestLoaderFindsTestPackages asserts the loader sees in-package and
// external test files, which several analyzers (options in
// particular) must be able to inspect.
func TestLoaderFindsTestPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	root := byPath[loader.ModulePath()]
	if root == nil {
		t.Fatalf("root package %s not loaded", loader.ModulePath())
	}
	hasTestFile := false
	for _, f := range root.Files {
		if strings.HasSuffix(root.Fset.Position(f.Pos()).Filename, "_test.go") {
			hasTestFile = true
		}
	}
	if !hasTestFile {
		t.Error("root package loaded without its _test.go files")
	}
}
