package lint

import (
	"go/ast"
	"go/types"
)

// RecoverAnalyzer flags recover() calls that swallow a panic without a
// trace: the result is discarded (a bare `recover()` statement) or
// assigned to the blank identifier, and the enclosing function never
// panics again. The serving stack's resilience accounting depends on
// every recovery either re-panicking toward the next layer (engine
// quarantine re-raises into the HTTP middleware) or recording what was
// caught (the middleware ticks panic_total and writes the 500); a
// silent recover would make a crashing engine look healthy.
//
// The check is per function literal: a panic() in an *outer* scope
// does not excuse a swallowed recover inside a deferred closure,
// because that closure is exactly where the panic value dies.
func RecoverAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "recover",
		Doc:  "recover() must re-panic or record the recovered value, never swallow it",
	}
	a.Run = func(p *Pass) {
		walkFiles(p, func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						checkRecoverScope(p, n.Body)
					}
				case *ast.FuncLit:
					checkRecoverScope(p, n.Body)
				}
				return true
			})
		})
	}
	return a
}

// checkRecoverScope examines one function body, stopping at nested
// function literals (ast.Inspect visits those as their own scopes).
func checkRecoverScope(p *Pass, body *ast.BlockStmt) {
	var swallowed []ast.Node
	repanics := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isBuiltinCall(p, call, "recover") {
				swallowed = append(swallowed, call)
				return false
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinCall(p, call, "recover") || i >= len(n.Lhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					swallowed = append(swallowed, call)
				}
			}
		case *ast.CallExpr:
			if isBuiltinCall(p, n, "panic") {
				repanics = true
			}
		}
		return true
	})
	if repanics {
		return
	}
	for _, n := range swallowed {
		p.Reportf(n.Pos(), "recover() swallows the panic: re-panic or record the recovered value (assign it and act on it)")
	}
}

// isBuiltinCall reports whether call invokes the builtin of that name
// (not a shadowing declaration).
func isBuiltinCall(p *Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, builtin := p.Pkg.Info.Uses[id].(*types.Builtin)
	return builtin
}
