package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// requiredFields maps config/options struct type names to the fields
// whose zero value is NOT safe: a UniformConfig with N == 0 generates
// an empty dataset, a zero FieldSize collapses every object onto one
// point, and so on. Literals that rely on those zeros are almost
// always test bugs, not intent.
var requiredFields = map[string][]string{
	"UniformConfig":    {"N", "M", "FieldSize", "Spread"},
	"NeuronConfig":     {"N", "M", "FieldSize"},
	"TrajectoryConfig": {"N", "M", "FieldSize"},
	"PowerLawConfig":   {"N", "M", "FieldSize"},
}

// defaultOptScopeRe limits the check to the places where hand-written
// literals appear: tests, examples and the CLIs. Library code builds
// configs through the Default* constructors.
var defaultOptScopeRe = regexp.MustCompile(`(^|/)(examples|cmd)(/|$)|_test$`)

// OptionsAnalyzer flags keyed struct literals of the registered
// config types that omit a field lacking a safe zero value. Unkeyed
// (positional) literals necessarily spell out every field and pass.
// scopeRe (nil for the default) selects the packages checked; files
// ending in _test.go are always in scope.
func OptionsAnalyzer(scopeRe *regexp.Regexp) *Analyzer {
	if scopeRe == nil {
		scopeRe = defaultOptScopeRe
	}
	a := &Analyzer{
		Name: "options",
		Doc:  "config struct literals in tests/examples must set fields without safe zero values",
	}
	a.Run = func(p *Pass) {
		pkgInScope := scopeRe.MatchString(p.Pkg.Path)
		walkFiles(p, func(f *ast.File) {
			file := p.Pkg.Fset.Position(f.Pos()).Filename
			if !pkgInScope && !strings.HasSuffix(file, "_test.go") {
				return
			}
			ast.Inspect(f, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				checkOptLit(p, lit)
				return true
			})
		})
	}
	return a
}

func checkOptLit(p *Pass, lit *ast.CompositeLit) {
	tv, ok := p.Pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	required := requiredFields[named.Obj().Name()]
	if required == nil {
		return
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return
	}
	// Positional literals must list every field; nothing to check.
	if len(lit.Elts) > 0 {
		if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
			return
		}
	}
	present := map[string]bool{}
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				present[id.Name] = true
			}
		}
	}
	var missing []string
	for _, f := range required {
		if !present[f] {
			missing = append(missing, f)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	p.Reportf(lit.Pos(), "%s literal omits %s — the zero value is not a safe default; set it explicitly",
		named.Obj().Name(), strings.Join(missing, ", "))
}
