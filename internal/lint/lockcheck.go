package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// Per-mutex possibility mask. This is a may-analysis: each bit records
// that the mutex can be in that state on at least one path reaching
// the program point. Join is bitwise union, so the lattice is the
// powerset of {unlocked, locked, rlocked} and every transfer is
// monotone — the fixpoint exists and is reached in a few passes.
const (
	lockU uint8 = 1 << iota // unlocked on some path
	lockL                   // write-locked on some path
	lockR                   // read-locked on some path
)

type lockState struct {
	states uint8
	pos    token.Pos // most recent acquisition site (for "locked at")
	disp   string    // display form, e.g. "s.swapMu"
}

// lockFact maps a stable mutex key (root object + field path) to its
// possible states.
type lockFact map[string]lockState

func (f lockFact) eq(g lockFact) bool {
	if len(f) != len(g) {
		return false
	}
	for k, v := range f {
		if w, ok := g[k]; !ok || v != w {
			return false
		}
	}
	return true
}

func (f lockFact) clone() lockFact {
	g := make(lockFact, len(f))
	for k, v := range f {
		g[k] = v
	}
	return g
}

func joinLock(a, b lockFact) lockFact {
	out := a.clone()
	for k, v := range b {
		if w, ok := out[k]; ok {
			merged := lockState{states: w.states | v.states, pos: w.pos, disp: w.disp}
			if merged.pos == token.NoPos {
				merged.pos = v.pos
			}
			out[k] = merged
		} else {
			out[k] = v
		}
	}
	return out
}

// LockCheckAnalyzer enforces mutex discipline on every syntactic path
// through the packages where locks guard the serving stack
// (internal/server, internal/batch, labelstore, breaker by default). Built on the CFG
// + forward dataflow engine, per function (literals included, each as
// its own function), it reports:
//
//   - Lock/RLock of a mutex that may already be held in the
//     conflicting mode on some path — sync.Mutex and sync.RWMutex are
//     not reentrant, so Lock-under-Lock and the RLock→Lock upgrade
//     are guaranteed self-deadlocks on that path;
//   - Unlock of a mutex that is only read-locked (and RUnlock of one
//     that is only write-locked) — a runtime fatal error;
//   - a blocking operation — channel send or receive, a .Wait() call,
//     time.Sleep, or an outbound HTTP call — while any tracked mutex
//     may be held. The deferred-unlock idiom does not exempt these:
//     the defer runs at return, so the lock really is held across the
//     blocking point. Sites where that is the intended design (e.g. a
//     drain that must hold the swap lock while it empties the pool)
//     carry a //lint:ignore lockcheck with the reason;
//   - a mutex still held on some path when the function returns
//     (anchored at the acquisition site). Unlock-helper patterns that
//     intentionally return holding a lock are out of scope for this
//     repository and would need a suppression.
//
// A select communication counts as blocking unless the select has a
// default clause. Mutexes reached through map/slice indexing or calls
// are not tracked (no stable key); interface-typed sync.Locker values
// are likewise out of scope.
func LockCheckAnalyzer(pathRe *regexp.Regexp) *Analyzer {
	if pathRe == nil {
		pathRe = regexp.MustCompile(`internal/server|internal/batch|labelstore|breaker`)
	}
	a := &Analyzer{
		Name: "lockcheck",
		Doc:  "path-sensitive Lock/Unlock pairing; RLock→Lock upgrades; locks held across blocking ops",
	}
	a.Run = func(p *Pass) {
		if !pathRe.MatchString(p.Pkg.Path) {
			return
		}
		// A deferred func(){...}() body is analyzed both inlined in its
		// parent's exit preamble and as a function of its own; dedupe so
		// a finding inside one reports once.
		seen := map[string]bool{}
		report := func(pos token.Pos, format string, args ...any) {
			msg := fmt.Sprintf(format, args...)
			key := fmt.Sprintf("%d:%s", pos, msg)
			if !seen[key] {
				seen[key] = true
				p.Reportf(pos, "%s", msg)
			}
		}
		walkFiles(p, func(f *ast.File) {
			forEachFuncBody(f, func(name string, _ *ast.FuncType, body *ast.BlockStmt) {
				lockCheckFunc(p, name, body, report)
			})
		})
	}
	return a
}

func lockCheckFunc(p *Pass, name string, body *ast.BlockStmt, report func(pos token.Pos, format string, args ...any)) {
	g := BuildCFG(body)
	reporting := false

	transfer := func(b *Block, in lockFact) lockFact {
		out := in
		mutated := false
		set := func(key string, st lockState) {
			if !mutated {
				out = out.clone()
				mutated = true
			}
			out[key] = st
		}
		blocking := func(pos token.Pos, what string) {
			if !reporting {
				return
			}
			keys := make([]string, 0, len(out))
			for k := range out {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				st := out[k]
				if st.states&(lockL|lockR) != 0 {
					report(pos, "%s may be held across %s (acquired at line %d): a goroutine parked here stalls every other acquirer; release the lock before blocking",
						st.disp, what, p.Position(st.pos).Line)
				}
			}
		}
		for i, node := range b.Nodes {
			commExempt := i == 0 && selectHasDefault(b)
			ast.Inspect(node, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					return false // a different function, analyzed separately
				case *ast.DeferStmt:
					return false // effects apply in the exit preamble
				case *ast.SendStmt:
					if !commExempt {
						blocking(n.Pos(), "a channel send")
					}
				case *ast.UnaryExpr:
					if n.Op == token.ARROW && !commExempt {
						blocking(n.Pos(), "a channel receive")
					}
				case *ast.CallExpr:
					if recv, method, ok := mutexMethod(p, n); ok {
						key, disp := lockExprKey(p, recv)
						if key == "" {
							return true
						}
						st := out[key]
						switch method {
						case "Lock":
							if reporting && st.states&lockL != 0 {
								report(n.Pos(), "Lock of %s while it may already be locked on this path (line %d): sync mutexes are not reentrant, this self-deadlocks",
									disp, p.Position(st.pos).Line)
							} else if reporting && st.states&lockR != 0 {
								report(n.Pos(), "Lock of %s while its RLock may be held (line %d): the RLock→Lock upgrade self-deadlocks; RUnlock before locking",
									disp, p.Position(st.pos).Line)
							}
							set(key, lockState{states: lockL, pos: n.Pos(), disp: disp})
						case "RLock":
							if reporting && st.states&lockL != 0 {
								report(n.Pos(), "RLock of %s while its Lock may be held (line %d): self-deadlock", disp, p.Position(st.pos).Line)
							}
							set(key, lockState{states: lockR, pos: n.Pos(), disp: disp})
						case "Unlock":
							if reporting && st.states == lockR {
								report(n.Pos(), "Unlock of %s which is read-locked here: use RUnlock (Unlock of an RLock'd RWMutex is a runtime fatal error)", disp)
							}
							set(key, lockState{states: lockU, disp: disp})
						case "RUnlock":
							if reporting && st.states == lockL {
								report(n.Pos(), "RUnlock of %s which is write-locked here: use Unlock", disp)
							}
							set(key, lockState{states: lockU, disp: disp})
						case "TryLock":
							set(key, lockState{states: st.states | lockL | lockU, pos: n.Pos(), disp: disp})
						case "TryRLock":
							set(key, lockState{states: st.states | lockR | lockU, pos: n.Pos(), disp: disp})
						}
						return true
					}
					if what := blockingCall(p, n); what != "" {
						blocking(n.Pos(), what)
					}
				}
				return true
			})
		}
		return out
	}

	in, ok := Forward(g, lockFact{}, joinLock, lockFact.eq, transfer)
	if !ok {
		return // oscillating facts: do not report from a non-fixpoint
	}
	reporting = true
	eachReachable(g, in, transfer)

	exit, ok := in[g.Exit]
	if !ok {
		return // no path reaches the exit (e.g. an endless serve loop)
	}
	keys := make([]string, 0, len(exit))
	for k := range exit {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if st := exit[k]; st.states&(lockL|lockR) != 0 && st.pos != token.NoPos {
			report(st.pos, "%s may still be held when %s returns: unlock it on every path, or defer the unlock right after acquiring", st.disp, name)
		}
	}
}

// mutexMethod matches a call to (R)Lock/(R)Unlock/Try(R)Lock whose
// receiver is a sync.Mutex or sync.RWMutex (possibly via pointer).
func mutexMethod(p *Pass, call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return nil, "", false
	}
	tv, has := p.Pkg.Info.Types[sel.X]
	if !has || tv.Type == nil {
		return nil, "", false
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return nil, "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return nil, "", false
	}
	if n := obj.Name(); n != "Mutex" && n != "RWMutex" {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// lockExprKey derives a stable identity for a mutex expression: the
// root identifier's defining object plus the field path, so s.mu in
// two methods of the same receiver is the same key while shadowed
// locals stay distinct. Expressions rooted elsewhere (index, call)
// yield "" and are not tracked.
func lockExprKey(p *Pass, e ast.Expr) (key, disp string) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return lockExprKey(p, e.X)
	case *ast.Ident:
		obj := p.Pkg.Info.Uses[e]
		if obj == nil {
			obj = p.Pkg.Info.Defs[e]
		}
		if obj == nil {
			return "", ""
		}
		return fmt.Sprintf("%s@%d", e.Name, obj.Pos()), e.Name
	case *ast.SelectorExpr:
		k, d := lockExprKey(p, e.X)
		if k == "" {
			return "", ""
		}
		return k + "." + e.Sel.Name, d + "." + e.Sel.Name
	}
	return "", ""
}

// blockingCall classifies calls that can park the goroutine
// indefinitely: WaitGroup/Cond/process Wait, time.Sleep, and outbound
// HTTP (package-level helpers or (*http.Client) methods).
func blockingCall(p *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Wait":
		if len(call.Args) == 0 {
			return "a Wait call"
		}
	case "Sleep":
		if isPkgCall(p, call, "time", "Sleep") {
			return "time.Sleep"
		}
	case "Get", "Post", "Head", "PostForm":
		if isPkgCall(p, call, "net/http", sel.Sel.Name) {
			return "an HTTP call"
		}
	case "Do":
		tv, has := p.Pkg.Info.Types[sel.X]
		if has && tv.Type != nil {
			t := tv.Type
			if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			if named, isNamed := t.(*types.Named); isNamed {
				if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Client" {
					return "an HTTP call"
				}
			}
		}
	}
	return ""
}

// selectHasDefault reports whether b is a select communication block
// whose select also has a default clause — then the communication
// cannot block.
func selectHasDefault(b *Block) bool {
	if b.Desc != "select.case" {
		return false
	}
	for _, pred := range b.Preds {
		for _, s := range pred.Succs {
			if s.Desc == "select.default" {
				return true
			}
		}
	}
	return false
}
