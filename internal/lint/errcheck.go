package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// defaultErrPathRe scopes the check to the layers where a dropped
// error loses data on disk or hides a bad exit code: the CLIs and the
// dataset I/O package.
var defaultErrPathRe = regexp.MustCompile(`(^|/)cmd(/|$)|internal/data(/|$)`)

// errDiscardOK lists call targets whose error is conventionally
// discarded: terminal printing to stdout/stderr cannot be usefully
// handled, and strings.Builder / bytes.Buffer writes never fail.
func errDiscardOK(p *Pass, call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := fn.X.(*ast.Ident); ok {
			if obj, ok := p.Pkg.Info.Uses[id].(*types.PkgName); ok && obj.Imported().Path() == "fmt" {
				switch fn.Sel.Name {
				case "Print", "Printf", "Println":
					return true
				case "Fprint", "Fprintf", "Fprintln":
					return len(call.Args) > 0 && isStdStream(p, call.Args[0])
				}
			}
		}
		// Methods on never-failing writers.
		if tv, ok := p.Pkg.Info.Types[fn.X]; ok && tv.Type != nil {
			t := tv.Type
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
				if (pkg == "strings" && name == "Builder") || (pkg == "bytes" && name == "Buffer") {
					return true
				}
			}
		}
	}
	return false
}

// ErrCheckAnalyzer flags statements that silently drop an error result
// in the CLI and dataset-I/O packages (pathRe, nil for the default
// scope). An explicit `_ =` assignment is treated as a deliberate,
// visible discard and is not flagged; neither are deferred calls,
// whose Close-on-read idiom is conventional.
func ErrCheckAnalyzer(pathRe *regexp.Regexp) *Analyzer {
	if pathRe == nil {
		pathRe = defaultErrPathRe
	}
	a := &Analyzer{
		Name: "errcheck",
		Doc:  "dropped error returns in cmd/ and internal/data",
	}
	a.Run = func(p *Pass) {
		if !pathRe.MatchString(p.Pkg.Path) {
			return
		}
		walkFiles(p, func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				stmt, ok := n.(*ast.ExprStmt)
				if !ok {
					return true
				}
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !returnsError(p, call) || errDiscardOK(p, call) {
					return true
				}
				p.Reportf(call.Pos(), "error returned by %s is silently dropped: handle it or discard explicitly with _ =", callLabel(call))
				return true
			})
		})
	}
	return a
}

// isStdStream reports whether e is os.Stdout or os.Stderr.
func isStdStream(p *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stdout" && sel.Sel.Name != "Stderr") {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
	return ok && obj.Imported().Path() == "os"
}

// returnsError reports whether call's result tuple contains an error.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	tv, ok := p.Pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// callLabel renders a short name for the call in diagnostics.
func callLabel(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		if id, ok := fn.X.(*ast.Ident); ok {
			return id.Name + "." + fn.Sel.Name
		}
		return fn.Sel.Name
	}
	return "call"
}
