// Fixture for the fsync analyzer: rename/sync ordering and unchecked
// (*os.File).Sync errors.
package fixture

import "os"

// publishUnsynced renames with no sync anywhere in the function: the
// classic torn-publish bug.
func publishUnsynced(tmp, final string) error {
	return os.Rename(tmp, final) // want "os.Rename without a preceding sync"
}

// publishSynced follows the protocol: fsync, then rename.
func publishSynced(f *os.File, tmp, final string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename(tmp, final) // preceded by f.Sync: fine
}

// syncTree stands in for a helper whose name advertises durability.
func syncTree(path string) error { return nil }

// publishViaHelper satisfies the rule through a sync-named helper.
func publishViaHelper(tmp, final string) error {
	if err := syncTree(tmp); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// renameBeforeSync has the steps in the wrong order: the sync after
// the rename does not protect the published name.
func renameBeforeSync(f *os.File, tmp, final string) error {
	if err := os.Rename(tmp, final); err != nil { // want "os.Rename without a preceding sync"
		return err
	}
	return f.Sync()
}

// quarantineMove demonstrates the sanctioned escape hatch for renames
// that genuinely need no sync.
func quarantineMove(path string) error {
	//lint:ignore fsync moving already-bad bytes aside; a lost rename just re-quarantines later
	return os.Rename(path, path+".corrupt")
}

// droppedSyncs lose the one error fsync exists to report.
func droppedSyncs(f *os.File) error {
	f.Sync()       // want "Sync error is silently dropped"
	defer f.Sync() // want "Sync error is silently dropped"
	if err := f.Sync(); err != nil {
		return err
	}
	return nil
}

// branchSkipsSync is the case the syntactic v1 analyzer missed: a
// sync exists in the function, but only on one branch — the fast path
// publishes unsynced data, and only path-sensitive analysis sees it.
func branchSkipsSync(f *os.File, fast bool, tmp, final string) error {
	if !fast {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	return os.Rename(tmp, final) // want "os.Rename without a preceding sync"
}

// bothBranchesSync is the clean counterpart: every path to the rename
// syncs (one via f.Sync, one via a sync-named helper), so the
// path-sensitive rule stays quiet.
func bothBranchesSync(f *os.File, fast bool, tmp, final string) error {
	if fast {
		if err := f.Sync(); err != nil {
			return err
		}
	} else {
		if err := syncTree(tmp); err != nil {
			return err
		}
	}
	return os.Rename(tmp, final) // synced on every path: fine
}

// writeAfterSync: a Write makes the earlier sync stale, so the rename
// publishes bytes never flushed.
func writeAfterSync(f *os.File, tmp, final string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if _, err := f.Write([]byte("tail")); err != nil {
		return err
	}
	return os.Rename(tmp, final) // want "os.Rename without a preceding sync"
}

// syncOnlyInLoop: the loop can run zero times, so there is an
// unsynced path to the rename.
func syncOnlyInLoop(f *os.File, tmp, final string, n int) error {
	for i := 0; i < n; i++ {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	return os.Rename(tmp, final) // want "os.Rename without a preceding sync"
}

// notAFileSync: Sync methods on non-file types are out of scope.
type flusher struct{}

func (flusher) Sync() {}

func otherSync() {
	var fl flusher
	fl.Sync()
}
