// Fixture for the errcheck analyzer. Loaded under an import path
// matching the default cmd//internal/data scope.
package fixture

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func fails() error       { return errors.New("x") }
func pair() (int, error) { return 0, nil }
func pure() int          { return 1 }

func drops(f *os.File) {
	fails() // want "silently dropped"
	pair()  // want "silently dropped"
	pure()  // no error in the results: fine
	_ = fails()
	if err := fails(); err != nil {
		_ = err
	}
	fmt.Println("ok")
	fmt.Fprintln(os.Stderr, "ok")
	fmt.Fprintln(os.Stdout, "ok")
	var sb strings.Builder
	sb.WriteString("never fails")
	fmt.Fprintln(f, "x") // want "silently dropped"
	//lint:ignore errcheck fixture demonstrates suppression
	fails()
	defer f.Close() // deferred Close is conventional
}
