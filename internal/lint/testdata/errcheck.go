// Fixture for the errcheck analyzer. Loaded under an import path
// matching the default cmd//internal/data scope.
package fixture

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
)

func fails() error       { return errors.New("x") }
func pair() (int, error) { return 0, nil }
func pure() int          { return 1 }

func drops(f *os.File) {
	fails() // want "silently dropped"
	pair()  // want "silently dropped"
	pure()  // no error in the results: fine
	_ = fails()
	if err := fails(); err != nil {
		_ = err
	}
	fmt.Println("ok")
	fmt.Fprintln(os.Stderr, "ok")
	fmt.Fprintln(os.Stdout, "ok")
	var sb strings.Builder
	sb.WriteString("never fails")
	fmt.Fprintln(f, "x") // want "silently dropped"
	//lint:ignore errcheck fixture demonstrates suppression
	fails()
	defer f.Close() // deferred Close is conventional
}

// The graceful-shutdown pattern in server mains: Shutdown returns the
// drain outcome and must not be dropped.
func stop(srv *http.Server, ctx context.Context) {
	srv.Shutdown(ctx) // want "silently dropped"
	if err := srv.Shutdown(ctx); err != nil {
		_ = err
	}
	defer srv.Close() // deferred Close is conventional
}
