// Fixture for the faultpoint analyzer. The package mimics the fault
// registry's API surface (it must be named "fault" and declare Point*
// constants for the analyzer to find the registered set).
package fault

const (
	PointAlpha      = "alpha.step"
	PointBeta       = "beta.step"
	PointEpochClose = "batch.epoch_close"
	PointScatter    = "shard.scatter"
	PointShardRun   = "shard.run"
	PointDead       = "gamma.dead" // want "never fired outside tests"
)

// Rule arms one injection point.
type Rule struct {
	Point string
	P     float64
}

// Registry is the armed-rule store.
type Registry struct{}

func (r *Registry) Fire(point string) error   { return nil }
func (r *Registry) Fired(point string) uint64 { return 0 }
func (r *Registry) Clear(point string)        {}
func (r *Registry) Arm(rule Rule)             {}

// Parse builds a registry from flag syntax.
func Parse(spec string) (*Registry, error) { return nil, nil }

func driver(r *Registry) {
	_ = r.Fire(PointAlpha)   // the constant: fine
	_ = r.Fire("alpha.step") // want "spelled as a string literal"
	_ = r.Fire("alpha.stpe") // want "unknown injection point"
	r.Clear(PointBeta)

	_, _ = Parse("seed=1;beta.step=panic:1") // registered point: fine
	_, _ = Parse("beta.stpe=panic:1")        // want "arms unknown injection point"

	r.Arm(Rule{Point: PointAlpha, P: 1})
	r.Arm(Rule{Point: "beta.step", P: 1}) // want "spelled as a string literal"
	r.Arm(Rule{Point: "nope.step", P: 1}) // want "unknown injection point"

	// Epoch-style point: fired through the constant and armed via flag
	// syntax, like the batch engine's epoch-close hook.
	_ = r.Fire(PointEpochClose)
	_, _ = Parse("seed=7;batch.epoch_close=error:0.05")
	_ = r.Fire("batch.epoch_clsoe") // want "unknown injection point"

	// Scatter–gather points: the coordinator fires scatter once per
	// query and run once per shard attempt; chaos specs may arm
	// several rules at the same point (error + latency here).
	_ = r.Fire(PointScatter)
	_ = r.Fire(PointShardRun)
	_, _ = Parse("seed=3;shard.run=error:0.15;shard.run=latency:0.3:40ms")
	_ = r.Fire("shard.rnu") // want "unknown injection point"
}
