// Fixture for the recover analyzer.
package fixture

import "fmt"

func cleanup() {}

func swallowBare() {
	defer func() {
		recover() // want "swallows the panic"
	}()
}

func swallowBlank() {
	defer func() {
		_ = recover() // want "swallows the panic"
	}()
}

// A panic in the outer function does not excuse the deferred closure:
// the recovered value still dies inside it.
func outerPanicDoesNotExcuse() {
	defer func() {
		recover() // want "swallows the panic"
	}()
	panic("raised in the outer scope")
}

// Re-panicking after cleanup passes the value on: fine.
func repanics() {
	defer func() {
		if rec := recover(); rec != nil {
			cleanup()
			panic(rec)
		}
	}()
}

// Converting the panic into an error records it: fine.
func records() (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("caught: %v", rec)
		}
	}()
	return nil
}

// Inspecting the result in a condition uses it: fine.
func inspects() bool {
	caught := false
	defer func() {
		if recover() != nil {
			caught = true
		}
	}()
	return caught
}

// Discarding the old value but raising a fresh panic keeps control
// flow visibly failing: allowed.
func replacesPanic() {
	defer func() {
		_ = recover()
		panic("translated failure")
	}()
}

// A shadowing declaration is not the builtin.
func shadowed() {
	recover := func() any { return nil }
	recover()
}
