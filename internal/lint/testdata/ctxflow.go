// Fixture for the ctxflow analyzer: functions that accept a context
// must thread it — no Background/TODO laundering, no may-be-fresh
// handoffs, no calling the ctx-dropping variant of a method pair.
package fixture

import "context"

type worker struct{}

func (worker) Run(n int) int                             { return n }
func (worker) RunContext(ctx context.Context, n int) int { return n }
func (worker) Stop()                                     {}

func fetch(ctx context.Context, url string) error { return nil }

// launder discards the caller's deadline on the spot.
func launder(ctx context.Context, url string) error {
	return fetch(context.Background(), url) // want "context.Background() inside launder"
}

// launderOnBranch is the flow-sensitive case: use is fine on one path
// and fresh on the other, and the call site sees the merge.
func launderOnBranch(ctx context.Context, fallback bool, url string) error {
	use := ctx
	if fallback {
		use = context.TODO() // want "context.TODO() inside launderOnBranch"
	}
	return fetch(use, url) // want "may hold a fresh Background/TODO context"
}

// threads is the clean shape: the derived context keeps the caller's
// cancellation.
func threads(ctx context.Context, url string) error {
	cctx, cancel := context.WithTimeout(ctx, 0)
	defer cancel()
	return fetch(cctx, url)
}

// dropsCtx calls the variant that silently substitutes Background.
func dropsCtx(ctx context.Context, w worker) int {
	return w.Run(1) // want "call RunContext"
}

// keepsCtx uses the context-capable variant.
func keepsCtx(ctx context.Context, w worker) int {
	w.Stop() // no StopContext exists: fine
	return w.RunContext(ctx, 1)
}

// shim has no ctx parameter, so starting a context is its job.
func shim(url string) error {
	return fetch(context.Background(), url)
}

// spawn: a function literal with its own ctx parameter is its own
// function and is held to the same rules.
func spawn(ctx context.Context, urls []string) {
	run := func(ctx context.Context, url string) error {
		return fetch(context.Background(), url) // want "context.Background()"
	}
	for _, u := range urls {
		_ = run(ctx, u)
	}
}
