// Fixture for the gohygiene analyzer.
package fixture

import "sync"

func capture(items []int) {
	for i := range items {
		go func() {
			_ = i // want "captures loop variable"
		}()
		go func(i int) { _ = i }(i) // passed as argument: fine
	}
	for j := 0; j < 4; j++ {
		go func() {
			use(j) // want "captures loop variable"
		}()
	}
}

func use(int) {}

func byValueParam(wg sync.WaitGroup) { // want "passed by value"
	wg.Wait()
}

func pointerParamOK(wg *sync.WaitGroup) {
	wg.Wait()
}

func takesMu(mu sync.Mutex) { // want "passed by value"
	mu.Lock()
}

func callByValue() {
	var mu sync.Mutex
	takesMu(mu) // want "copied by value"
	takesPtr(&mu)
}

func takesPtr(*sync.Mutex) {}

func copyAssign() {
	var mu sync.Mutex
	mu2 := mu // want "copied by assignment"
	mu2.Lock()
	p := &mu // pointer: fine
	p.Lock()
}

func addInside() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want "before the go statement"
		defer wg.Done()
	}()
	wg.Wait()
}

func addOutsideOK() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}
