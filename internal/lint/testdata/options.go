// Fixture for the options analyzer. The local UniformConfig mirrors
// data.UniformConfig's shape; matching is by type name.
package fixture

type UniformConfig struct {
	N, M      int
	FieldSize float64
	Spread    float64
	Seed      int64
}

type Unregistered struct{ A, B int }

func lits() {
	_ = UniformConfig{N: 10, M: 3, FieldSize: 10, Spread: 2, Seed: 1}
	_ = UniformConfig{N: 10, M: 3, FieldSize: 10, Spread: 2} // Seed has a safe zero
	_ = UniformConfig{N: 10, M: 3}                           // want "omits FieldSize, Spread"
	_ = UniformConfig{}                                      // want "omits FieldSize, M, N, Spread"
	_ = UniformConfig{10, 3, 10, 2, 1}                       // positional: complete by construction
	_ = Unregistered{A: 1}                                   // not a registered config type
}
