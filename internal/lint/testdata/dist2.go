// Fixture for the dist2 analyzer. Self-contained: the analyzer keys
// on the Dist2/NearestDist2/Dist2To names and on the math package, so
// local stand-ins exercise the same paths as the real geom package.
package fixture

import "math"

func Dist2(a, b float64) float64     { return (a - b) * (a - b) }
func NearestDist2(a float64) float64 { return a * a }

type Box struct{}

func (Box) Dist2To(p float64) float64 { return p }

func compare(r, radius, r2 float64, b Box) bool {
	if Dist2(1, 2) <= r { // want "unsquared radius"
		return true
	}
	if Dist2(1, 2) <= r*r { // squared: fine
		return true
	}
	if r >= Dist2(3, 4) { // want "unsquared radius"
		return true
	}
	if NearestDist2(1) < radius { // want "unsquared radius"
		return true
	}
	if b.Dist2To(1) > r2 { // precomputed square: fine
		return true
	}
	if b.Dist2To(1) > r+1 { // not a bare radius: out of scope
		return true
	}
	return false
}

func hotSqrt(r float64) float64 {
	x := math.Sqrt(r) // want "hot-path"
	//lint:ignore dist2 fixture demonstrates suppression
	y := math.Sqrt(r)
	return x + y
}

// Point is a local stand-in for geom.Point; the posting-loop rule keys
// on the element type name.
type Point struct{ X, Y, Z float64 }

func postingLoops(pts []Point, q Point, r2 float64) int {
	n := 0
	for _, pp := range pts {
		if Dist2(pp.X, q.X) <= r2 { // want "posting loop"
			n++
		}
	}
	for i := range pts {
		if Dist2(pts[i].Y, q.Y) <= r2 { // want "posting loop"
			n++
		}
	}
	for _, pp := range pts {
		for j := range pts { // nested ranges must not double-report
			if Dist2(pp.Z, pts[j].Z) <= r2 { // want "posting loop"
				n++
			}
		}
	}
	for _, f := range []float64{1, 2} {
		if Dist2(f, q.X) <= r2 { // not a Point loop: fine
			n++
		}
	}
	for _, pp := range pts {
		//lint:ignore dist2 fixture demonstrates posting-loop suppression
		if Dist2(pp.X, pp.Y) <= r2 {
			n++
		}
	}
	return n
}
