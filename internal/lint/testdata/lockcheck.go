// Fixture for the lockcheck analyzer: path-sensitive Lock/Unlock
// pairing, RLock→Lock upgrades, and blocking operations under a held
// mutex.
package fixture

import (
	"errors"
	"sync"
	"time"
)

var errBoom = errors.New("boom")

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// missingUnlockOnBranch leaks the lock on the error path; the report
// anchors at the acquisition.
func missingUnlockOnBranch(g *guarded, fail bool) error {
	g.mu.Lock() // want "may still be held when missingUnlockOnBranch returns"
	if fail {
		return errBoom
	}
	g.mu.Unlock()
	return nil
}

// deferredUnlock is the canonical clean shape: the deferred unlock
// covers every exit.
func deferredUnlock(g *guarded, fail bool) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if fail {
		return errBoom
	}
	g.n++
	return nil
}

// doubleLock self-deadlocks: sync.Mutex is not reentrant.
func doubleLock(g *guarded) {
	g.mu.Lock()
	g.mu.Lock() // want "may already be locked"
	g.mu.Unlock()
	g.mu.Unlock()
}

// upgrade takes the write lock while holding the read lock — the
// writer waits for the reader it is.
func upgrade(g *guarded) int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	if g.n > 0 {
		g.rw.Lock() // want "upgrade self-deadlocks"
		g.n = 0
		g.rw.Unlock()
	}
	return g.n
}

// sendUnderLock parks the goroutine on a channel while holding the
// mutex: every other acquirer stalls with it.
func sendUnderLock(g *guarded, ch chan int) {
	g.mu.Lock()
	ch <- g.n // want "may be held across a channel send"
	g.mu.Unlock()
}

// recvUnderDeferredUnlock: the deferred unlock runs at return, so the
// lock really is held across the receive.
func recvUnderDeferredUnlock(g *guarded, ch chan int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-ch // want "may be held across a channel receive"
}

// waitUnderLock blocks on a WaitGroup with the mutex held.
func waitUnderLock(g *guarded, wg *sync.WaitGroup) {
	g.mu.Lock()
	wg.Wait() // want "may be held across a Wait call"
	g.mu.Unlock()
}

// unlockThenWait is the clean ordering: release, then block.
func unlockThenWait(g *guarded, wg *sync.WaitGroup) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	wg.Wait()
}

// sleepUnderRLock holds the read lock across a sleep, stalling every
// writer for the duration.
func sleepUnderRLock(g *guarded) {
	g.rw.RLock()
	defer g.rw.RUnlock()
	time.Sleep(time.Millisecond) // want "may be held across time.Sleep"
}

// nonBlockingSelect cannot park: the select has a default clause.
func nonBlockingSelect(g *guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case ch <- g.n:
	default:
	}
}

// blockingSelect has no default, so the communication blocks with the
// lock held.
func blockingSelect(g *guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case ch <- g.n: // want "may be held across a channel send"
	}
}

// wrongUnlockFlavor: Unlock of an RLock'd RWMutex is a runtime fatal.
func wrongUnlockFlavor(g *guarded) {
	g.rw.RLock()
	g.rw.Unlock() // want "use RUnlock"
}

// lockInLoop re-locks on the second iteration without an intervening
// unlock; the fixpoint carries the held state around the back edge.
func lockInLoop(g *guarded, n int) {
	for i := 0; i < n; i++ {
		g.mu.Lock() // want "may already be locked"
		g.n++
	}
	g.mu.Unlock()
}

// deferredClosureUnlock: the unlock lives inside a deferred func
// literal, which the CFG inlines into the exit preamble — clean.
func deferredClosureUnlock(g *guarded) {
	g.mu.Lock()
	defer func() {
		g.n++
		g.mu.Unlock()
	}()
	g.n++
}

// twoMutexes: distinct mutexes do not interfere.
func twoMutexes(a, b *guarded) {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}
