// Fixture for the scratch analyzer. The local Scratch mirrors the
// bitmap.Scratch method surface the analyzer classifies.
package fixture

type Scratch struct{ bits []uint64 }

func NewScratch(n int) *Scratch                           { return &Scratch{} }
func (s *Scratch) Reset()                                 {}
func (s *Scratch) Set(i int)                              {}
func (s *Scratch) Clear(i int)                            {}
func (s *Scratch) OrScratch(t *Scratch)                   {}
func (s *Scratch) OrCompressed(c int)                     {}
func (s *Scratch) AndNotFromCompressed(c int, t *Scratch) {}
func (s *Scratch) Cardinality() int                       { return 0 }

func reuseBug(items, out []int) {
	s := NewScratch(8)
	for i := range items {
		s.Set(i) // want "without a Reset"
		out[i] = s.Cardinality()
	}
}

func reuseOK(items, out []int) {
	s := NewScratch(8)
	for i := range items {
		s.Reset()
		s.Set(i)
		out[i] = s.Cardinality()
	}
}

func unionOK(items []int) int {
	s := NewScratch(8)
	for i := range items {
		s.Set(i) // accumulating a union, result read after the loop
	}
	return s.Cardinality()
}

func guardOK(items []int) {
	s := NewScratch(8)
	for i := range items {
		s.Set(i)
		if s.Cardinality() > 2 { // progress guard, not a result read
			return
		}
	}
}

func andNotOK(items, out []int, t *Scratch) {
	s := NewScratch(8)
	for i := range items {
		s.AndNotFromCompressed(i, t) // resets internally
		s.Set(i)
		out[i] = s.Cardinality()
	}
}

// flattenBug shows that worker closures inside the loop body count as
// part of the iteration.
func flattenBug(locals []*Scratch, run func(func(int))) {
	out := 0
	for i := 0; i < 4; i++ {
		run(func(w int) {
			locals[w].Set(i) // want "without a Reset"
		})
		out += locals[0].Cardinality()
	}
	_ = out
}

func flattenOK(locals []*Scratch, run func(func(int))) {
	out := 0
	for i := 0; i < 4; i++ {
		run(func(w int) {
			locals[w].Reset()
			locals[w].Set(i)
		})
		out += locals[0].Cardinality()
	}
	_ = out
}

func allocBug(items []int) {
	for range items {
		s := NewScratch(8) // want "hoist the allocation"
		s.Set(1)
	}
}

func poolOK(pool []*Scratch) {
	for w := range pool {
		pool[w] = NewScratch(8) // filling a worker pool: fine
	}
}

func workerClosureOK(items []int, run func(func())) {
	for range items {
		run(func() {
			s := NewScratch(8) // inside a closure: runs once per worker
			s.Set(1)
		})
	}
}
