// Package lint is a from-scratch static-analysis framework for this
// repository, built only on the standard library's go/parser, go/ast
// and go/types. It exists because the BIGrid pipeline's correctness
// hangs on conventions the type system cannot express: squared
// distances are compared against r², epoch-stamped scratch bitsets
// must be Reset between phases, and the parallel phases must follow
// strict goroutine hygiene. Each convention is enforced by an
// Analyzer; cmd/miolint wires them to a CLI.
//
// Diagnostics can be suppressed at a specific line with
//
//	//lint:ignore <analyzer> <reason>
//
// placed either on the flagged line or on the line directly above it.
// The analyzer name "all" suppresses every analyzer. A reason is
// mandatory; suppressions without one are reported themselves.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one repository-specific check. Run is invoked once per
// loaded package and reports findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Pkg  *Package
	an   *Analyzer
	sink *[]Diagnostic
	fset *token.FileSet
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      p.fset.Position(pos),
		Analyzer: p.an.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Runner owns a set of analyzers and applies them to loaded packages.
type Runner struct {
	Analyzers []*Analyzer
}

// NewRunner returns a Runner with the full default analyzer suite.
func NewRunner() *Runner {
	return &Runner{Analyzers: DefaultAnalyzers()}
}

// DefaultAnalyzers returns the repository's standard suite.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		Dist2Analyzer(nil),
		ScratchAnalyzer(),
		GoHygieneAnalyzer(),
		ErrCheckAnalyzer(nil),
		OptionsAnalyzer(nil),
		RecoverAnalyzer(),
		FsyncAnalyzer(nil),
	}
}

// Disable removes the named analyzers (comma-separated) from the
// runner. Unknown names are ignored.
func (r *Runner) Disable(names string) {
	drop := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		drop[strings.TrimSpace(n)] = true
	}
	kept := r.Analyzers[:0]
	for _, a := range r.Analyzers {
		if !drop[a.Name] {
			kept = append(kept, a)
		}
	}
	r.Analyzers = kept
}

// Run applies every analyzer to every package and returns the
// surviving (non-suppressed) diagnostics sorted by position.
func (r *Runner) Run(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		var raw []Diagnostic
		for _, a := range r.Analyzers {
			p := &Pass{Pkg: pkg, an: a, sink: &raw, fset: pkg.Fset}
			a.Run(p)
		}
		for _, d := range raw {
			if sup.suppressed(d) {
				continue
			}
			diags = append(diags, d)
		}
		diags = append(diags, sup.malformed...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// suppressions maps file:line to the analyzer names ignored there.
type suppressions struct {
	byLine    map[string]map[string]bool // "file:line" -> analyzer set
	malformed []Diagnostic
}

var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore(\s+(\S+))?(\s+(.*))?$`)

// collectSuppressions scans //lint:ignore comments. A comment at line
// L suppresses diagnostics on L and L+1, so both trailing and
// preceding placement work.
func collectSuppressions(pkg *Package) *suppressions {
	s := &suppressions{byLine: map[string]map[string]bool{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				name, reason := m[2], strings.TrimSpace(m[4])
				if name == "" || reason == "" {
					s.malformed = append(s.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := fmt.Sprintf("%s:%d", pos.Filename, line)
					if s.byLine[key] == nil {
						s.byLine[key] = map[string]bool{}
					}
					s.byLine[key][name] = true
				}
			}
		}
	}
	return s
}

func (s *suppressions) suppressed(d Diagnostic) bool {
	set := s.byLine[fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)]
	return set != nil && (set[d.Analyzer] || set["all"])
}

// walkFiles applies fn to every file of the package.
func walkFiles(p *Pass, fn func(f *ast.File)) {
	for _, f := range p.Pkg.Files {
		fn(f)
	}
}

// calleeName returns the bare name of a call's callee: "F" for F(...)
// and pkg.F(...), "M" for x.M(...).
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}
