// Package lint is a from-scratch static-analysis framework for this
// repository, built only on the standard library's go/parser, go/ast
// and go/types. It exists because the BIGrid pipeline's correctness
// hangs on conventions the type system cannot express: squared
// distances are compared against r², epoch-stamped scratch bitsets
// must be Reset between phases, and the parallel phases must follow
// strict goroutine hygiene. Each convention is enforced by an
// Analyzer; cmd/miolint wires them to a CLI.
//
// Beyond per-statement syntactic checks, the framework provides an
// intraprocedural CFG constructor (cfg.go) and a generic forward-
// dataflow fixpoint engine (dataflow.go); lockcheck, ctxflow and
// fsync are built on them and reason about every syntactic path, not
// just source order. DESIGN.md §13 documents the architecture and how
// to write a flow-sensitive analyzer.
//
// Diagnostics can be suppressed at a specific line with
//
//	//lint:ignore <analyzer> <reason>
//
// placed either on the flagged line or on the line directly above it.
// The analyzer name "all" suppresses every analyzer. A reason is
// mandatory; suppressions without one are reported themselves, and —
// when the runner's audit is on — so is any suppression that no
// longer matches a diagnostic, so suppressions cannot rot in place.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one repository-specific check. Run is invoked once per
// loaded package and reports findings through the Pass. Finish, when
// set, is invoked once after every package's Run with the whole
// module in view — for cross-package checks like dead fault points.
type Analyzer struct {
	Name   string
	Doc    string
	Run    func(p *Pass)
	Finish func(m *ModulePass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Pkg  *Package
	an   *Analyzer
	sink *[]Diagnostic
	fset *token.FileSet
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      p.fset.Position(pos),
		Analyzer: p.an.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Position resolves pos against the pass's file set, for analyzers
// that embed source locations ("acquired at line N") in messages.
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.fset.Position(pos)
}

// ModulePass is the whole-module view handed to Analyzer.Finish after
// every per-package Run. Each Package carries its own Fset, so Finish
// implementations resolve positions through the owning package.
type ModulePass struct {
	Pkgs []*Package
	an   *Analyzer
	sink *[]Diagnostic
}

// Report records a module-level diagnostic at an already-resolved
// position.
func (m *ModulePass) Report(pos token.Position, format string, args ...any) {
	*m.sink = append(*m.sink, Diagnostic{
		Pos:      pos,
		Analyzer: m.an.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Runner owns a set of analyzers and applies them to loaded packages.
type Runner struct {
	Analyzers []*Analyzer
	// AuditSuppressions reports //lint:ignore comments that matched no
	// diagnostic. NewRunner enables it; Disable turns it off (with
	// analyzers missing, their suppressions would all look stale), and
	// the zero value is off for the same reason.
	AuditSuppressions bool
}

// NewRunner returns a Runner with the full default analyzer suite and
// the stale-suppression audit enabled.
func NewRunner() *Runner {
	return &Runner{Analyzers: DefaultAnalyzers(), AuditSuppressions: true}
}

// DefaultAnalyzers returns the repository's standard suite.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		Dist2Analyzer(nil),
		ScratchAnalyzer(),
		GoHygieneAnalyzer(),
		ErrCheckAnalyzer(nil),
		OptionsAnalyzer(nil),
		RecoverAnalyzer(),
		FsyncAnalyzer(nil),
		LockCheckAnalyzer(nil),
		CtxFlowAnalyzer(),
		FaultPointAnalyzer(),
	}
}

// Disable removes the named analyzers (comma-separated) from the
// runner and turns off the stale-suppression audit, since the
// suppressions of a disabled analyzer cannot match anything.
func (r *Runner) Disable(names string) {
	drop := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		drop[strings.TrimSpace(n)] = true
	}
	kept := r.Analyzers[:0]
	for _, a := range r.Analyzers {
		if !drop[a.Name] {
			kept = append(kept, a)
		}
	}
	r.Analyzers = kept
	r.AuditSuppressions = false
}

// Run applies every analyzer to every package (then every Finish hook
// to the module) and returns the surviving (non-suppressed)
// diagnostics sorted by position.
func (r *Runner) Run(pkgs []*Package) []Diagnostic {
	sup := collectSuppressions(pkgs)
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range r.Analyzers {
			p := &Pass{Pkg: pkg, an: a, sink: &raw, fset: pkg.Fset}
			a.Run(p)
		}
	}
	for _, a := range r.Analyzers {
		if a.Finish != nil {
			a.Finish(&ModulePass{Pkgs: pkgs, an: a, sink: &raw})
		}
	}
	var diags []Diagnostic
	for _, d := range raw {
		if sup.suppressed(d) {
			continue
		}
		diags = append(diags, d)
	}
	diags = append(diags, sup.malformed...)
	if r.AuditSuppressions {
		diags = append(diags, sup.stale()...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// suppression is one //lint:ignore comment, with whether any
// diagnostic actually used it.
type suppression struct {
	pos  token.Position
	name string
	used bool
}

// suppressions indexes every comment by the file:line pairs it covers
// and keeps the full list for the stale audit.
type suppressions struct {
	byLine    map[string][]*suppression // "file:line" -> comments covering that line
	all       []*suppression
	malformed []Diagnostic
}

var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore(\s+(\S+))?(\s+(.*))?$`)

// collectSuppressions scans //lint:ignore comments across all
// packages. A comment at line L suppresses diagnostics on L and L+1,
// so both trailing and preceding placement work.
func collectSuppressions(pkgs []*Package) *suppressions {
	s := &suppressions{byLine: map[string][]*suppression{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := ignoreRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					name, reason := m[2], strings.TrimSpace(m[4])
					if name == "" || reason == "" {
						s.malformed = append(s.malformed, Diagnostic{
							Pos:      pos,
							Analyzer: "lint",
							Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\"",
						})
						continue
					}
					e := &suppression{pos: pos, name: name}
					s.all = append(s.all, e)
					for _, line := range []int{pos.Line, pos.Line + 1} {
						key := fmt.Sprintf("%s:%d", pos.Filename, line)
						s.byLine[key] = append(s.byLine[key], e)
					}
				}
			}
		}
	}
	return s
}

// suppressed reports whether d is covered, marking every covering
// comment as used.
func (s *suppressions) suppressed(d Diagnostic) bool {
	hit := false
	for _, e := range s.byLine[fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)] {
		if e.name == d.Analyzer || e.name == "all" {
			e.used = true
			hit = true
		}
	}
	return hit
}

// stale returns a diagnostic for every well-formed suppression that
// matched nothing.
func (s *suppressions) stale() []Diagnostic {
	var out []Diagnostic
	for _, e := range s.all {
		if e.used {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      e.pos,
			Analyzer: "lint",
			Message: fmt.Sprintf("stale //lint:ignore %s: no %s diagnostic on this or the next line; suppressions that outlive their finding hide future regressions, remove it",
				e.name, e.name),
		})
	}
	return out
}

// walkFiles applies fn to every file of the package.
func walkFiles(p *Pass, fn func(f *ast.File)) {
	for _, f := range p.Pkg.Files {
		fn(f)
	}
}

// calleeName returns the bare name of a call's callee: "F" for F(...)
// and pkg.F(...), "M" for x.M(...).
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}
