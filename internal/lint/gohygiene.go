package lint

import (
	"go/ast"
	"go/types"
)

// syncNoCopy lists the sync types that must never be copied once used.
var syncNoCopy = map[string]bool{
	"WaitGroup": true,
	"Mutex":     true,
	"RWMutex":   true,
	"Once":      true,
	"Cond":      true,
	"Pool":      true,
	"Map":       true,
}

// GoHygieneAnalyzer enforces the conventions the §IV parallel phases
// rely on:
//
//  1. a `go func(){...}()` literal spawned inside a loop must not
//     reference the loop variables directly — pass them as arguments.
//     (Go ≥1.22 makes the capture per-iteration, but the repository
//     convention keeps worker inputs explicit so the data flow into
//     each goroutine is visible at the spawn site.)
//  2. sync.WaitGroup, sync.Mutex and friends must not be passed,
//     declared as parameters, or re-assigned by value — a copied lock
//     or wait-counter silently diverges from the original;
//  3. wg.Add must be called before the goroutine is spawned, never
//     inside it — an Add racing Wait can let Wait return early.
func GoHygieneAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "gohygiene",
		Doc:  "loop-variable capture, by-value sync primitives and wg.Add placement",
	}
	a.Run = func(p *Pass) {
		walkFiles(p, func(f *ast.File) {
			checkGoStmts(p, f)
			checkSyncCopies(p, f)
		})
	}
	return a
}

// checkGoStmts walks with an explicit stack of enclosing loop
// variables so go-statement literals can be checked for captures and
// Add placement.
func checkGoStmts(p *Pass, f *ast.File) {
	var loopVars []map[types.Object]bool

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			vars := map[types.Object]bool{}
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if obj := p.Pkg.Info.Defs[id]; obj != nil {
						vars[obj] = true
					}
				}
			}
			loopVars = append(loopVars, vars)
			ast.Inspect(n.Body, visit)
			loopVars = loopVars[:len(loopVars)-1]
			return false
		case *ast.ForStmt:
			vars := map[types.Object]bool{}
			if init, ok := n.Init.(*ast.AssignStmt); ok {
				for _, e := range init.Lhs {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := p.Pkg.Info.Defs[id]; obj != nil {
							vars[obj] = true
						}
					}
				}
			}
			loopVars = append(loopVars, vars)
			if n.Cond != nil {
				ast.Inspect(n.Cond, visit)
			}
			ast.Inspect(n.Body, visit)
			loopVars = loopVars[:len(loopVars)-1]
			return false
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				checkCapture(p, lit, loopVars)
				checkAddInside(p, lit)
			}
			return true
		}
		return true
	}
	ast.Inspect(f, visit)
}

// checkCapture flags references inside the goroutine body to any
// enclosing loop variable.
func checkCapture(p *Pass, lit *ast.FuncLit, loopVars []map[types.Object]bool) {
	if len(loopVars) == 0 {
		return
	}
	reported := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Pkg.Info.Uses[id]
		if obj == nil || reported[obj] {
			return true
		}
		for _, vars := range loopVars {
			if vars[obj] {
				reported[obj] = true
				p.Reportf(id.Pos(), "goroutine captures loop variable %q: pass it as an argument to the func literal", id.Name)
			}
		}
		return true
	})
}

// checkAddInside flags wg.Add calls in the spawned body.
func checkAddInside(p *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false // a nested spawn site is its own problem
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		if name, ok := syncTypeOf(p, sel.X); ok && name == "WaitGroup" {
			p.Reportf(call.Pos(), "WaitGroup.Add inside the spawned goroutine races Wait: call Add before the go statement")
		}
		return true
	})
}

// checkSyncCopies flags by-value uses of sync primitives: parameters,
// call arguments and plain assignments. Taking a fresh composite
// literal or address is fine.
func checkSyncCopies(p *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncType:
			if n.Params == nil {
				return true
			}
			for _, field := range n.Params.List {
				if name, ok := syncValueType(p, field.Type); ok {
					p.Reportf(field.Type.Pos(), "sync.%s parameter passed by value: use *sync.%s", name, name)
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if isFreshSyncValue(arg) {
					continue
				}
				if name, ok := syncTypeOf(p, arg); ok && !isPointerExpr(p, arg) {
					p.Reportf(arg.Pos(), "sync.%s argument copied by value: pass a pointer", name)
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || isFreshSyncValue(rhs) {
					continue
				}
				switch ast.Unparen(rhs).(type) {
				case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
					if name, ok := syncTypeOf(p, rhs); ok && !isPointerExpr(p, rhs) {
						p.Reportf(rhs.Pos(), "sync.%s copied by assignment: share one instance via a pointer", name)
					}
				}
			}
		}
		return true
	})
}

// syncTypeOf returns the no-copy sync type name of e's (dereferenced)
// type, if any.
func syncTypeOf(p *Pass, e ast.Expr) (string, bool) {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return "", false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", false
	}
	name := named.Obj().Name()
	return name, syncNoCopy[name]
}

// syncValueType reports whether the type expression denotes a bare
// (non-pointer) no-copy sync type.
func syncValueType(p *Pass, te ast.Expr) (string, bool) {
	if _, isPtr := te.(*ast.StarExpr); isPtr {
		return "", false
	}
	tv, ok := p.Pkg.Info.Types[te]
	if !ok || tv.Type == nil {
		return "", false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", false
	}
	name := named.Obj().Name()
	return name, syncNoCopy[name]
}

// isFreshSyncValue reports whether e constructs a brand-new value
// (composite literal), which is safe to move.
func isFreshSyncValue(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		return true // &x is a pointer, handled elsewhere
	default:
		_ = e
	}
	return false
}

// isPointerExpr reports whether e's static type is a pointer.
func isPointerExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isPtr := tv.Type.Underlying().(*types.Pointer)
	return isPtr
}
