package core

import (
	"reflect"
	"testing"

	"mio/internal/grid"
)

// TestFrozenMatchesAoS locks the SoA freeze down as a pure layout
// change: with freezing disabled (AoS posting walk, scalar Dist2),
// forced everywhere (FreezeMinPoints 1: flat blocks, AABB pruning,
// batch kernels on every probed cell) and at the default threshold
// (big cells frozen, small cells AoS), identical queries must return
// identical top-k answers AND identical work counters — distComps in
// particular, since the AABB only resolves pairs in bulk that the
// scalar loop would have rejected one by one.
func TestFrozenMatchesAoS(t *testing.T) {
	for name, ds := range testDatasets(t) {
		for _, r := range rValues(name) {
			for _, workers := range []int{1, 4} {
				run := func(opts Options) *Result {
					t.Helper()
					opts.Workers = workers
					eng, err := NewEngine(ds, opts)
					if err != nil {
						t.Fatal(err)
					}
					res, err := eng.RunTopK(r, 5)
					if err != nil {
						t.Fatalf("%s r=%g w=%d %+v: %v", name, r, workers, opts, err)
					}
					return res
				}
				aos := run(Options{DisableFreeze: true})
				frozen := run(Options{FreezeMinPoints: 1})
				mixed := run(Options{}) // default threshold
				for i, res := range []*Result{frozen, mixed} {
					label := []string{"frozen", "mixed"}[i]
					if !reflect.DeepEqual(res.TopK, aos.TopK) {
						t.Errorf("%s r=%g w=%d: %s top-k %v, AoS %v",
							name, r, workers, label, res.TopK, aos.TopK)
					}
					if res.Stats.DistanceComps != aos.Stats.DistanceComps {
						t.Errorf("%s r=%g w=%d: %s distComps %d, AoS %d — pruning changed the accounting",
							name, r, workers, label, res.Stats.DistanceComps, aos.Stats.DistanceComps)
					}
					if res.Stats.Candidates != aos.Stats.Candidates || res.Stats.Verified != aos.Stats.Verified {
						t.Errorf("%s r=%g w=%d: %s candidates/verified %d/%d vs %d/%d",
							name, r, workers, label, res.Stats.Candidates, res.Stats.Verified,
							aos.Stats.Candidates, aos.Stats.Verified)
					}
				}
				// Lazily frozen cells must show up in the footprint
				// accounting (IndexBytes is taken after verification), so
				// the frozen run can never report a smaller grid. (Equal is
				// fine: a query whose masks empty out before any cell probe
				// freezes nothing. TestQueryPathIsFrozen pins the case where
				// freezing must happen.)
				if workers == 1 && frozen.Stats.LargeGridBytes < aos.Stats.LargeGridBytes {
					t.Errorf("%s r=%g: frozen large grid %dB smaller than AoS %dB",
						name, r, frozen.Stats.LargeGridBytes, aos.Stats.LargeGridBytes)
				}
			}
		}
	}
}

// TestQueryPathIsFrozen asserts lazy freezing actually happens on the
// production query path: with FreezeMinPoints 1 a query that verified
// candidates leaves frozen cells behind (exactly the probed ones), and
// DisableFreeze leaves none. It drives the internal query object so it
// can inspect the grid the run used.
func TestQueryPathIsFrozen(t *testing.T) {
	ds := testDatasets(t)["bird"]
	r := rValues("bird")[1]
	for _, workers := range []int{1, 4} {
		for _, disable := range []bool{false, true} {
			eng, err := NewEngine(ds, Options{Workers: workers, DisableFreeze: disable, FreezeMinPoints: 1})
			if err != nil {
				t.Fatal(err)
			}
			q := newQuery(eng, r, 1)
			res, err := q.run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Verified == 0 {
				t.Fatalf("w=%d: query verified nothing, probe path never ran", workers)
			}
			frozen, total := 0, 0
			q.idx.large.ForEach(func(_ grid.Key, c *grid.LargeCell) {
				total++
				if c.Frozen() != nil {
					frozen++
				}
			})
			if disable && frozen != 0 {
				t.Fatalf("w=%d DisableFreeze: %d of %d cells frozen", workers, frozen, total)
			}
			if !disable && frozen == 0 {
				t.Fatalf("w=%d: no cells frozen despite %d verified candidates", workers, res.Stats.Verified)
			}
			if !disable && frozen == total && total > 50 {
				t.Fatalf("w=%d: all %d cells frozen — freezing is not lazy", workers, total)
			}
		}
	}
}
