package core

import (
	"sort"

	"mio/internal/bitmap"
	"mio/internal/core/labelstore"
)

// ctrSet accumulates work counters. Each worker owns one; they are
// summed into PhaseStats so hot loops never touch shared state.
type ctrSet struct {
	adjComputed int
	distComps   int
}

func (q *query) addCounters(cs []ctrSet) {
	for _, c := range cs {
		q.stats.AdjComputed += c.adjComputed
		q.stats.DistanceComps += c.distComps
	}
}

// lowerBounding implements LOWER-BOUNDING(O, r) (Algorithm 4) and its
// WITH-LABEL variant. It fills q.tauLow and returns the pruning
// threshold: the maximum lower bound, or the k-th highest for the
// top-k variant (§III-C).
func (q *query) lowerBounding() int {
	q.tauLow = make([]int32, q.n)
	if q.labels != nil {
		q.lbBits = make([]*bitmap.Compressed, q.n)
	}
	if q.e.opts.workers() > 1 {
		// The parallel strategies have no early-out: once entered, every
		// object's bound is computed.
		q.parallelLowerBounding()
		q.lbDone = true
	} else {
		complete := true
		scratch := bitmap.NewScratch(q.n)
		for i := 0; i < q.n; i++ {
			if i&1023 == 0 && q.cancelled() {
				complete = false
				break
			}
			q.lowerBoundObject(i, scratch)
		}
		// A partial tauLow (zeros past the break) is still a sound
		// per-object lower bound, but only a complete pass certifies
		// the degraded answer's "best candidate" choice.
		q.lbDone = complete
	}
	return q.kthHighest(q.tauLow)
}

// lowerBoundObject computes τ^low(o_i) = |⋁_{K∈o_i.L} b(c_K)| − 1
// (Lemma 1) into q.tauLow[i] using the provided scratch bitset.
func (q *query) lowerBoundObject(i int, scratch *bitmap.Scratch) {
	keys := q.idx.keyLists[i]
	if len(keys) == 0 {
		q.tauLow[i] = 0
		return
	}
	scratch.Reset()
	for _, k := range keys {
		scratch.OrCompressed(q.idx.small.Cell(k).B)
	}
	q.tauLow[i] = int32(scratch.Cardinality() - 1)
	if q.lbBits != nil {
		q.lbBits[i] = scratch.ToCompressed()
	}
}

// kthHighest returns the k-th highest value in vals (k = q.k) among
// the objects q.restrict allows, the top-k pruning threshold.
func (q *query) kthHighest(vals []int32) int {
	if q.k == 1 && q.restrict == nil {
		best := int32(0)
		for _, v := range vals {
			if v > best {
				best = v
			}
		}
		return int(best)
	}
	cp := make([]int32, 0, len(vals))
	for i, v := range vals {
		if q.allowed(i) {
			cp = append(cp, v)
		}
	}
	sort.Slice(cp, func(a, b int) bool { return cp[a] > cp[b] })
	if q.k-1 < len(cp) {
		return int(cp[q.k-1])
	}
	return 0
}

// allowed reports whether object i may appear in the answer.
func (q *query) allowed(i int) bool {
	return q.restrict == nil || q.restrict[i]
}

// candidate is an O_cand entry: an object surviving Theorem 2 pruning,
// with its upper bound.
type candidate struct {
	obj    int32
	tauUpp int32
}

// upperBounding implements UPPER-BOUNDING(O, r, τ^low_max)
// (Algorithm 5) and its WITH-LABEL variant. It returns O_cand sorted by
// descending upper bound.
func (q *query) upperBounding(threshold int) []candidate {
	q.computeUpperBounds()
	return q.assembleCandidates(threshold)
}

// computeUpperBounds fills q.tauUpp (Lemma 2). τ^upp is a function of
// the large grid and the labels alone — both determined by ⌈r⌉, not
// the exact r — so group runs (batch.go) execute this once per
// shared-⌈r⌉ group and share the vector across every member.
func (q *query) computeUpperBounds() {
	q.tauUpp = make([]int32, q.n)
	if q.e.opts.workers() > 1 {
		q.parallelUpperBounding()
		q.ubDone = true
	} else {
		complete := true
		scratch := bitmap.NewScratch(q.n)
		ctr := ctrSet{}
		for i := 0; i < q.n; i++ {
			if i&1023 == 0 && q.cancelled() {
				complete = false
				break
			}
			q.upperBoundObject(i, scratch, &ctr)
		}
		// Unlike tauLow, a partial tauUpp is NOT sound (zeros are not
		// upper bounds), so the degraded path must know it is unusable.
		q.ubDone = complete
		q.addCounters([]ctrSet{ctr})
	}
}

// assembleCandidates builds O_cand from the bound vectors: every
// object with τ^upp ≥ threshold, sorted by descending upper bound
// with the object id breaking ties so the order — and with it the
// best-first verification sequence — is deterministic.
func (q *query) assembleCandidates(threshold int) []candidate {
	cand := make([]candidate, 0, q.n/4+1)
	for i := 0; i < q.n; i++ {
		if int(q.tauUpp[i]) >= threshold && q.allowed(i) {
			cand = append(cand, candidate{obj: int32(i), tauUpp: q.tauUpp[i]})
		}
	}
	sort.Slice(cand, func(a, b int) bool {
		if cand[a].tauUpp != cand[b].tauUpp {
			return cand[a].tauUpp > cand[b].tauUpp
		}
		return cand[a].obj < cand[b].obj
	})
	return cand
}

// upperBoundObject computes τ^upp(o_i) (Lemma 2) into q.tauUpp[i],
// computing b^adj cells on demand and emitting Labeling-1/-2 labels
// when collecting.
func (q *query) upperBoundObject(i int, scratch *bitmap.Scratch, ctr *ctrSet) {
	scratch.Reset()
	for _, g := range q.idx.groups[i] {
		if q.labels != nil && !q.groupActiveUpper(i, g) {
			continue
		}
		q.orGroupAdj(i, g, scratch, ctr, true)
	}
	tau := scratch.Cardinality() - 1
	if tau < 0 {
		tau = 0
	}
	q.tauUpp[i] = int32(tau)
}

// orGroupAdj ORs b^adj of the group's cell into scratch, materialising
// the adjacency bitset if needed, and performs Labeling-1/-2. label2
// gates the Labeling-2 clears: the decision is prefix-dependent (a
// group contributes iff its adj has a bit outside the union of the
// groups OR-ed before it), so callers whose group order differs from
// the serial scan — the cost-partitioned UBGreedyP workers — pass
// false and replay the decision afterwards (labelUpperReplay), keeping
// collected label stores identical at every knob assignment.
// Labeling-1 stays here: it fires on the one fresh computation of a
// cell and clears that cell's own points, which is order-independent.
func (q *query) orGroupAdj(i int, g pointGroup, scratch *bitmap.Scratch, ctr *ctrSet, label2 bool) {
	adj, fresh := q.idx.large.ComputeAdj(g.key)
	if fresh {
		ctr.adjComputed++
		// Labeling-1 (Observation 1): a cell whose adjacency bitset
		// holds a single object interacts with nobody; every point
		// mapped into it can be pruned from all future queries with the
		// same ⌈r⌉ (Lemma 3).
		if q.newLabels != nil && adj.Cardinality() == 1 {
			cell := q.idx.large.Cell(g.key)
			for _, post := range cell.Postings {
				for _, pt := range post.Idx {
					q.newLabels.ClearBit(int(post.Obj), int(pt), labelstore.BitMapped)
				}
			}
		}
	}
	prev := scratch.Cardinality()
	scratch.OrCompressed(adj)
	if label2 && q.newLabels != nil {
		// Labeling-2 (Observation 2): points whose OR left b(o_i)
		// unchanged are skippable in future upper-bounding. When the OR
		// did contribute, the group's first point is the contributor
		// and keeps its label.
		pts := g.pts
		if scratch.Cardinality() != prev {
			pts = pts[1:]
		}
		for _, pt := range pts {
			q.newLabels.ClearBit(i, int(pt), labelstore.BitUpper)
		}
	}
}

// labelUpperReplay re-walks object i's groups in serial order, redoing
// only the Labeling-2 contribution decision. Every adj it touches was
// memoised by the parallel OR pass that ran just before, so the replay
// costs bitmap ORs alone and leaves the work counters untouched.
func (q *query) labelUpperReplay(i int, scratch *bitmap.Scratch) {
	scratch.Reset()
	for _, g := range q.idx.groups[i] {
		adj, _ := q.idx.large.ComputeAdj(g.key)
		prev := scratch.Cardinality()
		scratch.OrCompressed(adj) //lint:ignore scratch accumulation across one object's groups is the point (prefix-dependent contribution test); Reset runs per object, before this loop
		pts := g.pts
		if scratch.Cardinality() != prev {
			pts = pts[1:]
		}
		for _, pt := range pts {
			q.newLabels.ClearBit(i, int(pt), labelstore.BitUpper)
		}
	}
}

// groupActiveUpper reports whether any point of the group still carries
// the upper-bounding label bit (the WITH-LABEL filter of Algorithm 5
// line 5).
func (q *query) groupActiveUpper(i int, g pointGroup) bool {
	for _, pt := range g.pts {
		if q.labels.Get(i, int(pt))&labelstore.BitUpper != 0 {
			return true
		}
	}
	return false
}
