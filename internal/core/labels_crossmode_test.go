package core

import (
	"reflect"
	"testing"

	"mio/internal/baseline"
	"mio/internal/core/labelstore"
	"mio/internal/data"
)

// Labels are collected during one query and consumed by later ones.
// The paper requires a consistent access order; our group-based
// labeling is additionally order-independent (the union of contributing
// groups equals the full union regardless of replay order), so labels
// collected under one execution mode must be valid under any other.
// These tests verify that empirically for all four combinations.
func TestLabelsCrossModeCompatibility(t *testing.T) {
	ds := data.GenTrajectory(data.TrajectoryConfig{
		N: 150, M: 25, Groups: 5, FieldSize: 2200, Speed: 18, FollowStd: 7, Solo: 0.3, Seed: 55,
	})
	r := 12.0
	oracle := baseline.NLScores(ds, r)
	wantTop := baselineScores(baseline.TopKFromScores(oracle, 4))

	modes := []struct {
		name string
		opts func(store *labelstore.Store) Options
	}{
		{"serial", func(s *labelstore.Store) Options { return Options{Labels: s} }},
		{"parallel", func(s *labelstore.Store) Options {
			return Options{Labels: s, Workers: 4}
		}},
	}
	for _, collect := range modes {
		for _, replay := range modes {
			t.Run(collect.name+"-then-"+replay.name, func(t *testing.T) {
				store := labelstore.NewStore()
				ce, err := NewEngine(ds, collect.opts(store))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := ce.RunTopK(r, 4); err != nil {
					t.Fatal(err)
				}
				if !store.Has(int(12)) {
					t.Fatal("labels not collected")
				}
				re, err := NewEngine(ds, replay.opts(store))
				if err != nil {
					t.Fatal(err)
				}
				res, err := re.RunTopK(r, 4)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Stats.UsedLabels {
					t.Fatal("replay ignored labels")
				}
				if got := scoreMultiset(res.TopK); !reflect.DeepEqual(got, wantTop) {
					t.Fatalf("scores %v, oracle %v", got, wantTop)
				}
				for _, s := range res.TopK {
					if oracle[s.Obj] != s.Score {
						t.Fatalf("obj %d: %d vs true %d", s.Obj, s.Score, oracle[s.Obj])
					}
				}
			})
		}
	}
}

// TestLabelsSurviveDifferentRSameCeil checks the core §III-D contract:
// labels collected at r=11.2 must be valid for any r' with ⌈r'⌉ = 12.
func TestLabelsSurviveDifferentRSameCeil(t *testing.T) {
	ds := data.GenNeuron(data.NeuronConfig{
		N: 35, M: 120, Clusters: 3, FieldSize: 140, ClusterStd: 18, StepLen: 1.2, Branches: 4, Seed: 56,
	})
	store := labelstore.NewStore()
	eng, _ := NewEngine(ds, Options{Labels: store})
	if _, err := eng.Run(11.2); err != nil { // collects for ⌈r⌉ = 12
		t.Fatal(err)
	}
	for _, r := range []float64{11.1, 11.5, 11.9, 12.0} {
		oracle := baseline.NLScores(ds, r)
		best := 0
		for _, s := range oracle {
			if s > best {
				best = s
			}
		}
		res, err := eng.Run(r)
		if err != nil {
			t.Fatalf("r=%g: %v", r, err)
		}
		if !res.Stats.UsedLabels {
			t.Fatalf("r=%g: labels unused (ceil=12 expected)", r)
		}
		if res.Best.Score != best {
			t.Fatalf("r=%g: best %d, oracle %d", r, res.Best.Score, best)
		}
	}
	// A threshold with a different ceiling must NOT use the labels and
	// must still be exact.
	res, err := eng.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.UsedLabels {
		t.Fatal("r=7 used ⌈r⌉=12 labels")
	}
	oracle := baseline.NLScores(ds, 7)
	best := 0
	for _, s := range oracle {
		if s > best {
			best = s
		}
	}
	if res.Best.Score != best {
		t.Fatalf("r=7: best %d, oracle %d", res.Best.Score, best)
	}
}
